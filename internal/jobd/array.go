package jobd

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/schedule"
)

// array.go — job arrays: one POST /arrays submission expands a template
// spec over a parameter grid into N child jobs, the campaign form of the
// paper's process-parameter studies. Children are ordinary jobs (same
// queue, scheduler, preemption and store) with three extras: deterministic
// ids derived from the array id and grid index, a recorded parameter
// assignment, and a shared fairness group so a wide array interleaves with
// other submissions instead of monopolizing its priority level.

// MaxArrayChildren bounds the expansion of one array submission (1000
// keeps the three-digit child-id suffix dense and lexicographically
// ordered).
const MaxArrayChildren = 1000

// Axis is one dimension of an array's parameter grid: the named template
// parameter takes each of Values in turn. The reserved name "seed" drives
// the child spec's RNG seed (and may also appear in the schedule
// template); every other name must appear as a "${name}" placeholder in
// the template schedule.
type Axis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// ArraySpec is an array submission: a child-job template plus the
// parameter grid to expand it over (the JSON body of POST /arrays). The
// template's Schedule may reference grid parameters as "${name}"
// (schedule.Instantiate semantics); its Params map, when present, supplies
// fixed template parameters shared by every child. Child count is the
// product of the axis lengths, expanded row-major with the first axis
// slowest.
type ArraySpec struct {
	Name     string `json:"name,omitempty"`
	Template Spec   `json:"template"`
	Axes     []Axis `json:"axes"`
}

// Array is the daemon-side record of one expanded array. Children is
// immutable after creation; child lifecycle lives on the child jobs.
type Array struct {
	ID       string
	Spec     ArraySpec
	Children []string // child job ids, grid order
	seq      int64
}

// ArrayStatus is the API view of an array (GET /arrays/{id}).
type ArrayStatus struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// State aggregates the children: running while any child is active,
	// then failed/canceled/done by worst outcome.
	State  State         `json:"state"`
	Counts map[State]int `json:"counts"`
	// Missing counts children absent from the registry (possible after a
	// restart that restored the store but not the spool).
	Missing  int      `json:"missing,omitempty"`
	Children []Status `json:"children"`
}

// ChildResult is one entry of an array's results aggregation.
type ChildResult struct {
	ID     string             `json:"id"`
	Params map[string]float64 `json:"params,omitempty"`
	Class  string             `json:"class"`
	State  State              `json:"state"`
	Step   int                `json:"step"`
	Time   float64            `json:"time"`
	Solid  float64            `json:"solid"`
	Error  string             `json:"error,omitempty"`
	// ResultPath is the endpoint serving the child's final checkpoint,
	// empty until the child is done.
	ResultPath string `json:"result_path,omitempty"`
}

// ArrayResults is the aggregation served by GET /arrays/{id}/results.
type ArrayResults struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State State  `json:"state"`
	// Missing counts children absent from the registry (see
	// ArrayStatus.Missing); a campaign with missing records never reports
	// itself done.
	Missing  int           `json:"missing,omitempty"`
	Children []ChildResult `json:"children"`
}

// childSpec is one expanded grid point.
type childSpec struct {
	spec  Spec
	sched *schedule.Schedule
}

// expand materializes the grid: validates the axes against the template
// (parsed once), instantiates the schedule per grid point and validates
// every child.
func (as *ArraySpec) expand() ([]childSpec, error) {
	if len(as.Axes) == 0 {
		return nil, fmt.Errorf("jobd: array needs at least one axis")
	}
	var tmpl *schedule.Template
	var tmplParams []string
	if len(as.Template.Schedule) > 0 {
		var err error
		if tmpl, err = schedule.ParseTemplate(as.Template.Schedule); err != nil {
			return nil, err
		}
		tmplParams = tmpl.Params()
	}
	inTemplate := map[string]bool{}
	for _, p := range tmplParams {
		inTemplate[p] = true
	}
	n := 1
	seen := map[string]bool{}
	for i, ax := range as.Axes {
		if ax.Param == "" {
			return nil, fmt.Errorf("jobd: array axis %d has no param name", i)
		}
		if seen[ax.Param] {
			return nil, fmt.Errorf("jobd: array axis %q appears twice", ax.Param)
		}
		seen[ax.Param] = true
		if ax.Param != "seed" && !inTemplate[ax.Param] {
			return nil, fmt.Errorf("jobd: array axis %q is not referenced by the template schedule (placeholders: %v)",
				ax.Param, tmplParams)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("jobd: array axis %q has no values", ax.Param)
		}
		for _, v := range ax.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("jobd: array axis %q has non-finite value %g", ax.Param, v)
			}
			if ax.Param == "seed" && v != math.Trunc(v) {
				return nil, fmt.Errorf("jobd: seed axis value %g is not an integer", v)
			}
		}
		if n > MaxArrayChildren/len(ax.Values) {
			return nil, fmt.Errorf("jobd: array expands past the %d-child limit", MaxArrayChildren)
		}
		n *= len(ax.Values)
	}

	name := as.Name
	if name == "" {
		name = as.Template.Name
	}
	children := make([]childSpec, 0, n)
	idx := make([]int, len(as.Axes))
	for c := 0; c < n; c++ {
		params := map[string]float64{}
		for k, v := range as.Template.Params {
			params[k] = v
		}
		for a, ax := range as.Axes {
			params[ax.Param] = ax.Values[idx[a]]
		}
		sp := as.Template
		sp.Params = params
		sp.Name = fmt.Sprintf("%s[%d]", name, c)
		if v, ok := params["seed"]; ok {
			// The seed may come from an axis (checked above) or from the
			// template's fixed params — either way it must be integral, or
			// the truncated Spec.Seed would diverge from the value
			// substituted into the schedule.
			if v != math.Trunc(v) {
				return nil, fmt.Errorf("jobd: array child %d: seed %g is not an integer", c, v)
			}
			sp.Seed = int64(v)
		}
		var sched *schedule.Schedule
		if tmpl != nil {
			// One parse per child: the instantiated schedule is both the
			// blob the child spec embeds and the schedule the runner uses.
			var blob []byte
			var err error
			if sched, blob, err = tmpl.Instantiate(params); err != nil {
				return nil, fmt.Errorf("jobd: array child %d: %w", c, err)
			}
			sp.Schedule = blob
			if err := validateSubmittedSchedule(sched); err != nil {
				return nil, fmt.Errorf("jobd: array child %d: %w", c, err)
			}
			if err := sp.validateFields(); err != nil {
				return nil, fmt.Errorf("jobd: array child %d: %w", c, err)
			}
		} else {
			var err error
			if sched, err = sp.normalize(); err != nil {
				return nil, fmt.Errorf("jobd: array child %d: %w", c, err)
			}
		}
		children = append(children, childSpec{spec: sp, sched: sched})

		// Row-major advance, last axis fastest.
		for a := len(idx) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(as.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
	}
	return children, nil
}

// Expand materializes the array's parameter grid into child specs in grid
// order, without submitting anything: each spec carries its instantiated
// schedule blob, parameter assignment and "name[i]" naming, exactly as
// SubmitArray would enqueue it. The federation gateway expands arrays
// centrally and submits the children to different daemons as plain jobs —
// resubmitting an identical spec elsewhere yields bit-identical results,
// which is what makes gateway-side requeue after a daemon loss sound.
func (as *ArraySpec) Expand() ([]Spec, error) {
	children, err := as.expand()
	if err != nil {
		return nil, err
	}
	specs := make([]Spec, len(children))
	for i, c := range children {
		specs[i] = c.spec
	}
	return specs, nil
}

// SubmitArray expands an array spec and enqueues every child. The
// expansion is all-or-nothing: an invalid grid point rejects the whole
// submission.
func (s *Server) SubmitArray(as ArraySpec) (*Array, error) {
	children, err := as.expand()
	if err != nil {
		return nil, err
	}
	for i := range children {
		if err := s.validateClass(&children[i].spec); err != nil {
			return nil, fmt.Errorf("jobd: array child %d: %w", i, err)
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	s.nextArrayID++
	arr := &Array{ID: fmt.Sprintf("arr-%04d", s.nextArrayID)}
	arr.Spec = as
	s.nextSeq++
	arr.seq = s.nextSeq
	for i, c := range children {
		s.nextSeq++
		j := newJob(fmt.Sprintf("%s.%03d", arr.ID, i), s.nextSeq, c.spec, c.sched)
		j.group = arr.ID
		j.array = arr.ID
		s.jobs[j.ID] = j
		s.enqueueLocked(j)
		arr.Children = append(arr.Children, j.ID)
	}
	s.arrays[arr.ID] = arr
	s.mu.Unlock()
	s.wakeup()
	s.persistArray(arr)
	return arr, nil
}

// GetArray returns an array by id.
func (s *Server) GetArray(id string) (*Array, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.arrays[id]
	return a, ok
}

// ListArrays returns all arrays ordered by submission.
func (s *Server) ListArrays() []*Array {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Array, 0, len(s.arrays))
	for _, a := range s.arrays {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// CancelArray cancels every non-terminal child of an array.
func (s *Server) CancelArray(id string) (ArrayStatus, bool) {
	arr, ok := s.GetArray(id)
	if !ok {
		return ArrayStatus{}, false
	}
	for _, cid := range arr.Children {
		if j, ok := s.Get(cid); ok && !j.State().terminal() {
			s.Cancel(cid)
		}
	}
	return s.ArrayStatus(arr), true
}

// ArrayStatus aggregates the children's states.
func (s *Server) ArrayStatus(arr *Array) ArrayStatus {
	st := ArrayStatus{
		ID: arr.ID, Name: arr.Spec.Name,
		Counts:   map[State]int{},
		Children: make([]Status, 0, len(arr.Children)),
	}
	for _, cid := range arr.Children {
		j, ok := s.Get(cid)
		if !ok {
			st.Missing++
			continue
		}
		cs := j.Status()
		st.Counts[cs.State]++
		st.Children = append(st.Children, cs)
	}
	st.State = aggregateState(st.Counts, st.Missing)
	return st
}

// aggregateState folds child-state counts into one array state: active
// children dominate, then the worst terminal outcome. Missing child
// records count as failures — an array must never claim "done" for
// children it cannot account for.
func aggregateState(counts map[State]int, missing int) State {
	switch {
	case counts[StateRunning] > 0:
		return StateRunning
	case counts[StateQueued] > 0:
		return StateQueued
	case counts[StateFailed] > 0 || missing > 0:
		return StateFailed
	case counts[StateCanceled] > 0:
		return StateCanceled
	default:
		return StateDone
	}
}

// ArrayResults builds the results aggregation: per-child parameter
// assignment, metrics summary and result location.
func (s *Server) ArrayResults(arr *Array) ArrayResults {
	out := ArrayResults{ID: arr.ID, Name: arr.Spec.Name,
		Children: make([]ChildResult, 0, len(arr.Children))}
	counts := map[State]int{}
	for _, cid := range arr.Children {
		j, ok := s.Get(cid)
		if !ok {
			out.Missing++
			continue
		}
		st := j.Status()
		counts[st.State]++
		cr := ChildResult{
			ID: cid, Params: j.Spec.Params, Class: j.Spec.Class,
			State: st.State, Step: st.Step, Time: st.Time, Solid: st.Solid,
			Error: st.Error,
		}
		if s.hasResult(j) {
			cr.ResultPath = "/jobs/" + cid + "/result"
		}
		out.Children = append(out.Children, cr)
	}
	out.State = aggregateState(counts, out.Missing)
	return out
}
