// Sweep: the campaign workload. The paper's production story is parameter
// studies — many related solidification runs exploring pull velocity,
// nucleation scenarios and seeds — not single hand-launched simulations.
// This example drives one end-to-end through the job daemon:
//
//  1. array.json is a job-array submission: a template spec whose schedule
//     references grid parameters ("${vmax}", "${seed}"), expanded over a
//     3×2 grid into six child jobs of resource class "scout" (capped at 2
//     of the daemon's 4 sweep workers);
//  2. a higher-cost "large"-class production job runs concurrently — the
//     class caps guarantee the scouts never starve it;
//  3. every terminal job spills its result into the content-addressed
//     store; the example then drains the daemon (the SIGTERM path),
//     restarts a fresh one over the same store directory, and verifies the
//     children's /result payloads are byte-identical to the pre-restart
//     responses;
//  4. the per-child aggregation (GET /arrays/{id}/results) lands in
//     sweep-results.json — the campaign's product: solid fraction as a
//     function of (vmax, seed).
package main

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/jobd"
)

//go:embed array.json
var arrayJSON []byte

func main() {
	storeDir, err := os.MkdirTemp("", "sweep-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)

	cfg := jobd.Config{
		MaxConcurrent: 2,
		Budget:        4,
		Classes:       map[string]int{"scout": 2, "large": 3},
		StoreDir:      storeDir,
		ReportEvery:   5,
	}
	srv := jobd.New(cfg)
	if _, err := srv.LoadStore(); err != nil {
		log.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())

	// 1. Submit the campaign.
	resp, err := http.Post(ts.URL+"/arrays", "application/json", bytes.NewReader(arrayJSON))
	if err != nil {
		log.Fatal(err)
	}
	var arr jobd.ArrayStatus
	mustDecode(resp, &arr)
	fmt.Printf("submitted array %s: %d children\n", arr.ID, len(arr.Children))

	// 2. The concurrent production run in its own resource class.
	prodSpec := map[string]any{
		"name": "production", "nx": 16, "ny": 16, "nz": 32, "steps": 80,
		"class": "large", "seed": 7,
	}
	blob, _ := json.Marshal(prodSpec)
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		log.Fatal(err)
	}
	var prod jobd.Status
	mustDecode(resp, &prod)
	fmt.Printf("submitted production job %s (class %s)\n", prod.ID, prod.Class)

	// Wait for the campaign and the production run.
	waitDone(ts.URL+"/arrays/"+arr.ID, func(body []byte) bool {
		var st jobd.ArrayStatus
		return json.Unmarshal(body, &st) == nil && st.State == jobd.StateDone
	})
	waitDone(ts.URL+"/jobs/"+prod.ID, func(body []byte) bool {
		var st jobd.Status
		return json.Unmarshal(body, &st) == nil && st.State == jobd.StateDone
	})
	fmt.Printf("campaign done; worker gauge high-water mark %d (budget %d), scouts %d (cap %d)\n",
		srv.Gauge().Max(), cfg.Budget, srv.Gauge().Class("scout").Max(), cfg.Classes["scout"])

	// 4. Fetch the aggregation and print the campaign product.
	resultsBlob := get(ts.URL + "/arrays/" + arr.ID + "/results")
	var results jobd.ArrayResults
	if err := json.Unmarshal(resultsBlob, &results); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  vmax    seed   solid fraction")
	for _, c := range results.Children {
		fmt.Printf("  %-7g %-6g %.6f\n", c.Params["vmax"], c.Params["seed"], c.Solid)
	}
	if err := os.WriteFile("sweep-results.json", resultsBlob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote sweep-results.json")

	// Snapshot one child's result, then restart the daemon over the store.
	child := arr.Children[0].ID
	pre := get(ts.URL + "/jobs/" + child + "/result")

	// 3. Drain (the SIGTERM path) and restart over the same store.
	if err := srv.Drain(); err != nil {
		log.Fatal(err)
	}
	ts.Close()
	srv2 := jobd.New(cfg)
	n, err := srv2.LoadStore()
	if err != nil {
		log.Fatal(err)
	}
	srv2.Start()
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	fmt.Printf("restarted daemon restored %d jobs from the store\n", n)

	post := get(ts2.URL + "/jobs/" + child + "/result")
	if !bytes.Equal(pre, post) {
		log.Fatalf("child %s result differs across restart (%d vs %d bytes)", child, len(pre), len(post))
	}
	fmt.Printf("child %s result served from the store byte-identical across restart (%d bytes, ckpt %s)\n",
		child, len(post), filepath.Base(storeDir))
}

// get fetches a URL or dies.
func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}

// mustDecode reads a 2xx JSON response into out or dies.
func mustDecode(resp *http.Response, out any) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("%s: %d %s", resp.Request.URL, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		log.Fatal(err)
	}
}

// waitDone polls url until cond holds.
func waitDone(url string, cond func([]byte) bool) {
	for start := time.Now(); ; {
		if cond(get(url)) {
			return
		}
		if time.Since(start) > 10*time.Minute {
			log.Fatalf("timeout waiting on %s", url)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
