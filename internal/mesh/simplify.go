package mesh

import "container/heap"

// Quadric-error-metric edge-collapse simplification after Garland &
// Heckbert (paper ref. [12]; the paper links the VCG library's
// implementation — this is a from-scratch equivalent). Block-boundary
// vertices receive a high additional point quadric so the boundary is
// preserved for the later stitching step (§3.2).

// Quadric is a symmetric 4x4 error quadric stored as its 10 unique
// coefficients: [a² ab ac ad; · b² bc bd; · · c² cd; · · · d²].
type Quadric [10]float64

// AddPlane accumulates the quadric of plane (n, d) with |n| = 1:
// error(v) = (n·v + d)².
func (q *Quadric) AddPlane(n Vec3, d float64, w float64) {
	q[0] += w * n[0] * n[0]
	q[1] += w * n[0] * n[1]
	q[2] += w * n[0] * n[2]
	q[3] += w * n[0] * d
	q[4] += w * n[1] * n[1]
	q[5] += w * n[1] * n[2]
	q[6] += w * n[1] * d
	q[7] += w * n[2] * n[2]
	q[8] += w * n[2] * d
	q[9] += w * d * d
}

// AddPoint accumulates w·|v − p|², anchoring the quadric at point p.
func (q *Quadric) AddPoint(p Vec3, w float64) {
	// (x−p)² expands to x² − 2px + p² per axis: diag w, off-diag 0.
	q[0] += w
	q[4] += w
	q[7] += w
	q[3] += -w * p[0]
	q[6] += -w * p[1]
	q[8] += -w * p[2]
	q[9] += w * p.Dot(p)
}

// Add accumulates another quadric.
func (q *Quadric) Add(o *Quadric) {
	for i := range q {
		q[i] += o[i]
	}
}

// Eval returns the quadric error at v (always ≥ 0 for sums of plane/point
// quadrics, up to roundoff).
func (q *Quadric) Eval(v Vec3) float64 {
	x, y, z := v[0], v[1], v[2]
	return q[0]*x*x + 2*q[1]*x*y + 2*q[2]*x*z + 2*q[3]*x +
		q[4]*y*y + 2*q[5]*y*z + 2*q[6]*y +
		q[7]*z*z + 2*q[8]*z +
		q[9]
}

// SimplifyOptions tunes the edge-collapse pass.
type SimplifyOptions struct {
	// TargetTris stops collapsing when the face count reaches this.
	TargetTris int
	// MaxError rejects collapses whose quadric error exceeds this
	// (0 disables the limit).
	MaxError float64
	// BoundaryWeight is the point-quadric weight protecting vertices
	// marked as block-boundary (default 1e4).
	BoundaryWeight float64
}

type collapseEdge struct {
	u, v    int32
	cost    float64
	target  Vec3
	version int64
	index   int // heap bookkeeping
}

type edgeHeap []*collapseEdge

func (h edgeHeap) Len() int            { return len(h) }
func (h edgeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h edgeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *edgeHeap) Push(x interface{}) { e := x.(*collapseEdge); e.index = len(*h); *h = append(*h, e) }
func (h *edgeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simplify coarsens the mesh in place using quadric-error edge collapses.
// It returns the number of collapses performed.
func Simplify(m *Mesh, opt SimplifyOptions) int {
	if opt.BoundaryWeight == 0 {
		opt.BoundaryWeight = 1e4
	}
	if opt.TargetTris <= 0 {
		opt.TargetTris = 1
	}
	nv := len(m.Verts)

	// Per-vertex quadrics from incident face planes.
	quadrics := make([]Quadric, nv)
	for _, t := range m.Tris {
		a, b, c := m.Verts[t[0]], m.Verts[t[1]], m.Verts[t[2]]
		n := b.Sub(a).Cross(c.Sub(a))
		l := n.Norm()
		if l == 0 {
			continue
		}
		n = n.Scale(1 / l)
		d := -n.Dot(a)
		for e := 0; e < 3; e++ {
			quadrics[t[e]].AddPlane(n, d, l/2) // area-weighted
		}
	}
	if m.Boundary != nil {
		for i, b := range m.Boundary {
			if b {
				quadrics[i].AddPoint(m.Verts[i], opt.BoundaryWeight)
			}
		}
	}

	// Union-find over collapsed vertices.
	parent := make([]int32, nv)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	version := make([]int64, nv)

	// Adjacency: faces per vertex (indices into m.Tris), updated lazily.
	facesOf := make([][]int32, nv)
	for fi, t := range m.Tris {
		for e := 0; e < 3; e++ {
			facesOf[t[e]] = append(facesOf[t[e]], int32(fi))
		}
	}
	alive := make([]bool, len(m.Tris))
	liveTris := 0
	for fi, t := range m.Tris {
		if t[0] != t[1] && t[1] != t[2] && t[0] != t[2] {
			alive[fi] = true
			liveTris++
		}
	}

	cost := func(u, v int32) (float64, Vec3) {
		var q Quadric
		q.Add(&quadrics[u])
		q.Add(&quadrics[v])
		// Candidate positions: midpoint and both endpoints (the exact
		// minimizer needs a 3x3 solve; endpoint/midpoint selection is
		// the standard robust fallback and is what matters here).
		mid := m.Verts[u].Add(m.Verts[v]).Scale(0.5)
		best, bc := mid, q.Eval(mid)
		if c := q.Eval(m.Verts[u]); c < bc {
			best, bc = m.Verts[u], c
		}
		if c := q.Eval(m.Verts[v]); c < bc {
			best, bc = m.Verts[v], c
		}
		return bc, best
	}

	h := &edgeHeap{}
	pushEdge := func(u, v int32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		c, tgt := cost(u, v)
		heap.Push(h, &collapseEdge{u: u, v: v, cost: c, target: tgt,
			version: version[u] + version[v]})
	}
	seen := make(map[[2]int32]bool)
	for _, t := range m.Tris {
		for e := 0; e < 3; e++ {
			a, b := t[e], t[(e+1)%3]
			if a > b {
				a, b = b, a
			}
			if a != b && !seen[[2]int32{a, b}] {
				seen[[2]int32{a, b}] = true
				pushEdge(a, b)
			}
		}
	}

	collapses := 0
	for h.Len() > 0 && liveTris > opt.TargetTris {
		e := heap.Pop(h).(*collapseEdge)
		u, v := find(e.u), find(e.v)
		if u == v {
			continue
		}
		if e.version != version[find(e.u)]+version[find(e.v)] {
			continue // stale entry; a fresh one was pushed
		}
		if u != e.u || v != e.v {
			// Endpoints were merged elsewhere; re-push the live pair.
			pushEdge(u, v)
			continue
		}
		if opt.MaxError > 0 && e.cost > opt.MaxError {
			break
		}

		// Collapse v into u at the target position.
		parent[v] = u
		m.Verts[u] = e.target
		quadrics[u].Add(&quadrics[v])
		if m.Boundary != nil {
			m.Boundary[u] = m.Boundary[u] || m.Boundary[v]
		}
		version[u]++

		// Remap v's faces onto u; kill degenerates; collect the new
		// neighbor set.
		neighbors := make(map[int32]bool)
		merged := append(facesOf[u], facesOf[v]...)
		var kept []int32
		for _, fi := range merged {
			if !alive[fi] {
				continue
			}
			t := &m.Tris[fi]
			for e2 := 0; e2 < 3; e2++ {
				t[e2] = find(t[e2])
			}
			if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
				alive[fi] = false
				liveTris--
				continue
			}
			kept = append(kept, fi)
			for e2 := 0; e2 < 3; e2++ {
				if t[e2] != u {
					neighbors[t[e2]] = true
				}
			}
		}
		facesOf[u] = kept
		facesOf[v] = nil
		for nb := range neighbors {
			pushEdge(u, nb)
		}
		collapses++
	}

	// Rebuild the triangle list from live faces with final vertex ids.
	var tris [][3]int32
	for fi, ok := range alive {
		if !ok {
			continue
		}
		t := m.Tris[fi]
		for e := 0; e < 3; e++ {
			t[e] = find(t[e])
		}
		if t[0] != t[1] && t[1] != t[2] && t[0] != t[2] {
			tris = append(tris, t)
		}
	}
	m.Tris = tris
	m.Compact()
	return collapses
}
