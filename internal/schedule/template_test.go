package schedule

import (
	"bytes"
	"strings"
	"testing"
)

const rampTemplate = `{"events":[
	{"type":"ramp","param":"v","step":0,"over":"${over}","from":0.02,"to":"${vmax}"},
	{"type":"burst","step":2,"count":2,"phase":-1,"radius":1.5,"zmin":4,"zmax":8,"seed":"${seed}"}
]}`

func TestTemplateParams(t *testing.T) {
	names, err := TemplateParams([]byte(rampTemplate))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"over", "seed", "vmax"} // sorted
	if len(names) != len(want) {
		t.Fatalf("params %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("params %v, want %v", names, want)
		}
	}
	// A plain schedule is a valid template with no parameters.
	names, err = TemplateParams([]byte(`{"events":[{"type":"checkpoint","every":5}]}`))
	if err != nil || names != nil {
		t.Fatalf("plain schedule: params %v err %v", names, err)
	}
}

func TestInstantiate(t *testing.T) {
	sched, blob, err := Instantiate([]byte(rampTemplate),
		map[string]float64{"over": 40, "vmax": 0.055, "seed": 9})
	if err != nil {
		t.Fatal(err)
	}
	ramps := sched.Ramps()
	if len(ramps) != 1 || ramps[0].Over != 40 || ramps[0].To != 0.055 {
		t.Fatalf("instantiated ramp %+v", ramps)
	}
	var burst NucleationBurst
	for _, ev := range sched.Events {
		if b, ok := ev.(NucleationBurst); ok {
			burst = b
		}
	}
	if burst.Seed != 9 {
		t.Fatalf("instantiated burst seed %d, want 9", burst.Seed)
	}
	// The substituted blob must itself parse (it is embedded in child job
	// specs verbatim).
	if _, err := FromJSONBytes(blob); err != nil {
		t.Fatalf("substituted blob unparsable: %v\n%s", err, blob)
	}
}

// Equal (template, params) pairs must produce byte-identical blobs — child
// schedules are reproducible from the array spec alone.
func TestInstantiateDeterministic(t *testing.T) {
	params := map[string]float64{"over": 40, "vmax": 0.055, "seed": 9}
	_, a, err := Instantiate([]byte(rampTemplate), params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, b, err := Instantiate([]byte(rampTemplate), params)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("instantiation %d differs:\n%s\n%s", i, a, b)
		}
	}
}

func TestInstantiateErrors(t *testing.T) {
	// Unknown placeholder.
	if _, _, err := Instantiate([]byte(rampTemplate),
		map[string]float64{"over": 40, "vmax": 0.05}); err == nil ||
		!strings.Contains(err.Error(), "seed") {
		t.Errorf("missing param not rejected: %v", err)
	}
	// Non-finite parameter values.
	inf := []float64{1}
	inf[0] /= 0
	if _, _, err := Instantiate([]byte(rampTemplate),
		map[string]float64{"over": 40, "vmax": inf[0], "seed": 1}); err == nil {
		t.Error("infinite param accepted")
	}
	// The substituted schedule still passes full validation.
	if _, _, err := Instantiate([]byte(rampTemplate),
		map[string]float64{"over": 0, "vmax": 0.05, "seed": 1}); err == nil {
		t.Error("substitution producing an invalid ramp accepted")
	}
	// Malformed template JSON.
	if _, err := TemplateParams([]byte(`{"events": [`)); err == nil {
		t.Error("malformed template accepted")
	}
}

// Embedded placeholders substitute textually; integral values print
// without a fraction so they land cleanly in integer fields.
func TestInstantiateEmbedded(t *testing.T) {
	tmpl := []byte(`{"events":[
		{"type":"checkpoint","every":"${every}","path":"out/run-${every}-%06d.pfcp"}
	]}`)
	sched, _, err := Instantiate(tmpl, map[string]float64{"every": 25})
	if err != nil {
		t.Fatal(err)
	}
	cps := sched.Checkpoints()
	if len(cps) != 1 || cps[0].Every != 25 || cps[0].Path != "out/run-25-%06d.pfcp" {
		t.Fatalf("instantiated checkpoint %+v", cps)
	}
}
