package solver

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/schedule"
)

// bctopology.go owns the interplay between scheduled boundary-condition
// events and the rank topology. Periodicity is realized in two distinct
// ways: on a single-block axis a BCPeriodic face condition wraps the ghost
// layer within the block, while on a decomposed axis the wrap crosses block
// (and possibly process) boundaries through the communication layer's
// neighbor relation. A SetBC event may therefore flip any face's kind —
// including faces of decomposed or currently-periodic axes — as long as
// every prescription leaves each decomposed axis in a uniform state: either
// all four of its (φ/µ × min/max) face kinds are periodic, or none are.
// RunSchedule validates that invariant up front over the whole schedule and
// rejects violations with a *ScheduleError before any step runs; at run
// time, syncTopology pushes the derived per-axis periodicity into the
// communication topology whenever applied events change it.

// ScheduleError is the structured rejection of a schedule whose
// boundary-condition prescription the rank topology cannot honor. It is
// returned by RunSchedule before the first step executes, wrapped all the
// way out of the solver, so callers (the job daemon in particular) can
// distinguish an unrealizable schedule — a permanent, non-retryable input
// error — from transient faults, and surface the offending event to the
// submitter. All fields are plain strings/ints so the value serializes
// directly into job status JSON.
type ScheduleError struct {
	// Face names the offending domain face ("x-", "y+", ...); for
	// axis-wide violations it is the axis' min face.
	Face string `json:"face"`
	// Step is the schedule step at which the prescription becomes
	// unrealizable.
	Step int `json:"step"`
	// Reason says why the topology cannot honor the prescription.
	Reason string `json:"reason"`
}

func (e *ScheduleError) Error() string {
	return fmt.Sprintf("solver: schedule unrealizable at step %d (face %s): %s", e.Step, e.Face, e.Reason)
}

// axisFaces returns the min and max face of an axis.
func axisFaces(axis int) (grid.Face, grid.Face) {
	return grid.Face(2 * axis), grid.Face(2*axis + 1)
}

// validateSetBCs simulates the kind evolution every SetBC event prescribes
// and rejects, before any step runs, prescriptions the decomposition cannot
// honor. The JSON front-end and Compose cannot know the topology, and
// aborting a production run at the event's fire step would lose everything
// since the last checkpoint. Only axes the schedule touches are checked, so
// a pre-existing (caller-constructed) configuration is never retroactively
// rejected.
func (s *Sim) validateSetBCs(setbcs []schedule.SetBC) error {
	if len(setbcs) == 0 {
		return nil
	}
	// Simulated per-(face,field) kinds, seeded from the live domain sets
	// (index layout matches applyDueSetBCs: 2*face+field). On a
	// topologically periodic axis the face kinds are periodic by
	// construction of the default sets; force them so a caller-supplied
	// divergent set cannot skew the simulation.
	var kinds [2 * int(grid.NumFaces)]grid.BCKind
	for f := grid.Face(0); f < grid.NumFaces; f++ {
		kinds[2*int(f)+int(schedule.BCPhi)] = s.domainPhiBCs[f].Kind
		kinds[2*int(f)+int(schedule.BCMu)] = s.domainMuBCs[f].Kind
	}
	for axis := 0; axis < 3; axis++ {
		if s.World.Topology().Periodic[axis] {
			lo, hi := axisFaces(axis)
			for _, f := range [2]grid.Face{lo, hi} {
				kinds[2*int(f)+int(schedule.BCPhi)] = grid.BCPeriodic
				kinds[2*int(f)+int(schedule.BCMu)] = grid.BCPeriodic
			}
		}
	}

	// Walk the events in step order; after each group of same-step events
	// the touched axes must be uniform. (applyDueSetBCs applies the latest
	// due event per (face, field), and schedule.New rejects ambiguous
	// same-step overlaps, so in-order application reproduces the live kind
	// at every step boundary.)
	order := make([]int, len(setbcs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return setbcs[order[a]].Step < setbcs[order[b]].Step })

	blocks := [3]int{s.Cfg.BG.PX, s.Cfg.BG.PY, s.Cfg.BG.PZ}
	for i := 0; i < len(order); {
		step := setbcs[order[i]].Step
		var touched [3]bool
		for ; i < len(order) && setbcs[order[i]].Step == step; i++ {
			b := setbcs[order[i]]
			kinds[2*int(b.Face)+int(b.Field)] = b.Kind
			touched[b.Face.Axis()] = true
		}
		for axis := 0; axis < 3; axis++ {
			if !touched[axis] {
				continue
			}
			lo, hi := axisFaces(axis)
			n := 0
			for _, f := range [2]grid.Face{lo, hi} {
				for fld := 0; fld < 2; fld++ {
					if kinds[2*int(f)+fld] == grid.BCPeriodic {
						n++
					}
				}
			}
			if n > 0 && n < 4 && blocks[axis] > 1 {
				return &ScheduleError{
					Face: lo.String(), Step: step,
					Reason: fmt.Sprintf("axis decomposed into %d blocks: periodicity wraps through the communication layer, so the φ/µ min/max faces must switch together (%d of 4 periodic)", blocks[axis], n),
				}
			}
			if n == 4 && axis == 2 && s.Cfg.MovingWindow {
				return &ScheduleError{
					Face: lo.String(), Step: step,
					Reason: "moving window scrolls material through z: the axis cannot become periodic",
				}
			}
		}
	}
	return nil
}

// syncTopology re-derives the periodicity of the touched axes from the live
// domain BC kinds (an axis is periodic iff all four of its φ/µ min/max face
// kinds are periodic) and pushes changes into the communication topology.
// Reports whether anything changed — the caller must then re-establish all
// ghost layers, because neighbor relations, not just wall fills, moved.
// Safe only at step boundaries.
func (s *Sim) syncTopology(touched [3]bool) bool {
	changed := false
	for axis := 0; axis < 3; axis++ {
		if !touched[axis] {
			continue
		}
		lo, hi := axisFaces(axis)
		want := true
		for _, f := range [2]grid.Face{lo, hi} {
			if s.domainPhiBCs[f].Kind != grid.BCPeriodic || s.domainMuBCs[f].Kind != grid.BCPeriodic {
				want = false
			}
		}
		if want != s.World.Topology().Periodic[axis] {
			s.World.SetPeriodic(axis, want)
			changed = true
		}
	}
	if changed {
		s.refreshRankBCs()
		s.invalidateActivity()
	}
	return changed
}
