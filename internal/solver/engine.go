package solver

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/kernels"
)

// engine.go implements the intra-block parallel sweep engine: a persistent
// worker pool owned by Sim that decomposes each block's φ- and µ-sweep into
// z-slab ranges and runs them concurrently through the kernels' *Range entry
// points. Disjoint slabs write disjoint destination slices, so workers never
// conflict; each worker owns a kernels.Scratch, and the stag/shortcut
// variants recompute the z-face fluxes of a slab's first slice instead of
// reusing another worker's buffer (bitwise identical to the serial sweep).
//
// The pool is shared by all ranks: with B blocks and parallelism P, each
// rank's sweep is cut into ⌊P/B⌋ slabs (at least one), so a many-block
// decomposition keeps one slab per rank (the seed's one-goroutine-per-block
// behavior) and a single-block run fans out across all P workers without
// oversubscribing.

// minSlabSlices is the smallest z-extent worth its own worker: thinner slabs
// pay more in seam-slice flux recomputation than they gain in parallelism.
const minSlabSlices = 4

// sweepOp selects which kernel a sweep task runs.
type sweepOp int

const (
	opPhi sweepOp = iota
	opMu
	opMuLocal
	opMuNeighbor
)

// sweepTask is one z-slab of one rank's sweep. It carries everything the
// worker needs so dispatch allocates nothing.
type sweepTask struct {
	op       sweepOp
	ctx      *kernels.Ctx
	f        *kernels.Fields
	v        kernels.Variant
	strat    kernels.PhiStrategy
	useStrat bool // pin the φ-sweep to strat instead of variant dispatch
	z0, z1   int
	done     *sync.WaitGroup
	sink     *faultSink // panic isolation + injection points (never nil from runSweep)
}

func (t *sweepTask) run(sc *kernels.Scratch) {
	switch t.op {
	case opPhi:
		if t.useStrat {
			kernels.PhiSweepStrategyRange(t.ctx, t.f, sc, t.strat, t.z0, t.z1)
			return
		}
		kernels.PhiSweepRange(t.ctx, t.f, sc, t.v, t.z0, t.z1)
	case opMu:
		kernels.MuSweepRange(t.ctx, t.f, sc, t.v, t.z0, t.z1)
	case opMuLocal:
		kernels.MuSweepLocalRange(t.ctx, t.f, sc, t.v, t.z0, t.z1)
	default: // opMuNeighbor
		kernels.MuSweepNeighborRange(t.ctx, t.f, sc, t.v, t.z0, t.z1)
	}
}

// sweepEngine is the persistent worker pool. Workers live for the lifetime
// of the Sim and block on the task channel between sweeps. The pool can
// grow at a step boundary (SetWorkerBudget) when the job daemon hands a
// simulation a larger share of the global budget; shrinking needs no pool
// change, because concurrency is bounded by how many slabs a sweep
// dispatches, not by how many workers exist.
type sweepEngine struct {
	tasks     chan sweepTask
	gauge     *WorkerGauge
	size      int // workers started so far
	closeOnce sync.Once
}

// engineTaskCap bounds how many tasks can be queued without blocking the
// dispatching rank; sized for the largest budget a grow may reach.
const engineTaskCap = 1024

// newSweepEngine starts nw workers, each owning a Scratch sized for one
// block slice.
func newSweepEngine(nw, bx, by int, g *WorkerGauge) *sweepEngine {
	e := &sweepEngine{tasks: make(chan sweepTask, engineTaskCap), gauge: g}
	e.grow(nw, bx, by)
	return e
}

// grow starts n additional workers.
func (e *sweepEngine) grow(n, bx, by int) {
	for i := 0; i < n; i++ {
		sc := kernels.NewScratch(bx, by)
		go func() {
			for t := range e.tasks {
				e.gauge.enter()
				t.runGuarded(sc)
				e.gauge.exit()
				t.done.Done()
			}
		}()
	}
	e.size += n
}

// close releases the worker goroutines. Safe to call more than once.
func (e *sweepEngine) close() {
	e.closeOnce.Do(func() { close(e.tasks) })
}

// defaultParallelism resolves the Config.Parallelism zero value.
func defaultParallelism() int { return runtime.GOMAXPROCS(0) }

// slabCount returns how many slabs to cut an nz-slice sweep into for one
// rank: the per-rank worker share, bounded so no slab is thinner than
// minSlabSlices.
func (s *Sim) slabCount(nz int) int {
	n := s.workersPerRank
	if lim := nz / minSlabSlices; n > lim {
		n = lim
	}
	if n < 1 {
		n = 1
	}
	return n
}

// runSweep executes one kernel sweep for rank r, fanned out over the engine
// when the scheduler assigns this rank more than one slab. With activity
// tracking on (activity.go), the sleep set for this op is derived first —
// on the rank's own goroutine, from step-start field state, so skip
// decisions are independent of Config.Parallelism — and only the awake
// [z0,z1) runs are swept; slept slices are realized by copy/broadcast
// while the slab tasks are in flight. Any z-partition of a sweep is
// bitwise identical to the serial sweep (the stag/shortcut variants
// recompute seam-slice fluxes), so carving runs around sleeping slices
// cannot perturb awake cells. With tracking disabled the single
// full-extent run reproduces the seed behavior byte for byte.
func (s *Sim) runSweep(r *rank, op sweepOp) {
	nz := r.fields.PhiSrc.NZ
	v := s.muVariant
	useStrat := false
	if op == opPhi {
		v = s.phiVariant
		useStrat = s.usePhiStrategy
	}
	sleep := s.prepareActivity(r, op)
	runs := r.act.activeRuns(sleep, nz)
	total := 0
	for _, run := range runs {
		total += run[1] - run[0]
	}
	n := 0
	if total > 0 {
		n = s.slabCount(total)
	}
	if n <= 1 || s.engine == nil {
		for _, run := range runs {
			t := sweepTask{op: op, ctx: &r.ctx, f: r.fields, v: v,
				strat: s.phiStrategy, useStrat: useStrat, z0: run[0], z1: run[1],
				sink: s.faults}
			s.gauge.enter()
			t.runGuarded(r.sc)
			s.gauge.exit()
		}
		s.applySkips(r, op, sleep)
		return
	}
	count := 0
	for _, run := range runs {
		count += slabsFor(run[1]-run[0], n, total)
	}
	r.wg.Add(count)
	for _, run := range runs {
		ln := run[1] - run[0]
		ni := slabsFor(ln, n, total)
		for i := 0; i < ni; i++ {
			s.engine.tasks <- sweepTask{
				op: op, ctx: &r.ctx, f: r.fields, v: v,
				strat: s.phiStrategy, useStrat: useStrat,
				z0: run[0] + i*ln/ni, z1: run[0] + (i+1)*ln/ni,
				done: &r.wg, sink: s.faults,
			}
		}
	}
	s.applySkips(r, op, sleep)
	r.wg.Wait()
}

// slabsFor apportions the slab budget n across active runs by length.
func slabsFor(ln, n, total int) int {
	k := n * ln / total
	if k < 1 {
		k = 1
	}
	return k
}

// Close releases the sweep engine's worker goroutines and the World's comm
// workers. The Sim must not be stepped afterwards. Calling Close is
// optional — an unclosed engine is also released when the Sim is garbage
// collected — but deterministic for benchmark harnesses that build many
// simulations.
func (s *Sim) Close() {
	if s.engine != nil {
		s.engine.close()
	}
	s.World.Close()
}

// SetWorkerBudget re-targets the simulation's total intra-block sweep
// parallelism to n workers. It must be called at a step boundary (no sweep
// in flight) — the job daemon applies rebalanced budget shares from the
// schedule-runner goroutine inside the per-step yield hook. The pool grows
// on demand; a shrink simply dispatches fewer slabs from the next sweep on
// (idle pool workers park on the task channel and cost nothing). Slab
// decompositions are bit-for-bit equivalent across worker counts, so
// re-budgeting never perturbs the trajectory.
func (s *Sim) SetWorkerBudget(n int) error {
	if n < 1 {
		return fmt.Errorf("solver: worker budget %d invalid", n)
	}
	nBlocks := len(s.ranks)
	wpr := n / nBlocks
	if wpr < 1 {
		wpr = 1
	}
	s.Cfg.Parallelism = n
	if wpr == s.workersPerRank {
		return nil
	}
	s.workersPerRank = wpr
	if wpr <= 1 {
		return nil
	}
	need := wpr * nBlocks
	if s.engine == nil {
		s.engine = newSweepEngine(need, s.Cfg.BG.BX, s.Cfg.BG.BY, s.gauge)
		runtime.AddCleanup(s, func(e *sweepEngine) { e.close() }, s.engine)
	} else if need > s.engine.size {
		s.engine.grow(need-s.engine.size, s.Cfg.BG.BX, s.Cfg.BG.BY)
	}
	return nil
}
