package phasefield

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestDefaultConfigAndNew(t *testing.T) {
	cfg := DefaultConfig(16, 16, 16)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Params() == nil {
		t.Fatal("nil params")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{NX: 0, NY: 4, NZ: 4}); err == nil {
		t.Error("zero domain accepted")
	}
	cfg := DefaultConfig(10, 10, 10)
	cfg.PX = 3 // 10 not divisible by 3
	if _, err := New(cfg); err == nil {
		t.Error("indivisible decomposition accepted")
	}
}

func TestEndToEndProductionRun(t *testing.T) {
	cfg := DefaultConfig(16, 16, 24)
	cfg.PX, cfg.PY = 2, 2
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitProduction(); err != nil {
		t.Fatal(err)
	}
	sf0 := sim.SolidFraction()
	sim.Run(30)
	if sim.Step() != 30 {
		t.Errorf("step = %d", sim.Step())
	}
	if sim.Time() <= 0 {
		t.Error("time not advancing")
	}
	fr := sim.PhaseFractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("phase fractions sum %g", sum)
	}
	if sf := sim.SolidFraction(); sf <= 0 || sf >= 1 {
		t.Errorf("solid fraction %g (was %g)", sf, sf0)
	}
	if h := sim.FrontHeight(); h <= 0 {
		t.Errorf("front height %d", h)
	}
}

func TestExtractInterfacesAndSTL(t *testing.T) {
	sim, err := New(DefaultConfig(12, 12, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		t.Fatal(err)
	}
	sim.Run(2)
	meshes := sim.ExtractInterfaces()
	if len(meshes) != NumPhases-1 {
		t.Fatalf("%d meshes", len(meshes))
	}
	any := false
	for _, m := range meshes {
		if m.NumTris() > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no interface triangles in a front scenario")
	}
	var buf bytes.Buffer
	if err := sim.WriteInterfaceSTL(&buf, 0, 500); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 84 {
		t.Error("empty STL")
	}
	if err := sim.WriteInterfaceSTL(&buf, 99, 0); err == nil {
		t.Error("bad phase index accepted")
	}
}

func TestCheckpointFile(t *testing.T) {
	sim, err := New(DefaultConfig(8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		t.Fatal(err)
	}
	sim.Run(2)
	path := filepath.Join(t.TempDir(), "state.pfcp")
	if err := sim.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Error("empty checkpoint")
	}
}

func TestAnalysisHelpers(t *testing.T) {
	sim, err := New(DefaultConfig(12, 12, 12))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		t.Fatal(err)
	}
	s2 := sim.TwoPointCorrelation(0, 1, 6)
	if len(s2) != 7 {
		t.Fatalf("S2 length %d", len(s2))
	}
	if s2[0] < 0 || s2[0] > 1 {
		t.Errorf("S2(0) = %g", s2[0])
	}
	_ = sim.LamellaEvents(0)
}

func TestPhaseNames(t *testing.T) {
	names := PhaseNames()
	if names[LiquidPhase] != "Liquid" {
		t.Errorf("liquid phase name %q", names[LiquidPhase])
	}
	if names[0] != "Al" || names[1] != "Ag2Al" || names[2] != "Al2Cu" {
		t.Errorf("solid names %v", names)
	}
}
