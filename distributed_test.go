package phasefield

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/grid"
	"repro/internal/schedule"
)

// distributed_test.go proves the network transport and elastic resharding
// against the same oracle as multirank_test.go: the golden trajectory on a
// TCP-connected rank grid must be bitwise identical to the single-rank
// in-process run, and a checkpoint resharded onto a different-sized grid
// must resume that trajectory bit for bit. The TCP "processes" are
// goroutines joined over loopback listeners — the wire path, framing,
// handshake and root-gathering are exactly the multi-node ones.

// startDistSims builds one Simulation per TCP process over loopback, using
// mk to construct each (New+Init or Restore). mk runs concurrently for all
// processes because the transport handshake blocks until every peer is up.
func startDistSims(t *testing.T, nprocs int, mk func(proc int, d *DistConfig) (*Simulation, error)) []*Simulation {
	t.Helper()
	listeners := make([]net.Listener, nprocs)
	peers := make([]string, nprocs)
	for p := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[p] = l
		peers[p] = l.Addr().String()
	}
	sims := make([]*Simulation, nprocs)
	errs := make([]error, nprocs)
	var wg sync.WaitGroup
	for p := 0; p < nprocs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sims[p], errs[p] = mk(p, &DistConfig{
				Proc: p, Peers: peers, Listener: listeners[p],
				DialTimeout: 10 * time.Second,
				IOTimeout:   10 * time.Second,
				RetryWindow: 5 * time.Second,
			})
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
	t.Cleanup(func() { closeSims(sims) })
	return sims
}

// runDist advances every process to `until` steps concurrently (the halo
// exchange synchronizes them internally).
func runDist(t *testing.T, sims []*Simulation, scheds []*schedule.Schedule, until int) {
	t.Helper()
	errs := make([]error, len(sims))
	var wg sync.WaitGroup
	for i := range sims {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = sims[i].RunSchedule(scheds[i], until-sims[i].Step(), ScheduleOptions{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
	}
}

// gatherDist runs the global-field gather collective on every process and
// returns the root's φ and µ fields.
func gatherDist(sims []*Simulation) (phi, mu *grid.Field) {
	fields := make([][2]*grid.Field, len(sims))
	var wg sync.WaitGroup
	for i := range sims {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fields[i][0] = sims[i].GlobalPhi()
			fields[i][1] = sims[i].sim.GatherGlobalMu()
		}(i)
	}
	wg.Wait()
	return fields[0][0], fields[0][1]
}

// checkpointDist writes a lossless V4 snapshot of a distributed run: the
// gather is collective, the file write root-only.
func checkpointDist(t *testing.T, sims []*Simulation, path string) {
	t.Helper()
	errs := make([]error, len(sims))
	var wg sync.WaitGroup
	for i := range sims {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if !sims[i].IsRoot() {
				errs[i] = sims[i].WriteCheckpoint(nil, ckpt.Float64)
				return
			}
			f, err := os.Create(path)
			if err != nil {
				errs[i] = err
				return
			}
			defer f.Close()
			if err := sims[i].WriteCheckpoint(f, ckpt.Float64); err != nil {
				errs[i] = err
				return
			}
			errs[i] = f.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: checkpoint: %v", i, err)
		}
	}
}

// closeSims tears every process down concurrently — closing one side while
// a peer still exchanges would look like a network fault.
func closeSims(sims []*Simulation) {
	var wg sync.WaitGroup
	for _, s := range sims {
		if s == nil {
			continue
		}
		wg.Add(1)
		go func(s *Simulation) { defer wg.Done(); s.Close() }(s)
	}
	wg.Wait()
}

// expectGatheredBitwise asserts the root-gathered fields of a distributed
// run match a reference simulation bit for bit.
func expectGatheredBitwise(t *testing.T, label string, phi, mu *grid.Field, ref *Simulation) {
	t.Helper()
	if ok, maxd := phi.InteriorEqual(ref.GlobalPhi(), 0); !ok {
		t.Errorf("%s: φ differs by %g (want bitwise identity)", label, maxd)
	}
	if ok, maxd := mu.InteriorEqual(ref.sim.GatherGlobalMu(), 0); !ok {
		t.Errorf("%s: µ differs by %g (want bitwise identity)", label, maxd)
	}
}

// TestTCPGoldenBitwiseEquivalence is the multirank harness over the wire:
// the golden trajectory on a 2×2 rank grid split across four TCP processes
// must match the single-rank in-process run bitwise at every waypoint, and
// the run's root-written checkpoint must seed a restart leg — on both
// transports — that stays bitwise identical to the in-process restart.
func TestTCPGoldenBitwiseEquivalence(t *testing.T) {
	refDir, tcpDir := t.TempDir(), t.TempDir()
	ref := mkGoldenSim(t, 1, 1)
	refSched := goldenSchedule(t, filepath.Join(refDir, "ref_%06d.pfcp"))

	tcpCkpt := filepath.Join(tcpDir, "tcp_%06d.pfcp")
	sims := startDistSims(t, 4, func(proc int, d *DistConfig) (*Simulation, error) {
		cfg := goldenConfig()
		cfg.PX, cfg.PY = 2, 2
		cfg.Distributed = d
		s, err := New(cfg)
		if err != nil {
			return nil, err
		}
		return s, s.InitProduction()
	})
	scheds := make([]*schedule.Schedule, len(sims))
	for i := range scheds {
		scheds[i] = goldenSchedule(t, tcpCkpt)
	}

	for _, until := range []int{12, goldenCkptStep, 28, goldenSteps} {
		if err := ref.RunSchedule(refSched, until-ref.Step(), ScheduleOptions{}); err != nil {
			t.Fatal(err)
		}
		runDist(t, sims, scheds, until)
		phi, mu := gatherDist(sims)
		expectGatheredBitwise(t, fmt.Sprintf("step %d", until), phi, mu, ref)
		if sims[0].WindowShift() != ref.WindowShift() {
			t.Fatalf("step %d: window shifts diverged (%d vs %d)",
				until, sims[0].WindowShift(), ref.WindowShift())
		}
	}
	if ref.WindowShift() == 0 {
		t.Fatal("run never shifted the window; the harness guards nothing")
	}
	midCkpt := fmt.Sprintf(tcpCkpt, goldenCkptStep)
	if _, err := os.Stat(midCkpt); err != nil {
		t.Fatalf("root did not write the scheduled checkpoint: %v", err)
	}
	closeSims(sims)

	// Restart leg. The TCP run's checkpoint and the reference's encode
	// bitwise-identical global states, so their float32 round trips seed
	// identical continuations: in-process from the reference's file, TCP
	// 4-process from the root-written file.
	refRestored, err := Restore(fmt.Sprintf(filepath.Join(refDir, "ref_%06d.pfcp"), goldenCkptStep),
		Config{MovingWindow: true, WindowFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := refRestored.RunSchedule(refSched, goldenSteps-refRestored.Step(), ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}
	restored := startDistSims(t, 4, func(proc int, d *DistConfig) (*Simulation, error) {
		return Restore(midCkpt, Config{MovingWindow: true, WindowFraction: 0.5, Distributed: d})
	})
	for _, s := range restored {
		if s.Step() != goldenCkptStep {
			t.Fatalf("restored at step %d", s.Step())
		}
		if s.NumProcs() != 4 {
			t.Fatalf("restored on %d processes", s.NumProcs())
		}
	}
	rScheds := make([]*schedule.Schedule, len(restored))
	for i := range rScheds {
		rScheds[i] = goldenSchedule(t, tcpCkpt)
	}
	runDist(t, restored, rScheds, goldenSteps)
	phi, mu := gatherDist(restored)
	expectGatheredBitwise(t, "restart leg", phi, mu, refRestored)
	closeSims(restored)
}

// TestReshardTrajectory is the elastic-resharding acceptance: a single-rank
// run checkpointed losslessly (V4), resharded onto a 2×2 grid and resumed
// over four TCP processes, checkpointed again, resharded down to 2×1 and
// resumed over two processes, must end bitwise identical to the same
// trajectory run uninterrupted on one rank.
func TestReshardTrajectory(t *testing.T) {
	dir := t.TempDir()
	restoreCfg := func(d *DistConfig) Config {
		return Config{MovingWindow: true, WindowFraction: 0.5, Distributed: d}
	}

	ref := mkGoldenSim(t, 1, 1)
	refSched := goldenSchedule(t, filepath.Join(dir, "ref_%06d.pfcp"))
	if err := ref.RunSchedule(refSched, goldenSteps, ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}

	// Leg 1: one rank to step 14 (past the burst, mid-ramp), V4 snapshot.
	leg := mkGoldenSim(t, 1, 1)
	legSched := goldenSchedule(t, filepath.Join(dir, "leg_%06d.pfcp"))
	if err := leg.RunSchedule(legSched, 14, ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}
	v4a := filepath.Join(dir, "leg1.pfcp")
	fa, err := os.Create(v4a)
	if err != nil {
		t.Fatal(err)
	}
	if err := leg.WriteCheckpoint(fa, ckpt.Float64); err != nil {
		t.Fatal(err)
	}
	if err := fa.Close(); err != nil {
		t.Fatal(err)
	}
	leg.Close()

	// Grow: 1 rank → 2×2 grid on four TCP processes.
	v4b := filepath.Join(dir, "leg1_2x2.pfcp")
	if err := Reshard(v4a, v4b, 2, 2, 1); err != nil {
		t.Fatal(err)
	}
	grown := startDistSims(t, 4, func(proc int, d *DistConfig) (*Simulation, error) {
		return Restore(v4b, restoreCfg(d))
	})
	if grown[0].Step() != 14 {
		t.Fatalf("grown grid restored at step %d, want 14", grown[0].Step())
	}
	gScheds := make([]*schedule.Schedule, len(grown))
	for i := range gScheds {
		gScheds[i] = goldenSchedule(t, filepath.Join(dir, "grown_%06d.pfcp"))
	}
	runDist(t, grown, gScheds, 26)
	v4c := filepath.Join(dir, "leg2.pfcp")
	checkpointDist(t, grown, v4c)
	closeSims(grown)

	// Shrink: 2×2 → 2×1 on two TCP processes, run out the schedule. This
	// leg reshards in memory on each process (RestoreResharded), the
	// file-rewriting form having been proven by the grow leg.
	shrunk := startDistSims(t, 2, func(proc int, d *DistConfig) (*Simulation, error) {
		return RestoreResharded(v4c, 2, 1, 1, restoreCfg(d))
	})
	if shrunk[0].Step() != 26 {
		t.Fatalf("shrunk grid restored at step %d, want 26", shrunk[0].Step())
	}
	sScheds := make([]*schedule.Schedule, len(shrunk))
	for i := range sScheds {
		sScheds[i] = goldenSchedule(t, filepath.Join(dir, "shrunk_%06d.pfcp"))
	}
	runDist(t, shrunk, sScheds, goldenSteps)

	if shrunk[0].WindowShift() != ref.WindowShift() {
		t.Fatalf("window shifts diverged (%d vs %d)", shrunk[0].WindowShift(), ref.WindowShift())
	}
	phi, mu := gatherDist(shrunk)
	expectGatheredBitwise(t, "resharded trajectory", phi, mu, ref)
	closeSims(shrunk)
}
