// Command solidify runs a directional ternary-eutectic solidification
// simulation of the Ag-Al-Cu system (the paper's production scenario,
// Fig. 2): Voronoi solid nuclei at the bottom of a melt-filled domain, a
// frozen temperature gradient pulled upward at constant velocity, the
// moving-window technique, and periodic interface-mesh output.
//
// Production runs are driven by a JSON schedule (-schedule): nucleation
// bursts, pull-velocity/gradient/Δt ramps, time-varying boundary conditions
// (setbc events: wall kind switches and Dirichlet value ramps), kernel-
// variant switches and periodic checkpoints, applied between timesteps.
// Several schedule files compose into one run — pass them comma-separated
// and they merge deterministically (same-step ties fire in file order;
// conflicting events are rejected). A stopped run resumes from its last
// checkpoint with -restore, continuing the schedule at the checkpointed
// position (and may switch kernel variants at that boundary via
// -variant-override); version-3 checkpoints carry the active per-face BC
// state, so a restart mid-BC-ramp resumes with bit-identical wall values.
//
// A run spreads its ranks over several machines with -peers/-proc: start
// the same command line on every host, each with its own -proc index into
// the shared -peers list; the ranks are halved out over the processes and
// joined by the TCP transport, and checkpoints, meshes and console output
// come from process 0. A checkpoint taken on one rank grid resumes on a
// different-sized cluster with -reshard (elastic restart); lossless
// (float64) checkpoints resume bit-identically.
//
// Usage:
//
//	solidify -nx 64 -ny 64 -nz 128 -steps 2000 -px 2 -py 2 \
//	         -out out/ -meshevery 500 -ckpt out/state.pfcp \
//	         -schedule castbench.json,coldwall.json
//	solidify -restore out/state_001000.pfcp -schedule castbench.json -steps 1000
//	solidify -px 2 -py 2 -peers hostA:7000,hostB:7000 -proc 0 ...   # on host A
//	solidify -px 2 -py 2 -peers hostA:7000,hostB:7000 -proc 1 ...   # on host B
//	solidify -restore out/state.pfcp -reshard 4x2 -peers ... -proc N ...
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/mesh"
	"repro/internal/schedule"
)

func main() {
	nx := flag.Int("nx", 64, "domain cells in x")
	ny := flag.Int("ny", 64, "domain cells in y")
	nz := flag.Int("nz", 128, "domain cells in z (growth direction)")
	px := flag.Int("px", 1, "blocks (worker ranks) in x")
	py := flag.Int("py", 1, "blocks in y")
	steps := flag.Int("steps", 1000, "timesteps")
	report := flag.Int("report", 100, "progress report interval")
	meshEvery := flag.Int("meshevery", 0, "write interface meshes every N steps (0 = off)")
	meshTris := flag.Int("meshtris", 20000, "simplification target per mesh")
	outDir := flag.String("out", ".", "output directory")
	ckptPath := flag.String("ckpt", "", "write a final checkpoint to this path")
	window := flag.Bool("window", true, "enable the moving window")
	par := flag.Int("par", 0, "total sweep workers for intra-block parallelism (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "Voronoi seed")
	schedPath := flag.String("schedule", "", "JSON production schedule(s), comma-separated and composed in order (bursts, ramps, BC events, variant switches, checkpoints)")
	recordPath := flag.String("record", "", "write the applied-event audit log as a replayable schedule JSON file at exit")
	restorePath := flag.String("restore", "", "resume from this checkpoint instead of a fresh init")
	variantOverride := flag.String("variant-override", "", "on -restore, switch both kernels to this variant (general|basic|simd|tz|stag|shortcut)")
	reshard := flag.String("reshard", "", "on -restore, re-decompose the checkpoint onto this rank grid (PXxPY or PXxPYxPZ) before resuming — elastic restart on a different-sized cluster")
	peers := flag.String("peers", "", "comma-separated listen addresses of every process in a network-distributed run, indexed by -proc; empty runs all ranks in this process")
	proc := flag.Int("proc", 0, "this process' index into -peers")
	pprofAddr := flag.String("pprof", "", "listen address for net/http/pprof profiling endpoints during the run (empty = off; bind to localhost)")
	flag.Parse()

	if *pprofAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, dbg); err != nil {
				fmt.Fprintln(os.Stderr, "solidify: pprof listener:", err)
			}
		}()
	}

	var dist *phasefield.DistConfig
	if *peers != "" {
		var addrs []string
		for _, a := range strings.Split(*peers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		dist = &phasefield.DistConfig{Proc: *proc, Peers: addrs}
	}
	// Console and file output belong to process 0; the library gates the
	// collective outputs (checkpoints, meshes) itself.
	root := dist == nil || dist.Proc == 0

	var sched *schedule.Schedule
	if *schedPath != "" {
		var paths []string
		for _, p := range strings.Split(*schedPath, ",") {
			if p = strings.TrimSpace(p); p != "" {
				paths = append(paths, p)
			}
		}
		var err error
		if sched, err = phasefield.LoadSchedules(paths...); err != nil {
			fatal(err)
		}
	}

	var sim *phasefield.Simulation
	var err error
	if *restorePath != "" {
		// Start from the production defaults (µ-overlap, shortcut
		// kernels) — the domain and decomposition come from the
		// checkpoint header, the kernel selection from the header's
		// version-2 fields when present.
		cfg := phasefield.DefaultConfig(0, 0, 0)
		cfg.MovingWindow = *window
		cfg.Parallelism = *par
		cfg.Distributed = dist
		if *variantOverride != "" {
			v, perr := schedule.ParseVariant(*variantOverride)
			if perr != nil {
				fatal(perr)
			}
			cfg.Variant = v
			cfg.IgnoreCheckpointKernels = true
		}
		if *reshard != "" {
			rx, ry, rz, perr := parseGrid(*reshard)
			if perr != nil {
				fatal(perr)
			}
			sim, err = phasefield.RestoreResharded(*restorePath, rx, ry, rz, cfg)
		} else {
			sim, err = phasefield.Restore(*restorePath, cfg)
		}
		if err != nil {
			fatal(err)
		}
		if root {
			fmt.Printf("solidify: restored %s at step %d (t=%g, window shift %d, schedule pos %d, dt=%g)\n",
				*restorePath, sim.Step(), sim.Time(), sim.WindowShift(), sim.SchedulePos(), sim.Params().Dt)
		}
	} else {
		if *reshard != "" {
			fatal(fmt.Errorf("-reshard requires -restore"))
		}
		cfg := phasefield.DefaultConfig(*nx, *ny, *nz)
		cfg.PX, cfg.PY = *px, *py
		cfg.MovingWindow = *window
		cfg.Parallelism = *par
		cfg.Seed = *seed
		cfg.Distributed = dist
		if sim, err = phasefield.New(cfg); err != nil {
			fatal(err)
		}
		if err := sim.InitProduction(); err != nil {
			fatal(err)
		}
		if root {
			fmt.Printf("solidify: %dx%dx%d cells, %d ranks on %d process(es), dt=%g\n",
				*nx, *ny, *nz, (*px)*(*py), sim.NumProcs(), sim.Params().Dt)
		}
	}

	names := phasefield.PhaseNames()

	schedOpt := phasefield.ScheduleOptions{
		CheckpointPath: filepath.Join(*outDir, "state_%06d.pfcp"),
	}
	if root {
		schedOpt.Log = func(msg string) { fmt.Println("  " + msg) }
	}

	start := sim.Step()
	for done := 0; done < *steps; {
		chunk := *report
		if done+chunk > *steps {
			chunk = *steps - done
		}
		m := sim.ResetAndMeasure(func() {
			if err := sim.RunSchedule(sched, chunk, schedOpt); err != nil {
				fatal(err)
			}
		})
		done = sim.Step() - start
		// The statistics are collectives — every process must compute
		// them even though only the root prints.
		fr := sim.PhaseFractions()
		solid, front := sim.SolidFraction(), sim.FrontHeight()
		if root {
			fmt.Printf("step %6d  t=%8.2f  solid=%.3f  front=z%-4d  %.2f MLUP/s  [%s %.2f | %s %.2f | %s %.2f]\n",
				sim.Step(), sim.Time(), solid, front, m.MLUPs(),
				names[0], fr[0], names[1], fr[1], names[2], fr[2])
		}

		if *meshEvery > 0 && done%*meshEvery == 0 {
			writeMeshes(sim, *outDir, *meshTris, done, names)
		}
	}

	if *meshEvery > 0 {
		writeMeshes(sim, *outDir, *meshTris, *steps, names)
	}
	if root {
		if tot := sim.TelemetryTotals(); tot.Steps > 0 {
			fmt.Printf("phase totals over %d steps: wall %v | phi %v  mu %v | halo pack %v transfer %v wait %v unpack %v | sched %v ckpt %v | %.2f MLUP/s, %d halo bytes, %d rounds skipped\n",
				tot.Steps, tot.Wall.Round(time.Millisecond),
				tot.PhiKernel.Round(time.Millisecond), tot.MuKernel.Round(time.Millisecond),
				tot.HaloPack.Round(time.Millisecond), tot.HaloTransfer.Round(time.Millisecond),
				tot.HaloWait.Round(time.Millisecond), tot.HaloUnpack.Round(time.Millisecond),
				tot.Sched.Round(time.Millisecond), tot.Ckpt.Round(time.Millisecond),
				tot.MLUPs(sim.GlobalCells()), tot.HaloBytes, tot.HaloSkipped)
		}
		if reconnects, replayed, ok := sim.NetStats(); ok {
			fmt.Printf("transport: %d reconnect(s), %d frame(s) replayed\n", reconnects, replayed)
		}
	}
	if *ckptPath != "" {
		if err := sim.Checkpoint(*ckptPath); err != nil {
			fatal(err)
		}
		if root {
			fmt.Println("checkpoint written to", *ckptPath)
		}
	}
	if *recordPath != "" && root {
		blob, err := sim.AppliedScheduleJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*recordPath, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("applied schedule (%d events) recorded to %s\n", len(sim.AppliedEvents()), *recordPath)
	}
}

func writeMeshes(sim *phasefield.Simulation, dir string, target, step int, names [phasefield.NumPhases]string) {
	meshes := sim.ExtractInterfaces()
	for a, m := range meshes {
		if m.NumTris() == 0 {
			continue
		}
		if target > 0 && m.NumTris() > target {
			mesh.Simplify(m, mesh.SimplifyOptions{TargetTris: target})
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_step%06d.stl", names[a], step))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := m.WriteSTL(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("  mesh %s: %d triangles\n", path, m.NumTris())
	}
}

// parseGrid parses a rank grid like "2x2" or "2x2x1" (PZ defaults to 1).
func parseGrid(s string) (px, py, pz int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 && len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad rank grid %q (want PXxPY or PXxPYxPZ)", s)
	}
	dims := [3]int{1, 1, 1}
	for i, p := range parts {
		if dims[i], err = strconv.Atoi(p); err != nil || dims[i] < 1 {
			return 0, 0, 0, fmt.Errorf("bad rank grid %q", s)
		}
	}
	return dims[0], dims[1], dims[2], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "solidify:", err)
	os.Exit(1)
}
