// Package fleet is the federation control plane over many solidifyd
// daemons: one gateway process (cmd/solidifygw) that fronts a fleet for
// multiple tenants.
//
// The gateway's job is narrow and leans on invariants the daemons
// already guarantee:
//
//   - Tenancy is the resource-class mapping: every tenant is bound to a
//     jobd resource class, and the gateway stamps that class onto every
//     spec it forwards. A daemon's per-class worker caps therefore *are*
//     the per-tenant compute caps — the gateway adds only fleet-wide
//     admission (max active children, request rate, body size).
//   - Arrays are expanded centrally (jobd.ArraySpec.Expand) and the
//     children fanned out as plain jobs to the least-loaded daemons.
//     Because jobs are pure functions of their specs — bit-identical
//     across daemons, restarts and reruns — placement is pure load
//     balancing, with no correctness weight.
//   - Daemon loss is detected by /healthz probing; children on a dead
//     daemon are requeued and placed elsewhere. Determinism again makes
//     this sound: a rerun yields the same bytes the lost run would have.
//   - Results are replicated into the gateway's own content-addressed
//     store as children finish (blobs dedupe by hash), so merged array
//     results survive both daemon loss and gateway restarts.
//
// The package is exercised hermetically by fleettest: N real daemons on
// loopback listeners with fault-injectable stores, no subprocesses.
package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/jobd"
	"repro/internal/jobd/store"
)

// Tenant is one paying user of the fleet: an auth token, the jobd
// resource class its work runs under, and its admission limits.
type Tenant struct {
	// Name labels the tenant in metrics and fleet status.
	Name string `json:"name"`
	// Token is the bearer token authenticating the tenant's requests.
	Token string `json:"token"`
	// Class is the jobd resource class stamped onto every spec the tenant
	// submits; the daemons' per-class worker caps enforce the tenant's
	// compute share. Empty means jobd's default class.
	Class string `json:"class,omitempty"`
	// MaxActive caps the tenant's non-terminal children across the whole
	// fleet; submissions that would exceed it are rejected over_quota.
	// 0 means unlimited.
	MaxActive int `json:"max_active,omitempty"`
	// RatePerSec and Burst form the tenant's request token bucket.
	// RatePerSec 0 disables rate limiting for the tenant.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
}

// Config assembles a Gateway.
type Config struct {
	// Daemons are the static daemon base URLs known at startup; more can
	// join at runtime via POST /fleet/register.
	Daemons []string
	// Tenants is the tenant table. Requests bearing no known tenant token
	// are rejected unauthorized.
	Tenants []Tenant
	// FleetToken authorizes daemon registration and the fleet-status
	// endpoint (operator surface, distinct from tenant tokens).
	FleetToken string
	// ProbeEvery is the monitor cadence: health probes, placement, status
	// polling and result replication all run on this tick (default 1s).
	ProbeEvery time.Duration
	// DeadAfter is how many consecutive failed probes declare a daemon
	// dead and trigger requeue of its children (default 3).
	DeadAfter int
	// MaxRequestBody caps request bodies (default 1 MiB; oversized
	// submissions get 413 too_large).
	MaxRequestBody int64
	// StoreDir, when non-empty, is the gateway's content-addressed store:
	// finished children's results are replicated there, so merged array
	// results survive daemon loss and gateway restarts.
	StoreDir string
	// StoreFS optionally routes the store through an injectable
	// filesystem (tests); nil selects the real one.
	StoreFS faultfs.FS
	// Client is the HTTP client used for all daemon traffic (default: a
	// client with a 10s timeout).
	Client *http.Client
	// Log, when non-nil, receives gateway progress lines.
	Log func(string)
}

// daemon is the gateway-side record of one solidifyd instance.
type daemon struct {
	url      string
	alive    bool
	fails    int       // consecutive probe failures
	lastSeen time.Time // last successful probe or heartbeat
	// registered marks daemons that joined via POST /fleet/register (as
	// opposed to the static Config.Daemons list); reported in /fleet.
	registered bool
}

// child is one fanned-out array child as the gateway tracks it.
type child struct {
	id      string // gateway child id, "fleet-0001.003"
	arrayID string
	tenant  string
	spec    jobd.Spec

	daemonURL string // hosting daemon, "" while unplaced
	remoteID  string // job id on that daemon

	state  jobd.State  // gateway view (StateQueued while unplaced)
	status jobd.Status // last polled daemon-side status

	// resultHash/schedHash address the replicated blobs in the gateway
	// store once the child finished and replication landed.
	resultHash string
	schedHash  string
	requeues   int
	// persisted marks the child's manifest as spilled to the gateway
	// store (settled children only).
	persisted bool
}

// gwArray is one tenant array fanned across the fleet.
type gwArray struct {
	id        string
	tenant    string
	name      string
	spec      jobd.ArraySpec
	children  []*child
	seq       int64
	persisted bool
}

// Gateway is the federation control plane. Create with New, start the
// monitor with Start, serve Handler over HTTP, stop with Close.
type Gateway struct {
	cfg     Config
	client  *http.Client
	tenants map[string]*Tenant // by token
	byName  map[string]*Tenant // by name
	metrics *gwMetrics

	mu          sync.Mutex
	daemons     map[string]*daemon // by url
	arrays      map[string]*gwArray
	children    map[string]*child // by gateway child id
	buckets     map[string]*bucket
	store       *store.Store // nil without StoreDir
	nextArrayID int

	quit      chan struct{}
	kick      chan struct{} // merged nudges for an immediate monitor pass
	monitorWG sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Gateway from the config.
func New(cfg Config) (*Gateway, error) {
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = time.Second
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	if cfg.MaxRequestBody <= 0 {
		cfg.MaxRequestBody = 1 << 20
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	g := &Gateway{
		cfg:      cfg,
		client:   client,
		tenants:  map[string]*Tenant{},
		byName:   map[string]*Tenant{},
		metrics:  newGWMetrics(),
		daemons:  map[string]*daemon{},
		arrays:   map[string]*gwArray{},
		children: map[string]*child{},
		buckets:  map[string]*bucket{},
		quit:     make(chan struct{}),
		kick:     make(chan struct{}, 1),
	}
	for i := range cfg.Tenants {
		t := &cfg.Tenants[i]
		if t.Name == "" || t.Token == "" {
			return nil, fmt.Errorf("fleet: tenant %d needs a name and a token", i)
		}
		if _, dup := g.tenants[t.Token]; dup {
			return nil, fmt.Errorf("fleet: tenant %q reuses another tenant's token", t.Name)
		}
		if _, dup := g.byName[t.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate tenant name %q", t.Name)
		}
		g.tenants[t.Token] = t
		g.byName[t.Name] = t
	}
	for _, url := range cfg.Daemons {
		g.daemons[url] = &daemon{url: url}
	}
	if cfg.StoreDir != "" {
		st, err := store.OpenFS(cfg.StoreDir, cfg.StoreFS)
		if err != nil {
			return nil, err
		}
		g.store = st
		if err := g.loadStore(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Start launches the monitor loop (probe → requeue → place → poll →
// replicate). One immediate pass runs before the ticker so a gateway is
// useful right after Start.
func (g *Gateway) Start() {
	g.monitorWG.Add(1)
	go func() {
		defer g.monitorWG.Done()
		g.monitorPass()
		tick := time.NewTicker(g.cfg.ProbeEvery)
		defer tick.Stop()
		for {
			select {
			case <-g.quit:
				return
			case <-tick.C:
				g.monitorPass()
			case <-g.kick:
				g.monitorPass()
			}
		}
	}()
}

// Close stops the monitor and releases the gateway store.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		close(g.quit)
	})
	g.monitorWG.Wait()
	g.mu.Lock()
	st := g.store
	g.mu.Unlock()
	if st != nil {
		_ = st.Close()
	}
}

// logf reports a gateway-side event through the configured logger.
func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Log != nil {
		g.cfg.Log(fmt.Sprintf(format, args...))
	}
}

// tenantActive counts a tenant's unsettled children; g.mu must be held.
func (g *Gateway) tenantActive(name string) int {
	n := 0
	for _, c := range g.children {
		if c.tenant == name && !g.settledLocked(c) {
			n++
		}
	}
	return n
}

// sortedArrays returns the arrays in submission order; g.mu must be held.
func (g *Gateway) sortedArrays() []*gwArray {
	out := make([]*gwArray, 0, len(g.arrays))
	for _, a := range g.arrays {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}
