package kernels

// kernels.go is the public dispatch surface: one entry point per kernel,
// selecting the optimization-ladder variant, plus the Fig. 5 vectorization
// strategies and the Algorithm-2 split sweeps.

// PhiSweep updates f.PhiDst from f.PhiSrc/f.MuSrc with the selected variant.
func PhiSweep(ctx *Ctx, f *Fields, sc *Scratch, v Variant) {
	switch v {
	case VarGeneral:
		phiSweepGeneral(ctx, f)
	case VarBasic:
		phiSweepScalar(ctx, f, sc, phiOpts{})
	case VarSIMD:
		phiSweepVec(ctx, f, sc, phiOpts{})
	case VarTz:
		phiSweepVec(ctx, f, sc, phiOpts{tz: true})
	case VarStag:
		phiSweepVec(ctx, f, sc, phiOpts{tz: true, stag: true})
	default: // VarShortcut
		phiSweepVec(ctx, f, sc, phiOpts{tz: true, stag: true, shortcut: true})
	}
}

// PhiSweepStrategy updates the φ-field with one of the Fig. 5 vectorization
// strategies, all at the full remaining optimization level.
func PhiSweepStrategy(ctx *Ctx, f *Fields, sc *Scratch, s PhiStrategy) {
	switch s {
	case StratCellwise:
		phiSweepVec(ctx, f, sc, phiOpts{tz: true, stag: true})
	case StratCellwiseShortcut:
		phiSweepVec(ctx, f, sc, phiOpts{tz: true, stag: true, shortcut: true})
	default: // StratFourCell
		phiSweepFourCell(ctx, f, sc, true)
	}
}

// MuSweep updates f.MuDst (the fused Algorithm-1 µ-kernel, including the
// anti-trapping current) with the selected variant.
func MuSweep(ctx *Ctx, f *Fields, sc *Scratch, v Variant) {
	switch v {
	case VarGeneral:
		muSweepGeneral(ctx, f)
	case VarBasic:
		muSweepScalar(ctx, f, sc, muOpts{withJat: true})
	case VarSIMD:
		muSweepFourCell(ctx, f, sc, muOpts{withJat: true, simdCSE: true})
	case VarTz:
		muSweepFourCell(ctx, f, sc, muOpts{withJat: true, simdCSE: true, tz: true})
	case VarStag:
		muSweepFourCell(ctx, f, sc, muOpts{withJat: true, simdCSE: true, tz: true, stag: true})
	default: // VarShortcut
		muSweepFourCell(ctx, f, sc, muOpts{withJat: true, simdCSE: true, tz: true, stag: true, shortcut: true})
	}
}

// MuSweepLocal computes the µ update without the anti-trapping current
// (Algorithm 2, line 6): it depends on φ(t+Δt) only locally, so the φ ghost
// exchange can overlap it.
func MuSweepLocal(ctx *Ctx, f *Fields, sc *Scratch, v Variant) {
	o := muOpts{withJat: false, simdCSE: v >= VarSIMD, tz: v >= VarTz, stag: v >= VarStag, shortcut: v >= VarShortcut}
	if v >= VarSIMD {
		muSweepFourCell(ctx, f, sc, o)
		return
	}
	muSweepScalar(ctx, f, sc, o)
}

// MuSweepNeighbor adds the −∇·J_at correction to f.MuDst (Algorithm 2,
// line 8); it requires the φ(t+Δt) ghost layers.
func MuSweepNeighbor(ctx *Ctx, f *Fields, sc *Scratch, v Variant) {
	o := muOpts{jatOnly: true, simdCSE: v >= VarSIMD, tz: v >= VarTz, stag: v >= VarStag, shortcut: v >= VarShortcut}
	muSweepScalar(ctx, f, sc, o)
}
