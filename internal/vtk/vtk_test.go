package vtk

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestWriteFieldHeaderAndSize(t *testing.T) {
	f := grid.NewField(4, 3, 2, 2, 1, grid.SoA)
	f.Interior(func(x, y, z int) {
		f.Set(0, x, y, z, float64(x))
		f.Set(1, x, y, z, float64(z))
	})
	var buf bytes.Buffer
	if err := WriteField(&buf, f, 1.0, []string{"phi0", "phi1"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DIMENSIONS 4 3 2",
		"POINT_DATA 24",
		"SCALARS phi0 float 1",
		"SCALARS phi1 float 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Two components × 24 cells × 4 bytes of payload must be present.
	if buf.Len() < 2*24*4 {
		t.Errorf("output too small: %d bytes", buf.Len())
	}
}

func TestWriteFieldNameMismatch(t *testing.T) {
	f := grid.NewField(2, 2, 2, 2, 1, grid.SoA)
	if err := WriteField(&bytes.Buffer{}, f, 1, []string{"only-one"}); err == nil {
		t.Error("name/component mismatch accepted")
	}
}

func TestBigEndianPayload(t *testing.T) {
	f := grid.NewField(1, 1, 1, 1, 1, grid.SoA)
	f.Set(0, 0, 0, 0, 1.0)
	var buf bytes.Buffer
	if err := WriteField(&buf, f, 1, []string{"v"}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	idx := bytes.Index(b, []byte("LOOKUP_TABLE default\n"))
	payload := b[idx+len("LOOKUP_TABLE default\n"):]
	// float32(1.0) big-endian = 3F 80 00 00.
	if payload[0] != 0x3F || payload[1] != 0x80 {
		t.Errorf("payload not big-endian: % x", payload[:4])
	}
}
