package solver

import (
	"math"

	"repro/internal/comm"
	"repro/internal/grid"
	"repro/internal/kernels"
)

// activity.go implements per-z-slab activity tracking: the paper's dynamics
// live in a thin interface band, so bulk solid below the front and bulk melt
// above it are (near-)fixed points of both kernels. A z-slice may *sleep* —
// skip both sweeps — only when the skip is provably bit-identical to the
// full sweep:
//
//   - The slice and every slice within the wake margin (≥ the kernels'
//     stencil radius of 1, default 2) hold φ at exactly one simplex vertex
//     (one phase exactly 1.0, the rest exactly +0.0, compared on float64
//     bits), including the x/y ghost ring, so every stencil input of every
//     cell in the slice is a known constant.
//   - µ is bitwise-uniform over the same region (for the φ-sweep only the
//     slice's own interior matters: the φ-kernel reads µ at cell centers).
//   - A proxy run of the *actual* active kernel — same variant/strategy,
//     same Ctx (the analytic temperature depends on the global z), through
//     the same *Range entry point, on a tiny single-slice field holding the
//     uniform state — reproduces the would-be output. For φ the output must
//     equal the input (then skipping = copying src→dst); for µ the output
//     must be uniform (then skipping = broadcasting the proxy value, which
//     also captures the frozen-gradient drift term ∂µ/∂T·∂T/∂t that makes
//     bulk µ move even where nothing diffuses).
//
// Every proxy interior cell must agree bitwise, which covers the SIMD
// four-cell group lanes and the scalar remainder path alike (the proxy is
// min(NX, 7) cells wide so both paths execute). Because all stencil inputs
// of a sleeping cell are bitwise-equal to the proxy's inputs and the
// kernels are deterministic, the full sweep would compute exactly the
// proxy's output — the invariant "a slab never sleeps through a change
// that could alter its next value" holds by construction, and the map is
// conservatively re-derived from field data every step (window shifts,
// restores and schedule events need no bespoke wake logic for kernel
// correctness; they only reset the halo-skip counters below).
//
// The µ-sweep additionally reads φdst at the cell center (the ∂φ/∂t source
// term) and at face neighbors inside the anti-trapping flux. A µ-slice
// sleeps only when its φ-slice slept (center: φdst == φsrc by the copy),
// and the neighbor reads are provably skipped: the anti-trapping guards
// fire on φsrc-only predicates (pure solid ⇒ zero liquid fraction at the
// face; pure liquid ⇒ zero φ gradient) before any φdst load, so the full
// sweep takes the identical instruction path on identical φsrc inputs.
//
// Halo-round skipping: when a face's entire pack region slept for enough
// consecutive steps (quietRounds, tracked per tag to bridge the two-step
// ghost provenance of the double-buffered fields), the solver marks the
// face quiet for the next exchange and comm sends a zero-length sleep
// token instead of packing — the receiver keeps its (provably identical)
// ghost bytes. Out-of-band events that rewrite field or ghost content
// (bursts, SetBC, window shifts, restores) reset the counters, forcing
// real rounds.

// bitsOne is the IEEE-754 bit pattern of +1.0; a simplex vertex is one
// component at exactly these bits and the rest at exactly zero bits (+0.0
// — a slice holding -0.0 stays awake, conservatively).
const bitsOne = 0x3FF0000000000000

// defaultWakeMargin is the activation margin in z-slices when
// Config.WakeMargin is zero: conservatively wider than the stencil radius
// of 1 the re-derived-every-step predicate strictly needs.
const defaultWakeMargin = 2

// quietRounds is how many consecutive clean steps a face must accumulate
// before its halo round may be skipped. The minimum safe value is 2 for
// the post-sweep dst exchanges and 3 for the deferred µsrc exchange (ghost
// provenance spans two steps through the double-buffer swap); one extra
// round of margin costs one real exchange per sleep onset.
const quietRounds = 3

// proxyNX caps the proxy field width: one SIMD four-cell group plus a
// three-cell scalar remainder exercises every lane position and the scalar
// tail, so any real cell's code path is represented by a proxy cell.
const proxyNX = 7

// activity is the per-rank activity tracker. It lives on the rank and is
// only touched from the rank's goroutine (derivations happen at sweep
// dispatch, before any slab task is queued, so skip decisions depend on
// step-start field state only — never on Config.Parallelism).
type activity struct {
	margin int
	valid  bool // slice classifications describe the current step

	// φ classification of slices [-1, nz], indexed z+1: vertex phase and
	// whether the slice (interior + x/y ghost ring) is exactly that vertex.
	vertex []int
	vOK    []bool
	// µ interior uniformity at φ-dispatch time (ghosts may still be in
	// flight then under the deferred-exchange overlap modes).
	muOK  []bool
	muVal [][kernels.NR]float64
	// µ classification including the ghost ring, taken at µ-dispatch time
	// when the µsrc ghosts are settled in every overlap mode.
	muROK  []bool
	muRVal [][kernels.NR]float64

	phiSleep []bool // per interior slice: φ-sweep skipped this step
	muSleep  []bool // per interior slice: µ-sweep skipped this step
	drift    []bool // sleeping µ-slice whose broadcast value ≠ step-start value
	muBcast  [][kernels.NR]float64

	phiActive int // awake slices in the last φ derivation
	muActive  int

	// Consecutive clean steps per face: the face's pack region slept (and,
	// for µ, kept its exact value) through the step. Reset on any
	// out-of-band field or ghost mutation.
	cleanPhi [grid.NumFaces]int
	cleanMu  [grid.NumFaces]int

	proxy   *kernels.Fields
	proxySc *kernels.Scratch

	runs  [][2]int  // reusable active-run scratch
	runs1 [1][2]int // no-tracking fallback: one full-extent run
}

// ensure sizes the tracker for the rank's block (first use only).
func (a *activity) ensure(s *Sim, nx, nz int) {
	if a.phiSleep != nil {
		return
	}
	a.margin = s.Cfg.WakeMargin
	if a.margin == 0 {
		a.margin = defaultWakeMargin
	}
	if a.margin < 1 {
		a.margin = 1
	}
	n := nz + 2
	a.vertex = make([]int, n)
	a.vOK = make([]bool, n)
	a.muOK = make([]bool, n)
	a.muVal = make([][kernels.NR]float64, n)
	a.muROK = make([]bool, n)
	a.muRVal = make([][kernels.NR]float64, n)
	a.phiSleep = make([]bool, nz)
	a.muSleep = make([]bool, nz)
	a.drift = make([]bool, nz)
	a.muBcast = make([][kernels.NR]float64, nz)
	a.runs = make([][2]int, 0, nz/2+2)
	pnx := nx
	if pnx > proxyNX {
		pnx = proxyNX
	}
	a.proxy = kernels.NewFields(pnx, 1, 1)
	a.proxySc = kernels.NewScratch(pnx, 1)
}

// invalidate discards the activity map and halo-skip history. Called
// whenever field interiors or ghost fills change outside the timestep
// protocol (window shift, restore, nucleation burst, BC change, re-init).
func (a *activity) invalidate() {
	a.valid = false
	for f := range a.cleanPhi {
		a.cleanPhi[f] = 0
		a.cleanMu[f] = 0
	}
}

// invalidateActivity resets every rank's tracker.
func (s *Sim) invalidateActivity() {
	for _, r := range s.ranks {
		r.act.invalidate()
	}
}

// rowBits reports whether the x-row [x0,x1) of component c at (y,z) holds
// exactly the bit pattern want in every cell.
func rowBits(f *grid.Field, c, x0, x1, y, z int, want uint64) bool {
	i := f.Idx(c, x0, y, z)
	for _, v := range f.Data[i : i+x1-x0] {
		if math.Float64bits(v) != want {
			return false
		}
	}
	return true
}

// classifyPhi reports whether slice z (ghost slices -1 and nz allowed) is
// exactly one simplex vertex over the interior and the full x/y ghost ring
// (corners included), and which phase.
func classifyPhi(f *grid.Field, z int) (vertex int, ok bool) {
	v := -1
	for c := 0; c < f.NComp; c++ {
		if math.Float64bits(f.At(c, 0, 0, z)) == bitsOne {
			v = c
			break
		}
	}
	if v < 0 {
		return -1, false
	}
	g := f.G
	for c := 0; c < f.NComp; c++ {
		want := uint64(0)
		if c == v {
			want = bitsOne
		}
		for y := -g; y < f.NY+g; y++ {
			if !rowBits(f, c, -g, f.NX+g, y, z, want) {
				return -1, false
			}
		}
	}
	return v, true
}

// classifyMu reports whether slice z is bitwise-uniform per component,
// over the interior only or including the x/y ghost ring, and the value.
func classifyMu(f *grid.Field, z int, ring bool) (val [kernels.NR]float64, ok bool) {
	g := 0
	if ring {
		g = f.G
	}
	for k := 0; k < f.NComp; k++ {
		val[k] = f.At(k, 0, 0, z)
		want := math.Float64bits(val[k])
		for y := -g; y < f.NY+g; y++ {
			if !rowBits(f, k, -g, f.NX+g, y, z, want) {
				return val, false
			}
		}
	}
	return val, true
}

// fillProxy loads the proxy fields with the uniform state of a candidate
// slice: φ at the vertex in both buffers (a slept φ-slice has dst == src),
// µ at the slice value.
func (a *activity) fillProxy(vertex int, mu *[kernels.NR]float64) {
	for c := 0; c < kernels.NP; c++ {
		v := 0.0
		if c == vertex {
			v = 1
		}
		a.proxy.PhiSrc.FillComp(c, v)
		a.proxy.PhiDst.FillComp(c, v)
	}
	for k := 0; k < kernels.NR; k++ {
		a.proxy.MuSrc.FillComp(k, mu[k])
		a.proxy.MuDst.FillComp(k, 0)
	}
}

// proxyCtx builds the sweep context of local slice z: the proxy's single
// slice must see the same analytic temperature as the real slice.
func (a *activity) proxyCtx(r *rank, z int) kernels.Ctx {
	ctx := r.ctx
	ctx.ZOff += z
	return ctx
}

// phiProxySleeps runs the active φ-kernel on the proxy and reports whether
// the uniform state is an exact fixed point (dst bits == src bits in every
// proxy cell — every lane and the scalar tail).
func (a *activity) phiProxySleeps(s *Sim, r *rank, z, vertex int, mu *[kernels.NR]float64) bool {
	a.fillProxy(vertex, mu)
	ctx := a.proxyCtx(r, z)
	if s.usePhiStrategy {
		kernels.PhiSweepStrategyRange(&ctx, a.proxy, a.proxySc, s.phiStrategy, 0, 1)
	} else {
		kernels.PhiSweepRange(&ctx, a.proxy, a.proxySc, s.phiVariant, 0, 1)
	}
	d := a.proxy.PhiDst
	for c := 0; c < kernels.NP; c++ {
		want := uint64(0)
		if c == vertex {
			want = bitsOne
		}
		if !rowBits(d, c, 0, d.NX, 0, 0, want) {
			return false
		}
	}
	return true
}

// muProxyValue runs the active µ-kernel (fused, or the split local+neighbor
// pair exactly as the overlap mode would) on the proxy and returns the
// uniform output value; ok is false when the proxy cells disagree, which
// keeps the slice awake.
func (a *activity) muProxyValue(s *Sim, r *rank, z, vertex int, mu *[kernels.NR]float64, split bool) (out [kernels.NR]float64, ok bool) {
	a.fillProxy(vertex, mu)
	ctx := a.proxyCtx(r, z)
	if split {
		kernels.MuSweepLocalRange(&ctx, a.proxy, a.proxySc, s.muVariant, 0, 1)
		kernels.MuSweepNeighborRange(&ctx, a.proxy, a.proxySc, s.muVariant, 0, 1)
	} else {
		kernels.MuSweepRange(&ctx, a.proxy, a.proxySc, s.muVariant, 0, 1)
	}
	d := a.proxy.MuDst
	for k := 0; k < kernels.NR; k++ {
		out[k] = d.At(k, 0, 0, 0)
		if !rowBits(d, k, 0, d.NX, 0, 0, math.Float64bits(out[k])) {
			return out, false
		}
	}
	return out, true
}

// derivePhi classifies every slice and decides the step's φ-sleep set. Runs
// on the rank goroutine at φ-dispatch, before any slab task is queued.
// Under the deferred-exchange modes a µsrc ghost exchange may be in flight
// here; only µ interiors are read (the φ-kernel never reads µ ghosts).
func (a *activity) derivePhi(s *Sim, r *rank) {
	f := r.fields
	nz := f.PhiSrc.NZ
	a.ensure(s, f.PhiSrc.NX, nz)
	for z := -1; z <= nz; z++ {
		a.vertex[z+1], a.vOK[z+1] = classifyPhi(f.PhiSrc, z)
	}
	for z := 0; z < nz; z++ {
		a.muVal[z+1], a.muOK[z+1] = classifyMu(f.MuSrc, z, false)
	}
	active := 0
	for z := 0; z < nz; z++ {
		ok := a.vOK[z+1] && a.muOK[z+1]
		if ok {
			v := a.vertex[z+1]
			lo, hi := z-a.margin, z+a.margin
			if lo < -1 {
				lo = -1
			}
			if hi > nz {
				hi = nz
			}
			for j := lo; j <= hi; j++ {
				if !a.vOK[j+1] || a.vertex[j+1] != v {
					ok = false
					break
				}
			}
			ok = ok && a.phiProxySleeps(s, r, z, v, &a.muVal[z+1])
		}
		a.phiSleep[z] = ok
		if !ok {
			active++
		}
	}
	a.phiActive = active
	a.valid = true
}

// deriveMu decides the step's µ-sleep set. Runs at µ-dispatch, after the
// µsrc ghosts settled in every overlap mode, so the classification may
// include the ghost ring. µ-sleep requires the φ-slice to have slept this
// step (the µ-kernel's φdst center read then equals φsrc) plus bitwise µ
// uniformity with equal values across the wake margin.
func (a *activity) deriveMu(s *Sim, r *rank, split bool) {
	if !a.valid {
		return
	}
	f := r.fields
	nz := f.MuSrc.NZ
	if a.phiActive == nz {
		for z := 0; z < nz; z++ {
			a.muSleep[z] = false
		}
		a.muActive = nz
		return
	}
	for z := -1; z <= nz; z++ {
		a.muRVal[z+1], a.muROK[z+1] = classifyMu(f.MuSrc, z, true)
	}
	active := 0
	for z := 0; z < nz; z++ {
		ok := a.phiSleep[z] && a.muROK[z+1]
		if ok {
			want := &a.muRVal[z+1]
			lo, hi := z-a.margin, z+a.margin
			if lo < -1 {
				lo = -1
			}
			if hi > nz {
				hi = nz
			}
			for j := lo; j <= hi; j++ {
				if !a.muROK[j+1] || !sameMuBits(&a.muRVal[j+1], want) {
					ok = false
					break
				}
			}
		}
		if ok {
			a.muBcast[z], ok = a.muProxyValue(s, r, z, a.vertex[z+1], &a.muRVal[z+1], split)
		}
		a.muSleep[z] = ok
		a.drift[z] = ok && !sameMuBits(&a.muBcast[z], &a.muRVal[z+1])
		if !ok {
			active++
		}
	}
	a.muActive = active
}

// sameMuBits compares two µ values bitwise per component.
func sameMuBits(x, y *[kernels.NR]float64) bool {
	for k := 0; k < kernels.NR; k++ {
		if math.Float64bits(x[k]) != math.Float64bits(y[k]) {
			return false
		}
	}
	return true
}

// prepareActivity derives (or reuses) the sleep set for one sweep op and
// returns it, or nil when tracking is disabled or not yet established.
func (s *Sim) prepareActivity(r *rank, op sweepOp) []bool {
	if s.Cfg.DisableActiveSweep {
		return nil
	}
	a := &r.act
	switch op {
	case opPhi:
		a.derivePhi(s, r)
		return a.phiSleep
	case opMu:
		a.deriveMu(s, r, false)
	case opMuLocal:
		a.deriveMu(s, r, true)
	}
	// opMuNeighbor reuses the decision taken at the local pass.
	if !a.valid {
		return nil
	}
	return a.muSleep
}

// activeRuns converts a sleep set into maximal awake [z0,z1) runs, reusing
// the tracker's scratch. A nil sleep set yields one full-extent run.
func (a *activity) activeRuns(sleep []bool, nz int) [][2]int {
	if sleep == nil {
		a.runs1[0] = [2]int{0, nz}
		return a.runs1[:]
	}
	runs := a.runs[:0]
	start := -1
	for z := 0; z < nz; z++ {
		switch {
		case !sleep[z] && start < 0:
			start = z
		case sleep[z] && start >= 0:
			runs = append(runs, [2]int{start, z})
			start = -1
		}
	}
	if start >= 0 {
		runs = append(runs, [2]int{start, nz})
	}
	a.runs = runs
	return runs
}

// applySkips realizes the skipped sweeps on the rank goroutine: a slept
// φ-slice copies src→dst (the proxy proved the kernel is an exact fixed
// point there); a slept µ-slice broadcasts the proxy output (which carries
// the uniform frozen-gradient drift). The split µ-kernel's local pass
// defers to the neighbor pass, mirroring where the fused value lands.
func (s *Sim) applySkips(r *rank, op sweepOp, sleep []bool) {
	if sleep == nil || op == opMuLocal {
		return
	}
	a := &r.act
	f := r.fields
	for z, slept := range sleep {
		if !slept {
			continue
		}
		if op == opPhi {
			copySliceInterior(f.PhiDst, f.PhiSrc, z)
		} else {
			broadcastSlice(f.MuDst, z, &a.muBcast[z])
		}
	}
}

// copySliceInterior copies the interior of slice z between same-shape
// fields row by row (contiguous in x).
func copySliceInterior(dst, src *grid.Field, z int) {
	for c := 0; c < src.NComp; c++ {
		for y := 0; y < src.NY; y++ {
			i := src.Idx(c, 0, y, z)
			copy(dst.Data[i:i+src.NX], src.Data[i:i+src.NX])
		}
	}
}

// broadcastSlice fills the interior of slice z with one value per
// component.
func broadcastSlice(f *grid.Field, z int, val *[kernels.NR]float64) {
	for k := 0; k < f.NComp; k++ {
		v := val[k]
		for y := 0; y < f.NY; y++ {
			i := f.Idx(k, 0, y, z)
			row := f.Data[i : i+f.NX]
			for j := range row {
				row[j] = v
			}
		}
	}
}

// faceAsleep reports whether a face's entire pack region slept this step:
// z-faces pack one boundary slice (plus its ghost ring, covered by the
// sleep predicate); x/y faces pack a region spanning every slice.
func faceAsleep(sleep []bool, face grid.Face) bool {
	switch face {
	case grid.ZMin:
		return sleep[0]
	case grid.ZMax:
		return sleep[len(sleep)-1]
	default:
		for _, slept := range sleep {
			if !slept {
				return false
			}
		}
		return true
	}
}

// faceMuClean is faceAsleep for µ with the extra demand that the value did
// not drift — a token round asserts the pack bytes are unchanged, and bulk
// µ moves with the frozen temperature gradient even while sleeping.
func (a *activity) faceMuClean(face grid.Face) bool {
	switch face {
	case grid.ZMin:
		return a.muSleep[0] && !a.drift[0]
	case grid.ZMax:
		n := len(a.muSleep) - 1
		return a.muSleep[n] && !a.drift[n]
	default:
		for z, slept := range a.muSleep {
			if !slept || a.drift[z] {
				return false
			}
		}
		return true
	}
}

// updateClean advances the per-face clean-step counters at the end of a
// step.
func (a *activity) updateClean() {
	if !a.valid {
		for f := range a.cleanPhi {
			a.cleanPhi[f] = 0
			a.cleanMu[f] = 0
		}
		return
	}
	for f := grid.Face(0); f < grid.NumFaces; f++ {
		if faceAsleep(a.phiSleep, f) {
			a.cleanPhi[f]++
		} else {
			a.cleanPhi[f] = 0
		}
		if a.faceMuClean(f) {
			a.cleanMu[f]++
		} else {
			a.cleanMu[f] = 0
		}
	}
}

// quietKind names the exchange sites of the timestep protocol; each has its
// own skip precondition derived from the ghost provenance of the
// double-buffered fields.
type quietKind int

const (
	// quietPhiDst is the post-φ-sweep φdst exchange (all overlap modes).
	quietPhiDst quietKind = iota
	// quietMuDst is the post-µ-sweep µdst exchange (OverlapNone/OverlapPhi).
	quietMuDst
	// quietMuSrc is the deferred µsrc exchange at the start of the next
	// step (OverlapMu/OverlapBoth); it relies on counters alone because the
	// current step's sleep set is not derived yet.
	quietMuSrc
)

// markQuiet flags faces whose next halo round for tag may be skipped. The
// mask is one-shot: comm consumes it in the immediately following exchange
// of this rank and tag.
func (s *Sim) markQuiet(r *rank, tag comm.Tag, kind quietKind) {
	a := &r.act
	if s.Cfg.DisableActiveSweep || !a.valid {
		return
	}
	var mask [grid.NumFaces]bool
	any := false
	for f := grid.Face(0); f < grid.NumFaces; f++ {
		q := false
		switch kind {
		case quietPhiDst:
			q = faceAsleep(a.phiSleep, f) && a.cleanPhi[f] >= quietRounds
		case quietMuDst:
			q = a.faceMuClean(f) && a.cleanMu[f] >= quietRounds
		case quietMuSrc:
			q = a.cleanMu[f] >= quietRounds+1
		}
		if q {
			mask[f] = true
			any = true
		}
	}
	if any {
		s.World.SetQuietFaces(r.id, tag, mask)
	}
}

// ActiveFraction returns the fraction of slice-sweeps (φ and µ combined)
// the last completed step actually computed, aggregated over ranks: 1.0
// means a full sweep everywhere (or tracking disabled / no step taken),
// small values mean the domain is dominated by sleeping bulk.
func (s *Sim) ActiveFraction() float64 {
	if s.Cfg.DisableActiveSweep {
		return 1
	}
	total, active := 0, 0
	for _, r := range s.ranks {
		if !r.act.valid {
			return 1
		}
		nz := r.fields.PhiSrc.NZ
		total += 2 * nz
		active += r.act.phiActive + r.act.muActive
	}
	if total == 0 {
		return 1
	}
	return float64(active) / float64(total)
}
