package phasefield

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/schedule"
)

// The golden-trajectory regression harness: a small deterministic
// production schedule — nucleation burst, pull-velocity ramp, moving-window
// shift, kernel-variant switch, mid-ramp checkpoint — is run for a fixed
// number of steps and its solid-fraction/µ-norm series compared against a
// committed fixture. The kernel equivalence tests prove the variants agree
// with each other; only this harness catches a regression that moves all
// of them together (a changed coefficient, a broken ramp, a mis-seeded
// burst, an off-by-one window shift).
//
// Regenerate the fixture after an intentional physics change with
//
//	go test -run TestGoldenTrajectory -update .

var update = flag.Bool("update", false, "rewrite golden fixtures")

const goldenPath = "testdata/golden_trajectory.json"

type goldenSample struct {
	Step        int     `json:"step"`
	Solid       float64 `json:"solid"`
	MuNorm      float64 `json:"mu_norm"`
	WindowShift int     `json:"window_shift"`
}

type goldenFixture struct {
	Description    string         `json:"description"`
	Steps          int            `json:"steps"`
	SampleEvery    int            `json:"sample_every"`
	CheckpointStep int            `json:"checkpoint_step"`
	TolSolid       float64        `json:"tol_solid"`
	TolMu          float64        `json:"tol_mu"`
	TolRestart     float64        `json:"tol_restart"`
	Samples        []goldenSample `json:"samples"`
}

const (
	goldenSteps    = 40
	goldenEvery    = 2
	goldenCkptStep = 20
)

// goldenConfig is the scenario under test: a production domain small
// enough for CI, decomposed over two ranks, with the moving window active.
func goldenConfig() Config {
	cfg := DefaultConfig(16, 16, 24)
	cfg.PX = 2
	cfg.Variant = kernels.VarStag
	cfg.MovingWindow = true
	cfg.WindowFraction = 0.5
	cfg.Seed = 42
	return cfg
}

// goldenBCRamp is the boundary-environment leg of the golden schedule: the
// bottom µ wall ramps from the eutectic value to a solute-enriched one over
// steps 12–28, spanning the checkpoint step so the restart resumes
// mid-BC-ramp with V3 header state.
var goldenBCRamp = schedule.SetBC{Step: 12, Over: 16, Face: grid.ZMin, Field: schedule.BCMu,
	Kind: grid.BCDirichlet, From: []float64{0, 0}, To: []float64{0.06, -0.03}}

// goldenSchedule drives every event class the engine supports: a velocity
// ramp spanning the checkpoint step (so the restart resumes mid-ramp), a
// burst that pushes the front past the window trigger, a variant switch,
// the mid-run checkpoint itself, and — composed in as a separate
// boundary-environment schedule, exercising Compose on the production
// path — a µ-wall Dirichlet ramp plus a φ top-wall switch.
func goldenSchedule(t *testing.T, ckptPath string) *schedule.Schedule {
	t.Helper()
	base, err := schedule.New(
		schedule.Ramp{Param: schedule.ParamPullVelocity, Step: 0, Over: 30, From: 0.02, To: 0.05},
		schedule.NucleationBurst{Step: 10, Count: 3, Phase: -1, Radius: 2.5, ZMin: 10, ZMax: 16, Seed: 7},
		schedule.SwitchVariant{Step: 26, Phi: kernels.VarShortcut, Mu: kernels.VarShortcut, Strategy: schedule.StrategyKeep},
		schedule.Checkpoint{Every: goldenCkptStep, Path: ckptPath},
	)
	if err != nil {
		t.Fatal(err)
	}
	bcLeg, err := schedule.New(
		goldenBCRamp,
		schedule.SetBC{Step: 32, Face: grid.ZMax, Field: schedule.BCPhi,
			Kind: grid.BCDirichlet, To: []float64{0, 0, 0, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Compose(base, bcLeg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleSim(s *Simulation) goldenSample {
	return goldenSample{
		Step:        s.Step(),
		Solid:       s.SolidFraction(),
		MuNorm:      s.MuNorm(),
		WindowShift: s.WindowShift(),
	}
}

// runGolden advances sim under the schedule to `until` steps, sampling
// every goldenEvery steps (including the entry state). The second return
// is the smallest active fraction observed at any sample point — the
// evidence that the trajectory being compared exercised the skip path.
func runGolden(t *testing.T, sim *Simulation, sched *schedule.Schedule, until int) ([]goldenSample, float64) {
	t.Helper()
	samples := []goldenSample{sampleSim(sim)}
	minActive := 1.0
	for sim.Step() < until {
		n := goldenEvery
		if sim.Step()+n > until {
			n = until - sim.Step()
		}
		if err := sim.RunSchedule(sched, n, ScheduleOptions{}); err != nil {
			t.Fatal(err)
		}
		samples = append(samples, sampleSim(sim))
		if af := sim.ActiveFraction(); af < minActive {
			minActive = af
		}
	}
	return samples, minActive
}

func compareSamples(t *testing.T, label string, got, want []goldenSample, tolSolid, tolMu float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d samples, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Step != w.Step {
			t.Fatalf("%s sample %d: step %d, want %d", label, i, g.Step, w.Step)
		}
		if d := math.Abs(g.Solid - w.Solid); d > tolSolid {
			t.Errorf("%s step %d: solid fraction %.12g drifted %.3g from golden %.12g (tol %g)",
				label, g.Step, g.Solid, d, w.Solid, tolSolid)
		}
		if d := math.Abs(g.MuNorm - w.MuNorm); d > tolMu {
			t.Errorf("%s step %d: µ-norm %.12g drifted %.3g from golden %.12g (tol %g)",
				label, g.Step, g.MuNorm, d, w.MuNorm, tolMu)
		}
		if g.WindowShift != w.WindowShift {
			t.Errorf("%s step %d: window shift %d, want %d", label, g.Step, g.WindowShift, w.WindowShift)
		}
	}
}

func TestGoldenTrajectory(t *testing.T) {
	ckptPath := filepath.Join(t.TempDir(), "golden_%06d.pfcp")
	sched := goldenSchedule(t, ckptPath)

	sim, err := New(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitProduction(); err != nil {
		t.Fatal(err)
	}
	samples, minActive := runGolden(t, sim, sched, goldenSteps)

	// The schedule must actually have exercised its machinery; a golden
	// fixture of a trivial run would guard nothing.
	last := samples[len(samples)-1]
	if last.WindowShift == 0 {
		t.Fatal("golden run never shifted the window")
	}
	if sim.SchedulePos() != 2 {
		t.Fatalf("golden run fired %d one-shot events, want 2", sim.SchedulePos())
	}
	if phi, _, _, _ := sim.Kernels(); phi != kernels.VarShortcut {
		t.Fatal("golden run did not switch variants")
	}
	midCkpt := fmt.Sprintf(ckptPath, goldenCkptStep)
	if _, err := os.Stat(midCkpt); err != nil {
		t.Fatalf("mid-ramp checkpoint not written: %v", err)
	}
	// The composed BC leg must have reached its settled wall state.
	phiBCs, muBCs := sim.DomainBCs()
	if muBCs[grid.ZMin].Kind != grid.BCDirichlet ||
		muBCs[grid.ZMin].Values[0] != 0.06 || muBCs[grid.ZMin].Values[1] != -0.03 {
		t.Fatalf("golden run's µ wall did not settle: %+v", muBCs[grid.ZMin])
	}
	if phiBCs[grid.ZMax].Kind != grid.BCDirichlet {
		t.Fatalf("golden run's φ top wall did not switch: %+v", phiBCs[grid.ZMax])
	}
	// The fixture run must engage activity tracking (melt above the front
	// sleeps for the first third of the run, before µ diffusion wakes the
	// whole small domain) — otherwise the golden comparison would not
	// cover the skip-vs-full path at all.
	if !(minActive < 1) || minActive <= 0 {
		t.Fatalf("golden run's minimum active fraction = %g, want engaged (0 < af < 1)", minActive)
	}

	if *update {
		fx := goldenFixture{
			Description: "16x16x24 production run (PX=2, moving window): " +
				"v ramp 0.02→0.05 over steps 0–30, 3-nucleus burst at step 10, " +
				"stag→shortcut switch at step 26, checkpoint at step 20, " +
				"composed BC leg (µ bottom wall ramp over steps 12–28, " +
				"φ top wall → dirichlet at step 32)",
			Steps: goldenSteps, SampleEvery: goldenEvery, CheckpointStep: goldenCkptStep,
			TolSolid: 2e-6, TolMu: 2e-6, TolRestart: 2e-4,
			Samples: samples,
		}
		buf, err := json.MarshalIndent(&fx, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d samples", goldenPath, len(samples))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to generate): %v", err)
	}
	var fx goldenFixture
	if err := json.Unmarshal(raw, &fx); err != nil {
		t.Fatal(err)
	}
	compareSamples(t, "uninterrupted", samples, fx.Samples, fx.TolSolid, fx.TolMu)

	// Restart leg: resume from the mid-ramp checkpoint and require the
	// continued trajectory to reproduce the same golden tail within the
	// restart tolerance (the float32 checkpoint seeding is the only
	// difference).
	restored, err := Restore(midCkpt, Config{MovingWindow: true, WindowFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Step() != fx.CheckpointStep {
		t.Fatalf("restored at step %d, want %d", restored.Step(), fx.CheckpointStep)
	}
	if phi, _, _, _ := restored.Kernels(); phi != kernels.VarStag {
		t.Fatalf("restored kernel %v, want pre-switch stag", phi)
	}
	// The V3 header must have carried the mid-ramp wall state bit-exactly:
	// the last BC application before the checkpointed step ran at step
	// index CheckpointStep-1.
	var bcBuf [4]float64
	wantWall := goldenBCRamp.ValuesAt(fx.CheckpointStep-1, bcBuf[:])
	_, restoredMu := restored.DomainBCs()
	if restoredMu[grid.ZMin].Kind != grid.BCDirichlet {
		t.Fatalf("restored µ wall kind %v", restoredMu[grid.ZMin].Kind)
	}
	for i := range wantWall {
		if restoredMu[grid.ZMin].Values[i] != wantWall[i] {
			t.Fatalf("restored µ wall value %d: %g, want %g (bit-exact)",
				i, restoredMu[grid.ZMin].Values[i], wantWall[i])
		}
	}
	restartSamples, _ := runGolden(t, restored, sched, goldenSteps)
	tail := fx.Samples[fx.CheckpointStep/fx.SampleEvery:]
	compareSamples(t, "restart", restartSamples, tail, fx.TolRestart, fx.TolRestart)
	if phi, _, _, _ := restored.Kernels(); phi != kernels.VarShortcut {
		t.Error("restarted run did not re-fire the variant switch")
	}
}
