package solver

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
)

func mkSim(t *testing.T, px, py, pz, bx, by, bz int, variant kernels.Variant, overlap OverlapMode) *Sim {
	t.Helper()
	bg, err := grid.NewBlockGrid(px, py, pz, bx, by, bz, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	_, _, nz := bg.GlobalCells()
	p.Temp.Z0 = float64(nz) / 2 * p.Dx
	s, err := New(Config{Params: p, BG: bg, Variant: variant, Overlap: overlap})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil config not rejected")
	}
	bg, _ := grid.NewBlockGrid(1, 1, 2, 4, 4, 4, [3]bool{true, true, false})
	p := core.DefaultParams()
	if _, err := New(Config{Params: p, BG: bg, MovingWindow: true}); err == nil {
		t.Error("moving window with PZ>1 not rejected")
	}
}

func TestScenarioInitialFractions(t *testing.T) {
	s := mkSim(t, 1, 1, 1, 12, 12, 12, kernels.VarShortcut, OverlapNone)

	if err := s.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	if sf := s.SolidFraction(); sf != 0 {
		t.Errorf("liquid scenario solid fraction = %g", sf)
	}
	if err := s.InitScenario(ScenarioSolid); err != nil {
		t.Fatal(err)
	}
	if sf := s.SolidFraction(); sf != 1 {
		t.Errorf("solid scenario solid fraction = %g", sf)
	}
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	sf := s.SolidFraction()
	if sf < 0.3 || sf > 0.7 {
		t.Errorf("interface scenario solid fraction = %g, want ~0.5", sf)
	}
}

func TestScenarioProductionUsesVoronoi(t *testing.T) {
	s := mkSim(t, 2, 1, 1, 8, 16, 16, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioProduction); err != nil {
		t.Fatal(err)
	}
	fr := s.PhaseFractions()
	// All three solids must be nucleated.
	for a := 0; a < 3; a++ {
		if fr[a] <= 0 {
			t.Errorf("solid %d not nucleated: fractions %v", a, fr)
		}
	}
	if fr[core.Liquid] < 0.5 {
		t.Errorf("production scenario should be mostly liquid, got %v", fr)
	}
}

// The decisive distributed-memory test: a 2x2x2-block run must reproduce the
// single-block run bit-for-bit (identical kernels, ghost layers via
// exchange instead of local BCs).
func TestMultiBlockMatchesSingleBlock(t *testing.T) {
	single := mkSim(t, 1, 1, 1, 8, 8, 8, kernels.VarShortcut, OverlapNone)
	multi := mkSim(t, 2, 2, 2, 4, 4, 4, kernels.VarShortcut, OverlapNone)

	for _, s := range []*Sim{single, multi} {
		if err := s.InitScenario(ScenarioInterface); err != nil {
			t.Fatal(err)
		}
		s.Run(5)
		s.Sync()
	}

	gs := single.GatherGlobalPhi()
	gm := multi.GatherGlobalPhi()
	if ok, maxd := gs.InteriorEqual(gm, 1e-13); !ok {
		t.Errorf("multi-block φ differs from single block by %g", maxd)
	}
	ms := single.GatherGlobalMu()
	mm := multi.GatherGlobalMu()
	if ok, maxd := ms.InteriorEqual(mm, 1e-13); !ok {
		t.Errorf("multi-block µ differs from single block by %g", maxd)
	}
}

// All four overlap modes must produce identical physics.
func TestOverlapModesEquivalent(t *testing.T) {
	ref := mkSim(t, 2, 2, 1, 6, 6, 12, kernels.VarShortcut, OverlapNone)
	if err := ref.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	ref.Run(4)
	ref.Sync()
	refPhi := ref.GatherGlobalPhi()
	refMu := ref.GatherGlobalMu()

	for _, mode := range []OverlapMode{OverlapMu, OverlapPhi, OverlapBoth} {
		s := mkSim(t, 2, 2, 1, 6, 6, 12, kernels.VarShortcut, mode)
		if err := s.InitScenario(ScenarioInterface); err != nil {
			t.Fatal(err)
		}
		s.Run(4)
		s.Sync()
		if ok, maxd := s.GatherGlobalPhi().InteriorEqual(refPhi, 1e-12); !ok {
			t.Errorf("%v: φ differs by %g", mode, maxd)
		}
		if ok, maxd := s.GatherGlobalMu().InteriorEqual(refMu, 1e-12); !ok {
			t.Errorf("%v: µ differs by %g", mode, maxd)
		}
	}
}

func TestRunMeasuredMetrics(t *testing.T) {
	s := mkSim(t, 2, 1, 1, 6, 6, 6, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	m := s.RunMeasured(3)
	if m.Steps != 3 || m.Cells != 12*6*6 {
		t.Errorf("metrics bookkeeping wrong: %+v", m)
	}
	if m.MLUPs() <= 0 || m.PhiKernelMLUPs() <= 0 || m.MuKernelMLUPs() <= 0 {
		t.Error("nonpositive MLUP/s")
	}
	if m.CommPhi.Messages == 0 {
		t.Error("no φ messages counted on a 2-block run")
	}
	if s.StepCount() != 3 {
		t.Errorf("step count %d", s.StepCount())
	}
	if s.Time() <= 0 {
		t.Error("time not advancing")
	}
}

func TestFrontHeightAndWindowShift(t *testing.T) {
	s := mkSim(t, 1, 1, 1, 8, 8, 16, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	front := s.FrontHeight()
	if front < 6 || front > 10 {
		t.Errorf("front height = %d, want ~8", front)
	}
	solid0 := s.SolidFraction()
	s.ShiftWindow(4)
	if s.WindowShift() != 4 {
		t.Errorf("window shift = %d", s.WindowShift())
	}
	// Scrolling out solid and scrolling in liquid reduces solid fraction.
	if sf := s.SolidFraction(); sf >= solid0 {
		t.Errorf("solid fraction after shift = %g, want < %g", sf, solid0)
	}
	if f := s.FrontHeight(); f != front-4 {
		t.Errorf("front after shift = %d, want %d", f, front-4)
	}
}

func TestMovingWindowKeepsFrontInDomain(t *testing.T) {
	bg, _ := grid.NewBlockGrid(1, 1, 1, 8, 8, 16, [3]bool{true, true, false})
	p := core.DefaultParams()
	p.Temp.Z0 = 24 // strong undercooling drives fast growth
	p.Temp.G = 0.005
	s, err := New(Config{
		Params: p, BG: bg, Variant: kernels.VarShortcut,
		MovingWindow: true, WindowFrontFraction: 0.55,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	s.Run(120)
	if s.HasNaN() {
		t.Fatal("NaN during moving-window run")
	}
	_, _, nz := bg.GlobalCells()
	if f := s.FrontHeight(); f > int(0.8*float64(nz)) {
		t.Errorf("front escaped the window: %d of %d", f, nz)
	}
}

func TestLiquidScenarioStaysLiquidAboveTE(t *testing.T) {
	bg, _ := grid.NewBlockGrid(1, 1, 1, 8, 8, 8, [3]bool{true, true, false})
	p := core.DefaultParams()
	p.Temp.Z0 = -16 // whole domain above T_E: no solidification may occur
	bcs := grid.AllNeumann()
	bcs[grid.XMin] = grid.BC{Kind: grid.BCPeriodic}
	bcs[grid.XMax] = grid.BC{Kind: grid.BCPeriodic}
	bcs[grid.YMin] = grid.BC{Kind: grid.BCPeriodic}
	bcs[grid.YMax] = grid.BC{Kind: grid.BCPeriodic}
	s, err := New(Config{Params: p, BG: bg, Variant: kernels.VarShortcut, DomainBCs: &bcs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	s.Run(20)
	if sf := s.SolidFraction(); sf != 0 {
		t.Errorf("spontaneous solidification above T_E: %g", sf)
	}
	if s.HasNaN() {
		t.Fatal("NaN in liquid run")
	}
}

func TestVariantsAgreeThroughSolver(t *testing.T) {
	ref := mkSim(t, 1, 1, 1, 8, 8, 8, kernels.VarShortcut, OverlapNone)
	if err := ref.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	ref.Run(3)
	refPhi := ref.GatherGlobalPhi()

	for _, v := range []kernels.Variant{kernels.VarBasic, kernels.VarSIMD, kernels.VarTz, kernels.VarStag} {
		s := mkSim(t, 1, 1, 1, 8, 8, 8, v, OverlapNone)
		if err := s.InitScenario(ScenarioInterface); err != nil {
			t.Fatal(err)
		}
		s.Run(3)
		if ok, maxd := s.GatherGlobalPhi().InteriorEqual(refPhi, 1e-7); !ok {
			t.Errorf("variant %v: φ differs by %g", v, maxd)
		}
	}
}

func TestStringers(t *testing.T) {
	if OverlapNone.String() == "" || OverlapBoth.String() == "" ||
		ScenarioInterface.String() != "interface" || ScenarioProduction.String() != "production" {
		t.Error("stringers broken")
	}
}

func TestSolidFractionConsistentWithPhaseFractions(t *testing.T) {
	s := mkSim(t, 2, 1, 1, 6, 6, 6, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	fr := s.PhaseFractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("phase fractions sum to %g", sum)
	}
	if math.Abs(s.SolidFraction()-(1-fr[core.Liquid])) > 1e-9 {
		t.Error("SolidFraction inconsistent with PhaseFractions")
	}
}

// Ablation: the anti-trapping current (Eq. 4) is the model's quantitative
// correction for solute trapping at thin interfaces. Disabling it must (a)
// change the chemical-potential field at a moving front and (b) leave the
// bulk-diffusion behaviour untouched.
func TestAntiTrappingAblation(t *testing.T) {
	run := func(at float64) *grid.Field {
		bg, _ := grid.NewBlockGrid(1, 1, 1, 8, 8, 16, [3]bool{true, true, false})
		p := core.DefaultParams()
		p.Temp.Z0 = 32 // strong undercooling: the front moves
		p.AT = at
		s, err := New(Config{Params: p, BG: bg, Variant: kernels.VarShortcut})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.InitScenario(ScenarioInterface); err != nil {
			t.Fatal(err)
		}
		s.Run(20)
		if s.HasNaN() {
			t.Fatal("NaN in ablation run")
		}
		return s.GatherGlobalMu()
	}
	withAT := run(1)
	withoutAT := run(0)
	if ok, maxd := withAT.InteriorEqual(withoutAT, 1e-12); ok {
		t.Error("anti-trapping current has no effect at a moving front")
	} else if maxd <= 0 {
		t.Error("no measurable difference")
	}
}

// Ablation: with zero pulling velocity the temperature field is static and
// the front relaxes toward the (stationary) eutectic isotherm instead of
// following a moving one.
func TestZeroVelocityStaticIsotherm(t *testing.T) {
	bg, _ := grid.NewBlockGrid(1, 1, 1, 8, 8, 16, [3]bool{true, true, false})
	p := core.DefaultParams()
	p.Temp.V = 0
	p.Temp.Z0 = 8
	if p.Temp.DTdt() != 0 {
		t.Fatal("static gradient should have zero DTdt")
	}
	s, err := New(Config{Params: p, BG: bg, Variant: kernels.VarShortcut})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	if s.HasNaN() {
		t.Fatal("NaN with V=0")
	}
	front := s.FrontHeight()
	if front < 4 || front > 12 {
		t.Errorf("front %d strayed far from the static isotherm at z=8", front)
	}
}
