package grid

import "fmt"

// BlockGrid describes a static domain decomposition into a regular
// PX×PY×PZ arrangement of equally sized blocks, each BX×BY×BZ cells. This
// mirrors waLBerla's block structure: the decomposition is computed once at
// startup and each process then only knows about its own and neighboring
// blocks.
type BlockGrid struct {
	PX, PY, PZ int     // blocks per axis
	BX, BY, BZ int     // cells per block per axis
	Periodic   [3]bool // domain periodicity per axis
}

// NewBlockGrid validates and returns a block grid.
func NewBlockGrid(px, py, pz, bx, by, bz int, periodic [3]bool) (*BlockGrid, error) {
	if px <= 0 || py <= 0 || pz <= 0 {
		return nil, fmt.Errorf("grid: nonpositive block counts %dx%dx%d", px, py, pz)
	}
	if bx <= 0 || by <= 0 || bz <= 0 {
		return nil, fmt.Errorf("grid: nonpositive block sizes %dx%dx%d", bx, by, bz)
	}
	return &BlockGrid{PX: px, PY: py, PZ: pz, BX: bx, BY: by, BZ: bz, Periodic: periodic}, nil
}

// NumBlocks returns the total number of blocks (= ranks).
func (bg *BlockGrid) NumBlocks() int { return bg.PX * bg.PY * bg.PZ }

// GlobalCells returns the global domain extents in cells.
func (bg *BlockGrid) GlobalCells() (nx, ny, nz int) {
	return bg.PX * bg.BX, bg.PY * bg.BY, bg.PZ * bg.BZ
}

// Coords returns the block coordinates of rank r (x fastest).
func (bg *BlockGrid) Coords(r int) (bx, by, bz int) {
	bx = r % bg.PX
	by = (r / bg.PX) % bg.PY
	bz = r / (bg.PX * bg.PY)
	return
}

// Rank returns the rank owning block (bx,by,bz).
func (bg *BlockGrid) Rank(bx, by, bz int) int {
	return (bz*bg.PY+by)*bg.PX + bx
}

// Origin returns the global cell coordinates of rank r's first interior cell.
func (bg *BlockGrid) Origin(r int) (ox, oy, oz int) {
	bx, by, bz := bg.Coords(r)
	return bx * bg.BX, by * bg.BY, bz * bg.BZ
}

// Neighbor returns the rank adjacent to r across face under the
// construction-time periodicity. Communicators with a live (mutable)
// topology consult their own grid.Topology instead.
func (bg *BlockGrid) Neighbor(r int, face Face) (int, bool) {
	return NewTopology(bg).Neighbor(r, face)
}

// BlockBCs derives the per-face boundary set for rank r from the domain
// boundary set under the construction-time periodicity (see
// Topology.BlockBCs).
func (bg *BlockGrid) BlockBCs(r int, domain BoundarySet) BoundarySet {
	return NewTopology(bg).BlockBCs(r, domain)
}
