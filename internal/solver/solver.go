// Package solver composes the kernels, the block grid and the
// communication layer into the full time-stepping loops of the paper:
// Algorithm 1 (blocking communication) and Algorithm 2 (communication
// hiding with the split µ-kernel), the three benchmark scenarios
// (interface / solid / liquid), the production Voronoi setup and the
// moving-window technique of directional solidification.
package solver

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/voronoi"
)

// OverlapMode selects which ghost exchanges are hidden behind computation
// (the four combinations measured in Fig. 8).
type OverlapMode int

const (
	// OverlapNone is Algorithm 1: both exchanges blocking.
	OverlapNone OverlapMode = iota
	// OverlapMu hides the µ exchange behind the φ-sweep (the paper's
	// production choice: best overall performance).
	OverlapMu
	// OverlapPhi hides the φ exchange behind the split µ-sweep.
	OverlapPhi
	// OverlapBoth hides both exchanges (Algorithm 2 as printed).
	OverlapBoth
)

func (m OverlapMode) String() string {
	switch m {
	case OverlapNone:
		return "no overlap"
	case OverlapMu:
		return "mu overlap"
	case OverlapPhi:
		return "phi overlap"
	case OverlapBoth:
		return "mu+phi overlap"
	}
	return fmt.Sprintf("OverlapMode(%d)", int(m))
}

// Scenario selects the domain composition of the §5.1 benchmarks or the
// production setup.
type Scenario int

const (
	// ScenarioInterface fills the block with the solidification front
	// (the middle third of a production domain) — the slowest, and
	// therefore production-representative, composition.
	ScenarioInterface Scenario = iota
	// ScenarioSolid is fully solidified lamellae (the lower third).
	ScenarioSolid
	// ScenarioLiquid is pure melt (the upper third).
	ScenarioLiquid
	// ScenarioProduction is the full directional-solidification setup:
	// Voronoi solid nuclei at the bottom, melt above (Fig. 2).
	ScenarioProduction
)

func (s Scenario) String() string {
	switch s {
	case ScenarioInterface:
		return "interface"
	case ScenarioSolid:
		return "solid"
	case ScenarioLiquid:
		return "liquid"
	case ScenarioProduction:
		return "production"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Config assembles a simulation.
type Config struct {
	Params  *core.Params
	BG      *grid.BlockGrid
	Variant kernels.Variant
	Overlap OverlapMode

	// Transport selects the communication fabric. Nil keeps every rank in
	// this process (the in-process channel transport); a comm.TCPConfig
	// transport makes this process drive only the ranks it owns, with halo
	// frames and collectives crossing process boundaries. The Sim owns the
	// transport and closes it with the World.
	Transport comm.Transport

	// DomainBCs are the physical boundary conditions; zero value selects
	// the directional-solidification set (periodic laterally, Dirichlet
	// bottom, Neumann top).
	DomainBCs *grid.BoundarySet

	// MovingWindow enables the frozen-front window shift; requires a
	// z-undecomposed block grid (PZ == 1).
	MovingWindow bool
	// WindowFrontFraction is the relative front height that triggers a
	// shift (default 0.6).
	WindowFrontFraction float64

	// Parallelism is the total worker budget for intra-block sweep
	// parallelism across all blocks (0 selects runtime.GOMAXPROCS(0)).
	// When it exceeds the block count, each block's sweeps are decomposed
	// into z-slabs executed concurrently by the persistent worker pool;
	// otherwise sweeps run serially on the per-block goroutines exactly as
	// without the engine. SetWorkerBudget re-targets it between steps.
	Parallelism int

	// Gauge, when non-nil, is shared instrumentation counting concurrently
	// busy sweep workers. The job daemon installs one gauge across every
	// simulation it runs so the global-budget invariant is observable; nil
	// gets a private gauge.
	Gauge *WorkerGauge

	// Faults, when non-nil, arms deterministic fault injection: the sweeps
	// hit the SweepPoint crash points, and an armed point panics inside the
	// kernel exactly like a poisoned sweep would. Production leaves it nil
	// (the hooks then cost one nil check per task).
	Faults *faultfs.Points

	// DisableActiveSweep turns off per-z-slab activity tracking (see
	// activity.go), forcing full kernel sweeps and real halo rounds
	// everywhere. The zero value keeps tracking ON: skipping is provably
	// bit-identical, so the only reason to disable it is measurement.
	DisableActiveSweep bool

	// WakeMargin is the activation margin in z-slices: a slice sleeps only
	// when the uniformity predicate also holds this many slices to either
	// side, so an approaching front wakes it before its values could
	// differ. 0 selects the default (2); values below 1 are clamped to the
	// stencil radius of 1. Larger margins only reduce skipping.
	WakeMargin int

	// DisableStepTelemetry turns off per-step phase-record capture (see
	// telemetry.go). The zero value keeps capture ON: it samples existing
	// counters at step boundaries only, allocates nothing in steady state
	// and never feeds back into the numerics, so the only reason to
	// disable it is to measure its (sub-percent) overhead.
	DisableStepTelemetry bool

	Seed int64 // RNG seed for the Voronoi setup
}

// rank is the per-block state owned by one worker goroutine.
type rank struct {
	id     int
	fields *kernels.Fields
	sc     *kernels.Scratch
	phiBCs grid.BoundarySet
	muBCs  grid.BoundarySet
	zOff   int // global z of local z=0 (excluding window offset)

	ctx kernels.Ctx    // per-step sweep context, reused across steps
	wg  sync.WaitGroup // joins this rank's in-flight slab tasks
	act activity       // per-z-slab activity tracker (activity.go)

	phiKernelTime time.Duration
	muKernelTime  time.Duration
}

// Sim is a running simulation over all blocks of the decomposition.
type Sim struct {
	Cfg   Config
	World *comm.World
	ranks []*rank

	engine         *sweepEngine // nil when every rank gets a single slab
	workersPerRank int
	gauge          *WorkerGauge // never nil; Cfg.Gauge or a private one
	faults         *faultSink   // never nil; collects recovered kernel panics

	// Active kernel selection. Initialized from Cfg.Variant; scheduled
	// SwitchVariant events (and checkpoint restarts) may change it at
	// step boundaries. usePhiStrategy pins the φ-sweep to one of the
	// Fig. 5 vectorization strategies instead of variant dispatch.
	phiVariant     kernels.Variant
	muVariant      kernels.Variant
	phiStrategy    kernels.PhiStrategy
	usePhiStrategy bool

	schedPos int // one-shot schedule events already fired

	// Applied-event audit log (the schedule recorder): every event
	// RunSchedule applies is appended once, replayable via AppliedEvents.
	record     []schedule.Event
	recordSeen map[string]bool

	step         int
	time         float64
	windowShift  int // total cells scrolled out of the window
	domainPhiBCs grid.BoundarySet
	domainMuBCs  grid.BoundarySet
	bcScratch    [kernels.NP]float64 // per-step SetBC wall values, reused

	// Step-phase telemetry (telemetry.go). telem is nil when disabled;
	// the prev* fields hold the cumulative-counter snapshots captureStep
	// differences against, and pendSched accumulates schedule/BC event
	// time to charge to the next step's record.
	telem     *obs.Ring
	telemTot  obs.StepTotals
	prevPhi   time.Duration
	prevMu    time.Duration
	prevComm  comm.Stats
	pendSched time.Duration
}

// New builds a simulation; fields are liquid-initialized (use InitScenario).
func New(cfg Config) (*Sim, error) {
	if cfg.Params == nil || cfg.BG == nil {
		return nil, fmt.Errorf("solver: nil params or block grid")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.MovingWindow && cfg.BG.PZ != 1 {
		return nil, fmt.Errorf("solver: moving window requires PZ=1 (got %d)", cfg.BG.PZ)
	}
	if cfg.WindowFrontFraction == 0 {
		cfg.WindowFrontFraction = 0.6
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = defaultParallelism()
	}
	if cfg.Parallelism < 1 {
		return nil, fmt.Errorf("solver: parallelism %d invalid", cfg.Parallelism)
	}

	s := &Sim{Cfg: cfg, World: comm.NewWorldTransport(cfg.BG, cfg.Transport),
		phiVariant: cfg.Variant, muVariant: cfg.Variant,
		faults: &faultSink{points: cfg.Faults}}
	if !cfg.DisableStepTelemetry {
		s.telem = obs.NewRing(obs.DefaultRingCap)
	}
	// The World's per-rank comm workers (overlapped exchanges) reference
	// the World, so they keep it alive; release them when the Sim goes
	// unreachable without an explicit Close.
	runtime.AddCleanup(s, func(w *comm.World) { w.Close() }, s.World)
	s.gauge = cfg.Gauge
	if s.gauge == nil {
		s.gauge = &WorkerGauge{}
	}
	// The worker budget covers this process' blocks only: each process of
	// a distributed grid brings its own budget.
	nLocal := len(s.World.LocalRanks())
	s.workersPerRank = cfg.Parallelism / nLocal
	if s.workersPerRank < 1 {
		s.workersPerRank = 1
	}
	if s.workersPerRank > 1 {
		s.engine = newSweepEngine(s.workersPerRank*nLocal, cfg.BG.BX, cfg.BG.BY, s.gauge)
		// Release the workers when the Sim becomes unreachable without an
		// explicit Close (benchmark harnesses build many simulations).
		runtime.AddCleanup(s, func(e *sweepEngine) { e.close() }, s.engine)
	}

	// Physical boundary sets: φ bottom feeds solid phase 0 nominally (the
	// Dirichlet slab is immediately below already-solid material, so the
	// precise vector matters little); µ bottom pins the eutectic value.
	if cfg.DomainBCs != nil {
		s.domainPhiBCs = *cfg.DomainBCs
		s.domainMuBCs = *cfg.DomainBCs
		if s.domainPhiBCs[grid.ZMin].Kind == grid.BCDirichlet {
			s.domainPhiBCs[grid.ZMin].Values = []float64{1, 0, 0, 0}
			s.domainMuBCs[grid.ZMin].Values = []float64{0, 0}
		}
	} else {
		s.domainPhiBCs = grid.DirectionalSolidification([]float64{1, 0, 0, 0})
		s.domainMuBCs = grid.DirectionalSolidification([]float64{0, 0})
	}

	for _, r := range s.World.LocalRanks() {
		_, _, oz := cfg.BG.Origin(r)
		rk := &rank{
			id:     r,
			fields: kernels.NewFields(cfg.BG.BX, cfg.BG.BY, cfg.BG.BZ),
			sc:     kernels.NewScratch(cfg.BG.BX, cfg.BG.BY),
			phiBCs: s.World.BlockBCs(r, s.domainPhiBCs),
			muBCs:  s.World.BlockBCs(r, s.domainMuBCs),
			zOff:   oz,
		}
		rk.fields.PhiSrc.FillComp(core.Liquid, 1)
		s.ranks = append(s.ranks, rk)
	}
	return s, nil
}

// Step returns the current step count; Time the simulated time.
func (s *Sim) StepCount() int   { return s.step }
func (s *Sim) Time() float64    { return s.time }
func (s *Sim) WindowShift() int { return s.windowShift }

// GlobalCells returns the total interior cell count.
func (s *Sim) GlobalCells() int {
	nx, ny, nz := s.Cfg.BG.GlobalCells()
	return nx * ny * nz
}

// forAllRanks runs fn concurrently on every rank and waits.
func (s *Sim) forAllRanks(fn func(r *rank)) {
	var wg sync.WaitGroup
	for _, r := range s.ranks {
		wg.Add(1)
		go func(r *rank) {
			defer wg.Done()
			fn(r)
		}(r)
	}
	wg.Wait()
}

// InitScenario fills the domain with the selected composition and
// establishes consistent ghost layers.
func (s *Sim) InitScenario(sc Scenario) error {
	nxg, nyg, nzg := s.Cfg.BG.GlobalCells()
	p := s.Cfg.Params

	var tess *voronoi.Tessellation
	var nucleusHeight int
	if sc == ScenarioProduction {
		fracs, err := p.Sys.EutecticFractions()
		if err != nil {
			return err
		}
		nucleusHeight = int(2 * p.Eps)
		if nucleusHeight < 2 {
			nucleusHeight = 2
		}
		if nucleusHeight > nzg {
			nucleusHeight = nzg
		}
		nSeeds := nxg * nyg / 64
		if nSeeds < 3 {
			nSeeds = 3
		}
		rng := rand.New(rand.NewSource(s.Cfg.Seed + 1))
		tess, err = voronoi.New(nxg, nyg, nucleusHeight, nSeeds, fracs[:], rng)
		if err != nil {
			return err
		}
	}

	stripe := nxg / 6
	if stripe < 1 {
		stripe = 1
	}
	front := float64(nzg) / 2

	s.forAllRanks(func(r *rank) {
		ox, oy, _ := s.Cfg.BG.Origin(r.id)
		f := r.fields
		phi := f.PhiSrc
		// Explicit z-outermost loops instead of the per-cell closure: the
		// slice-constant interface profile (a tanh per cell before) is
		// hoisted to the z loop, and µ is cleared with contiguous fills.
		for z := 0; z < phi.NZ; z++ {
			gz := r.zOff + z
			liq := 0.0
			if sc == ScenarioInterface {
				liq = 0.5 * (1 + math.Tanh((float64(gz)-front)/(0.25*p.Eps)))
			}
			for y := 0; y < phi.NY; y++ {
				gy := oy + y
				for x := 0; x < phi.NX; x++ {
					gx := ox + x
					var pv [kernels.NP]float64
					switch sc {
					case ScenarioLiquid:
						pv[core.Liquid] = 1
					case ScenarioSolid:
						pv[(gx/stripe)%3] = 1
					case ScenarioInterface:
						pv[core.Liquid] = liq
						pv[(gx/stripe)%3] = 1 - liq
					case ScenarioProduction:
						if gz < nucleusHeight {
							pv[tess.At(gx, gy, gz)] = 1
						} else {
							pv[core.Liquid] = 1
						}
					}
					core.ProjectSimplex(&pv)
					for a := 0; a < kernels.NP; a++ {
						phi.Set(a, x, y, z, pv[a])
					}
				}
			}
		}
		f.MuSrc.FillComp(0, 0)
		f.MuSrc.FillComp(1, 0)
	})
	s.invalidateActivity()
	s.refreshGhosts()
	s.forAllRanks(func(r *rank) {
		r.fields.PhiDst.CopyFrom(r.fields.PhiSrc)
		r.fields.MuDst.CopyFrom(r.fields.MuSrc)
	})
	return nil
}

// refreshGhosts re-establishes all ghost layers of the source fields.
func (s *Sim) refreshGhosts() {
	s.forAllRanks(func(r *rank) {
		s.World.ExchangeGhosts(r.id, r.fields.PhiSrc, comm.TagPhi, r.phiBCs)
		s.World.ExchangeGhosts(r.id, r.fields.MuSrc, comm.TagMu, r.muBCs)
	})
}

// Run advances the simulation n timesteps. A kernel panic recovered by the
// sweeps' isolation layer is re-panicked here as a *KernelFault — the CLI
// tools keep their fail-fast crash; callers that must survive poisoned
// kernels (the job daemon) step through RunSchedule, which returns the
// fault as an error instead.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		if err := s.runStep(); err != nil {
			panic(err)
		}
	}
}

// runStep advances one timestep and reports the first kernel fault. The
// fault is sticky: once a sweep panicked the field data is garbage, so a
// faulted simulation refuses every further step.
func (s *Sim) runStep() error {
	if f := s.faults.first.Load(); f != nil {
		return f
	}
	var t0 time.Time
	if s.telem != nil {
		t0 = time.Now()
	}
	s.forAllRanks(func(r *rank) { s.timestep(r) })
	if f := s.faults.first.Load(); f != nil {
		// The step protocol completed mechanically (exchanges, swap), but
		// the faulted slab holds garbage: the step does not count.
		return f
	}
	s.step++
	s.time += s.Cfg.Params.Dt
	if s.Cfg.MovingWindow {
		s.maybeShiftWindow()
	}
	s.captureStep(t0)
	return nil
}

// timestep executes one step on one rank with the configured overlap mode.
// Sweeps go through runSweep, which fans them out over the sweep engine's
// worker pool when the scheduler assigns this rank more than one z-slab.
func (s *Sim) timestep(r *rank) {
	f := r.fields
	r.ctx = kernels.Ctx{P: s.Cfg.Params, ZOff: r.zOff + s.windowShift, Time: s.time}

	switch s.Cfg.Overlap {
	case OverlapNone:
		// Algorithm 1. The µ ghosts were synchronized at the end of
		// the previous step.
		t0 := time.Now()
		s.runSweep(r, opPhi)
		r.phiKernelTime += time.Since(t0)
		s.markQuiet(r, comm.TagPhi, quietPhiDst)
		s.World.ExchangeGhosts(r.id, f.PhiDst, comm.TagPhi, r.phiBCs)
		t0 = time.Now()
		s.runSweep(r, opMu)
		r.muKernelTime += time.Since(t0)
		s.markQuiet(r, comm.TagMu, quietMuDst)
		s.World.ExchangeGhosts(r.id, f.MuDst, comm.TagMu, r.muBCs)

	case OverlapMu:
		// µ exchange hidden behind the φ-sweep; φ exchange blocking;
		// fused µ-kernel. The paper's best-performing combination.
		s.markQuiet(r, comm.TagMu, quietMuSrc)
		pMu := s.World.StartExchange(r.id, f.MuSrc, comm.TagMu, r.muBCs)
		t0 := time.Now()
		s.runSweep(r, opPhi)
		r.phiKernelTime += time.Since(t0)
		pMu.Finish()
		s.markQuiet(r, comm.TagPhi, quietPhiDst)
		s.World.ExchangeGhosts(r.id, f.PhiDst, comm.TagPhi, r.phiBCs)
		t0 = time.Now()
		s.runSweep(r, opMu)
		r.muKernelTime += time.Since(t0)

	case OverlapPhi:
		// φ exchange hidden behind the split µ-kernel; µ blocking.
		t0 := time.Now()
		s.runSweep(r, opPhi)
		r.phiKernelTime += time.Since(t0)
		s.markQuiet(r, comm.TagPhi, quietPhiDst)
		pPhi := s.World.StartExchange(r.id, f.PhiDst, comm.TagPhi, r.phiBCs)
		t0 = time.Now()
		s.runSweep(r, opMuLocal)
		r.muKernelTime += time.Since(t0)
		pPhi.Finish()
		t0 = time.Now()
		s.runSweep(r, opMuNeighbor)
		r.muKernelTime += time.Since(t0)
		s.markQuiet(r, comm.TagMu, quietMuDst)
		s.World.ExchangeGhosts(r.id, f.MuDst, comm.TagMu, r.muBCs)

	case OverlapBoth:
		// Algorithm 2 as printed.
		s.markQuiet(r, comm.TagMu, quietMuSrc)
		pMu := s.World.StartExchange(r.id, f.MuSrc, comm.TagMu, r.muBCs)
		t0 := time.Now()
		s.runSweep(r, opPhi)
		r.phiKernelTime += time.Since(t0)
		pMu.Finish()
		s.markQuiet(r, comm.TagPhi, quietPhiDst)
		pPhi := s.World.StartExchange(r.id, f.PhiDst, comm.TagPhi, r.phiBCs)
		t0 = time.Now()
		s.runSweep(r, opMuLocal)
		r.muKernelTime += time.Since(t0)
		pPhi.Finish()
		t0 = time.Now()
		s.runSweep(r, opMuNeighbor)
		r.muKernelTime += time.Since(t0)
	}

	r.act.updateClean()
	f.Swap()

	// Modes that defer the µ exchange to the next step's overlap window
	// must still synchronize before a mode/variant change or data export;
	// Sim.Sync() provides that. For OverlapNone/OverlapPhi, µ ghosts of
	// the (new) source field are already valid here because the exchange
	// ran on µdst before the swap.
	if s.Cfg.Overlap == OverlapMu || s.Cfg.Overlap == OverlapBoth {
		// φsrc ghosts are valid (exchanged pre-swap); µsrc ghosts are
		// exchanged at the start of the next step.
		return
	}
}

// RestoreState installs checkpointed fields and time-stepping state. The
// field bundle slice is indexed by global rank (one entry per block of the
// decomposition); in a distributed run only this process' local ranks are
// consumed, so remote entries may be nil. Ghost layers are reconstructed
// by a full exchange.
func (s *Sim) RestoreState(step int, t float64, windowShift int, fields []*kernels.Fields) error {
	if len(fields) != s.Cfg.BG.NumBlocks() {
		return fmt.Errorf("solver: restore with %d field bundles for %d ranks", len(fields), s.Cfg.BG.NumBlocks())
	}
	for _, r := range s.ranks {
		if fields[r.id] == nil {
			return fmt.Errorf("solver: restore missing fields for local rank %d", r.id)
		}
		if fields[r.id].PhiSrc.NX != r.fields.PhiSrc.NX ||
			fields[r.id].PhiSrc.NY != r.fields.PhiSrc.NY ||
			fields[r.id].PhiSrc.NZ != r.fields.PhiSrc.NZ {
			return fmt.Errorf("solver: restore block shape mismatch at rank %d", r.id)
		}
		r.fields = fields[r.id]
	}
	s.step = step
	s.time = t
	s.windowShift = windowShift
	// The activity map is conservatively re-derived from the restored field
	// data; the halo-skip history does not survive a restore.
	s.invalidateActivity()
	s.refreshGhosts()
	return nil
}

// Sync makes all source-field ghost layers consistent (needed before
// output or mode changes for the deferred-exchange overlap modes).
func (s *Sim) Sync() {
	if s.Cfg.Overlap == OverlapMu || s.Cfg.Overlap == OverlapBoth {
		s.forAllRanks(func(r *rank) {
			s.World.ExchangeGhosts(r.id, r.fields.MuSrc, comm.TagMu, r.muBCs)
		})
	}
}

// DomainBCs returns deep copies of the live per-face boundary sets for the
// φ and µ fields (checkpoint headers snapshot these).
func (s *Sim) DomainBCs() (phi, mu grid.BoundarySet) {
	return s.domainPhiBCs.Clone(), s.domainMuBCs.Clone()
}

// SetDomainBCs installs both boundary sets wholesale — the restore path for
// checkpoints whose header carries active BC state — and re-derives every
// rank's per-face conditions and the per-axis periodicity of the topology
// (a schedule may have flipped an axis before the checkpoint was written;
// the restored kinds carry that state). Must be called at a step boundary.
func (s *Sim) SetDomainBCs(phi, mu grid.BoundarySet) error {
	if err := phi.Validate(kernels.NP); err != nil {
		return fmt.Errorf("solver: φ BCs: %w", err)
	}
	if err := mu.Validate(kernels.NR); err != nil {
		return fmt.Errorf("solver: µ BCs: %w", err)
	}
	blocks := [3]int{s.Cfg.BG.PX, s.Cfg.BG.PY, s.Cfg.BG.PZ}
	for axis := 0; axis < 3; axis++ {
		lo, hi := axisFaces(axis)
		n := 0
		for _, f := range [2]grid.Face{lo, hi} {
			for _, set := range [2]*grid.BoundarySet{&phi, &mu} {
				if set[f].Kind == grid.BCPeriodic {
					n++
				}
			}
		}
		if n > 0 && n < 4 && blocks[axis] > 1 {
			return fmt.Errorf("solver: restored BCs leave axis %d mixed-periodic (%d of 4 faces) on a %d-block decomposition", axis, n, blocks[axis])
		}
	}
	s.domainPhiBCs = phi.Clone()
	s.domainMuBCs = mu.Clone()
	s.syncTopology([3]bool{true, true, true})
	s.refreshRankBCs()
	s.invalidateActivity()
	return nil
}

// refreshRankBCs re-derives every rank's per-face boundary conditions from
// the live domain sets. Safe only at step boundaries, when no sweep or
// overlapped exchange is in flight.
func (s *Sim) refreshRankBCs() {
	for _, r := range s.ranks {
		r.phiBCs = s.World.BlockBCs(r.id, s.domainPhiBCs)
		r.muBCs = s.World.BlockBCs(r.id, s.domainMuBCs)
	}
}
