package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/fleet/fleettest"
	"repro/internal/jobd"
	"repro/internal/promtest"
)

// fleet_test.go — federation acceptance, all hermetic via fleettest
// (real daemons on loopback listeners, no subprocesses; CI runs this
// package under -race):
//
//   - TestFleetDaemonLossByteIdentical: a 12-child array over 3 daemons
//     with one daemon killed mid-run merges byte-identical to a
//     1-daemon reference, with structured auth/quota/size rejections
//     checked on the way;
//   - rate limiting, tenant isolation and cancel fan-out;
//   - daemon registration + heartbeat via fleet.Announce;
//   - gateway restart serving replicated results with every daemon dead;
//   - strict Prometheus exposition of /metrics (shared promtest parser).

const (
	acmeToken  = "acme-token"
	fleetToken = "fleet-token"
)

// doReq performs one authenticated request and returns status + body.
func doReq(t *testing.T, method, url, token string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// getJSON GETs url with the token and decodes a 2xx JSON body into out.
func getJSON(t *testing.T, url, token string, out any) {
	t.Helper()
	code, body := doReq(t, http.MethodGet, url, token, nil)
	if code/100 != 2 {
		t.Fatalf("GET %s: %d %s", url, code, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// wantReject asserts a structured rejection with the given status and
// error code.
func wantReject(t *testing.T, code int, body []byte, wantStatus int, wantCode string) {
	t.Helper()
	if code != wantStatus {
		t.Fatalf("status %d (%s), want %d", code, body, wantStatus)
	}
	var ae fleet.APIError
	if err := json.Unmarshal(body, &ae); err != nil {
		t.Fatalf("unstructured error body %q: %v", body, err)
	}
	if ae.Code != wantCode {
		t.Fatalf("error code %q (%s), want %q", ae.Code, ae.Error, wantCode)
	}
}

// sweepArray builds the canonical test array: a velocity-ramp template
// swept over vmax × seed.
func sweepArray(steps int, vmax, seeds []float64) jobd.ArraySpec {
	return jobd.ArraySpec{
		Name: "sweep",
		Template: jobd.Spec{
			NX: 8, NY: 8, NZ: 8, Steps: steps, Scenario: "interface",
			Schedule: json.RawMessage(`{"events":[
				{"type":"ramp","param":"v","step":0,"over":` + fmt.Sprint(steps) + `,"from":0.02,"to":"${vmax}"}
			]}`),
		},
		Axes: []jobd.Axis{
			{Param: "vmax", Values: vmax},
			{Param: "seed", Values: seeds},
		},
	}
}

// submitArray POSTs an array as the tenant and returns the created
// status.
func submitArray(t *testing.T, base, token string, as jobd.ArraySpec) fleet.ArrayStatus {
	t.Helper()
	blob, err := json.Marshal(as)
	if err != nil {
		t.Fatal(err)
	}
	code, body := doReq(t, http.MethodPost, base+"/arrays", token, blob)
	if code != http.StatusCreated {
		t.Fatalf("POST /arrays: %d %s", code, body)
	}
	var st fleet.ArrayStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// arrayStatus fetches one array's aggregated status.
func arrayStatus(t *testing.T, base, token, id string) fleet.ArrayStatus {
	t.Helper()
	var st fleet.ArrayStatus
	getJSON(t, base+"/arrays/"+id, token, &st)
	return st
}

// childResult fetches a child's final checkpoint bytes through the
// gateway.
func childResult(t *testing.T, base, token, id string) []byte {
	t.Helper()
	code, body := doReq(t, http.MethodGet, base+"/jobs/"+id+"/result", token, nil)
	if code != http.StatusOK {
		t.Fatalf("GET /jobs/%s/result: %d %s", id, code, body)
	}
	if len(body) == 0 {
		t.Fatalf("empty result for %s", id)
	}
	return body
}

// The federation acceptance test: a 12-child parameter sweep fans out
// over 3 daemons; the daemon hosting a running child is killed mid-run
// (store frozen, connections severed); the gateway declares it dead,
// requeues its children onto the survivors, and the merged results are
// byte-identical to a 1-daemon reference fleet — determinism makes
// re-execution a sound recovery strategy. Unauthorized, over-quota and
// oversized submissions are rejected with structured errors on the way.
func TestFleetDaemonLossByteIdentical(t *testing.T) {
	// Children must run long enough (seconds, not milliseconds) for the
	// kill to land mid-run — short jobs would all finish before the
	// monitor even observes one running.
	const steps = 300
	as := sweepArray(steps, []float64{0.03, 0.04, 0.05, 0.06}, []float64{1, 2, 3})

	// Reference: the same array through a single-daemon fleet.
	ref := fleettest.New(t, fleettest.Options{Daemons: 1})
	refSt := submitArray(t, ref.URL, acmeToken, as)
	if len(refSt.Children) != 12 {
		t.Fatalf("reference expanded to %d children, want 12", len(refSt.Children))
	}
	fleettest.WaitFor(t, "reference array done", 180*time.Second, func() bool {
		return arrayStatus(t, ref.URL, acmeToken, refSt.ID).State == jobd.StateDone
	})
	want := map[string][]byte{}
	for _, c := range refSt.Children {
		want[c.ID] = childResult(t, ref.URL, acmeToken, c.ID)
	}

	// The fleet under test: 3 daemons, a quota-capped second tenant, and
	// a tight request body cap.
	fl := fleettest.New(t, fleettest.Options{
		Daemons:        3,
		MaxRequestBody: 4096,
		Tenants: []fleet.Tenant{
			{Name: "acme", Token: acmeToken},
			{Name: "tiny", Token: "tiny-token", MaxActive: 2},
		},
	})
	blob, _ := json.Marshal(as)

	// Production surface: every rejection is structured.
	code, body := doReq(t, http.MethodPost, fl.URL+"/arrays", "", blob)
	wantReject(t, code, body, http.StatusUnauthorized, fleet.CodeUnauthorized)
	code, body = doReq(t, http.MethodPost, fl.URL+"/arrays", "wrong-token", blob)
	wantReject(t, code, body, http.StatusUnauthorized, fleet.CodeUnauthorized)
	code, body = doReq(t, http.MethodPost, fl.URL+"/arrays", "tiny-token", blob)
	wantReject(t, code, body, http.StatusTooManyRequests, fleet.CodeOverQuota)
	big := as
	big.Name = strings.Repeat("x", 8192)
	bigBlob, _ := json.Marshal(big)
	code, body = doReq(t, http.MethodPost, fl.URL+"/arrays", acmeToken, bigBlob)
	wantReject(t, code, body, http.StatusRequestEntityTooLarge, fleet.CodeTooLarge)

	st := submitArray(t, fl.URL, acmeToken, as)
	if len(st.Children) != 12 {
		t.Fatalf("fleet expanded to %d children, want 12", len(st.Children))
	}
	if st.ID != refSt.ID {
		t.Fatalf("gateway array ids diverged: %s vs reference %s", st.ID, refSt.ID)
	}

	// Kill the daemon hosting a running child, mid-run.
	var victimURL string
	fleettest.WaitFor(t, "a child running on a daemon", 120*time.Second, func() bool {
		cur := arrayStatus(t, fl.URL, acmeToken, st.ID)
		for _, c := range cur.Children {
			if c.State == jobd.StateRunning && c.Daemon != "" {
				victimURL = c.Daemon
				return true
			}
		}
		return false
	})
	victim := -1
	for i, d := range fl.Daemons {
		if d.URL == victimURL {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("running child reports unknown daemon %q", victimURL)
	}
	fl.Kill(victim)
	t.Logf("killed daemon %d (%s) mid-run", victim, victimURL)

	// The fleet finishes anyway: dead daemon detected, children requeued
	// onto the survivors, results replicated.
	fleettest.WaitFor(t, "array done after daemon loss", 300*time.Second, func() bool {
		return arrayStatus(t, fl.URL, acmeToken, st.ID).State == jobd.StateDone
	})
	final := arrayStatus(t, fl.URL, acmeToken, st.ID)
	for _, c := range final.Children {
		if !c.Replicated {
			t.Fatalf("done child %s not replicated into the gateway store", c.ID)
		}
		if c.Daemon == victimURL {
			t.Fatalf("child %s still attributed to the dead daemon", c.ID)
		}
	}

	// The operator surface agrees: the victim is dead, work was requeued.
	var fs fleet.FleetStatus
	getJSON(t, fl.URL+"/fleet", fleetToken, &fs)
	if fs.Requeues < 1 {
		t.Fatalf("fleet status reports %d requeues after a daemon death", fs.Requeues)
	}
	deadSeen := false
	for _, d := range fs.Daemons {
		if d.URL == victimURL && !d.Alive {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Fatalf("dead daemon %s not reported dead in %+v", victimURL, fs.Daemons)
	}

	// Byte identity: every child's merged result equals the single-daemon
	// reference bit-for-bit; the results aggregation carries matching
	// params and gateway-local result paths.
	var refRes, flRes fleet.ArrayResults
	getJSON(t, ref.URL+"/arrays/"+refSt.ID+"/results", acmeToken, &refRes)
	getJSON(t, fl.URL+"/arrays/"+st.ID+"/results", acmeToken, &flRes)
	if len(flRes.Children) != len(refRes.Children) {
		t.Fatalf("results rows %d vs reference %d", len(flRes.Children), len(refRes.Children))
	}
	for i, row := range flRes.Children {
		refRow := refRes.Children[i]
		if row.ID != refRow.ID || row.State != jobd.StateDone {
			t.Fatalf("row %d: id %s state %s, reference id %s", i, row.ID, row.State, refRow.ID)
		}
		for k, v := range refRow.Params {
			if row.Params[k] != v {
				t.Fatalf("row %s param %s = %g, reference %g", row.ID, k, row.Params[k], v)
			}
		}
		if row.ResultPath != "/jobs/"+row.ID+"/result" {
			t.Fatalf("row %s result_path %q", row.ID, row.ResultPath)
		}
		got := childResult(t, fl.URL, acmeToken, row.ID)
		if !bytes.Equal(got, want[row.ID]) {
			t.Fatalf("child %s result differs from the single-daemon reference (%d vs %d bytes)",
				row.ID, len(got), len(want[row.ID]))
		}
	}

	// The gateway's /metrics is strict Prometheus exposition and reflects
	// the recovery.
	mcode, mbody := doReq(t, http.MethodGet, fl.URL+"/metrics", "", nil)
	if mcode != http.StatusOK {
		t.Fatalf("/metrics: %d", mcode)
	}
	series := promtest.Parse(t, string(mbody))
	if v, ok := promtest.FindSeries(t, series, "solidifygw_requeues_total"); !ok || v < 1 {
		t.Fatalf("solidifygw_requeues_total = %g, want >= 1", v)
	}
	if v, ok := promtest.FindSeries(t, series, "solidifygw_daemons", `state="dead"`); !ok || v != 1 {
		t.Fatalf(`solidifygw_daemons{state="dead"} = %g, want 1`, v)
	}
	if v, ok := promtest.FindSeries(t, series, "solidifygw_children", `tenant="acme"`, `state="done"`); !ok || v != 12 {
		t.Fatalf(`solidifygw_children{tenant="acme",state="done"} = %g, want 12`, v)
	}
	if _, ok := promtest.FindSeries(t, series, "solidifygw_requests_total", `tenant="acme"`); !ok {
		t.Fatal("no solidifygw_requests_total series for tenant acme")
	}
}

// Per-tenant rate limiting, tenant isolation, and fleet-wide cancel.
func TestFleetRateLimitIsolationCancel(t *testing.T) {
	fl := fleettest.New(t, fleettest.Options{
		Daemons: 1,
		Tenants: []fleet.Tenant{
			{Name: "acme", Token: acmeToken},
			{Name: "other", Token: "other-token"},
			{Name: "slow", Token: "slow-token", RatePerSec: 0.1, Burst: 1},
		},
	})

	// The slow tenant's bucket holds one request; the refill is 1 per 10s,
	// so immediate follow-ups are limited.
	code, body := doReq(t, http.MethodGet, fl.URL+"/arrays", "slow-token", nil)
	if code != http.StatusOK {
		t.Fatalf("slow tenant's first request: %d %s", code, body)
	}
	limited := false
	for i := 0; i < 3; i++ {
		code, body = doReq(t, http.MethodGet, fl.URL+"/arrays", "slow-token", nil)
		if code == http.StatusTooManyRequests {
			wantReject(t, code, body, http.StatusTooManyRequests, fleet.CodeRateLimited)
			limited = true
			break
		}
	}
	if !limited {
		t.Fatal("slow tenant never rate limited")
	}

	// Tenant isolation: another tenant's array reads as missing.
	st := submitArray(t, fl.URL, acmeToken, sweepArray(400, []float64{0.03, 0.04}, []float64{1}))
	code, body = doReq(t, http.MethodGet, fl.URL+"/arrays/"+st.ID, "other-token", nil)
	wantReject(t, code, body, http.StatusNotFound, fleet.CodeNotFound)
	code, body = doReq(t, http.MethodGet, fl.URL+"/jobs/"+st.Children[0].ID+"/result", "other-token", nil)
	wantReject(t, code, body, http.StatusNotFound, fleet.CodeNotFound)

	// Cancel fans out: every child reaches a terminal state and the array
	// settles as canceled (long steps ensure children cannot finish first).
	code, body = doReq(t, http.MethodDelete, fl.URL+"/arrays/"+st.ID, acmeToken, nil)
	if code != http.StatusAccepted {
		t.Fatalf("DELETE /arrays/%s: %d %s", st.ID, code, body)
	}
	fleettest.WaitFor(t, "array canceled fleet-wide", 120*time.Second, func() bool {
		return arrayStatus(t, fl.URL, acmeToken, st.ID).State == jobd.StateCanceled
	})
}

// A daemon started after the gateway joins via Announce (registration +
// heartbeat), and a bad fleet token is rejected.
func TestFleetRegistrationHeartbeat(t *testing.T) {
	fl := fleettest.New(t, fleettest.Options{Daemons: -1})

	code, body := doReq(t, http.MethodGet, fl.URL+"/healthz", "", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet /healthz: %d %s", code, body)
	}

	d := fleettest.StartDaemon(t, jobd.Config{})
	regBody, _ := json.Marshal(map[string]string{"url": d.URL})
	code, body = doReq(t, http.MethodPost, fl.URL+"/fleet/register", "wrong", regBody)
	wantReject(t, code, body, http.StatusUnauthorized, fleet.CodeUnauthorized)
	code, _ = doReq(t, http.MethodGet, fl.URL+"/fleet", "wrong", nil)
	if code != http.StatusUnauthorized {
		t.Fatalf("fleet status with bad token: %d", code)
	}

	stop := make(chan struct{})
	defer close(stop)
	go fleet.Announce(fl.URL, fleetToken, d.URL, 20*time.Millisecond, stop, nil)

	fleettest.WaitFor(t, "announced daemon to join the fleet", 30*time.Second, func() bool {
		code, _ := doReq(t, http.MethodGet, fl.URL+"/healthz", "", nil)
		return code == http.StatusOK
	})
	var fs fleet.FleetStatus
	getJSON(t, fl.URL+"/fleet", fleetToken, &fs)
	if len(fs.Daemons) != 1 || !fs.Daemons[0].Alive || !fs.Daemons[0].Registered {
		t.Fatalf("fleet status after registration: %+v", fs.Daemons)
	}

	// The joined daemon does real work end to end.
	st := submitArray(t, fl.URL, acmeToken, sweepArray(10, []float64{0.03}, []float64{1}))
	fleettest.WaitFor(t, "array done on the registered daemon", 120*time.Second, func() bool {
		return arrayStatus(t, fl.URL, acmeToken, st.ID).State == jobd.StateDone
	})
	childResult(t, fl.URL, acmeToken, st.Children[0].ID)
}

// A restarted gateway restores arrays and replicated results from its
// own store and keeps serving them with every daemon dead — replication
// makes results survive the producers.
func TestGatewayRestartServesReplicated(t *testing.T) {
	fl := fleettest.New(t, fleettest.Options{Daemons: 2})
	st := submitArray(t, fl.URL, acmeToken, sweepArray(20, []float64{0.03, 0.05}, []float64{1}))
	fleettest.WaitFor(t, "array done", 120*time.Second, func() bool {
		return arrayStatus(t, fl.URL, acmeToken, st.ID).State == jobd.StateDone
	})
	want := map[string][]byte{}
	for _, c := range st.Children {
		want[c.ID] = childResult(t, fl.URL, acmeToken, c.ID)
	}

	fl.Kill(0)
	fl.Kill(1)
	fl.RestartGateway()

	code, _ := doReq(t, http.MethodGet, fl.URL+"/healthz", "", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("dead-fleet /healthz: %d, want 503", code)
	}
	restored := arrayStatus(t, fl.URL, acmeToken, st.ID)
	if restored.State != jobd.StateDone || len(restored.Children) != len(st.Children) {
		t.Fatalf("restored array: state %s, %d children", restored.State, len(restored.Children))
	}
	for id, blob := range want {
		got := childResult(t, fl.URL, acmeToken, id)
		if !bytes.Equal(got, blob) {
			t.Fatalf("child %s served different bytes after gateway restart", id)
		}
	}
	var list []fleet.ArrayStatus
	getJSON(t, fl.URL+"/arrays", acmeToken, &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("restored array listing: %+v", list)
	}
}

// The gateway /metrics endpoint emits strict, deterministic Prometheus
// exposition from the first scrape on.
func TestGatewayMetricsStrict(t *testing.T) {
	fl := fleettest.New(t, fleettest.Options{Daemons: 1})

	code, _ := doReq(t, http.MethodGet, fl.URL+"/arrays", "bogus", nil)
	if code != http.StatusUnauthorized {
		t.Fatalf("bogus token: %d", code)
	}

	_, body1 := doReq(t, http.MethodGet, fl.URL+"/metrics", "", nil)
	series := promtest.Parse(t, string(body1))
	if v, ok := promtest.FindSeries(t, series, "solidifygw_daemons", `state="alive"`); !ok || v != 1 {
		t.Fatalf(`solidifygw_daemons{state="alive"} = %g, want 1`, v)
	}
	if v, ok := promtest.FindSeries(t, series, "solidifygw_rejects_total", `reason="unauthorized"`); !ok || v < 1 {
		t.Fatalf("unauthorized reject not counted: %g", v)
	}
	// Unchanged state scrapes byte-identically.
	_, body2 := doReq(t, http.MethodGet, fl.URL+"/metrics", "", nil)
	if !bytes.Equal(body1, body2) {
		t.Fatal("consecutive scrapes of unchanged state differ")
	}
}
