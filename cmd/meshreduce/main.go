// Command meshreduce demonstrates the hierarchical mesh-based data
// reduction pipeline of §3.2 standalone: it extracts per-block isosurface
// meshes from a short production run (one mesh per block, ghost-extended
// and boundary-weighted), coarsens them locally with the quadric-error
// simplifier, reduces them pairwise in log₂(P) stitch-and-coarsen rounds,
// and writes the final surface.
//
// Usage:
//
//	meshreduce -n 48 -blocks 4 -target 5000 -o interface.stl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/grid"
	"repro/internal/mesh"
)

func main() {
	n := flag.Int("n", 48, "cubic domain edge")
	blocks := flag.Int("blocks", 4, "number of z-slab blocks (power of two)")
	steps := flag.Int("steps", 50, "timesteps before extraction")
	target := flag.Int("target", 5000, "per-round simplification target (triangles)")
	phase := flag.Int("phase", 0, "solid phase to extract")
	out := flag.String("o", "interface.stl", "output STL path")
	flag.Parse()

	if *n%*blocks != 0 {
		fatal(fmt.Errorf("domain edge %d not divisible by %d blocks", *n, *blocks))
	}

	sim, err := phasefield.New(phasefield.DefaultConfig(*n, *n, *n))
	if err != nil {
		fatal(err)
	}
	if err := sim.InitProduction(); err != nil {
		fatal(err)
	}
	sim.Run(*steps)
	phi := sim.GlobalPhi()
	bs := grid.AllNeumann()
	bs.Apply(phi)

	// Split the domain into z-slab "blocks" and extract per block with
	// ghost overlap, as each rank would in a distributed run.
	slab := *n / *blocks
	var meshes []*mesh.Mesh
	totalTris := 0
	for b := 0; b < *blocks; b++ {
		zlo := b * slab
		sub := grid.NewField(*n, *n, slab, 1, 1, grid.SoA)
		for z := -1; z <= slab; z++ {
			for y := -1; y <= *n; y++ {
				for x := -1; x <= *n; x++ {
					sub.Set(0, x, y, z, phi.At(*phase, clamp(x, *n), clamp(y, *n), clamp(zlo+z, *n)))
				}
			}
		}
		m := mesh.ExtractPhase(sub, 0, mesh.Vec3{0, 0, float64(zlo)}, true)
		totalTris += m.NumTris()
		meshes = append(meshes, m)
		fmt.Printf("block %d: %d triangles\n", b, m.NumTris())
	}

	reduced, rounds := mesh.Reduce(meshes, mesh.ReduceOptions{TargetTris: *target})
	if len(reduced) != 1 {
		fatal(fmt.Errorf("reduction stopped early with %d meshes", len(reduced)))
	}
	final := reduced[0]
	fmt.Printf("reduced %d -> %d triangles in %d pairwise rounds (log2(%d)=%d)\n",
		totalTris, final.NumTris(), rounds, *blocks, rounds)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := final.WriteSTL(f); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "meshreduce:", err)
	os.Exit(1)
}
