package jobd

import (
	"bytes"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro"
	"repro/internal/ckpt"
	"repro/internal/faultfs"
	"repro/internal/solver"
)

// runner.go executes one admitted job on its own goroutine. All scheduler
// control — preemption, cancellation, stall reclamation, worker-budget
// rebalancing — is applied cooperatively at timestep boundaries through
// the schedule engine's yield hook, where no sweep or overlapped exchange
// is in flight.
//
// Failure containment: a kernel panic is recovered inside the solver's
// sweep tasks and surfaces here as a *solver.KernelFault error from
// RunSchedule; a panic in the runner's own code (simulation construction,
// checkpointing, hooks) is recovered at the top of runJob. Either way the
// blast radius is one job: the attempt is routed through retryOrFail,
// concurrent jobs keep stepping, and the daemon keeps serving.

// buildSim constructs the job's simulation: fresh from the spec, or — for
// a preempted or retried job — restored from the lossless in-memory
// snapshot, which resumes the trajectory bit-identically. pts, when
// non-nil, arms the solver's fault-injection registry (chaos jobs only).
func (s *Server) buildSim(j *Job, share int, pts *faultfs.Points) (*phasefield.Simulation, error) {
	sp := j.Spec
	cfg := phasefield.DefaultConfig(sp.NX, sp.NY, sp.NZ)
	cfg.PX, cfg.PY = sp.PX, sp.PY
	cfg.Seed = sp.Seed
	cfg.MovingWindow = sp.Window
	cfg.Parallelism = share
	cfg.Faults = pts
	// The class sub-gauge counts this job's workers on both the class and
	// the root gauge, making per-class budget caps measurable.
	cfg.WorkerGauge = s.gauge.Class(sp.Class)

	j.mu.Lock()
	snapshot := j.snapshot
	j.mu.Unlock()
	if snapshot != nil {
		return phasefield.RestoreReader(bytes.NewReader(snapshot), cfg)
	}
	sim, err := phasefield.New(cfg)
	if err != nil {
		return nil, err
	}
	if sp.Scenario == "interface" {
		err = sim.InitFront()
	} else {
		err = sim.InitProduction()
	}
	if err != nil {
		return nil, err
	}
	return sim, nil
}

// runJob steps one job until completion, preemption, cancellation, stall
// or error, then hands the slot back to the scheduler. Panics escaping
// the attempt (runner-side bugs; sweep panics are already contained in
// the solver) are recovered here and routed through the same
// retry/quarantine path as errors — one job's failure never takes down
// the daemon.
func (s *Server) runJob(j *Job) {
	defer s.runnersWG.Done()
	defer s.onRunnerExit(j)
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("jobd: runner panic: %v\n%s", r, debug.Stack())
			s.logf("jobd: %s: recovered runner panic: %v", j.ID, r)
			s.retryOrFail(j, nil, err)
		}
	}()
	s.runAttempt(j)
}

// runAttempt is one execution attempt of a job: build (or restore) the
// simulation, step it under the job's schedule, and route the outcome.
func (s *Server) runAttempt(j *Job) {
	j.lastBeat.Store(time.Now().UnixNano())

	// Chaos jobs of mode panic-sweep get a private fault registry wired
	// into the solver; the OnStep hook arms it at the requested boundary.
	var pts *faultfs.Points
	if f := j.Spec.Fault; f != nil && f.Mode == FaultPanicSweep {
		pts = faultfs.NewPoints()
	}

	sim, err := s.buildSim(j, int(j.appliedShare.Load()), pts)
	if err != nil {
		s.retryOrFail(j, nil, err)
		return
	}
	defer sim.Close()

	remaining := j.Spec.Steps - sim.Step()
	if remaining <= 0 {
		s.finishRunner(j, sim, StateDone, nil)
		return
	}

	stop := ctrlNone
	var failErr error // set by an injected fail-step fault
	nCells := j.Spec.NX * j.Spec.NY * j.Spec.NZ
	lastWall := time.Now()
	lastStep := sim.Step()
	snapStep := sim.Step() // last safety-snapshot boundary
	prevTot := sim.TelemetryTotals()

	opt := phasefield.ScheduleOptions{
		OnStep: func(step int) bool {
			// Watchdog heartbeat first: reaching this boundary is progress
			// by definition, whatever happens next.
			j.lastBeat.Store(time.Now().UnixNano())
			// Control next: a preempted/canceled/stalled job must not take
			// another step.
			if c := j.ctrl.Load(); c != ctrlNone {
				stop = c
				return true
			}
			// Injected faults fire at their boundary while budget remains
			// (Times across all attempts), so a transient fault exhausts
			// itself and a later retry passes the same boundary cleanly.
			if f := j.Spec.Fault; f != nil && step == f.Step {
				if j.faultLeft.Add(-1) >= 0 {
					switch f.Mode {
					case FaultPanicSweep:
						// Fires inside a sweep of the NEXT step.
						pts.Arm(solver.SweepPoint, 0, 1)
					case FaultFailStep:
						failErr = fmt.Errorf("jobd: injected failure at step %d", step)
						return true
					case FaultStallStep:
						// Wedge here — between boundaries, as a hung kernel
						// would — until a control verb reclaims the slot.
						for j.ctrl.Load() == ctrlNone {
							time.Sleep(time.Millisecond)
						}
						stop = j.ctrl.Load()
						return true
					}
				} else {
					j.faultLeft.Add(1) // budget exhausted; restore the floor
				}
			}
			// Budget rebalance: shrinks must apply here, at the step
			// boundary, before the scheduler admits the next job.
			if ds := j.desiredShare.Load(); ds != j.appliedShare.Load() {
				if err := sim.SetWorkerBudget(int(ds)); err == nil {
					j.appliedShare.Store(ds)
				}
			}
			// Safety snapshot: a lossless in-memory checkpoint every
			// SnapshotEvery steps, so a retry resumes here instead of at
			// step 0. Taken before the fault boundary of the step that will
			// fail, never after — the faulted state is garbage.
			if se := s.cfg.SnapshotEvery; se > 0 && step > snapStep && step%se == 0 {
				var buf bytes.Buffer
				if err := sim.WriteCheckpoint(&buf, ckpt.Float64); err == nil {
					snapStep = step
					j.mu.Lock()
					j.snapshot = buf.Bytes()
					j.mu.Unlock()
				}
			}
			if (step-lastStep)%s.cfg.ReportEvery == 0 {
				now := time.Now()
				mlups := 0.0
				if d := now.Sub(lastWall).Seconds(); d > 0 {
					mlups = float64((step-lastStep)*nCells) / d / 1e6
				}
				lastWall, lastStep = now, step
				solid := sim.SolidFraction()
				active := sim.ActiveFraction()
				// Telemetry snapshots are gathered outside j.mu (they walk
				// solver and comm state under their own locks) and swapped in
				// under it, like the progress numbers above.
				tot := sim.TelemetryTotals()
				window := tot.Sub(prevTot)
				prevTot = tot
				recs := sim.StepRecords(nil)
				flows := sim.HaloFlows()
				lat := sim.ExchangeLatencies()
				j.mu.Lock()
				j.step = step
				j.simTime = sim.Time()
				j.solid = solid
				j.activeFrac = active
				j.telemTot = tot
				j.stepRecs = recs
				j.flows = flows
				j.latency = lat
				j.mergeApplied(sim.AppliedEvents())
				sample := j.sampleLocked()
				sample.MLUPs = mlups
				if window.Steps > 0 {
					sample.Phases = breakdown(window)
				}
				j.mu.Unlock()
				j.publish(sample)
			}
			return false
		},
	}

	runErr := sim.RunSchedule(j.sched, remaining, opt)
	switch {
	case runErr != nil:
		// Mid-run error: a recovered kernel panic (*solver.KernelFault) or
		// a schedule/solver failure. Retryable.
		s.retryOrFail(j, sim, runErr)
	case failErr != nil:
		s.retryOrFail(j, sim, failErr)
	case stop == ctrlCancel:
		s.finishRunner(j, sim, StateCanceled, nil)
	case stop == ctrlStall:
		s.retryOrFail(j, sim, fmt.Errorf("jobd: watchdog: job made no progress within its deadline"))
	case stop == ctrlPreempt:
		s.preemptRunner(j, sim)
	default:
		s.finishRunner(j, sim, StateDone, nil)
	}
}

// retryOrFail routes a failed attempt. A cancellation that raced in wins
// outright. Otherwise, while retry budget remains, the job goes back to
// the queue behind an exponential backoff (invisible to the scheduler
// until notBefore passes) and will resume from its last safety snapshot;
// with the budget exhausted it is quarantined as failed, keeping its
// retry count and last error in the status.
func (s *Server) retryOrFail(j *Job, sim *phasefield.Simulation, err error) {
	if j.ctrl.Load() == ctrlCancel {
		s.finishRunner(j, sim, StateCanceled, nil)
		return
	}
	// An unrealizable schedule is a permanent property of the job's input:
	// every retry would re-validate the same events against the same
	// topology and fail identically, so the retry budget is not burned.
	// The structured rejection is surfaced verbatim in the job status.
	var serr *solver.ScheduleError
	if errors.As(err, &serr) {
		s.finishRunner(j, sim, StateFailed, err)
		return
	}
	j.mu.Lock()
	used := j.retries
	j.mu.Unlock()
	if used >= j.Spec.MaxRetries {
		s.finishRunner(j, sim, StateFailed, err)
		return
	}
	backoff := s.cfg.RetryBackoff << min(used, 6) // doubles, capped at 64×
	s.retriesTotal.Add(1)
	j.mu.Lock()
	j.retries++
	retries := j.retries
	j.lastErr = err
	j.state = StateQueued
	// A faulted simulation's fields are garbage from the aborted step —
	// keep the last good progress numbers instead of NaNs.
	if sim != nil && sim.Fault() == nil {
		j.step = sim.Step()
		j.simTime = sim.Time()
		j.solid = sim.SolidFraction()
		j.activeFrac = sim.ActiveFraction()
		j.mergeApplied(sim.AppliedEvents())
		j.captureTelemetryLocked(sim)
	}
	sample := j.sampleLocked()
	j.mu.Unlock()
	j.notBefore.Store(time.Now().Add(backoff).UnixNano())
	j.mark("retry", err.Error())
	// onRunnerExit requeues StateQueued jobs; this wakeup fires when the
	// backoff expires so the scheduler re-examines the queue then.
	time.AfterFunc(backoff, s.wakeup)
	j.publish(sample)
	s.logf("jobd: %s attempt failed (%v); retry %d/%d in %v",
		j.ID, err, retries, j.Spec.MaxRetries, backoff)
}

// preemptRunner snapshots the simulation losslessly and returns the job to
// the queue (onRunnerExit requeues StateQueued jobs).
func (s *Server) preemptRunner(j *Job, sim *phasefield.Simulation) {
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf, ckpt.Float64); err != nil {
		s.finishRunner(j, sim, StateFailed, fmt.Errorf("jobd: preemption snapshot: %w", err))
		return
	}
	// Clear the preempt order with a CAS, not a store: a DELETE that raced
	// in while the snapshot was being written must win, or the job would
	// be requeued despite the acknowledged cancellation. (A cancel landing
	// after this point sees StateQueued and cancels through the queue
	// path.)
	if !j.ctrl.CompareAndSwap(ctrlPreempt, ctrlNone) {
		s.finishRunner(j, sim, StateCanceled, nil)
		return
	}
	j.mu.Lock()
	j.snapshot = buf.Bytes()
	j.state = StateQueued
	j.preemptions++
	j.step = sim.Step()
	j.simTime = sim.Time()
	j.solid = sim.SolidFraction()
	j.activeFrac = sim.ActiveFraction()
	j.mergeApplied(sim.AppliedEvents())
	j.captureTelemetryLocked(sim)
	sample := j.sampleLocked()
	j.mu.Unlock()
	j.mark("preempt", "")
	j.publish(sample)
}

// finishRunner records a terminal state (sim may be nil when construction
// failed). A done job whose final checkpoint cannot be serialized is a
// failed job — /result must never 200 with nothing behind it, and a
// restarted daemon must not see a "done" manifest with no result blob.
func (s *Server) finishRunner(j *Job, sim *phasefield.Simulation, st State, err error) {
	var final []byte
	if sim != nil && st == StateDone {
		var buf bytes.Buffer
		if werr := sim.WriteCheckpoint(&buf, ckpt.Float64); werr != nil {
			st = StateFailed
			err = fmt.Errorf("jobd: final checkpoint of %s: %w", j.ID, werr)
		} else {
			final = buf.Bytes()
		}
	}
	j.mu.Lock()
	j.state = st
	j.err = err
	// Skip the faulted-sim statistics for the same reason as retryOrFail.
	if sim != nil && sim.Fault() == nil {
		j.step = sim.Step()
		j.simTime = sim.Time()
		j.solid = sim.SolidFraction()
		j.activeFrac = sim.ActiveFraction()
		j.mergeApplied(sim.AppliedEvents())
		j.captureTelemetryLocked(sim)
	}
	j.snapshot = nil
	j.final = final
	j.mu.Unlock()
	note := ""
	if err != nil {
		note = err.Error()
	}
	j.mark(string(st), note)
	// Spill before subscribers see the terminal sample, so a client that
	// reacts to stream close by fetching /result finds the stored copy too.
	s.spillDone(j)
	j.closeSubs()
}

// captureTelemetryLocked refreshes the job's telemetry snapshots from a
// finished attempt's simulation, so the trace and metrics endpoints keep
// serving the attempt's tail after the runner exits. j.mu must be held;
// the sim is no longer stepping, so its accessors are safe to call.
func (j *Job) captureTelemetryLocked(sim *phasefield.Simulation) {
	j.telemTot = sim.TelemetryTotals()
	j.stepRecs = sim.StepRecords(nil)
	j.flows = sim.HaloFlows()
	j.latency = sim.ExchangeLatencies()
}
