// Coldwall: the time-varying boundary-environment workload. Real
// directional-solidification campaigns do not keep the boundary fixed —
// the solute feed at the bottom wall drifts as the crucible depletes and
// the top environment changes when fresh melt stops flowing in. This
// example drives that through two independent JSON schedules composed into
// one run:
//
//   - schedule.json is the furnace program: a pull-velocity ramp, a
//     nucleation burst ahead of the front, periodic checkpoints;
//   - chill.json is the boundary-environment program: the bottom µ wall
//     (the solute feed) ramps from the eutectic value to an enriched one
//     over steps 40–160, and at step 180 the top φ face switches from the
//     default Neumann outflow to a pinned-liquid Dirichlet wall.
//
// schedule.Compose merges the two deterministically (this is exactly what
// `solidify -schedule schedule.json,chill.json` does). The run then
// restores the mid-BC-ramp checkpoint and verifies the wall state resumed
// bit-exactly from the version-3 header and the continued trajectory
// tracks the uninterrupted one.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/grid"
	"repro/internal/schedule"
)

//go:embed schedule.json
var furnaceJSON string

//go:embed chill.json
var chillJSON string

func main() {
	furnace, err := schedule.FromJSON(strings.NewReader(furnaceJSON))
	if err != nil {
		log.Fatal(err)
	}
	chill, err := schedule.FromJSON(strings.NewReader(chillJSON))
	if err != nil {
		log.Fatal(err)
	}
	sched, err := schedule.Compose(furnace, chill)
	if err != nil {
		log.Fatal(err)
	}

	outDir, err := os.MkdirTemp(".", "coldwall-out-")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("coldwall: output in", outDir)

	cfg := phasefield.DefaultConfig(24, 24, 48)
	cfg.MovingWindow = true
	cfg.WindowFraction = 0.5
	cfg.Seed = 9
	sim, err := phasefield.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.InitProduction(); err != nil {
		log.Fatal(err)
	}

	opt := phasefield.ScheduleOptions{
		CheckpointPath: filepath.Join(outDir, "state_%06d.pfcp"),
		Log:            func(msg string) { fmt.Println("  " + msg) },
	}

	const steps = 240
	fmt.Printf("running %d scheduled steps (v ramp, burst, µ-wall ramp, φ-wall switch, ckpt/80)\n", steps)
	for done := 0; done < steps; done += 60 {
		if err := sim.RunSchedule(sched, 60, opt); err != nil {
			log.Fatal(err)
		}
		_, mu := sim.DomainBCs()
		fmt.Printf("step %4d  t=%7.2f  solid=%.3f  window=%d  µ wall %v %v\n",
			sim.Step(), sim.Time(), sim.SolidFraction(), sim.WindowShift(),
			mu[grid.ZMin].Kind, mu[grid.ZMin].Values)
	}
	phiBCs, _ := sim.DomainBCs()
	fmt.Printf("final φ top wall: %v %v\n", phiBCs[grid.ZMax].Kind, phiBCs[grid.ZMax].Values)

	// Restart from the mid-BC-ramp checkpoint: the V3 header must hand
	// back the exact wall values the ramp prescribed at that step, and the
	// continued run must track the uninterrupted one.
	ckpt := filepath.Join(outDir, "state_000160.pfcp")
	restored, err := phasefield.Restore(ckpt, phasefield.Config{MovingWindow: true, WindowFraction: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	_, muR := restored.DomainBCs()
	var buf [4]float64
	want := chill.SetBCs()[0].ValuesAt(restored.Step()-1, buf[:])
	for i := range want {
		if muR[grid.ZMin].Values[i] != want[i] {
			log.Fatalf("restored wall value %d: %g, want %g bit-exact", i, muR[grid.ZMin].Values[i], want[i])
		}
	}
	fmt.Printf("restored step %d with bit-exact mid-ramp µ wall %v\n", restored.Step(), muR[grid.ZMin].Values)

	if err := restored.RunSchedule(sched, steps-restored.Step(), phasefield.ScheduleOptions{}); err != nil {
		log.Fatal(err)
	}
	drift := math.Abs(restored.SolidFraction() - sim.SolidFraction())
	fmt.Printf("restart leg solid fraction drift: %.2e (float32 checkpoint seeding only)\n", drift)
	if drift > 1e-3 {
		log.Fatal("restarted trajectory diverged")
	}
	fmt.Println("coldwall: OK")
}
