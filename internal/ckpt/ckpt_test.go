package ckpt

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/kernels"
)

func randomFields(rng *rand.Rand, n, bx, by, bz int) []*kernels.Fields {
	out := make([]*kernels.Fields, n)
	for i := range out {
		f := kernels.NewFields(bx, by, bz)
		f.PhiSrc.Interior(func(x, y, z int) {
			for a := 0; a < kernels.NP; a++ {
				f.PhiSrc.Set(a, x, y, z, rng.Float64())
			}
			for k := 0; k < kernels.NR; k++ {
				f.MuSrc.Set(k, x, y, z, rng.NormFloat64())
			}
		})
		out[i] = f
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fields := randomFields(rng, 4, 5, 6, 7)
	h := Header{Step: 42, Time: 3.5, WindowShift: 9, PX: 2, PY: 2, PZ: 1, BX: 5, BY: 6, BZ: 7}

	var buf bytes.Buffer
	if err := Write(&buf, h, fields); err != nil {
		t.Fatal(err)
	}
	h2, fields2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Errorf("header round trip: %+v != %+v", h2, h)
	}
	if len(fields2) != len(fields) {
		t.Fatalf("field count %d", len(fields2))
	}
	tol := MaxRoundTripError(4)
	for i := range fields {
		if ok, maxd := fields[i].PhiSrc.InteriorEqual(fields2[i].PhiSrc, tol); !ok {
			t.Errorf("rank %d φ round-trip error %g > %g", i, maxd, tol)
		}
		if ok, maxd := fields[i].MuSrc.InteriorEqual(fields2[i].MuSrc, tol); !ok {
			t.Errorf("rank %d µ round-trip error %g > %g", i, maxd, tol)
		}
	}
	// Destination fields restored as copies of source.
	if ok, _ := fields2[0].PhiDst.InteriorEqual(fields2[0].PhiSrc, 0); !ok {
		t.Error("PhiDst not initialized from PhiSrc")
	}
}

// A Float64 (version-4) snapshot must round-trip every field value
// bit-exactly — this is what makes preempt/resume in the job daemon
// trajectory-preserving.
func TestFloat64RoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fields := randomFields(rng, 2, 5, 4, 6)
	h := Header{Step: 7, Time: 1.25, PX: 2, PY: 1, PZ: 1, BX: 5, BY: 4, BZ: 6,
		SchedulePos: 1, PhiVariant: 3, MuVariant: 3, PhiStrategy: VariantUnspecified,
		Dt: 0.001, TempG: 1, TempV: 0.02, TempZ0: 8}
	h.PhiBC = EncodeBCs(randomBCs(rng, kernels.NP))
	h.MuBC = EncodeBCs(randomBCs(rng, kernels.NR))

	var buf bytes.Buffer
	if err := WritePrecision(&buf, h, fields, Float64); err != nil {
		t.Fatal(err)
	}
	h2, fields2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Errorf("header round trip: %+v != %+v", h2, h)
	}
	for i := range fields {
		if ok, maxd := fields[i].PhiSrc.InteriorEqual(fields2[i].PhiSrc, 0); !ok {
			t.Errorf("rank %d φ not bit-exact: %g", i, maxd)
		}
		if ok, maxd := fields[i].MuSrc.InteriorEqual(fields2[i].MuSrc, 0); !ok {
			t.Errorf("rank %d µ not bit-exact: %g", i, maxd)
		}
	}
}

// Corrupt BC entries in a version-4 header are read errors, exactly as for
// version 3.
func TestFloat64CorruptBCRejected(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(12)), 1, 4, 4, 4)
	h := Header{PX: 1, PY: 1, PZ: 1, BX: 4, BY: 4, BZ: 4}
	h.PhiBC[0].Kind = 99
	var buf bytes.Buffer
	if err := WritePrecision(&buf, h, fields, Float64); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(&buf); err == nil {
		t.Error("corrupt v4 BC state accepted")
	}
}

func TestSinglePrecisionOnDisk(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(2)), 1, 4, 4, 4)
	h := Header{PX: 1, PY: 1, PZ: 1, BX: 4, BY: 4, BZ: 4}
	var buf bytes.Buffer
	if err := Write(&buf, h, fields); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(buf.Len()), SizeBytes(1, 1, 1, 4, 4, 4); got != want {
		t.Errorf("checkpoint size %d, want %d (single precision)", got, want)
	}
	// The same data in double precision would be twice the payload.
	doubleSize := int64(4*4*4*(kernels.NP+kernels.NR)) * 8
	if int64(buf.Len()) >= doubleSize {
		t.Errorf("checkpoint not smaller than double-precision payload (%d >= %d)", buf.Len(), doubleSize)
	}
}

func TestRejectsGarbage(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("garbage accepted")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.Write([]byte{0x50, 0x43, 0x46, 0x50}) // little-endian Magic
	buf.Write([]byte{0xFF, 0, 0, 0})
	if _, _, err := Read(&buf); err == nil {
		t.Error("bad version accepted")
	}
}

func TestWriteValidatesDecomposition(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(3)), 2, 4, 4, 4)
	h := Header{PX: 3, PY: 1, PZ: 1, BX: 4, BY: 4, BZ: 4}
	var buf bytes.Buffer
	if err := Write(&buf, h, fields); err == nil {
		t.Error("mismatched decomposition accepted")
	}
}

func TestTruncatedCheckpoint(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(4)), 1, 4, 4, 4)
	h := Header{PX: 1, PY: 1, PZ: 1, BX: 4, BY: 4, BZ: 4}
	var buf bytes.Buffer
	if err := Write(&buf, h, fields); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

// writeLegacyV1 serializes a version-1 checkpoint (the pre-schedule layout:
// no schedule position, kernel state or process parameters) so the reader's
// upgrade path stays covered after the version bump.
func writeLegacyV1(w *bytes.Buffer, h Header, fields []*kernels.Fields) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(Magic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(Version1)); err != nil {
		return err
	}
	h1 := headerV1{Step: h.Step, Time: h.Time, WindowShift: h.WindowShift,
		PX: h.PX, PY: h.PY, PZ: h.PZ, BX: h.BX, BY: h.BY, BZ: h.BZ}
	if err := binary.Write(w, binary.LittleEndian, &h1); err != nil {
		return err
	}
	for _, f := range fields {
		if err := writeField(w, f.PhiSrc, Float32); err != nil {
			return err
		}
		if err := writeField(w, f.MuSrc, Float32); err != nil {
			return err
		}
	}
	return nil
}

// writeLegacyV2 serializes a version-2 checkpoint (schedule state, no BC
// state) so the reader's upgrade path stays covered after the version bump.
func writeLegacyV2(w *bytes.Buffer, h Header, fields []*kernels.Fields) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(Magic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(Version2)); err != nil {
		return err
	}
	h2 := headerV2{Step: h.Step, Time: h.Time, WindowShift: h.WindowShift,
		PX: h.PX, PY: h.PY, PZ: h.PZ, BX: h.BX, BY: h.BY, BZ: h.BZ,
		SchedulePos: h.SchedulePos, PhiVariant: h.PhiVariant, MuVariant: h.MuVariant,
		PhiStrategy: h.PhiStrategy, Dt: h.Dt, TempG: h.TempG, TempV: h.TempV, TempZ0: h.TempZ0}
	if err := binary.Write(w, binary.LittleEndian, &h2); err != nil {
		return err
	}
	for _, f := range fields {
		if err := writeField(w, f.PhiSrc, Float32); err != nil {
			return err
		}
		if err := writeField(w, f.MuSrc, Float32); err != nil {
			return err
		}
	}
	return nil
}

// randomBCs draws a random physical boundary set of the given Dirichlet
// arity.
func randomBCs(rng *rand.Rand, ncomp int) grid.BoundarySet {
	var b grid.BoundarySet
	for f := range b {
		switch rng.Intn(3) {
		case 0:
			b[f].Kind = grid.BCPeriodic
		case 1:
			b[f].Kind = grid.BCNeumann
		default:
			b[f].Kind = grid.BCDirichlet
			b[f].Values = make([]float64, ncomp)
			for i := range b[f].Values {
				b[f].Values[i] = rng.NormFloat64()
			}
		}
	}
	return b
}

// Property test: for random headers and fields — written in the current
// layout or as legacy version-1/version-2 files — Write→Read must reproduce
// the header exactly and every field value within the single-precision
// round trip, and any truncation of the byte stream must error, never yield
// a silently short state.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 24; trial++ {
		px, py, pz := 1+rng.Intn(2), 1+rng.Intn(2), 1+rng.Intn(2)
		bx, by, bz := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		n := px * py * pz
		fields := randomFields(rng, n, bx, by, bz)
		phiBCs := randomBCs(rng, kernels.NP)
		muBCs := randomBCs(rng, kernels.NR)
		h := Header{
			Step: rng.Int63n(1 << 40), Time: rng.Float64() * 1e4,
			WindowShift: rng.Int63n(1 << 20),
			PX:          int32(px), PY: int32(py), PZ: int32(pz),
			BX: int32(bx), BY: int32(by), BZ: int32(bz),
			SchedulePos: rng.Int63n(64),
			PhiVariant:  int32(rng.Intn(6)), MuVariant: int32(rng.Intn(6)),
			PhiStrategy: int32(rng.Intn(3)) - 1,
			Dt:          rng.Float64(), TempG: rng.Float64(),
			TempV: rng.Float64(), TempZ0: rng.Float64() * 100,
			PhiBC: EncodeBCs(phiBCs),
			MuBC:  EncodeBCs(muBCs),
		}
		version := trial%3 + 1 // 1, 2 or 3

		var buf bytes.Buffer
		var err error
		switch version {
		case 1:
			err = writeLegacyV1(&buf, h, fields)
		case 2:
			err = writeLegacyV2(&buf, h, fields)
		default:
			err = Write(&buf, h, fields)
		}
		if err != nil {
			t.Fatal(err)
		}
		raw := append([]byte(nil), buf.Bytes()...)

		h2, fields2, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d (v%d): %v", trial, version, err)
		}
		if version == 1 {
			if h2.SchedulePos != 0 || h2.PhiVariant != VariantUnspecified ||
				h2.MuVariant != VariantUnspecified || h2.PhiStrategy != VariantUnspecified {
				t.Fatalf("trial %d: V1 upgrade got %+v", trial, h2)
			}
			if !math.IsNaN(h2.Dt) || !math.IsNaN(h2.TempG) || !math.IsNaN(h2.TempV) || !math.IsNaN(h2.TempZ0) {
				t.Fatalf("trial %d: V1 params not NaN: %+v", trial, h2)
			}
			// The shared V1 prefix must survive.
			h2.SchedulePos, h2.PhiVariant, h2.MuVariant, h2.PhiStrategy = h.SchedulePos, h.PhiVariant, h.MuVariant, h.PhiStrategy
			h2.Dt, h2.TempG, h2.TempV, h2.TempZ0 = h.Dt, h.TempG, h.TempV, h.TempZ0
		}
		if version < 3 {
			if _, ok := DecodeBCs(h2.PhiBC); ok {
				t.Fatalf("trial %d: v%d file decoded BC state", trial, version)
			}
			for f := range h2.PhiBC {
				if h2.PhiBC[f].Kind != BCUnspecified || h2.MuBC[f].Kind != BCUnspecified {
					t.Fatalf("trial %d: v%d upgrade left specified BC state %+v", trial, version, h2.PhiBC[f])
				}
			}
			h2.PhiBC, h2.MuBC = h.PhiBC, h.MuBC
		} else {
			gotPhi, ok := DecodeBCs(h2.PhiBC)
			if !ok {
				t.Fatalf("trial %d: V3 BC state did not decode", trial)
			}
			gotMu, ok := DecodeBCs(h2.MuBC)
			if !ok {
				t.Fatalf("trial %d: V3 µ BC state did not decode", trial)
			}
			for f := range gotPhi {
				if gotPhi[f].Kind != phiBCs[f].Kind || gotMu[f].Kind != muBCs[f].Kind {
					t.Fatalf("trial %d face %d: BC kind round trip %v/%v, want %v/%v",
						trial, f, gotPhi[f].Kind, gotMu[f].Kind, phiBCs[f].Kind, muBCs[f].Kind)
				}
				for i, v := range phiBCs[f].Values {
					if gotPhi[f].Values[i] != v {
						t.Fatalf("trial %d face %d: φ wall value %g != %g", trial, f, gotPhi[f].Values[i], v)
					}
				}
				for i, v := range muBCs[f].Values {
					if gotMu[f].Values[i] != v {
						t.Fatalf("trial %d face %d: µ wall value %g != %g", trial, f, gotMu[f].Values[i], v)
					}
				}
			}
		}
		if h2 != h {
			t.Fatalf("trial %d: header %+v != %+v", trial, h2, h)
		}
		tol := MaxRoundTripError(4)
		for i := range fields {
			if ok, maxd := fields[i].PhiSrc.InteriorEqual(fields2[i].PhiSrc, tol); !ok {
				t.Fatalf("trial %d rank %d: φ error %g", trial, i, maxd)
			}
			if ok, maxd := fields[i].MuSrc.InteriorEqual(fields2[i].MuSrc, tol); !ok {
				t.Fatalf("trial %d rank %d: µ error %g", trial, i, maxd)
			}
		}

		// Any strict prefix must fail, never truncate silently.
		cut := rng.Intn(len(raw))
		if _, _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("trial %d: %d-byte prefix of %d accepted", trial, cut, len(raw))
		}
	}
}

func TestCorruptedMagic(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(5)), 1, 3, 3, 3)
	var buf bytes.Buffer
	if err := Write(&buf, Header{PX: 1, PY: 1, PZ: 1, BX: 3, BY: 3, BZ: 3}, fields); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0xFF
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted magic accepted")
	}
	// Empty stream: clean error, not a panic.
	if _, _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestCorruptHeaderExtentsRejected(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(6)), 1, 3, 3, 3)
	var buf bytes.Buffer
	if err := Write(&buf, Header{PX: 1, PY: 1, PZ: 1, BX: 3, BY: 3, BZ: 3}, fields); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// PX lives right after magic+version+Step+Time+WindowShift.
	off := 8 + 8 + 8 + 8
	binary.LittleEndian.PutUint32(raw[off:], 0)
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("zero decomposition accepted")
	}
}

func TestMaxRoundTripError(t *testing.T) {
	if e := MaxRoundTripError(1); e <= 0 || e > 1e-6 {
		t.Errorf("unexpected float32 error bound %g", e)
	}
	if math.Abs(MaxRoundTripError(2)-2*MaxRoundTripError(1)) > 1e-20 {
		t.Error("error bound should scale linearly with magnitude")
	}
}

func TestCorruptV3BCStateRejected(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(7)), 1, 3, 3, 3)
	var buf bytes.Buffer
	if err := Write(&buf, Header{PX: 1, PY: 1, PZ: 1, BX: 3, BY: 3, BZ: 3}, fields); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// PhiBC[0].Kind sits after magic+version (8) and the V2 prefix of the
	// header (3×int64 + 6×int32 + int64 + 3×int32 + 4×float64 = 100).
	off := 8 + 100
	binary.LittleEndian.PutUint32(raw[off:], 99)
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("V3 file with corrupt BC kind accepted")
	}
	// Out-of-range NVals must also be corruption, not a silent fallback.
	raw2 := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(raw2[off:], 0)            // restore kind
	binary.LittleEndian.PutUint32(raw2[off+4:], uint32(50)) // NVals
	if _, _, err := Read(bytes.NewReader(raw2)); err == nil {
		t.Error("V3 file with corrupt BC value count accepted")
	}
}
