// Package jobd is the multi-job orchestration layer that turns the
// solidification engine into a service: jobs — schedule-driven production
// runs — are submitted over an HTTP/JSON API, queued by priority, and
// executed up to K at a time against one shared intra-block worker budget.
//
// The paper's production story is an always-on pipeline of
// process-parameter studies sharing fixed hardware, not one hand-launched
// binary per run. jobd multiplexes the primitives the engine already has:
//
//   - the persistent sweep worker pool (budget shares are re-split across
//     running jobs as jobs start and finish; a job applies its new share
//     at the next timestep boundary, and shrinks are acknowledged before a
//     new job starts, so the global budget is never exceeded — an
//     invariant made observable by the shared solver.WorkerGauge);
//   - event schedules (a job is just a composed schedule plus a domain);
//   - lossless float64 checkpoints (a higher-priority submission preempts
//     the lowest-priority running job at a timestep boundary via an
//     in-memory snapshot; the job later resumes bit-identically — the
//     resumed trajectory is indistinguishable from an uninterrupted one);
//   - idempotent comm.World shutdown (cancellation arrives from API
//     goroutines while exchanges are in flight).
//
// On SIGTERM the daemon (cmd/solidifyd) drains: every in-flight job is
// preempted, snapshotted, and spooled to disk together with the queue, so
// a restarted daemon resumes where the old one stopped.
package jobd

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/schedule"
	"repro/internal/solver"
)

// Config sizes the daemon.
type Config struct {
	// MaxConcurrent is K, the number of jobs stepping simultaneously
	// (default 1).
	MaxConcurrent int
	// Budget is the global intra-block sweep worker budget shared by all
	// running jobs (default GOMAXPROCS). Every running job gets
	// ⌊Budget/n⌋ workers; a job whose block count exceeds that share is
	// not admitted until slots free up.
	Budget int
	// SpoolDir, when non-empty, is where Drain persists preempted and
	// queued jobs for the next daemon instance (LoadSpool).
	SpoolDir string
	// ReportEvery is the metrics sampling cadence in steps (default 5).
	ReportEvery int
}

// Server is the orchestration daemon: queue, scheduler and job registry.
// Create with New, start with Start, serve Handler over HTTP, stop with
// Drain (or Close for tests).
type Server struct {
	cfg   Config
	gauge *solver.WorkerGauge

	mu       sync.Mutex
	jobs     map[string]*Job
	queue    []*Job // StateQueued jobs, unordered (sorted on pop)
	running  map[string]*Job
	draining bool
	nextSeq  int64
	nextID   int

	wake chan struct{}
	quit chan struct{}

	runnersWG   sync.WaitGroup
	schedulerWG sync.WaitGroup
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.Budget < 1 {
		cfg.Budget = runtime.GOMAXPROCS(0)
	}
	if cfg.ReportEvery < 1 {
		cfg.ReportEvery = 5
	}
	return &Server{
		cfg:     cfg,
		gauge:   &solver.WorkerGauge{},
		jobs:    make(map[string]*Job),
		running: make(map[string]*Job),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
}

// Gauge exposes the shared sweep-worker gauge (tests assert
// Gauge().Max() <= Budget).
func (s *Server) Gauge() *solver.WorkerGauge { return s.gauge }

// Start launches the scheduler goroutine.
func (s *Server) Start() {
	s.schedulerWG.Add(1)
	go func() {
		defer s.schedulerWG.Done()
		for {
			select {
			case <-s.quit:
				return
			case <-s.wake:
				s.schedule()
			}
		}
	}()
}

// wakeup nudges the scheduler (never blocks).
func (s *Server) wakeup() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Submit validates a spec, registers the job, and enqueues it.
func (s *Server) Submit(spec Spec) (*Job, error) {
	sched, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	if spec.blocks() > s.cfg.Budget {
		return nil, fmt.Errorf("jobd: job needs %d block ranks but the worker budget is %d",
			spec.blocks(), s.cfg.Budget)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	s.nextID++
	s.nextSeq++
	j := newJob(fmt.Sprintf("job-%04d", s.nextID), s.nextSeq, spec, sched)
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	s.mu.Unlock()
	s.wakeup()
	return j, nil
}

// errDraining marks submissions rejected during shutdown.
var errDraining = fmt.Errorf("jobd: daemon is draining")

// IsDraining reports whether err is the drain rejection.
func IsDraining(err error) bool { return err == errDraining }

// Get returns a job by id.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns all jobs ordered by submission.
func (s *Server) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// Cancel removes a job: queued jobs are canceled immediately; a running
// job is told to stop at its next timestep boundary. Terminal jobs are
// left as they are (reported by the returned state).
func (s *Server) Cancel(id string) (State, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return "", false
	}
	j.mu.Lock()
	switch {
	case j.state.terminal():
		st := j.state
		j.mu.Unlock()
		s.mu.Unlock()
		return st, true
	case j.state == StateQueued:
		j.state = StateCanceled
		j.snapshot = nil
		j.mu.Unlock()
		s.dropFromQueueLocked(j)
		s.mu.Unlock()
		j.closeSubs()
		s.wakeup()
		return StateCanceled, true
	default: // running
		j.mu.Unlock()
		j.ctrl.Store(ctrlCancel)
		s.mu.Unlock()
		return StateRunning, true
	}
}

// dropFromQueueLocked removes j from the queue slice; s.mu must be held.
func (s *Server) dropFromQueueLocked(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// bestQueuedLocked returns the queued job that should run next: highest
// priority, then earliest submission. s.mu must be held.
func (s *Server) bestQueuedLocked() *Job {
	var best *Job
	for _, j := range s.queue {
		if best == nil || j.Spec.Priority > best.Spec.Priority ||
			(j.Spec.Priority == best.Spec.Priority && j.seq < best.seq) {
			best = j
		}
	}
	return best
}

// share computes the per-job worker share for n running jobs.
func (s *Server) share(n int) int {
	if n < 1 {
		n = 1
	}
	sh := s.cfg.Budget / n
	if sh < 1 {
		sh = 1
	}
	return sh
}

// schedule is one pass of the scheduling policy: preempt if a queued job
// outranks a running one, then admit while slots and budget allow, then
// relax shares upward if slots emptied.
func (s *Server) schedule() {
	s.preemptIfOutranked()
	for s.admitOne() {
	}
	s.relaxShares()
}

// preemptIfOutranked asks the lowest-priority running job to preempt when
// a strictly higher-priority job waits and all slots are busy.
func (s *Server) preemptIfOutranked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || len(s.running) < s.cfg.MaxConcurrent {
		return
	}
	best := s.bestQueuedLocked()
	if best == nil {
		return
	}
	var victim *Job
	for _, j := range s.running {
		if victim == nil || j.Spec.Priority < victim.Spec.Priority ||
			(j.Spec.Priority == victim.Spec.Priority && j.seq > victim.seq) {
			victim = j
		}
	}
	if victim != nil && best.Spec.Priority > victim.Spec.Priority {
		victim.ctrl.CompareAndSwap(ctrlNone, ctrlPreempt)
	}
}

// admitOne starts the best queued job if a slot is free and every running
// job's share can shrink to make room. Returns true when a job started
// (the caller loops).
func (s *Server) admitOne() bool {
	s.mu.Lock()
	if s.draining || len(s.running) >= s.cfg.MaxConcurrent {
		s.mu.Unlock()
		return false
	}
	j := s.bestQueuedLocked()
	if j == nil {
		s.mu.Unlock()
		return false
	}
	newShare := s.share(len(s.running) + 1)
	// Every running job needs ≥ one worker per block rank; the candidate
	// too. If the split cannot honor that, wait for a slot to clear.
	if j.Spec.blocks() > newShare {
		s.mu.Unlock()
		return false
	}
	for _, rj := range s.running {
		if rj.Spec.blocks() > newShare {
			s.mu.Unlock()
			return false
		}
	}
	s.dropFromQueueLocked(j)
	peers := make([]*Job, 0, len(s.running))
	for _, rj := range s.running {
		rj.desiredShare.Store(int32(newShare))
		peers = append(peers, rj)
	}
	s.mu.Unlock()

	// Wait for every peer to shrink onto its new share (or leave the
	// running set) before the newcomer starts — the global budget must
	// never be exceeded, not even transiently. Shrinks are applied at
	// timestep boundaries, so this wait is bounded by one step.
	for _, rj := range peers {
		for rj.appliedShare.Load() > int32(newShare) && s.isRunning(rj) {
			time.Sleep(200 * time.Microsecond)
		}
	}

	s.mu.Lock()
	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled while we were rebalancing; the slot stays free.
		j.mu.Unlock()
		s.mu.Unlock()
		return true
	}
	if s.draining {
		// Lost the race against Drain: put the job back.
		j.mu.Unlock()
		s.queue = append(s.queue, j)
		s.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.mu.Unlock()
	j.ctrl.Store(ctrlNone)
	j.desiredShare.Store(int32(newShare))
	j.appliedShare.Store(int32(newShare))
	s.running[j.ID] = j
	s.runnersWG.Add(1)
	go s.runJob(j)
	s.mu.Unlock()
	return true
}

// relaxShares grows every running job's share to the current split (safe
// to apply lazily: growing late never violates the budget).
func (s *Server) relaxShares() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.running) == 0 {
		return
	}
	sh := s.share(len(s.running))
	for _, j := range s.running {
		if j.desiredShare.Load() < int32(sh) {
			j.desiredShare.Store(int32(sh))
		}
	}
}

// isRunning reports whether j is still in the running set.
func (s *Server) isRunning(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.running[j.ID]
	return ok
}

// onRunnerExit moves a finished runner's job out of the running set,
// requeueing it when it was preempted.
func (s *Server) onRunnerExit(j *Job) {
	s.mu.Lock()
	delete(s.running, j.ID)
	if j.State() == StateQueued { // preempted
		s.queue = append(s.queue, j)
	}
	s.mu.Unlock()
	s.wakeup()
}

// Drain stops the daemon gracefully: no new submissions, every running job
// is preempted (checkpointed at its next timestep boundary), and — when a
// spool directory is configured — all queued/preempted jobs are persisted
// for the next daemon instance. Blocks until every runner has exited.
func (s *Server) Drain() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.runnersWG.Wait()
		return nil
	}
	s.draining = true
	for _, j := range s.running {
		j.ctrl.CompareAndSwap(ctrlNone, ctrlPreempt)
	}
	s.mu.Unlock()

	s.runnersWG.Wait()
	close(s.quit)
	s.schedulerWG.Wait()

	if s.cfg.SpoolDir == "" {
		return nil
	}
	return s.writeSpool()
}

// Close is Drain for tests that configured no spool directory.
func (s *Server) Close() { _ = s.Drain() }

// spoolManifest is the on-disk form of a drained job.
type spoolManifest struct {
	ID          string          `json:"id"`
	Spec        Spec            `json:"spec"`
	Preemptions int             `json:"preemptions"`
	Step        int             `json:"step"`
	Applied     json.RawMessage `json:"applied,omitempty"`
	// Snapshot is the base64 lossless checkpoint of a preempted job
	// (absent for never-started jobs).
	Snapshot string `json:"snapshot,omitempty"`
}

// writeSpool persists every resumable job.
func (s *Server) writeSpool() error {
	if err := os.MkdirAll(s.cfg.SpoolDir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state != StateQueued {
			j.mu.Unlock()
			continue
		}
		m := spoolManifest{ID: j.ID, Spec: j.Spec, Preemptions: j.preemptions, Step: j.step}
		if len(j.snapshot) > 0 {
			m.Snapshot = base64.StdEncoding.EncodeToString(j.snapshot)
		}
		if len(j.applied) > 0 {
			if blob, err := schedule.EncodeJSON(j.applied); err == nil {
				m.Applied = blob
			}
		}
		j.mu.Unlock()
		blob, err := json.Marshal(&m)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(s.cfg.SpoolDir, m.ID+".job.json"), blob, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// LoadSpool requeues jobs a previous daemon instance drained to the spool
// directory. Call before Start. Returns the number of jobs restored.
func (s *Server) LoadSpool() (int, error) {
	if s.cfg.SpoolDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.SpoolDir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".job.json") {
			continue
		}
		path := filepath.Join(s.cfg.SpoolDir, e.Name())
		blob, err := os.ReadFile(path)
		if err != nil {
			return n, err
		}
		var m spoolManifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return n, fmt.Errorf("jobd: spool %s: %w", e.Name(), err)
		}
		sched, err := m.Spec.normalize()
		if err != nil {
			return n, fmt.Errorf("jobd: spool %s: %w", e.Name(), err)
		}
		s.mu.Lock()
		s.nextSeq++
		j := newJob(m.ID, s.nextSeq, m.Spec, sched)
		j.step = m.Step
		j.preemptions = m.Preemptions
		if m.Snapshot != "" {
			if j.snapshot, err = base64.StdEncoding.DecodeString(m.Snapshot); err != nil {
				s.mu.Unlock()
				return n, fmt.Errorf("jobd: spool %s: %w", e.Name(), err)
			}
		}
		if len(m.Applied) > 0 {
			if as, err := schedule.FromJSONBytes(m.Applied); err == nil {
				j.mergeApplied(as.Events)
			}
		}
		// Keep ids unique if the spool and fresh submissions mix.
		if id := idNumber(m.ID); id >= s.nextID {
			s.nextID = id
		}
		s.jobs[j.ID] = j
		s.queue = append(s.queue, j)
		s.mu.Unlock()
		_ = os.Remove(path)
		n++
	}
	if n > 0 {
		s.wakeup()
	}
	return n, nil
}

// idNumber extracts the numeric suffix of a job id ("job-0042" → 42).
func idNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}
