// Package fleettest is the deterministic in-process harness behind the
// federation tests: N real solidifyd daemons (full jobd.Server stacks
// with faultfs-injectable stores) on loopback httptest listeners, fronted
// by one real gateway — no subprocesses, no ports to leak, every daemon
// killable mid-run.
//
// Kill models a SIGKILL faithfully on both axes a daemon touches the
// world through: the store freezes via a faultfs crash rule (all writes
// after the kill instant fail, exactly what an abrupt death leaves on
// disk), and the HTTP listener severs with in-flight connections torn
// down — so the gateway sees the same symptoms a production daemon
// crash produces: transport errors and an on-disk state frozen at the
// kill point.
package fleettest

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/fleet"
	"repro/internal/jobd"
)

// Options sizes a test fleet.
type Options struct {
	// Daemons is how many solidifyd instances to start (default 1; any
	// negative value starts none — registration tests add daemons at
	// runtime via StartDaemon + fleet.Announce).
	Daemons int
	// Tenants is the gateway tenant table (default: one "acme" tenant,
	// token "acme-token", no limits).
	Tenants []fleet.Tenant
	// FleetToken guards the operator surface (default "fleet-token").
	FleetToken string
	// ProbeEvery and DeadAfter tune death detection (defaults 25ms / 3 —
	// a killed daemon is declared dead within ~100ms).
	ProbeEvery time.Duration
	// DeadAfter is the consecutive-failure death threshold.
	DeadAfter int
	// MaxRequestBody caps gateway request bodies (default: fleet's 1 MiB).
	MaxRequestBody int64
	// GatewayStore disables the gateway's replication store when false...
	// it defaults to enabled; set NoGatewayStore to turn it off.
	NoGatewayStore bool
	// Daemon is the per-daemon jobd config template; StoreDir and StoreFS
	// are filled in per daemon. Zero value gets MaxConcurrent 2, Budget 4,
	// ReportEvery 2.
	Daemon jobd.Config
}

// Daemon is one live solidifyd instance under harness control.
type Daemon struct {
	// Server is the daemon itself; TS its loopback HTTP listener.
	Server *jobd.Server
	TS     *httptest.Server
	// Inject wraps the daemon's store filesystem; Kill arms its crash
	// rule.
	Inject *faultfs.Inject
	// URL is the daemon's base URL as the gateway knows it.
	URL string
	// StoreDir is the daemon's result-store directory.
	StoreDir string

	killed bool
}

// Fleet is a gateway plus its daemons, ready for requests.
type Fleet struct {
	// Gateway is the control plane; TS its loopback listener.
	Gateway *fleet.Gateway
	TS      *httptest.Server
	// URL is the gateway's base URL.
	URL string
	// StoreDir is the gateway's replication store directory ("" when
	// disabled).
	StoreDir string
	// Daemons are the fleet members, harness index order.
	Daemons []*Daemon
	// Options echoes the resolved options the fleet was built with.
	Options Options

	t      testing.TB
	closed bool
}

// New starts a fleet and registers cleanup on t. It returns once the
// gateway has probed every daemon alive.
func New(t testing.TB, opts Options) *Fleet {
	t.Helper()
	if opts.Daemons == 0 {
		opts.Daemons = 1
	}
	if opts.Daemons < 0 {
		opts.Daemons = 0
	}
	if opts.Tenants == nil {
		opts.Tenants = []fleet.Tenant{{Name: "acme", Token: "acme-token"}}
	}
	if opts.FleetToken == "" {
		opts.FleetToken = "fleet-token"
	}
	if opts.ProbeEvery <= 0 {
		opts.ProbeEvery = 25 * time.Millisecond
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = 3
	}
	if opts.Daemon.MaxConcurrent == 0 {
		opts.Daemon.MaxConcurrent = 2
	}
	if opts.Daemon.Budget == 0 {
		opts.Daemon.Budget = 4
	}
	if opts.Daemon.ReportEvery == 0 {
		opts.Daemon.ReportEvery = 2
	}

	f := &Fleet{t: t, Options: opts}
	urls := make([]string, 0, opts.Daemons)
	for i := 0; i < opts.Daemons; i++ {
		d := StartDaemon(t, opts.Daemon)
		f.Daemons = append(f.Daemons, d)
		urls = append(urls, d.URL)
	}

	cfg := fleet.Config{
		Daemons:        urls,
		Tenants:        opts.Tenants,
		FleetToken:     opts.FleetToken,
		ProbeEvery:     opts.ProbeEvery,
		DeadAfter:      opts.DeadAfter,
		MaxRequestBody: opts.MaxRequestBody,
		Client:         &http.Client{Timeout: 5 * time.Second},
		Log:            func(line string) { t.Log(line) },
	}
	if !opts.NoGatewayStore {
		f.StoreDir = t.TempDir()
		cfg.StoreDir = f.StoreDir
	}
	g, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Gateway = g
	g.Start()
	f.TS = httptest.NewServer(g.Handler())
	f.URL = f.TS.URL
	t.Cleanup(f.Close)

	if opts.Daemons > 0 {
		WaitFor(t, "gateway to see all daemons alive", 10*time.Second, func() bool {
			resp, err := http.Get(f.URL + "/healthz")
			if err != nil {
				return false
			}
			resp.Body.Close()
			return resp.StatusCode == http.StatusOK
		})
	}
	return f
}

// StartDaemon boots one jobd server over a fault-injectable store and
// registers its cleanup on t. Zero config fields get the same defaults
// New applies to Options.Daemon. Usable standalone for daemons that join
// a running fleet via fleet.Announce.
func StartDaemon(t testing.TB, tmpl jobd.Config) *Daemon {
	t.Helper()
	cfg := tmpl
	if cfg.MaxConcurrent == 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.Budget == 0 {
		cfg.Budget = 4
	}
	if cfg.ReportEvery == 0 {
		cfg.ReportEvery = 2
	}
	cfg.StoreDir = t.TempDir()
	inj := faultfs.NewInject(nil)
	cfg.StoreFS = inj
	s := jobd.New(cfg)
	if _, err := s.LoadStore(); err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	d := &Daemon{Server: s, TS: ts, Inject: inj, URL: ts.URL, StoreDir: cfg.StoreDir}
	t.Cleanup(d.Close)
	return d
}

// Close shuts the daemon down cleanly (listener, then drain). Idempotent
// and a no-op after Kill.
func (d *Daemon) Close() {
	if d.killed {
		return
	}
	d.killed = true
	d.TS.Close()
	d.Server.Close()
}

// Kill SIGKILLs daemon i: its store dies mid-operation (faultfs crash
// rule — nothing written after this instant reaches disk), its listener
// closes with every in-flight connection severed, and its goroutines are
// reaped. Idempotent.
func (f *Fleet) Kill(i int) {
	f.t.Helper()
	d := f.Daemons[i]
	d.Kill()
}

// Kill SIGKILLs the daemon (see Fleet.Kill). Idempotent.
func (d *Daemon) Kill() {
	if d.killed {
		return
	}
	d.killed = true
	// Store first: writes racing the kill fail exactly as on real death.
	d.Inject.AddRule(&faultfs.Rule{Op: "*", Crash: true})
	d.TS.CloseClientConnections()
	d.TS.Close()
	// Reap the dead daemon's goroutines so -race and goroutine hygiene
	// hold; its jobs' work is discarded, like a killed process's.
	d.Server.Close()
}

// RestartGateway closes the gateway (daemons keep running) and opens a
// fresh one over the same replication store — the restart path a real
// deployment takes.
func (f *Fleet) RestartGateway() {
	f.t.Helper()
	f.TS.CloseClientConnections()
	f.TS.Close()
	f.Gateway.Close()
	var urls []string
	for _, d := range f.Daemons {
		if !d.killed {
			urls = append(urls, d.URL)
		}
	}
	g, err := fleet.New(fleet.Config{
		Daemons:        urls,
		Tenants:        f.Options.Tenants,
		FleetToken:     f.Options.FleetToken,
		ProbeEvery:     f.Options.ProbeEvery,
		DeadAfter:      f.Options.DeadAfter,
		MaxRequestBody: f.Options.MaxRequestBody,
		StoreDir:       f.StoreDir,
		Client:         &http.Client{Timeout: 5 * time.Second},
		Log:            func(line string) { f.t.Log(line) },
	})
	if err != nil {
		f.t.Fatal(err)
	}
	f.Gateway = g
	g.Start()
	f.TS = httptest.NewServer(g.Handler())
	f.URL = f.TS.URL
}

// Close tears the whole fleet down: gateway first (so the monitor stops
// talking to daemons), then every surviving daemon. Safe to call twice;
// New registers it as a t.Cleanup.
func (f *Fleet) Close() {
	if f.closed {
		return
	}
	f.closed = true
	f.TS.CloseClientConnections()
	f.TS.Close()
	f.Gateway.Close()
	for _, d := range f.Daemons {
		d.Close()
	}
}

// WaitFor polls cond until it holds or the timeout kills the test.
func WaitFor(t testing.TB, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
