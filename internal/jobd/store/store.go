// Package store is the job daemon's persistent result store: final
// checkpoints, recorded schedules and metrics summaries outlive the daemon
// process, so a restarted solidifyd serves the same /result and /schedule
// bytes its predecessor did.
//
// The layout separates immutable content from mutable bookkeeping:
//
//	<dir>/objects/ab/abcdef…   content-addressed blobs (SHA-256 hex)
//	<dir>/jobs/<id>.json       per-job manifests (state + blob hashes)
//	<dir>/arrays/<id>.json     per-array manifests (spec + child ids)
//
// Blobs — checkpoint files in the ckpt container format, replayable
// schedule JSON, metrics summaries — are written once under their content
// hash and verified against it on every read, so a torn or corrupted
// object is an error, never silently served. Manifests are small JSON
// documents updated with the temp-file + rename discipline: a crash at any
// point leaves either the old manifest or the new one, and stray *.tmp
// files are swept on Open. Readers therefore never observe a partial
// write.
//
// Every filesystem operation goes through a faultfs.FS (OpenFS), so the
// fault-injection harness can fail, tear or crash any individual step of
// the write discipline and prove the recovery claims above hold at each
// one.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"repro/internal/faultfs"
)

// Bucket names for the two manifest kinds.
const (
	// JobsBucket holds per-job manifests.
	JobsBucket = "jobs"
	// ArraysBucket holds per-array manifests.
	ArraysBucket = "arrays"
)

// Store is a content-addressed result store rooted at one directory. All
// methods are safe for concurrent use (atomicity comes from rename, not
// locking). The directory itself is exclusively owned: Open takes an
// advisory flock that a second daemon's Open refuses, because two live
// instances would race the orphan sweep against each other's in-flight
// spills (one daemon's just-written, not-yet-referenced blobs look like
// orphans to the other). Close releases the lock; reads keep working on a
// closed store.
type Store struct {
	dir string
	fs  faultfs.FS

	lock      *os.File // flocked <dir>/LOCK; nil after Close
	closeOnce sync.Once

	// gcMu arbitrates retention GC against multi-step writers: spillers
	// hold the read side across their whole blob+manifest sequence
	// (Reserve), GC the write side, so GC never observes a spill between
	// its first blob and its manifest (see gc.go).
	gcMu sync.RWMutex
}

// lockName is the advisory lock file guarding a store directory. The file
// itself is empty and persists between runs — ownership is the flock, not
// existence, so a crashed daemon's lock vanishes with its process and
// never needs manual cleanup.
const lockName = "LOCK"

// Open prepares the store layout under dir on the real filesystem,
// creating it if needed and sweeping temp files a crashed writer may have
// left behind.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, nil)
}

// OpenFS is Open over an injectable filesystem (nil selects the real one).
// The fault-injection suite passes a faultfs.Inject to fail or crash
// individual store operations deterministically.
func OpenFS(dir string, fsys faultfs.FS) (*Store, error) {
	if fsys == nil {
		fsys = faultfs.OS()
	}
	s := &Store{dir: dir, fs: fsys}
	for _, sub := range []string{"objects", JobsBucket, ArraysBucket} {
		if err := fsys.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	// The lock must be held before the sweeps run: they delete anything
	// an unfinished writer hasn't published yet, which is only safe when
	// no such writer can exist.
	if err := s.acquireLock(); err != nil {
		return nil, err
	}
	if err := s.sweepTemp(); err != nil {
		_ = s.Close()
		return nil, err
	}
	if err := s.sweepOrphans(); err != nil {
		_ = s.Close()
		return nil, err
	}
	return s, nil
}

// acquireLock takes the exclusive advisory lock on the store directory.
// It goes through the real filesystem, not the injectable one — mutual
// exclusion between daemons is an OS service, not part of the crash
// discipline the fault harness exercises.
func (s *Store) acquireLock() error {
	f, err := os.OpenFile(filepath.Join(s.dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return fmt.Errorf("store: %s is locked by another daemon instance: %w", s.dir, err)
	}
	s.lock = f
	return nil
}

// Close releases the store directory's exclusive lock so another daemon
// may open it. Idempotent; reads (Blob, Manifests) keep working — only
// ownership is given up, so a drained daemon can still serve stored
// results while its successor takes over writing.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.lock == nil {
			return
		}
		_ = syscall.Flock(int(s.lock.Fd()), syscall.LOCK_UN)
		err = s.lock.Close()
		s.lock = nil
	})
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// sweepTemp removes leftover *.tmp files (a crash between create and
// rename). Visible names are never *.tmp, so this cannot race a completed
// write. Temp files only ever live next to their final location: the
// bucket directories and the objects/<xx> fan-out.
func (s *Store) sweepTemp() error {
	dirs := []string{s.dir, filepath.Join(s.dir, JobsBucket), filepath.Join(s.dir, ArraysBucket)}
	objects := filepath.Join(s.dir, "objects")
	ents, err := s.fs.ReadDir(objects)
	if err != nil {
		return err
	}
	dirs = append(dirs, objects)
	for _, e := range ents {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(objects, e.Name()))
		}
	}
	for _, d := range dirs {
		ents, err := s.fs.ReadDir(d)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
				if err := s.fs.Remove(filepath.Join(d, e.Name())); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sweepOrphans deletes content objects no manifest references. The spill
// discipline writes blobs first and the manifest last, so a crash between
// the two leaves fully-written blobs with no owner; without this sweep they
// would accumulate forever (the retried spill re-hashes identical content
// to the same address, but a retry after the inputs changed — or a job that
// is never resubmitted — strands the old bytes). Running at Open is safe
// against concurrent spills because Open precedes the daemon's first write,
// and safe against crashes mid-sweep because deleting an unreferenced
// object never invalidates a manifest.
func (s *Store) sweepOrphans() error {
	referenced := map[string]bool{}
	for _, bucket := range []string{JobsBucket, ArraysBucket} {
		err := s.Manifests(bucket, func(id string, blob []byte) error {
			var doc any
			if err := json.Unmarshal(blob, &doc); err != nil {
				return err
			}
			collectHashes(doc, referenced)
			return nil
		})
		if err != nil {
			return err
		}
	}
	objects := filepath.Join(s.dir, "objects")
	fans, err := s.fs.ReadDir(objects)
	if err != nil {
		return err
	}
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		dir := filepath.Join(objects, fan.Name())
		ents, err := s.fs.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !isHash(name) || referenced[name] {
				continue
			}
			if err := s.fs.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectHashes walks a decoded JSON document and records every string that
// is shaped like a content address. Manifests store hashes as plain string
// fields, so shape-matching over the whole document keeps the sweep
// oblivious to the manifest schema — a new hash-bearing field can never be
// forgotten here and cause data loss.
func collectHashes(doc any, out map[string]bool) {
	switch v := doc.(type) {
	case string:
		if isHash(v) {
			out[v] = true
		}
	case []any:
		for _, e := range v {
			collectHashes(e, out)
		}
	case map[string]any:
		for _, e := range v {
			collectHashes(e, out)
		}
	}
}

// isHash reports whether name has the shape of a content address.
func isHash(name string) bool {
	if len(name) != 2*sha256.Size {
		return false
	}
	_, err := hex.DecodeString(name)
	return err == nil
}

// writeAtomic lands blob at path via a same-directory temp file, fsync and
// rename, so path never holds a partial write. The parent directory is
// fsynced after the rename — without that, a power loss could persist a
// later write's directory entry while dropping this one, breaking the
// blobs-before-manifest ordering spillers rely on.
func (s *Store) writeAtomic(path string, blob []byte) error {
	f, err := s.fs.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(blob)
	if err == nil {
		err = f.Sync()
	} else {
		_ = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = s.fs.Rename(tmp, path)
	}
	if err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	return s.fs.SyncDir(filepath.Dir(path))
}

// HashBlob returns the content address (SHA-256 hex) PutBlob would assign.
func HashBlob(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// objectPath maps a content hash to its on-disk location.
func (s *Store) objectPath(hash string) (string, error) {
	if len(hash) != 2*sha256.Size {
		return "", fmt.Errorf("store: malformed object hash %q", hash)
	}
	if _, err := hex.DecodeString(hash); err != nil {
		return "", fmt.Errorf("store: malformed object hash %q", hash)
	}
	return filepath.Join(s.dir, "objects", hash[:2], hash), nil
}

// PutBlob stores blob under its content address and returns the hash.
// Storing the same content twice is a no-op — identical results across
// array children (or retries) share one object.
func (s *Store) PutBlob(blob []byte) (string, error) {
	hash := HashBlob(blob)
	path, err := s.objectPath(hash)
	if err != nil {
		return "", err
	}
	if _, err := s.fs.Stat(path); err == nil {
		return hash, nil
	}
	if err := s.fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	if err := s.writeAtomic(path, blob); err != nil {
		return "", err
	}
	return hash, nil
}

// Blob returns the object stored under hash, verifying the content against
// its address: a torn or bit-flipped object is reported as corruption, not
// returned.
func (s *Store) Blob(hash string) ([]byte, error) {
	path, err := s.objectPath(hash)
	if err != nil {
		return nil, err
	}
	blob, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if got := HashBlob(blob); got != hash {
		return nil, fmt.Errorf("store: object %s is corrupt (content hashes to %s)", hash, got)
	}
	return blob, nil
}

// PutManifest writes the manifest for id into a bucket (JobsBucket or
// ArraysBucket) with the temp-file + rename discipline.
func (s *Store) PutManifest(bucket, id string, m any) error {
	path, err := s.manifestPath(bucket, id)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return s.writeAtomic(path, blob)
}

// manifestPath validates the id (it becomes a file name) and returns the
// manifest location.
func (s *Store) manifestPath(bucket, id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.HasPrefix(id, ".") {
		return "", fmt.Errorf("store: invalid manifest id %q", id)
	}
	return filepath.Join(s.dir, bucket, id+".json"), nil
}

// Manifests streams every manifest in a bucket through decode as
// (id, raw JSON) pairs. A decode error aborts the walk — rename-atomicity
// means a malformed file is corruption, not an in-progress write.
func (s *Store) Manifests(bucket string, decode func(id string, blob []byte) error) error {
	entries, err := s.fs.ReadDir(filepath.Join(s.dir, bucket))
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		blob, err := s.fs.ReadFile(filepath.Join(s.dir, bucket, name))
		if err != nil {
			return err
		}
		if err := decode(strings.TrimSuffix(name, ".json"), blob); err != nil {
			return fmt.Errorf("store: manifest %s/%s: %w", bucket, name, err)
		}
	}
	return nil
}
