// Command solidifyd is the always-on solidification service: it serves the
// jobd HTTP/JSON API, running submitted schedule-driven simulations up to
// -jobs at a time against one shared -budget of sweep workers. Queued jobs
// with strictly higher priority preempt running ones at timestep
// boundaries via lossless in-memory checkpoints and later resume
// bit-identically. On SIGTERM/SIGINT the daemon drains: every in-flight
// job is checkpointed and — with -spool — persisted, so the next instance
// picks the queue back up.
//
// Campaigns submit as job arrays (POST /arrays): a template spec expands
// over a parameter grid into one child job per grid point, children
// interleaving fairly with other submissions. Named resource classes
// (-class name=W, e.g. -class small=2 -class large=6) cap how many workers
// each class's jobs may hold collectively, so an array of cheap scouts
// never starves a production run. With -store-dir, terminal jobs spill
// their final checkpoint, replayable schedule and metrics summary to a
// content-addressed on-disk store, and a restarted daemon keeps serving
// /result and /schedule byte-identically. The store's growth is bounded
// by -store-max-bytes / -store-max-age, enforced at startup and on the
// -store-gc-every cadence.
//
// A daemon joins a federation by announcing itself to a solidifygw
// gateway: -gateway names the gateway, -advertise the URL the gateway
// reaches this daemon at, and -fleet-token authenticates registration.
// The periodic announcement doubles as a heartbeat.
//
// Usage:
//
//	solidifyd -addr :8080 -jobs 2 -budget 8 -class small=2 \
//	  -spool /var/lib/solidifyd/spool -store-dir /var/lib/solidifyd/store
//
//	curl -X POST -d '{"nx":32,"ny":32,"nz":64,"steps":500,
//	  "schedule":{"events":[{"type":"ramp","param":"v","step":0,
//	  "over":200,"from":0.02,"to":0.05}]}}' localhost:8080/jobs
//	curl -X POST -d @array.json localhost:8080/arrays
//	curl localhost:8080/arrays/arr-0001            # aggregated status
//	curl localhost:8080/arrays/arr-0001/results    # per-child params + metrics
//	curl localhost:8080/jobs/job-0001/metrics      # NDJSON stream
//	curl localhost:8080/jobs/job-0001/schedule     # replayable audit log
//	curl -X DELETE localhost:8080/arrays/arr-0001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/jobd"
)

// classFlags accumulates repeated -class name=W definitions.
type classFlags map[string]int

func (c classFlags) String() string {
	parts := make([]string, 0, len(c))
	for name, w := range c {
		parts = append(parts, fmt.Sprintf("%s=%d", name, w))
	}
	return strings.Join(parts, ",")
}

func (c classFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=workers, got %q", v)
	}
	w, err := strconv.Atoi(val)
	if err != nil || w < 1 {
		return fmt.Errorf("class %q needs a positive worker count, got %q", name, val)
	}
	c[name] = w
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	jobs := flag.Int("jobs", 2, "max concurrently running jobs (K)")
	budget := flag.Int("budget", runtime.GOMAXPROCS(0), "global sweep-worker budget shared by running jobs")
	spool := flag.String("spool", "", "directory for drained-job spooling (empty = no persistence)")
	storeDir := flag.String("store-dir", "", "persistent result store directory (empty = results are in-memory only)")
	classes := classFlags{}
	flag.Var(classes, "class", "resource class as name=workers (repeatable, e.g. -class small=2 -class large=6)")
	report := flag.Int("report", 5, "metrics sampling cadence in steps")
	snapshotEvery := flag.Int("snapshot-every", 50, "safety-snapshot cadence in steps for automatic retries (0 = off)")
	stallTimeout := flag.Duration("stall-timeout", 0, "watchdog: max wall-clock gap between timestep boundaries before a job is declared stalled (0 = watchdog off)")
	chaos := flag.Bool("chaos", false, "accept fault-injection specs (deterministic failure drills; never in production)")
	debugAddr := flag.String("debug-addr", "", "listen address for net/http/pprof profiling endpoints (empty = off; bind to localhost, the profiles are unauthenticated)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "result-store byte quota: oldest terminal results are evicted to fit (0 = unbounded)")
	storeMaxAge := flag.Duration("store-max-age", 0, "result-store age bound: stored results older than this are dropped (0 = keep forever)")
	storeGCEvery := flag.Duration("store-gc-every", 0, "periodic result-store retention GC cadence (0 = GC once at startup only)")
	gateway := flag.String("gateway", "", "federation gateway base URL to announce this daemon to (empty = standalone)")
	fleetToken := flag.String("fleet-token", "", "bearer token authenticating registration with -gateway")
	advertise := flag.String("advertise", "", "base URL the gateway should reach this daemon at (required with -gateway, e.g. http://10.0.0.5:8080)")
	announceEvery := flag.Duration("announce-every", 5*time.Second, "registration heartbeat interval to -gateway")
	flag.Parse()

	if *gateway != "" && *advertise == "" {
		fatal(errors.New("-gateway requires -advertise (the URL the gateway reaches this daemon at)"))
	}

	srv := jobd.New(jobd.Config{
		MaxConcurrent:   *jobs,
		Budget:          *budget,
		SpoolDir:        *spool,
		StoreDir:        *storeDir,
		Classes:         classes,
		ReportEvery:     *report,
		SnapshotEvery:   *snapshotEvery,
		StallTimeout:    *stallTimeout,
		AllowFaults:     *chaos,
		StoreGCMaxBytes: *storeMaxBytes,
		StoreGCMaxAge:   *storeMaxAge,
		StoreGCEvery:    *storeGCEvery,
		Log:             func(msg string) { fmt.Fprintln(os.Stderr, msg) },
	})
	if n, err := srv.LoadStore(); err != nil {
		fatal(err)
	} else if n > 0 {
		fmt.Printf("solidifyd: restored %d stored job(s) from %s\n", n, *storeDir)
	}
	if n, err := srv.LoadSpool(); err != nil {
		fatal(err)
	} else if n > 0 {
		fmt.Printf("solidifyd: requeued %d spooled job(s)\n", n)
	}
	srv.Start()

	// Server-side timeouts: slowloris-style clients must not pin
	// connections forever. The write timeout is generous because /result
	// ships multi-MB checkpoints; the long-lived /jobs/{id}/metrics stream
	// extends its own deadline per sample via a ResponseController.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("solidifyd: listening on %s (jobs=%d budget=%d classes=%v)\n",
			*addr, *jobs, *budget, classes)
		errCh <- httpSrv.ListenAndServe()
	}()

	// The profiling endpoints live on their own listener so they are never
	// exposed on the API address by accident: kernel and halo hot spots are
	// inspected with `go tool pprof http://<debug-addr>/debug/pprof/profile`
	// while jobs run. An explicit mux, not DefaultServeMux — the API server
	// must stay pprof-free.
	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Printf("solidifyd: pprof on %s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				fmt.Fprintln(os.Stderr, "solidifyd: pprof listener:", err)
			}
		}()
	}

	// Fleet membership: heartbeat our advertised URL to the gateway so it
	// probes us and fans array children our way. The heartbeat doubles as
	// re-registration after a gateway restart.
	announceStop := make(chan struct{})
	if *gateway != "" {
		go fleet.Announce(*gateway, *fleetToken, *advertise, *announceEvery, announceStop,
			func(format string, args ...any) { fmt.Fprintf(os.Stderr, "solidifyd: "+format+"\n", args...) })
		fmt.Printf("solidifyd: announcing %s to gateway %s\n", *advertise, *gateway)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		close(announceStop)
		fmt.Printf("solidifyd: %v — draining (checkpointing in-flight jobs)\n", sig)
		if err := srv.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, "solidifyd: drain:", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		fmt.Println("solidifyd: drained, exiting")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "solidifyd:", err)
	os.Exit(1)
}
