package comm

import (
	"sync"
	"testing"

	"repro/internal/grid"
)

// closeRaceWorld builds a 2×1×1 periodic-x world with one field per rank —
// the smallest decomposition whose exchanges actually cross ranks.
func closeRaceWorld(t *testing.T) (*World, []*grid.Field, []grid.BoundarySet) {
	t.Helper()
	bg, err := grid.NewBlockGrid(2, 1, 1, 6, 6, 6, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(bg)
	fields := make([]*grid.Field, bg.NumBlocks())
	bcs := make([]grid.BoundarySet, bg.NumBlocks())
	domain := grid.AllPeriodic()
	domain[grid.ZMin] = grid.BC{Kind: grid.BCNeumann}
	domain[grid.ZMax] = grid.BC{Kind: grid.BCNeumann}
	for r := range fields {
		fields[r] = grid.NewField(6, 6, 6, 2, 1, grid.SoA)
		bcs[r] = bg.BlockBCs(r, domain)
	}
	return w, fields, bcs
}

// Close must be idempotent: repeated and concurrent calls are no-ops after
// the first.
func TestCloseIdempotent(t *testing.T) {
	w, fields, bcs := closeRaceWorld(t)
	// Exercise the workers once so there is something to shut down.
	var wg sync.WaitGroup
	for r := range fields {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w.StartExchange(r, fields[r], TagPhi, bcs[r]).Finish()
		}(r)
	}
	wg.Wait()

	w.Close()
	w.Close() // second sequential call must not panic
	var cg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			w.Close()
		}()
	}
	cg.Wait()
}

// A StartExchange issued after Close must still complete the round (as a
// blocking exchange) and its Finish must return.
func TestStartExchangeAfterClose(t *testing.T) {
	w, fields, bcs := closeRaceWorld(t)
	w.Close()

	var wg sync.WaitGroup
	for r := range fields {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				w.StartExchange(r, fields[r], TagPhi, bcs[r]).Finish()
			}
		}(r)
	}
	wg.Wait()
}

// Close racing a stream of in-flight overlapped exchange rounds (the job
// daemon cancels jobs from API goroutines while ranks are mid-step) must
// neither panic, nor deadlock, nor abandon a Finish. Run with -race.
func TestCloseConcurrentWithExchange(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		w, fields, bcs := closeRaceWorld(t)
		const rounds = 50

		var wg sync.WaitGroup
		start := make(chan struct{})
		for r := range fields {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				<-start
				for i := 0; i < rounds; i++ {
					// Alternate tags so both pending slots see traffic.
					tag := TagPhi
					if i%2 == 1 {
						tag = TagMu
					}
					w.StartExchange(r, fields[r], tag, bcs[r]).Finish()
				}
			}(r)
		}
		// Several concurrent closers racing the exchange loops; the trial
		// loop varies how far the rounds have progressed when they land.
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				w.Close()
			}()
		}
		close(start)
		wg.Wait()
	}
}
