package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// buildField creates a φ field where each cell is a pure phase given by
// pick(x,y,z).
func buildField(nx, ny, nz int, pick func(x, y, z int) int) *grid.Field {
	f := grid.NewField(nx, ny, nz, core.NPhases, 1, grid.SoA)
	f.Interior(func(x, y, z int) {
		f.Set(pick(x, y, z), x, y, z, 1)
	})
	return f
}

func TestDominantPhase(t *testing.T) {
	f := grid.NewField(2, 2, 2, core.NPhases, 1, grid.SoA)
	f.Set(1, 0, 0, 0, 0.6)
	f.Set(3, 0, 0, 0, 0.4)
	if DominantPhase(f, 0, 0, 0) != 1 {
		t.Error("dominant phase wrong")
	}
}

func TestSliceFractions(t *testing.T) {
	f := buildField(4, 4, 2, func(x, y, z int) int {
		if x < 2 {
			return 0
		}
		return core.Liquid
	})
	fr := SliceFractions(f, 0)
	if math.Abs(fr[0]-0.5) > 1e-12 || math.Abs(fr[core.Liquid]-0.5) > 1e-12 {
		t.Errorf("fractions %v", fr)
	}
}

func TestLabelSliceCountsStripes(t *testing.T) {
	// Two disjoint stripes of phase 0 (x in [0,2) and [5,7)) in a 10-wide
	// periodic slice: two components.
	f := buildField(10, 4, 1, func(x, y, z int) int {
		if x < 2 || (x >= 5 && x < 7) {
			return 0
		}
		return core.Liquid
	})
	_, n := LabelSlice(f, 0, 0)
	if n != 2 {
		t.Errorf("components = %d, want 2", n)
	}
}

func TestLabelSlicePeriodicWrap(t *testing.T) {
	// A stripe crossing the periodic x boundary is ONE component.
	f := buildField(10, 4, 1, func(x, y, z int) int {
		if x < 2 || x >= 8 {
			return 0
		}
		return core.Liquid
	})
	_, n := LabelSlice(f, 0, 0)
	if n != 1 {
		t.Errorf("wrapped stripe components = %d, want 1", n)
	}
}

func TestSliceEventsSplit(t *testing.T) {
	// One lamella at z=0 splits into two at z=1.
	f := buildField(12, 4, 2, func(x, y, z int) int {
		if z == 0 {
			if x >= 2 && x < 10 {
				return 0
			}
		} else {
			if (x >= 2 && x < 5) || (x >= 7 && x < 10) {
				return 0
			}
		}
		return core.Liquid
	})
	ev := SliceEvents(f, 0, 0)
	if ev.Splits != 1 || ev.Merges != 0 {
		t.Errorf("events %+v, want 1 split", ev)
	}
}

func TestSliceEventsMerge(t *testing.T) {
	f := buildField(12, 4, 2, func(x, y, z int) int {
		if z == 1 {
			if x >= 2 && x < 10 {
				return 0
			}
		} else {
			if (x >= 2 && x < 5) || (x >= 7 && x < 10) {
				return 0
			}
		}
		return core.Liquid
	})
	ev := SliceEvents(f, 0, 0)
	if ev.Merges != 1 || ev.Splits != 0 {
		t.Errorf("events %+v, want 1 merge", ev)
	}
}

func TestSliceEventsBirthDeath(t *testing.T) {
	f := buildField(12, 4, 2, func(x, y, z int) int {
		if z == 0 && x < 3 {
			return 0 // dies
		}
		if z == 1 && x >= 6 && x < 9 {
			return 0 // born
		}
		return core.Liquid
	})
	ev := SliceEvents(f, 0, 0)
	if ev.Deaths != 1 || ev.Births != 1 {
		t.Errorf("events %+v, want 1 death + 1 birth", ev)
	}
}

func TestTotalEventsAccumulates(t *testing.T) {
	// Split at z=0->1, merge at z=1->2.
	f := buildField(12, 4, 3, func(x, y, z int) int {
		switch z {
		case 0, 2:
			if x >= 2 && x < 10 {
				return 0
			}
		case 1:
			if (x >= 2 && x < 5) || (x >= 7 && x < 10) {
				return 0
			}
		}
		return core.Liquid
	})
	tot := TotalEvents(f, 0)
	if tot.Splits != 1 || tot.Merges != 1 {
		t.Errorf("total events %+v", tot)
	}
}

func TestLamellaCounts(t *testing.T) {
	f := buildField(12, 4, 2, func(x, y, z int) int {
		if z == 0 && x < 3 {
			return 1
		}
		if z == 1 && (x < 3 || (x >= 6 && x < 9)) {
			return 1
		}
		return core.Liquid
	})
	c := LamellaCounts(f, 1)
	if c[0] != 1 || c[1] != 2 {
		t.Errorf("lamella counts %v", c)
	}
}

func TestTwoPointCorrelation(t *testing.T) {
	// Period-4 stripes of phase 0: S2(0)=0.5, S2(4)=0.5, S2(2)=0.
	f := buildField(8, 4, 1, func(x, y, z int) int {
		if x%4 < 2 {
			return 0
		}
		return core.Liquid
	})
	s2 := TwoPointCorrelation(f, 0, 0, 4)
	if math.Abs(s2[0]-0.5) > 1e-12 {
		t.Errorf("S2(0) = %g, want 0.5 (phase fraction)", s2[0])
	}
	if math.Abs(s2[4]-0.5) > 1e-12 {
		t.Errorf("S2(4) = %g, want 0.5 (periodicity)", s2[4])
	}
	if s2[2] > 1e-12 {
		t.Errorf("S2(2) = %g, want 0 (anti-phase)", s2[2])
	}
}

func TestInterfaceCellCount(t *testing.T) {
	f := grid.NewField(4, 4, 4, core.NPhases, 1, grid.SoA)
	f.FillComp(core.Liquid, 1)
	if n := InterfaceCellCount(f, 1e-6); n != 0 {
		t.Errorf("bulk field has %d interface cells", n)
	}
	f.Set(core.Liquid, 1, 1, 1, 0.5)
	f.Set(0, 1, 1, 1, 0.5)
	if n := InterfaceCellCount(f, 1e-6); n != 1 {
		t.Errorf("interface cells = %d, want 1", n)
	}
}
