package mesh

import (
	"repro/internal/grid"
)

// Isosurface extraction. The paper uses a custom marching-cubes variant
// after Lorensen–Cline; this implementation uses the marching-tetrahedra
// decomposition (each cube split into six tetrahedra around its main
// diagonal), which produces a topologically consistent, watertight surface
// with triangle edge lengths on the order of dx — the property the
// downstream coarsening pipeline relies on — without the 256-entry case
// table. Extraction extends one cell into the ghost region so that
// per-block meshes stitch exactly (§3.2).

// IsoLevel is the φ level-set defining a phase interface.
const IsoLevel = 0.5

// cube corner offsets.
var cornerOff = [8][3]int{
	{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
	{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
}

// Six tetrahedra around the main diagonal c0–c6.
var tets = [6][4]int{
	{0, 5, 1, 6},
	{0, 1, 2, 6},
	{0, 2, 3, 6},
	{0, 3, 7, 6},
	{0, 7, 4, 6},
	{0, 4, 5, 6},
}

// extractor deduplicates edge vertices across tetrahedra and cubes.
type extractor struct {
	mesh     *Mesh
	edgeVert map[[2]int64]int32
	nx, ny   int
}

// nodeID packs a lattice node coordinate (shifted to be nonnegative).
func (e *extractor) nodeID(x, y, z int) int64 {
	return int64(z+1)*int64(e.ny+3)*int64(e.nx+3) + int64(y+1)*int64(e.nx+3) + int64(x+1)
}

// vertexOn returns the index of the interpolated iso-crossing vertex on the
// lattice edge between nodes a and b with scalar values va, vb.
func (e *extractor) vertexOn(ax, ay, az int, va float64, bx, by, bz int, vb float64) int32 {
	ia, ib := e.nodeID(ax, ay, az), e.nodeID(bx, by, bz)
	key := [2]int64{ia, ib}
	if ia > ib {
		key = [2]int64{ib, ia}
	}
	if v, ok := e.edgeVert[key]; ok {
		return v
	}
	t := 0.5
	if vb != va {
		t = (IsoLevel - va) / (vb - va)
	}
	p := Vec3{
		float64(ax) + t*float64(bx-ax),
		float64(ay) + t*float64(by-ay),
		float64(az) + t*float64(bz-az),
	}
	idx := int32(len(e.mesh.Verts))
	e.mesh.Verts = append(e.mesh.Verts, p)
	e.edgeVert[key] = idx
	return idx
}

// ExtractPhase extracts the iso-0.5 surface of phase a from a φ field,
// sampling cell centers. The lattice spans [-1, N] in every direction (one
// ghost cell), so block meshes overlap their neighbors by exactly one cell
// layer and can be stitched. origin shifts vertex positions into global
// coordinates; markBoundary tags vertices on the block's outer hull for
// the weighted simplifier.
func ExtractPhase(f *grid.Field, phase int, origin Vec3, markBoundary bool) *Mesh {
	e := &extractor{
		mesh:     &Mesh{},
		edgeVert: make(map[[2]int64]int32),
		nx:       f.NX, ny: f.NY,
	}

	val := func(x, y, z int) float64 { return f.At(phase, x, y, z) }

	// Cubes span lattice nodes [-1, N-1+1): node i is cell center i.
	for z := -1; z < f.NZ; z++ {
		for y := -1; y < f.NY; y++ {
			for x := -1; x < f.NX; x++ {
				var vv [8]float64
				var pos [8][3]int
				allLo, allHi := true, true
				for c := 0; c < 8; c++ {
					px := x + cornerOff[c][0]
					py := y + cornerOff[c][1]
					pz := z + cornerOff[c][2]
					pos[c] = [3]int{px, py, pz}
					v := val(px, py, pz)
					vv[c] = v
					if v >= IsoLevel {
						allLo = false
					} else {
						allHi = false
					}
				}
				if allLo || allHi {
					continue
				}
				for _, tet := range tets {
					e.emitTet(&vv, &pos, tet)
				}
			}
		}
	}

	m := e.mesh
	// Shift to global coordinates and mark boundary vertices.
	if markBoundary {
		m.Boundary = make([]bool, len(m.Verts))
	}
	for i := range m.Verts {
		v := &m.Verts[i]
		if markBoundary {
			m.Boundary[i] = v[0] <= -0.5 || v[0] >= float64(f.NX)-0.5 ||
				v[1] <= -0.5 || v[1] >= float64(f.NY)-0.5 ||
				v[2] <= -0.5 || v[2] >= float64(f.NZ)-0.5
		}
		*v = v.Add(origin)
	}
	return m
}

// emitTet produces the 0, 1 or 2 triangles of one tetrahedron.
func (e *extractor) emitTet(vv *[8]float64, pos *[8][3]int, tet [4]int) {
	var above [4]bool
	nAbove := 0
	for i, c := range tet {
		if vv[c] >= IsoLevel {
			above[i] = true
			nAbove++
		}
	}
	if nAbove == 0 || nAbove == 4 {
		return
	}

	vert := func(i, j int) int32 {
		a, b := tet[i], tet[j]
		return e.vertexOn(pos[a][0], pos[a][1], pos[a][2], vv[a],
			pos[b][0], pos[b][1], pos[b][2], vv[b])
	}
	centroidAbove := func(idxs ...int) Vec3 {
		var c Vec3
		for _, i := range idxs {
			p := pos[tet[i]]
			c = c.Add(Vec3{float64(p[0]), float64(p[1]), float64(p[2])})
		}
		return c.Scale(1 / float64(len(idxs)))
	}

	switch nAbove {
	case 1, 3:
		// One vertex separated from the other three: one triangle.
		loneIsAbove := nAbove == 1
		iso := 0
		for i := 0; i < 4; i++ {
			if above[i] == loneIsAbove {
				iso = i
			}
		}
		var others [3]int
		k := 0
		for i := 0; i < 4; i++ {
			if i != iso {
				others[k] = i
				k++
			}
		}
		t := [3]int32{vert(iso, others[0]), vert(iso, others[1]), vert(iso, others[2])}
		// Orient the triangle so its normal points away from the
		// above-iso side (outward from the phase region).
		var inside Vec3
		if loneIsAbove {
			inside = centroidAbove(iso)
		} else {
			inside = centroidAbove(others[0], others[1], others[2])
		}
		e.emitOriented(t, inside)
	case 2:
		// Two above: a quad split into two triangles.
		var ab, be [2]int // above / below indices
		ka, kb := 0, 0
		for i := 0; i < 4; i++ {
			if above[i] {
				ab[ka] = i
				ka++
			} else {
				be[kb] = i
				kb++
			}
		}
		v00 := vert(ab[0], be[0])
		v01 := vert(ab[0], be[1])
		v10 := vert(ab[1], be[0])
		v11 := vert(ab[1], be[1])
		inside := centroidAbove(ab[0], ab[1])
		e.emitOriented([3]int32{v00, v01, v11}, inside)
		e.emitOriented([3]int32{v00, v11, v10}, inside)
	}
}

// emitOriented appends the triangle, flipped if needed so its normal points
// away from insidePoint (the φ ≥ 0.5 side).
func (e *extractor) emitOriented(t [3]int32, insidePoint Vec3) {
	if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
		return // degenerate (iso exactly on a shared node)
	}
	a := e.mesh.Verts[t[0]]
	b := e.mesh.Verts[t[1]]
	c := e.mesh.Verts[t[2]]
	n := b.Sub(a).Cross(c.Sub(a))
	center := a.Add(b).Add(c).Scale(1.0 / 3.0)
	if n.Dot(center.Sub(insidePoint)) < 0 {
		t[1], t[2] = t[2], t[1]
	}
	e.mesh.Tris = append(e.mesh.Tris, t)
}
