// Command solidifyd is the always-on solidification service: it serves the
// jobd HTTP/JSON API, running submitted schedule-driven simulations up to
// -jobs at a time against one shared -budget of sweep workers. Queued jobs
// with strictly higher priority preempt running ones at timestep
// boundaries via lossless in-memory checkpoints and later resume
// bit-identically. On SIGTERM/SIGINT the daemon drains: every in-flight
// job is checkpointed and — with -spool — persisted, so the next instance
// picks the queue back up.
//
// Usage:
//
//	solidifyd -addr :8080 -jobs 2 -budget 8 -spool /var/lib/solidifyd
//
//	curl -X POST -d '{"nx":32,"ny":32,"nz":64,"steps":500,
//	  "schedule":{"events":[{"type":"ramp","param":"v","step":0,
//	  "over":200,"from":0.02,"to":0.05}]}}' localhost:8080/jobs
//	curl localhost:8080/jobs/job-0001
//	curl localhost:8080/jobs/job-0001/metrics   # NDJSON stream
//	curl localhost:8080/jobs/job-0001/schedule  # replayable audit log
//	curl -X DELETE localhost:8080/jobs/job-0001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/jobd"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	jobs := flag.Int("jobs", 2, "max concurrently running jobs (K)")
	budget := flag.Int("budget", runtime.GOMAXPROCS(0), "global sweep-worker budget shared by running jobs")
	spool := flag.String("spool", "", "directory for drained-job spooling (empty = no persistence)")
	report := flag.Int("report", 5, "metrics sampling cadence in steps")
	flag.Parse()

	srv := jobd.New(jobd.Config{
		MaxConcurrent: *jobs,
		Budget:        *budget,
		SpoolDir:      *spool,
		ReportEvery:   *report,
	})
	if n, err := srv.LoadSpool(); err != nil {
		fatal(err)
	} else if n > 0 {
		fmt.Printf("solidifyd: requeued %d spooled job(s)\n", n)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("solidifyd: listening on %s (jobs=%d budget=%d)\n", *addr, *jobs, *budget)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		fmt.Printf("solidifyd: %v — draining (checkpointing in-flight jobs)\n", sig)
		if err := srv.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, "solidifyd: drain:", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		fmt.Println("solidifyd: drained, exiting")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "solidifyd:", err)
	os.Exit(1)
}
