package schedule

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/kernels"
)

// json.go is the JSON front-end of the schedule subsystem (the format read
// by cmd/solidify -schedule). A schedule file is an object with an "events"
// array; each event is discriminated by its "type" field:
//
//	{"events": [
//	  {"type": "burst",  "step": 200, "count": 6, "phase": -1,
//	   "radius": 2.5, "zmin": 40, "zmax": 56, "seed": 7},
//	  {"type": "ramp",   "param": "v", "step": 0, "over": 800,
//	   "from": 0.02, "to": 0.05},
//	  {"type": "switch", "step": 400, "phi": "shortcut", "mu": "stag",
//	   "strategy": "fourcell"},
//	  {"type": "checkpoint", "every": 500, "path": "out/state_%06d.pfcp"}
//	]}
//
// Variant names follow the optimization ladder: general, basic, simd, tz,
// stag, shortcut. Strategy names follow Fig. 5: cellwise,
// cellwise-shortcut, fourcell, plus "off" to unpin. Omitted switch fields
// keep the current kernel.

// variantNames maps JSON names to ladder rungs.
var variantNames = map[string]kernels.Variant{
	"general":  kernels.VarGeneral,
	"basic":    kernels.VarBasic,
	"simd":     kernels.VarSIMD,
	"tz":       kernels.VarTz,
	"stag":     kernels.VarStag,
	"shortcut": kernels.VarShortcut,
}

// VariantName returns the JSON name of a ladder rung.
func VariantName(v kernels.Variant) string {
	for name, vv := range variantNames {
		if vv == v {
			return name
		}
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// ParseVariant resolves a JSON variant name ("" = KeepVariant).
func ParseVariant(name string) (kernels.Variant, error) {
	if name == "" {
		return KeepVariant, nil
	}
	if v, ok := variantNames[strings.ToLower(name)]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("schedule: unknown variant %q", name)
}

var strategyNames = map[string]int{
	"":                  StrategyKeep,
	"off":               StrategyOff,
	"cellwise":          int(kernels.StratCellwise),
	"cellwise-shortcut": int(kernels.StratCellwiseShortcut),
	"fourcell":          int(kernels.StratFourCell),
}

// ParseStrategy resolves a JSON strategy name ("" = StrategyKeep).
func ParseStrategy(name string) (int, error) {
	if s, ok := strategyNames[strings.ToLower(name)]; ok {
		return s, nil
	}
	return 0, fmt.Errorf("schedule: unknown strategy %q", name)
}

var paramNames = map[string]Param{
	"v":        ParamPullVelocity,
	"velocity": ParamPullVelocity,
	"g":        ParamGradient,
	"gradient": ParamGradient,
	"dt":       ParamDt,
}

// ParseParam resolves a JSON ramp parameter name.
func ParseParam(name string) (Param, error) {
	if p, ok := paramNames[strings.ToLower(name)]; ok {
		return p, nil
	}
	return 0, fmt.Errorf("schedule: unknown ramp param %q", name)
}

// jsonEvent is the union of all event fields, discriminated by Type.
type jsonEvent struct {
	Type string `json:"type"`
	Step int    `json:"step"`

	// burst
	Count  int     `json:"count"`
	Phase  *int    `json:"phase"`
	Radius float64 `json:"radius"`
	ZMin   int     `json:"zmin"`
	ZMax   int     `json:"zmax"`
	Seed   int64   `json:"seed"`

	// ramp
	Param string  `json:"param"`
	Over  int     `json:"over"`
	From  float64 `json:"from"`
	To    float64 `json:"to"`

	// switch
	Phi      string `json:"phi"`
	Mu       string `json:"mu"`
	Strategy string `json:"strategy"`

	// checkpoint
	Every int    `json:"every"`
	Path  string `json:"path"`
}

type jsonSchedule struct {
	Events []jsonEvent `json:"events"`
}

// FromJSON parses and validates a schedule file.
func FromJSON(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var js jsonSchedule
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	events := make([]Event, 0, len(js.Events))
	for i, je := range js.Events {
		e, err := je.toEvent()
		if err != nil {
			return nil, fmt.Errorf("schedule: event %d: %w", i, err)
		}
		events = append(events, e)
	}
	return New(events...)
}

func (je *jsonEvent) toEvent() (Event, error) {
	switch strings.ToLower(je.Type) {
	case "burst":
		phase := -1
		if je.Phase != nil {
			phase = *je.Phase
		}
		return NucleationBurst{
			Step: je.Step, Count: je.Count, Phase: phase,
			Radius: je.Radius, ZMin: je.ZMin, ZMax: je.ZMax, Seed: je.Seed,
		}, nil
	case "ramp":
		p, err := ParseParam(je.Param)
		if err != nil {
			return nil, err
		}
		return Ramp{Param: p, Step: je.Step, Over: je.Over, From: je.From, To: je.To}, nil
	case "switch":
		phi, err := ParseVariant(je.Phi)
		if err != nil {
			return nil, err
		}
		mu, err := ParseVariant(je.Mu)
		if err != nil {
			return nil, err
		}
		strat, err := ParseStrategy(je.Strategy)
		if err != nil {
			return nil, err
		}
		return SwitchVariant{Step: je.Step, Phi: phi, Mu: mu, Strategy: strat}, nil
	case "checkpoint":
		return Checkpoint{Step: je.Step, Every: je.Every, Path: je.Path}, nil
	}
	return nil, fmt.Errorf("unknown event type %q", je.Type)
}
