package jobd

import (
	"bytes"
	"fmt"
	"time"

	"repro"
	"repro/internal/ckpt"
)

// runner.go executes one admitted job on its own goroutine. All scheduler
// control — preemption, cancellation, worker-budget rebalancing — is
// applied cooperatively at timestep boundaries through the schedule
// engine's yield hook, where no sweep or overlapped exchange is in flight.

// buildSim constructs the job's simulation: fresh from the spec, or — for
// a preempted job — restored from the lossless in-memory snapshot, which
// resumes the trajectory bit-identically.
func (s *Server) buildSim(j *Job, share int) (*phasefield.Simulation, error) {
	sp := j.Spec
	cfg := phasefield.DefaultConfig(sp.NX, sp.NY, sp.NZ)
	cfg.PX, cfg.PY = sp.PX, sp.PY
	cfg.Seed = sp.Seed
	cfg.MovingWindow = sp.Window
	cfg.Parallelism = share
	// The class sub-gauge counts this job's workers on both the class and
	// the root gauge, making per-class budget caps measurable.
	cfg.WorkerGauge = s.gauge.Class(sp.Class)

	j.mu.Lock()
	snapshot := j.snapshot
	j.mu.Unlock()
	if snapshot != nil {
		return phasefield.RestoreReader(bytes.NewReader(snapshot), cfg)
	}
	sim, err := phasefield.New(cfg)
	if err != nil {
		return nil, err
	}
	if sp.Scenario == "interface" {
		err = sim.InitFront()
	} else {
		err = sim.InitProduction()
	}
	if err != nil {
		return nil, err
	}
	return sim, nil
}

// runJob steps one job until completion, preemption, cancellation or
// error, then hands the slot back to the scheduler.
func (s *Server) runJob(j *Job) {
	defer s.runnersWG.Done()
	defer s.onRunnerExit(j)

	sim, err := s.buildSim(j, int(j.appliedShare.Load()))
	if err != nil {
		s.finishRunner(j, nil, StateFailed, err)
		return
	}
	defer sim.Close()

	remaining := j.Spec.Steps - sim.Step()
	if remaining <= 0 {
		s.finishRunner(j, sim, StateDone, nil)
		return
	}

	stop := ctrlNone
	nCells := j.Spec.NX * j.Spec.NY * j.Spec.NZ
	lastWall := time.Now()
	lastStep := sim.Step()

	opt := phasefield.ScheduleOptions{
		OnStep: func(step int) bool {
			// Control first: a preempted/canceled job must not take
			// another step.
			if c := j.ctrl.Load(); c != ctrlNone {
				stop = c
				return true
			}
			// Budget rebalance: shrinks must apply here, at the step
			// boundary, before the scheduler admits the next job.
			if ds := j.desiredShare.Load(); ds != j.appliedShare.Load() {
				if err := sim.SetWorkerBudget(int(ds)); err == nil {
					j.appliedShare.Store(ds)
				}
			}
			if (step-lastStep)%s.cfg.ReportEvery == 0 {
				now := time.Now()
				mlups := 0.0
				if d := now.Sub(lastWall).Seconds(); d > 0 {
					mlups = float64((step-lastStep)*nCells) / d / 1e6
				}
				lastWall, lastStep = now, step
				solid := sim.SolidFraction()
				j.mu.Lock()
				j.step = step
				j.simTime = sim.Time()
				j.solid = solid
				j.mergeApplied(sim.AppliedEvents())
				sample := j.sampleLocked()
				sample.MLUPs = mlups
				j.mu.Unlock()
				j.publish(sample)
			}
			return false
		},
	}

	runErr := sim.RunSchedule(j.sched, remaining, opt)
	switch {
	case runErr != nil:
		s.finishRunner(j, sim, StateFailed, runErr)
	case stop == ctrlCancel:
		s.finishRunner(j, sim, StateCanceled, nil)
	case stop == ctrlPreempt:
		s.preemptRunner(j, sim)
	default:
		s.finishRunner(j, sim, StateDone, nil)
	}
}

// preemptRunner snapshots the simulation losslessly and returns the job to
// the queue (onRunnerExit requeues StateQueued jobs).
func (s *Server) preemptRunner(j *Job, sim *phasefield.Simulation) {
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf, ckpt.Float64); err != nil {
		s.finishRunner(j, sim, StateFailed, fmt.Errorf("jobd: preemption snapshot: %w", err))
		return
	}
	// Clear the preempt order with a CAS, not a store: a DELETE that raced
	// in while the snapshot was being written must win, or the job would
	// be requeued despite the acknowledged cancellation. (A cancel landing
	// after this point sees StateQueued and cancels through the queue
	// path.)
	if !j.ctrl.CompareAndSwap(ctrlPreempt, ctrlNone) {
		s.finishRunner(j, sim, StateCanceled, nil)
		return
	}
	j.mu.Lock()
	j.snapshot = buf.Bytes()
	j.state = StateQueued
	j.preemptions++
	j.step = sim.Step()
	j.simTime = sim.Time()
	j.solid = sim.SolidFraction()
	j.mergeApplied(sim.AppliedEvents())
	sample := j.sampleLocked()
	j.mu.Unlock()
	j.publish(sample)
}

// finishRunner records a terminal state (sim may be nil when construction
// failed).
func (s *Server) finishRunner(j *Job, sim *phasefield.Simulation, st State, err error) {
	var final []byte
	if sim != nil && st == StateDone {
		var buf bytes.Buffer
		if werr := sim.WriteCheckpoint(&buf, ckpt.Float64); werr == nil {
			final = buf.Bytes()
		}
	}
	j.mu.Lock()
	j.state = st
	j.err = err
	if sim != nil {
		j.step = sim.Step()
		j.simTime = sim.Time()
		j.solid = sim.SolidFraction()
		j.mergeApplied(sim.AppliedEvents())
	}
	j.snapshot = nil
	j.final = final
	j.mu.Unlock()
	// Spill before subscribers see the terminal sample, so a client that
	// reacts to stream close by fetching /result finds the stored copy too.
	s.spillJob(j)
	j.closeSubs()
}
