package jobd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/schedule"
)

// apiServer spins up the daemon behind an httptest server.
func apiServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// getJSON decodes GET url into out, failing on non-2xx.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// submit POSTs a spec and returns the created job's status.
func submit(t *testing.T, base string, spec any) Status {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The end-to-end service smoke CI runs under -race: submit the coldwall
// example schedule through the API, preempt it mid-run with a
// higher-priority job, let it resume, and diff the final state against an
// uninterrupted in-process run — byte-identical or bust. Also exercises
// the metrics stream, the applied-schedule endpoint, and queued-job
// cancellation.
func TestAPIPreemptResumeColdwall(t *testing.T) {
	schedJSON, err := os.ReadFile("../../examples/coldwall/schedule.json")
	if err != nil {
		t.Fatal(err)
	}
	// 400 steps gives the preemptor a wide landing window even on a
	// saturated single-core runner where one HTTP round trip can cost
	// hundreds of milliseconds; the pull-velocity ramp spans steps
	// [0,200), so an early preemption is also mid-ramp.
	spec := Spec{
		Name: "coldwall", NX: 12, NY: 12, NZ: 36, Steps: 400, Seed: 3,
		Schedule: json.RawMessage(schedJSON),
	}
	srv, ts := apiServer(t, Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 2})

	a := submit(t, ts.URL, spec)
	// Progress is polled through the in-process handle: on a saturated
	// single-core runner the HTTP path can lag the simulation by hundreds
	// of steps, and the preemptor below must land while the job is still
	// mid-run. All mutations stay on the HTTP API.
	aj, ok := srv.Get(a.ID)
	if !ok {
		t.Fatal("submitted job not registered")
	}

	// Follow the metrics stream in the background; collect samples.
	streamCtx, stopStream := context.WithCancel(context.Background())
	defer stopStream()
	samples := make(chan Sample, 256)
	go func() {
		defer close(samples)
		req, _ := http.NewRequestWithContext(streamCtx, "GET",
			ts.URL+"/jobs/"+a.ID+"/metrics", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var s Sample
			if json.Unmarshal(sc.Bytes(), &s) == nil {
				select {
				case samples <- s:
				default:
				}
			}
		}
	}()

	waitFor(t, "coldwall job to take steps", 60*time.Second, func() bool {
		return aj.Status().Step >= 4
	})

	// The preemptor: strictly higher priority, small.
	b := submit(t, ts.URL, Spec{Name: "urgent", NX: 8, NY: 8, NZ: 8, Steps: 4,
		Priority: 5, Scenario: "interface"})

	bj, _ := srv.Get(b.ID)
	waitFor(t, "urgent job to finish", 120*time.Second, func() bool {
		return bj.State() == StateDone
	})

	// While the resumed coldwall job holds the slot, exercise DELETE of a
	// queued job.
	victim := submit(t, ts.URL, Spec{NX: 8, NY: 8, NZ: 8, Steps: 5, Scenario: "interface"})
	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+victim.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE queued job: %v %v", resp, err)
	}

	waitFor(t, "coldwall job to resume and finish", 300*time.Second, func() bool {
		return aj.State() == StateDone
	})
	var final Status
	getJSON(t, ts.URL+"/jobs/"+a.ID, &final)
	if final.State != StateDone {
		t.Fatalf("HTTP status disagrees: %+v", final)
	}
	if final.Preemptions < 1 {
		t.Fatalf("coldwall job was never preempted: %+v", final)
	}
	if final.Step != spec.Steps {
		t.Fatalf("finished at step %d, want %d", final.Step, spec.Steps)
	}

	// Final state must be byte-identical to the uninterrupted run.
	resp, err := http.Get(ts.URL + "/jobs/" + a.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d %s", resp.StatusCode, got)
	}
	diffCheckpoints(t, got, uninterruptedFinal(t, spec, 2))

	// The applied-schedule endpoint returns a replayable audit log
	// containing the coldwall ramp and the fired burst.
	resp, err = http.Get(ts.URL + "/jobs/" + a.ID + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	applied, err := schedule.FromJSONBytes(blob)
	if err != nil {
		t.Fatalf("applied schedule not replayable: %v\n%s", err, blob)
	}
	var haveRamp, haveBurst bool
	for _, ev := range applied.Events {
		switch ev.(type) {
		case schedule.Ramp:
			haveRamp = true
		case schedule.NucleationBurst:
			haveBurst = true
		}
	}
	if !haveRamp || !haveBurst {
		t.Errorf("audit log missing events (ramp=%v burst=%v):\n%s", haveRamp, haveBurst, blob)
	}

	// The metrics stream must have reported progress and terminated.
	stopStream()
	n := 0
	for range samples {
		n++
	}
	if n == 0 {
		t.Error("metrics stream delivered no samples")
	}

	// List shows all three jobs.
	var list []Status
	getJSON(t, ts.URL+"/jobs", &list)
	if len(list) != 3 {
		t.Errorf("list returned %d jobs, want 3", len(list))
	}
}

func TestAPIErrors(t *testing.T) {
	_, ts := apiServer(t, Config{MaxConcurrent: 1, Budget: 1})

	// Malformed and invalid submissions.
	for _, body := range []string{
		`{not json`,
		`{"nx":8,"ny":8,"nz":8}`,         // no steps
		`{"nx":8,"ny":8,"nz":8,"wat":1}`, // unknown field
		`{"nx":-1,"ny":8,"nz":8,"steps":5}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Unknown job ids.
	for _, path := range []string{"/jobs/job-9999", "/jobs/job-9999/metrics",
		"/jobs/job-9999/schedule", "/jobs/job-9999/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Result of an unfinished job conflicts.
	st := submit(t, ts.URL, Spec{NX: 10, NY: 10, NZ: 12, Steps: 2000, Scenario: "interface"})
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("GET result of running job: status %d, want 409", resp.StatusCode)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// The spec example from the package documentation must parse.
func TestSpecDocExample(t *testing.T) {
	body := `{"nx":32,"ny":32,"nz":64,"steps":500,
	  "schedule":{"events":[{"type":"ramp","param":"v","step":0,
	  "over":200,"from":0.02,"to":0.05}]}}`
	var spec Spec
	if err := json.Unmarshal([]byte(body), &spec); err != nil {
		t.Fatal(err)
	}
	if _, err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%d", spec.Steps) != "500" {
		t.Fatal("steps lost")
	}
}

// A schedule prescribing mixed periodicity on a decomposed axis is a
// permanent input error: the job must fail on its first attempt without
// burning any of its retry budget, and the status must carry the solver's
// structured rejection so the submitter can fix the offending event.
func TestAPIScheduleErrorStructuredNoRetry(t *testing.T) {
	_, ts := apiServer(t, Config{MaxConcurrent: 1, Budget: 2})
	// Flipping only µ's x- face to a wall leaves the decomposed x axis
	// mixed-periodic — unrealizable, and not fixable by retrying.
	spec := Spec{NX: 8, NY: 8, NZ: 10, PX: 2, Steps: 50, Scenario: "interface", MaxRetries: 3,
		Schedule: json.RawMessage(`{"events": [{"type": "setbc", "step": 4, "face": "x-", "field": "mu", "kind": "neumann"}]}`)}
	st := submit(t, ts.URL, spec)
	waitFor(t, "schedule rejection", 10*time.Second, func() bool {
		var cur Status
		getJSON(t, ts.URL+"/jobs/"+st.ID, &cur)
		return cur.State.terminal()
	})
	var cur Status
	getJSON(t, ts.URL+"/jobs/"+st.ID, &cur)
	if cur.State != StateFailed {
		t.Fatalf("state %s, want failed", cur.State)
	}
	if cur.Retries != 0 {
		t.Errorf("burned %d retries on a permanent schedule error", cur.Retries)
	}
	if cur.ScheduleError == nil {
		t.Fatalf("no structured schedule_error in status (error %q)", cur.Error)
	}
	if cur.ScheduleError.Face != "x-" || cur.ScheduleError.Step != 4 || cur.ScheduleError.Reason == "" {
		t.Errorf("schedule_error %+v, want face x- at step 4 with reason", cur.ScheduleError)
	}
}
