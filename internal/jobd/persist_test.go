package jobd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/jobd/store"
)

// getBytes fetches a URL and returns status + body.
func getBytes(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// The acceptance path of the campaign engine: a 12-child array (class
// "scout") sweeps vmax × seed while a production job (class "large") runs
// concurrently. The shared worker gauge must never exceed the global
// budget, the scout class never its cap; after a drain ("SIGTERM") and a
// restart over the same store, every child's /result and /schedule must be
// served from disk byte-identical to the pre-restart responses.
func TestArrayTwoClassesStoreRestart(t *testing.T) {
	storeDir := t.TempDir()
	cfg := Config{
		MaxConcurrent: 2, Budget: 4, ReportEvery: 2,
		Classes:  map[string]int{"scout": 2, "large": 3},
		StoreDir: storeDir,
	}
	s := New(cfg)
	if _, err := s.LoadStore(); err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())

	// POST /arrays: 4 vmax values × 3 seeds = 12 children.
	as := sweepArraySpec("scout", 6, []float64{0.03, 0.04, 0.05, 0.06}, []float64{1, 2, 3})
	blob, _ := json.Marshal(as)
	resp, err := http.Post(ts.URL+"/arrays", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var ast ArrayStatus
	if err := json.NewDecoder(resp.Body).Decode(&ast); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || len(ast.Children) != 12 {
		t.Fatalf("POST /arrays: %d, %d children", resp.StatusCode, len(ast.Children))
	}

	// The concurrent production job in the second class.
	prod := submit(t, ts.URL, Spec{Name: "prod", NX: 10, NY: 10, NZ: 16, Steps: 10,
		Class: "large", Scenario: "interface"})

	arr, _ := s.GetArray(ast.ID)
	waitFor(t, "array and production job to finish", 300*time.Second, func() bool {
		pj, _ := s.Get(prod.ID)
		return s.ArrayStatus(arr).State == StateDone && pj.State() == StateDone
	})

	// Budget invariants, observed by the shared gauge.
	if max := s.Gauge().Max(); max > cfg.Budget {
		t.Errorf("global gauge max %d exceeds budget %d", max, cfg.Budget)
	}
	if max := s.Gauge().Class("scout").Max(); max > cfg.Classes["scout"] {
		t.Errorf("scout gauge max %d exceeds class cap %d", max, cfg.Classes["scout"])
	}
	if s.Gauge().Class("scout").Max() == 0 || s.Gauge().Class("large").Max() == 0 {
		t.Error("class gauges recorded no workers — instrumentation broken")
	}

	// Results aggregation: every child carries its grid point and a result.
	var results ArrayResults
	getJSON(t, ts.URL+"/arrays/"+ast.ID+"/results", &results)
	if results.State != StateDone || len(results.Children) != 12 {
		t.Fatalf("results %+v", results)
	}
	for _, c := range results.Children {
		if c.ResultPath == "" {
			t.Errorf("child %s has no result", c.ID)
		}
		if len(c.Params) != 2 {
			t.Errorf("child %s params %v", c.ID, c.Params)
		}
		if c.Class != "scout" {
			t.Errorf("child %s class %q, want scout", c.ID, c.Class)
		}
	}

	// Snapshot every child's /result and /schedule bytes pre-restart.
	pre := map[string][2][]byte{}
	for _, cid := range arr.Children {
		_, res := getBytes(t, ts.URL+"/jobs/"+cid+"/result")
		_, sch := getBytes(t, ts.URL+"/jobs/"+cid+"/schedule")
		pre[cid] = [2][]byte{res, sch}
	}
	// Different grid points must produce different physics.
	if bytes.Equal(pre[arr.Children[0]][0], pre[arr.Children[11]][0]) {
		t.Error("children at opposite grid corners have identical results — substitution broken")
	}

	// SIGTERM analogue: drain, shut the API down.
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Restart over the same store directory.
	s2 := New(cfg)
	n, err := s2.LoadStore()
	if err != nil {
		t.Fatal(err)
	}
	if n < 13 { // 12 children + the production job
		t.Fatalf("store restored %d jobs, want ≥ 13", n)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Close()
	}()

	// The array record survives with full aggregation.
	var ast2 ArrayStatus
	getJSON(t, ts2.URL+"/arrays/"+ast.ID, &ast2)
	if ast2.State != StateDone || ast2.Counts[StateDone] != 12 || ast2.Missing != 0 {
		t.Fatalf("restored array status %+v", ast2)
	}

	// Every child's /result and /schedule byte-identical to pre-restart.
	for _, cid := range arr.Children {
		code, res := getBytes(t, ts2.URL+"/jobs/"+cid+"/result")
		if code != http.StatusOK {
			t.Fatalf("GET %s/result after restart: %d %s", cid, code, res)
		}
		if !bytes.Equal(res, pre[cid][0]) {
			t.Errorf("child %s /result differs across restart", cid)
		}
		code, sch := getBytes(t, ts2.URL+"/jobs/"+cid+"/schedule")
		if code != http.StatusOK {
			t.Fatalf("GET %s/schedule after restart: %d %s", cid, code, sch)
		}
		if !bytes.Equal(sch, pre[cid][1]) {
			t.Errorf("child %s /schedule differs across restart:\n%s\n%s", cid, pre[cid][1], sch)
		}
	}
}

// Cancellation reached off the runner path (queued children) spills too:
// a canceled campaign must not come back from a restart looking "done"
// with its children vanished.
func TestCanceledArraySurvivesRestart(t *testing.T) {
	storeDir := t.TempDir()
	cfg := Config{MaxConcurrent: 1, Budget: 1, ReportEvery: 1, StoreDir: storeDir}
	s := New(cfg)
	if _, err := s.LoadStore(); err != nil {
		t.Fatal(err)
	}
	// Scheduler intentionally not started: every child stays queued, so
	// the cancel takes the queued (non-runner) path for all of them.
	arr, err := s.SubmitArray(sweepArraySpec("", 6, []float64{0.03, 0.04}, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := s.CancelArray(arr.ID); !ok || st.Counts[StateCanceled] != 2 {
		t.Fatalf("cancel: ok=%v %+v", ok, st)
	}
	s.Close()

	s2 := New(cfg)
	if _, err := s2.LoadStore(); err != nil {
		t.Fatal(err)
	}
	arr2, ok := s2.GetArray(arr.ID)
	if !ok {
		t.Fatal("array record lost")
	}
	st := s2.ArrayStatus(arr2)
	if st.State != StateCanceled || st.Counts[StateCanceled] != 2 || st.Missing != 0 {
		t.Fatalf("restored canceled array reports %+v", st)
	}
	res := s2.ArrayResults(arr2)
	if res.State != StateCanceled || res.Missing != 0 {
		t.Fatalf("restored canceled array results report %+v", res)
	}
}

// A corrupted stored result is refused, never served: the store verifies
// every blob against its content address.
func TestStoreTornResultNeverServed(t *testing.T) {
	storeDir := t.TempDir()
	cfg := Config{MaxConcurrent: 1, Budget: 1, ReportEvery: 1, StoreDir: storeDir}
	s := New(cfg)
	if _, err := s.LoadStore(); err != nil {
		t.Fatal(err)
	}
	s.Start()
	j, err := s.Submit(Spec{NX: 8, NY: 8, NZ: 8, Steps: 2, Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to finish", 60*time.Second, func() bool {
		return j.State() == StateDone
	})
	s.Close()

	// Corrupt the stored result object (simulates a torn disk write).
	var m jobManifest
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Manifests(store.JobsBucket, func(id string, blob []byte) error {
		return json.Unmarshal(blob, &m)
	}); err != nil {
		t.Fatal(err)
	}
	if m.Result == "" {
		t.Fatal("finished job has no stored result")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	objPath := filepath.Join(storeDir, "objects", m.Result[:2], m.Result)
	raw, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(objPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// The restarted daemon must refuse to serve the torn blob.
	s2 := New(cfg)
	if _, err := s2.LoadStore(); err != nil {
		t.Fatal(err)
	}
	s2.Start()
	ts := httptest.NewServer(s2.Handler())
	defer func() {
		ts.Close()
		s2.Close()
	}()
	code, body := getBytes(t, ts.URL+"/jobs/"+j.ID+"/result")
	if code != http.StatusInternalServerError {
		t.Fatalf("torn result served: %d (%d bytes)", code, len(body))
	}
}

// The array id counter recovers from child-job manifests alone: the
// array's own manifest write is best-effort, and a reused id would
// overwrite the stored children of the old campaign.
func TestArrayIDRecoveredFromChildManifests(t *testing.T) {
	storeDir := t.TempDir()
	cfg := Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 1, StoreDir: storeDir}
	s := New(cfg)
	if _, err := s.LoadStore(); err != nil {
		t.Fatal(err)
	}
	s.Start()
	arr, err := s.SubmitArray(sweepArraySpec("", 4, []float64{0.03}, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "array to finish", 60*time.Second, func() bool {
		return s.ArrayStatus(arr).State == StateDone
	})
	s.Close()

	// Simulate the lost array manifest (persistArray is best-effort).
	if err := os.Remove(filepath.Join(storeDir, "arrays", arr.ID+".json")); err != nil {
		t.Fatal(err)
	}
	s2 := New(cfg)
	if _, err := s2.LoadStore(); err != nil {
		t.Fatal(err)
	}
	arr2, err := s2.SubmitArray(sweepArraySpec("", 4, []float64{0.04}, []float64{2}))
	if err != nil {
		t.Fatal(err)
	}
	if arr2.ID == arr.ID {
		t.Fatalf("array id %s reused — stored children would be overwritten", arr.ID)
	}
	// The old children's stored results are still intact.
	for _, cid := range arr.Children {
		j, ok := s2.Get(cid)
		if !ok || !s2.hasResult(j) {
			t.Fatalf("stored child %s lost after id-collision scenario", cid)
		}
	}
	s2.Close()
}

// A daemon killed between blob write and manifest write (the spill is
// blobs-first) leaves no manifest — the job is simply absent after
// restart, never half-present.
func TestStoreSpillOrderBlobsBeforeManifest(t *testing.T) {
	storeDir := t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: a blob landed, the manifest did not.
	// The killed process' directory flock dies with it.
	if _, err := st.PutBlob([]byte("orphaned result")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxConcurrent: 1, Budget: 1, StoreDir: storeDir}
	s := New(cfg)
	n, err := s.LoadStore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("orphaned blob surfaced %d jobs", n)
	}
	if len(s.List()) != 0 {
		t.Fatal("job registry not empty")
	}
}
