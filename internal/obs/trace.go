package obs

import (
	"encoding/json"
	"io"
)

// TraceWriter streams Chrome trace_event JSON ({"traceEvents": [...]}),
// the format Perfetto and chrome://tracing load directly. Cold path only:
// every event goes through encoding/json for correct string escaping.
// Events must be written from one goroutine; call Close to terminate the
// JSON document.
type TraceWriter struct {
	w   io.Writer
	n   int
	err error
}

// traceEvent is the wire form of one trace_event entry. Ts and Dur are in
// microseconds per the format; Ph is the event phase ("X" complete,
// "i" instant, "M" metadata).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTraceWriter starts a trace document on w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{w: w}
	_, t.err = io.WriteString(w, `{"traceEvents":[`)
	return t
}

// emit writes one event, comma-separated from its predecessor.
func (t *TraceWriter) emit(ev *traceEvent) {
	if t.err != nil {
		return
	}
	if t.n > 0 {
		if _, t.err = io.WriteString(t.w, ","); t.err != nil {
			return
		}
	}
	blob, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	_, t.err = t.w.Write(blob)
	t.n++
}

// Complete writes an "X" (complete) event: a span of dur microseconds
// starting at ts microseconds on (pid, tid). args may be nil.
func (t *TraceWriter) Complete(pid, tid int64, name string, ts, dur int64, args map[string]any) {
	if dur < 1 {
		dur = 1 // zero-length spans are invisible in Perfetto
	}
	t.emit(&traceEvent{Name: name, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// Instant writes an "i" (instant) event with thread scope at ts
// microseconds. args may be nil.
func (t *TraceWriter) Instant(pid, tid int64, name string, ts int64, args map[string]any) {
	t.emit(&traceEvent{Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t", Args: args})
}

// ProcessName writes the metadata event naming a pid in the trace UI.
func (t *TraceWriter) ProcessName(pid int64, name string) {
	t.emit(&traceEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}})
}

// ThreadName writes the metadata event naming a (pid, tid) track.
func (t *TraceWriter) ThreadName(pid, tid int64, name string) {
	t.emit(&traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
}

// Close terminates the JSON document and returns the first error
// encountered while writing.
func (t *TraceWriter) Close() error {
	if t.err == nil {
		_, t.err = io.WriteString(t.w, "]}")
	}
	return t.err
}
