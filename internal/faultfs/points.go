package faultfs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Injected is the panic value delivered by an armed Point. Recovery code
// type-asserts on it to distinguish injected faults from real bugs.
type Injected struct {
	// Point is the name of the crash point that fired.
	Point string
	// Hit is the 1-based count of hits on that point when it fired.
	Hit int
}

// Error implements the error interface so a recovered Injected prints
// usefully when wrapped into a job failure.
func (p Injected) Error() string {
	return fmt.Sprintf("faultfs: injected panic at point %q (hit %d)", p.Point, p.Hit)
}

// Points is a registry of named in-process panic points. Production code
// calls Hit(name) at each point; a nil *Points (and any unarmed point) is
// a no-op, so the hooks cost nothing when fault injection is off.
type Points struct {
	mu    sync.Mutex
	armed map[string]*pointState
}

type pointState struct {
	after int          // hits to let pass before firing
	times int          // how many firings remain (<=0 after exhaustion)
	hits  atomic.Int64 // total hits observed
}

// NewPoints returns an empty registry with no armed points.
func NewPoints() *Points { return &Points{armed: map[string]*pointState{}} }

// Arm makes the named point panic on its next `times` hits after skipping
// the first `after` hits. Re-arming a point replaces its prior schedule.
func (p *Points) Arm(name string, after, times int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed[name] = &pointState{after: after, times: times}
}

// Disarm removes any schedule for the named point.
func (p *Points) Disarm(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.armed, name)
}

// Hits returns how many times the named point has been reached (armed
// hits only; unarmed points are never counted).
func (p *Points) Hits(name string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.armed[name]
	if st == nil {
		return 0
	}
	return int(st.hits.Load())
}

// Hit marks one pass through the named point, panicking with an Injected
// value if the point's schedule says so. Safe on a nil receiver.
func (p *Points) Hit(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	st := p.armed[name]
	if st == nil {
		p.mu.Unlock()
		return
	}
	n := int(st.hits.Add(1))
	fire := n > st.after && st.times > 0
	if fire {
		st.times--
	}
	p.mu.Unlock()
	if fire {
		panic(Injected{Point: name, Hit: n})
	}
}
