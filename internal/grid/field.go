// Package grid provides the block-structured grid substrate underlying the
// solver, modeled after the waLBerla framework the paper builds on: the
// simulation domain is partitioned into equally sized blocks, each holding a
// regular grid extended by ghost layers for communication, with per-face
// boundary conditions and support for both array-of-structures (AoS) and
// structure-of-arrays (SoA) memory layouts.
//
// The paper's data layout discussion (§5.1.1) is reproduced faithfully: the
// µ-kernel prefers SoA (it processes four cells at a time), the cellwise
// φ-kernel prefers AoS (it loads the four phase values of one cell as one
// SIMD vector); the production choice is SoA for the φ-field because the
// µ-kernel touches 38 φ cells versus the φ-kernel's 7.
package grid

import (
	"fmt"
	"math"
)

// Layout selects the memory layout of a multi-component Field.
type Layout int

const (
	// AoS stores the components of one cell contiguously
	// (cell-major). A SIMD vector can load all components of a cell
	// directly from contiguous memory.
	AoS Layout = iota
	// SoA stores each component as its own contiguous sub-array
	// (component-major). A SIMD vector can load one component of four
	// consecutive cells directly.
	SoA
)

func (l Layout) String() string {
	switch l {
	case AoS:
		return "AoS"
	case SoA:
		return "SoA"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Field is a regular grid of NComp-component double-precision cells with a
// ghost layer of width G on every side. Interior cells are addressed with
// x ∈ [0,NX), y ∈ [0,NY), z ∈ [0,NZ); ghost cells with coordinates in
// [-G, N+G).
type Field struct {
	NX, NY, NZ int // interior extents
	NComp      int // components per cell
	G          int // ghost layer width
	Lay        Layout

	sx, sy, sz int // allocated extents including ghosts
	cellStride int // component stride for SoA (= sx*sy*sz)
	Data       []float64
}

// NewField allocates a zero-initialized field.
func NewField(nx, ny, nz, ncomp, ghost int, lay Layout) *Field {
	if nx <= 0 || ny <= 0 || nz <= 0 || ncomp <= 0 || ghost < 0 {
		panic(fmt.Sprintf("grid: invalid field extents %dx%dx%d comp=%d ghost=%d", nx, ny, nz, ncomp, ghost))
	}
	f := &Field{
		NX: nx, NY: ny, NZ: nz,
		NComp: ncomp, G: ghost, Lay: lay,
		sx: nx + 2*ghost, sy: ny + 2*ghost, sz: nz + 2*ghost,
	}
	f.cellStride = f.sx * f.sy * f.sz
	f.Data = make([]float64, f.cellStride*ncomp)
	return f
}

// Clone returns a deep copy of f.
func (f *Field) Clone() *Field {
	c := *f
	c.Data = make([]float64, len(f.Data))
	copy(c.Data, f.Data)
	return &c
}

// CopyFrom copies all data (including ghosts) from src, which must have
// identical shape and layout.
func (f *Field) CopyFrom(src *Field) {
	if f.NX != src.NX || f.NY != src.NY || f.NZ != src.NZ || f.NComp != src.NComp || f.G != src.G || f.Lay != src.Lay {
		panic("grid: CopyFrom shape/layout mismatch")
	}
	copy(f.Data, src.Data)
}

// Idx returns the flat index of component c at cell (x,y,z). Coordinates may
// lie in the ghost region.
func (f *Field) Idx(c, x, y, z int) int {
	ix := x + f.G
	iy := y + f.G
	iz := z + f.G
	cell := (iz*f.sy+iy)*f.sx + ix
	if f.Lay == SoA {
		return c*f.cellStride + cell
	}
	return cell*f.NComp + c
}

// At returns component c at cell (x,y,z).
func (f *Field) At(c, x, y, z int) float64 { return f.Data[f.Idx(c, x, y, z)] }

// Set stores v in component c at cell (x,y,z).
func (f *Field) Set(c, x, y, z int, v float64) { f.Data[f.Idx(c, x, y, z)] = v }

// Add adds v to component c at cell (x,y,z).
func (f *Field) Add(c, x, y, z int, v float64) { f.Data[f.Idx(c, x, y, z)] += v }

// Cell reads all components at (x,y,z) into dst (len >= NComp).
func (f *Field) Cell(x, y, z int, dst []float64) {
	for c := 0; c < f.NComp; c++ {
		dst[c] = f.Data[f.Idx(c, x, y, z)]
	}
}

// SetCell writes all components at (x,y,z) from src (len >= NComp).
func (f *Field) SetCell(x, y, z int, src []float64) {
	for c := 0; c < f.NComp; c++ {
		f.Data[f.Idx(c, x, y, z)] = src[c]
	}
}

// Fill sets every cell (including ghosts) of every component to v.
func (f *Field) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// FillComp sets every cell (including ghosts) of component c to v.
func (f *Field) FillComp(c int, v float64) {
	if f.Lay == SoA {
		base := c * f.cellStride
		for i := 0; i < f.cellStride; i++ {
			f.Data[base+i] = v
		}
		return
	}
	for i := c; i < len(f.Data); i += f.NComp {
		f.Data[i] = v
	}
}

// Swap exchanges the storage of f and g, which must have identical shape.
// This implements the source/destination field swap at the end of each
// timestep (Algorithm 1, line 7).
func (f *Field) Swap(g *Field) {
	if f.NX != g.NX || f.NY != g.NY || f.NZ != g.NZ || f.NComp != g.NComp || f.G != g.G || f.Lay != g.Lay {
		panic("grid: Swap shape/layout mismatch")
	}
	f.Data, g.Data = g.Data, f.Data
}

// Interior iterates over all interior cells in z-outermost order (the loop
// order the paper chooses so temperature-dependent terms can be precomputed
// per z-slice) and calls fn for each.
func (f *Field) Interior(fn func(x, y, z int)) {
	f.InteriorRange(0, f.NZ, fn)
}

// InteriorRange iterates over the interior cells of the z-slab [z0,z1) in
// z-outermost order — the slab unit of the parallel sweep engine, so
// per-slab initialization and analysis can share the kernels' partitioning.
// Bounds are clamped to [0,NZ).
func (f *Field) InteriorRange(z0, z1 int, fn func(x, y, z int)) {
	if z0 < 0 {
		z0 = 0
	}
	if z1 > f.NZ {
		z1 = f.NZ
	}
	for z := z0; z < z1; z++ {
		for y := 0; y < f.NY; y++ {
			for x := 0; x < f.NX; x++ {
				fn(x, y, z)
			}
		}
	}
}

// InteriorEqual reports whether the interior regions of f and g agree within
// absolute tolerance tol in every component, and returns the max difference.
func (f *Field) InteriorEqual(g *Field, tol float64) (bool, float64) {
	if f.NX != g.NX || f.NY != g.NY || f.NZ != g.NZ || f.NComp != g.NComp {
		return false, math.Inf(1)
	}
	maxd := 0.0
	for z := 0; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			for x := 0; x < f.NX; x++ {
				for c := 0; c < f.NComp; c++ {
					d := math.Abs(f.At(c, x, y, z) - g.At(c, x, y, z))
					if d > maxd {
						maxd = d
					}
				}
			}
		}
	}
	return maxd <= tol, maxd
}

// NumInterior returns the number of interior cells.
func (f *Field) NumInterior() int { return f.NX * f.NY * f.NZ }

// HasNaN reports whether any interior value is NaN or Inf.
func (f *Field) HasNaN() bool {
	bad := false
	f.Interior(func(x, y, z int) {
		for c := 0; c < f.NComp; c++ {
			v := f.At(c, x, y, z)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				bad = true
			}
		}
	})
	return bad
}

// ShiftZDown shifts the interior contents down by `cells` in z: interior
// slice z takes the former contents of z+cells; the topmost `cells` slices
// are filled per component from fillVals. This implements the moving-window
// advance. Ghost layers are left untouched (they are refreshed by the next
// communication + boundary handling).
//
// Rows are moved with contiguous copy: in SoA layout an interior x-row of
// one component is contiguous, in AoS an x-row of all components is. copy's
// memmove semantics make the overlapping downward shift safe.
func (f *Field) ShiftZDown(cells int, fillVals []float64) {
	if cells <= 0 {
		return
	}
	if cells > f.NZ {
		cells = f.NZ
	}
	if f.Lay == SoA {
		for c := 0; c < f.NComp; c++ {
			for z := 0; z < f.NZ-cells; z++ {
				for y := 0; y < f.NY; y++ {
					dst := f.Idx(c, 0, y, z)
					src := f.Idx(c, 0, y, z+cells)
					copy(f.Data[dst:dst+f.NX], f.Data[src:src+f.NX])
				}
			}
			v := fillVals[c]
			for z := f.NZ - cells; z < f.NZ; z++ {
				for y := 0; y < f.NY; y++ {
					row := f.Data[f.Idx(c, 0, y, z):]
					for x := 0; x < f.NX; x++ {
						row[x] = v
					}
				}
			}
		}
		return
	}
	rowLen := f.NX * f.NComp
	for z := 0; z < f.NZ-cells; z++ {
		for y := 0; y < f.NY; y++ {
			dst := f.Idx(0, 0, y, z)
			src := f.Idx(0, 0, y, z+cells)
			copy(f.Data[dst:dst+rowLen], f.Data[src:src+rowLen])
		}
	}
	for z := f.NZ - cells; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			row := f.Data[f.Idx(0, 0, y, z):]
			for x := 0; x < f.NX; x++ {
				copy(row[x*f.NComp:(x+1)*f.NComp], fillVals)
			}
		}
	}
}
