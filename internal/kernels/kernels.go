package kernels

// kernels.go is the public dispatch surface: one entry point per kernel,
// selecting the optimization-ladder variant, plus the Fig. 5 vectorization
// strategies and the Algorithm-2 split sweeps. Every kernel also has a
// *Range form restricted to the z-slab [z0,z1), the unit of intra-block
// parallelism: disjoint slabs write disjoint destination slices, so multiple
// workers (each with its own Scratch) may sweep one block concurrently. At a
// slab's first slice the staggered z-buffers are invalid, so the stag and
// shortcut variants recompute that slice's low z-face fluxes instead of
// reusing a neighbor worker's buffer — bitwise identical to the serial sweep
// because the buffered value is exactly the recomputed one.

// clampRange clips [z0,z1) to the block's interior [0,nz).
func clampRange(nz, z0, z1 int) (int, int) {
	if z0 < 0 {
		z0 = 0
	}
	if z1 > nz {
		z1 = nz
	}
	return z0, z1
}

// PhiSweep updates f.PhiDst from f.PhiSrc/f.MuSrc with the selected variant.
func PhiSweep(ctx *Ctx, f *Fields, sc *Scratch, v Variant) {
	PhiSweepRange(ctx, f, sc, v, 0, f.PhiSrc.NZ)
}

// PhiSweepRange is PhiSweep restricted to the z-slab [z0,z1).
func PhiSweepRange(ctx *Ctx, f *Fields, sc *Scratch, v Variant, z0, z1 int) {
	z0, z1 = clampRange(f.PhiSrc.NZ, z0, z1)
	if z0 >= z1 {
		return
	}
	switch v {
	case VarGeneral:
		phiSweepGeneral(ctx, f, z0, z1)
	case VarBasic:
		phiSweepScalar(ctx, f, sc, phiOpts{}, z0, z1)
	case VarSIMD:
		phiSweepVec(ctx, f, sc, phiOpts{}, z0, z1)
	case VarTz:
		phiSweepVec(ctx, f, sc, phiOpts{tz: true}, z0, z1)
	case VarStag:
		phiSweepVec(ctx, f, sc, phiOpts{tz: true, stag: true}, z0, z1)
	default: // VarShortcut
		phiSweepVec(ctx, f, sc, phiOpts{tz: true, stag: true, shortcut: true}, z0, z1)
	}
}

// PhiSweepStrategy updates the φ-field with one of the Fig. 5 vectorization
// strategies, all at the full remaining optimization level.
func PhiSweepStrategy(ctx *Ctx, f *Fields, sc *Scratch, s PhiStrategy) {
	PhiSweepStrategyRange(ctx, f, sc, s, 0, f.PhiSrc.NZ)
}

// PhiSweepStrategyRange is PhiSweepStrategy restricted to the z-slab [z0,z1).
func PhiSweepStrategyRange(ctx *Ctx, f *Fields, sc *Scratch, s PhiStrategy, z0, z1 int) {
	z0, z1 = clampRange(f.PhiSrc.NZ, z0, z1)
	if z0 >= z1 {
		return
	}
	switch s {
	case StratCellwise:
		phiSweepVec(ctx, f, sc, phiOpts{tz: true, stag: true}, z0, z1)
	case StratCellwiseShortcut:
		phiSweepVec(ctx, f, sc, phiOpts{tz: true, stag: true, shortcut: true}, z0, z1)
	default: // StratFourCell
		phiSweepFourCell(ctx, f, sc, true, z0, z1)
	}
}

// MuSweep updates f.MuDst (the fused Algorithm-1 µ-kernel, including the
// anti-trapping current) with the selected variant.
func MuSweep(ctx *Ctx, f *Fields, sc *Scratch, v Variant) {
	MuSweepRange(ctx, f, sc, v, 0, f.MuSrc.NZ)
}

// MuSweepRange is MuSweep restricted to the z-slab [z0,z1).
func MuSweepRange(ctx *Ctx, f *Fields, sc *Scratch, v Variant, z0, z1 int) {
	z0, z1 = clampRange(f.MuSrc.NZ, z0, z1)
	if z0 >= z1 {
		return
	}
	switch v {
	case VarGeneral:
		muSweepGeneral(ctx, f, z0, z1)
	case VarBasic:
		muSweepScalar(ctx, f, sc, muOpts{withJat: true}, z0, z1)
	case VarSIMD:
		muSweepFourCell(ctx, f, sc, muOpts{withJat: true, simdCSE: true}, z0, z1)
	case VarTz:
		muSweepFourCell(ctx, f, sc, muOpts{withJat: true, simdCSE: true, tz: true}, z0, z1)
	case VarStag:
		muSweepFourCell(ctx, f, sc, muOpts{withJat: true, simdCSE: true, tz: true, stag: true}, z0, z1)
	default: // VarShortcut
		muSweepFourCell(ctx, f, sc, muOpts{withJat: true, simdCSE: true, tz: true, stag: true, shortcut: true}, z0, z1)
	}
}

// MuSweepLocal computes the µ update without the anti-trapping current
// (Algorithm 2, line 6): it depends on φ(t+Δt) only locally, so the φ ghost
// exchange can overlap it.
func MuSweepLocal(ctx *Ctx, f *Fields, sc *Scratch, v Variant) {
	MuSweepLocalRange(ctx, f, sc, v, 0, f.MuSrc.NZ)
}

// MuSweepLocalRange is MuSweepLocal restricted to the z-slab [z0,z1).
func MuSweepLocalRange(ctx *Ctx, f *Fields, sc *Scratch, v Variant, z0, z1 int) {
	z0, z1 = clampRange(f.MuSrc.NZ, z0, z1)
	if z0 >= z1 {
		return
	}
	o := muOpts{withJat: false, simdCSE: v >= VarSIMD, tz: v >= VarTz, stag: v >= VarStag, shortcut: v >= VarShortcut}
	if v >= VarSIMD {
		muSweepFourCell(ctx, f, sc, o, z0, z1)
		return
	}
	muSweepScalar(ctx, f, sc, o, z0, z1)
}

// MuSweepNeighbor adds the −∇·J_at correction to f.MuDst (Algorithm 2,
// line 8); it requires the φ(t+Δt) ghost layers.
func MuSweepNeighbor(ctx *Ctx, f *Fields, sc *Scratch, v Variant) {
	MuSweepNeighborRange(ctx, f, sc, v, 0, f.MuSrc.NZ)
}

// MuSweepNeighborRange is MuSweepNeighbor restricted to the z-slab [z0,z1).
func MuSweepNeighborRange(ctx *Ctx, f *Fields, sc *Scratch, v Variant, z0, z1 int) {
	z0, z1 = clampRange(f.MuSrc.NZ, z0, z1)
	if z0 >= z1 {
		return
	}
	o := muOpts{jatOnly: true, simdCSE: v >= VarSIMD, tz: v >= VarTz, stag: v >= VarStag, shortcut: v >= VarShortcut}
	muSweepScalar(ctx, f, sc, o, z0, z1)
}
