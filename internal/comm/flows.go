package comm

import (
	"sort"

	"repro/internal/grid"
	"repro/internal/obs"
)

// FlowCounters counts traffic on one directed halo stream: frames sent,
// payload bytes moved and sleep tokens among those frames. The World keeps
// one per (rank, tag, face); accumulation happens in a stack-local array
// during the staged exchange and is folded under the rank's stats mutex
// once per exchange, so the hot path stays allocation-free.
type FlowCounters struct {
	// Frames is the number of messages sent (including sleep tokens).
	Frames int64
	// Bytes is the payload volume sent, 8 bytes per float64; sleep tokens
	// contribute zero.
	Bytes int64
	// Sleeps is how many of the frames were zero-length sleep tokens.
	Sleeps int64
}

func (c *FlowCounters) add(other FlowCounters) {
	c.Frames += other.Frames
	c.Bytes += other.Bytes
	c.Sleeps += other.Sleeps
}

// PeerFlow is the per-(sender, receiver, tag) aggregation of FlowCounters
// that PeerFlows exports: the send-side view of one directed halo stream.
type PeerFlow struct {
	// Rank is the sending rank (local to this process); Peer is the
	// receiving rank, which may live on another process.
	Rank int
	Peer int
	// Tag is the message stream the flow belongs to.
	Tag Tag
	// FlowCounters holds the accumulated frame, byte and sleep counts.
	FlowCounters
}

// PeerFlows aggregates the per-face flow counters of this process' local
// ranks by (rank, peer, tag) under the live topology and returns them
// sorted by rank, then peer, then tag. Cold path: the job daemon calls it
// per metrics scrape.
func (w *World) PeerFlows() []PeerFlow {
	type key struct {
		rank, peer int
		tag        Tag
	}
	agg := make(map[key]FlowCounters)
	for _, r := range w.local {
		w.mu[r].Lock()
		for t := 0; t < int(numTags); t++ {
			for face := grid.Face(0); face < grid.NumFaces; face++ {
				fc := w.flows[r][t][face]
				if fc.Frames == 0 {
					continue
				}
				peer, ok := w.topo.Neighbor(r, face)
				if !ok || peer == r {
					continue
				}
				k := key{rank: r, peer: peer, tag: Tag(t)}
				cur := agg[k]
				cur.add(fc)
				agg[k] = cur
			}
		}
		w.mu[r].Unlock()
	}
	out := make([]PeerFlow, 0, len(agg))
	for k, fc := range agg {
		out = append(out, PeerFlow{Rank: k.rank, Peer: k.peer, Tag: k.tag, FlowCounters: fc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// ExchangeLatency returns the whole-exchange wall-time histogram for one
// tag, merged over this process' local ranks. Each sample is one staged
// six-face ExchangeGhosts call, blocking or overlapped.
func (w *World) ExchangeLatency(tag Tag) obs.HistogramSnapshot {
	var s obs.HistogramSnapshot
	for _, r := range w.local {
		s.Merge(w.latency[r][tag].Snapshot())
	}
	return s
}

// NetCounters is the optional transport interface exposing network-fault
// accounting. The TCP transport implements it; the in-process fabric does
// not (it cannot lose a connection).
type NetCounters interface {
	// Reconnects returns how many broken per-(peer, tag) streams have been
	// re-established.
	Reconnects() int64
	// ReplayedFrames returns how many frames were retransmitted from the
	// replay ring during reconnect handshakes.
	ReplayedFrames() int64
}

// NetStats reports the transport's reconnect and frame-replay counters.
// ok is false when the transport keeps no such accounting (the in-process
// fabric).
func (w *World) NetStats() (reconnects, replayed int64, ok bool) {
	nc, isNet := w.tr.(NetCounters)
	if !isNet {
		return 0, 0, false
	}
	return nc.Reconnects(), nc.ReplayedFrames(), true
}
