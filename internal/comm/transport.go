package comm

import (
	"sync/atomic"

	"repro/internal/grid"
)

// Transport moves tagged per-face halo frames between ranks and provides
// the process-level collectives. The World keeps everything above it —
// staged pack/unpack, quiet-face sleep tokens, persistent comm workers,
// statistics — so both implementations share the exchange protocol and its
// accounting by construction.
//
// Two implementations exist: the in-process channel fabric (NewWorld's
// default, every rank in one OS process) and the TCP transport
// (NewTCPTransport, the rank grid spans processes and machines).
//
// Face conventions: Send, Recv and Release name the ARRIVAL face — the side
// of the receiving rank's block the message fills. TakeBuf names the
// sender's own SEND face (the arrival face's opposite). Buffer ownership
// passes with the frame: TakeBuf → pack → Send hands the buffer to the
// transport; Recv hands it to the receiver, which returns it through
// Release after unpacking, so steady-state exchanges allocate nothing.
//
// Hot-path methods return no errors: the in-process fabric cannot fail, and
// the TCP transport retries transient faults internally, panicking with a
// *TransportError only when a peer stays unreachable past its retry window.
type Transport interface {
	// Proc returns this process' index; NumProcs the total process count.
	Proc() int
	// NumProcs returns how many processes share the rank grid.
	NumProcs() int
	// Owner returns the process index owning a global rank.
	Owner(rank int) int

	// TakeBuf fetches rank `from`'s persistent pack buffer for its
	// (sendFace, tag) stream, n floats long.
	TakeBuf(from int, sendFace grid.Face, tag Tag, n int) []float64
	// Send delivers buf from rank `from` to rank `to`, arriving at face
	// `face` of to's block. Zero-length buf is the sleep token.
	Send(from, to int, face grid.Face, tag Tag, buf []float64)
	// Recv blocks until the message arriving at (to, face, tag) is
	// available and returns its payload.
	Recv(to int, face grid.Face, tag Tag) []float64
	// Release returns a received buffer to the pool of its sender's
	// (face.Opposite(), tag) stream after unpacking.
	Release(from, to int, face grid.Face, tag Tag, buf []float64)
	// Allocs reports how many pack buffers were freshly allocated (the
	// allocation-guard tests assert it stays flat in steady state).
	Allocs() int64

	// Barrier blocks until every process has entered it.
	Barrier()
	// Sum adds vals elementwise across processes; every process receives
	// the result. Callers preserve bitwise determinism by giving each
	// vector slot exactly one nonzero contributor.
	Sum(vals []float64)
	// Max computes the elementwise maximum across processes.
	Max(vals []float64)
	// Gather collects per-rank payloads on process 0: each process fills
	// parts[r] for its local ranks; the root returns the complete slice,
	// everyone else nil.
	Gather(parts [][]float64) [][]float64

	// Close releases transport resources. The in-process transport is a
	// no-op (blocking exchanges keep working after World.Close); the TCP
	// transport closes its connections.
	Close() error
}

// localTransport is the in-process channel fabric: the default fast path,
// mailbox and free-list channels shared by every rank in one process. It is
// also embedded by the TCP transport, whose demultiplexer feeds remote
// frames into the same mailboxes — the pool key (sender, sendFace, tag)
// identifies a stream whichever side of a socket it lives on.
type localTransport struct {
	nRanks int

	// mailboxes[to][face][tag] carries messages arriving at rank `to`
	// whose ghost region is on side `face` of `to`'s block.
	mailboxes [][]chan []float64

	// freeBufs[from][face][tag] recycles pack buffers back to their
	// sending rank: after unpacking, the receiver returns the buffer to
	// the sender's free list for that (face, tag) stream, so the steady
	// state circulates a fixed set of buffers and packs allocate nothing.
	freeBufs [][]chan []float64

	// packAllocs counts fresh pack-buffer allocations (warm-up only in
	// steady state; the allocation-guard tests assert it stays flat).
	packAllocs atomic.Int64
}

// newLocalTransport builds the channel fabric for n ranks.
func newLocalTransport(n int) *localTransport {
	lt := &localTransport{
		nRanks:    n,
		mailboxes: make([][]chan []float64, n),
		freeBufs:  make([][]chan []float64, n),
	}
	for r := 0; r < n; r++ {
		lt.mailboxes[r] = make([]chan []float64, int(grid.NumFaces)*int(numTags))
		lt.freeBufs[r] = make([]chan []float64, int(grid.NumFaces)*int(numTags))
		for i := range lt.mailboxes[r] {
			// Capacity 2 tolerates one full timestep of skew
			// between neighbors.
			lt.mailboxes[r][i] = make(chan []float64, 2)
			// One extra free slot so a buffer returned while the
			// mailbox is full is never dropped.
			lt.freeBufs[r][i] = make(chan []float64, 3)
		}
	}
	return lt
}

func (lt *localTransport) Proc() int       { return 0 }
func (lt *localTransport) NumProcs() int   { return 1 }
func (lt *localTransport) Owner(r int) int { return 0 }
func (lt *localTransport) Allocs() int64   { return lt.packAllocs.Load() }

func (lt *localTransport) box(to int, face grid.Face, tag Tag) chan []float64 {
	return lt.mailboxes[to][int(face)*int(numTags)+int(tag)]
}

// takeBuf fetches rank's persistent pack buffer for the (face, tag) send
// stream, allocating only when the free list is empty (first steps) or the
// requested size grew (window/geometry change).
func (lt *localTransport) TakeBuf(from int, sendFace grid.Face, tag Tag, n int) []float64 {
	free := lt.freeBufs[from][int(sendFace)*int(numTags)+int(tag)]
	select {
	case b := <-free:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	lt.packAllocs.Add(1)
	return make([]float64, n)
}

func (lt *localTransport) Send(from, to int, face grid.Face, tag Tag, buf []float64) {
	lt.box(to, face, tag) <- buf
}

func (lt *localTransport) Recv(to int, face grid.Face, tag Tag) []float64 {
	return <-lt.box(to, face, tag)
}

// Release returns a consumed message buffer to its sender's free list. A
// full free list (impossible in the steady protocol, but cheap to tolerate)
// drops the buffer to the garbage collector.
func (lt *localTransport) Release(from, to int, face grid.Face, tag Tag, buf []float64) {
	free := lt.freeBufs[from][int(face.Opposite())*int(numTags)+int(tag)]
	select {
	case free <- buf:
	default:
	}
}

// Single-process collectives are identities: the World's local reduction
// already covers every rank.
func (lt *localTransport) Barrier()                             {}
func (lt *localTransport) Sum(vals []float64)                   {}
func (lt *localTransport) Max(vals []float64)                   {}
func (lt *localTransport) Gather(parts [][]float64) [][]float64 { return parts }

// Close is a no-op: blocking exchanges must keep working after World.Close
// (the job daemon cancels jobs whose final synchronization still runs).
func (lt *localTransport) Close() error { return nil }
