package kernels

import (
	"repro/internal/grid"
)

// Small stencil-access helpers shared by all kernel variants.

func loadPhi(f *grid.Field, x, y, z int, out *[NP]float64) {
	for a := 0; a < NP; a++ {
		out[a] = f.At(a, x, y, z)
	}
}

func loadMu(f *grid.Field, x, y, z int, out *[NR]float64) {
	for k := 0; k < NR; k++ {
		out[k] = f.At(k, x, y, z)
	}
}

func storePhi(f *grid.Field, x, y, z int, v *[NP]float64) {
	for a := 0; a < NP; a++ {
		f.Set(a, x, y, z, v[a])
	}
}

func storeMu(f *grid.Field, x, y, z int, v *[NR]float64) {
	for k := 0; k < NR; k++ {
		f.Set(k, x, y, z, v[k])
	}
}

// axisOffsets returns the unit offset of the given axis.
func axisOffsets(axis int) (dx, dy, dz int) {
	switch axis {
	case 0:
		return 1, 0, 0
	case 1:
		return 0, 1, 0
	default:
		return 0, 0, 1
	}
}

// transverseAxes returns the two axes perpendicular to axis.
func transverseAxes(axis int) (t1, t2 int) {
	switch axis {
	case 0:
		return 1, 2
	case 1:
		return 0, 2
	default:
		return 0, 1
	}
}

// centralGradPhi computes the central-difference gradient of every phase at
// (x,y,z): out[a][d] = (φ_{+d} − φ_{−d}) / (2dx).
func centralGradPhi(f *grid.Field, x, y, z int, halfInvDx float64, out *[NP][3]float64) {
	for a := 0; a < NP; a++ {
		out[a][0] = (f.At(a, x+1, y, z) - f.At(a, x-1, y, z)) * halfInvDx
		out[a][1] = (f.At(a, x, y+1, z) - f.At(a, x, y-1, z)) * halfInvDx
		out[a][2] = (f.At(a, x, y, z+1) - f.At(a, x, y, z-1)) * halfInvDx
	}
}

// faceGradPhi computes the full gradient of every phase at the staggered
// face between cell (x,y,z) and its +axis neighbor: the normal component is
// the direct difference, the transverse components average the central
// differences of the two adjacent cells, touching the planar diagonal
// neighbors that make the µ-kernel a D3C19 stencil.
func faceGradPhi(f *grid.Field, x, y, z, axis int, invDx float64, out *[NP][3]float64) {
	ox, oy, oz := axisOffsets(axis)
	q := 0.25 * invDx
	for a := 0; a < NP; a++ {
		out[a][axis] = (f.At(a, x+ox, y+oy, z+oz) - f.At(a, x, y, z)) * invDx
		t1, t2 := transverseAxes(axis)
		for _, t := range [2]int{t1, t2} {
			tx, ty, tz := axisOffsets(t)
			out[a][t] = (f.At(a, x+tx, y+ty, z+tz) + f.At(a, x+ox+tx, y+oy+ty, z+oz+tz) -
				f.At(a, x-tx, y-ty, z-tz) - f.At(a, x+ox-tx, y+oy-ty, z+oz-tz)) * q
		}
	}
}

// faceGradPhiOne computes the full staggered-face gradient of a single
// phase (the lazy per-phase path of the CSE-optimized µ-kernel: most faces
// only carry one solid plus liquid, so computing all four gradients up
// front wastes two thirds of the loads).
func faceGradPhiOne(f *grid.Field, x, y, z, axis, a int, invDx float64, out *[3]float64) {
	ox, oy, oz := axisOffsets(axis)
	q := 0.25 * invDx
	out[axis] = (f.At(a, x+ox, y+oy, z+oz) - f.At(a, x, y, z)) * invDx
	t1, t2 := transverseAxes(axis)
	for _, t := range [2]int{t1, t2} {
		tx, ty, tz := axisOffsets(t)
		out[t] = (f.At(a, x+tx, y+ty, z+tz) + f.At(a, x+ox+tx, y+oy+ty, z+oz+tz) -
			f.At(a, x-tx, y-ty, z-tz) - f.At(a, x+ox-tx, y+oy-ty, z+oz-tz)) * q
	}
}

// isBulkCell reports whether cell (x,y,z) of the φ field is a bulk cell in
// the sense of the shortcut optimization: a simplex vertex whose six face
// neighbors all equal it, so both ∂φ/∂t and all staggered fluxes vanish.
func isBulkCell(f *grid.Field, x, y, z int) bool {
	vertex := -1
	for a := 0; a < NP; a++ {
		v := f.At(a, x, y, z)
		if v == 1 {
			vertex = a
		} else if v != 0 {
			return false
		}
	}
	if vertex < 0 {
		return false
	}
	for a := 0; a < NP; a++ {
		c := f.At(a, x, y, z)
		if f.At(a, x+1, y, z) != c || f.At(a, x-1, y, z) != c ||
			f.At(a, x, y+1, z) != c || f.At(a, x, y-1, z) != c ||
			f.At(a, x, y, z+1) != c || f.At(a, x, y, z-1) != c {
			return false
		}
	}
	return true
}

// regionHasLiquid reports whether the cell or any face neighbor carries
// liquid phase; if not, every staggered face has φ_ℓ = 0 and the
// anti-trapping current vanishes identically (the µ-kernel solid shortcut).
func regionHasLiquid(f *grid.Field, x, y, z int) bool {
	if f.At(LQ, x, y, z) != 0 {
		return true
	}
	return f.At(LQ, x+1, y, z) != 0 || f.At(LQ, x-1, y, z) != 0 ||
		f.At(LQ, x, y+1, z) != 0 || f.At(LQ, x, y-1, z) != 0 ||
		f.At(LQ, x, y, z+1) != 0 || f.At(LQ, x, y, z-1) != 0
}
