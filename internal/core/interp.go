package core

// The interpolation functions distribute thermodynamic bulk quantities
// across the diffuse interface. Following Moelans' thermodynamically
// consistent construction (paper ref. [23]) we use
//
//	h_α(φ) = w(φ_α) / Σ_β w(φ_β),  w(u) = u²(3−2u)
//
// which forms a partition of unity for φ on the Gibbs simplex and has
// vanishing slope in every bulk state, so the driving force never shifts
// bulk regions.

// wInterp is the unnormalized smoothstep weight.
func wInterp(u float64) float64 { return u * u * (3 - 2*u) }

// wInterpD is d/du of wInterp.
func wInterpD(u float64) float64 { return 6 * u * (1 - u) }

// Interp evaluates the normalized interpolation weights h_α(φ) into h.
// If all weights vanish (possible only off-simplex) it falls back to φ
// itself.
func Interp(phi *[NPhases]float64, h *[NPhases]float64) {
	sum := 0.0
	for a := 0; a < NPhases; a++ {
		h[a] = wInterp(phi[a])
		sum += h[a]
	}
	if sum <= 0 {
		*h = *phi
		return
	}
	inv := 1 / sum
	for a := 0; a < NPhases; a++ {
		h[a] *= inv
	}
}

// InterpDeriv computes the Jacobian dH[b][a] = ∂h_β/∂φ_α of the normalized
// interpolation at φ. Writing S = Σ w(φ_γ),
//
//	∂h_β/∂φ_α = [δ_{αβ} w'(φ_α) S − w(φ_β) w'(φ_α)] / S²
//	          = w'(φ_α) (δ_{αβ} − h_β) / S.
func InterpDeriv(phi *[NPhases]float64, dH *[NPhases][NPhases]float64) {
	var w [NPhases]float64
	sum := 0.0
	for a := 0; a < NPhases; a++ {
		w[a] = wInterp(phi[a])
		sum += w[a]
	}
	if sum <= 0 {
		for b := 0; b < NPhases; b++ {
			for a := 0; a < NPhases; a++ {
				if a == b {
					dH[b][a] = 1
				} else {
					dH[b][a] = 0
				}
			}
		}
		return
	}
	invS := 1 / sum
	var h [NPhases]float64
	for a := 0; a < NPhases; a++ {
		h[a] = w[a] * invS
	}
	for a := 0; a < NPhases; a++ {
		wd := wInterpD(phi[a]) * invS
		for b := 0; b < NPhases; b++ {
			d := 0.0
			if a == b {
				d = 1
			}
			dH[b][a] = wd * (d - h[b])
		}
	}
}

// GAT is the anti-trapping interpolation g_α(φ); the standard choice is
// g_α = φ_α.
func GAT(phiA float64) float64 { return phiA }
