package jobd

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/jobd/store"
)

// persist.go — the daemon side of the persistent result store. Terminal
// jobs spill their final checkpoint, replayable schedule and metrics
// summary into a content-addressed store (internal/jobd/store); a
// restarted daemon reloads the manifests and keeps serving /result and
// /schedule byte-identical to the pre-restart responses, because both
// endpoints serve the stored blobs verbatim (and the store verifies every
// blob against its content hash before it leaves disk).

// jobManifest is the on-store record of a terminal job: the metrics
// summary plus the content addresses of the result and schedule blobs.
// Name, class, params and total steps live in the embedded Spec — the one
// source of truth.
type jobManifest struct {
	ID          string  `json:"id"`
	Array       string  `json:"array,omitempty"`
	Spec        Spec    `json:"spec"`
	State       State   `json:"state"`
	Step        int     `json:"step"`
	Time        float64 `json:"time"`
	Solid       float64 `json:"solid"`
	Preemptions int     `json:"preemptions"`
	Retries     int     `json:"retries,omitempty"`
	Stalls      int     `json:"stalls,omitempty"`
	LastError   string  `json:"last_error,omitempty"`
	Error       string  `json:"error,omitempty"`
	Result      string  `json:"result,omitempty"`   // blob hash, ckpt container bytes
	Schedule    string  `json:"schedule,omitempty"` // blob hash, replayable schedule JSON
}

// arrayManifest is the on-store (and on-spool) record of an array.
type arrayManifest struct {
	ID       string    `json:"id"`
	Spec     ArraySpec `json:"spec"`
	Children []string  `json:"children"`
}

// logf reports a daemon-side event through the configured logger.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(fmt.Sprintf(format, args...))
	}
}

// LoadStore opens the configured store directory and restores the
// manifests a previous daemon instance left: terminal jobs (served from
// disk) and array records. Call before Start, before LoadSpool (spooled
// live jobs then layer on top of the stored terminal ones). Returns the
// number of jobs restored.
func (s *Server) LoadStore() (int, error) {
	if s.cfg.StoreDir == "" {
		return 0, nil
	}
	st, err := store.OpenFS(s.cfg.StoreDir, s.cfg.StoreFS)
	if err != nil {
		return 0, err
	}
	// Retention runs before the restore walk so the daemon only learns
	// about jobs whose results actually survived the policy.
	if pol := s.retention(); pol.Enabled() {
		if rep, err := st.GC(pol, time.Now()); err != nil {
			s.logf("jobd: store gc at load: %v", err)
		} else if rep.EvictedManifests > 0 || rep.EvictedBlobs > 0 {
			s.logf("jobd: store gc at load evicted %d manifests, %d blobs (%d bytes)",
				rep.EvictedManifests, rep.EvictedBlobs, rep.EvictedBytes)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = st

	n := 0
	var manifests []jobManifest
	err = st.Manifests(store.JobsBucket, func(id string, blob []byte) error {
		var m jobManifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return err
		}
		if m.ID != id {
			return fmt.Errorf("manifest id %q names job %q", id, m.ID)
		}
		if !m.State.terminal() {
			return fmt.Errorf("stored job %s has non-terminal state %q", id, m.State)
		}
		manifests = append(manifests, m)
		return nil
	})
	if err != nil {
		return 0, err
	}
	// Directory order is not submission order; sort for stable listings.
	sort.Slice(manifests, func(i, j int) bool { return manifests[i].ID < manifests[j].ID })
	for _, m := range manifests {
		if _, exists := s.jobs[m.ID]; exists {
			continue
		}
		s.nextSeq++
		j := newJob(m.ID, s.nextSeq, m.Spec, nil)
		j.state = m.State
		j.step = m.Step
		j.simTime = m.Time
		j.solid = m.Solid
		j.preemptions = m.Preemptions
		j.retries = m.Retries
		j.stalls = m.Stalls
		if m.LastError != "" {
			j.lastErr = fmt.Errorf("%s", m.LastError)
		}
		if m.Error != "" {
			j.err = fmt.Errorf("%s", m.Error)
		}
		j.array = m.Array
		if j.array != "" {
			j.group = j.array
		}
		j.storedResult = m.Result
		j.storedSchedule = m.Schedule
		s.jobs[j.ID] = j
		if id := idNumber(m.ID); id > s.nextID {
			s.nextID = id
		}
		// Child manifests also pin the array counter: the array's own
		// manifest may be missing (persistArray is best-effort), and a
		// reused array id would overwrite the stored children.
		if id := arrayNumber(m.Array); id > s.nextArrayID {
			s.nextArrayID = id
		}
		n++
	}

	err = st.Manifests(store.ArraysBucket, func(id string, blob []byte) error {
		var m arrayManifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return err
		}
		s.restoreArrayLocked(&m)
		return nil
	})
	if err != nil {
		return n, err
	}
	return n, nil
}

// restoreArrayLocked registers an array record loaded from the store or
// spool; s.mu must be held.
func (s *Server) restoreArrayLocked(m *arrayManifest) {
	if _, exists := s.arrays[m.ID]; exists {
		return
	}
	s.nextSeq++
	arr := &Array{ID: m.ID, Spec: m.Spec, Children: m.Children, seq: s.nextSeq}
	s.arrays[arr.ID] = arr
	if id := arrayNumber(m.ID); id > s.nextArrayID {
		s.nextArrayID = id
	}
}

// arrayNumber extracts the numeric suffix of an array id ("arr-0042" → 42).
func arrayNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "arr-%d", &n); err != nil {
		return 0
	}
	return n
}

// persistArray writes an array's manifest to the store (best effort: the
// in-memory record keeps serving if the spill fails).
func (s *Server) persistArray(arr *Array) {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st == nil {
		return
	}
	release := st.Reserve()
	defer release()
	m := arrayManifest{ID: arr.ID, Spec: arr.Spec, Children: arr.Children}
	if err := st.PutManifest(store.ArraysBucket, arr.ID, &m); err != nil {
		s.logf("jobd: store array %s: %v", arr.ID, err)
	}
}

// spillJob persists a terminal job: result and schedule blobs first, the
// manifest referencing them last, so a manifest never points at a blob
// that was not fully written. A returned error means nothing authoritative
// landed — the job keeps serving from memory and the caller (spillDone)
// parks it for the degraded-mode flusher to retry.
func (s *Server) spillJob(j *Job) error {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	j.mu.Lock()
	m := jobManifest{
		ID: j.ID, Array: j.array, Spec: j.Spec, State: j.state,
		Step: j.step, Time: j.simTime, Solid: j.solid,
		Preemptions: j.preemptions, Retries: j.retries, Stalls: j.stalls,
	}
	if j.err != nil {
		m.Error = j.err.Error()
	}
	if j.lastErr != nil {
		m.LastError = j.lastErr.Error()
	}
	final := j.final
	j.mu.Unlock()
	if !m.State.terminal() {
		return nil
	}

	// The whole blob+manifest sequence runs under one GC reservation, so
	// retention GC never observes the gap between a written blob and the
	// manifest that will reference it (store.Reserve).
	release := st.Reserve()
	defer release()

	if final != nil {
		hash, err := st.PutBlob(final)
		if err != nil {
			return fmt.Errorf("store result of %s: %w", j.ID, err)
		}
		m.Result = hash
	}
	if blob, err := j.AppliedScheduleJSON(); err != nil {
		return fmt.Errorf("encode schedule of %s: %w", j.ID, err)
	} else if hash, err := st.PutBlob(blob); err != nil {
		return fmt.Errorf("store schedule of %s: %w", j.ID, err)
	} else {
		m.Schedule = hash
	}
	if err := st.PutManifest(store.JobsBucket, j.ID, &m); err != nil {
		return fmt.Errorf("store manifest of %s: %w", j.ID, err)
	}
	j.mu.Lock()
	j.storedResult = m.Result
	j.storedSchedule = m.Schedule
	j.mu.Unlock()
	return nil
}

// retention is the store policy assembled from the config knobs.
func (s *Server) retention() store.RetentionPolicy {
	return store.RetentionPolicy{MaxBytes: s.cfg.StoreGCMaxBytes, MaxAge: s.cfg.StoreGCMaxAge}
}

// RunStoreGC applies the retention policy to the result store now and
// reconciles the in-memory registry with what was evicted: a restored
// terminal job whose manifest is gone is forgotten (its children show as
// missing in array aggregations, as after any restart without its
// record), while a job this daemon ran keeps serving from memory with
// its stale store references cleared. No-op without a store or policy.
func (s *Server) RunStoreGC() (store.GCReport, error) {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	pol := s.retention()
	if st == nil || !pol.Enabled() {
		return store.GCReport{}, nil
	}
	rep, err := st.GC(pol, time.Now())
	if err != nil {
		s.logf("jobd: store gc: %v", err)
		return rep, err
	}
	s.mu.Lock()
	for _, id := range rep.Evicted {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		j.mu.Lock()
		terminal := j.state.terminal()
		inMemory := j.final != nil
		if terminal {
			j.storedResult = ""
			j.storedSchedule = ""
		}
		j.mu.Unlock()
		if terminal && !inMemory {
			delete(s.jobs, id)
		}
	}
	s.mu.Unlock()
	if rep.EvictedManifests > 0 || rep.EvictedBlobs > 0 {
		s.logf("jobd: store gc evicted %d manifests, %d blobs (%d bytes); %d manifests, %d bytes live",
			rep.EvictedManifests, rep.EvictedBlobs, rep.EvictedBytes, rep.LiveManifests, rep.LiveBytes)
	}
	return rep, nil
}

// hasResult reports whether a final checkpoint can be served for j, from
// memory or the store.
func (s *Server) hasResult(j *Job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.final != nil || j.storedResult != ""
}

// resultBytes returns the job's final checkpoint: the in-memory copy when
// this daemon ran the job, otherwise the stored blob (content-verified).
func (s *Server) resultBytes(j *Job) ([]byte, error) {
	j.mu.Lock()
	final, hash := j.final, j.storedResult
	j.mu.Unlock()
	if final != nil {
		return final, nil
	}
	if hash == "" {
		return nil, nil
	}
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st == nil {
		return nil, fmt.Errorf("jobd: job %s result is in the store but no store is configured", j.ID)
	}
	return st.Blob(hash)
}

// scheduleBytes returns the job's replayable applied-schedule JSON. A
// terminal job with a stored blob serves those exact bytes — the live
// encoding at spill time — so responses are byte-identical across daemon
// restarts.
func (s *Server) scheduleBytes(j *Job) ([]byte, error) {
	j.mu.Lock()
	hash := j.storedSchedule
	terminal := j.state.terminal()
	j.mu.Unlock()
	if terminal && hash != "" {
		s.mu.Lock()
		st := s.store
		s.mu.Unlock()
		if st != nil {
			return st.Blob(hash)
		}
	}
	return j.AppliedScheduleJSON()
}
