package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/jobd"
)

// api.go — the gateway's HTTP/JSON surface. Tenant endpoints require a
// tenant bearer token and sit behind per-tenant rate limits and the
// request body cap; fleet endpoints require the fleet token:
//
//	POST   /arrays               submit an ArraySpec; fans children across the fleet
//	GET    /arrays               list the tenant's arrays
//	GET    /arrays/{id}          one array's aggregated status
//	GET    /arrays/{id}/results  merged per-child results across daemons
//	DELETE /arrays/{id}          cancel every non-settled child fleet-wide
//	GET    /jobs/{id}/result     a child's final checkpoint (replicated or proxied)
//	GET    /jobs/{id}/schedule   a child's replayable schedule
//	POST   /fleet/register       daemon heartbeat/registration {"url": ...}
//	GET    /fleet                fleet status: daemons, tenants, load
//	GET    /healthz              gateway liveness (503 with no alive daemon)
//	GET    /metrics              gateway counters, Prometheus text format
//
// Every error body is structured: {"error": ..., "code": ...} with a
// stable machine-readable code (unauthorized, over_quota, rate_limited,
// too_large, bad_request, not_found, conflict, no_daemons).

// Error codes returned in the structured error body.
const (
	CodeUnauthorized = "unauthorized"
	CodeOverQuota    = "over_quota"
	CodeRateLimited  = "rate_limited"
	CodeTooLarge     = "too_large"
	CodeBadRequest   = "bad_request"
	CodeNotFound     = "not_found"
	CodeConflict     = "conflict"
	CodeNoDaemons    = "no_daemons"
	CodeInternal     = "internal"
)

// APIError is the uniform structured error body of every gateway
// rejection.
type APIError struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Code is the stable machine-readable rejection reason.
	Code string `json:"code"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	g.metrics.reject(code)
	writeJSON(w, status, APIError{Error: fmt.Sprintf(format, args...), Code: code})
}

// Handler returns the gateway's HTTP API, wrapped in the request body
// cap.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /arrays", g.tenantEndpoint(g.handleSubmitArray))
	mux.HandleFunc("GET /arrays", g.tenantEndpoint(g.handleListArrays))
	mux.HandleFunc("GET /arrays/{id}", g.tenantEndpoint(g.handleArrayStatus))
	mux.HandleFunc("GET /arrays/{id}/results", g.tenantEndpoint(g.handleArrayResults))
	mux.HandleFunc("DELETE /arrays/{id}", g.tenantEndpoint(g.handleCancelArray))
	mux.HandleFunc("GET /jobs/{id}/result", g.tenantEndpoint(g.handleChildResult))
	mux.HandleFunc("GET /jobs/{id}/schedule", g.tenantEndpoint(g.handleChildSchedule))
	mux.HandleFunc("POST /fleet/register", g.fleetEndpoint(g.handleRegister))
	mux.HandleFunc("GET /fleet", g.fleetEndpoint(g.handleFleetStatus))
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return http.MaxBytesHandler(mux, g.cfg.MaxRequestBody)
}

// bearerToken extracts the Authorization bearer token, empty if absent.
func bearerToken(r *http.Request) string {
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) > len(prefix) && h[:len(prefix)] == prefix {
		return h[len(prefix):]
	}
	return ""
}

// statusRecorder captures the response status for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// tenantEndpoint authenticates the tenant token, applies the tenant's
// rate limit, and counts the request by tenant and response code.
func (g *Gateway) tenantEndpoint(h func(http.ResponseWriter, *http.Request, *Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t, ok := g.tenants[bearerToken(r)]
		if !ok {
			g.writeError(sr, http.StatusUnauthorized, CodeUnauthorized,
				"missing or unknown tenant token")
			g.metrics.request("unknown", sr.code)
			return
		}
		if !g.allow(t, time.Now()) {
			g.writeError(sr, http.StatusTooManyRequests, CodeRateLimited,
				"tenant %s exceeded %g requests/s (burst %d)", t.Name, t.RatePerSec, t.Burst)
			g.metrics.request(t.Name, sr.code)
			return
		}
		h(sr, r, t)
		g.metrics.request(t.Name, sr.code)
	}
}

// fleetEndpoint authenticates the fleet (operator) token. An empty
// configured FleetToken leaves the operator surface open — loopback
// development only.
func (g *Gateway) fleetEndpoint(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if g.cfg.FleetToken != "" && bearerToken(r) != g.cfg.FleetToken {
			g.writeError(w, http.StatusUnauthorized, CodeUnauthorized, "missing or bad fleet token")
			return
		}
		h(w, r)
	}
}

// bucket is a per-tenant request token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// allow consumes one token from the tenant's bucket, refilling by
// elapsed wall time; tenants with no configured rate always pass.
func (g *Gateway) allow(t *Tenant, now time.Time) bool {
	if t.RatePerSec <= 0 {
		return true
	}
	burst := float64(t.Burst)
	if burst < 1 {
		burst = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.buckets[t.Name]
	if !ok {
		b = &bucket{tokens: burst, last: now}
		g.buckets[t.Name] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * t.RatePerSec
	b.last = now
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (g *Gateway) handleSubmitArray(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var as jobd.ArraySpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&as); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			g.writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds the %d byte cap", g.cfg.MaxRequestBody)
			return
		}
		g.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad array spec: %v", err)
		return
	}
	// The tenant's class overrides whatever the spec asked for: class is
	// the tenant's resource boundary, not a client choice.
	as.Template.Class = t.Class
	specs, err := as.Expand()
	if err != nil {
		g.writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	g.mu.Lock()
	if t.MaxActive > 0 {
		active := g.tenantActive(t.Name)
		if active+len(specs) > t.MaxActive {
			g.mu.Unlock()
			g.writeError(w, http.StatusTooManyRequests, CodeOverQuota,
				"tenant %s quota: %d active + %d submitted children exceeds max_active %d",
				t.Name, active, len(specs), t.MaxActive)
			return
		}
	}
	if g.aliveCountLocked() == 0 {
		g.mu.Unlock()
		g.writeError(w, http.StatusServiceUnavailable, CodeNoDaemons,
			"no alive daemon to place work on")
		return
	}
	g.nextArrayID++
	arr := &gwArray{
		id:     fmt.Sprintf("fleet-%04d", g.nextArrayID),
		tenant: t.Name,
		name:   as.Name,
		spec:   as,
		seq:    int64(g.nextArrayID),
	}
	for i, sp := range specs {
		c := &child{
			id:      fmt.Sprintf("%s.%03d", arr.id, i),
			arrayID: arr.id,
			tenant:  t.Name,
			spec:    sp,
			state:   jobd.StateQueued,
		}
		arr.children = append(arr.children, c)
		g.children[c.id] = c
	}
	g.arrays[arr.id] = arr
	status := g.arrayStatusLocked(arr)
	g.mu.Unlock()
	g.logf("fleet: array %s: %d children for tenant %s", arr.id, len(specs), t.Name)
	g.kickMonitor()
	writeJSON(w, http.StatusCreated, status)
}

// ChildStatus is the gateway view of one fanned-out child.
type ChildStatus struct {
	// ID is the gateway child id ("fleet-0001.003").
	ID string `json:"id"`
	// Daemon is the base URL of the hosting daemon, empty while unplaced.
	Daemon string `json:"daemon,omitempty"`
	// RemoteID is the job's id on the hosting daemon.
	RemoteID string `json:"remote_id,omitempty"`
	// State is the gateway's view of the child's lifecycle.
	State jobd.State `json:"state"`
	// Params are the child's expanded grid-point parameters.
	Params map[string]float64 `json:"params,omitempty"`
	// Step, Time and Solid mirror the last polled daemon-side status.
	Step  int     `json:"step"`
	Time  float64 `json:"time"`
	Solid float64 `json:"solid"`
	// Error carries the daemon-side failure message, if any.
	Error string `json:"error,omitempty"`
	// Requeues counts how many times daemon loss forced a re-placement.
	Requeues int `json:"requeues,omitempty"`
	// Replicated reports whether the result blob landed in the gateway
	// store.
	Replicated bool `json:"replicated,omitempty"`
}

// ArrayStatus is the gateway's aggregated view of one array
// (GET /arrays/{id}).
type ArrayStatus struct {
	// ID is the gateway array id ("fleet-0001").
	ID string `json:"id"`
	// Name echoes the submitted array name.
	Name string `json:"name,omitempty"`
	// Tenant owns the array.
	Tenant string `json:"tenant"`
	// State aggregates the children: running while any child is unsettled,
	// then failed/canceled/done by worst outcome.
	State jobd.State `json:"state"`
	// Counts tallies children by gateway-side state.
	Counts map[jobd.State]int `json:"counts"`
	// Children lists each child's gateway status in grid order.
	Children []ChildStatus `json:"children"`
}

// childStatusLocked snapshots one child; g.mu must be held.
func childStatusLocked(c *child) ChildStatus {
	cs := ChildStatus{
		ID: c.id, Daemon: c.daemonURL, RemoteID: c.remoteID,
		State: c.state, Params: c.spec.Params,
		Step: c.status.Step, Time: c.status.Time, Solid: c.status.Solid,
		Error: c.status.Error, Requeues: c.requeues,
		Replicated: c.resultHash != "",
	}
	return cs
}

// arrayStatusLocked aggregates one array; g.mu must be held.
func (g *Gateway) arrayStatusLocked(arr *gwArray) ArrayStatus {
	st := ArrayStatus{
		ID: arr.id, Name: arr.name, Tenant: arr.tenant,
		Counts: map[jobd.State]int{},
	}
	anyActive, anyFailed, anyCanceled := false, false, false
	for _, c := range arr.children {
		st.Children = append(st.Children, childStatusLocked(c))
		st.Counts[c.state]++
		switch {
		case !g.settledLocked(c):
			anyActive = true
		case c.state == jobd.StateFailed:
			anyFailed = true
		case c.state == jobd.StateCanceled:
			anyCanceled = true
		}
	}
	switch {
	case anyActive:
		st.State = jobd.StateRunning
	case anyFailed:
		st.State = jobd.StateFailed
	case anyCanceled:
		st.State = jobd.StateCanceled
	default:
		st.State = jobd.StateDone
	}
	return st
}

// arrayFor resolves the {id} path value within the tenant's scope.
func (g *Gateway) arrayFor(w http.ResponseWriter, r *http.Request, t *Tenant) (*gwArray, bool) {
	id := r.PathValue("id")
	g.mu.Lock()
	arr, ok := g.arrays[id]
	if ok && arr.tenant != t.Name {
		// Another tenant's array is indistinguishable from a missing one.
		ok = false
	}
	g.mu.Unlock()
	if !ok {
		g.writeError(w, http.StatusNotFound, CodeNotFound, "no array %q", id)
		return nil, false
	}
	return arr, true
}

func (g *Gateway) handleListArrays(w http.ResponseWriter, r *http.Request, t *Tenant) {
	g.mu.Lock()
	out := []ArrayStatus{}
	for _, arr := range g.sortedArrays() {
		if arr.tenant == t.Name {
			out = append(out, g.arrayStatusLocked(arr))
		}
	}
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (g *Gateway) handleArrayStatus(w http.ResponseWriter, r *http.Request, t *Tenant) {
	arr, ok := g.arrayFor(w, r, t)
	if !ok {
		return
	}
	g.mu.Lock()
	st := g.arrayStatusLocked(arr)
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// ChildResult is one entry of the gateway's merged results aggregation,
// shaped like jobd's per-daemon ChildResult so downstream tooling works
// against either.
type ChildResult struct {
	// ID is the gateway child id.
	ID string `json:"id"`
	// Params are the child's grid-point parameters.
	Params map[string]float64 `json:"params,omitempty"`
	// Class is the tenant's resource class the child ran under.
	Class string `json:"class"`
	// State is the gateway view of the child.
	State jobd.State `json:"state"`
	// Step, Time and Solid mirror the final daemon-side status.
	Step  int     `json:"step"`
	Time  float64 `json:"time"`
	Solid float64 `json:"solid"`
	// Error carries the failure message of failed children.
	Error string `json:"error,omitempty"`
	// ResultPath is the gateway endpoint serving the child's final
	// checkpoint, empty until the child is done.
	ResultPath string `json:"result_path,omitempty"`
	// Daemon is the base URL of the daemon that produced the result.
	Daemon string `json:"daemon,omitempty"`
}

// ArrayResults is the merged aggregation served by
// GET /arrays/{id}/results: one row per child regardless of which daemon
// ran it, with result paths pointing back at the gateway.
type ArrayResults struct {
	// ID and Name identify the array.
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Tenant owns the array.
	Tenant string `json:"tenant"`
	// State is the aggregated array state.
	State jobd.State `json:"state"`
	// Children holds the merged per-child rows in grid order.
	Children []ChildResult `json:"children"`
}

func (g *Gateway) handleArrayResults(w http.ResponseWriter, r *http.Request, t *Tenant) {
	arr, ok := g.arrayFor(w, r, t)
	if !ok {
		return
	}
	g.mu.Lock()
	res := ArrayResults{ID: arr.id, Name: arr.name, Tenant: arr.tenant,
		State: g.arrayStatusLocked(arr).State}
	for _, c := range arr.children {
		row := ChildResult{
			ID: c.id, Params: c.spec.Params, Class: c.spec.Class,
			State: c.state, Step: c.status.Step, Time: c.status.Time,
			Solid: c.status.Solid, Error: c.status.Error, Daemon: c.daemonURL,
		}
		if c.state == jobd.StateDone {
			row.ResultPath = "/jobs/" + c.id + "/result"
		}
		res.Children = append(res.Children, row)
	}
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, res)
}

func (g *Gateway) handleCancelArray(w http.ResponseWriter, r *http.Request, t *Tenant) {
	arr, ok := g.arrayFor(w, r, t)
	if !ok {
		return
	}
	type target struct{ daemonURL, remoteID string }
	var targets []target
	g.mu.Lock()
	for _, c := range arr.children {
		if g.settledLocked(c) {
			continue
		}
		if c.daemonURL == "" {
			// Unplaced children cancel instantly — nothing remote to undo.
			c.state = jobd.StateCanceled
			continue
		}
		targets = append(targets, target{c.daemonURL, c.remoteID})
	}
	st := g.arrayStatusLocked(arr)
	g.mu.Unlock()
	for _, tg := range targets {
		req, err := http.NewRequest(http.MethodDelete,
			tg.daemonURL+"/jobs/"+tg.remoteID, nil)
		if err != nil {
			continue
		}
		if resp, err := g.client.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	g.kickMonitor()
	writeJSON(w, http.StatusAccepted, st)
}

// childFor resolves the {id} path value to a tenant-owned child.
func (g *Gateway) childFor(w http.ResponseWriter, r *http.Request, t *Tenant) (*child, bool) {
	id := r.PathValue("id")
	g.mu.Lock()
	c, ok := g.children[id]
	if ok && c.tenant != t.Name {
		ok = false
	}
	g.mu.Unlock()
	if !ok {
		g.writeError(w, http.StatusNotFound, CodeNotFound, "no job %q", id)
		return nil, false
	}
	return c, true
}

// serveChildBlob serves a child's blob from the gateway store when
// replicated, proxying to the hosting daemon otherwise.
func (g *Gateway) serveChildBlob(w http.ResponseWriter, c *child, hash, daemonPath, contentType string) {
	g.mu.Lock()
	st := g.store
	daemonURL, remoteID := c.daemonURL, c.remoteID
	g.mu.Unlock()
	if hash != "" && st != nil {
		blob, err := st.Blob(hash)
		if err != nil {
			g.writeError(w, http.StatusInternalServerError, CodeInternal,
				"replicated blob of %s: %v", c.id, err)
			return
		}
		w.Header().Set("Content-Type", contentType)
		_, _ = w.Write(blob)
		return
	}
	if daemonURL == "" {
		g.writeError(w, http.StatusConflict, CodeConflict,
			"job %s has not been placed on a daemon yet", c.id)
		return
	}
	resp, err := g.client.Get(daemonURL + "/jobs/" + remoteID + daemonPath)
	if err != nil {
		g.writeError(w, http.StatusBadGateway, CodeInternal,
			"daemon %s: %v", daemonURL, err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (g *Gateway) handleChildResult(w http.ResponseWriter, r *http.Request, t *Tenant) {
	c, ok := g.childFor(w, r, t)
	if !ok {
		return
	}
	g.mu.Lock()
	hash := c.resultHash
	state := c.state
	g.mu.Unlock()
	if state != jobd.StateDone {
		g.writeError(w, http.StatusConflict, CodeConflict,
			"job %s is %s; result exists only for done jobs", c.id, state)
		return
	}
	g.serveChildBlob(w, c, hash, "/result", "application/octet-stream")
}

func (g *Gateway) handleChildSchedule(w http.ResponseWriter, r *http.Request, t *Tenant) {
	c, ok := g.childFor(w, r, t)
	if !ok {
		return
	}
	g.mu.Lock()
	hash := c.schedHash
	g.mu.Unlock()
	g.serveChildBlob(w, c, hash, "/schedule", "application/json")
}

// registerRequest is the body of POST /fleet/register.
type registerRequest struct {
	// URL is the daemon's advertised base URL.
	URL string `json:"url"`
}

func (g *Gateway) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		g.writeError(w, http.StatusBadRequest, CodeBadRequest, "register body needs a url")
		return
	}
	g.mu.Lock()
	d, known := g.daemons[req.URL]
	if !known {
		d = &daemon{url: req.URL, registered: true}
		g.daemons[req.URL] = d
		g.logf("fleet: daemon %s registered", req.URL)
	}
	// A heartbeat is as good as a successful probe.
	d.fails = 0
	d.alive = true
	d.lastSeen = time.Now()
	g.mu.Unlock()
	g.kickMonitor()
	writeJSON(w, http.StatusOK, map[string]string{"status": "registered"})
}

// DaemonStatus is the fleet-status view of one daemon.
type DaemonStatus struct {
	// URL is the daemon's base URL.
	URL string `json:"url"`
	// Alive reports whether the daemon currently passes health probes.
	Alive bool `json:"alive"`
	// Fails counts consecutive failed probes.
	Fails int `json:"fails"`
	// LastSeen is the last successful probe or heartbeat.
	LastSeen time.Time `json:"last_seen"`
	// Registered distinguishes runtime-registered daemons from the static
	// config list.
	Registered bool `json:"registered,omitempty"`
	// Children counts unsettled children currently placed on the daemon.
	Children int `json:"children"`
}

// TenantStatus is the fleet-status view of one tenant's load.
type TenantStatus struct {
	// Name and Class identify the tenant and its resource class.
	Name  string `json:"name"`
	Class string `json:"class,omitempty"`
	// Active counts the tenant's unsettled children fleet-wide;
	// MaxActive is the configured cap (0 = unlimited).
	Active    int `json:"active"`
	MaxActive int `json:"max_active,omitempty"`
}

// FleetStatus is the operator view served by GET /fleet.
type FleetStatus struct {
	// Daemons lists every known daemon, alive or dead.
	Daemons []DaemonStatus `json:"daemons"`
	// Tenants lists per-tenant load against quota.
	Tenants []TenantStatus `json:"tenants"`
	// Arrays and Children count the gateway's tracked units.
	Arrays   int `json:"arrays"`
	Children int `json:"children"`
	// Requeues counts children re-placed after daemon loss since start.
	Requeues int `json:"requeues"`
}

func (g *Gateway) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	// Non-nil slices: an empty fleet serves [], not null — clients
	// iterate the lists without special-casing a just-started gateway.
	st := FleetStatus{
		Arrays: len(g.arrays), Children: len(g.children),
		Daemons: []DaemonStatus{}, Tenants: []TenantStatus{},
	}
	placed := map[string]int{}
	for _, c := range g.children {
		st.Requeues += c.requeues
		if !g.settledLocked(c) && c.daemonURL != "" {
			placed[c.daemonURL]++
		}
	}
	for _, d := range g.daemons {
		st.Daemons = append(st.Daemons, DaemonStatus{
			URL: d.url, Alive: d.alive, Fails: d.fails, LastSeen: d.lastSeen,
			Registered: d.registered, Children: placed[d.url],
		})
	}
	sort.Slice(st.Daemons, func(i, j int) bool { return st.Daemons[i].URL < st.Daemons[j].URL })
	for _, t := range g.cfg.Tenants {
		st.Tenants = append(st.Tenants, TenantStatus{
			Name: t.Name, Class: t.Class,
			Active: g.tenantActive(t.Name), MaxActive: t.MaxActive,
		})
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// GatewayHealth is the body of the gateway's /healthz.
type GatewayHealth struct {
	// Status is "ok" or "no_daemons".
	Status string `json:"status"`
	// AliveDaemons and Daemons count fleet membership.
	AliveDaemons int `json:"alive_daemons"`
	Daemons      int `json:"daemons"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	h := GatewayHealth{Status: "ok", AliveDaemons: g.aliveCountLocked(), Daemons: len(g.daemons)}
	g.mu.Unlock()
	code := http.StatusOK
	if h.AliveDaemons == 0 {
		h.Status = "no_daemons"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g.publishGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.metrics.c.WriteTo(w)
}

// aliveCountLocked counts alive daemons; g.mu must be held.
func (g *Gateway) aliveCountLocked() int {
	n := 0
	for _, d := range g.daemons {
		if d.alive {
			n++
		}
	}
	return n
}

// itoa is a tiny strconv alias keeping metric label construction terse.
func itoa(code int) string { return strconv.Itoa(code) }
