package mesh

import "math"

// Hierarchical reduction (§3.2): per-block meshes are stitched pairwise and
// re-coarsened in the stitched region; each round halves the number of
// participants, so the full reduction takes log₂(P) steps. The reduction
// stops early if the aggregate exceeds a configurable memory budget,
// mirroring the paper's "resumed on a machine with more memory" escape
// hatch.

// StitchTol is the vertex-merge distance for stitching block meshes; block
// meshes share exact ghost-layer geometry, so a small tolerance suffices.
const StitchTol = 1e-6

// Stitch merges two meshes, welding vertices that coincide within tol.
// Boundary flags are retained (a welded vertex stays boundary only if it is
// still on the hull of the union — conservatively, if both inputs flag it).
func Stitch(a, b *Mesh, tol float64) *Mesh {
	out := &Mesh{}
	key := func(v Vec3) [3]int64 {
		return [3]int64{
			int64(math.Round(v[0] / tol)),
			int64(math.Round(v[1] / tol)),
			int64(math.Round(v[2] / tol)),
		}
	}
	lookup := make(map[[3]int64]int32)
	hasBoundary := a.Boundary != nil || b.Boundary != nil
	if hasBoundary {
		out.Boundary = []bool{}
	}
	addVert := func(v Vec3, bnd bool) int32 {
		k := key(v)
		if idx, ok := lookup[k]; ok {
			if hasBoundary {
				// A welded seam vertex is interior now unless
				// both copies claim boundary.
				out.Boundary[idx] = out.Boundary[idx] && bnd
			}
			return idx
		}
		idx := int32(len(out.Verts))
		out.Verts = append(out.Verts, v)
		if hasBoundary {
			out.Boundary = append(out.Boundary, bnd)
		}
		lookup[k] = idx
		return idx
	}
	appendMesh := func(m *Mesh) {
		for _, t := range m.Tris {
			var nt [3]int32
			for e := 0; e < 3; e++ {
				bnd := false
				if m.Boundary != nil {
					bnd = m.Boundary[t[e]]
				}
				nt[e] = addVert(m.Verts[t[e]], bnd)
			}
			if nt[0] != nt[1] && nt[1] != nt[2] && nt[0] != nt[2] {
				out.Tris = append(out.Tris, nt)
			}
		}
	}
	appendMesh(a)
	appendMesh(b)
	// Drop exact duplicate triangles arising from the shared ghost
	// overlap between adjacent block extractions.
	seen := make(map[[3]int32]bool, len(out.Tris))
	var uniq [][3]int32
	for _, t := range out.Tris {
		k := t
		// Canonical rotation (orientation preserved).
		for (k[0] > k[1] || k[0] > k[2]) && !(k[0] == k[1] || k[1] == k[2]) {
			k[0], k[1], k[2] = k[1], k[2], k[0]
		}
		if k[0] > k[1] && k[0] > k[2] {
			k[0], k[1], k[2] = k[1], k[2], k[0]
		}
		if k[0] > k[1] && k[0] > k[2] {
			k[0], k[1], k[2] = k[1], k[2], k[0]
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, t)
	}
	out.Tris = uniq
	out.Compact()
	return out
}

// ReduceOptions controls the hierarchical reduction.
type ReduceOptions struct {
	// TargetTris is the per-round coarsening target applied after each
	// stitch (0 keeps everything).
	TargetTris int
	// MaxError bounds per-collapse error (0: unbounded).
	MaxError float64
	// MaxTris aborts further coarsening rounds when an aggregate exceeds
	// it (the "does not fit in one node's memory" condition); the
	// partially reduced meshes are returned for offline postprocessing.
	MaxTris int
}

// Reduce runs the log₂(P) pairwise gather-stitch-coarsen reduction over the
// per-block meshes. It returns the reduced mesh list: length 1 when the
// reduction completed, more when MaxTris stopped it early. rounds reports
// how many pairwise rounds ran.
func Reduce(meshes []*Mesh, opt ReduceOptions) (out []*Mesh, rounds int) {
	cur := make([]*Mesh, len(meshes))
	copy(cur, meshes)
	// Round 0: local coarsening on every block, boundary-protected.
	if opt.TargetTris > 0 {
		for _, m := range cur {
			if m.NumTris() > opt.TargetTris {
				Simplify(m, SimplifyOptions{TargetTris: opt.TargetTris, MaxError: opt.MaxError})
			}
		}
	}
	for len(cur) > 1 {
		if opt.MaxTris > 0 {
			total := 0
			for _, m := range cur {
				total += m.NumTris()
			}
			if total > opt.MaxTris {
				return cur, rounds
			}
		}
		var next []*Mesh
		for i := 0; i+1 < len(cur); i += 2 {
			s := Stitch(cur[i], cur[i+1], StitchTol)
			if opt.TargetTris > 0 && s.NumTris() > opt.TargetTris {
				Simplify(s, SimplifyOptions{TargetTris: opt.TargetTris, MaxError: opt.MaxError})
			}
			next = append(next, s)
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
		rounds++
	}
	return cur, rounds
}
