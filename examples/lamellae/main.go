// Lamellae: reproduce the microstructure physics of §5.2 / Figs. 10–11 at
// laptop scale — grow ternary eutectic lamellae from a Voronoi-nucleated
// bottom slab, then quantify the three-dimensional structure: per-phase
// volume fractions against the thermodynamic lever rule, lamella counts per
// growth slice, split/merge events (the phenomena invisible in 2D
// micrographs), and the two-point correlation that underlies the paper's
// planned tomography comparison.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/analysis"
)

func main() {
	cfg := phasefield.DefaultConfig(48, 48, 64)
	cfg.PX, cfg.PY = 2, 2 // four worker ranks
	cfg.Seed = 7
	sim, err := phasefield.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.InitProduction(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("growing ternary eutectic lamellae...")
	sim.Run(400)

	names := phasefield.PhaseNames()
	fr := sim.PhaseFractions()
	fmt.Println("\nphase volume fractions vs eutectic lever rule:")
	// Thermodynamic targets from the synthetic Calphad database:
	targets := []float64{0.45, 0.30, 0.25}
	solid := sim.SolidFraction()
	for a := 0; a < 3; a++ {
		got := 0.0
		if solid > 0 {
			got = fr[a] / solid
		}
		fmt.Printf("  %-6s  measured %.3f of solid  (lever rule %.2f)\n", names[a], got, targets[a])
	}

	phi := sim.GlobalPhi()
	fmt.Println("\nlamella counts along the growth direction (phase", names[0], "):")
	counts := analysis.LamellaCounts(phi, 0)
	for z := 0; z < len(counts); z += 8 {
		fmt.Printf("  z=%3d: %d lamellae\n", z, counts[z])
	}

	fmt.Println("\ntopology events along growth (splits & merges, Fig. 11 physics):")
	for a := 0; a < 3; a++ {
		ev := analysis.TotalEvents(phi, a)
		fmt.Printf("  %-6s: %3d splits, %3d merges, %3d births, %3d deaths\n",
			names[a], ev.Splits, ev.Merges, ev.Births, ev.Deaths)
	}

	front := sim.FrontHeight()
	zProbe := front / 2 // well inside the solidified region
	if zProbe < 1 {
		zProbe = 1
	}
	s2 := analysis.TwoPointCorrelation(phi, 0, zProbe, 16)
	fmt.Printf("\ntwo-point correlation S2(r) of %s at z=%d:\n  ", names[0], zProbe)
	for r, v := range s2 {
		if r%2 == 0 {
			fmt.Printf("S2(%d)=%.3f  ", r, v)
		}
	}
	fmt.Println()
	fmt.Printf("\n(S2(0) = phase fraction %.3f; the decay length is the lamella spacing)\n", s2[0])
}
