package solver

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/schedule"
)

func mkSched(t *testing.T, events ...schedule.Event) *schedule.Schedule {
	t.Helper()
	s, err := schedule.New(events...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestApplyBurstSeedsSolidSpheres(t *testing.T) {
	s := mkSim(t, 2, 1, 1, 8, 16, 24, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	burst := schedule.NucleationBurst{Step: 0, Count: 3, Phase: 1, Radius: 2.5, ZMin: 8, ZMax: 16, Seed: 4}
	n, err := s.ApplyBurst(burst)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("burst painted no cells")
	}
	fr := s.PhaseFractions()
	want := float64(n) / float64(s.GlobalCells())
	if math.Abs(fr[1]-want) > 1e-12 {
		t.Errorf("phase-1 fraction %g, want %g from %d painted cells", fr[1], want, n)
	}
	for _, a := range []int{0, 2} {
		if fr[a] != 0 {
			t.Errorf("pinned burst painted phase %d (fraction %g)", a, fr[a])
		}
	}
	// Painting must leave ghosts consistent: a step must not blow up.
	s.Run(1)
	if s.HasNaN() {
		t.Error("NaN after burst + step")
	}
}

func TestApplyBurstDeterministicAcrossDecompositions(t *testing.T) {
	burst := schedule.NucleationBurst{Step: 0, Count: 4, Phase: -1, Radius: 2, ZMin: 4, ZMax: 20, Seed: 9}
	single := mkSim(t, 1, 1, 1, 16, 16, 24, kernels.VarShortcut, OverlapNone)
	multi := mkSim(t, 2, 2, 1, 8, 8, 24, kernels.VarShortcut, OverlapNone)
	for _, s := range []*Sim{single, multi} {
		if err := s.InitScenario(ScenarioLiquid); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ApplyBurst(burst); err != nil {
			t.Fatal(err)
		}
	}
	a := single.GatherGlobalPhi()
	b := multi.GatherGlobalPhi()
	if ok, maxd := a.InteriorEqual(b, 0); !ok {
		t.Errorf("burst depends on decomposition (maxd %g)", maxd)
	}
}

func TestApplyBurstSparesExistingGrains(t *testing.T) {
	s := mkSim(t, 1, 1, 1, 12, 12, 16, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioSolid); err != nil {
		t.Fatal(err)
	}
	before := s.PhaseFractions()
	if _, err := s.ApplyBurst(schedule.NucleationBurst{
		Step: 0, Count: 5, Phase: 1, Radius: 3, ZMin: 0, ZMax: 16, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after := s.PhaseFractions()
	if before != after {
		t.Errorf("burst overwrote solid cells: %v -> %v", before, after)
	}
}

func TestApplyBurstWindowAware(t *testing.T) {
	// After the window scrolls by k cells, a lab-frame burst at height z
	// must land at window height z-k.
	burst := schedule.NucleationBurst{Step: 0, Count: 2, Phase: 0, Radius: 2, ZMin: 12, ZMax: 18, Seed: 3}

	ref := mkSim(t, 1, 1, 1, 12, 12, 24, kernels.VarShortcut, OverlapNone)
	if err := ref.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ApplyBurst(burst); err != nil {
		t.Fatal(err)
	}

	shifted := mkSim(t, 1, 1, 1, 12, 12, 24, kernels.VarShortcut, OverlapNone)
	if err := shifted.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	shifted.ShiftWindow(4)
	if _, err := shifted.ApplyBurst(burst); err != nil {
		t.Fatal(err)
	}

	a, b := ref.GatherGlobalPhi(), shifted.GatherGlobalPhi()
	mismatch := 0
	for z := 0; z < 24-4; z++ {
		for y := 0; y < 12; y++ {
			for x := 0; x < 12; x++ {
				for c := 0; c < core.NPhases; c++ {
					if a.At(c, x, y, z+4) != b.At(c, x, y, z) {
						mismatch++
					}
				}
			}
		}
	}
	if mismatch != 0 {
		t.Errorf("burst not window-aware: %d mismatched cells after 4-cell shift", mismatch)
	}
}

func TestRampKeepsTemperatureContinuous(t *testing.T) {
	s := mkSim(t, 1, 1, 1, 6, 6, 12, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	p := s.Cfg.Params
	// Temperature profile right before the velocity change.
	before := make([]float64, 12)
	for z := range before {
		before[z] = p.Temp.At(z, p.Dx, s.time)
	}
	if err := s.applyRamp(schedule.Ramp{
		Param: schedule.ParamPullVelocity, Step: 0, Over: 1, From: p.Temp.V, To: 5 * p.Temp.V}); err != nil {
		t.Fatal(err)
	}
	for z := range before {
		after := p.Temp.At(z, p.Dx, s.time)
		if math.Abs(after-before[z]) > 1e-12 {
			t.Fatalf("T(z=%d) jumped %g -> %g at velocity change", z, before[z], after)
		}
	}
	// But the isotherm now moves faster: after Δt the profile must have
	// dropped 5× as fast as before.
	if math.Abs(p.Temp.DTdt()-(-p.Temp.G*p.Temp.V)) > 1e-15 {
		t.Error("DTdt inconsistent after ramp")
	}
}

func TestRampDtRejectsUnstable(t *testing.T) {
	s := mkSim(t, 1, 1, 1, 6, 6, 6, kernels.VarShortcut, OverlapNone)
	bad := schedule.Ramp{Param: schedule.ParamDt, Step: 0, Over: 1,
		From: 10 * s.Cfg.Params.StableDt(), To: 10 * s.Cfg.Params.StableDt()}
	if err := s.applyRamp(bad); err == nil {
		t.Error("unstable dt accepted")
	}
}

func TestRunScheduleMatchesManualApplication(t *testing.T) {
	// A scheduled run must equal the same events applied by hand at the
	// same step boundaries — RunSchedule adds bookkeeping, not physics.
	sched := mkSched(t,
		schedule.Ramp{Param: schedule.ParamPullVelocity, Step: 0, Over: 8, From: 0.02, To: 0.05},
		schedule.NucleationBurst{Step: 3, Count: 2, Phase: 0, Radius: 2, ZMin: 10, ZMax: 14, Seed: 6},
		schedule.SwitchVariant{Step: 6, Phi: schedule.KeepVariant, Mu: kernels.VarStag, Strategy: schedule.StrategyKeep},
	)

	auto := mkSim(t, 1, 1, 1, 10, 10, 16, kernels.VarShortcut, OverlapNone)
	manual := mkSim(t, 1, 1, 1, 10, 10, 16, kernels.VarShortcut, OverlapNone)
	for _, s := range []*Sim{auto, manual} {
		if err := s.InitScenario(ScenarioInterface); err != nil {
			t.Fatal(err)
		}
	}

	if err := auto.RunSchedule(10, sched, ScheduleHooks{}); err != nil {
		t.Fatal(err)
	}

	ramp := sched.Ramps()[0]
	for step := 0; step < 10; step++ {
		if step == 3 {
			if _, err := manual.ApplyBurst(sched.OneShots()[0].(schedule.NucleationBurst)); err != nil {
				t.Fatal(err)
			}
		}
		if step == 6 {
			if err := manual.SetKernels(kernels.VarShortcut, kernels.VarStag); err != nil {
				t.Fatal(err)
			}
		}
		if err := manual.applyRamp(ramp); err != nil {
			t.Fatal(err)
		}
		manual.Run(1)
	}

	a, b := auto.GatherGlobalPhi(), manual.GatherGlobalPhi()
	if ok, maxd := a.InteriorEqual(b, 0); !ok {
		t.Errorf("scheduled φ differs from manual by %g", maxd)
	}
	am, bm := auto.GatherGlobalMu(), manual.GatherGlobalMu()
	if ok, maxd := am.InteriorEqual(bm, 0); !ok {
		t.Errorf("scheduled µ differs from manual by %g", maxd)
	}
	if auto.SchedulePos() != 2 {
		t.Errorf("schedule position %d after both one-shots", auto.SchedulePos())
	}
}

func TestRunScheduleCheckpointCadence(t *testing.T) {
	s := mkSim(t, 1, 1, 1, 6, 6, 8, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	sched := mkSched(t, schedule.Checkpoint{Every: 3, Path: "tmpl-%d"})
	var got []int
	hooks := ScheduleHooks{WriteCheckpoint: func(tmpl string, step int) error {
		if tmpl != "tmpl-%d" {
			t.Errorf("template %q", tmpl)
		}
		got = append(got, step)
		return nil
	}}
	if err := s.RunSchedule(10, sched, hooks); err != nil {
		t.Fatal(err)
	}
	want := []int{3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("checkpoints at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoints at %v, want %v", got, want)
		}
	}
}

// The cross-variant switching satellite: stepping k steps with variant A
// and switching to variant B mid-run via the schedule must equal running
// A for k steps and re-initializing with B from that state — proving
// restart-time variant switching is sound (the switch itself adds no
// physics; only kernel reassociation noise distinguishes A and B).
func TestScheduledSwitchEqualsRestartWithB(t *testing.T) {
	const k, n = 4, 10
	varA, varB := kernels.VarTz, kernels.VarShortcut

	switched := mkSim(t, 2, 1, 1, 6, 12, 12, varA, OverlapNone)
	if err := switched.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	sched := mkSched(t, schedule.SwitchVariant{Step: k, Phi: varB, Mu: varB, Strategy: schedule.StrategyKeep})
	if err := switched.RunSchedule(n, sched, ScheduleHooks{}); err != nil {
		t.Fatal(err)
	}
	phiA, muA, _, _ := switched.Kernels()
	if phiA != varB || muA != varB {
		t.Fatalf("switch did not take: %v/%v", phiA, muA)
	}

	// Reference: run A for k steps, transplant the state into a fresh
	// simulation configured with B (the in-memory analogue of a
	// checkpoint restart with a variant override), continue n-k steps.
	pre := mkSim(t, 2, 1, 1, 6, 12, 12, varA, OverlapNone)
	if err := pre.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	pre.Run(k)
	fields := make([]*kernels.Fields, pre.NumRanks())
	for r := range fields {
		fields[r] = pre.RankFields(r).Clone()
	}
	restart := mkSim(t, 2, 1, 1, 6, 12, 12, varB, OverlapNone)
	if err := restart.RestoreState(pre.StepCount(), pre.Time(), pre.WindowShift(), fields); err != nil {
		t.Fatal(err)
	}
	restart.Run(n - k)

	a, b := switched.GatherGlobalPhi(), restart.GatherGlobalPhi()
	if ok, maxd := a.InteriorEqual(b, 0); !ok {
		t.Errorf("scheduled switch differs from restart-with-B by %g", maxd)
	}
	am, bm := switched.GatherGlobalMu(), restart.GatherGlobalMu()
	if ok, maxd := am.InteriorEqual(bm, 0); !ok {
		t.Errorf("µ after scheduled switch differs from restart-with-B by %g", maxd)
	}
}

func TestMuNormDeterministicAndPositive(t *testing.T) {
	s := mkSim(t, 2, 1, 1, 6, 12, 12, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	n1, n2 := s.MuNorm(), s.MuNorm()
	if n1 != n2 {
		t.Error("MuNorm not deterministic")
	}
	if !(n1 > 0) || math.IsNaN(n1) {
		t.Errorf("MuNorm = %g", n1)
	}
}

// A scheduled SetBC event must change the live wall state — visible through
// DomainBCs and in the trajectory — without disturbing ghost consistency.
func TestSetBCAppliesLiveWall(t *testing.T) {
	const n = 6
	ev := schedule.SetBC{Step: 1, Over: 4, Face: grid.ZMin, Field: schedule.BCMu,
		Kind: grid.BCDirichlet, From: []float64{0, 0}, To: []float64{0.4, -0.2}}

	withBC := mkSim(t, 1, 1, 1, 10, 10, 14, kernels.VarShortcut, OverlapNone)
	without := mkSim(t, 1, 1, 1, 10, 10, 14, kernels.VarShortcut, OverlapNone)
	for _, s := range []*Sim{withBC, without} {
		if err := s.InitScenario(ScenarioInterface); err != nil {
			t.Fatal(err)
		}
	}
	if err := withBC.RunSchedule(n, mkSched(t, ev), ScheduleHooks{}); err != nil {
		t.Fatal(err)
	}
	without.Run(n)

	_, mu := withBC.DomainBCs()
	if mu[grid.ZMin].Kind != grid.BCDirichlet {
		t.Fatalf("bottom µ BC kind %v", mu[grid.ZMin].Kind)
	}
	// The last application ran before the final step, at step index n-1.
	var buf [kernels.NP]float64
	want := ev.ValuesAt(n-1, buf[:])
	for i := range want {
		if mu[grid.ZMin].Values[i] != want[i] {
			t.Errorf("wall value %d: %g, want %g", i, mu[grid.ZMin].Values[i], want[i])
		}
	}
	if withBC.HasNaN() {
		t.Fatal("NaN after BC ramp")
	}
	a, b := withBC.GatherGlobalMu(), without.GatherGlobalMu()
	if ok, _ := a.InteriorEqual(b, 0); ok {
		t.Error("BC ramp had no effect on the trajectory")
	}
}

// Mid-BC-ramp restart, in-memory (double precision): transplanting the
// fields and BC state at step k and continuing under the same schedule must
// be bitwise identical to the uninterrupted run — the discrete analogue of
// the V3-checkpoint guarantee, without the float32 round trip.
func TestSetBCMidRampRestartBitwise(t *testing.T) {
	const k, n = 3, 8
	sched := mkSched(t,
		schedule.Ramp{Param: schedule.ParamPullVelocity, Step: 0, Over: 6, From: 0.02, To: 0.05},
		schedule.SetBC{Step: 1, Over: 5, Face: grid.ZMin, Field: schedule.BCMu,
			Kind: grid.BCDirichlet, From: []float64{0, 0}, To: []float64{0.3, -0.1}},
		schedule.SetBC{Step: 2, Face: grid.ZMax, Field: schedule.BCPhi,
			Kind: grid.BCDirichlet, To: []float64{0, 0, 0, 1}})

	full := mkSim(t, 2, 1, 1, 6, 12, 14, kernels.VarStag, OverlapMu)
	if err := full.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	if err := full.RunSchedule(n, sched, ScheduleHooks{}); err != nil {
		t.Fatal(err)
	}

	pre := mkSim(t, 2, 1, 1, 6, 12, 14, kernels.VarStag, OverlapMu)
	if err := pre.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	if err := pre.RunSchedule(k, sched, ScheduleHooks{}); err != nil {
		t.Fatal(err)
	}
	pre.Sync()
	fields := make([]*kernels.Fields, pre.NumRanks())
	for r := range fields {
		fields[r] = pre.RankFields(r).Clone()
	}

	restart := mkSim(t, 2, 1, 1, 6, 12, 14, kernels.VarStag, OverlapMu)
	// Mirror the checkpoint-restore order: BC state first, so the ghost
	// rebuild in RestoreState already uses the mid-ramp wall values.
	phiBCs, muBCs := pre.DomainBCs()
	if err := restart.SetDomainBCs(phiBCs, muBCs); err != nil {
		t.Fatal(err)
	}
	if err := restart.RestoreState(pre.StepCount(), pre.Time(), pre.WindowShift(), fields); err != nil {
		t.Fatal(err)
	}
	restart.Cfg.Params.Dt = pre.Cfg.Params.Dt
	restart.Cfg.Params.Temp = pre.Cfg.Params.Temp
	if err := restart.RunSchedule(n-k, sched, ScheduleHooks{}); err != nil {
		t.Fatal(err)
	}

	if ok, maxd := full.GatherGlobalPhi().InteriorEqual(restart.GatherGlobalPhi(), 0); !ok {
		t.Errorf("φ diverged %g across mid-BC-ramp restart", maxd)
	}
	if ok, maxd := full.GatherGlobalMu().InteriorEqual(restart.GatherGlobalMu(), 0); !ok {
		t.Errorf("µ diverged %g across mid-BC-ramp restart", maxd)
	}
}

// SetBC changing a single face of a comm-periodic decomposed axis leaves
// the axis mixed-periodic (µ still wraps while φ wants a wall) — rejected,
// not silently ignored. Complete flips are legal; see bctopology_test.go.
func TestSetBCRejectsPeriodicAxisFace(t *testing.T) {
	s := mkSim(t, 2, 1, 1, 6, 8, 10, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	sched := mkSched(t, schedule.SetBC{Step: 0, Face: grid.XMin, Field: schedule.BCMu, Kind: grid.BCNeumann})
	if err := s.RunSchedule(1, sched, ScheduleHooks{}); err == nil {
		t.Error("setbc on a comm-periodic axis accepted")
	}
}

// A later SetBC legally overriding an earlier settled one: only the latest
// due event per (face, field) applies each step, so the wall ends in the
// override's state and stays there (no per-step kind flapping between the
// two prescriptions).
func TestSetBCLaterEventOverridesSettledOne(t *testing.T) {
	sched := mkSched(t,
		schedule.SetBC{Step: 1, Over: 3, Face: grid.ZMin, Field: schedule.BCMu,
			Kind: grid.BCDirichlet, From: []float64{0, 0}, To: []float64{0.2, -0.1}},
		schedule.SetBC{Step: 6, Face: grid.ZMin, Field: schedule.BCMu, Kind: grid.BCNeumann})
	s := mkSim(t, 1, 1, 1, 8, 8, 12, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	// After 5 steps the last BC application ran at step index 4 = Step+Over,
	// so the ramp has settled at To.
	if err := s.RunSchedule(5, sched, ScheduleHooks{}); err != nil {
		t.Fatal(err)
	}
	_, mu := s.DomainBCs()
	if mu[grid.ZMin].Kind != grid.BCDirichlet || mu[grid.ZMin].Values[0] != 0.2 {
		t.Fatalf("mid-run wall %+v, want settled Dirichlet ramp", mu[grid.ZMin])
	}
	if err := s.RunSchedule(5, sched, ScheduleHooks{}); err != nil {
		t.Fatal(err)
	}
	_, mu = s.DomainBCs()
	if mu[grid.ZMin].Kind != grid.BCNeumann {
		t.Fatalf("override did not take: %+v", mu[grid.ZMin])
	}
	if s.HasNaN() {
		t.Error("NaN after BC override")
	}
}

// An impossible setbc face must abort before any step runs, not at the
// event's fire step deep into a production run.
func TestSetBCPeriodicAxisFailsFast(t *testing.T) {
	s := mkSim(t, 2, 1, 1, 6, 8, 10, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	sched := mkSched(t, schedule.SetBC{Step: 5000, Face: grid.XMin, Field: schedule.BCMu, Kind: grid.BCNeumann})
	if err := s.RunSchedule(1, sched, ScheduleHooks{}); err == nil {
		t.Error("far-future setbc on a comm-periodic axis not rejected at entry")
	}
	if s.StepCount() != 0 {
		t.Errorf("ran %d steps before rejecting", s.StepCount())
	}
}

// All four overlap modes must produce identical physics even while a SetBC
// ramp is rewriting wall values between steps: the step-start re-fill pins
// the wall state every sweep sees, regardless of when each mode exchanges
// ghosts.
func TestOverlapModesEquivalentUnderSetBC(t *testing.T) {
	sched := func() *schedule.Schedule {
		return mkSched(t,
			schedule.SetBC{Step: 1, Over: 6, Face: grid.ZMin, Field: schedule.BCMu,
				Kind: grid.BCDirichlet, From: []float64{0, 0}, To: []float64{0.4, -0.2}},
			schedule.SetBC{Step: 3, Face: grid.ZMax, Field: schedule.BCPhi,
				Kind: grid.BCDirichlet, To: []float64{0, 0, 0, 1}})
	}
	run := func(mode OverlapMode) *Sim {
		s := mkSim(t, 2, 2, 1, 5, 5, 14, kernels.VarShortcut, mode)
		if err := s.InitScenario(ScenarioInterface); err != nil {
			t.Fatal(err)
		}
		if err := s.RunSchedule(8, sched(), ScheduleHooks{}); err != nil {
			t.Fatal(err)
		}
		s.Sync()
		return s
	}
	ref := run(OverlapNone)
	refPhi, refMu := ref.GatherGlobalPhi(), ref.GatherGlobalMu()
	for _, mode := range []OverlapMode{OverlapMu, OverlapPhi, OverlapBoth} {
		s := run(mode)
		if ok, maxd := s.GatherGlobalPhi().InteriorEqual(refPhi, 1e-12); !ok {
			t.Errorf("%v: φ differs by %g under BC ramp", mode, maxd)
		}
		if ok, maxd := s.GatherGlobalMu().InteriorEqual(refMu, 1e-12); !ok {
			t.Errorf("%v: µ differs by %g under BC ramp", mode, maxd)
		}
	}
}

// A scheduled periodic wall on one field of a decomposed axis leaves the
// axis mixed-periodic (the comm-layer wrap is shared by both fields) —
// reject it instead of silently copying the midplane into the wall. On an
// undecomposed, non-periodic axis the per-field block-local wrap is valid.
func TestSetBCRejectsPeriodicKindOnDecomposedAxis(t *testing.T) {
	s := mkSim(t, 1, 1, 2, 8, 8, 6, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	sched := mkSched(t, schedule.SetBC{Step: 0, Face: grid.ZMin, Field: schedule.BCMu, Kind: grid.BCPeriodic})
	if err := s.RunSchedule(1, sched, ScheduleHooks{}); err == nil {
		t.Error("periodic wall on a z-decomposed axis accepted")
	}
	// On an undecomposed axis the block-local wrap is valid.
	ok := mkSim(t, 2, 1, 1, 6, 8, 10, kernels.VarShortcut, OverlapNone)
	if err := ok.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	okSched := mkSched(t,
		schedule.SetBC{Step: 0, Face: grid.ZMin, Field: schedule.BCMu, Kind: grid.BCPeriodic},
		schedule.SetBC{Step: 0, Face: grid.ZMax, Field: schedule.BCMu, Kind: grid.BCPeriodic})
	if err := ok.RunSchedule(1, okSched, ScheduleHooks{}); err != nil {
		t.Errorf("periodic wall on an undecomposed axis rejected: %v", err)
	}
}
