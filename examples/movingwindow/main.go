// Movingwindow: a long directional run using the moving-window technique
// (§3.3, Fig. 2): the computational domain tracks only the solidification
// front — solidified material scrolls out through the bottom, fresh melt
// enters at the top, and the frozen temperature gradient keeps moving in
// the lab frame. This is what lets the paper's production runs simulate
// effectively unbounded growth lengths with a fixed memory footprint. The
// example also writes periodic interface meshes, exercising the full
// extract-simplify pipeline on the fly.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/mesh"
)

func main() {
	cfg := phasefield.DefaultConfig(32, 32, 48)
	cfg.MovingWindow = true
	cfg.WindowFraction = 0.18 // shift as soon as the front passes z~9
	cfg.TempGradient = 0.01   // strong gradient: fast, well-confined growth
	cfg.IsothermZ0 = 24
	cfg.Seed = 3
	sim, err := phasefield.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.InitProduction(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("running with the moving window (front held inside the domain)...")
	const nz = 48
	for i := 0; i < 8; i++ {
		sim.Run(100)
		fmt.Printf("step %5d  front z=%-3d of %d  solid=%.3f  active=%.2f  window advanced by %d cells\n",
			sim.Step(), sim.FrontHeight(), nz, sim.SolidFraction(), sim.ActiveFraction(), sim.WindowShift())
	}

	// Final interface mesh of the first solid phase, simplified.
	meshes := sim.ExtractInterfaces()
	m := meshes[0]
	before := m.NumTris()
	if before > 4000 {
		mesh.Simplify(m, mesh.SimplifyOptions{TargetTris: 4000})
	}
	f, err := os.Create("window_interface.stl")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := m.WriteSTL(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote window_interface.stl (%d -> %d triangles)\n", before, m.NumTris())
}
