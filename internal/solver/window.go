package solver

import (
	"repro/internal/comm"
	"repro/internal/core"
)

// The moving-window technique (§3.3, Fig. 2): since the evolution in the
// solid is orders of magnitude slower than in the liquid, the domain only
// needs to track the solidification front. When the front climbs past a
// trigger height, all fields are scrolled down in z — solidified material
// leaves through the bottom, fresh melt enters at the top — and the window
// offset is added to the analytic temperature's z coordinate so the frozen
// gradient keeps moving with the lab frame.

// FrontHeight returns the highest global z index (within the window) whose
// slice still contains solid, or -1 for an all-liquid domain. The top-down
// scan consults the activity tracker's per-slice classification when it is
// current: a slept slice is a known pure phase — liquid is skipped without
// touching a cell, solid ends the scan immediately. Only awake (interface)
// slices pay the cell scan, and nothing is allocated, so the per-step
// moving-window trigger check is free in the steady state where the bulk
// of the domain sleeps.
func (s *Sim) FrontHeight() int {
	best := -1
	for _, r := range s.ranks {
		if r.zOff+r.fields.PhiSrc.NZ-1 <= best {
			continue // cannot beat a front already found below this block
		}
		if top := frontTop(r); top >= 0 && r.zOff+top > best {
			best = r.zOff + top
		}
	}
	if s.World.NumProcs() > 1 {
		// Collective: the window-shift decision must agree on every
		// process (small integers, so the float max is exact).
		v := []float64{float64(best)}
		s.World.GlobalMax(v)
		best = int(v[0])
	}
	return best
}

// frontTop returns the highest local slice of rank r containing solid, or
// -1. Slept slices are trusted from the classification (their data is
// unchanged since it was taken); awake slices are scanned cell-wise.
func frontTop(r *rank) int {
	f := r.fields.PhiSrc
	a := &r.act
	for z := f.NZ - 1; z >= 0; z-- {
		if a.valid && a.phiSleep[z] {
			if a.vertex[z+1] != core.Liquid {
				return z // a pure solid slice: the front is at or above here
			}
			continue // pure melt: nothing to scan
		}
		for y := 0; y < f.NY; y++ {
			for x := 0; x < f.NX; x++ {
				solid := 0.0
				for p := 0; p < core.NPhases-1; p++ {
					solid += f.At(p, x, y, z)
				}
				if solid > 0.5 {
					return z
				}
			}
		}
	}
	return -1
}

// maybeShiftWindow checks the front position and scrolls the window when it
// exceeds the trigger fraction of the domain height.
func (s *Sim) maybeShiftWindow() {
	_, _, nz := s.Cfg.BG.GlobalCells()
	trigger := int(s.Cfg.WindowFrontFraction * float64(nz))
	front := s.FrontHeight()
	if front < trigger {
		return
	}
	shift := front - trigger + 1
	s.ShiftWindow(shift)
}

// ShiftWindow scrolls all fields down by `cells` in z, filling the top with
// fresh melt at the eutectic chemical potential, and advances the window
// offset so the temperature field stays in the lab frame.
func (s *Sim) ShiftWindow(cells int) {
	if cells <= 0 {
		return
	}
	liquidFill := make([]float64, core.NPhases)
	liquidFill[core.Liquid] = 1
	muFill := []float64{0, 0}

	s.forAllRanks(func(r *rank) {
		r.fields.PhiSrc.ShiftZDown(cells, liquidFill)
		r.fields.MuSrc.ShiftZDown(cells, muFill)
		// Destination fields are overwritten each sweep; only ∂φ/∂t
		// consumers need consistent φdst, which the next φ-sweep
		// rewrites before the µ-sweep reads it.
		r.fields.PhiDst.ShiftZDown(cells, liquidFill)
		r.fields.MuDst.ShiftZDown(cells, muFill)
	})
	s.windowShift += cells

	// Every slice now holds different material (and a different analytic
	// temperature): the activity map is re-derived next step, and the
	// halo-skip history must not bridge the scroll.
	s.invalidateActivity()

	// Ghost layers are stale after the shift.
	s.forAllRanks(func(r *rank) {
		s.World.ExchangeGhosts(r.id, r.fields.PhiSrc, comm.TagPhi, r.phiBCs)
		s.World.ExchangeGhosts(r.id, r.fields.MuSrc, comm.TagMu, r.muBCs)
	})
}
