// Package ckpt implements checkpointing (§3.2): the complete simulation
// state — four φ values and two µ values per cell — is written to disk in
// single precision ("checkpoints use only single precision to save disk
// space and I/O bandwidth" while all computation is double precision), with
// a versioned header carrying the decomposition and time-stepping state
// needed for restart.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/grid"
	"repro/internal/kernels"
)

// Magic identifies checkpoint files; Version the current header layout.
// Older files remain readable: version-1 (fixed-parameter runs) and
// version-2 (schedule state, no BC state) headers are upgraded on read with
// the missing extension fields marked unspecified. Version 4 shares the
// version-3 header layout but stores the fields in full double precision —
// the lossless form the job daemon uses for preemption snapshots, where the
// resumed trajectory must be bit-identical to an uninterrupted run (a disk
// checkpoint keeps the paper's single-precision format).
const (
	Magic    = 0x50464350 // "PFCP"
	Version1 = 1
	Version2 = 2
	Version3 = 3
	Version4 = 4
	Version  = Version3
)

// Precision selects the on-disk field encoding.
type Precision int

const (
	// Float32 is the paper's disk format (§3.2): "checkpoints use only
	// single precision to save disk space and I/O bandwidth".
	Float32 Precision = iota
	// Float64 is the lossless preemption-snapshot format: save + restore
	// round-trips every field bit-exactly, so a preempted simulation
	// resumes bit-identical to one that was never interrupted.
	Float64
)

func (p Precision) String() string {
	if p == Float64 {
		return "float64"
	}
	return "float32"
}

// VariantUnspecified marks the kernel-state fields of headers read from
// version-1 files (the restart keeps its configured kernels).
const VariantUnspecified = -1

// BCUnspecified marks the per-face BC entries of headers read from version-1
// and version-2 files (the restart keeps its configured boundary set).
const BCUnspecified = -1

// MaxBCComps is the widest per-face Dirichlet payload the fixed-width BC
// entries can carry: the φ field prescribes one wall value per phase.
const MaxBCComps = kernels.NP

// FaceBC is the fixed-width wire form of one face's boundary condition.
// Kind is a grid.BCKind (or BCUnspecified on upgraded older headers); the
// first NVals entries of Vals are the Dirichlet wall values.
type FaceBC struct {
	Kind  int32
	NVals int32
	Vals  [MaxBCComps]float64
}

// Header describes a checkpoint. The version-2 extension carries the
// runtime state a fixed configuration cannot reproduce: the schedule
// position (one-shot events already fired), the active kernel selection
// (a restart may legally keep it or switch variants at the boundary), and
// the mutable process parameters (Δt, thermal gradient G, pull velocity V
// and the compensated isotherm offset Z0) so a run restarted mid-ramp
// resumes bit-compatibly. The version-3 extension adds the active per-face
// boundary conditions of both fields, so a run restarted mid-BC-ramp (a
// scheduled SetBC event) resumes with bit-identical wall state.
type Header struct {
	Step        int64
	Time        float64
	WindowShift int64
	PX, PY, PZ  int32 // decomposition
	BX, BY, BZ  int32 // block extents

	// Version 2 fields. On version-1 files the variants read as
	// VariantUnspecified and the parameters as NaN.
	SchedulePos int64
	PhiVariant  int32
	MuVariant   int32
	PhiStrategy int32 // pinned Fig. 5 φ strategy, VariantUnspecified = none
	Dt          float64
	TempG       float64
	TempV       float64
	TempZ0      float64

	// Version 3 fields: the live boundary condition of every block face
	// for the φ and µ fields. On older files every Kind reads as
	// BCUnspecified.
	PhiBC [grid.NumFaces]FaceBC
	MuBC  [grid.NumFaces]FaceBC
}

// headerV1 is the wire layout of version-1 headers.
type headerV1 struct {
	Step        int64
	Time        float64
	WindowShift int64
	PX, PY, PZ  int32
	BX, BY, BZ  int32
}

// headerV2 is the wire layout of version-2 headers (schedule state and
// mutable process parameters, no BC state).
type headerV2 struct {
	Step        int64
	Time        float64
	WindowShift int64
	PX, PY, PZ  int32
	BX, BY, BZ  int32
	SchedulePos int64
	PhiVariant  int32
	MuVariant   int32
	PhiStrategy int32
	Dt          float64
	TempG       float64
	TempV       float64
	TempZ0      float64
}

// unspecifiedBCs fills both BC arrays with BCUnspecified entries.
func unspecifiedBCs(h *Header) {
	for f := range h.PhiBC {
		h.PhiBC[f].Kind = BCUnspecified
		h.MuBC[f].Kind = BCUnspecified
	}
}

// upgrade lifts a version-2 header into the current layout.
func (h2 *headerV2) upgrade() Header {
	h := Header{
		Step: h2.Step, Time: h2.Time, WindowShift: h2.WindowShift,
		PX: h2.PX, PY: h2.PY, PZ: h2.PZ,
		BX: h2.BX, BY: h2.BY, BZ: h2.BZ,
		SchedulePos: h2.SchedulePos,
		PhiVariant:  h2.PhiVariant,
		MuVariant:   h2.MuVariant,
		PhiStrategy: h2.PhiStrategy,
		Dt:          h2.Dt,
		TempG:       h2.TempG,
		TempV:       h2.TempV,
		TempZ0:      h2.TempZ0,
	}
	unspecifiedBCs(&h)
	return h
}

// upgrade lifts a version-1 header into the current layout.
func (h1 *headerV1) upgrade() Header {
	h2 := headerV2{
		Step: h1.Step, Time: h1.Time, WindowShift: h1.WindowShift,
		PX: h1.PX, PY: h1.PY, PZ: h1.PZ,
		BX: h1.BX, BY: h1.BY, BZ: h1.BZ,
		SchedulePos: 0,
		PhiVariant:  VariantUnspecified,
		MuVariant:   VariantUnspecified,
		PhiStrategy: VariantUnspecified,
		Dt:          math.NaN(),
		TempG:       math.NaN(),
		TempV:       math.NaN(),
		TempZ0:      math.NaN(),
	}
	return h2.upgrade()
}

// EncodeBCs packs a boundary set into the header's fixed-width form.
func EncodeBCs(b grid.BoundarySet) [grid.NumFaces]FaceBC {
	var out [grid.NumFaces]FaceBC
	for f := grid.Face(0); f < grid.NumFaces; f++ {
		out[f].Kind = int32(b[f].Kind)
		out[f].NVals = int32(len(b[f].Values))
		copy(out[f].Vals[:], b[f].Values)
	}
	return out
}

// DecodeBCs unpacks header BC entries into a boundary set. ok is false when
// the entries are unspecified (file older than version 3) or malformed; the
// caller then keeps its configured boundary set.
func DecodeBCs(e [grid.NumFaces]FaceBC) (grid.BoundarySet, bool) {
	var out grid.BoundarySet
	for f := grid.Face(0); f < grid.NumFaces; f++ {
		if e[f].Kind < int32(grid.BCNone) || e[f].Kind > int32(grid.BCDirichlet) {
			return grid.BoundarySet{}, false
		}
		if e[f].NVals < 0 || e[f].NVals > MaxBCComps {
			return grid.BoundarySet{}, false
		}
		out[f].Kind = grid.BCKind(e[f].Kind)
		if e[f].NVals > 0 {
			out[f].Values = append([]float64(nil), e[f].Vals[:e[f].NVals]...)
		}
	}
	return out, true
}

// Write serializes the header and all ranks' source fields (interior only;
// ghosts are reconstructed on restart) in single precision.
func Write(w io.Writer, h Header, fields []*kernels.Fields) error {
	return WritePrecision(w, h, fields, Float32)
}

// WritePrecision serializes a checkpoint with the given field precision.
// Float32 emits the paper's version-3 disk format; Float64 emits a
// version-4 file whose fields round-trip bit-exactly (the preemption
// snapshot format of the job daemon).
func WritePrecision(w io.Writer, h Header, fields []*kernels.Fields, prec Precision) error {
	version := uint32(Version3)
	if prec == Float64 {
		version = Version4
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := binary.Write(bw, binary.LittleEndian, uint32(Magic)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, &h); err != nil {
		return err
	}
	if int(h.PX)*int(h.PY)*int(h.PZ) != len(fields) {
		return fmt.Errorf("ckpt: %d field bundles for a %dx%dx%d decomposition",
			len(fields), h.PX, h.PY, h.PZ)
	}
	for _, f := range fields {
		if err := writeField(bw, f.PhiSrc, prec); err != nil {
			return err
		}
		if err := writeField(bw, f.MuSrc, prec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeField(w io.Writer, f *grid.Field, prec Precision) error {
	if prec == Float64 {
		buf := make([]float64, f.NX*f.NComp)
		for z := 0; z < f.NZ; z++ {
			for y := 0; y < f.NY; y++ {
				i := 0
				for c := 0; c < f.NComp; c++ {
					for x := 0; x < f.NX; x++ {
						buf[i] = f.At(c, x, y, z)
						i++
					}
				}
				if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
					return err
				}
			}
		}
		return nil
	}
	buf := make([]float32, f.NX*f.NComp)
	for z := 0; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			i := 0
			for c := 0; c < f.NComp; c++ {
				for x := 0; x < f.NX; x++ {
					buf[i] = float32(f.At(c, x, y, z))
					i++
				}
			}
			if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Read deserializes a checkpoint into freshly allocated field bundles.
func Read(r io.Reader) (Header, []*kernels.Fields, error) {
	h, fields, _, err := ReadPrecision(r)
	return h, fields, err
}

// ReadPrecision is Read, additionally reporting the stored field precision
// (Float64 for version-4 files, Float32 otherwise). Rewriters that must
// preserve a file's fidelity — resharding in particular — use it to emit
// the same format they consumed.
func ReadPrecision(r io.Reader) (Header, []*kernels.Fields, Precision, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return Header{}, nil, Float32, err
	}
	if magic != Magic {
		return Header{}, nil, Float32, fmt.Errorf("ckpt: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return Header{}, nil, Float32, err
	}
	var h Header
	prec := Float32
	switch version {
	case Version1:
		var h1 headerV1
		if err := binary.Read(br, binary.LittleEndian, &h1); err != nil {
			return Header{}, nil, Float32, err
		}
		h = h1.upgrade()
	case Version2:
		var h2 headerV2
		if err := binary.Read(br, binary.LittleEndian, &h2); err != nil {
			return Header{}, nil, Float32, err
		}
		h = h2.upgrade()
	case Version3, Version4:
		if version == Version4 {
			prec = Float64
		}
		if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
			return Header{}, nil, prec, err
		}
		// A version-3/4 writer always emits well-formed BC entries; a
		// malformed one is corruption, not an older layout — failing
		// here keeps the unspecified-BC fallback exclusive to genuine
		// v1/v2 upgrades (a restart silently dropping checkpointed wall
		// state would diverge the trajectory).
		if _, ok := DecodeBCs(h.PhiBC); !ok {
			return Header{}, nil, Float32, fmt.Errorf("ckpt: corrupt φ boundary-condition state")
		}
		if _, ok := DecodeBCs(h.MuBC); !ok {
			return Header{}, nil, Float32, fmt.Errorf("ckpt: corrupt µ boundary-condition state")
		}
	default:
		return Header{}, nil, Float32, fmt.Errorf("ckpt: unsupported version %d", version)
	}
	if h.PX <= 0 || h.PY <= 0 || h.PZ <= 0 || h.BX <= 0 || h.BY <= 0 || h.BZ <= 0 {
		return Header{}, nil, Float32, fmt.Errorf("ckpt: corrupt header %+v", h)
	}
	n := int(h.PX) * int(h.PY) * int(h.PZ)
	fields := make([]*kernels.Fields, n)
	for i := 0; i < n; i++ {
		f := kernels.NewFields(int(h.BX), int(h.BY), int(h.BZ))
		if err := readField(br, f.PhiSrc, prec); err != nil {
			return h, nil, prec, err
		}
		if err := readField(br, f.MuSrc, prec); err != nil {
			return h, nil, prec, err
		}
		f.PhiDst.CopyFrom(f.PhiSrc)
		f.MuDst.CopyFrom(f.MuSrc)
		fields[i] = f
	}
	return h, fields, prec, nil
}

func readField(r io.Reader, f *grid.Field, prec Precision) error {
	if prec == Float64 {
		buf := make([]float64, f.NX*f.NComp)
		for z := 0; z < f.NZ; z++ {
			for y := 0; y < f.NY; y++ {
				if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
					return err
				}
				i := 0
				for c := 0; c < f.NComp; c++ {
					for x := 0; x < f.NX; x++ {
						f.Set(c, x, y, z, buf[i])
						i++
					}
				}
			}
		}
		return nil
	}
	buf := make([]float32, f.NX*f.NComp)
	for z := 0; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
				return err
			}
			i := 0
			for c := 0; c < f.NComp; c++ {
				for x := 0; x < f.NX; x++ {
					f.Set(c, x, y, z, float64(buf[i]))
					i++
				}
			}
		}
	}
	return nil
}

// SizeBytes returns the on-disk size of a single-precision checkpoint for
// the given decomposition: magic + version + header plus six
// single-precision values per cell. A Float64 (version-4) snapshot is twice
// the field payload.
func SizeBytes(px, py, pz, bx, by, bz int) int64 {
	cells := int64(px*py*pz) * int64(bx*by*bz)
	header := int64(8 + binary.Size(Header{}))
	return header + cells*(kernels.NP+kernels.NR)*4
}

// MaxRoundTripError returns the worst-case absolute error introduced by the
// double→single→double round trip for values of magnitude ≤ m.
func MaxRoundTripError(m float64) float64 {
	return m * math.Ldexp(1, -24) // half ulp of float32 at magnitude m, conservative
}
