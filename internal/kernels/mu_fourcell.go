package kernels

import (
	"repro/internal/grid"
	"repro/internal/simd"
)

// mu_fourcell.go implements the explicitly vectorized µ-kernel. As the
// paper notes, four-cell vectorization is "the only possible" strategy for
// this kernel: one SIMD lane per consecutive x-cell. The local source
// terms, susceptibility and diffusive face fluxes are evaluated lanewise;
// the anti-trapping current — dominated by data-dependent guards — is
// evaluated per staggered face (it can only be skipped when the shortcut
// condition holds for the whole group). The x-direction staggered faces are
// shared between lanes by a register rotate: the low faces of lanes 1–3 are
// the high faces of lanes 0–2.

// muSweepFourCell runs the vectorized µ-kernel over the z-slab [z0,z1).
// jatOnly passes fall back to the scalar kernel (the Algorithm-2 correction
// sweep is bandwidth-trivial).
func muSweepFourCell(ctx *Ctx, f *Fields, sc *Scratch, o muOpts, z0, z1 int) {
	if o.jatOnly {
		muSweepScalar(ctx, f, sc, o, z0, z1)
		return
	}
	p := ctx.P
	phiS, phiD := f.PhiSrc, f.PhiDst
	muS, muD := f.MuSrc, f.MuDst
	nx, ny := muS.NX, muS.NY
	if nx < 4 {
		muSweepScalar(ctx, f, sc, o, z0, z1)
		return
	}
	sc.ensure(nx, ny)

	st := muFaceState{ctx: ctx, f: f, o: o, invDx: 1 / p.Dx, invDt: 1 / p.Dt}
	for a := 0; a < NP; a++ {
		for k := 0; k < NR; k++ {
			st.dInvTwoA[k][a] = p.D[a] / (2 * p.Sys.Phases[a].A[k])
		}
	}

	dTdt := p.Temp.DTdt()
	var ts, tsPrev TempSlice
	st.ts = &ts
	st.tsPrev = &tsPrev

	sc.zValidMu = false
	for z := z0; z < z1; z++ {
		ts.Fill(p, ctx.ZOff+z, ctx.Time)
		tsPrev.Fill(p, ctx.ZOff+z-1, ctx.Time)
		st.zSlice = z
		for y := 0; y < ny; y++ {
			x0 := 0
			for ; x0+4 <= nx; x0 += 4 {
				muFourCellGroup(&st, phiS, phiD, muS, muD, sc, x0, y, z, dTdt, o)
			}
			// Remainder cells (nx mod 4) take the scalar path; the
			// x staggered buffer is not maintained across groups,
			// so it is disabled for them.
			for x := x0; x < nx; x++ {
				muCellUpdate(&st, sc, x, y, z, dTdt, o, false)
			}
		}
		sc.zValidMu = true
	}
}

// muFourCellGroup updates cells (x..x+3, y, z).
func muFourCellGroup(st *muFaceState, phiS, phiD, muS, muD *grid.Field, sc *Scratch,
	x, y, z int, dTdt float64, o muOpts) {

	p := st.ctx.P
	ts := st.ts
	if !o.tz {
		// Without the T(z) optimization the temperature-dependent
		// tables are rebuilt per group instead of per slice.
		var local TempSlice
		local.Fill(p, st.ctx.ZOff+z, st.ctx.Time)
		ts = &local
	}

	// Group-level shortcut: the anti-trapping machinery is skipped only
	// when no lane's neighborhood carries liquid.
	skipJat := false
	if o.shortcut {
		skipJat = true
		for i := 0; i < 4 && skipJat; i++ {
			if regionHasLiquid(phiS, x+i, y, z) {
				skipJat = false
			}
		}
	}

	// --- Staggered flux divergence -------------------------------------
	var div [NR]simd.Vec4

	// x axis: compute the four high faces; lanes 1..3 of the low faces
	// are a rotate of the high faces, lane 0 is computed explicitly.
	var hiX [NR]simd.Vec4
	for i := 0; i < 4; i++ {
		var fl [NR]float64
		st.totalFaceFlux(x+i, y, z, 0, skipJat, &fl)
		for k := 0; k < NR; k++ {
			hiX[k][i] = fl[k]
		}
	}
	var lo0 [NR]float64
	st.totalFaceFlux(x-1, y, z, 0, skipJat, &lo0)
	for k := 0; k < NR; k++ {
		loX := hiX[k].RotateR()
		loX[0] = lo0[k]
		div[k] = div[k].Add(hiX[k].Sub(loX).Scale(st.invDx))
	}

	// y and z axes: high faces lanewise; low faces from the staggered
	// buffers when available, else computed.
	for axis := 1; axis < 3; axis++ {
		var hi, lo [NR]simd.Vec4
		for i := 0; i < 4; i++ {
			var fl [NR]float64
			st.totalFaceFlux(x+i, y, z, axis, skipJat, &fl)
			for k := 0; k < NR; k++ {
				hi[k][i] = fl[k]
			}
		}
		for i := 0; i < 4; i++ {
			var fl [NR]float64
			got := false
			if o.stag {
				got = loadMuBuffer(sc, axis, x+i, y, &fl)
			}
			if !got {
				lx, ly, lz := x+i, y, z
				if axis == 1 {
					ly--
				} else {
					lz--
				}
				st.totalFaceFlux(lx, ly, lz, axis, skipJat, &fl)
			}
			for k := 0; k < NR; k++ {
				lo[k][i] = fl[k]
			}
		}
		for k := 0; k < NR; k++ {
			div[k] = div[k].Add(hi[k].Sub(lo[k]).Scale(st.invDx))
		}
		if o.stag {
			for i := 0; i < 4; i++ {
				var fl [NR]float64
				for k := 0; k < NR; k++ {
					fl[k] = hi[k][i]
				}
				storeMuBuffer(sc, axis, x+i, y, &fl)
			}
		}
	}

	// --- Local terms, lanewise ------------------------------------------
	// Interpolation weights of φ(t) and φ(t+Δt) per phase per lane.
	var wS, wD [NP]simd.Vec4
	var sumS, sumD simd.Vec4
	three := simd.Splat(3)
	for a := 0; a < NP; a++ {
		pc := simd.Set(phiS.At(a, x, y, z), phiS.At(a, x+1, y, z), phiS.At(a, x+2, y, z), phiS.At(a, x+3, y, z))
		pd := simd.Set(phiD.At(a, x, y, z), phiD.At(a, x+1, y, z), phiD.At(a, x+2, y, z), phiD.At(a, x+3, y, z))
		wS[a] = pc.Mul(pc).Mul(three.Sub(pc.Scale(2)))
		wD[a] = pd.Mul(pd).Mul(three.Sub(pd.Scale(2)))
		sumS = sumS.Add(wS[a])
		sumD = sumD.Add(wD[a])
	}
	var invS, invD simd.Vec4
	for l := 0; l < 4; l++ {
		if sumS[l] > 0 {
			invS[l] = 1 / sumS[l]
		} else {
			invS[l] = 0
		}
		if sumD[l] > 0 {
			invD[l] = 1 / sumD[l]
		} else {
			invD[l] = 0
		}
	}

	mu0 := simd.Set(muS.At(0, x, y, z), muS.At(0, x+1, y, z), muS.At(0, x+2, y, z), muS.At(0, x+3, y, z))
	mu1 := simd.Set(muS.At(1, x, y, z), muS.At(1, x+1, y, z), muS.At(1, x+2, y, z), muS.At(1, x+3, y, z))
	muV := [NR]simd.Vec4{mu0, mu1}

	var src, chi [NR]simd.Vec4
	for a := 0; a < NP; a++ {
		hS := wS[a].Mul(invS)
		hD := wD[a].Mul(invD)
		dh := hD.Sub(hS).Scale(st.invDt)
		for k := 0; k < NR; k++ {
			// c_α(µ,T) lanewise from the slice tables.
			ca := muV[k].Scale(ts.InvTwoA[k][a]).Add(simd.Splat(ts.C0T[k][a]))
			src[k] = src[k].Sub(ca.Mul(dh))
			chi[k] = chi[k].Add(hS.Scale(ts.InvTwoA[k][a]))
			src[k] = src[k].Sub(hS.Scale(ts.DC0dT[k][a] * dTdt))
		}
	}

	for k := 0; k < NR; k++ {
		upd := src[k].Add(div[k]).Scale(p.Dt).Div(chi[k]).Add(muV[k])
		for i := 0; i < 4; i++ {
			muD.Set(k, x+i, y, z, upd[i])
		}
	}
}
