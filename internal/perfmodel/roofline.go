// Package perfmodel reproduces the paper's performance analysis machinery:
// the roofline model of §5.1.1 (memory-bound ceiling, arithmetic intensity,
// fraction of peak), an IACA-style in-core port model explaining the
// add/multiply imbalance bound, and analytic machine/network models of the
// three supercomputers (SuperMUC, Hornet, JUQUEEN) used to regenerate the
// communication-time and weak-scaling figures. Extreme-scale hardware is
// unavailable here, so these models are calibrated against the paper's
// reported measurements; the local Go kernels anchor the relative scenario
// and variant factors.
package perfmodel

// KernelOpMix documents the per-cell floating-point operation mix of a
// kernel (from static inspection of the optimized kernels without
// shortcuts, where the count is exact; the µ totals match the paper's
// 1384 FLOP/LUP).
type KernelOpMix struct {
	Adds, Muls, Divs int
}

// Total returns the total FLOP count per lattice update.
func (k KernelOpMix) Total() int { return k.Adds + k.Muls + k.Divs }

// MuKernelOps is the µ-kernel mix: 1384 FLOP per cell update (§5.1.1),
// dominated by additions — the source of the add/mul port imbalance.
var MuKernelOps = KernelOpMix{Adds: 820, Muls: 526, Divs: 38}

// PhiKernelOps is the φ-kernel mix (no shortcuts).
var PhiKernelOps = KernelOpMix{Adds: 540, Muls: 390, Divs: 12}

// MuBytesPerLUP is the paper's traffic estimate for one µ-cell update under
// the half-reuse cache assumption: at most 680 bytes from main memory.
const MuBytesPerLUP = 680

// Roofline holds the two machine ceilings of the roofline model.
type Roofline struct {
	StreamBW     float64 // attainable memory bandwidth, bytes/s
	PeakFLOPs    float64 // peak floating-point rate, FLOP/s
	FLOPsPerByte float64 // machine balance = PeakFLOPs/StreamBW
}

// NewRoofline builds a roofline from STREAM bandwidth and peak FLOP rate.
func NewRoofline(streamBW, peakFLOPs float64) Roofline {
	return Roofline{StreamBW: streamBW, PeakFLOPs: peakFLOPs, FLOPsPerByte: peakFLOPs / streamBW}
}

// MemoryBoundMLUPs returns the bandwidth ceiling in MLUP/s for a kernel
// loading bytesPerLUP from main memory (the paper's 80 GiB/s / 680 B =
// 126.3 MLUP/s bound).
func (r Roofline) MemoryBoundMLUPs(bytesPerLUP float64) float64 {
	return r.StreamBW / bytesPerLUP / 1e6
}

// ComputeBoundMLUPs returns the in-core ceiling in MLUP/s for a kernel
// executing flopsPerLUP at the given fraction of peak.
func (r Roofline) ComputeBoundMLUPs(flopsPerLUP, fracPeak float64) float64 {
	return r.PeakFLOPs * fracPeak / flopsPerLUP / 1e6
}

// ArithmeticIntensity returns FLOP per byte.
func ArithmeticIntensity(flopsPerLUP, bytesPerLUP float64) float64 {
	return flopsPerLUP / bytesPerLUP
}

// IsComputeBound reports whether a kernel with the given intensity is
// limited by in-core execution rather than memory bandwidth on r.
func (r Roofline) IsComputeBound(intensity float64) bool {
	return intensity > r.FLOPsPerByte
}

// AchievedGFLOPs converts a measured MLUP/s rate into GFLOP/s.
func AchievedGFLOPs(mlups, flopsPerLUP float64) float64 {
	return mlups * 1e6 * flopsPerLUP / 1e9
}

// FractionOfPeak returns the fraction of peak FLOP rate achieved by a
// kernel running at mlups.
func FractionOfPeak(mlups, flopsPerLUP, peakFLOPs float64) float64 {
	return mlups * 1e6 * flopsPerLUP / peakFLOPs
}

// PortModel is the IACA-style in-core model: one SIMD add port and one SIMD
// multiply port (Sandy Bridge), DivCycles cycles of divider occupancy per
// vectorized division.
type PortModel struct {
	SIMDWidth int     // lanes per vector op
	DivCycles float64 // divider occupancy per vector division
}

// SandyBridge is the SuperMUC core model.
var SandyBridge = PortModel{SIMDWidth: 4, DivCycles: 20}

// PeakFraction returns the best attainable fraction of peak under ideal
// front-end and cache conditions for the given op mix: the imbalance
// between additions and multiplications leaves one port idle part of the
// time, and divisions serialize on the divider (the reasons the paper's
// IACA analysis caps the µ-kernel at 43% peak).
func (p PortModel) PeakFraction(mix KernelOpMix) float64 {
	w := float64(p.SIMDWidth)
	idealCycles := float64(mix.Adds+mix.Muls) / (2 * w)
	actualCycles := maxf(float64(mix.Adds), float64(mix.Muls))/w +
		float64(mix.Divs)/w*p.DivCycles
	if actualCycles <= 0 {
		return 1
	}
	return idealCycles / actualCycles
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
