// Package comm provides the distributed-memory communication substrate:
// the Go analogue of the MPI layer the paper's waLBerla implementation runs
// on. Each block owner ("rank") is a goroutine; ghost-layer exchange is a
// staged six-face halo swap whose three axis stages (x, then y including
// x-ghosts, then z including x- and y-ghosts) fill the complete ghost shell
// — faces, edges and corners — which is exactly the halo the µ-kernel's
// D3C19 stencil requires.
//
// Frame movement is delegated to a Transport: the in-process channel fabric
// (default) or the TCP transport, which lets one rank grid span OS
// processes and machines. The World keeps everything above the transport —
// pack/unpack, sleep tokens, persistent comm workers, statistics — so both
// paths share the protocol and its accounting.
//
// The package reproduces the structural properties that matter for the
// paper's system-level experiments: explicit pack/unpack into message
// buffers (whose cost cannot be hidden, §5.1.2), nonblocking start/finish
// pairs so communication can be overlapped with computation (Algorithm 2),
// and per-tag message streams so φ- and µ-exchanges in flight at the same
// time never interleave.
package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
)

// Tag distinguishes concurrently flowing message streams.
type Tag int

const (
	// TagPhi marks phase-field ghost exchanges.
	TagPhi Tag = iota
	// TagMu marks chemical-potential ghost exchanges.
	TagMu
	// TagAux is available for auxiliary fields.
	TagAux
	numTags
)

func (t Tag) String() string {
	switch t {
	case TagPhi:
		return "phi"
	case TagMu:
		return "mu"
	case TagAux:
		return "aux"
	}
	return fmt.Sprintf("Tag(%d)", int(t))
}

// Stats accumulates per-rank communication timing, the measurement behind
// the paper's Fig. 8 ("time spent in communication per timestep"). The
// semantics are transport-independent: Transfer is blocking time in the
// transport's send/receive (channel handoff or socket write/read), Bytes
// counts payload bytes moved (8 per float64), and Skipped counts face
// rounds replaced by a zero-length sleep token on either fabric.
type Stats struct {
	Pack     time.Duration // packing ghost data into message buffers
	Unpack   time.Duration // unpacking received buffers into ghost layers
	Transfer time.Duration // blocking time in transport send/receive
	Wait     time.Duration // time blocked in Finish() for overlapped exchanges
	Messages int
	Bytes    int
	// Skipped counts face rounds replaced by a zero-length sleep token
	// because the sender's pack region was marked quiet (SetQuietFaces):
	// the receiver's ghost bytes are provably identical already, so
	// nothing is packed, transferred or unpacked.
	Skipped int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Pack += other.Pack
	s.Unpack += other.Unpack
	s.Transfer += other.Transfer
	s.Wait += other.Wait
	s.Messages += other.Messages
	s.Bytes += other.Bytes
	s.Skipped += other.Skipped
}

// Total returns the total time attributed to communication.
func (s *Stats) Total() time.Duration { return s.Pack + s.Unpack + s.Transfer + s.Wait }

// World is the communicator for one block decomposition. All local ranks
// share the World; per-rank state is indexed by global rank id. With the
// default in-process transport every rank is local; with the TCP transport
// each process' World drives only the ranks it owns.
type World struct {
	BG *grid.BlockGrid

	// topo is the live connectivity: which blocks exchange across which
	// faces, and which axes wrap. Starts as the BlockGrid's construction
	// state; SetPeriodic mutates it at step boundaries (runtime SetBC
	// kind changes on decomposed axes).
	topo grid.Topology

	tr Transport

	local []int // global ids of ranks this process owns, ascending

	// workers are the per-rank comm workers executing overlapped
	// exchanges; pending[rank][tag] are the persistent completion handles
	// StartExchange hands out. Workers start lazily on first use so
	// blocking-only worlds spawn no goroutines.
	workers   []commWorker
	pending   [][]Pending
	closeOnce sync.Once
	// inflight counts overlapped-exchange requests accepted but not yet
	// completed; Close waits for it to drain so an in-flight round always
	// finishes (and its Finish returns) before the workers shut down.
	inflight sync.WaitGroup

	// quiet[rank][tag] is the one-shot quiet-face mask SetQuietFaces
	// stores for the next exchange of that (rank, tag) stream. Only the
	// rank's own goroutine and its comm worker touch an entry, and never
	// concurrently (the one-outstanding-per-(rank,tag) discipline orders
	// them through the request and completion channels).
	quiet [][][grid.NumFaces]bool

	stats [][]Stats // per-rank, per-tag accumulated stats
	// flows holds per-(rank, tag, face) frame/byte/sleep counters,
	// guarded by the same per-rank mutex as stats; latency holds the
	// per-(rank, tag) whole-exchange wall-time histograms (atomic, no
	// lock needed).
	flows   [][][grid.NumFaces]FlowCounters
	latency [][]obs.Histogram
	mu      []sync.Mutex

	barrier *barrier // counts local ranks; Barrier bridges processes

	reduceMu  sync.Mutex
	reduceBuf []float64
}

// NewWorld builds a communicator over the in-process channel fabric: every
// rank of the decomposition lives in this process.
func NewWorld(bg *grid.BlockGrid) *World {
	return NewWorldTransport(bg, nil)
}

// NewWorldTransport builds a communicator over an explicit transport (nil
// selects the in-process fabric). The World drives the ranks the transport
// assigns to this process; the halo protocol, sleep tokens and statistics
// are identical on every transport.
func NewWorldTransport(bg *grid.BlockGrid, tr Transport) *World {
	n := bg.NumBlocks()
	if tr == nil {
		tr = newLocalTransport(n)
	}
	w := &World{
		BG:      bg,
		topo:    grid.NewTopology(bg),
		tr:      tr,
		stats:   make([][]Stats, n),
		flows:   make([][][grid.NumFaces]FlowCounters, n),
		latency: make([][]obs.Histogram, n),
		mu:      make([]sync.Mutex, n),
	}
	for r := 0; r < n; r++ {
		if tr.Owner(r) == tr.Proc() {
			w.local = append(w.local, r)
		}
	}
	w.barrier = newBarrier(len(w.local))
	w.workers = make([]commWorker, n)
	w.pending = make([][]Pending, n)
	w.quiet = make([][][grid.NumFaces]bool, n)
	for r := 0; r < n; r++ {
		w.quiet[r] = make([][grid.NumFaces]bool, numTags)
		w.stats[r] = make([]Stats, numTags)
		w.flows[r] = make([][grid.NumFaces]FlowCounters, numTags)
		w.latency[r] = make([]obs.Histogram, numTags)
		// Request capacity covers one outstanding exchange per tag, so
		// StartExchange never blocks under the one-per-(rank,tag)
		// discipline.
		w.workers[r].req = make(chan exchangeReq, int(numTags))
		w.pending[r] = make([]Pending, numTags)
		for t := 0; t < int(numTags); t++ {
			w.pending[r][t] = Pending{done: make(chan struct{}, 1), w: w, rank: r, tag: Tag(t)}
		}
	}
	return w
}

// commWorker is one rank's persistent overlapped-exchange executor. The
// mutex makes the started/closed transitions atomic with request
// submission, so Close can never race a send on a closed channel.
type commWorker struct {
	mu      sync.Mutex
	started bool
	closed  bool
	req     chan exchangeReq
}

// submitExchange hands rq to rank's comm worker, starting the worker
// goroutine on first use. It reports false — without submitting — when the
// World is closed (or closing); the caller then runs the exchange inline.
// The send happens under the worker's mutex, which is safe because the
// request channel has one slot per tag and the one-outstanding-per-
// (rank, tag) discipline guarantees a free slot.
func (w *World) submitExchange(rank int, rq exchangeReq) bool {
	cw := &w.workers[rank]
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.closed {
		return false
	}
	if !cw.started {
		cw.started = true
		go w.runWorker(rank)
	}
	w.inflight.Add(1)
	cw.req <- rq
	return true
}

// runWorker is one rank's comm-worker loop. It exits when Close closes the
// request channel (after the in-flight count drained, so no request is
// ever abandoned).
func (w *World) runWorker(rank int) {
	cw := &w.workers[rank]
	for rq := range cw.req {
		w.ExchangeGhosts(rank, rq.f, rq.tag, rq.bcs)
		w.pending[rank][rq.tag].done <- struct{}{}
		w.inflight.Done()
	}
}

// Close releases the comm workers and then the transport. It is idempotent
// and safe to call concurrently with an in-flight overlapped exchange round
// (the job daemon cancels jobs from API goroutines): accepted exchanges
// complete — their Finish returns normally — before the workers shut down,
// and a StartExchange that loses the race to Close degrades to a blocking
// exchange on the caller's goroutine. Optional — a World whose owner is
// garbage collected releases the workers too (solver.Sim arranges that) —
// but deterministic for harnesses that build many worlds. On the in-process
// transport, blocking exchanges and reductions keep working after Close; on
// the TCP transport Close tears down the connections, so it must be the
// last collective act of the process.
func (w *World) Close() {
	w.closeOnce.Do(func() {
		// Phase 1: refuse new submissions. After this loop no
		// submitExchange can add to inflight (the check-and-add is
		// atomic under each worker's mutex).
		for r := range w.workers {
			cw := &w.workers[r]
			cw.mu.Lock()
			cw.closed = true
			cw.mu.Unlock()
		}
		// Phase 2: let accepted exchanges finish, then stop the workers.
		w.inflight.Wait()
		for r := range w.workers {
			close(w.workers[r].req)
		}
		_ = w.tr.Close()
	})
}

// NumRanks returns the number of ranks in the world (all processes).
func (w *World) NumRanks() int { return w.BG.NumBlocks() }

// Proc returns this process' index in the transport's process grid.
func (w *World) Proc() int { return w.tr.Proc() }

// NumProcs returns how many processes share the rank grid.
func (w *World) NumProcs() int { return w.tr.NumProcs() }

// IsRoot reports whether this is process 0, the process that writes
// checkpoints and gathers global fields.
func (w *World) IsRoot() bool { return w.tr.Proc() == 0 }

// Owner returns the process index owning a global rank.
func (w *World) Owner(rank int) int { return w.tr.Owner(rank) }

// LocalRanks returns the global ids of the ranks this process owns, in
// ascending order. The caller must not mutate the slice.
func (w *World) LocalRanks() []int { return w.local }

// Topology returns the live connectivity view.
func (w *World) Topology() grid.Topology { return w.topo }

// SetPeriodic flips one axis' wrap-around state: the runtime topology
// change behind SetBC kind changes on decomposed axes. Must be called at a
// step boundary, with no exchange in flight, symmetrically on every
// process (the schedule engine guarantees both).
func (w *World) SetPeriodic(axis int, periodic bool) {
	w.topo.Periodic[axis] = periodic
}

// BlockBCs derives rank r's per-face boundary conditions from the domain
// set under the live topology.
func (w *World) BlockBCs(r int, domain grid.BoundarySet) grid.BoundarySet {
	return w.topo.BlockBCs(r, domain)
}

// SetQuietFaces marks faces of rank's next exchange on tag as quiet: the
// caller asserts the pack region of each masked face is bitwise-unchanged
// since the bytes the receiving neighbor currently holds in its ghost
// layer. The very next exchange for (rank, tag) consumes the mask — it
// does not persist — and replaces each still-eligible masked round with a
// zero-length sleep token the receiver discards without unpacking. A
// masked face whose pack region was refreshed by a real unpack earlier in
// the same staged exchange is sent for real (the token is suppressed), so
// the staged corner/edge propagation stays exact. Must be called from the
// goroutine that initiates the exchange, before initiating it.
func (w *World) SetQuietFaces(rank int, tag Tag, mask [grid.NumFaces]bool) {
	w.quiet[rank][int(tag)] = mask
}

// takeQuiet consumes the one-shot quiet mask for (rank, tag).
func (w *World) takeQuiet(rank int, tag Tag) [grid.NumFaces]bool {
	m := w.quiet[rank][int(tag)]
	if m != ([grid.NumFaces]bool{}) {
		w.quiet[rank][int(tag)] = [grid.NumFaces]bool{}
	}
	return m
}

// PackAllocs returns how many pack buffers have been freshly allocated so
// far. In a steady-state run the count stops growing after the first
// timestep — the allocation-guard tests assert exactly that.
func (w *World) PackAllocs() int64 { return w.tr.Allocs() }

// RankStats returns the accumulated stats for rank r summed over all tags.
func (w *World) RankStats(r int) Stats {
	w.mu[r].Lock()
	defer w.mu[r].Unlock()
	var s Stats
	for t := range w.stats[r] {
		s.Add(w.stats[r][t])
	}
	return s
}

// RankTagStats returns the accumulated stats for rank r and one tag.
func (w *World) RankTagStats(r int, tag Tag) Stats {
	w.mu[r].Lock()
	defer w.mu[r].Unlock()
	return w.stats[r][tag]
}

// ResetStats zeroes all per-rank statistics, including the flow counters
// and exchange-latency histograms.
func (w *World) ResetStats() {
	for r := range w.stats {
		w.mu[r].Lock()
		for t := range w.stats[r] {
			w.stats[r][t] = Stats{}
			w.flows[r][t] = [grid.NumFaces]FlowCounters{}
		}
		w.mu[r].Unlock()
		for t := range w.latency[r] {
			w.latency[r][t].Reset()
		}
	}
}

func (w *World) addStats(r int, tag Tag, s Stats) {
	w.mu[r].Lock()
	w.stats[r][tag].Add(s)
	w.mu[r].Unlock()
}

// addStatsFlows folds one exchange's stats and per-face flow counters in
// under a single lock acquisition.
func (w *World) addStatsFlows(r int, tag Tag, s Stats, fc *[grid.NumFaces]FlowCounters) {
	w.mu[r].Lock()
	w.stats[r][tag].Add(s)
	for f := range fc {
		w.flows[r][tag][f].add(fc[f])
	}
	w.mu[r].Unlock()
}

// Barrier blocks until all ranks — across every process — have called it.
func (w *World) Barrier() {
	if w.barrier.await() {
		w.tr.Barrier()
	}
	w.barrier.await()
}

// GlobalSum adds vals elementwise across processes; every process receives
// the result. It is a process-level collective: exactly one goroutine per
// process calls it, in the same order on every process. Callers preserve
// bitwise determinism by giving each slot exactly one nonzero contributor
// (the per-global-rank vectors the solver's metrics use).
func (w *World) GlobalSum(vals []float64) { w.tr.Sum(vals) }

// GlobalMax computes the elementwise maximum across processes (same calling
// discipline as GlobalSum).
func (w *World) GlobalMax(vals []float64) { w.tr.Max(vals) }

// GatherBlocks collects per-global-rank payloads on process 0: each process
// fills parts[r] for its local ranks and passes the rest nil. The root
// returns the completed slice; every other process returns nil. Cold path —
// checkpoint writing and global field assembly.
func (w *World) GatherBlocks(parts [][]float64) [][]float64 { return w.tr.Gather(parts) }

// AllReduceSum sums vals elementwise across all ranks of all processes;
// every rank receives the result in vals. It must be called by all local
// ranks with equal lengths (and by every process' rank set collectively).
func (w *World) AllReduceSum(rank int, vals []float64) {
	w.reduceMu.Lock()
	if w.reduceBuf == nil {
		w.reduceBuf = make([]float64, len(vals))
	}
	for i, v := range vals {
		w.reduceBuf[i] += v
	}
	w.reduceMu.Unlock()

	if w.barrier.await() {
		// One local rank folds in the other processes' partial sums.
		w.tr.Sum(w.reduceBuf)
	}
	w.barrier.await()

	w.reduceMu.Lock()
	copy(vals, w.reduceBuf)
	w.reduceMu.Unlock()

	if w.barrier.await() {
		// One rank clears the buffer for the next reduction.
		w.reduceMu.Lock()
		w.reduceBuf = nil
		w.reduceMu.Unlock()
	}
	w.barrier.await()
}

// AllReduceMax computes the elementwise maximum across ranks of all
// processes.
func (w *World) AllReduceMax(rank int, vals []float64) {
	w.reduceMu.Lock()
	if w.reduceBuf == nil {
		w.reduceBuf = make([]float64, len(vals))
		copy(w.reduceBuf, vals)
	} else {
		for i, v := range vals {
			if v > w.reduceBuf[i] {
				w.reduceBuf[i] = v
			}
		}
	}
	w.reduceMu.Unlock()

	if w.barrier.await() {
		w.tr.Max(w.reduceBuf)
	}
	w.barrier.await()
	w.reduceMu.Lock()
	copy(vals, w.reduceBuf)
	w.reduceMu.Unlock()
	if w.barrier.await() {
		w.reduceMu.Lock()
		w.reduceBuf = nil
		w.reduceMu.Unlock()
	}
	w.barrier.await()
}

// barrier is a reusable counting barrier over the local ranks. await
// returns true for exactly one caller per generation (the last arriver),
// which bridges the process-level barrier/reduction before the others
// proceed past the next await.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() bool {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return false
}
