package grid

// Topology is the connectivity view of a block decomposition: which blocks
// neighbor which across each face, and which axes wrap around. It was
// historically baked into BlockGrid (the Periodic field is still the
// construction-time default), but connectivity is a property of the
// communication layer, not of the static block geometry: the schedule
// engine can turn a periodic axis into physical walls (and back) at run
// time, and the transport layer owns that mutable state. BlockGrid's
// Neighbor/BlockBCs methods delegate here with the construction-time
// periodicity, so existing callers keep their behavior.
type Topology struct {
	BG *BlockGrid
	// Periodic is the live per-axis wrap-around state. Mutating it is the
	// communicator's job (comm.World.SetPeriodic), only at step boundaries
	// when no exchange is in flight.
	Periodic [3]bool
}

// NewTopology returns the connectivity view of bg with its construction-time
// periodicity.
func NewTopology(bg *BlockGrid) Topology {
	return Topology{BG: bg, Periodic: bg.Periodic}
}

// Neighbor returns the rank adjacent to r across face, and whether such a
// neighbor exists. Across periodic axes the neighbor wraps; across
// non-periodic axes boundary faces have no neighbor (boundary conditions
// apply there instead). On a periodic axis with a single block the rank is
// its own neighbor — the local periodic boundary condition handles the wrap
// without messages.
func (t Topology) Neighbor(r int, face Face) (int, bool) {
	bg := t.BG
	bx, by, bz := bg.Coords(r)
	p := [3]int{bg.PX, bg.PY, bg.PZ}
	c := [3]int{bx, by, bz}
	ax := face.Axis()
	if face.IsMin() {
		c[ax]--
	} else {
		c[ax]++
	}
	if c[ax] < 0 || c[ax] >= p[ax] {
		if !t.Periodic[ax] {
			return -1, false
		}
		c[ax] = (c[ax] + p[ax]) % p[ax]
	}
	n := bg.Rank(c[0], c[1], c[2])
	if n == r && p[ax] == 1 {
		return r, true
	}
	return n, true
}

// BlockBCs derives the per-face boundary set for rank r from the domain
// boundary set: faces with a communication neighbor get BCNone (their ghost
// layers are filled by halo exchange), except single-block periodic axes
// which keep the local periodic condition.
func (t Topology) BlockBCs(r int, domain BoundarySet) BoundarySet {
	var out BoundarySet
	for f := Face(0); f < NumFaces; f++ {
		n, ok := t.Neighbor(r, f)
		switch {
		case !ok:
			out[f] = domain[f] // physical boundary
		case n == r:
			out[f] = BC{Kind: BCPeriodic} // single-block periodic axis
		default:
			out[f] = BC{Kind: BCNone} // interior: halo exchange
		}
	}
	return out
}
