package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// gc_test.go — retention GC invariants: a blob referenced by any live
// manifest is never evicted (including blobs shared across manifests by
// content-address dedup), quota eviction goes oldest-first, age eviction
// respects the cutoff, and GC racing concurrent Reserve-bracketed spills
// never reclaims a spill in flight (run under -race in CI).

// gcManifestDoc is a minimal manifest shape carrying content addresses,
// mirroring how jobManifest stores them (plain string fields — the GC
// refcount walks by shape, not schema).
type gcManifestDoc struct {
	ID     string   `json:"id"`
	Result string   `json:"result,omitempty"`
	Blobs  []string `json:"blobs,omitempty"`
}

// putJob stores the given blobs, writes a manifest referencing them all,
// and stamps the manifest's mtime, giving the eviction order a
// deterministic clock. Returns the content addresses in blob order.
func putJob(t *testing.T, s *Store, id string, mtime time.Time, blobs ...[]byte) []string {
	t.Helper()
	doc := gcManifestDoc{ID: id}
	for _, b := range blobs {
		h, err := s.PutBlob(b)
		if err != nil {
			t.Fatal(err)
		}
		doc.Blobs = append(doc.Blobs, h)
	}
	if err := s.PutManifest(JobsBucket, id, &doc); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), JobsBucket, id+".json")
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	return doc.Blobs
}

func hasBlob(s *Store, h string) bool {
	_, err := s.Blob(h)
	return err == nil
}

func hasManifest(s *Store, id string) bool {
	path := filepath.Join(s.Dir(), JobsBucket, id+".json")
	_, err := os.Stat(path)
	return err == nil
}

// TestGCNeverEvictsReferencedBlob: with no policy pressure forcing
// manifest eviction, every referenced blob survives — and a blob shared
// by several manifests survives until the last referencing manifest is
// evicted, no matter which manifests the quota removes first.
func TestGCNeverEvictsReferencedBlob(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	shared := bytes.Repeat([]byte("dedup"), 40) // 200 B, stored once
	unique := bytes.Repeat([]byte("own"), 100)  // 300 B, job-0001 only
	youngB := bytes.Repeat([]byte("new"), 100)  // 300 B, job-0003 only
	oldHashes := putJob(t, s, "job-0001", now.Add(-3*time.Hour), shared, unique)
	midHashes := putJob(t, s, "job-0002", now.Add(-2*time.Hour), shared)
	youngHash := putJob(t, s, "job-0003", now.Add(-time.Hour), youngB)[0]
	if midHashes[0] != oldHashes[0] {
		t.Fatalf("identical content got two addresses: %s vs %s", midHashes[0], oldHashes[0])
	}
	sharedHash, uniqueHash := oldHashes[0], oldHashes[1]

	// 800 B are referenced in total (the shared blob counts once). A
	// 500 B quota forces out exactly the oldest manifest: that frees the
	// 300 B unique blob, while the shared blob — still referenced by
	// job-0002 — must survive.
	rep, err := s.GC(RetentionPolicy{MaxBytes: 500}, now)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EvictedManifests != 1 || hasManifest(s, "job-0001") {
		t.Fatalf("want exactly job-0001 evicted; report %+v", rep)
	}
	if hasBlob(s, uniqueHash) {
		t.Fatal("evicted manifest's unique blob survived")
	}
	if !hasBlob(s, sharedHash) {
		t.Fatal("GC evicted a blob still referenced by job-0002's manifest")
	}
	if !hasBlob(s, youngHash) || !hasManifest(s, "job-0002") || !hasManifest(s, "job-0003") {
		t.Fatal("GC touched survivors it should not have")
	}

	// Tighter quota: job-0002 goes too, and only then its shared blob.
	if _, err := s.GC(RetentionPolicy{MaxBytes: 300}, now); err != nil {
		t.Fatal(err)
	}
	if hasManifest(s, "job-0002") {
		t.Fatal("second pass kept job-0002 over the quota")
	}
	if hasBlob(s, sharedHash) {
		t.Fatal("unreferenced shared blob survived the second pass")
	}
	if !hasBlob(s, youngHash) {
		t.Fatal("the youngest job's blob was evicted within quota")
	}
}

// TestGCAgeRetention: manifests older than MaxAge are dropped regardless
// of size; younger ones stay.
func TestGCAgeRetention(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	expired := putJob(t, s, "job-0001", now.Add(-48*time.Hour), []byte("ancient result"))[0]
	fresh := putJob(t, s, "job-0002", now.Add(-time.Hour), []byte("recent result"))[0]

	rep, err := s.GC(RetentionPolicy{MaxAge: 24 * time.Hour}, now)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EvictedManifests != 1 || len(rep.Evicted) != 1 || rep.Evicted[0] != "job-0001" {
		t.Fatalf("age eviction report %+v, want exactly job-0001", rep)
	}
	if hasManifest(s, "job-0001") || hasBlob(s, expired) {
		t.Fatal("expired job survived age retention")
	}
	if !hasManifest(s, "job-0002") || !hasBlob(s, fresh) {
		t.Fatal("fresh job was age-evicted")
	}
	if rep.LiveManifests != 1 || rep.LiveBlobs != 1 {
		t.Fatalf("live accounting %+v, want 1 manifest / 1 blob", rep)
	}
}

// TestGCReclaimsOrphans: a blob no manifest references (crashed-writer
// leftover) is reclaimed by a GC pass even when no manifest is evicted.
func TestGCReclaimsOrphans(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	kept := putJob(t, s, "job-0001", now, []byte("kept"))[0]
	orphan, err := s.PutBlob([]byte("crashed before its manifest"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC(RetentionPolicy{MaxBytes: 1 << 20}, now)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EvictedManifests != 0 || rep.EvictedBlobs != 1 {
		t.Fatalf("report %+v, want 0 manifests / 1 orphan blob evicted", rep)
	}
	if hasBlob(s, orphan) {
		t.Fatal("orphan blob survived GC")
	}
	if !hasBlob(s, kept) {
		t.Fatal("referenced blob reclaimed as orphan")
	}
}

// TestGCConcurrentSpills races GC passes against Reserve-bracketed
// blob+manifest spills. The reservation must make every spill atomic with
// respect to GC: after the dust settles, each spilled manifest's blob is
// present and verifiable — GC never reclaimed a just-written blob whose
// manifest was still in flight.
func TestGCConcurrentSpills(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const spillers, perSpiller = 4, 25
	var spillWG, gcWG sync.WaitGroup
	stop := make(chan struct{})
	gcWG.Add(1)
	go func() { // GC hammering with an orphan-hungry policy
		defer gcWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := s.GC(RetentionPolicy{MaxBytes: 1 << 30}, time.Now()); err != nil {
					t.Errorf("concurrent GC: %v", err)
					return
				}
			}
		}
	}()
	for g := 0; g < spillers; g++ {
		spillWG.Add(1)
		go func(g int) {
			defer spillWG.Done()
			for i := 0; i < perSpiller; i++ {
				id := fmt.Sprintf("job-%d-%03d", g, i)
				blob := []byte("result of " + id)
				release := s.Reserve()
				h, err := s.PutBlob(blob)
				if err == nil {
					err = s.PutManifest(JobsBucket, id, &gcManifestDoc{ID: id, Result: h})
				}
				release()
				if err != nil {
					t.Errorf("spill %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	spillWG.Wait()
	close(stop)
	gcWG.Wait()

	// Every spilled blob must be present and content-verified.
	for g := 0; g < spillers; g++ {
		for i := 0; i < perSpiller; i++ {
			id := fmt.Sprintf("job-%d-%03d", g, i)
			blob := []byte("result of " + id)
			got, err := s.Blob(HashBlob(blob))
			if err != nil {
				t.Fatalf("blob of %s lost to GC: %v", id, err)
			}
			if !bytes.Equal(got, blob) {
				t.Fatalf("blob of %s corrupted", id)
			}
		}
	}
}

// TestReserveReleaseIdempotent: releasing twice must not unlock someone
// else's reservation.
func TestReserveReleaseIdempotent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	release := s.Reserve()
	release()
	release() // second call is a no-op, not an RUnlock of nothing
	done := make(chan struct{})
	go func() {
		// GC needs the write lock; it only proceeds if the double release
		// left the lock balanced.
		_, _ = s.GC(RetentionPolicy{MaxBytes: 1}, time.Now())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("GC blocked after double release — lock imbalance")
	}
}
