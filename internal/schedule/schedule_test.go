package schedule

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/kernels"
)

func TestRampValuePureFunctionOfStep(t *testing.T) {
	r := Ramp{Param: ParamPullVelocity, Step: 100, Over: 50, From: 0.02, To: 0.06}
	if v := r.Value(0); v != 0.02 {
		t.Errorf("before start: %g", v)
	}
	if v := r.Value(100); v != 0.02 {
		t.Errorf("at start: %g", v)
	}
	if v := r.Value(150); v != 0.06 {
		t.Errorf("at end: %g", v)
	}
	if v := r.Value(1000); v != 0.06 {
		t.Errorf("after end: %g", v)
	}
	mid := r.Value(125)
	if math.Abs(mid-0.04) > 1e-15 {
		t.Errorf("midpoint: %g", mid)
	}
	// Bit-compatibility across restarts rests on Value being a pure
	// function of the step index.
	for _, s := range []int{100, 113, 137, 150} {
		if r.Value(s) != r.Value(s) {
			t.Fatalf("Value(%d) not deterministic", s)
		}
	}
}

func TestNewSortsAndValidates(t *testing.T) {
	s, err := New(
		SwitchVariant{Step: 50, Phi: kernels.VarStag, Mu: KeepVariant, Strategy: StrategyKeep},
		NucleationBurst{Step: 10, Count: 2, Phase: -1, Radius: 2, ZMin: 0, ZMax: 8},
		Ramp{Param: ParamGradient, Step: 0, Over: 20, From: 1, To: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].StartStep() < s.Events[i-1].StartStep() {
			t.Fatal("events not sorted by start step")
		}
	}
	one := s.OneShots()
	if len(one) != 2 {
		t.Fatalf("one-shots: %d", len(one))
	}
	if _, ok := one[0].(NucleationBurst); !ok {
		t.Error("burst should fire before switch")
	}
	if s.EndStep() != 50 {
		t.Errorf("end step %d", s.EndStep())
	}
}

func TestValidationRejects(t *testing.T) {
	cases := []Event{
		NucleationBurst{Step: -1, Count: 1, Phase: 0, Radius: 1, ZMin: 0, ZMax: 1},
		NucleationBurst{Step: 0, Count: 0, Phase: 0, Radius: 1, ZMin: 0, ZMax: 1},
		NucleationBurst{Step: 0, Count: 1, Phase: 0, Radius: 0, ZMin: 0, ZMax: 1},
		NucleationBurst{Step: 0, Count: 1, Phase: 0, Radius: 1, ZMin: 5, ZMax: 5},
		NucleationBurst{Step: 0, Count: 1, Phase: kernels.NP - 1, Radius: 1, ZMin: 0, ZMax: 1},
		Ramp{Param: ParamDt, Step: 0, Over: 0, From: 1, To: 2},
		Ramp{Param: ParamDt, Step: 0, Over: 5, From: 0, To: 2},
		Ramp{Param: Param(99), Step: 0, Over: 5, From: 1, To: 2},
		SwitchVariant{Step: 0, Phi: kernels.Variant(77), Mu: KeepVariant, Strategy: StrategyKeep},
		SwitchVariant{Step: 0, Phi: KeepVariant, Mu: KeepVariant, Strategy: StrategyKeep},
		SwitchVariant{Step: 0, Phi: KeepVariant, Mu: KeepVariant, Strategy: 99},
		Checkpoint{Step: 0, Every: 0},
	}
	for i, e := range cases {
		if _, err := New(e); err == nil {
			t.Errorf("case %d (%#v) accepted", i, e)
		}
	}
}

func TestCheckpointDue(t *testing.T) {
	c := Checkpoint{Step: 0, Every: 50}
	for _, step := range []int{50, 100, 150} {
		if !c.Due(step) {
			t.Errorf("not due at %d", step)
		}
	}
	for _, step := range []int{0, 49, 51} {
		if c.Due(step) {
			t.Errorf("due at %d", step)
		}
	}
	off := Checkpoint{Step: 30, Every: 50}
	if off.Due(50) || !off.Due(80) {
		t.Error("offset cadence wrong")
	}
}

func TestFromJSON(t *testing.T) {
	src := `{"events": [
	  {"type": "ramp", "param": "v", "step": 0, "over": 800, "from": 0.02, "to": 0.05},
	  {"type": "burst", "step": 200, "count": 6, "phase": -1, "radius": 2.5, "zmin": 40, "zmax": 56, "seed": 7},
	  {"type": "switch", "step": 400, "phi": "shortcut", "mu": "stag", "strategy": "fourcell"},
	  {"type": "checkpoint", "every": 500, "path": "out/state_%06d.pfcp"}
	]}`
	s, err := FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 4 {
		t.Fatalf("parsed %d events", len(s.Events))
	}
	if len(s.Ramps()) != 1 || s.Ramps()[0].To != 0.05 {
		t.Error("ramp not parsed")
	}
	sw := s.OneShots()[1].(SwitchVariant)
	if sw.Phi != kernels.VarShortcut || sw.Mu != kernels.VarStag || sw.Strategy != int(kernels.StratFourCell) {
		t.Errorf("switch parsed as %+v", sw)
	}
	b := s.OneShots()[0].(NucleationBurst)
	if b.Phase != -1 || b.Count != 6 || b.Seed != 7 {
		t.Errorf("burst parsed as %+v", b)
	}
	ck := s.Checkpoints()[0]
	if ck.Every != 500 || ck.Path != "out/state_%06d.pfcp" {
		t.Errorf("checkpoint parsed as %+v", ck)
	}
}

func TestFromJSONPhaseZeroDistinctFromOmitted(t *testing.T) {
	s, err := FromJSON(strings.NewReader(
		`{"events": [{"type": "burst", "step": 0, "count": 1, "phase": 0, "radius": 1, "zmin": 0, "zmax": 4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if b := s.Events[0].(NucleationBurst); b.Phase != 0 {
		t.Errorf("explicit phase 0 parsed as %d", b.Phase)
	}
}

func TestFromJSONRejects(t *testing.T) {
	bad := []string{
		`{"events": [{"type": "warp", "step": 1}]}`,
		`{"events": [{"type": "ramp", "param": "q", "step": 0, "over": 10}]}`,
		`{"events": [{"type": "switch", "step": 0, "phi": "warpspeed"}]}`,
		`{"events": [{"type": "switch", "step": 0, "strategy": "diagonal"}]}`,
		`{"events": [{"type": "burst", "step": 0, "count": 1, "radius": 1, "zmin": 4, "zmax": 4}]}`,
		`{"events": [{"type": "checkpoint", "unknownfield": 3}]}`,
		`not json`,
	}
	for i, src := range bad {
		if _, err := FromJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

func TestVariantAndStrategyNames(t *testing.T) {
	for name, v := range variantNames {
		got, err := ParseVariant(VariantName(v))
		if err != nil || got != v {
			t.Errorf("round trip %s: %v %v", name, got, err)
		}
	}
	if v, err := ParseVariant(""); err != nil || v != KeepVariant {
		t.Error("empty variant should keep")
	}
	if s, err := ParseStrategy("off"); err != nil || s != StrategyOff {
		t.Error("strategy off")
	}
}

func TestEventStrings(t *testing.T) {
	evs := []Event{
		NucleationBurst{Step: 1, Count: 3, Phase: -1, Radius: 2, ZMin: 0, ZMax: 9},
		Ramp{Param: ParamPullVelocity, Step: 0, Over: 10, From: 1, To: 2},
		SwitchVariant{Step: 2, Phi: kernels.VarStag, Mu: KeepVariant, Strategy: StrategyOff},
		SetBC{Step: 3, Over: 4, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
			From: []float64{0, 0}, To: []float64{1, -1}},
		SetBC{Step: 3, Face: grid.ZMax, Field: BCPhi, Kind: grid.BCNeumann},
	}
	for _, e := range evs {
		if s, ok := e.(interface{ String() string }); !ok || s.String() == "" {
			t.Errorf("%T has no useful String()", e)
		}
	}
}

func TestSetBCValuesPureFunctionOfStep(t *testing.T) {
	e := SetBC{Step: 100, Over: 50, Face: grid.ZMin, Field: BCMu,
		Kind: grid.BCDirichlet, From: []float64{0, 0}, To: []float64{0.08, -0.04}}
	var buf [kernels.NP]float64
	at := func(step int) []float64 { return append([]float64(nil), e.ValuesAt(step, buf[:])...) }

	if got := at(100); got[0] != 0 || got[1] != 0 {
		t.Errorf("at start: %v", got)
	}
	if got := at(150); got[0] != 0.08 || got[1] != -0.04 {
		t.Errorf("at end: %v", got)
	}
	if got := at(1000); got[0] != 0.08 || got[1] != -0.04 {
		t.Errorf("after end: %v", got)
	}
	mid := at(125)
	if math.Abs(mid[0]-0.04) > 1e-15 || math.Abs(mid[1]+0.02) > 1e-15 {
		t.Errorf("midpoint: %v", mid)
	}
	// The interpolation must mirror Ramp.Value bit-for-bit so a restart
	// mid-BC-ramp recomputes identical wall values.
	r := Ramp{Param: ParamGradient, Step: 100, Over: 50, From: 0, To: 0.08}
	for _, s := range []int{100, 113, 137, 150} {
		if at(s)[0] != r.Value(s) {
			t.Fatalf("step %d: SetBC %g != Ramp %g", s, at(s)[0], r.Value(s))
		}
	}

	// Over 0 installs To immediately, with or without From.
	imm := SetBC{Step: 5, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet, To: []float64{1, 2}}
	if got := imm.ValuesAt(5, buf[:]); got[0] != 1 || got[1] != 2 {
		t.Errorf("immediate: %v", got)
	}
}

func TestSetBCValidation(t *testing.T) {
	bad := []Event{
		SetBC{Step: -1, Face: grid.ZMin, Field: BCMu, Kind: grid.BCNeumann},
		SetBC{Step: 0, Face: grid.Face(9), Field: BCMu, Kind: grid.BCNeumann},
		SetBC{Step: 0, Face: grid.ZMin, Field: BCField(7), Kind: grid.BCNeumann},
		SetBC{Step: 0, Face: grid.ZMin, Field: BCMu, Kind: grid.BCNone},
		SetBC{Step: 0, Face: grid.ZMin, Field: BCMu, Kind: grid.BCKind(42)},
		// Dirichlet arity must match the field (µ: 2, φ: 4).
		SetBC{Step: 0, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet, To: []float64{1}},
		SetBC{Step: 0, Face: grid.ZMin, Field: BCPhi, Kind: grid.BCDirichlet, To: []float64{1, 0}},
		// A ramp needs both endpoints at matching arity.
		SetBC{Step: 0, Over: 5, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet, To: []float64{1, 2}},
		SetBC{Step: 0, Over: 5, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
			From: []float64{1}, To: []float64{1, 2}},
		// Non-Dirichlet kinds carry no payload.
		SetBC{Step: 0, Face: grid.ZMin, Field: BCMu, Kind: grid.BCNeumann, To: []float64{1, 2}},
		SetBC{Step: 0, Over: 3, Face: grid.ZMin, Field: BCMu, Kind: grid.BCPeriodic},
		// Non-finite wall values.
		SetBC{Step: 0, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet, To: []float64{math.NaN(), 0}},
		SetBC{Step: 0, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet, To: []float64{math.Inf(1), 0}},
		SetBC{Step: 0, Over: -1, Face: grid.ZMin, Field: BCMu, Kind: grid.BCNeumann},
	}
	for i, e := range bad {
		if _, err := New(e); err == nil {
			t.Errorf("case %d (%#v) accepted", i, e)
		}
	}
	good := SetBC{Step: 0, Over: 10, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
		From: []float64{0, 0}, To: []float64{1, 2}}
	if _, err := New(good); err != nil {
		t.Errorf("valid setbc rejected: %v", err)
	}
}

func TestComposeMergesAndOrders(t *testing.T) {
	base, err := New(
		Ramp{Param: ParamPullVelocity, Step: 0, Over: 30, From: 0.02, To: 0.05},
		NucleationBurst{Step: 10, Count: 2, Phase: -1, Radius: 2, ZMin: 0, ZMax: 8},
		SwitchVariant{Step: 10, Phi: kernels.VarStag, Mu: KeepVariant, Strategy: StrategyKeep},
	)
	if err != nil {
		t.Fatal(err)
	}
	overlay, err := New(
		SetBC{Step: 10, Over: 8, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
			From: []float64{0, 0}, To: []float64{0.06, -0.03}},
		SwitchVariant{Step: 10, Phi: KeepVariant, Mu: kernels.VarShortcut, Strategy: StrategyKeep},
	)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compose(base, nil, overlay)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) != 5 {
		t.Fatalf("composed %d events", len(c.Events))
	}
	for i := 1; i < len(c.Events); i++ {
		if c.Events[i].StartStep() < c.Events[i-1].StartStep() {
			t.Fatal("composed events not sorted")
		}
	}
	// Same-step ties resolve by argument position: the base schedule's
	// step-10 events fire before the overlay's.
	one := c.OneShots()
	if len(one) != 3 {
		t.Fatalf("one-shots: %d", len(one))
	}
	if _, ok := one[0].(NucleationBurst); !ok {
		t.Error("base burst should fire first")
	}
	if sw, ok := one[1].(SwitchVariant); !ok || sw.Phi != kernels.VarStag {
		t.Error("base switch should fire before overlay switch")
	}
	if sw, ok := one[2].(SwitchVariant); !ok || sw.Mu != kernels.VarShortcut {
		t.Error("overlay switch should fire last")
	}
	if got := c.SetBCs(); len(got) != 1 || got[0].Face != grid.ZMin {
		t.Errorf("setbc events: %+v", got)
	}
	if c.EndStep() != 30 {
		t.Errorf("end step %d", c.EndStep())
	}

	// Determinism: composing the same inputs again yields the same order.
	c2, err := Compose(base, nil, overlay)
	if err != nil {
		t.Fatal(err)
	}
	// Events hold slices, so compare via formatting.
	for i := range c.Events {
		if fmt.Sprintf("%#v", c.Events[i]) != fmt.Sprintf("%#v", c2.Events[i]) {
			t.Fatalf("compose not deterministic at event %d", i)
		}
	}
}

func TestComposeRejectsConflicts(t *testing.T) {
	mk := func(t *testing.T, evs ...Event) *Schedule {
		t.Helper()
		s, err := New(evs...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		a, b *Schedule
	}{
		{"overlapping setbc ramps on one face/field",
			mk(t, SetBC{Step: 0, Over: 10, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
				From: []float64{0, 0}, To: []float64{1, 1}}),
			mk(t, SetBC{Step: 5, Over: 10, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
				From: []float64{2, 2}, To: []float64{3, 3}})},
		{"same-step immediate setbc on one face/field",
			mk(t, SetBC{Step: 4, Face: grid.ZMax, Field: BCPhi, Kind: grid.BCNeumann}),
			mk(t, SetBC{Step: 4, Face: grid.ZMax, Field: BCPhi, Kind: grid.BCDirichlet,
				To: []float64{1, 0, 0, 0}})},
		{"same-step ramps of one parameter",
			mk(t, Ramp{Param: ParamGradient, Step: 7, Over: 10, From: 1, To: 2}),
			mk(t, Ramp{Param: ParamGradient, Step: 7, Over: 20, From: 1, To: 3})},
		{"same-step switches of one kernel",
			mk(t, SwitchVariant{Step: 3, Phi: kernels.VarStag, Mu: KeepVariant, Strategy: StrategyKeep}),
			mk(t, SwitchVariant{Step: 3, Phi: kernels.VarShortcut, Mu: KeepVariant, Strategy: StrategyKeep})},
	}
	for _, c := range cases {
		if _, err := Compose(c.a, c.b); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}

	// Legal combinations: a later SetBC overriding a settled one, ramps of
	// one parameter at different steps, same-step switches of different
	// kernels.
	ok := [][2]*Schedule{
		{mk(t, SetBC{Step: 0, Over: 10, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
			From: []float64{0, 0}, To: []float64{1, 1}}),
			mk(t, SetBC{Step: 10, Face: grid.ZMin, Field: BCMu, Kind: grid.BCNeumann})},
		{mk(t, SetBC{Step: 2, Face: grid.ZMin, Field: BCMu, Kind: grid.BCNeumann}),
			mk(t, SetBC{Step: 2, Face: grid.ZMin, Field: BCPhi, Kind: grid.BCNeumann})},
		{mk(t, Ramp{Param: ParamGradient, Step: 0, Over: 10, From: 1, To: 2}),
			mk(t, Ramp{Param: ParamGradient, Step: 12, Over: 10, From: 2, To: 3})},
		{mk(t, SwitchVariant{Step: 3, Phi: kernels.VarStag, Mu: KeepVariant, Strategy: StrategyKeep}),
			mk(t, SwitchVariant{Step: 3, Phi: KeepVariant, Mu: kernels.VarShortcut, Strategy: StrategyKeep})},
	}
	for i, pair := range ok {
		if _, err := Compose(pair[0], pair[1]); err != nil {
			t.Errorf("legal combination %d rejected: %v", i, err)
		}
	}
}

func TestFromJSONSetBC(t *testing.T) {
	src := `{"events": [
	  {"type": "setbc", "step": 300, "over": 200, "face": "z-", "field": "mu",
	   "kind": "dirichlet", "from": [0, 0], "to": [0.08, -0.04]},
	  {"type": "setbc", "step": 500, "face": "top", "field": "phi", "kind": "neumann"}
	]}`
	s, err := FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	bcs := s.SetBCs()
	if len(bcs) != 2 {
		t.Fatalf("parsed %d setbc events", len(bcs))
	}
	b := bcs[0]
	if b.Face != grid.ZMin || b.Field != BCMu || b.Kind != grid.BCDirichlet ||
		b.Over != 200 || b.From[1] != 0 || b.To[0] != 0.08 || b.To[1] != -0.04 {
		t.Errorf("setbc parsed as %+v", b)
	}
	if bcs[1].Face != grid.ZMax || bcs[1].Field != BCPhi || bcs[1].Kind != grid.BCNeumann {
		t.Errorf("top-face setbc parsed as %+v", bcs[1])
	}

	bad := []string{
		`{"events": [{"type": "setbc", "step": 0, "face": "q-", "field": "mu", "kind": "neumann"}]}`,
		`{"events": [{"type": "setbc", "step": 0, "face": "z-", "field": "rho", "kind": "neumann"}]}`,
		`{"events": [{"type": "setbc", "step": 0, "face": "z-", "field": "mu", "kind": "robin"}]}`,
		`{"events": [{"type": "setbc", "step": 0, "face": "z-", "field": "mu", "kind": "dirichlet", "to": 3}]}`,
		`{"events": [{"type": "ramp", "param": "v", "step": 0, "over": 10, "from": [1], "to": 2}]}`,
	}
	for i, src := range bad {
		if _, err := FromJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

// Conflict validation lives in New, so a single schedule file is held to
// the same rules as a composition — the solver's last-wins application
// loop relies on ambiguous overlaps never reaching it.
func TestNewRejectsConflictsInSingleSchedule(t *testing.T) {
	if _, err := New(
		SetBC{Step: 0, Over: 10, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
			From: []float64{0, 0}, To: []float64{1, 1}},
		SetBC{Step: 5, Over: 10, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
			From: []float64{2, 2}, To: []float64{3, 3}},
	); err == nil {
		t.Error("overlapping setbc ramps in one schedule accepted")
	}
	src := `{"events": [
	  {"type": "setbc", "step": 0, "over": 10, "face": "z-", "field": "mu", "kind": "dirichlet", "from": [0,0], "to": [1,1]},
	  {"type": "setbc", "step": 5, "over": 10, "face": "z-", "field": "mu", "kind": "dirichlet", "from": [2,2], "to": [3,3]}
	]}`
	if _, err := FromJSON(strings.NewReader(src)); err == nil {
		t.Error("overlapping setbc ramps in one JSON file accepted")
	}
	if _, err := New(
		Ramp{Param: ParamGradient, Step: 7, Over: 10, From: 1, To: 2},
		Ramp{Param: ParamGradient, Step: 7, Over: 20, From: 1, To: 3},
	); err == nil {
		t.Error("same-step same-param ramps in one schedule accepted")
	}
}

// Finite endpoints whose difference overflows must be rejected — the
// interpolation computes To-From, and an Inf wall value would turn the
// fields NaN within a step.
func TestOverflowingRampSpansRejected(t *testing.T) {
	if _, err := New(Ramp{Param: ParamGradient, Step: 0, Over: 2, From: 1e308, To: -1e308}); err == nil {
		t.Error("overflowing ramp span accepted")
	}
	if _, err := New(SetBC{Step: 0, Over: 2, Face: grid.ZMin, Field: BCMu, Kind: grid.BCDirichlet,
		From: []float64{1e308, 0}, To: []float64{-1e308, 0}}); err == nil {
		t.Error("overflowing setbc span accepted")
	}
}
