package kernels

import (
	"repro/internal/core"
)

// phi_general.go emulates the starting point of the paper's optimization
// ladder: the original general-purpose phase-field code (PACE3D-style).
// That code "makes heavy use of indirect function calls via function
// pointers at cell level" and keeps the implementation structured along the
// mathematical formulation, recomputing every quantity where the formula
// mentions it. The emulation reproduces these properties: the right-hand
// side is assembled from a slice of dynamically dispatched term functions
// invoked for every cell and phase, nothing is precomputed or specialized,
// divisions and exact square roots are used throughout. Results are
// identical (within roundoff) to the optimized kernels; only the work per
// cell differs.

// phiCellState is the per-cell evaluation context handed to term functions.
type phiCellState struct {
	ctx  *Ctx
	phi  [NP]float64
	nb   [6][NP]float64 // E W N S T B
	mu   [NR]float64
	T    float64
	grad [NP]core.Vec3
}

// phiTerm is one additive contribution to the right-hand side of Eq. 1.
type phiTerm interface {
	accumulate(st *phiCellState, rhs *[NP]float64)
}

// gradientTerm evaluates T·ε(∂a/∂φ − ∇·∂a/∂∇φ).
type gradientTerm struct{}

func (gradientTerm) accumulate(st *phiCellState, rhs *[NP]float64) {
	p := st.ctx.P
	var dadphi [NP]float64
	core.GradEnergyDPhi(p, &st.phi, &st.grad, &dadphi)

	// Divergence from the six staggered faces, recomputed per cell (the
	// general code has no staggered buffering).
	var div [NP]float64
	var flux [NP]float64
	for axis := 0; axis < 3; axis++ {
		hi := &st.nb[2*axis]
		lo := &st.nb[2*axis+1]
		phiFaceFluxGeneral(p, &st.phi, hi, 1/p.Dx, &flux)
		for a := 0; a < NP; a++ {
			div[a] += flux[a] / p.Dx
		}
		phiFaceFluxGeneral(p, lo, &st.phi, 1/p.Dx, &flux)
		for a := 0; a < NP; a++ {
			div[a] -= flux[a] / p.Dx
		}
	}
	for a := 0; a < NP; a++ {
		rhs[a] += st.T * p.Eps * (dadphi[a] - div[a])
	}
}

// phiFaceFluxGeneral matches phiFaceFlux but with the general code's
// per-call recomputation style (divisions instead of reciprocal
// multiplication).
func phiFaceFluxGeneral(p *core.Params, lo, hi *[NP]float64, invDx float64, out *[NP]float64) {
	for a := 0; a < NP; a++ {
		s := 0.0
		for b := 0; b < NP; b++ {
			if b == a {
				continue
			}
			pfa := (lo[a] + hi[a]) / 2
			pfb := (lo[b] + hi[b]) / 2
			ga := (hi[a] - lo[a]) / p.Dx
			gb := (hi[b] - lo[b]) / p.Dx
			q := pfa*gb - pfb*ga
			s -= 2 * p.Gamma[a][b] * pfb * q
		}
		out[a] = s
	}
	_ = invDx
}

// obstacleTerm evaluates (T/ε)∂ω/∂φ.
type obstacleTerm struct{}

func (obstacleTerm) accumulate(st *phiCellState, rhs *[NP]float64) {
	p := st.ctx.P
	var obst [NP]float64
	core.ObstacleDPhi(p, &st.phi, &obst)
	for a := 0; a < NP; a++ {
		rhs[a] += st.T / p.Eps * obst[a]
	}
}

// drivingTerm evaluates ∂ψ/∂φ through the full thermodynamic interface.
type drivingTerm struct{}

func (drivingTerm) accumulate(st *phiCellState, rhs *[NP]float64) {
	sys := st.ctx.P.Sys
	var pots [NP]float64
	dT := st.T - sys.TE
	for a := 0; a < NP; a++ {
		pots[a] = sys.Phases[a].GrandPot(st.mu, dT)
	}
	var df [NP]float64
	core.DrivingForce(&st.phi, &pots, &df)
	for a := 0; a < NP; a++ {
		rhs[a] += df[a]
	}
}

// phiSweepGeneral runs the emulated general-purpose φ-kernel over the
// z-slab [z0,z1).
func phiSweepGeneral(ctx *Ctx, f *Fields, z0, z1 int) {
	p := ctx.P
	src, dst, mu := f.PhiSrc, f.PhiDst, f.MuSrc
	terms := []phiTerm{gradientTerm{}, obstacleTerm{}, drivingTerm{}}

	var st phiCellState
	st.ctx = ctx
	for z := z0; z < z1; z++ {
		for y := 0; y < src.NY; y++ {
			for x := 0; x < src.NX; x++ {
				loadPhi(src, x, y, z, &st.phi)
				loadPhi(src, x+1, y, z, &st.nb[0])
				loadPhi(src, x-1, y, z, &st.nb[1])
				loadPhi(src, x, y+1, z, &st.nb[2])
				loadPhi(src, x, y-1, z, &st.nb[3])
				loadPhi(src, x, y, z+1, &st.nb[4])
				loadPhi(src, x, y, z-1, &st.nb[5])
				loadMu(mu, x, y, z, &st.mu)
				st.T = p.Temp.At(ctx.ZOff+z, p.Dx, ctx.Time)
				for a := 0; a < NP; a++ {
					st.grad[a] = core.Vec3{
						(st.nb[0][a] - st.nb[1][a]) / (2 * p.Dx),
						(st.nb[2][a] - st.nb[3][a]) / (2 * p.Dx),
						(st.nb[4][a] - st.nb[5][a]) / (2 * p.Dx),
					}
				}

				var rhs [NP]float64
				for _, term := range terms {
					term.accumulate(&st, &rhs)
				}

				mean := 0.0
				for a := 0; a < NP; a++ {
					mean += rhs[a]
				}
				mean /= NP

				var out [NP]float64
				for a := 0; a < NP; a++ {
					out[a] = st.phi[a] - p.Dt/(p.Tau*p.Eps)*(rhs[a]-mean)
				}
				core.ProjectSimplex(&out)
				storePhi(dst, x, y, z, &out)
			}
		}
	}
}
