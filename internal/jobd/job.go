package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/solver"
)

// Spec is a job submission: the domain configuration plus the production
// schedule driving the run. It is the JSON body of POST /jobs.
type Spec struct {
	Name string `json:"name,omitempty"`

	// Domain size in cells and block decomposition (defaults 1×1).
	NX int `json:"nx"`
	NY int `json:"ny"`
	NZ int `json:"nz"`
	PX int `json:"px,omitempty"`
	PY int `json:"py,omitempty"`

	// Steps is the total number of timesteps the job runs (across
	// preemptions).
	Steps int `json:"steps"`

	// Priority orders the queue; larger runs first. A queued job with
	// strictly greater priority than a running one preempts it at the
	// next timestep boundary.
	Priority int `json:"priority,omitempty"`

	Seed int64 `json:"seed,omitempty"`

	// Scenario selects the initial composition: "production" (default,
	// Voronoi nuclei under melt) or "interface" (planar front).
	Scenario string `json:"scenario,omitempty"`

	// Window enables the moving-window technique (PZ is always 1 here).
	Window bool `json:"window,omitempty"`

	// Class names the job's resource class — a configured worker-budget
	// cap shared by all concurrently running jobs of the class, so cheap
	// scouts cannot starve a production run. Empty selects DefaultClass
	// (the full global budget).
	Class string `json:"class,omitempty"`

	// MaxRetries is how many automatic retries the job gets after a
	// failure (a kernel panic, a mid-run error, or a watchdog stall).
	// Each retry resumes from the job's last in-memory safety snapshot
	// (Config.SnapshotEvery) after an exponential backoff; a job that
	// exhausts its retries is quarantined as failed, with the retry count
	// and last error in its status.
	MaxRetries int `json:"max_retries,omitempty"`

	// StallSeconds overrides the daemon's watchdog deadline for this job:
	// the maximum wall-clock gap between timestep boundaries before the
	// job is declared stalled. 0 keeps the daemon default
	// (Config.StallTimeout); irrelevant when the watchdog is off.
	StallSeconds int `json:"stall_seconds,omitempty"`

	// Fault injects a deterministic fault into this job's run — the chaos
	// surface of the fault-injection harness. Rejected unless the daemon
	// runs with Config.AllowFaults (solidifyd -chaos).
	Fault *FaultSpec `json:"fault,omitempty"`

	// Params records a parameter assignment. On an array child it is the
	// grid point the child was expanded from; on an array template it
	// supplies fixed template parameters shared by every child.
	Params map[string]float64 `json:"params,omitempty"`

	// Schedule is an embedded schedule file ({"events": [...]}; the same
	// format as cmd/solidify -schedule). Optional.
	Schedule json.RawMessage `json:"schedule,omitempty"`
}

// Fault-injection modes accepted in FaultSpec.Mode.
const (
	// FaultPanicSweep panics inside a kernel sweep (via the solver's
	// faultfs point) during the step after Step — the poisoned-kernel
	// scenario, exercising panic isolation end to end.
	FaultPanicSweep = "panic-sweep"
	// FaultFailStep makes the run return an error at the Step boundary —
	// a transient mid-run failure, exercising the retry path without
	// corrupting any state.
	FaultFailStep = "fail-step"
	// FaultStallStep wedges the run at the Step boundary until a control
	// verb arrives — the hung-job scenario, exercising the watchdog.
	FaultStallStep = "stall-step"
)

// FaultSpec describes one deterministic injected fault, part of a Spec on
// daemons running with Config.AllowFaults. The fault fires at (or, for
// panic-sweep, during the step after) the Step boundary, Times times in
// total across the job's retries — so a fault with Times < 1+MaxRetries
// is transient and the job eventually completes.
type FaultSpec struct {
	// Mode selects the fault (Fault* constants).
	Mode string `json:"mode"`
	// Step is the completed-step count at which the fault fires.
	Step int `json:"step"`
	// Times bounds the total firings across retries (default 1).
	Times int `json:"times,omitempty"`
}

// validate checks a submitted fault spec.
func (f *FaultSpec) validate() error {
	switch f.Mode {
	case FaultPanicSweep, FaultFailStep, FaultStallStep:
	default:
		return fmt.Errorf("jobd: unknown fault mode %q", f.Mode)
	}
	if f.Step < 0 || f.Times < 0 {
		return fmt.Errorf("jobd: fault step/times must be non-negative")
	}
	return nil
}

// blocks returns the number of block ranks the spec decomposes into.
func (sp *Spec) blocks() int { return sp.PX * sp.PY }

// normalize fills defaults and validates the spec; the parsed schedule is
// returned so submission errors surface at the API boundary, not mid-run.
func (sp *Spec) normalize() (*schedule.Schedule, error) {
	if err := sp.validateFields(); err != nil {
		return nil, err
	}
	if len(sp.Schedule) == 0 {
		return nil, nil
	}
	sched, err := schedule.FromJSONBytes(sp.Schedule)
	if err != nil {
		return nil, err
	}
	if err := validateSubmittedSchedule(sched); err != nil {
		return nil, err
	}
	return sched, nil
}

// validateFields fills defaults and validates the non-schedule spec
// fields (array expansion validates the schedule separately, from the
// already-parsed template instantiation).
func (sp *Spec) validateFields() error {
	if sp.PX == 0 {
		sp.PX = 1
	}
	if sp.PY == 0 {
		sp.PY = 1
	}
	if sp.NX <= 0 || sp.NY <= 0 || sp.NZ <= 0 {
		return fmt.Errorf("jobd: domain %dx%dx%d invalid", sp.NX, sp.NY, sp.NZ)
	}
	if sp.PX < 1 || sp.PY < 1 || sp.NX%sp.PX != 0 || sp.NY%sp.PY != 0 {
		return fmt.Errorf("jobd: domain %dx%d not divisible by blocks %dx%d",
			sp.NX, sp.NY, sp.PX, sp.PY)
	}
	if sp.Steps < 1 {
		return fmt.Errorf("jobd: steps %d invalid", sp.Steps)
	}
	if sp.Class == "" {
		sp.Class = DefaultClass
	}
	switch sp.Scenario {
	case "", "production", "interface":
	default:
		return fmt.Errorf("jobd: unknown scenario %q", sp.Scenario)
	}
	if sp.MaxRetries < 0 {
		return fmt.Errorf("jobd: max_retries %d invalid", sp.MaxRetries)
	}
	if sp.StallSeconds < 0 {
		return fmt.Errorf("jobd: stall_seconds %d invalid", sp.StallSeconds)
	}
	if sp.Fault != nil {
		if err := sp.Fault.validate(); err != nil {
			return err
		}
	}
	return nil
}

// validateSubmittedSchedule applies the daemon's schedule policy. The
// daemon writes no checkpoint files on behalf of jobs (preemption
// snapshots are in-memory; the final state is served by /result), and a
// path-bearing checkpoint event submitted over the network would be an
// arbitrary file write on the daemon host. Reject rather than silently
// strip.
func validateSubmittedSchedule(sched *schedule.Schedule) error {
	for _, c := range sched.Checkpoints() {
		if c.Path != "" {
			return fmt.Errorf("jobd: checkpoint events with a path are not allowed in submitted schedules (the daemon serves state via GET /jobs/{id}/result)")
		}
	}
	return nil
}

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: waiting for a slot (never run, or preempted — see
	// Status.Preemptions).
	StateQueued State = "queued"
	// StateRunning: a runner goroutine is stepping the simulation.
	StateRunning State = "running"
	// StateDone: all Steps completed; the final state is retrievable.
	StateDone State = "done"
	// StateFailed: the run aborted with an error.
	StateFailed State = "failed"
	// StateCanceled: removed by DELETE /jobs/{id} or daemon shutdown.
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions can happen (done,
// failed or canceled).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// terminal is the package-internal spelling of Terminal.
func (s State) terminal() bool { return s.Terminal() }

// control verbs the scheduler posts to a runner; checked at every timestep
// boundary (the cooperative yield point).
const (
	ctrlNone int32 = iota
	ctrlPreempt
	ctrlCancel
	// ctrlStall is posted by the watchdog when a running job reaches no
	// timestep boundary within its progress deadline; the runner routes it
	// into the retry/quarantine path. Cooperative like the others: a job
	// wedged so hard it never reaches a boundary cannot be reclaimed, only
	// reported (the stall counters keep climbing).
	ctrlStall
)

// Sample is one metrics observation, streamed over GET /jobs/{id}/metrics
// as NDJSON.
type Sample struct {
	Step  int     `json:"step"`
	Steps int     `json:"steps"`
	Time  float64 `json:"time"`
	Solid float64 `json:"solid"`
	// ActiveFraction is the share of z-slices the solver's activity
	// tracker actually swept last step (1 = no slice slept).
	ActiveFraction float64 `json:"active_fraction"`
	MLUPs          float64 `json:"mlups"`
	State          State   `json:"state"`
	// Phases carries the step-phase timing of the reporting window
	// (between this sample and the previous one) when the solver's step
	// telemetry is on; absent on samples that cover no completed steps.
	Phases *PhaseBreakdown `json:"phases,omitempty"`
}

// Status is the API view of a job (GET /jobs/{id}).
type Status struct {
	ID          string             `json:"id"`
	Name        string             `json:"name,omitempty"`
	Array       string             `json:"array,omitempty"`
	Class       string             `json:"class,omitempty"`
	Params      map[string]float64 `json:"params,omitempty"`
	State       State              `json:"state"`
	Priority    int                `json:"priority"`
	Step        int                `json:"step"`
	Steps       int                `json:"steps"`
	Time        float64            `json:"time"`
	Solid       float64            `json:"solid"`
	Workers     int                `json:"workers"`
	Preemptions int                `json:"preemptions"`
	// Retries is how many automatic retries the job has consumed;
	// LastError is the error that triggered the most recent one (kept
	// after a later retry succeeds, so a flaky-but-finished job is
	// diagnosable). Stalls counts watchdog firings against this job.
	Retries   int    `json:"retries,omitempty"`
	Stalls    int    `json:"stalls,omitempty"`
	LastError string `json:"last_error,omitempty"`
	Error     string `json:"error,omitempty"`
	// ScheduleError is the structured form of Error when the job failed
	// because its schedule prescribed boundary conditions the rank topology
	// cannot honor — a permanent input error the daemon does not retry. It
	// carries the offending face and step, so the submitter can fix the
	// event rather than parse the message.
	ScheduleError *solver.ScheduleError `json:"schedule_error,omitempty"`
}

// Job is the daemon-side state of one submitted run.
type Job struct {
	ID    string
	Spec  Spec
	seq   int64 // submission order; ties queue ordering within a priority
	sched *schedule.Schedule
	// group is the fairness unit the scheduler interleaves at equal
	// priority: the owning array's id, or the job's own id for singles.
	group string
	// array is the owning array's id ("" for singles).
	array string

	// Control words, written by the scheduler/API and read by the runner
	// at timestep boundaries.
	ctrl         atomic.Int32
	desiredShare atomic.Int32 // worker-budget share the scheduler wants
	appliedShare atomic.Int32 // share the runner has installed

	// notBefore (unixnano) is the retry-backoff gate: the scheduler skips
	// the queued job until the deadline passes. lastBeat (unixnano) is the
	// watchdog's progress marker, stored by the runner at every timestep
	// boundary. faultLeft counts remaining FaultSpec firings across
	// retries.
	notBefore atomic.Int64
	lastBeat  atomic.Int64
	faultLeft atomic.Int32

	mu          sync.Mutex
	state       State
	err         error
	step        int
	simTime     float64
	solid       float64
	activeFrac  float64 // last observed solver active fraction (0 = unknown)
	preemptions int
	retries     int   // automatic retries consumed
	stalls      int   // watchdog firings
	lastErr     error // error behind the most recent retry
	// snapshot is the float64 (lossless) checkpoint of a preempted job;
	// final is the float64 checkpoint of a completed one (GET result).
	snapshot []byte
	final    []byte
	// storedResult/storedSchedule are the content hashes of the spilled
	// result and applied-schedule blobs in the persistent store; a daemon
	// restarted over the store serves terminal jobs from these.
	storedResult   string
	storedSchedule string
	// applied accumulates the schedule recorder's audit log across
	// preemption segments (each resume starts a fresh Sim whose recorder
	// is empty).
	applied     []schedule.Event
	appliedSeen map[string]bool
	subs        map[chan Sample]struct{}

	// Telemetry snapshots for the trace and metrics endpoints, refreshed
	// by the runner at report boundaries and at attempt end. telemTot and
	// stepRecs cover the current attempt only (a fresh Sim restarts them);
	// marks is the job's whole lifecycle timeline.
	telemTot obs.StepTotals
	stepRecs []obs.StepRecord
	flows    []phasefield.HaloFlow
	latency  map[string]obs.HistogramSnapshot
	marks    []traceMark
}

func newJob(id string, seq int64, spec Spec, sched *schedule.Schedule) *Job {
	j := &Job{
		ID: id, Spec: spec, seq: seq, sched: sched,
		group:       id,
		state:       StateQueued,
		appliedSeen: make(map[string]bool),
		subs:        make(map[chan Sample]struct{}),
	}
	if spec.Fault != nil {
		times := spec.Fault.Times
		if times == 0 {
			times = 1
		}
		j.faultLeft.Store(int32(times))
	}
	return j
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, Name: j.Spec.Name, Array: j.array, Class: j.Spec.Class,
		Params: j.Spec.Params, State: j.state, Priority: j.Spec.Priority,
		Step: j.step, Steps: j.Spec.Steps, Time: j.simTime, Solid: j.solid,
		Preemptions: j.preemptions, Retries: j.retries, Stalls: j.stalls,
	}
	if j.state == StateRunning {
		st.Workers = int(j.appliedShare.Load())
	}
	if j.lastErr != nil {
		st.LastError = j.lastErr.Error()
	}
	if j.err != nil {
		st.Error = j.err.Error()
		var serr *solver.ScheduleError
		if errors.As(j.err, &serr) {
			st.ScheduleError = serr
		}
	}
	return st
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// mergeApplied folds a Sim segment's audit log into the job-level log,
// dropping stateless events already recorded by an earlier segment
// (one-shots never re-fire across segments — the checkpointed schedule
// position guarantees that).
func (j *Job) mergeApplied(events []schedule.Event) {
	for _, ev := range events {
		key := fmt.Sprintf("%T %v", ev, ev)
		if j.appliedSeen[key] {
			continue
		}
		j.appliedSeen[key] = true
		j.applied = append(j.applied, ev)
	}
}

// AppliedScheduleJSON dumps the job's accumulated audit log as a
// replayable schedule file.
func (j *Job) AppliedScheduleJSON() ([]byte, error) {
	j.mu.Lock()
	events := append([]schedule.Event(nil), j.applied...)
	j.mu.Unlock()
	return schedule.EncodeJSON(events)
}

// FinalCheckpoint returns the lossless checkpoint of a completed job (nil
// until StateDone).
func (j *Job) FinalCheckpoint() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.final
}

// subscribe registers a metrics listener. The channel is buffered and
// lossy: a slow consumer drops samples, never stalls the runner. The
// channel is closed when the job reaches a terminal state.
func (j *Job) subscribe() (<-chan Sample, func()) {
	ch := make(chan Sample, 16)
	j.mu.Lock()
	if j.state.terminal() {
		// Deliver one terminal sample and close immediately.
		ch <- j.sampleLocked()
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	j.subs[ch] = struct{}{}
	// Seed the stream with the current position.
	select {
	case ch <- j.sampleLocked():
	default:
	}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// sampleLocked builds a Sample from the current state; j.mu must be held.
func (j *Job) sampleLocked() Sample {
	af := j.activeFrac
	if af == 0 {
		af = 1 // not yet observed: the solver sweeps everything
	}
	return Sample{Step: j.step, Steps: j.Spec.Steps, Time: j.simTime,
		Solid: j.solid, ActiveFraction: af, State: j.state}
}

// publish pushes a sample to all subscribers (lossy).
func (j *Job) publish(s Sample) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for ch := range j.subs {
		select {
		case ch <- s:
		default:
		}
	}
}

// closeSubs delivers a final sample and closes every subscriber channel;
// called when the job reaches a terminal state.
func (j *Job) closeSubs() {
	j.mu.Lock()
	defer j.mu.Unlock()
	final := j.sampleLocked()
	for ch := range j.subs {
		select {
		case ch <- final:
		default:
		}
		close(ch)
		delete(j.subs, ch)
	}
}
