package solver

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
)

// parallel_test.go checks the sweep engine end-to-end: a simulation stepped
// with intra-block parallelism must match the serial simulation bit-for-bit
// for every kernel variant and overlap mode, and the steady-state timestep
// must not allocate in the halo-exchange pack/unpack path.

func parSim(t *testing.T, blocks, par int, v kernels.Variant, ov OverlapMode) *Sim {
	t.Helper()
	const edge = 16
	bg, err := grid.NewBlockGrid(blocks, 1, 1, edge, edge, edge, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Temp.Z0 = float64(edge) / 2 * p.Dx
	s, err := New(Config{Params: p, BG: bg, Variant: v, Overlap: ov, Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParallelSimMatchesSerial(t *testing.T) {
	for v := kernels.VarGeneral; v < kernels.NumVariants; v++ {
		for _, par := range []int{2, 4} {
			t.Run(fmt.Sprintf("%v/par%d", v, par), func(t *testing.T) {
				ref := parSim(t, 1, 1, v, OverlapMu)
				defer ref.Close()
				ref.Run(3)

				s := parSim(t, 1, par, v, OverlapMu)
				defer s.Close()
				if s.engine == nil {
					t.Fatal("engine not engaged at parallelism > 1")
				}
				s.Run(3)

				for r := 0; r < s.NumRanks(); r++ {
					if ok, maxd := s.RankFields(r).PhiSrc.InteriorEqual(ref.RankFields(r).PhiSrc, 0); !ok {
						t.Errorf("rank %d: φ differs from serial by %g", r, maxd)
					}
					if ok, maxd := s.RankFields(r).MuSrc.InteriorEqual(ref.RankFields(r).MuSrc, 0); !ok {
						t.Errorf("rank %d: µ differs from serial by %g", r, maxd)
					}
				}
			})
		}
	}
}

func TestParallelSimAllOverlapModes(t *testing.T) {
	// The split µ-sweeps of the overlap modes slab-decompose too.
	for _, ov := range []OverlapMode{OverlapNone, OverlapMu, OverlapPhi, OverlapBoth} {
		t.Run(ov.String(), func(t *testing.T) {
			ref := parSim(t, 1, 1, kernels.VarShortcut, ov)
			defer ref.Close()
			ref.Run(3)

			s := parSim(t, 1, 4, kernels.VarShortcut, ov)
			defer s.Close()
			s.Run(3)

			if ok, maxd := s.RankFields(0).PhiSrc.InteriorEqual(ref.RankFields(0).PhiSrc, 0); !ok {
				t.Errorf("φ differs from serial by %g", maxd)
			}
			if ok, maxd := s.RankFields(0).MuSrc.InteriorEqual(ref.RankFields(0).MuSrc, 0); !ok {
				t.Errorf("µ differs from serial by %g", maxd)
			}
		})
	}
}

func TestParallelMultiBlockMatchesSerial(t *testing.T) {
	// Blocks and slabs compose: 2 blocks × 2 workers each.
	ref := parSim(t, 2, 1, kernels.VarShortcut, OverlapMu)
	defer ref.Close()
	ref.Run(3)

	s := parSim(t, 2, 4, kernels.VarShortcut, OverlapMu)
	defer s.Close()
	if s.workersPerRank != 2 {
		t.Fatalf("workersPerRank = %d, want 2", s.workersPerRank)
	}
	s.Run(3)

	for r := 0; r < s.NumRanks(); r++ {
		if ok, maxd := s.RankFields(r).PhiSrc.InteriorEqual(ref.RankFields(r).PhiSrc, 0); !ok {
			t.Errorf("rank %d: φ differs from serial by %g", r, maxd)
		}
		if ok, maxd := s.RankFields(r).MuSrc.InteriorEqual(ref.RankFields(r).MuSrc, 0); !ok {
			t.Errorf("rank %d: µ differs from serial by %g", r, maxd)
		}
	}
}

func TestSlabCountScheduler(t *testing.T) {
	s := parSim(t, 1, 8, kernels.VarShortcut, OverlapMu)
	defer s.Close()
	if got := s.slabCount(16); got != 4 { // 16 slices / minSlabSlices
		t.Errorf("slabCount(16) = %d, want 4 (min-slab bound)", got)
	}
	if got := s.slabCount(64); got != 8 { // worker bound
		t.Errorf("slabCount(64) = %d, want 8 (worker bound)", got)
	}
	if got := s.slabCount(3); got != 1 {
		t.Errorf("slabCount(3) = %d, want 1", got)
	}
}

func TestSteadyStateStepCommAllocFree(t *testing.T) {
	// The halo-exchange pack/unpack path of a steady-state timestep must
	// not allocate: after warm-up, Sim.Run(1) leaves the persistent pack
	// buffer count unchanged, and with the blocking overlap mode the
	// whole comm path stays off the allocator (AllocsPerRun counts every
	// allocation in the process; the residual budget below is the
	// per-step goroutine fan-out of forAllRanks, not the comm path).
	s := parSim(t, 2, 1, kernels.VarShortcut, OverlapNone)
	defer s.Close()
	s.Run(3) // warm-up: populate the buffer set

	before := s.World.PackAllocs()
	avg := testing.AllocsPerRun(10, func() { s.Run(1) })
	if got := s.World.PackAllocs(); got != before {
		t.Errorf("steady-state Run(1) allocated %d pack buffers, want 0", got-before)
	}
	// The two rank goroutines per step cost a handful of scheduler
	// objects; the pre-fix comm path allocated 12 buffers/step on top.
	if avg > 8 {
		t.Errorf("steady-state Run(1) allocates %.1f objects, want the comm path contribution to be zero (budget 8)", avg)
	}
}
