package solver

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/schedule"
)

// activity_test.go — the cross-variant equivalence suite for per-slice
// activity tracking. The contract under test is absolute: a run that skips
// sleeping slices is bit-identical to the same run sweeping everything,
// for every kernel variant, overlap mode, parallelism level and rank
// decomposition, and across every way the outside world can poke a
// sleeping slice (nucleation bursts, wall ramps, window shifts).

// actSim builds a production-style tall-melt simulation: Voronoi nuclei in
// the bottom ~2ε slices, pure melt above — the composition where activity
// tracking earns its keep, since the upper bulk sleeps.
func actSim(t testing.TB, px, py, pz, bx, by, bz int, v kernels.Variant, ov OverlapMode, disable bool, par int) *Sim {
	t.Helper()
	bg, err := grid.NewBlockGrid(px, py, pz, bx, by, bz, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	_, _, nz := bg.GlobalCells()
	p.Temp.Z0 = float64(nz) / 2 * p.Dx
	s, err := New(Config{Params: p, BG: bg, Variant: v, Overlap: ov,
		DisableActiveSweep: disable, Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitScenario(ScenarioProduction); err != nil {
		t.Fatal(err)
	}
	return s
}

// requireBitEqual compares two gathered global fields bit for bit — not
// within a tolerance. Activity tracking promises exactness, so the first
// differing bit is a failure.
func requireBitEqual(t *testing.T, name string, got, want *grid.Field) {
	t.Helper()
	if got.NX != want.NX || got.NY != want.NY || got.NZ != want.NZ {
		t.Fatalf("%s: shape %dx%dx%d vs %dx%dx%d", name,
			got.NX, got.NY, got.NZ, want.NX, want.NY, want.NZ)
	}
	for c := 0; c < got.NComp; c++ {
		for z := 0; z < got.NZ; z++ {
			for y := 0; y < got.NY; y++ {
				for x := 0; x < got.NX; x++ {
					g, w := got.At(c, x, y, z), want.At(c, x, y, z)
					if math.Float64bits(g) != math.Float64bits(w) {
						t.Fatalf("%s: comp %d cell (%d,%d,%d): %x != %x (%g vs %g)",
							name, c, x, y, z, math.Float64bits(g), math.Float64bits(w), g, w)
					}
				}
			}
		}
	}
}

// requireSameTrajectory runs nothing — it just compares the current state
// of a tracked and an always-full simulation bit for bit.
func requireSameTrajectory(t *testing.T, tracked, full *Sim) {
	t.Helper()
	requireBitEqual(t, "phi", tracked.GatherGlobalPhi(), full.GatherGlobalPhi())
	requireBitEqual(t, "mu", tracked.GatherGlobalMu(), full.GatherGlobalMu())
}

// Every kernel variant must produce the identical trajectory with and
// without activity tracking, and the tall-melt domain must actually
// engage the tracker (active fraction < 1) — a suite that compares two
// full sweeps proves nothing.
func TestActiveSweepBitIdenticalAllVariants(t *testing.T) {
	for v := kernels.Variant(0); v < kernels.NumVariants; v++ {
		t.Run(v.String(), func(t *testing.T) {
			tracked := actSim(t, 1, 1, 1, 8, 8, 40, v, OverlapNone, false, 1)
			full := actSim(t, 1, 1, 1, 8, 8, 40, v, OverlapNone, true, 1)
			tracked.Run(6)
			full.Run(6)
			requireSameTrajectory(t, tracked, full)
			if af := tracked.ActiveFraction(); !(af < 1) || af <= 0 {
				t.Errorf("active fraction = %g, want engaged (0 < af < 1)", af)
			}
			if af := full.ActiveFraction(); af != 1 {
				t.Errorf("disabled tracker reports active fraction %g, want 1", af)
			}
		})
	}
}

// The four overlap modes interleave halo exchange with the sweeps in
// different orders; the sleep predicate must hold under each one. Each
// mode is compared against its own always-full twin (cross-mode equality
// is a separate, tolerance-based test).
func TestActiveSweepAllOverlapModes(t *testing.T) {
	for _, ov := range []OverlapMode{OverlapNone, OverlapMu, OverlapPhi, OverlapBoth} {
		t.Run(ov.String(), func(t *testing.T) {
			tracked := actSim(t, 1, 1, 2, 8, 8, 20, kernels.VarShortcut, ov, false, 1)
			full := actSim(t, 1, 1, 2, 8, 8, 20, kernels.VarShortcut, ov, true, 1)
			tracked.Run(6)
			full.Run(6)
			requireSameTrajectory(t, tracked, full)
		})
	}
}

// Skip decisions must be a pure function of step-start field state —
// never of how many workers happen to sweep. Every parallelism level must
// reproduce the serial tracked run bit for bit.
func TestActiveSweepParallelismIndependent(t *testing.T) {
	serial := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, false, 1)
	serial.Run(6)
	for _, par := range []int{2, runtime.GOMAXPROCS(0)} {
		s := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, false, par)
		s.Run(6)
		s.Sync()
		requireSameTrajectory(t, s, serial)
		s.Close()
	}
	// And the whole family equals the always-full sweep.
	full := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, true, 1)
	full.Run(6)
	requireSameTrajectory(t, serial, full)
}

// A z-split decomposition whose upper block is pure melt must both stay
// bit-identical and actually skip halo rounds: once the boundary slabs of
// a face sleep for the required streak, the sender ships zero-length
// sleep tokens instead of packed halos.
func TestActiveSweepSkipsHaloRounds(t *testing.T) {
	tracked := actSim(t, 1, 1, 2, 8, 8, 20, kernels.VarShortcut, OverlapNone, false, 1)
	full := actSim(t, 1, 1, 2, 8, 8, 20, kernels.VarShortcut, OverlapNone, true, 1)
	tracked.Run(10)
	full.Run(10)
	requireSameTrajectory(t, tracked, full)

	skipped := 0
	for r := 0; r < tracked.NumRanks(); r++ {
		skipped += tracked.World.RankStats(r).Skipped
	}
	if skipped == 0 {
		t.Error("no halo rounds skipped despite a sleeping z-seam")
	}
	fullSkipped := 0
	for r := 0; r < full.NumRanks(); r++ {
		fullSkipped += full.World.RankStats(r).Skipped
	}
	if fullSkipped != 0 {
		t.Errorf("disabled tracker skipped %d halo rounds", fullSkipped)
	}
}

// Adversarial wake-up: a nucleation burst fired into the sleeping melt
// bulk repaints slices that have been asleep for many steps. The tracker
// must re-derive and wake them — a stale skip would freeze the new nuclei.
func TestBurstWakesSleepingSlab(t *testing.T) {
	tracked := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, false, 1)
	full := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, true, 1)
	burst := schedule.NucleationBurst{Step: 4, Count: 3, Phase: -1,
		Radius: 2.5, ZMin: 26, ZMax: 34, Seed: 11}
	for _, s := range []*Sim{tracked, full} {
		s.Run(4)
		if s.ActiveFraction() < 1 && s == full {
			t.Fatal("full sim tracking engaged")
		}
		if _, err := s.ApplyBurst(burst); err != nil {
			t.Fatal(err)
		}
		s.Run(4)
	}
	requireSameTrajectory(t, tracked, full)
}

// Adversarial wake-up: a Dirichlet wall ramp on the top boundary changes
// ghost bytes adjacent to slices that sleep against that wall. Every ramp
// step must reach the trajectory exactly as it does with tracking off.
func TestSetBCRampWakesSleepingBoundary(t *testing.T) {
	ev := schedule.SetBC{Step: 3, Over: 4, Face: grid.ZMax, Field: schedule.BCMu,
		Kind: grid.BCDirichlet, From: []float64{0, 0}, To: []float64{0.3, -0.15}}
	tracked := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, false, 1)
	full := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, true, 1)
	for _, s := range []*Sim{tracked, full} {
		if err := s.RunSchedule(10, mkSched(t, ev), ScheduleHooks{}); err != nil {
			t.Fatal(err)
		}
	}
	requireSameTrajectory(t, tracked, full)
}

// Adversarial wake-up: a window shift scrolls every slice — including
// sleeping ones — to a new z (and a new analytic temperature). The
// activity map must not survive the scroll.
func TestWindowShiftScrollsSleepingSlab(t *testing.T) {
	tracked := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, false, 1)
	full := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, true, 1)
	for _, s := range []*Sim{tracked, full} {
		s.Run(4)
		s.ShiftWindow(5)
		s.Run(4)
	}
	requireSameTrajectory(t, tracked, full)
	if tracked.WindowShift() != 5 || full.WindowShift() != 5 {
		t.Fatalf("window shifts %d/%d, want 5", tracked.WindowShift(), full.WindowShift())
	}
}

// FrontHeight agrees between a tracked simulation (which trusts slept
// slices' classification) and an always-full one (which scans every cell),
// and the tracked scan allocates nothing.
func TestFrontHeightUsesActivityAndIsAllocFree(t *testing.T) {
	tracked := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, false, 1)
	full := actSim(t, 1, 1, 1, 8, 8, 40, kernels.VarShortcut, OverlapNone, true, 1)
	tracked.Run(5)
	full.Run(5)
	if th, fh := tracked.FrontHeight(), full.FrontHeight(); th != fh {
		t.Fatalf("FrontHeight %d (tracked) != %d (full)", th, fh)
	}
	for name, s := range map[string]*Sim{"tracked": tracked, "full": full} {
		if allocs := testing.AllocsPerRun(20, func() { s.FrontHeight() }); allocs != 0 {
			t.Errorf("%s FrontHeight allocates %g per call", name, allocs)
		}
	}
}

// The WakeMargin knob widens the activation margin; any legal margin must
// leave the trajectory untouched (a wider margin only sleeps less).
func TestWakeMarginWidthsEquivalent(t *testing.T) {
	ref := actSim(t, 1, 1, 1, 8, 8, 32, kernels.VarShortcut, OverlapNone, true, 1)
	ref.Run(5)
	for _, m := range []int{1, 2, 4} {
		bg, err := grid.NewBlockGrid(1, 1, 1, 8, 8, 32, [3]bool{true, true, false})
		if err != nil {
			t.Fatal(err)
		}
		p := core.DefaultParams()
		p.Temp.Z0 = 16 * p.Dx
		s, err := New(Config{Params: p, BG: bg, Variant: kernels.VarShortcut, WakeMargin: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.InitScenario(ScenarioProduction); err != nil {
			t.Fatal(err)
		}
		s.Run(5)
		requireSameTrajectory(t, s, ref)
	}
}
