package grid

import "fmt"

// Face identifies one of the six block faces.
type Face int

const (
	XMin Face = iota
	XMax
	YMin
	YMax
	ZMin
	ZMax
	NumFaces
)

func (f Face) String() string {
	switch f {
	case XMin:
		return "x-"
	case XMax:
		return "x+"
	case YMin:
		return "y-"
	case YMax:
		return "y+"
	case ZMin:
		return "z-"
	case ZMax:
		return "z+"
	}
	return fmt.Sprintf("Face(%d)", int(f))
}

// Opposite returns the opposing face.
func (f Face) Opposite() Face {
	switch f {
	case XMin:
		return XMax
	case XMax:
		return XMin
	case YMin:
		return YMax
	case YMax:
		return YMin
	case ZMin:
		return ZMax
	default:
		return ZMin
	}
}

// Axis returns 0, 1 or 2 for x, y or z faces.
func (f Face) Axis() int { return int(f) / 2 }

// IsMin reports whether this is the low face of its axis.
func (f Face) IsMin() bool { return int(f)%2 == 0 }

// BCKind enumerates boundary condition types. The paper's setup (Fig. 2)
// uses periodic boundaries laterally, a Neumann (no-flux) condition at the
// top and a Dirichlet condition at the bottom.
type BCKind int

const (
	// BCNone leaves the ghost layer untouched (an interior face handled
	// by communication).
	BCNone BCKind = iota
	// BCPeriodic wraps the ghost layer around to the opposite side of
	// the same field. Only valid when the block spans the whole domain
	// along that axis; in multi-block runs periodicity is realized by
	// the communication layer instead.
	BCPeriodic
	// BCNeumann implements a zero-gradient condition by mirroring the
	// outermost interior slice into the ghost layer.
	BCNeumann
	// BCDirichlet fixes the ghost layer directly to per-component
	// values. Phase-field ghosts must stay on the Gibbs simplex, so the
	// prescribed vector itself is written (no linear extrapolation).
	BCDirichlet
)

func (k BCKind) String() string {
	switch k {
	case BCNone:
		return "none"
	case BCPeriodic:
		return "periodic"
	case BCNeumann:
		return "neumann"
	case BCDirichlet:
		return "dirichlet"
	}
	return fmt.Sprintf("BCKind(%d)", int(k))
}

// BC describes the boundary condition on one face.
type BC struct {
	Kind   BCKind
	Values []float64 // Dirichlet face values per component (nil otherwise)
}

// BoundarySet holds one BC per face.
type BoundarySet [NumFaces]BC

// AllPeriodic returns a boundary set with periodic conditions on all faces.
func AllPeriodic() BoundarySet {
	var b BoundarySet
	for i := range b {
		b[i] = BC{Kind: BCPeriodic}
	}
	return b
}

// AllNeumann returns a boundary set with zero-gradient conditions on all faces.
func AllNeumann() BoundarySet {
	var b BoundarySet
	for i := range b {
		b[i] = BC{Kind: BCNeumann}
	}
	return b
}

// DirectionalSolidification returns the paper's production boundary set
// (Fig. 2): periodic in x and y, Dirichlet at the bottom (solid feed,
// per-component values botVals) and Neumann at the top (liquid).
func DirectionalSolidification(botVals []float64) BoundarySet {
	var b BoundarySet
	b[XMin] = BC{Kind: BCPeriodic}
	b[XMax] = BC{Kind: BCPeriodic}
	b[YMin] = BC{Kind: BCPeriodic}
	b[YMax] = BC{Kind: BCPeriodic}
	b[ZMin] = BC{Kind: BCDirichlet, Values: botVals}
	b[ZMax] = BC{Kind: BCNeumann}
	return b
}

// SetFace installs kind and Dirichlet values on face f in place, reusing
// the existing Values backing array when it has capacity. Reuse matters for
// time-varying boundary conditions: the per-rank boundary sets derived by
// BlockGrid.BlockBCs share the domain set's Values backing, so ramping wall
// values in place propagates to every rank without re-deriving or
// reallocating — and a steady BC ramp allocates nothing per step. The
// returned flag reports whether the backing array was replaced (the caller
// must then re-derive any sets that shared the old one).
func (b *BoundarySet) SetFace(f Face, kind BCKind, vals []float64) (realloc bool) {
	bc := &b[f]
	bc.Kind = kind
	if vals == nil {
		return false
	}
	if cap(bc.Values) < len(vals) {
		bc.Values = make([]float64, len(vals))
		realloc = true
	}
	bc.Values = bc.Values[:len(vals)]
	copy(bc.Values, vals)
	return realloc
}

// Clone returns a deep copy of the boundary set (Values backing included).
func (b BoundarySet) Clone() BoundarySet {
	out := b
	for f := range out {
		if b[f].Values != nil {
			out[f].Values = append([]float64(nil), b[f].Values...)
		}
	}
	return out
}

// Validate checks that the set can be applied to an ncomp-component field:
// every Dirichlet face must prescribe exactly one value per component
// (Apply indexes Values by component and would otherwise panic mid-sweep).
func (b *BoundarySet) Validate(ncomp int) error {
	for f := Face(0); f < NumFaces; f++ {
		if b[f].Kind == BCDirichlet && len(b[f].Values) != ncomp {
			return fmt.Errorf("grid: %v Dirichlet BC carries %d values for an %d-component field",
				f, len(b[f].Values), ncomp)
		}
	}
	return nil
}

// Apply applies every non-BCNone face condition to f's ghost layers.
// It fills the full ghost shell for the given axis extents including edge
// and corner regions by sweeping the axes in order x, y, z with progressively
// extended transverse ranges, mirroring the staged halo fill used by the
// communication layer.
func (b *BoundarySet) Apply(f *Field) {
	for face := Face(0); face < NumFaces; face++ {
		bc := b[face]
		if bc.Kind == BCNone {
			continue
		}
		applyFace(f, face, bc)
	}
}

// faceRange gives, for a face sweep on the given axis, the transverse loop
// ranges extended into already-filled ghost regions (x first, then y
// including x-ghosts, then z including x- and y-ghosts).
func transverseRange(f *Field, axis int) (x0, x1, y0, y1, z0, z1 int) {
	g := f.G
	switch axis {
	case 0: // x faces: transverse y,z interior only
		return 0, 0, 0, f.NY, 0, f.NZ
	case 1: // y faces: include x ghosts
		return -g, f.NX + g, 0, 0, 0, f.NZ
	default: // z faces: include x and y ghosts
		return -g, f.NX + g, -g, f.NY + g, 0, 0
	}
}

func applyFace(f *Field, face Face, bc BC) {
	g := f.G
	axis := face.Axis()
	n := [3]int{f.NX, f.NY, f.NZ}[axis]
	x0, x1, y0, y1, z0, z1 := transverseRange(f, axis)

	// For each ghost depth layer d = 1..g.
	for d := 1; d <= g; d++ {
		var ghost, src int
		switch bc.Kind {
		case BCPeriodic:
			if face.IsMin() {
				ghost, src = -d, n-d
			} else {
				ghost, src = n-1+d, d-1
			}
		case BCNeumann:
			if face.IsMin() {
				ghost, src = -d, d-1
			} else {
				ghost, src = n-1+d, n-d
			}
		case BCDirichlet:
			if face.IsMin() {
				ghost, src = -d, d-1
			} else {
				ghost, src = n-1+d, n-d
			}
		}
		forFacePlane(f, axis, x0, x1, y0, y1, z0, z1, func(x, y, z int) {
			gx, gy, gz := x, y, z
			sx, sy, sz := x, y, z
			switch axis {
			case 0:
				gx, sx = ghost, src
			case 1:
				gy, sy = ghost, src
			default:
				gz, sz = ghost, src
			}
			for c := 0; c < f.NComp; c++ {
				switch bc.Kind {
				case BCDirichlet:
					f.Set(c, gx, gy, gz, bc.Values[c])
				default:
					f.Set(c, gx, gy, gz, f.At(c, sx, sy, sz))
				}
			}
		})
	}
}

// forFacePlane iterates the transverse plane of a face sweep. The axis'
// own coordinate is supplied by the caller through the closure; the unused
// range (x0==x1 etc. for the swept axis) is collapsed to a single iteration.
func forFacePlane(f *Field, axis int, x0, x1, y0, y1, z0, z1 int, fn func(x, y, z int)) {
	switch axis {
	case 0:
		for z := z0; z < z1; z++ {
			for y := y0; y < y1; y++ {
				fn(0, y, z)
			}
		}
	case 1:
		for z := z0; z < z1; z++ {
			for x := x0; x < x1; x++ {
				fn(x, 0, z)
			}
		}
	default:
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				fn(x, y, 0)
			}
		}
	}
}
