package solver

import (
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
)

// Metrics aggregates performance and physics measurements of a run. MLUP/s
// ("million lattice cell updates per second") is the paper's unit
// throughout §5.
type Metrics struct {
	Steps         int
	Cells         int
	PhiKernelTime time.Duration // summed over ranks
	MuKernelTime  time.Duration
	CommPhi       comm.Stats
	CommMu        comm.Stats
	WallTime      time.Duration
}

// MLUPs returns million lattice updates per second based on wall time.
func (m *Metrics) MLUPs() float64 {
	if m.WallTime <= 0 {
		return 0
	}
	return float64(m.Cells) * float64(m.Steps) / m.WallTime.Seconds() / 1e6
}

// PhiKernelMLUPs returns the φ-kernel-only rate (per-rank times are summed,
// so this is a per-core rate multiplied by rank count when ranks run truly
// in parallel).
func (m *Metrics) PhiKernelMLUPs() float64 {
	if m.PhiKernelTime <= 0 {
		return 0
	}
	return float64(m.Cells) * float64(m.Steps) / m.PhiKernelTime.Seconds() / 1e6
}

// MuKernelMLUPs returns the µ-kernel-only rate.
func (m *Metrics) MuKernelMLUPs() float64 {
	if m.MuKernelTime <= 0 {
		return 0
	}
	return float64(m.Cells) * float64(m.Steps) / m.MuKernelTime.Seconds() / 1e6
}

// RunMeasured advances n steps and returns timing metrics for exactly those
// steps.
func (s *Sim) RunMeasured(n int) Metrics {
	return s.Measure(func() { s.Run(n) })
}

// Measure resets the metrics, runs fn (which should advance the simulation,
// e.g. through Run or RunSchedule) and returns timing metrics for exactly
// the steps fn took.
func (s *Sim) Measure(fn func()) Metrics {
	s.ResetMetrics()
	before := s.step
	t0 := time.Now()
	fn()
	wall := time.Since(t0)

	m := Metrics{Steps: s.step - before, Cells: s.GlobalCells(), WallTime: wall}
	for _, r := range s.ranks {
		m.PhiKernelTime += r.phiKernelTime
		m.MuKernelTime += r.muKernelTime
	}
	for r := 0; r < s.World.NumRanks(); r++ {
		m.CommPhi.Add(s.World.RankTagStats(r, comm.TagPhi))
		m.CommMu.Add(s.World.RankTagStats(r, comm.TagMu))
	}
	return m
}

// ResetMetrics clears all accumulated timing state.
func (s *Sim) ResetMetrics() {
	for _, r := range s.ranks {
		r.phiKernelTime = 0
		r.muKernelTime = 0
	}
	s.World.ResetStats()
}

// SolidFraction returns the global solid volume fraction.
func (s *Sim) SolidFraction() float64 {
	sums := make([]float64, len(s.ranks))
	s.forAllRanks(func(r *rank) {
		f := r.fields.PhiSrc
		t := 0.0
		f.Interior(func(x, y, z int) {
			for a := 0; a < core.NPhases-1; a++ {
				t += f.At(a, x, y, z)
			}
		})
		sums[r.id] = t
	})
	total := 0.0
	for _, v := range sums {
		total += v
	}
	return total / float64(s.GlobalCells())
}

// PhaseFractions returns the global volume fraction of every phase.
func (s *Sim) PhaseFractions() [core.NPhases]float64 {
	perRank := make([][core.NPhases]float64, len(s.ranks))
	s.forAllRanks(func(r *rank) {
		f := r.fields.PhiSrc
		var acc [core.NPhases]float64
		f.Interior(func(x, y, z int) {
			for a := 0; a < core.NPhases; a++ {
				acc[a] += f.At(a, x, y, z)
			}
		})
		perRank[r.id] = acc
	})
	var out [core.NPhases]float64
	inv := 1 / float64(s.GlobalCells())
	for _, acc := range perRank {
		for a := 0; a < core.NPhases; a++ {
			out[a] += acc[a] * inv
		}
	}
	return out
}

// HasNaN reports whether any rank's source fields contain NaN/Inf.
func (s *Sim) HasNaN() bool {
	bad := make([]bool, len(s.ranks))
	s.forAllRanks(func(r *rank) {
		bad[r.id] = r.fields.PhiSrc.HasNaN() || r.fields.MuSrc.HasNaN()
	})
	for _, b := range bad {
		if b {
			return true
		}
	}
	return false
}

// GatherGlobalPhi assembles the global φ field on a single Field (for
// output, analysis and mesh extraction). Intended for post-processing, not
// the hot loop.
func (s *Sim) GatherGlobalPhi() *grid.Field {
	nx, ny, nz := s.Cfg.BG.GlobalCells()
	out := grid.NewField(nx, ny, nz, core.NPhases, 1, grid.SoA)
	for _, r := range s.ranks {
		ox, oy, oz := s.Cfg.BG.Origin(r.id)
		f := r.fields.PhiSrc
		f.Interior(func(x, y, z int) {
			for a := 0; a < core.NPhases; a++ {
				out.Set(a, ox+x, oy+y, oz+z, f.At(a, x, y, z))
			}
		})
	}
	return out
}

// GatherGlobalMu assembles the global µ field.
func (s *Sim) GatherGlobalMu() *grid.Field {
	nx, ny, nz := s.Cfg.BG.GlobalCells()
	out := grid.NewField(nx, ny, nz, core.NRed, 1, grid.SoA)
	for _, r := range s.ranks {
		ox, oy, oz := s.Cfg.BG.Origin(r.id)
		f := r.fields.MuSrc
		f.Interior(func(x, y, z int) {
			for k := 0; k < core.NRed; k++ {
				out.Set(k, ox+x, oy+y, oz+z, f.At(k, x, y, z))
			}
		})
	}
	return out
}

// RankFields exposes a rank's field bundle (used by checkpointing and the
// benchmark harness).
func (s *Sim) RankFields(r int) *kernels.Fields { return s.ranks[r].fields }

// NumRanks returns the number of block owners.
func (s *Sim) NumRanks() int { return len(s.ranks) }
