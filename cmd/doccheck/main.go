// Command doccheck is the doc-health gate run by CI: it fails when a
// package lacks a package-level doc comment or exports an identifier
// without one. Only non-test files are checked; _test.go helpers may stay
// terse, and String methods are exempt (fmt.Stringer is self-describing).
//
// Usage:
//
//	go run ./cmd/doccheck internal/jobd internal/schedule internal/ckpt internal/comm
//
// Exit status 1 lists every offending declaration as file:line: name.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir>...")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := 0
	for _, dir := range flag.Args() {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory and reports undocumented exported
// declarations; returns the count.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for path, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			bad += checkFile(fset, f, path)
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package doc comment\n", dir, pkg.Name)
			bad++
		}
	}
	return bad
}

// checkFile walks one file's top-level declarations.
func checkFile(fset *token.FileSet, f *ast.File, path string) int {
	bad := 0
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s is exported but undocumented\n", filepath.ToSlash(p.Filename), p.Line, what)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Name.Name != "String" && d.Doc == nil && receiverExported(d) {
				report(d.Pos(), declName(d))
			}
		case *ast.GenDecl:
			bad += checkGenDecl(report, d)
		}
	}
	return bad
}

// receiverExported reports whether a method's receiver type is itself
// exported (methods on unexported types are internal API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// declName renders a function or method name for the report.
func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}

// checkGenDecl handles const/var/type blocks: the block doc covers single
// specs; grouped specs need per-spec docs only when the block has none.
func checkGenDecl(report func(token.Pos, string), d *ast.GenDecl) int {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return 0
	}
	bad := 0
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
				report(sp.Pos(), "type "+sp.Name.Name)
				bad++
			}
		case *ast.ValueSpec:
			for _, name := range sp.Names {
				if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					report(name.Pos(), d.Tok.String()+" "+name.Name)
					bad++
				}
			}
		}
	}
	return bad
}
