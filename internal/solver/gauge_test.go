package solver

import (
	"sync"
	"testing"
)

// Sub-gauge workers count on both the class gauge and the root, so the
// global high-water mark still bounds the sum of all classes.
func TestWorkerGaugeClasses(t *testing.T) {
	root := &WorkerGauge{}
	small := root.Class("small")
	large := root.Class("large")
	if root.Class("small") != small {
		t.Fatal("Class is not idempotent")
	}
	if small.Class("large") != large {
		t.Fatal("Class on a sub-gauge must delegate to the root")
	}

	small.enter()
	large.enter()
	large.enter()
	if got := root.Active(); got != 3 {
		t.Fatalf("root active %d, want 3", got)
	}
	if got := small.Active(); got != 1 {
		t.Fatalf("small active %d, want 1", got)
	}
	if got := large.Max(); got != 2 {
		t.Fatalf("large max %d, want 2", got)
	}
	small.exit()
	large.exit()
	large.exit()
	if got := root.Active(); got != 0 {
		t.Fatalf("root active %d after exits, want 0", got)
	}
	if got := root.Max(); got != 3 {
		t.Fatalf("root max %d, want 3", got)
	}
}

// Concurrent enters through different classes must never lose a count on
// the shared root (run under -race in CI).
func TestWorkerGaugeClassesConcurrent(t *testing.T) {
	root := &WorkerGauge{}
	var wg sync.WaitGroup
	for _, name := range []string{"a", "b", "c", "d"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			g := root.Class(name)
			for i := 0; i < 1000; i++ {
				g.enter()
				g.exit()
			}
		}(name)
	}
	wg.Wait()
	if got := root.Active(); got != 0 {
		t.Fatalf("root active %d, want 0", got)
	}
	if max := root.Max(); max < 1 || max > 4 {
		t.Fatalf("root max %d, want within [1,4]", max)
	}
}
