package solver

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/faultfs"
	"repro/internal/kernels"
)

// fault.go isolates kernel panics. A panic inside a sweep — a real bug or
// an armed faultfs point — must not kill the process or, worse, deadlock
// it: a sweep runs on a pool worker or a rank goroutine, and dying there
// leaves the dispatching rank blocked on its WaitGroup and neighbor ranks
// blocked in ghost exchanges. So every sweep task recovers its own panics,
// records the first one in the Sim's fault sink, and returns normally. The
// step protocol then completes mechanically — the faulted slab holds
// garbage, ghost exchanges ship it around — and the fault surfaces at the
// next step boundary, where runStep refuses to continue. RunSchedule
// returns the fault as an error (the job daemon routes it into the job's
// retry/quarantine path); the plain Run loop re-panics it, preserving the
// fail-fast crash of the CLI tools.

// KernelFault is a panic captured inside a kernel sweep. It satisfies
// error so it can travel through RunSchedule's error return into the job
// daemon's failure handling.
type KernelFault struct {
	// Op names the sweep that panicked ("phi", "mu", "mu-local",
	// "mu-neighbor").
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

// Error implements the error interface.
func (f *KernelFault) Error() string {
	return fmt.Sprintf("solver: kernel panic in %s-sweep: %v", f.Op, f.Value)
}

func (op sweepOp) String() string {
	switch op {
	case opPhi:
		return "phi"
	case opMu:
		return "mu"
	case opMuLocal:
		return "mu-local"
	default:
		return "mu-neighbor"
	}
}

// SweepPoint is the faultfs crash-point name hit once per sweep task (a
// per-op variant "solver.sweep.<op>" is hit alongside it). Arming it in
// Config.Faults panics inside the sweep exactly where a poisoned kernel
// would, exercising the full recovery path.
const SweepPoint = "solver.sweep"

// faultSink collects the first kernel fault of a simulation. It is a
// separate allocation so queued sweep tasks reference it, not the Sim,
// keeping the Sim collectable (its cleanup closes the worker pool).
type faultSink struct {
	first  atomic.Pointer[KernelFault]
	points *faultfs.Points
}

// record stores the first fault; later ones are dropped (concurrent slabs
// of one poisoned sweep may all panic).
func (fs *faultSink) record(op sweepOp, v any) {
	f := &KernelFault{Op: op.String(), Value: v, Stack: string(debug.Stack())}
	fs.first.CompareAndSwap(nil, f)
}

// sweepPointName holds the per-op crash-point names, precomputed so the
// hot path never builds strings.
var sweepPointName = [4]string{
	opPhi:        SweepPoint + ".phi",
	opMu:         SweepPoint + ".mu",
	opMuLocal:    SweepPoint + ".mu-local",
	opMuNeighbor: SweepPoint + ".mu-neighbor",
}

// hit fires the sweep crash points for one task.
func (fs *faultSink) hit(op sweepOp) {
	if fs.points == nil {
		return
	}
	fs.points.Hit(SweepPoint)
	fs.points.Hit(sweepPointName[op])
}

// Fault returns the first kernel panic captured by this simulation's
// sweeps, or nil. A faulted simulation refuses to step further.
func (s *Sim) Fault() *KernelFault { return s.faults.first.Load() }

// runGuarded executes the task with panic isolation: the fault-injection
// points fire first, and any panic (injected or real) is recorded in the
// sink instead of unwinding into the pool worker or rank goroutine. The
// deferred closure captures only the sink and the op — capturing t would
// heap-escape every serial-path sweepTask (the steady-state step must stay
// allocation-free).
func (t *sweepTask) runGuarded(sc *kernels.Scratch) {
	sink, op := t.sink, t.op
	defer func() {
		if r := recover(); r != nil {
			if sink == nil {
				panic(r)
			}
			sink.record(op, r)
		}
	}()
	sink.hit(op)
	t.run(sc)
}
