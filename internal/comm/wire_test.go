package comm

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// goldenFrames are the frames pinned by testdata/wireframes: any change to
// the wire layout breaks these fixtures, forcing a deliberate version
// bump. NaN and negative zero are included so bit-level payload fidelity
// is part of the pinned contract.
func goldenFrames() map[string]*wireFrame {
	return map[string]*wireFrame{
		"data.bin": {
			Kind: kindData, Tag: byte(TagMu), Face: 3, From: 1, To: 2, Seq: 7,
			Payload: []float64{1.5, math.Copysign(0, -1), math.NaN(), math.Inf(1)},
		},
		"sleep_token.bin": {
			Kind: kindData, Tag: byte(TagPhi), Face: 0, From: 4, To: 5, Seq: 12,
			Payload: []float64{},
		},
		"hello.bin": {
			Kind: kindHello, Tag: ctrlTag, From: 1, To: 0,
			Payload: []float64{2, 2, 1, 8, 8, 12, 3, 2, 4, 0},
		},
		"barrier.bin": {
			Kind: kindBarrier, Tag: ctrlTag, From: 3,
			Payload: []float64{},
		},
	}
}

// TestGoldenWireFrames pins the frame format: every fixture must decode to
// its known frame and re-encode to its exact bytes. Regenerate fixtures
// (after a deliberate format change, with a version bump) by running the
// test with UPDATE_WIREFRAMES=1.
func TestGoldenWireFrames(t *testing.T) {
	dir := filepath.Join("testdata", "wireframes")
	update := os.Getenv("UPDATE_WIREFRAMES") != ""
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range goldenFrames() {
		path := filepath.Join(dir, name)
		enc := appendFrame(nil, want)
		if update {
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		fixture, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden fixture %s (regenerate with UPDATE_WIREFRAMES=1): %v", name, err)
		}
		if !bytes.Equal(enc, fixture) {
			t.Errorf("%s: encoding changed:\n got %x\nwant %x", name, enc, fixture)
		}
		got, err := decodeFrame(fixture, 1<<20)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.Kind != want.Kind || got.Tag != want.Tag || got.Face != want.Face ||
			got.From != want.From || got.To != want.To || got.Seq != want.Seq {
			t.Errorf("%s: header mismatch: got %+v want %+v", name, got, want)
		}
		if len(got.Payload) != len(want.Payload) {
			t.Fatalf("%s: payload length %d, want %d", name, len(got.Payload), len(want.Payload))
		}
		for i := range want.Payload {
			if math.Float64bits(got.Payload[i]) != math.Float64bits(want.Payload[i]) {
				t.Errorf("%s: payload[%d] bits %x, want %x", name, i,
					math.Float64bits(got.Payload[i]), math.Float64bits(want.Payload[i]))
			}
		}
	}
}

// TestDecodeFrameRejects covers the decoder's guard rails directly.
func TestDecodeFrameRejects(t *testing.T) {
	good := appendFrame(nil, &wireFrame{Kind: kindData, Payload: []float64{1, 2}})

	bad := append([]byte(nil), good...)
	copy(bad[0:4], "XXXX")
	if _, err := decodeFrame(bad, 100); err == nil {
		t.Error("bad magic accepted")
	}

	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, err := decodeFrame(bad, 100); err == nil {
		t.Error("bad version accepted")
	}

	bad = append([]byte(nil), good...)
	bad[5] = 0
	if _, err := decodeFrame(bad, 100); err == nil {
		t.Error("kind 0 accepted")
	}

	if _, err := decodeFrame(good, 1); err == nil {
		t.Error("payload above bound accepted")
	}
	if _, err := decodeFrame(good[:10], 100); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := decodeFrame(good[:len(good)-3], 100); err == nil {
		t.Error("truncated payload accepted")
	}
}

// FuzzWireFrame throws arbitrary bytes at the frame decoder: it must never
// panic or over-allocate, and any frame it accepts must re-encode to the
// exact bytes it consumed (round-trip fidelity, NaN payloads included).
func FuzzWireFrame(f *testing.F) {
	for _, fr := range goldenFrames() {
		f.Add(appendFrame(nil, fr))
	}
	f.Add([]byte(wireMagic))
	f.Add(appendFrame(nil, &wireFrame{Kind: kindGather, Tag: ctrlTag, From: 3, Payload: []float64{math.NaN()}})[:30])
	// Oversized length field.
	huge := appendFrame(nil, &wireFrame{Kind: kindData})
	huge[24], huge[25], huge[26], huge[27] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFloats = 1 << 16
		fr, err := decodeFrame(data, maxFloats)
		if err != nil {
			return
		}
		if len(fr.Payload) > maxFloats {
			t.Fatalf("decoder exceeded payload bound: %d floats", len(fr.Payload))
		}
		enc := appendFrame(nil, fr)
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("round trip diverged:\n in  %x\n out %x", data[:len(enc)], enc)
		}
	})
}
