package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/jobd"
	"repro/internal/jobd/store"
)

// monitor.go — the gateway's single-writer control loop. One pass runs
// per tick (and after any submit/registration kick):
//
//	probe     → every daemon's /healthz; DeadAfter consecutive transport
//	            failures declare it dead and requeue its children
//	place     → queued children go to the least-loaded alive daemon
//	poll      → placed children's states are pulled per daemon, batched
//	replicate → done children's result+schedule blobs land in the
//	            gateway store, after which the child is settled
//	persist   → array and settled-child manifests spill to the store so
//	            a restarted gateway resumes where it stopped
//
// Every step snapshots targets under g.mu, does its HTTP unlocked, and
// applies outcomes back under g.mu — daemon I/O never blocks the API.
// Requeue is sound because jobs are pure functions of their specs: the
// replacement run yields bit-identical bytes to the lost one.

// kickMonitor asks the monitor for an immediate extra pass (submit,
// registration); the nudge is merged if one is already pending.
func (g *Gateway) kickMonitor() {
	select {
	case g.kick <- struct{}{}:
	default:
	}
}

// monitorPass runs one full control-loop iteration.
func (g *Gateway) monitorPass() {
	g.probeDaemons()
	g.placeChildren()
	g.pollChildren()
	g.replicateResults()
	g.persistDirty()
}

// settledLocked reports whether the gateway is done with the child:
// failed and canceled children settle as soon as observed; done children
// settle once their result is replicated (or immediately, with no
// gateway store). A done child whose daemon dies before replication is
// requeued — determinism makes the rerun yield the same bytes.
func (g *Gateway) settledLocked(c *child) bool {
	switch c.state {
	case jobd.StateFailed, jobd.StateCanceled:
		return true
	case jobd.StateDone:
		return g.store == nil || c.resultHash != ""
	}
	return false
}

// probeDaemons health-checks every daemon and requeues the children of
// any daemon that just crossed the death threshold. Any HTTP response —
// including a degraded daemon's 503 — counts as alive; only transport
// failure counts against the daemon.
func (g *Gateway) probeDaemons() {
	g.mu.Lock()
	urls := make([]string, 0, len(g.daemons))
	for url := range g.daemons {
		urls = append(urls, url)
	}
	g.mu.Unlock()
	sort.Strings(urls)

	ok := map[string]bool{}
	for _, url := range urls {
		resp, err := g.client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			ok[url] = true
		}
	}

	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, url := range urls {
		d := g.daemons[url]
		if d == nil {
			continue
		}
		if ok[url] {
			if !d.alive {
				g.logf("fleet: daemon %s alive", url)
			}
			d.alive = true
			d.fails = 0
			d.lastSeen = now
			continue
		}
		d.fails++
		if d.alive && d.fails >= g.cfg.DeadAfter {
			d.alive = false
			g.logf("fleet: daemon %s dead after %d failed probes", url, d.fails)
			g.requeueDaemonLocked(url)
		}
	}
}

// requeueDaemonLocked resets every unsettled child placed on a dead
// daemon back to queued so the placer re-runs it elsewhere; g.mu must be
// held.
func (g *Gateway) requeueDaemonLocked(url string) {
	for _, c := range g.children {
		if c.daemonURL != url || g.settledLocked(c) {
			continue
		}
		c.daemonURL = ""
		c.remoteID = ""
		c.state = jobd.StateQueued
		c.requeues++
		g.metrics.requeue()
		g.logf("fleet: requeued %s (daemon %s died)", c.id, url)
	}
}

// placeChildren submits every queued, unplaced child to the least-loaded
// alive daemon (load = unsettled gateway children placed there;
// deterministic URL tiebreak).
func (g *Gateway) placeChildren() {
	type placement struct {
		c   *child
		url string
	}
	var plan []placement
	g.mu.Lock()
	load := map[string]int{}
	alive := []string{}
	for url, d := range g.daemons {
		if d.alive {
			alive = append(alive, url)
			load[url] = 0
		}
	}
	if len(alive) == 0 {
		g.mu.Unlock()
		return
	}
	sort.Strings(alive)
	for _, c := range g.children {
		if c.daemonURL != "" && !g.settledLocked(c) {
			load[c.daemonURL]++
		}
	}
	var pending []*child
	for _, c := range g.children {
		if c.daemonURL == "" && c.state == jobd.StateQueued {
			pending = append(pending, c)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].id < pending[j].id })
	for _, c := range pending {
		best := ""
		for _, url := range alive {
			if best == "" || load[url] < load[best] {
				best = url
			}
		}
		load[best]++
		plan = append(plan, placement{c, best})
	}
	g.mu.Unlock()

	for _, p := range plan {
		body, err := json.Marshal(p.c.spec)
		if err != nil {
			continue
		}
		resp, err := g.client.Post(p.url+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			continue // the prober decides whether the daemon is dead
		}
		var st jobd.Status
		decodeErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated || decodeErr != nil {
			g.logf("fleet: place %s on %s: status %d", p.c.id, p.url, resp.StatusCode)
			continue
		}
		g.mu.Lock()
		// The child may have been canceled while the submit was in flight.
		if p.c.daemonURL == "" && p.c.state == jobd.StateQueued {
			p.c.daemonURL = p.url
			p.c.remoteID = st.ID
			p.c.status = st
			p.c.state = st.State
		}
		g.mu.Unlock()
	}
}

// pollChildren pulls job states from every daemon hosting unsettled
// children, one batched GET /jobs per daemon. A placed child missing
// from its daemon's listing means the daemon lost its record (e.g. a
// restart without spool) — the child is requeued.
func (g *Gateway) pollChildren() {
	g.mu.Lock()
	byDaemon := map[string][]*child{}
	for _, c := range g.children {
		if c.daemonURL != "" && !g.settledLocked(c) {
			byDaemon[c.daemonURL] = append(byDaemon[c.daemonURL], c)
		}
	}
	g.mu.Unlock()

	urls := make([]string, 0, len(byDaemon))
	for url := range byDaemon {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	for _, url := range urls {
		resp, err := g.client.Get(url + "/jobs")
		if err != nil {
			continue
		}
		var list []jobd.Status
		decodeErr := json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decodeErr != nil {
			continue
		}
		remote := make(map[string]jobd.Status, len(list))
		for _, st := range list {
			remote[st.ID] = st
		}
		g.mu.Lock()
		for _, c := range byDaemon[url] {
			if c.daemonURL != url {
				continue // requeued meanwhile
			}
			st, ok := remote[c.remoteID]
			if !ok {
				c.daemonURL = ""
				c.remoteID = ""
				c.state = jobd.StateQueued
				c.requeues++
				g.metrics.requeue()
				g.logf("fleet: requeued %s (daemon %s forgot it)", c.id, url)
				continue
			}
			c.status = st
			c.state = st.State
		}
		g.mu.Unlock()
	}
}

// replicateResults copies done children's result and schedule blobs from
// their daemons into the gateway store and spills the child manifest, at
// which point the child is settled and survives both daemon loss and
// gateway restarts.
func (g *Gateway) replicateResults() {
	g.mu.Lock()
	st := g.store
	var cands []*child
	if st != nil {
		for _, c := range g.children {
			if c.state == jobd.StateDone && c.resultHash == "" && c.daemonURL != "" {
				cands = append(cands, c)
			}
		}
	}
	g.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })

	for _, c := range cands {
		g.mu.Lock()
		url, remoteID := c.daemonURL, c.remoteID
		g.mu.Unlock()
		if url == "" {
			continue
		}
		result, ok := g.fetchBlob(url + "/jobs/" + remoteID + "/result")
		if !ok {
			continue
		}
		sched, ok := g.fetchBlob(url + "/jobs/" + remoteID + "/schedule")
		if !ok {
			continue
		}
		// Blobs land before the manifest referencing them, under one store
		// reservation — the same crash-ordering discipline the daemons use.
		release := st.Reserve()
		rh, err := st.PutBlob(result)
		var sh string
		if err == nil {
			sh, err = st.PutBlob(sched)
		}
		if err != nil {
			release()
			g.logf("fleet: replicate %s: %v", c.id, err)
			continue
		}
		g.mu.Lock()
		c.resultHash = rh
		c.schedHash = sh
		m := childManifestLocked(c)
		g.mu.Unlock()
		err = st.PutManifest(store.JobsBucket, c.id, &m)
		release()
		if err != nil {
			g.logf("fleet: persist %s: %v", c.id, err)
			continue
		}
		g.mu.Lock()
		c.persisted = true
		g.mu.Unlock()
		g.metrics.replicated()
		g.logf("fleet: replicated %s from %s", c.id, url)
	}
}

// fetchBlob GETs a daemon blob endpoint, returning ok only on a 200.
func (g *Gateway) fetchBlob(url string) ([]byte, bool) {
	resp, err := g.client.Get(url)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false
	}
	return blob, true
}

// gwChildManifest is the gateway store record of one settled child.
type gwChildManifest struct {
	ID       string     `json:"id"`
	Array    string     `json:"array"`
	Tenant   string     `json:"tenant"`
	Spec     jobd.Spec  `json:"spec"`
	State    jobd.State `json:"state"`
	Step     int        `json:"step"`
	Time     float64    `json:"time"`
	Solid    float64    `json:"solid"`
	Error    string     `json:"error,omitempty"`
	Requeues int        `json:"requeues,omitempty"`
	Result   string     `json:"result,omitempty"`   // blob hash in the gateway store
	Schedule string     `json:"schedule,omitempty"` // blob hash in the gateway store
}

// gwArrayManifest is the gateway store record of one array.
type gwArrayManifest struct {
	ID       string         `json:"id"`
	Tenant   string         `json:"tenant"`
	Name     string         `json:"name,omitempty"`
	Spec     jobd.ArraySpec `json:"spec"`
	Children int            `json:"children"`
}

// childManifestLocked builds a child's store manifest; g.mu must be held.
func childManifestLocked(c *child) gwChildManifest {
	return gwChildManifest{
		ID: c.id, Array: c.arrayID, Tenant: c.tenant, Spec: c.spec,
		State: c.state, Step: c.status.Step, Time: c.status.Time,
		Solid: c.status.Solid, Error: c.status.Error, Requeues: c.requeues,
		Result: c.resultHash, Schedule: c.schedHash,
	}
}

// persistDirty spills array manifests and settled children that have not
// reached the store yet (failed/canceled children have no blobs; done
// children were already persisted by replicateResults).
func (g *Gateway) persistDirty() {
	g.mu.Lock()
	st := g.store
	if st == nil {
		g.mu.Unlock()
		return
	}
	type arrayWork struct {
		arr *gwArray
		m   gwArrayManifest
	}
	type childWork struct {
		c *child
		m gwChildManifest
	}
	var arrays []arrayWork
	var children []childWork
	for _, arr := range g.sortedArrays() {
		if !arr.persisted {
			arrays = append(arrays, arrayWork{arr, gwArrayManifest{
				ID: arr.id, Tenant: arr.tenant, Name: arr.name,
				Spec: arr.spec, Children: len(arr.children),
			}})
		}
	}
	for _, c := range g.children {
		if !c.persisted && g.settledLocked(c) {
			children = append(children, childWork{c, childManifestLocked(c)})
		}
	}
	g.mu.Unlock()
	sort.Slice(children, func(i, j int) bool { return children[i].c.id < children[j].c.id })

	for _, w := range arrays {
		release := st.Reserve()
		err := st.PutManifest(store.ArraysBucket, w.m.ID, &w.m)
		release()
		if err != nil {
			g.logf("fleet: persist array %s: %v", w.m.ID, err)
			continue
		}
		g.mu.Lock()
		w.arr.persisted = true
		g.mu.Unlock()
	}
	for _, w := range children {
		release := st.Reserve()
		err := st.PutManifest(store.JobsBucket, w.m.ID, &w.m)
		release()
		if err != nil {
			g.logf("fleet: persist child %s: %v", w.m.ID, err)
			continue
		}
		g.mu.Lock()
		w.c.persisted = true
		g.mu.Unlock()
	}
}

// loadStore restores arrays and settled children a previous gateway
// instance spilled. Array specs re-expand deterministically, so children
// that never settled are rebuilt as queued and re-placed by the monitor
// — the reruns produce the same bytes the lost runs would have.
func (g *Gateway) loadStore() error {
	st := g.store
	err := st.Manifests(store.ArraysBucket, func(id string, blob []byte) error {
		var m gwArrayManifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return fmt.Errorf("array manifest %s: %w", id, err)
		}
		specs, err := m.Spec.Expand()
		if err != nil {
			return fmt.Errorf("re-expand array %s: %w", id, err)
		}
		arr := &gwArray{id: m.ID, tenant: m.Tenant, name: m.Name, spec: m.Spec, persisted: true}
		var n int
		if _, err := fmt.Sscanf(m.ID, "fleet-%d", &n); err == nil {
			if n > g.nextArrayID {
				g.nextArrayID = n
			}
			arr.seq = int64(n)
		}
		for i, sp := range specs {
			c := &child{
				id:      fmt.Sprintf("%s.%03d", arr.id, i),
				arrayID: arr.id,
				tenant:  m.Tenant,
				spec:    sp,
				state:   jobd.StateQueued,
			}
			arr.children = append(arr.children, c)
			g.children[c.id] = c
		}
		g.arrays[arr.id] = arr
		return nil
	})
	if err != nil {
		return err
	}
	return st.Manifests(store.JobsBucket, func(id string, blob []byte) error {
		var m gwChildManifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return fmt.Errorf("child manifest %s: %w", id, err)
		}
		c, ok := g.children[m.ID]
		if !ok {
			// The array manifest is best-effort; a settled child can outlive
			// it and still serve its replicated result standalone.
			c = &child{id: m.ID, arrayID: m.Array, tenant: m.Tenant, spec: m.Spec}
			g.children[m.ID] = c
		}
		c.state = m.State
		c.status = jobd.Status{ID: m.ID, State: m.State, Step: m.Step,
			Time: m.Time, Solid: m.Solid, Error: m.Error, Params: m.Spec.Params}
		c.requeues = m.Requeues
		c.resultHash = m.Result
		c.schedHash = m.Schedule
		c.persisted = true
		return nil
	})
}
