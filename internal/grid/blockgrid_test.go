package grid

import (
	"testing"
	"testing/quick"
)

func TestBlockGridBasics(t *testing.T) {
	bg, err := NewBlockGrid(2, 3, 4, 10, 20, 30, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if bg.NumBlocks() != 24 {
		t.Errorf("NumBlocks = %d", bg.NumBlocks())
	}
	nx, ny, nz := bg.GlobalCells()
	if nx != 20 || ny != 60 || nz != 120 {
		t.Errorf("GlobalCells = %d,%d,%d", nx, ny, nz)
	}
}

func TestBlockGridInvalid(t *testing.T) {
	if _, err := NewBlockGrid(0, 1, 1, 1, 1, 1, [3]bool{}); err == nil {
		t.Error("expected error for zero block count")
	}
	if _, err := NewBlockGrid(1, 1, 1, 1, 0, 1, [3]bool{}); err == nil {
		t.Error("expected error for zero block size")
	}
}

func TestCoordsRankRoundTrip(t *testing.T) {
	bg, _ := NewBlockGrid(3, 4, 5, 1, 1, 1, [3]bool{})
	for r := 0; r < bg.NumBlocks(); r++ {
		x, y, z := bg.Coords(r)
		if bg.Rank(x, y, z) != r {
			t.Fatalf("round trip failed for rank %d", r)
		}
	}
}

func TestOrigin(t *testing.T) {
	bg, _ := NewBlockGrid(2, 2, 2, 8, 9, 10, [3]bool{})
	ox, oy, oz := bg.Origin(bg.Rank(1, 1, 1))
	if ox != 8 || oy != 9 || oz != 10 {
		t.Errorf("Origin = %d,%d,%d", ox, oy, oz)
	}
}

func TestNeighborInterior(t *testing.T) {
	bg, _ := NewBlockGrid(3, 3, 3, 4, 4, 4, [3]bool{})
	center := bg.Rank(1, 1, 1)
	for f := Face(0); f < NumFaces; f++ {
		n, ok := bg.Neighbor(center, f)
		if !ok {
			t.Fatalf("center should have neighbor across %v", f)
		}
		// The neighbor's neighbor across the opposite face is center.
		back, ok := bg.Neighbor(n, f.Opposite())
		if !ok || back != center {
			t.Fatalf("neighbor reciprocity broken across %v", f)
		}
	}
}

func TestNeighborBoundaryNonPeriodic(t *testing.T) {
	bg, _ := NewBlockGrid(2, 2, 2, 4, 4, 4, [3]bool{})
	if _, ok := bg.Neighbor(bg.Rank(0, 0, 0), XMin); ok {
		t.Error("x- of corner block should have no neighbor")
	}
	if _, ok := bg.Neighbor(bg.Rank(1, 1, 1), ZMax); ok {
		t.Error("z+ of corner block should have no neighbor")
	}
}

func TestNeighborPeriodicWrap(t *testing.T) {
	bg, _ := NewBlockGrid(4, 1, 1, 4, 4, 4, [3]bool{true, false, false})
	n, ok := bg.Neighbor(bg.Rank(0, 0, 0), XMin)
	if !ok || n != bg.Rank(3, 0, 0) {
		t.Errorf("periodic wrap failed: %d %v", n, ok)
	}
}

func TestNeighborSelfPeriodicSingleBlock(t *testing.T) {
	bg, _ := NewBlockGrid(1, 1, 1, 4, 4, 4, [3]bool{true, true, true})
	n, ok := bg.Neighbor(0, XMin)
	if !ok || n != 0 {
		t.Errorf("single periodic block should self-neighbor, got %d %v", n, ok)
	}
}

func TestBlockBCs(t *testing.T) {
	bg, _ := NewBlockGrid(2, 2, 2, 4, 4, 4, [3]bool{true, true, false})
	domain := DirectionalSolidification([]float64{1})
	// Bottom block keeps the Dirichlet bottom; its top face is interior.
	b := bg.BlockBCs(bg.Rank(0, 0, 0), domain)
	if b[ZMin].Kind != BCDirichlet {
		t.Errorf("bottom block z- = %v, want dirichlet", b[ZMin].Kind)
	}
	if b[ZMax].Kind != BCNone {
		t.Errorf("bottom block z+ = %v, want none", b[ZMax].Kind)
	}
	// Lateral faces are interior communication (2 blocks per periodic axis).
	if b[XMin].Kind != BCNone {
		t.Errorf("x- = %v, want none (exchange)", b[XMin].Kind)
	}
	// Top block keeps Neumann top.
	bTop := bg.BlockBCs(bg.Rank(0, 0, 1), domain)
	if bTop[ZMax].Kind != BCNeumann {
		t.Errorf("top block z+ = %v, want neumann", bTop[ZMax].Kind)
	}
}

func TestBlockBCsSinglePeriodicAxis(t *testing.T) {
	bg, _ := NewBlockGrid(1, 2, 1, 4, 4, 4, [3]bool{true, true, true})
	b := bg.BlockBCs(0, AllPeriodic())
	if b[XMin].Kind != BCPeriodic {
		t.Errorf("single-block periodic axis should use local periodic BC, got %v", b[XMin].Kind)
	}
	if b[YMin].Kind != BCNone {
		t.Errorf("two-block periodic axis should use exchange, got %v", b[YMin].Kind)
	}
}

// Property: every interior neighbor relation is reciprocal.
func TestNeighborReciprocityProperty(t *testing.T) {
	f := func(px, py, pz uint8, perx, pery, perz bool) bool {
		p := [3]int{int(px%3) + 1, int(py%3) + 1, int(pz%3) + 1}
		bg, err := NewBlockGrid(p[0], p[1], p[2], 2, 2, 2, [3]bool{perx, pery, perz})
		if err != nil {
			return false
		}
		for r := 0; r < bg.NumBlocks(); r++ {
			for f := Face(0); f < NumFaces; f++ {
				n, ok := bg.Neighbor(r, f)
				if !ok {
					continue
				}
				if n == r {
					continue // self periodic
				}
				back, ok2 := bg.Neighbor(n, f.Opposite())
				if !ok2 || back != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
