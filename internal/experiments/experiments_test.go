package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/solver"
)

// Small-block smoke and shape tests; the cmd/benchfig tool runs the
// paper-sized versions.

func TestFig5Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf, 16, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cellwise", "four cells", "interface", "liquid", "solid"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 output missing %q", want)
		}
	}
}

func TestFig6Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(&buf, 12, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"general purpose code", "with shortcuts", "speedup over general-purpose code"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 output missing %q", want)
		}
	}
}

func TestFig7Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(&buf, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "block 40^3") || !strings.Contains(buf.String(), "block 20^3") {
		t.Error("Fig7 output missing block sizes")
	}
}

func TestFig8Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8(&buf, 12, 2, 4, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SuperMUC model") {
		t.Error("Fig8 output missing model block")
	}
}

func TestParallelScalingRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := ParallelScaling(&buf, 16, 2, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "workers") || !strings.Contains(out, "speedup") {
		t.Error("ParallelScaling output missing table header")
	}
}

func TestFig9Shape(t *testing.T) {
	var buf bytes.Buffer
	Fig9(&buf)
	out := buf.String()
	for _, want := range []string{"SuperMUC", "Hornet", "JUQUEEN", "parallel efficiency"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig9 output missing %q", want)
		}
	}
}

func TestRooflineRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Roofline(&buf, 12, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"126.3", "1384", "27%", "43%"} {
		if !strings.Contains(out, want) {
			t.Errorf("roofline output missing %q", want)
		}
	}
}

// The optimization ladder must be broadly monotone: the fully optimized
// kernels beat the general-purpose emulation by a solid factor.
func TestLadderSpeedupDirection(t *testing.T) {
	const edge, steps = 16, 2
	gen, err := MeasureMuVariant(kernels.VarGeneral, solver.ScenarioInterface, edge, steps)
	if err != nil {
		t.Fatal(err)
	}
	best, err := MeasureMuVariant(kernels.VarShortcut, solver.ScenarioInterface, edge, steps)
	if err != nil {
		t.Fatal(err)
	}
	if best <= gen {
		t.Errorf("optimized mu-kernel (%.2f) not faster than general code (%.2f)", best, gen)
	}

	genP, err := MeasurePhiVariant(kernels.VarGeneral, solver.ScenarioInterface, edge, steps)
	if err != nil {
		t.Fatal(err)
	}
	bestP, err := MeasurePhiVariant(kernels.VarShortcut, solver.ScenarioInterface, edge, steps)
	if err != nil {
		t.Fatal(err)
	}
	if bestP <= genP {
		t.Errorf("optimized phi-kernel (%.2f) not faster than general code (%.2f)", bestP, genP)
	}
}

// Shortcut kernels must be faster in bulk-dominated compositions than at
// the interface (the Fig. 6 scenario spread).
func TestShortcutScenarioSpread(t *testing.T) {
	const edge, steps = 16, 3
	iface, err := MeasurePhiVariant(kernels.VarShortcut, solver.ScenarioInterface, edge, steps)
	if err != nil {
		t.Fatal(err)
	}
	liquid, err := MeasurePhiVariant(kernels.VarShortcut, solver.ScenarioLiquid, edge, steps)
	if err != nil {
		t.Fatal(err)
	}
	if liquid <= iface {
		t.Errorf("phi shortcuts: liquid (%.2f) should beat interface (%.2f)", liquid, iface)
	}
}
