// Package schedule models the time-varying process driving the paper's
// production runs (§5): directional solidification is not a fixed-parameter
// benchmark — grains nucleate in bursts, the pull velocity and thermal
// gradient ramp as the furnace program advances, long runs are stopped and
// restarted from single-precision checkpoints (§3.2), and a restart may
// legally switch to a different kernel variant (all variants compute the
// same physics, so the trajectory is preserved within floating-point
// tolerance).
//
// A Schedule is an ordered list of typed events applied between timesteps
// by solver.Sim.RunSchedule:
//
//   - NucleationBurst seeds spherical solid nuclei in a lab-frame z-range
//     (moving-window aware: coordinates shift with the window offset);
//   - Ramp linearly drives a process parameter (pull velocity V, thermal
//     gradient G, or the timestep Δt) from one value to another over a
//     step range. Ramp values are pure functions of the step index, so a
//     run restarted mid-ramp from a checkpoint recomputes bit-identical
//     coefficients;
//   - SwitchVariant changes the active φ/µ kernel variants (and optionally
//     pins a Fig. 5 φ vectorization strategy) at a step boundary;
//   - SetBC changes the boundary condition of one block face for one field
//     (φ or µ) — switching the BCKind and, for Dirichlet walls, ramping the
//     prescribed face values as a pure function of the step index, so a
//     run restarted mid-BC-ramp recomputes bit-identical wall values;
//   - Checkpoint requests periodic state dumps through a caller-supplied
//     writer hook.
//
// One-shot events (bursts, switches) are consumed in order; the count of
// consumed events is the "schedule position" carried by version-2
// checkpoint headers so a restart never re-fires a burst. Ramps, SetBC
// events and checkpoint cadences are stateless functions of the step index
// and need no position tracking.
//
// Independent schedules (a furnace program, a boundary-environment program,
// an instrumentation overlay) compose with Compose, which merges them
// deterministically and rejects ambiguous combinations.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/grid"
	"repro/internal/kernels"
)

// Param identifies a rampable process parameter.
type Param int

const (
	// ParamPullVelocity ramps the isotherm pull velocity V. The solver
	// compensates the isotherm offset Z0 so the temperature field stays
	// continuous across each velocity change.
	ParamPullVelocity Param = iota
	// ParamGradient ramps the thermal gradient G (the profile rotates
	// about the eutectic isotherm, which is continuous by construction).
	ParamGradient
	// ParamDt ramps the timestep Δt; the solver rejects values beyond
	// the explicit-Euler stability limit.
	ParamDt
)

func (p Param) String() string {
	switch p {
	case ParamPullVelocity:
		return "v"
	case ParamGradient:
		return "G"
	case ParamDt:
		return "dt"
	}
	return fmt.Sprintf("Param(%d)", int(p))
}

// KeepVariant in a SwitchVariant field leaves that kernel unchanged.
const KeepVariant kernels.Variant = -1

// Strategy values of SwitchVariant beyond the kernels.PhiStrategy range.
const (
	// StrategyKeep leaves the φ strategy pinning unchanged.
	StrategyKeep = -1
	// StrategyOff unpins any Fig. 5 strategy and returns the φ-sweep to
	// variant dispatch.
	StrategyOff = -2
)

// Event is one entry of a Schedule.
type Event interface {
	// StartStep is the completed-step count at which the event first
	// applies: an event with StartStep k acts on the step that advances
	// the simulation from k to k+1 completed steps.
	StartStep() int
	// OneShot reports whether the event is consumed once (bursts,
	// switches) or evaluated every step (ramps, checkpoints).
	OneShot() bool
	validate() error
}

// NucleationBurst seeds Count spherical nuclei of radius Radius (cells)
// uniformly in the lab-frame box [0,NX)×[0,NY)×[ZMin,ZMax). Phase pins all
// nuclei to one solid phase; Phase < 0 apportions them over the solid
// phases by the eutectic volume fractions (the Voronoi rule of the §2.1
// initial condition). Only melt-dominated cells are overwritten — nuclei
// form in the liquid, never inside existing grains.
type NucleationBurst struct {
	Step   int
	Count  int
	Phase  int // solid phase index, or -1 for eutectic apportionment
	Radius float64
	ZMin   int // lab-frame z range (inclusive, exclusive)
	ZMax   int
	Seed   int64 // RNG seed for the nucleus positions
}

// StartStep implements Event: the burst fires on the step leaving e.Step.
func (e NucleationBurst) StartStep() int { return e.Step }

// OneShot implements Event: a burst is consumed once.
func (e NucleationBurst) OneShot() bool { return true }

func (e NucleationBurst) validate() error {
	if e.Step < 0 {
		return fmt.Errorf("schedule: burst at negative step %d", e.Step)
	}
	if e.Count < 1 {
		return fmt.Errorf("schedule: burst with count %d", e.Count)
	}
	if !(e.Radius > 0) || math.IsInf(e.Radius, 0) {
		return fmt.Errorf("schedule: burst with radius %g", e.Radius)
	}
	if e.ZMin >= e.ZMax {
		return fmt.Errorf("schedule: burst z range [%d,%d) empty", e.ZMin, e.ZMax)
	}
	if e.Phase >= kernels.NP-1 {
		return fmt.Errorf("schedule: burst phase %d is not a solid phase", e.Phase)
	}
	return nil
}

func (e NucleationBurst) String() string {
	ph := "eutectic mix"
	if e.Phase >= 0 {
		ph = fmt.Sprintf("phase %d", e.Phase)
	}
	return fmt.Sprintf("burst of %d nuclei (%s, r=%g) in z∈[%d,%d)", e.Count, ph, e.Radius, e.ZMin, e.ZMax)
}

// Ramp drives Param linearly From→To over the steps [Step, Step+Over); from
// Step+Over on the parameter holds at To. Value is a pure function of the
// step index so restarts recompute identical coefficients.
type Ramp struct {
	Param    Param
	Step     int // first step of the ramp
	Over     int // ramp length in steps (≥ 1)
	From, To float64
}

// StartStep implements Event: the ramp starts acting on the step leaving
// e.Step.
func (e Ramp) StartStep() int { return e.Step }

// OneShot implements Event: a ramp is a pure function of the step index,
// evaluated every step.
func (e Ramp) OneShot() bool { return false }

// Value returns the parameter value the ramp prescribes for the step that
// advances the simulation from `step` completed steps.
func (e Ramp) Value(step int) float64 {
	if step <= e.Step {
		return e.From
	}
	if step >= e.Step+e.Over {
		return e.To
	}
	return e.From + (e.To-e.From)*(float64(step-e.Step)/float64(e.Over))
}

func (e Ramp) validate() error {
	if e.Step < 0 {
		return fmt.Errorf("schedule: ramp at negative step %d", e.Step)
	}
	if e.Over < 1 || e.Step > math.MaxInt-e.Over {
		return fmt.Errorf("schedule: ramp over %d steps from %d", e.Over, e.Step)
	}
	if e.Param < ParamPullVelocity || e.Param > ParamDt {
		return fmt.Errorf("schedule: unknown ramp param %d", int(e.Param))
	}
	if e.Param == ParamDt && (e.From <= 0 || e.To <= 0) {
		return fmt.Errorf("schedule: dt ramp through nonpositive values")
	}
	for _, v := range [2]float64{e.From, e.To} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("schedule: ramp with non-finite value %g", v)
		}
	}
	// Value interpolates via To-From, which can overflow for finite
	// endpoints of opposite huge sign and leak Inf into the solver.
	if math.IsInf(e.To-e.From, 0) {
		return fmt.Errorf("schedule: ramp span %g→%g overflows", e.From, e.To)
	}
	return nil
}

func (e Ramp) String() string {
	return fmt.Sprintf("ramp %s %g→%g over steps [%d,%d)", e.Param, e.From, e.To, e.Step, e.Step+e.Over)
}

// SwitchVariant changes the active kernels at a step boundary. Phi/Mu set
// the φ-/µ-kernel variants (KeepVariant leaves one unchanged); Strategy
// pins one of the Fig. 5 φ vectorization strategies (StrategyKeep leaves
// the pinning unchanged, StrategyOff removes it).
type SwitchVariant struct {
	Step     int
	Phi, Mu  kernels.Variant
	Strategy int // kernels.PhiStrategy, StrategyKeep, or StrategyOff
}

// StartStep implements Event: the switch applies at the e.Step boundary.
func (e SwitchVariant) StartStep() int { return e.Step }

// OneShot implements Event: a switch is consumed once.
func (e SwitchVariant) OneShot() bool { return true }

func (e SwitchVariant) validate() error {
	if e.Step < 0 {
		return fmt.Errorf("schedule: switch at negative step %d", e.Step)
	}
	for _, v := range []kernels.Variant{e.Phi, e.Mu} {
		if v != KeepVariant && (v < 0 || v >= kernels.NumVariants) {
			return fmt.Errorf("schedule: switch to unknown variant %d", int(v))
		}
	}
	if e.Strategy != StrategyKeep && e.Strategy != StrategyOff &&
		(e.Strategy < int(kernels.StratCellwise) || e.Strategy > int(kernels.StratFourCell)) {
		return fmt.Errorf("schedule: switch to unknown strategy %d", e.Strategy)
	}
	if e.Phi == KeepVariant && e.Mu == KeepVariant && e.Strategy == StrategyKeep {
		return fmt.Errorf("schedule: switch event changes nothing")
	}
	return nil
}

func (e SwitchVariant) String() string {
	s := "switch kernels:"
	if e.Phi != KeepVariant {
		s += " φ→" + VariantName(e.Phi)
	}
	if e.Mu != KeepVariant {
		s += " µ→" + VariantName(e.Mu)
	}
	switch e.Strategy {
	case StrategyKeep:
	case StrategyOff:
		s += " strategy off"
	default:
		s += fmt.Sprintf(" strategy→%v", kernels.PhiStrategy(e.Strategy))
	}
	return s
}

// Checkpoint requests a state dump every Every steps counted from Step
// (i.e. after Step+Every, Step+2·Every, … steps have completed). Path is a
// template passed to the writer hook with the step count substituted for a
// %d-style verb (an empty template uses the runner's default).
type Checkpoint struct {
	Step  int
	Every int
	Path  string
}

// StartStep implements Event: the cadence counts from e.Step.
func (e Checkpoint) StartStep() int { return e.Step }

// OneShot implements Event: a cadence is evaluated every step.
func (e Checkpoint) OneShot() bool { return false }

// Due reports whether a dump is due after `step` steps have completed.
func (e Checkpoint) Due(step int) bool {
	return step > e.Step && (step-e.Step)%e.Every == 0
}

func (e Checkpoint) validate() error {
	if e.Step < 0 {
		return fmt.Errorf("schedule: checkpoint at negative step %d", e.Step)
	}
	if e.Every < 1 {
		return fmt.Errorf("schedule: checkpoint every %d steps", e.Every)
	}
	return nil
}

// BCField selects which field a SetBC event targets. Boundary payloads are
// per-component, so the two fields take different Dirichlet arities: φ walls
// prescribe one value per phase, µ walls one per reduced chemical potential.
type BCField int

const (
	// BCPhi targets the phase-field boundary condition.
	BCPhi BCField = iota
	// BCMu targets the chemical-potential boundary condition.
	BCMu
)

func (f BCField) String() string {
	switch f {
	case BCPhi:
		return "phi"
	case BCMu:
		return "mu"
	}
	return fmt.Sprintf("BCField(%d)", int(f))
}

// NComps returns the Dirichlet payload arity of the targeted field.
func (f BCField) NComps() int {
	if f == BCPhi {
		return kernels.NP
	}
	return kernels.NR
}

// SetBC changes the boundary condition of one block face for one field from
// step Step on: the face switches to Kind, and for Dirichlet walls the
// prescribed per-component values ramp linearly From→To over the steps
// [Step, Step+Over) (Over = 0 installs To immediately). Like Ramp, the
// active values are a pure function of the step index, so a run restarted
// mid-BC-ramp from a checkpoint recomputes bit-identical wall values. The
// event stays in force until a later SetBC on the same (face, field)
// overrides it.
//
// Time-varying conditions apply to physical (non-periodic) domain faces —
// in the production topology the z faces; faces on axes whose periodicity
// is realized by the communication layer are rejected by the solver.
type SetBC struct {
	Step  int
	Over  int // Dirichlet value-ramp length in steps (0 = immediate)
	Face  grid.Face
	Field BCField
	Kind  grid.BCKind
	From  []float64 // Dirichlet values at Step (nil with Over 0 = start at To)
	To    []float64 // Dirichlet values from Step+Over on
}

// StartStep implements Event: the BC change applies from the step leaving
// e.Step.
func (e SetBC) StartStep() int { return e.Step }

// OneShot implements Event: BC prescriptions are pure functions of the
// step index, evaluated every step until settled.
func (e SetBC) OneShot() bool { return false }

// rampEnd returns the first step at which the event's values have settled
// at To; degenerate (Over ≤ 0) ramps settle one step after they start.
func (e SetBC) rampEnd() int {
	if e.Over < 1 {
		return e.Step + 1
	}
	return e.Step + e.Over
}

// SettleStep returns the first step from which the event's prescription is
// constant: the kind is installed and the values have reached To. From the
// step after it, re-applying the event is a no-op (the solver uses this to
// stop per-step wall updates once a ramp has settled).
func (e SetBC) SettleStep() int { return e.rampEnd() }

// ValuesAt writes the Dirichlet payload prescribed for `step` into dst
// (len ≥ Field.NComps()) and returns it. The interpolation mirrors
// Ramp.Value exactly so restarts are bit-compatible.
func (e SetBC) ValuesAt(step int, dst []float64) []float64 {
	n := e.Field.NComps()
	dst = dst[:n]
	if e.From == nil || step >= e.Step+e.Over {
		copy(dst, e.To)
		return dst
	}
	if step <= e.Step {
		copy(dst, e.From)
		return dst
	}
	frac := float64(step-e.Step) / float64(e.Over)
	for i := range dst {
		dst[i] = e.From[i] + (e.To[i]-e.From[i])*frac
	}
	return dst
}

func (e SetBC) validate() error {
	if e.Step < 0 {
		return fmt.Errorf("schedule: setbc at negative step %d", e.Step)
	}
	if e.Over < 0 || e.Step > math.MaxInt-e.Over-1 {
		return fmt.Errorf("schedule: setbc ramp length %d invalid", e.Over)
	}
	if e.Face < 0 || e.Face >= grid.NumFaces {
		return fmt.Errorf("schedule: setbc on unknown face %d", int(e.Face))
	}
	if e.Field != BCPhi && e.Field != BCMu {
		return fmt.Errorf("schedule: setbc on unknown field %d", int(e.Field))
	}
	switch e.Kind {
	case grid.BCPeriodic, grid.BCNeumann:
		if e.From != nil || e.To != nil || e.Over != 0 {
			return fmt.Errorf("schedule: setbc %v carries Dirichlet payload", e.Kind)
		}
	case grid.BCDirichlet:
		if len(e.To) != e.Field.NComps() {
			return fmt.Errorf("schedule: setbc %s wall needs %d values, got %d",
				e.Field, e.Field.NComps(), len(e.To))
		}
		if e.Over > 0 && len(e.From) != len(e.To) {
			return fmt.Errorf("schedule: setbc ramp needs matching from/to arities (%d vs %d)",
				len(e.From), len(e.To))
		}
		if e.From != nil && len(e.From) != len(e.To) {
			return fmt.Errorf("schedule: setbc from/to arity mismatch (%d vs %d)",
				len(e.From), len(e.To))
		}
		for _, vs := range [2][]float64{e.From, e.To} {
			for _, v := range vs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("schedule: setbc with non-finite value %g", v)
				}
			}
		}
		// ValuesAt interpolates via To-From, which can overflow for
		// finite endpoints of opposite huge sign.
		for i := range e.From {
			if math.IsInf(e.To[i]-e.From[i], 0) {
				return fmt.Errorf("schedule: setbc ramp span %g→%g overflows", e.From[i], e.To[i])
			}
		}
	default:
		return fmt.Errorf("schedule: setbc to unsupported kind %v", e.Kind)
	}
	return nil
}

func (e SetBC) String() string {
	s := fmt.Sprintf("set %s BC on %v → %v", e.Field, e.Face, e.Kind)
	if e.Kind == grid.BCDirichlet {
		if e.Over > 0 {
			s += fmt.Sprintf(" ramp %v→%v over steps [%d,%d)", e.From, e.To, e.Step, e.Step+e.Over)
		} else {
			s += fmt.Sprintf(" %v", e.To)
		}
	}
	return s
}

// Schedule is an ordered list of events. Build one with New (or FromJSON)
// so events are validated and sorted by start step.
type Schedule struct {
	Events []Event
}

// New validates the events — individually and against each other (see
// Compose for the conflict rules) — and returns them as a Schedule sorted
// stably by start step.
func New(events ...Event) (*Schedule, error) {
	for i, e := range events {
		if err := e.validate(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	s := &Schedule{Events: append([]Event(nil), events...)}
	sort.SliceStable(s.Events, func(i, j int) bool {
		return s.Events[i].StartStep() < s.Events[j].StartStep()
	})
	if err := s.validateConflicts(); err != nil {
		return nil, err
	}
	return s, nil
}

// OneShots returns the one-shot events (bursts, switches) in firing order;
// the index into this slice is the schedule position stored in version-2
// checkpoint headers.
func (s *Schedule) OneShots() []Event {
	var out []Event
	for _, e := range s.Events {
		if e.OneShot() {
			out = append(out, e)
		}
	}
	return out
}

// Ramps returns all ramp events in order.
func (s *Schedule) Ramps() []Ramp {
	var out []Ramp
	for _, e := range s.Events {
		if r, ok := e.(Ramp); ok {
			out = append(out, r)
		}
	}
	return out
}

// Checkpoints returns all checkpoint cadences in order.
func (s *Schedule) Checkpoints() []Checkpoint {
	var out []Checkpoint
	for _, e := range s.Events {
		if c, ok := e.(Checkpoint); ok {
			out = append(out, c)
		}
	}
	return out
}

// SetBCs returns all boundary-condition events in order.
func (s *Schedule) SetBCs() []SetBC {
	var out []SetBC
	for _, e := range s.Events {
		if b, ok := e.(SetBC); ok {
			out = append(out, b)
		}
	}
	return out
}

// EndStep returns the last step any event prescribes activity for (the
// natural run length of the schedule), or 0 for an empty schedule.
func (s *Schedule) EndStep() int {
	end := 0
	for _, e := range s.Events {
		last := e.StartStep()
		switch t := e.(type) {
		case Ramp:
			last = t.Step + t.Over
		case SetBC:
			last = t.rampEnd()
		}
		if last > end {
			end = last
		}
	}
	return end
}

// Compose merges independent schedules into one. Events keep their relative
// order within each source schedule; across sources, events are ordered by
// start step with same-step ties broken by argument position — an event of
// an earlier argument fires before a same-step event of a later one (the
// base program goes first, overlays refine it). Nil schedules are skipped.
//
// Ambiguous combinations are rejected rather than silently resolved
// (by New, so single-file schedules are held to the same rules):
//
//   - two SetBC events on the same (face, field) whose value-ramp windows
//     overlap — the wall state they prescribe would depend on evaluation
//     order (a later SetBC overriding an earlier settled one is fine);
//   - two Ramps of the same parameter starting at the same step — within
//     one step the last applied ramp would silently win;
//   - two same-step SwitchVariant events that both change the same kernel
//     (or both pin a φ strategy).
func Compose(scheds ...*Schedule) (*Schedule, error) {
	var events []Event
	for _, s := range scheds {
		if s == nil {
			continue
		}
		events = append(events, s.Events...)
	}
	return New(events...)
}

// validateConflicts rejects event combinations whose outcome would depend
// on evaluation order (see Compose).
func (s *Schedule) validateConflicts() error {
	bcs := s.SetBCs()
	for i := 0; i < len(bcs); i++ {
		for j := i + 1; j < len(bcs); j++ {
			a, b := bcs[i], bcs[j]
			if a.Face != b.Face || a.Field != b.Field {
				continue
			}
			if a.Step < b.rampEnd() && b.Step < a.rampEnd() {
				return fmt.Errorf("schedule: conflicting setbc events on %v/%s: ramp windows [%d,%d) and [%d,%d) overlap",
					a.Face, a.Field, a.Step, a.rampEnd(), b.Step, b.rampEnd())
			}
		}
	}
	ramps := s.Ramps()
	for i := 0; i < len(ramps); i++ {
		for j := i + 1; j < len(ramps); j++ {
			if ramps[i].Param == ramps[j].Param && ramps[i].Step == ramps[j].Step {
				return fmt.Errorf("schedule: two %s ramps start at step %d", ramps[i].Param, ramps[i].Step)
			}
		}
	}
	var switches []SwitchVariant
	for _, e := range s.Events {
		if sw, ok := e.(SwitchVariant); ok {
			switches = append(switches, sw)
		}
	}
	for i := 0; i < len(switches); i++ {
		for j := i + 1; j < len(switches); j++ {
			a, b := switches[i], switches[j]
			if a.Step != b.Step {
				continue
			}
			if (a.Phi != KeepVariant && b.Phi != KeepVariant) ||
				(a.Mu != KeepVariant && b.Mu != KeepVariant) ||
				(a.Strategy != StrategyKeep && b.Strategy != StrategyKeep) {
				return fmt.Errorf("schedule: two switch events at step %d change the same kernel", a.Step)
			}
		}
	}
	return nil
}
