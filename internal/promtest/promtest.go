// Package promtest is the shared test-side parser for Prometheus text
// exposition format (0.0.4). It began life inside the job daemon's
// metrics tests; the federation gateway exports its own /metrics, and
// both services' scrape tests must enforce the same strict reading of
// the format: every series line parses, every family has exactly one
// HELP and one TYPE line (in that order, before any of its series),
// label pairs are well-formed, values are floats, and no series repeats.
//
// The package is imported only by _test files, but lives as a normal
// package (with testing.TB parameters) so the jobd and fleet suites can
// share one implementation instead of drifting copies.
package promtest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (.+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// Parse strictly validates a text-exposition body and returns series →
// value, keyed as `name{label="v",...}` (empty braces for unlabeled
// series). Any format violation fails the test.
func Parse(t testing.TB, body string) map[string]float64 {
	t.Helper()
	series := map[string]float64{}
	help := map[string]bool{}
	typ := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if help[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			help[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := parts[0], parts[1]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, kind)
			}
			if _, dup := typ[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if !help[name] {
				t.Fatalf("line %d: TYPE for %s precedes its HELP", ln+1, name)
			}
			typ[name] = kind
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			m := seriesRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: unparsable series line: %q", ln+1, line)
			}
			name, labels, value := m[1], m[3], m[4]
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, value, err)
			}
			if labels != "" {
				for _, pair := range strings.Split(labels, ",") {
					if !labelRe.MatchString(pair) {
						t.Fatalf("line %d: malformed label pair %q", ln+1, pair)
					}
				}
			}
			// A histogram family's series carry the _bucket/_sum/_count
			// suffixes; HELP/TYPE are registered under the base name.
			family := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suf)
				if base != name && typ[base] == "histogram" {
					family = base
					break
				}
			}
			if !help[family] || typ[family] == "" {
				t.Fatalf("line %d: series %s has no HELP/TYPE for family %s", ln+1, name, family)
			}
			key := name + "{" + labels + "}"
			if _, dup := series[key]; dup {
				t.Fatalf("line %d: duplicate series %s", ln+1, key)
			}
			series[key] = v
		}
	}
	return series
}

// FindSeries returns the value of the series whose name matches and whose
// label block contains all wanted substrings.
func FindSeries(t testing.TB, series map[string]float64, name string, wantLabels ...string) (float64, bool) {
	t.Helper()
	for key, v := range series {
		sname, labels, _ := strings.Cut(key, "{")
		if sname != name {
			continue
		}
		ok := true
		for _, w := range wantLabels {
			if !strings.Contains(labels, w) {
				ok = false
				break
			}
		}
		if ok {
			return v, true
		}
	}
	return 0, false
}
