// Package jobd is the multi-job orchestration layer that turns the
// solidification engine into a service: jobs — schedule-driven production
// runs — are submitted over an HTTP/JSON API, queued by priority, and
// executed up to K at a time against one shared intra-block worker budget.
//
// The paper's production story is an always-on pipeline of
// process-parameter studies sharing fixed hardware, not one hand-launched
// binary per run. jobd multiplexes the primitives the engine already has:
//
//   - the persistent sweep worker pool (budget shares are re-split across
//     running jobs as jobs start and finish; a job applies its new share
//     at the next timestep boundary, and shrinks are acknowledged before a
//     new job starts, so the global budget is never exceeded — an
//     invariant made observable by the shared solver.WorkerGauge);
//   - event schedules (a job is just a composed schedule plus a domain);
//   - lossless float64 checkpoints (a higher-priority submission preempts
//     the lowest-priority running job at a timestep boundary via an
//     in-memory snapshot; the job later resumes bit-identically — the
//     resumed trajectory is indistinguishable from an uninterrupted one);
//   - idempotent comm.World shutdown (cancellation arrives from API
//     goroutines while exchanges are in flight).
//
// Beyond single jobs, jobd is a campaign engine:
//
//   - job arrays (POST /arrays) expand a template spec over a parameter
//     grid — the schedule references grid parameters as "${name}"
//     placeholders (schedule.Instantiate) — into one child job per grid
//     point, with deterministic child ids ("arr-0001.003") and fair
//     round-robin interleaving against other submissions of the same
//     priority;
//   - resource classes (Config.Classes) cap how many sweep workers all
//     jobs of one class may hold collectively, shares assigned by
//     per-class water-filling, so an array of cheap scouts cannot starve
//     a production run — observable per class via WorkerGauge.Class;
//   - the persistent result store (Config.StoreDir, internal/jobd/store)
//     spills every terminal job's final checkpoint, replayable schedule
//     and metrics summary to a content-addressed layout; a restarted
//     daemon serves /result and /schedule byte-identical to its
//     predecessor, and GET /arrays/{id}/results aggregates a campaign's
//     per-child parameters and metrics.
//
// On SIGTERM the daemon (cmd/solidifyd) drains: every in-flight job is
// preempted, snapshotted, and spooled to disk together with the queue and
// the array records, so a restarted daemon resumes where the old one
// stopped.
package jobd

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
	"repro/internal/jobd/store"
	"repro/internal/schedule"
	"repro/internal/solver"
)

// Config sizes the daemon.
type Config struct {
	// MaxConcurrent is K, the number of jobs stepping simultaneously
	// (default 1).
	MaxConcurrent int
	// Budget is the global intra-block sweep worker budget shared by all
	// running jobs (default GOMAXPROCS). Every running job gets
	// ⌊Budget/n⌋ workers; a job whose block count exceeds that share is
	// not admitted until slots free up.
	Budget int
	// SpoolDir, when non-empty, is where Drain persists preempted and
	// queued jobs for the next daemon instance (LoadSpool).
	SpoolDir string
	// StoreDir, when non-empty, is the persistent result store: terminal
	// jobs spill their final checkpoint, replayable schedule and metrics
	// summary there, and a restarted daemon serves them byte-identically
	// (LoadStore).
	StoreDir string
	// Classes maps resource-class names to per-class worker budgets W_c.
	// Jobs of one class collectively never hold more than W_c workers
	// (budget unused by a capped class flows to the others). The "default"
	// class always exists with the full Budget unless overridden here.
	Classes map[string]int
	// ReportEvery is the metrics sampling cadence in steps (default 5).
	ReportEvery int
	// SnapshotEvery, when > 0, is the safety-snapshot cadence in steps: a
	// running job writes a lossless in-memory checkpoint at every multiple,
	// and an automatic retry (Spec.MaxRetries) resumes from the last one
	// instead of step 0. Costs one float64 checkpoint in memory per
	// running job; 0 disables (retries then restart from the beginning, or
	// from the last preemption snapshot).
	SnapshotEvery int
	// RetryBackoff is the delay before a failed job's first automatic
	// retry; it doubles with each further retry, capped at 64×. Default
	// 100ms.
	RetryBackoff time.Duration
	// StallTimeout, when > 0, arms the watchdog: a running job that
	// reaches no timestep boundary within the window is declared stalled,
	// canceled cooperatively at its next boundary, and routed through the
	// retry/quarantine path. Size it above the worst-case initialization
	// plus one step. Spec.StallSeconds overrides it per job.
	StallTimeout time.Duration
	// WatchdogTick is the stall-scan cadence (default StallTimeout/4).
	WatchdogTick time.Duration
	// AllowFaults permits submitted specs to carry a FaultSpec
	// (deterministic fault injection for tests and recovery drills;
	// solidifyd -chaos). Off, a fault-bearing spec is rejected.
	AllowFaults bool
	// StoreGCMaxBytes and StoreGCMaxAge form the result store's retention
	// policy (store.RetentionPolicy): when set, stored results of the
	// oldest terminal jobs are evicted to fit the byte quota, and results
	// older than the age bound are dropped regardless of size. Zero values
	// disable the respective bound; with both zero the store grows
	// unboundedly (the pre-retention behavior).
	StoreGCMaxBytes int64
	StoreGCMaxAge   time.Duration
	// StoreGCEvery is the periodic retention-GC cadence. 0 runs GC only
	// once, at LoadStore.
	StoreGCEvery time.Duration
	// StoreFS, when non-nil, routes the result store's filesystem
	// operations through an injectable implementation (the fault-injection
	// suite passes a faultfs.Inject). Nil selects the real filesystem.
	StoreFS faultfs.FS
	// Log, when non-nil, receives daemon-side progress and spill-failure
	// lines.
	Log func(string)
}

// Server is the orchestration daemon: queue, scheduler and job registry.
// Create with New, start with Start, serve Handler over HTTP, stop with
// Drain (or Close for tests).
type Server struct {
	cfg     Config
	gauge   *solver.WorkerGauge
	classes map[string]int // resolved resource classes (name → W_c)

	mu          sync.Mutex
	jobs        map[string]*Job
	queue       []*Job // StateQueued jobs, unordered (sorted on pop)
	running     map[string]*Job
	arrays      map[string]*Array
	store       *store.Store // nil until LoadStore
	draining    bool
	nextSeq     int64
	nextID      int
	nextArrayID int
	// Fairness bookkeeping: groupPick[g] is the pickSeq at which group g
	// last started (or, for a newly seen group, joined) the queue; the
	// scheduler favors the smallest pick within a priority level. Entries
	// exist only while the group has queued jobs — a group re-enqueueing
	// later re-enters at the current pickSeq, so it cannot jump ahead of
	// groups that have been waiting.
	groupPick map[string]int64
	pickSeq   int64

	// Degraded store mode: terminal jobs whose spill failed wait here for
	// the background flusher, which retries with backoff until the store
	// recovers. While the map is non-empty the daemon reports degraded
	// via /healthz (and keeps serving those jobs from memory).
	pendingSpills map[string]*Job
	flusherOn     bool

	// Fleet counters exported by GET /metrics.
	retriesTotal    atomic.Int64
	stallsTotal     atomic.Int64
	spillFailsTotal atomic.Int64
	degraded        atomic.Bool

	wake chan struct{}
	quit chan struct{}

	runnersWG   sync.WaitGroup
	spillWG     sync.WaitGroup // async store spills (queued-cancel path)
	spillSem    chan struct{}  // bounds concurrent fsync-heavy spills
	schedulerWG sync.WaitGroup
	flushWG     sync.WaitGroup // degraded-mode spill-retry flusher
}

// enqueueLocked appends j to the queue, seeding its fairness group at the
// current pick sequence on first sight. s.mu must be held.
func (s *Server) enqueueLocked(j *Job) {
	if _, ok := s.groupPick[j.group]; !ok {
		s.groupPick[j.group] = s.pickSeq
	}
	s.queue = append(s.queue, j)
}

// pruneGroupLocked drops a group's fairness entry once it has no queued
// jobs left, bounding the map on an always-on daemon. s.mu must be held.
func (s *Server) pruneGroupLocked(group string) {
	for _, q := range s.queue {
		if q.group == group {
			return
		}
	}
	delete(s.groupPick, group)
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.Budget < 1 {
		cfg.Budget = runtime.GOMAXPROCS(0)
	}
	if cfg.ReportEvery < 1 {
		cfg.ReportEvery = 5
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.WatchdogTick <= 0 && cfg.StallTimeout > 0 {
		cfg.WatchdogTick = cfg.StallTimeout / 4
	}
	return &Server{
		cfg:       cfg,
		gauge:     &solver.WorkerGauge{},
		classes:   resolveClasses(cfg.Budget, cfg.Classes),
		jobs:      make(map[string]*Job),
		running:   make(map[string]*Job),
		arrays:    make(map[string]*Array),
		groupPick: make(map[string]int64),
		spillSem:  make(chan struct{}, 4),
		wake:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
	}
}

// Gauge exposes the shared sweep-worker gauge (tests assert
// Gauge().Max() <= Budget).
func (s *Server) Gauge() *solver.WorkerGauge { return s.gauge }

// Start launches the scheduler goroutine and, when Config.StallTimeout is
// set, the watchdog.
func (s *Server) Start() {
	s.schedulerWG.Add(1)
	go func() {
		defer s.schedulerWG.Done()
		for {
			select {
			case <-s.quit:
				return
			case <-s.wake:
				s.schedule()
			}
		}
	}()
	if s.cfg.StallTimeout > 0 {
		s.schedulerWG.Add(1)
		go func() {
			defer s.schedulerWG.Done()
			tick := time.NewTicker(s.cfg.WatchdogTick)
			defer tick.Stop()
			for {
				select {
				case <-s.quit:
					return
				case <-tick.C:
					s.checkStalls()
				}
			}
		}()
	}
	if s.cfg.StoreGCEvery > 0 && s.retention().Enabled() {
		s.schedulerWG.Add(1)
		go func() {
			defer s.schedulerWG.Done()
			tick := time.NewTicker(s.cfg.StoreGCEvery)
			defer tick.Stop()
			for {
				select {
				case <-s.quit:
					return
				case <-tick.C:
					_, _ = s.RunStoreGC()
				}
			}
		}()
	}
}

// checkStalls is one watchdog pass: every running job whose last timestep
// boundary is older than its progress deadline gets a ctrlStall verb (once
// — the CAS loses against an already-posted cancel or preempt, which is
// correct: those verbs already reclaim the slot).
func (s *Server) checkStalls() {
	now := time.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.running {
		deadline := s.cfg.StallTimeout
		if j.Spec.StallSeconds > 0 {
			deadline = time.Duration(j.Spec.StallSeconds) * time.Second
		}
		if now-j.lastBeat.Load() <= int64(deadline) {
			continue
		}
		if j.ctrl.CompareAndSwap(ctrlNone, ctrlStall) {
			s.stallsTotal.Add(1)
			j.mu.Lock()
			j.stalls++
			j.mu.Unlock()
			j.mark("stall", fmt.Sprintf("no progress within %v", deadline))
			s.logf("jobd: watchdog: %s made no progress within %v", j.ID, deadline)
		}
	}
}

// wakeup nudges the scheduler (never blocks).
func (s *Server) wakeup() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Submit validates a spec, registers the job, and enqueues it.
func (s *Server) Submit(spec Spec) (*Job, error) {
	sched, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	if spec.blocks() > s.cfg.Budget {
		return nil, fmt.Errorf("jobd: job needs %d block ranks but the worker budget is %d",
			spec.blocks(), s.cfg.Budget)
	}
	if spec.Fault != nil && !s.cfg.AllowFaults {
		return nil, fmt.Errorf("jobd: fault injection is disabled on this daemon")
	}
	if err := s.validateClass(&spec); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	s.nextID++
	s.nextSeq++
	j := newJob(fmt.Sprintf("job-%04d", s.nextID), s.nextSeq, spec, sched)
	s.jobs[j.ID] = j
	s.enqueueLocked(j)
	s.mu.Unlock()
	j.mark("submit", "class "+spec.Class)
	s.wakeup()
	return j, nil
}

// errDraining marks submissions rejected during shutdown.
var errDraining = fmt.Errorf("jobd: daemon is draining")

// IsDraining reports whether err is the drain rejection.
func IsDraining(err error) bool { return err == errDraining }

// Get returns a job by id.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns all jobs ordered by submission.
func (s *Server) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// Cancel removes a job: queued jobs are canceled immediately; a running
// job is told to stop at its next timestep boundary. Terminal jobs are
// left as they are (reported by the returned state).
func (s *Server) Cancel(id string) (State, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return "", false
	}
	j.mu.Lock()
	switch {
	case j.state.terminal():
		st := j.state
		j.mu.Unlock()
		s.mu.Unlock()
		return st, true
	case j.state == StateQueued:
		j.state = StateCanceled
		j.snapshot = nil
		j.mu.Unlock()
		j.mark("canceled", "canceled while queued")
		s.dropFromQueueLocked(j)
		s.pruneGroupLocked(j.group)
		// Terminal states reached off the runner path must spill too, or a
		// restarted daemon would forget the cancellation ever happened.
		// Asynchronously (Drain waits via spillWG): canceling a wide array
		// must not serialize hundreds of fsyncs into the DELETE request.
		// Once draining, spill synchronously instead — Drain may already be
		// past its spillWG.Wait, and an Add racing that Wait is both lost
		// work and WaitGroup misuse.
		async := !s.draining
		if async {
			s.spillWG.Add(1) // under s.mu, ordered before Drain sets draining
		}
		s.mu.Unlock()
		if async {
			go func() {
				defer s.spillWG.Done()
				// Canceling a 1000-child array spawns one goroutine per
				// child; the semaphore keeps the fsync storm off the disk.
				s.spillSem <- struct{}{}
				defer func() { <-s.spillSem }()
				s.spillDone(j)
			}()
		} else {
			s.spillDone(j)
		}
		j.closeSubs()
		s.wakeup()
		return StateCanceled, true
	default: // running
		j.mu.Unlock()
		j.ctrl.Store(ctrlCancel)
		s.mu.Unlock()
		j.mark("cancel", "cancel requested while running")
		return StateRunning, true
	}
}

// dropFromQueueLocked removes j from the queue slice; s.mu must be held.
func (s *Server) dropFromQueueLocked(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// bestQueuedLocked returns the queued job that should run next, ignoring
// jobs in skip (nil = none): highest priority first; within a priority,
// the least-recently-served fairness group (so a wide array's children
// interleave with other submissions instead of draining FIFO); within a
// group, earliest submission. Jobs sitting out a retry backoff
// (notBefore in the future) are invisible to this pass — retryOrFail has
// scheduled a wakeup for when they become eligible. s.mu must be held.
func (s *Server) bestQueuedLocked(skip map[*Job]bool) *Job {
	var best *Job
	var bestPick int64
	now := time.Now().UnixNano()
	for _, j := range s.queue {
		if skip[j] || j.notBefore.Load() > now {
			continue
		}
		pick := s.groupPick[j.group]
		better := best == nil ||
			j.Spec.Priority > best.Spec.Priority ||
			(j.Spec.Priority == best.Spec.Priority &&
				(pick < bestPick || (pick == bestPick && j.seq < best.seq)))
		if better {
			best, bestPick = j, pick
		}
	}
	return best
}

// schedule is one pass of the scheduling policy: preempt if a queued job
// outranks a running one, then admit while slots and budget allow, then
// relax shares upward if slots emptied.
func (s *Server) schedule() {
	s.preemptIfOutranked()
	for s.admitOne() {
	}
	s.relaxShares()
}

// preemptIfOutranked asks a running job to preempt when a strictly
// higher-priority job waits and all slots are busy. The victim must be
// outranked AND its eviction must actually make the waiting job
// admissible under the class caps — otherwise (e.g. the waiting job's own
// class is saturated by a non-evictable peer) preempting would just churn
// snapshots while admission keeps re-admitting the victim. Among usable
// victims, the lowest-priority most-recent one is chosen.
func (s *Server) preemptIfOutranked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || len(s.running) < s.cfg.MaxConcurrent {
		return
	}
	best := s.bestQueuedLocked(nil)
	if best == nil {
		return
	}
	var victim *Job
	for _, j := range s.running {
		if j.Spec.Priority >= best.Spec.Priority {
			continue
		}
		if victim == nil || j.Spec.Priority < victim.Spec.Priority ||
			(j.Spec.Priority == victim.Spec.Priority && j.seq > victim.seq) {
			if s.evictionAdmitsLocked(j, best) {
				victim = j
			}
		}
	}
	if victim != nil {
		victim.ctrl.CompareAndSwap(ctrlNone, ctrlPreempt)
	}
}

// evictionAdmitsLocked reports whether the running set with victim
// replaced by cand water-fills so that every member (cand included) gets
// its block count. s.mu must be held.
func (s *Server) evictionAdmitsLocked(victim, cand *Job) bool {
	after := make([]*Job, 0, len(s.running))
	for _, rj := range s.running {
		if rj != victim {
			after = append(after, rj)
		}
	}
	after = append(after, cand)
	shares := s.sharesFor(after)
	for _, j := range after {
		if shares[j] < j.Spec.blocks() || shares[j] < 1 {
			return false
		}
	}
	return true
}

// admitOne starts the best admissible queued job if a slot is free: the
// per-class water-filled shares must leave every running job — and the
// candidate — at least one worker per block rank. Candidates that cannot
// run right now (their class cap saturated, or a decomposition wider than
// the attainable share) are skipped so they don't head-of-line-block
// admissible jobs of other classes; they keep their fairness standing and
// get first refusal on the next pass once capacity frees. Returns true
// when a job started (the caller loops).
func (s *Server) admitOne() bool {
	s.mu.Lock()
	if s.draining || len(s.running) >= s.cfg.MaxConcurrent {
		s.mu.Unlock()
		return false
	}
	var j *Job
	var shares map[*Job]int
	skip := map[*Job]bool{}
	for {
		j = s.bestQueuedLocked(skip)
		if j == nil {
			s.mu.Unlock()
			return false
		}
		shares = s.sharesLocked(j)
		admissible := shares[j] >= j.Spec.blocks() && shares[j] >= 1
		for _, rj := range s.running {
			if shares[rj] < rj.Spec.blocks() || shares[rj] < 1 {
				admissible = false
				break
			}
		}
		if admissible {
			break
		}
		skip[j] = true
	}
	s.dropFromQueueLocked(j)
	s.pickSeq++
	s.groupPick[j.group] = s.pickSeq
	s.pruneGroupLocked(j.group)
	type peer struct {
		j      *Job
		target int32
	}
	peers := make([]peer, 0, len(s.running))
	for _, rj := range s.running {
		rj.desiredShare.Store(int32(shares[rj]))
		peers = append(peers, peer{rj, int32(shares[rj])})
	}
	newShare := shares[j]
	s.mu.Unlock()

	// Wait for every peer to shrink onto its new share (or leave the
	// running set) before the newcomer starts — neither the global budget
	// nor any class budget may be exceeded, not even transiently. Shrinks
	// are applied at timestep boundaries, so this wait is bounded by one
	// step.
	for _, p := range peers {
		for p.j.appliedShare.Load() > p.target && s.isRunning(p.j) {
			time.Sleep(200 * time.Microsecond)
		}
	}

	s.mu.Lock()
	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled while we were rebalancing; the slot stays free.
		j.mu.Unlock()
		s.mu.Unlock()
		return true
	}
	if s.draining {
		// Lost the race against Drain: put the job back.
		j.mu.Unlock()
		s.enqueueLocked(j)
		s.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.mu.Unlock()
	j.ctrl.Store(ctrlNone)
	j.desiredShare.Store(int32(newShare))
	j.appliedShare.Store(int32(newShare))
	j.mark("start", fmt.Sprintf("%d workers", newShare))
	s.running[j.ID] = j
	s.runnersWG.Add(1)
	go s.runJob(j)
	s.mu.Unlock()
	return true
}

// relaxShares grows every running job's share to the current water-filled
// split (safe to apply lazily: growing late never violates a budget).
func (s *Server) relaxShares() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.running) == 0 {
		return
	}
	shares := s.sharesLocked(nil)
	for _, j := range s.running {
		if sh := int32(shares[j]); j.desiredShare.Load() < sh {
			j.desiredShare.Store(sh)
		}
	}
}

// isRunning reports whether j is still in the running set.
func (s *Server) isRunning(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.running[j.ID]
	return ok
}

// onRunnerExit moves a finished runner's job out of the running set,
// requeueing it when it was preempted.
func (s *Server) onRunnerExit(j *Job) {
	s.mu.Lock()
	delete(s.running, j.ID)
	if j.State() == StateQueued { // preempted
		s.enqueueLocked(j)
	}
	s.mu.Unlock()
	s.wakeup()
}

// Drain stops the daemon gracefully: no new submissions, every running job
// is preempted (checkpointed at its next timestep boundary), and — when a
// spool directory is configured — all queued/preempted jobs are persisted
// for the next daemon instance. Blocks until every runner has exited.
func (s *Server) Drain() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.runnersWG.Wait()
		return nil
	}
	s.draining = true
	for _, j := range s.running {
		j.ctrl.CompareAndSwap(ctrlNone, ctrlPreempt)
	}
	s.mu.Unlock()

	s.runnersWG.Wait()
	s.spillWG.Wait()
	close(s.quit)
	s.schedulerWG.Wait()
	s.flushWG.Wait()
	// One last synchronous attempt at spills the degraded-mode flusher was
	// still retrying: the store may have recovered (disk freed) between the
	// last backoff tick and now, and a drained daemon should leave as few
	// memory-only results behind as possible.
	s.flushPending()

	// Release the store directory's exclusive lock so a successor daemon
	// can open it; the store keeps serving reads for /result requests that
	// arrive after the drain.
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st != nil {
		_ = st.Close()
	}

	if s.cfg.SpoolDir == "" {
		return nil
	}
	return s.writeSpool()
}

// Close is Drain for tests that configured no spool directory.
func (s *Server) Close() { _ = s.Drain() }

// spoolManifest is the on-disk form of a drained job.
type spoolManifest struct {
	ID          string          `json:"id"`
	Array       string          `json:"array,omitempty"`
	Spec        Spec            `json:"spec"`
	Preemptions int             `json:"preemptions"`
	Step        int             `json:"step"`
	Retries     int             `json:"retries,omitempty"`
	Stalls      int             `json:"stalls,omitempty"`
	LastError   string          `json:"last_error,omitempty"`
	Applied     json.RawMessage `json:"applied,omitempty"`
	// Snapshot is the base64 lossless checkpoint of a preempted job
	// (absent for never-started jobs).
	Snapshot string `json:"snapshot,omitempty"`
}

// writeSpool persists every resumable job and every array record.
func (s *Server) writeSpool() error {
	if err := os.MkdirAll(s.cfg.SpoolDir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state != StateQueued {
			j.mu.Unlock()
			continue
		}
		m := spoolManifest{ID: j.ID, Array: j.array, Spec: j.Spec,
			Preemptions: j.preemptions, Step: j.step,
			Retries: j.retries, Stalls: j.stalls}
		if j.lastErr != nil {
			m.LastError = j.lastErr.Error()
		}
		if len(j.snapshot) > 0 {
			m.Snapshot = base64.StdEncoding.EncodeToString(j.snapshot)
		}
		if len(j.applied) > 0 {
			if blob, err := schedule.EncodeJSON(j.applied); err == nil {
				m.Applied = blob
			}
		}
		j.mu.Unlock()
		blob, err := json.Marshal(&m)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(s.cfg.SpoolDir, m.ID+".job.json"), blob, 0o644); err != nil {
			return err
		}
	}
	for _, arr := range s.arrays {
		m := arrayManifest{ID: arr.ID, Spec: arr.Spec, Children: arr.Children}
		blob, err := json.Marshal(&m)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(s.cfg.SpoolDir, arr.ID+".array.json"), blob, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// LoadSpool requeues jobs a previous daemon instance drained to the spool
// directory. Call before Start. Returns the number of jobs restored.
func (s *Server) LoadSpool() (int, error) {
	if s.cfg.SpoolDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.SpoolDir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		path := filepath.Join(s.cfg.SpoolDir, e.Name())
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".array.json") {
			blob, err := os.ReadFile(path)
			if err != nil {
				return n, err
			}
			var m arrayManifest
			if err := json.Unmarshal(blob, &m); err != nil {
				return n, fmt.Errorf("jobd: spool %s: %w", e.Name(), err)
			}
			s.mu.Lock()
			s.restoreArrayLocked(&m)
			s.mu.Unlock()
			_ = os.Remove(path)
			continue
		}
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".job.json") {
			continue
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return n, err
		}
		var m spoolManifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return n, fmt.Errorf("jobd: spool %s: %w", e.Name(), err)
		}
		sched, err := m.Spec.normalize()
		if err != nil {
			return n, fmt.Errorf("jobd: spool %s: %w", e.Name(), err)
		}
		s.mu.Lock()
		s.nextSeq++
		j := newJob(m.ID, s.nextSeq, m.Spec, sched)
		j.step = m.Step
		j.preemptions = m.Preemptions
		j.retries = m.Retries
		j.stalls = m.Stalls
		if m.LastError != "" {
			j.lastErr = fmt.Errorf("%s", m.LastError)
		}
		j.array = m.Array
		if j.array != "" {
			j.group = j.array
		}
		if m.Snapshot != "" {
			if j.snapshot, err = base64.StdEncoding.DecodeString(m.Snapshot); err != nil {
				s.mu.Unlock()
				return n, fmt.Errorf("jobd: spool %s: %w", e.Name(), err)
			}
		}
		if len(m.Applied) > 0 {
			if as, err := schedule.FromJSONBytes(m.Applied); err == nil {
				j.mergeApplied(as.Events)
			}
		}
		// Keep ids unique if the spool and fresh submissions mix.
		if id := idNumber(m.ID); id >= s.nextID {
			s.nextID = id
		}
		s.jobs[j.ID] = j
		s.enqueueLocked(j)
		s.mu.Unlock()
		j.mark("restore", "restored from spool")
		s.warnUnknownClass(j.ID, j.Spec.Class)
		_ = os.Remove(path)
		n++
	}
	if n > 0 {
		s.wakeup()
	}
	return n, nil
}

// idNumber extracts the numeric suffix of a job id ("job-0042" → 42).
func idNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}
