package phasefield_test

import (
	"fmt"
	"log"

	phasefield "repro"
	"repro/internal/schedule"
)

// Example runs a miniature directional-solidification simulation under a
// production schedule: a planar front advances while the pull velocity
// ramps. This is the package's whole surface in six calls — configure,
// init, schedule, run, observe.
func Example() {
	cfg := phasefield.DefaultConfig(8, 8, 16)
	sim, err := phasefield.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	if err := sim.InitFront(); err != nil {
		log.Fatal(err)
	}

	ramp := schedule.Ramp{Param: schedule.ParamPullVelocity, Step: 0, Over: 4,
		From: 0.02, To: 0.04}
	sched, err := schedule.New(ramp)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.RunSchedule(sched, 4, phasefield.ScheduleOptions{}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("steps: %d\n", sim.Step())
	fmt.Printf("events applied: %d\n", len(sim.AppliedEvents()))
	fmt.Printf("solid fraction in (0,1): %v\n", sim.SolidFraction() > 0 && sim.SolidFraction() < 1)
	// Output:
	// steps: 4
	// events applied: 1
	// solid fraction in (0,1): true
}
