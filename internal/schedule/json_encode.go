package schedule

import (
	"encoding/json"
	"fmt"

	"repro/internal/grid"
	"repro/internal/kernels"
)

// json_encode.go is the inverse of the JSON front-end: it serializes events
// back into the schedule-file format FromJSON reads. This is what makes the
// solver's applied-event audit log (Sim.AppliedEvents) replayable — the
// recorder of an interactive or daemon-driven run dumps a schedule file
// that reproduces the same trajectory from the same initial state
// (`solidify -record out.json`, `GET /jobs/{id}/schedule`).

// faceJSONNames is the canonical reverse of faceNames (which carries
// aliases like "bottom").
var faceJSONNames = map[grid.Face]string{
	grid.XMin: "x-", grid.XMax: "x+",
	grid.YMin: "y-", grid.YMax: "y+",
	grid.ZMin: "z-", grid.ZMax: "z+",
}

// kindJSONNames is the reverse of bcKindNames.
var kindJSONNames = map[grid.BCKind]string{
	grid.BCPeriodic:  "periodic",
	grid.BCNeumann:   "neumann",
	grid.BCDirichlet: "dirichlet",
}

// strategyJSONName reverses strategyNames for encodable values;
// StrategyKeep encodes as the absent field.
func strategyJSONName(s int) (string, error) {
	switch s {
	case StrategyOff:
		return "off", nil
	case int(kernels.StratCellwise):
		return "cellwise", nil
	case int(kernels.StratCellwiseShortcut):
		return "cellwise-shortcut", nil
	case int(kernels.StratFourCell):
		return "fourcell", nil
	}
	return "", fmt.Errorf("schedule: unencodable strategy %d", s)
}

// encodeEvent lowers one event to its JSON object. Maps marshal with
// sorted keys, so the output is deterministic.
func encodeEvent(ev Event) (map[string]any, error) {
	switch e := ev.(type) {
	case NucleationBurst:
		return map[string]any{
			"type": "burst", "step": e.Step, "count": e.Count,
			"phase": e.Phase, "radius": e.Radius,
			"zmin": e.ZMin, "zmax": e.ZMax, "seed": e.Seed,
		}, nil
	case Ramp:
		return map[string]any{
			"type": "ramp", "param": e.Param.String(), "step": e.Step,
			"over": e.Over, "from": e.From, "to": e.To,
		}, nil
	case SwitchVariant:
		m := map[string]any{"type": "switch", "step": e.Step}
		if e.Phi != KeepVariant {
			m["phi"] = VariantName(e.Phi)
		}
		if e.Mu != KeepVariant {
			m["mu"] = VariantName(e.Mu)
		}
		if e.Strategy != StrategyKeep {
			name, err := strategyJSONName(e.Strategy)
			if err != nil {
				return nil, err
			}
			m["strategy"] = name
		}
		return m, nil
	case SetBC:
		face, ok := faceJSONNames[e.Face]
		if !ok {
			return nil, fmt.Errorf("schedule: unencodable face %d", int(e.Face))
		}
		kind, ok := kindJSONNames[e.Kind]
		if !ok {
			return nil, fmt.Errorf("schedule: unencodable BC kind %d", int(e.Kind))
		}
		m := map[string]any{
			"type": "setbc", "step": e.Step, "face": face,
			"field": e.Field.String(), "kind": kind,
		}
		if e.Over != 0 {
			m["over"] = e.Over
		}
		if e.From != nil {
			m["from"] = e.From
		}
		if e.To != nil {
			m["to"] = e.To
		}
		return m, nil
	case Checkpoint:
		m := map[string]any{"type": "checkpoint", "every": e.Every}
		if e.Step != 0 {
			m["step"] = e.Step
		}
		if e.Path != "" {
			m["path"] = e.Path
		}
		return m, nil
	}
	return nil, fmt.Errorf("schedule: unencodable event %T", ev)
}

// EncodeJSON serializes events into the schedule-file format read by
// FromJSON. The events are emitted in the given order and are NOT
// validated against each other — an audit log may legally contain
// combinations New would reject as a prescription (e.g. two one-shots
// rebased onto the same restart step); FromJSON applies the usual rules on
// replay.
func EncodeJSON(events []Event) ([]byte, error) {
	out := struct {
		Events []map[string]any `json:"events"`
	}{Events: make([]map[string]any, 0, len(events))}
	for i, ev := range events {
		m, err := encodeEvent(ev)
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		out.Events = append(out.Events, m)
	}
	return json.MarshalIndent(&out, "", "  ")
}
