package kernels

import (
	"math"
	"testing"

	"repro/internal/core"
)

// Seam-focused equivalence tests for the four-cell φ strategy's staggered
// buffers and shifted tail group (the ROADMAP "tail-group recompute" fix):
// the overlap column x = nx-4 .. nx-1 now reuses carried face fluxes and
// masks its duplicate stores, so the seam cells are the ones a bug would
// hit first. The cellwise strategy (whose staggered machinery is guarded
// by its own equivalence suite) is the reference.

// maxAbsDiffColumn returns the largest |a-b| over the cells of column x
// across all phases and the full y/z extent.
func maxAbsDiffColumn(a, b *Fields, x int) float64 {
	maxd := 0.0
	for z := 0; z < a.PhiDst.NZ; z++ {
		for y := 0; y < a.PhiDst.NY; y++ {
			for c := 0; c < NP; c++ {
				d := math.Abs(a.PhiDst.At(c, x, y, z) - b.PhiDst.At(c, x, y, z))
				if d > maxd {
					maxd = d
				}
			}
		}
	}
	return maxd
}

func TestPhiFourCellSeamMatchesCellwise(t *testing.T) {
	// Every tail remainder (nx mod 4 = 1, 2, 3) plus aligned widths,
	// with and without shortcuts, checked column by column so a seam
	// defect is reported at its x position.
	for _, nx := range []int{5, 6, 7, 8, 9, 10, 13, 16} {
		const ny, nz = 6, 12
		p := testParams(nz)
		ctx := &Ctx{P: p}
		ref := setupInterface(nx, ny, nz, p)
		PhiSweepStrategy(ctx, ref, NewScratch(nx, ny), StratCellwise)
		f := setupInterface(nx, ny, nz, p)
		PhiSweepStrategy(ctx, f, NewScratch(nx, ny), StratFourCell)
		for x := 0; x < nx; x++ {
			if d := maxAbsDiffColumn(f, ref, x); d > 1e-8 {
				seam := ""
				if x >= nx-4 && nx%4 != 0 {
					seam = " (tail-group overlap)"
				}
				t.Errorf("nx=%d column x=%d%s: four-cell differs from cellwise by %g",
					nx, x, seam, d)
			}
		}
	}
}

// A bulk region ending exactly at the tail seam exercises the interaction
// between the all-four-bulk shortcut skip (which must zero the staggered
// buffers it passes over) and the shifted tail group that reuses them.
func TestPhiFourCellSeamWithBulkShortcuts(t *testing.T) {
	for _, nx := range []int{9, 10, 11, 13} {
		const ny, nz = 8, 10
		p := testParams(nz)
		ctx := &Ctx{P: p}

		mk := func() *Fields {
			f := setupInterface(nx, ny, nz, p)
			// Flatten the lower-left corner to pure bulk phase 0 so
			// whole four-cell groups (but not the tail) hit the
			// shortcut skip, with the seam right behind them.
			f.PhiSrc.Interior(func(x, y, z int) {
				if x < nx-2 && z < 3 {
					for a := 0; a < NP; a++ {
						v := 0.0
						if a == 0 {
							v = 1
						}
						f.PhiSrc.Set(a, x, y, z, v)
					}
				}
			})
			bs := testBCs()
			bs.Apply(f.PhiSrc)
			f.PhiDst.CopyFrom(f.PhiSrc)
			return f
		}

		ref := mk()
		PhiSweepStrategy(ctx, ref, NewScratch(nx, ny), StratCellwiseShortcut)
		f := mk()
		// StratFourCell runs with shortcuts enabled (the Fig. 5
		// comparison point), so skipped groups must leave valid
		// zeroed buffers for their seam neighbors.
		PhiSweepStrategy(ctx, f, NewScratch(nx, ny), StratFourCell)

		ok, maxd := f.PhiDst.InteriorEqual(ref.PhiDst, 1e-8)
		if !ok {
			t.Errorf("nx=%d: four-cell with bulk shortcuts differs by %g", nx, maxd)
		}
	}
}

// The tail group must not double-apply anything when the sweep runs twice
// over disjoint z-slabs (the parallel engine's decomposition): slab
// boundaries reset the z buffers, and seam columns must still match the
// full serial sweep bit-for-bit.
func TestPhiFourCellSeamSlabbed(t *testing.T) {
	const ny, nz = 6, 12
	for _, nx := range []int{7, 9, 13} {
		p := testParams(nz)
		ctx := &Ctx{P: p}
		serial := setupInterface(nx, ny, nz, p)
		PhiSweepStrategy(ctx, serial, NewScratch(nx, ny), StratFourCell)

		slabbed := setupInterface(nx, ny, nz, p)
		for _, zr := range [][2]int{{0, 5}, {5, 8}, {8, nz}} {
			PhiSweepStrategyRange(ctx, slabbed, NewScratch(nx, ny), StratFourCell, zr[0], zr[1])
		}
		if ok, maxd := slabbed.PhiDst.InteriorEqual(serial.PhiDst, 0); !ok {
			t.Errorf("nx=%d: slabbed four-cell differs from serial by %g (want bitwise)", nx, maxd)
		}
	}
}

// Liquid bulk (the region above the front) must remain exactly invariant
// under the four-cell sweep with shortcuts, including the seam cells —
// the same guarantee TestBulkPhaseFieldUnchanged gives the variants.
func TestPhiFourCellBulkInvariantAtSeam(t *testing.T) {
	for _, nx := range []int{6, 7, 9} {
		const ny, nz = 6, 8
		p := testParams(nz)
		ctx := &Ctx{P: p}
		f := setupBulk(nx, ny, nz, core.Liquid)
		PhiSweepStrategy(ctx, f, NewScratch(nx, ny), StratFourCell)
		if ok, maxd := f.PhiDst.InteriorEqual(f.PhiSrc, 0); !ok {
			t.Errorf("nx=%d: bulk liquid changed by %g under four-cell sweep", nx, maxd)
		}
	}
}
