// Package voronoi generates the initial solid nuclei of the directional
// solidification setup: "solid nuclei are created by a Voronoi tessellation
// with respect to the given volume fractions of the phases" (§2.1). Seeds
// are scattered in the bottom slab of the domain; each cell takes the solid
// phase of its nearest seed under the laterally periodic metric, and seed
// counts are apportioned so the realized volume fractions approach the
// thermodynamic eutectic fractions.
package voronoi

import (
	"fmt"
	"math/rand"
)

// Seed is one nucleus with a position and a solid phase label.
type Seed struct {
	X, Y, Z float64
	Phase   int
}

// Tessellation labels a nx×ny×nz slab of cells with solid phase indices.
type Tessellation struct {
	NX, NY, NZ int
	Labels     []uint8 // phase per cell, x fastest
	Seeds      []Seed
}

// At returns the phase label of cell (x,y,z).
func (t *Tessellation) At(x, y, z int) int {
	return int(t.Labels[(z*t.NY+y)*t.NX+x])
}

// Fractions returns the realized volume fraction per phase.
func (t *Tessellation) Fractions(nPhases int) []float64 {
	f := make([]float64, nPhases)
	for _, l := range t.Labels {
		f[l]++
	}
	inv := 1 / float64(len(t.Labels))
	for i := range f {
		f[i] *= inv
	}
	return f
}

// New builds a Voronoi tessellation of a nx×ny×nz slab with nSeeds nuclei
// whose phase labels follow the target fractions (which must sum to ~1).
// The metric is periodic in x and y (the lateral directions of the
// solidification domain) and open in z.
func New(nx, ny, nz, nSeeds int, fractions []float64, rng *rand.Rand) (*Tessellation, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("voronoi: nonpositive extent %dx%dx%d", nx, ny, nz)
	}
	if nSeeds <= 0 {
		return nil, fmt.Errorf("voronoi: need at least one seed")
	}
	sum := 0.0
	for _, f := range fractions {
		if f < 0 {
			return nil, fmt.Errorf("voronoi: negative fraction")
		}
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		return nil, fmt.Errorf("voronoi: fractions sum to %g", sum)
	}

	t := &Tessellation{NX: nx, NY: ny, NZ: nz, Labels: make([]uint8, nx*ny*nz)}

	counts := Apportion(nSeeds, fractions)

	for phase, n := range counts {
		for i := 0; i < n; i++ {
			t.Seeds = append(t.Seeds, Seed{
				X:     rng.Float64() * float64(nx),
				Y:     rng.Float64() * float64(ny),
				Z:     rng.Float64() * float64(nz),
				Phase: phase,
			})
		}
	}

	// Label every cell with its nearest seed's phase (periodic in x,y).
	fx, fy := float64(nx), float64(ny)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				cx, cy, cz := float64(x)+0.5, float64(y)+0.5, float64(z)+0.5
				best := -1
				bestD := 0.0
				for i := range t.Seeds {
					s := &t.Seeds[i]
					dx := periodicDist(cx, s.X, fx)
					dy := periodicDist(cy, s.Y, fy)
					dz := cz - s.Z
					d := dx*dx + dy*dy + dz*dz
					if best < 0 || d < bestD {
						best, bestD = i, d
					}
				}
				t.Labels[(z*ny+y)*nx+x] = uint8(t.Seeds[best].Phase)
			}
		}
	}
	return t, nil
}

// Apportion distributes n seeds over phases by largest remainder so the
// counts match the target fractions as closely as possible (the rule behind
// both the initial tessellation and scheduled nucleation bursts). The
// fractions are normalized by their sum.
func Apportion(n int, fractions []float64) []int {
	sum := 0.0
	for _, f := range fractions {
		sum += f
	}
	counts := make([]int, len(fractions))
	if sum <= 0 || n <= 0 {
		return counts
	}
	type rem struct {
		idx int
		r   float64
	}
	assigned := 0
	rems := make([]rem, len(fractions))
	for i, f := range fractions {
		exact := f * float64(n) / sum
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{i, exact - float64(counts[i])}
	}
	for assigned < n {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].r > rems[best].r {
				best = i
			}
		}
		counts[rems[best].idx]++
		rems[best].r = -1
		assigned++
	}
	return counts
}

// BurstSeeds scatters n nuclei uniformly in the lab-frame box
// [0,nx)×[0,ny)×[zmin,zmax) for a scheduled nucleation burst. phase >= 0
// pins every nucleus to that solid phase; phase < 0 apportions the nuclei
// over the given fractions by the same largest-remainder rule as the
// initial tessellation. Seeds are emitted in phase order, positions drawn
// from rng, so a fixed seed yields a fixed burst.
func BurstSeeds(nx, ny int, zmin, zmax float64, n, phase int, fractions []float64, rng *rand.Rand) ([]Seed, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("voronoi: nonpositive lateral extent %dx%d", nx, ny)
	}
	if zmax <= zmin {
		return nil, fmt.Errorf("voronoi: empty burst z range [%g,%g)", zmin, zmax)
	}
	if n <= 0 {
		return nil, fmt.Errorf("voronoi: need at least one burst seed")
	}
	var counts []int
	if phase >= 0 {
		counts = make([]int, phase+1)
		counts[phase] = n
	} else {
		counts = Apportion(n, fractions)
	}
	seeds := make([]Seed, 0, n)
	for ph, c := range counts {
		for i := 0; i < c; i++ {
			seeds = append(seeds, Seed{
				X:     rng.Float64() * float64(nx),
				Y:     rng.Float64() * float64(ny),
				Z:     zmin + rng.Float64()*(zmax-zmin),
				Phase: ph,
			})
		}
	}
	return seeds, nil
}

// PeriodicDist returns the minimal wrapped distance between a and b on a
// ring of circumference l (the lateral metric of the solidification
// domain).
func PeriodicDist(a, b, l float64) float64 {
	return periodicDist(a, b, l)
}

// periodicDist returns the minimal wrapped distance between a and b on a
// ring of circumference l.
func periodicDist(a, b, l float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > l/2 {
		d = l - d
	}
	return d
}
