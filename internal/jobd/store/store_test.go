package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultfs"
)

// A torn write (partial bytes, then an error — the ENOSPC signature) must
// fail PutBlob and leave the object address empty: the write error aborts
// the discipline before the rename, so the torn temp file never becomes
// visible content. Regression test — an error-shadowing bug once renamed
// the torn temp file into place.
func TestTornWriteNeverRenamedIntoPlace(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInject(nil, &faultfs.Rule{
		Op: faultfs.OpWrite, PathContains: "objects", Times: 1,
		TornBytes: 3, Err: faultfs.ErrInjected,
	})
	s, err := OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("full result payload")
	if _, err := s.PutBlob(blob); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn PutBlob err = %v, want the injected write error", err)
	}
	h := HashBlob(blob)
	if _, err := os.Stat(filepath.Join(dir, "objects", h[:2], h)); !os.IsNotExist(err) {
		t.Fatalf("torn write became visible content (stat err = %v)", err)
	}
	// The rule is spent; the retry lands the full blob.
	if _, err := s.PutBlob(blob); err != nil {
		t.Fatalf("retry after torn write: %v", err)
	}
	if got, err := s.Blob(h); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("retried blob: %q, %v", got, err)
	}
}

func TestBlobRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("final checkpoint bytes")
	h, err := s.PutBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if h != HashBlob(blob) {
		t.Fatalf("hash %s, want %s", h, HashBlob(blob))
	}
	// Idempotent: same content stores once.
	if h2, err := s.PutBlob(blob); err != nil || h2 != h {
		t.Fatalf("re-put: %s %v", h2, err)
	}
	got, err := s.Blob(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("blob %q, want %q", got, blob)
	}
}

// A bit-flipped object must be reported as corruption, never returned: the
// content address is verified on every read.
func TestCorruptObjectNeverServed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("result payload")
	h, err := s.PutBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", h[:2], h)

	// Flip one byte in place (simulates on-disk corruption).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Blob(h); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt object served (err=%v)", err)
	}

	// Truncate it (simulates a torn write that bypassed the rename
	// discipline, e.g. filesystem damage).
	if err := os.WriteFile(path, raw[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Blob(h); err == nil {
		t.Fatal("torn object served")
	}
}

// A crash between temp-file creation and rename leaves *.tmp litter; Open
// sweeps it and readers never see it as content.
func TestCrashLeftoversSweptAndInvisible(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.PutBlob([]byte("good"))
	if err != nil {
		t.Fatal(err)
	}
	// Reference the object so the reopen's orphan sweep keeps it.
	if err := s.PutManifest(JobsBucket, "job-0001", map[string]string{"result": h}); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer killed mid-spill: partial temp files next to a
	// manifest and an object.
	for _, p := range []string{
		filepath.Join(dir, JobsBucket, "job-0007.json.123.tmp"),
		filepath.Join(dir, "objects", h[:2], h+".456.tmp"),
	} {
		if err := os.WriteFile(p, []byte("torn{"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Readers skip temp files even before the sweep.
	n := 0
	if err := s.Manifests(JobsBucket, func(id string, blob []byte) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("want only the real manifest visible to readers, got %d entries", n)
	}

	// A reopened store (the restarted daemon) sweeps the litter. Release
	// the first instance's directory lock as a process exit would.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"objects", JobsBucket, ArraysBucket} {
		_ = filepath.WalkDir(filepath.Join(dir, sub), func(path string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(d.Name(), ".tmp") {
				t.Errorf("leftover temp file survived reopen: %s", path)
			}
			return nil
		})
	}
	// The completed object is untouched.
	if _, err := s.Blob(h); err != nil {
		t.Fatalf("good object lost: %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type manifest struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := s.PutManifest(JobsBucket, "job-0001", manifest{ID: "job-0001", State: "done"}); err != nil {
		t.Fatal(err)
	}
	// Updating is atomic replacement.
	if err := s.PutManifest(JobsBucket, "job-0001", manifest{ID: "job-0001", State: "failed"}); err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	if err := s.Manifests(JobsBucket, func(id string, blob []byte) error {
		got[id] = string(blob)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got["job-0001"], `"failed"`) {
		t.Fatalf("manifests %v", got)
	}
}

func TestManifestIDValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../evil", "a/b", ".hidden"} {
		if err := s.PutManifest(JobsBucket, id, struct{}{}); err == nil {
			t.Errorf("manifest id %q accepted", id)
		}
	}
	if _, err := s.Blob("not-a-hash"); err == nil {
		t.Error("malformed hash accepted")
	}
}

// Open reclaims orphaned objects — blobs whose spill crashed before the
// manifest rename — while keeping every object any manifest references,
// including hashes nested in arrays and sub-objects (the sweep matches
// string shape, not schema).
func TestOpenReclaimsOrphanedObjects(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	kept1, err := s.PutBlob([]byte("result bytes"))
	if err != nil {
		t.Fatal(err)
	}
	kept2, err := s.PutBlob([]byte("schedule bytes"))
	if err != nil {
		t.Fatal(err)
	}
	orphan, err := s.PutBlob([]byte("spill died before the manifest"))
	if err != nil {
		t.Fatal(err)
	}
	type nested struct {
		Result string   `json:"result"`
		Extra  []string `json:"extra"`
	}
	if err := s.PutManifest(JobsBucket, "job-0001", nested{Result: kept1, Extra: []string{kept2}}); err != nil {
		t.Fatal(err)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{kept1, kept2} {
		if _, err := s.Blob(h); err != nil {
			t.Errorf("referenced object %s reclaimed: %v", h[:8], err)
		}
	}
	if _, err := s.Blob(orphan); err == nil {
		t.Errorf("orphaned object %s survived reopen", orphan[:8])
	}

	// Reclamation is idempotent and the store stays writable.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutBlob([]byte("spill died before the manifest")); err != nil {
		t.Fatalf("re-spilling reclaimed content: %v", err)
	}
}

// The exclusive directory lock: a second daemon's Open must be refused
// while the first holds the store — otherwise its orphan sweep would
// reclaim blobs the live daemon has written but not yet referenced from a
// manifest. Close hands the directory over and keeps reads working.
func TestOpenRefusesLockedStore(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The racing scenario: s1 has spilled a blob but not yet its manifest.
	hash, err := s1.PutBlob([]byte("in-flight spill"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("second Open on a live store succeeded; its sweep would reclaim in-flight blobs")
	}
	if _, err := s1.Blob(hash); err != nil {
		t.Fatalf("in-flight blob lost: %v", err)
	}

	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}
	// Handover: the successor opens (and its sweep reclaims the orphan),
	// while the closed predecessor can still serve reads.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	defer s2.Close()
	if err := s2.PutManifest(JobsBucket, "job-x", map[string]string{"note": "successor"}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Manifests(JobsBucket, func(id string, blob []byte) error { return nil }); err != nil {
		t.Fatalf("closed store cannot read: %v", err)
	}
}
