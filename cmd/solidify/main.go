// Command solidify runs a directional ternary-eutectic solidification
// simulation of the Ag-Al-Cu system (the paper's production scenario,
// Fig. 2): Voronoi solid nuclei at the bottom of a melt-filled domain, a
// frozen temperature gradient pulled upward at constant velocity, the
// moving-window technique, and periodic interface-mesh output.
//
// Usage:
//
//	solidify -nx 64 -ny 64 -nz 128 -steps 2000 -px 2 -py 2 \
//	         -out out/ -meshevery 500 -ckpt out/state.pfcp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/mesh"
)

func main() {
	nx := flag.Int("nx", 64, "domain cells in x")
	ny := flag.Int("ny", 64, "domain cells in y")
	nz := flag.Int("nz", 128, "domain cells in z (growth direction)")
	px := flag.Int("px", 1, "blocks (worker ranks) in x")
	py := flag.Int("py", 1, "blocks in y")
	steps := flag.Int("steps", 1000, "timesteps")
	report := flag.Int("report", 100, "progress report interval")
	meshEvery := flag.Int("meshevery", 0, "write interface meshes every N steps (0 = off)")
	meshTris := flag.Int("meshtris", 20000, "simplification target per mesh")
	outDir := flag.String("out", ".", "output directory")
	ckptPath := flag.String("ckpt", "", "write a final checkpoint to this path")
	window := flag.Bool("window", true, "enable the moving window")
	par := flag.Int("par", 0, "total sweep workers for intra-block parallelism (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "Voronoi seed")
	flag.Parse()

	cfg := phasefield.DefaultConfig(*nx, *ny, *nz)
	cfg.PX, cfg.PY = *px, *py
	cfg.MovingWindow = *window
	cfg.Parallelism = *par
	cfg.Seed = *seed
	sim, err := phasefield.New(cfg)
	if err != nil {
		fatal(err)
	}
	if err := sim.InitProduction(); err != nil {
		fatal(err)
	}
	names := phasefield.PhaseNames()
	fmt.Printf("solidify: %dx%dx%d cells, %d ranks, dt=%g\n",
		*nx, *ny, *nz, (*px)*(*py), sim.Params().Dt)

	for done := 0; done < *steps; {
		chunk := *report
		if done+chunk > *steps {
			chunk = *steps - done
		}
		m := sim.RunMeasured(chunk)
		done += chunk
		fr := sim.PhaseFractions()
		fmt.Printf("step %6d  t=%8.2f  solid=%.3f  front=z%-4d  %.2f MLUP/s  [%s %.2f | %s %.2f | %s %.2f]\n",
			sim.Step(), sim.Time(), sim.SolidFraction(), sim.FrontHeight(), m.MLUPs(),
			names[0], fr[0], names[1], fr[1], names[2], fr[2])

		if *meshEvery > 0 && done%*meshEvery == 0 {
			writeMeshes(sim, *outDir, *meshTris, done, names)
		}
	}

	if *meshEvery > 0 {
		writeMeshes(sim, *outDir, *meshTris, *steps, names)
	}
	if *ckptPath != "" {
		if err := sim.Checkpoint(*ckptPath); err != nil {
			fatal(err)
		}
		fmt.Println("checkpoint written to", *ckptPath)
	}
}

func writeMeshes(sim *phasefield.Simulation, dir string, target, step int, names [phasefield.NumPhases]string) {
	meshes := sim.ExtractInterfaces()
	for a, m := range meshes {
		if m.NumTris() == 0 {
			continue
		}
		if target > 0 && m.NumTris() > target {
			mesh.Simplify(m, mesh.SimplifyOptions{TargetTris: target})
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_step%06d.stl", names[a], step))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := m.WriteSTL(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("  mesh %s: %d triangles\n", path, m.NumTris())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "solidify:", err)
	os.Exit(1)
}
