package solver

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/schedule"
)

// Flipping a comm-realized periodic axis to walls — rejected outright
// before the topology lift — must now run, and must stay bit-identical
// across decompositions of that axis: the single-block run realizes the
// flip through face conditions, the decomposed run through a topology
// rewire, and both must produce the same trajectory.
func TestSetBCFlipPeriodicToWallsBitwiseAcrossDecompositions(t *testing.T) {
	flip := func() *schedule.Schedule {
		return mkSched(t,
			schedule.SetBC{Step: 3, Face: grid.XMin, Field: schedule.BCPhi, Kind: grid.BCNeumann},
			schedule.SetBC{Step: 3, Face: grid.XMax, Field: schedule.BCPhi, Kind: grid.BCNeumann},
			schedule.SetBC{Step: 3, Face: grid.XMin, Field: schedule.BCMu, Kind: grid.BCNeumann},
			schedule.SetBC{Step: 3, Face: grid.XMax, Field: schedule.BCMu, Kind: grid.BCNeumann})
	}
	run := func(px, py int) *Sim {
		s := mkSim(t, px, py, 1, 16/px, 16/py, 10, kernels.VarShortcut, OverlapNone)
		if err := s.InitScenario(ScenarioInterface); err != nil {
			t.Fatal(err)
		}
		if err := s.RunSchedule(8, flip(), ScheduleHooks{}); err != nil {
			t.Fatalf("%dx%d: kind flip on decomposed periodic axis rejected: %v", px, py, err)
		}
		if s.World.Topology().Periodic[0] {
			t.Errorf("%dx%d: x axis still topologically periodic after wall flip", px, py)
		}
		phi, _ := s.DomainBCs()
		if phi[grid.XMin].Kind != grid.BCNeumann {
			t.Errorf("%dx%d: φ x- kind %v, want Neumann", px, py, phi[grid.XMin].Kind)
		}
		return s
	}
	ref := run(1, 1)
	dec := run(2, 2)
	if ok, maxd := ref.GatherGlobalPhi().InteriorEqual(dec.GatherGlobalPhi(), 0); !ok {
		t.Errorf("φ diverged %g between decompositions across periodicity flip", maxd)
	}
	if ok, maxd := ref.GatherGlobalMu().InteriorEqual(dec.GatherGlobalMu(), 0); !ok {
		t.Errorf("µ diverged %g between decompositions across periodicity flip", maxd)
	}
}

// The reverse flip: a walled, decomposed axis becomes periodic mid-run when
// all four face prescriptions switch together, the wrap crossing block
// boundaries through the communication layer. Bit-compared against the
// single-block realization of the same schedule.
func TestSetBCFlipWallsToPeriodicBitwiseAcrossDecompositions(t *testing.T) {
	flip := func() *schedule.Schedule {
		return mkSched(t,
			schedule.SetBC{Step: 2, Face: grid.ZMin, Field: schedule.BCPhi, Kind: grid.BCPeriodic},
			schedule.SetBC{Step: 2, Face: grid.ZMax, Field: schedule.BCPhi, Kind: grid.BCPeriodic},
			schedule.SetBC{Step: 2, Face: grid.ZMin, Field: schedule.BCMu, Kind: grid.BCPeriodic},
			schedule.SetBC{Step: 2, Face: grid.ZMax, Field: schedule.BCMu, Kind: grid.BCPeriodic})
	}
	run := func(pz int) *Sim {
		s := mkSim(t, 1, 1, pz, 8, 8, 12/pz, kernels.VarShortcut, OverlapNone)
		if err := s.InitScenario(ScenarioInterface); err != nil {
			t.Fatal(err)
		}
		if err := s.RunSchedule(6, flip(), ScheduleHooks{}); err != nil {
			t.Fatalf("pz=%d: periodic flip on z rejected: %v", pz, err)
		}
		if !s.World.Topology().Periodic[2] {
			t.Errorf("pz=%d: z axis not topologically periodic after flip", pz)
		}
		return s
	}
	ref := run(1)
	dec := run(2)
	if ok, maxd := ref.GatherGlobalPhi().InteriorEqual(dec.GatherGlobalPhi(), 0); !ok {
		t.Errorf("φ diverged %g between decompositions across periodic flip", maxd)
	}
	if ok, maxd := ref.GatherGlobalMu().InteriorEqual(dec.GatherGlobalMu(), 0); !ok {
		t.Errorf("µ diverged %g between decompositions across periodic flip", maxd)
	}
}

// A prescription leaving a decomposed axis mixed-periodic is unrealizable;
// the rejection must fail fast (zero steps run) and be a structured
// *ScheduleError so the job daemon can mark the job permanently failed and
// surface the offending event instead of retrying.
func TestSetBCMixedPeriodicityStructuredError(t *testing.T) {
	s := mkSim(t, 2, 1, 1, 6, 8, 10, kernels.VarShortcut, OverlapNone)
	if err := s.InitScenario(ScenarioLiquid); err != nil {
		t.Fatal(err)
	}
	// Only φ's x faces leave the periodic state: µ still wraps through the
	// comm layer while φ wants walls — unrealizable on a decomposed axis.
	sched := mkSched(t,
		schedule.SetBC{Step: 4, Face: grid.XMin, Field: schedule.BCPhi, Kind: grid.BCNeumann},
		schedule.SetBC{Step: 4, Face: grid.XMax, Field: schedule.BCPhi, Kind: grid.BCNeumann})
	err := s.RunSchedule(10, sched, ScheduleHooks{})
	if err == nil {
		t.Fatal("mixed periodicity on a decomposed axis accepted")
	}
	var serr *ScheduleError
	if !errors.As(err, &serr) {
		t.Fatalf("error %v (%T) is not a *ScheduleError", err, err)
	}
	if serr.Step != 4 || serr.Face != grid.XMin.String() || serr.Reason == "" {
		t.Errorf("structured fields %+v, want step 4 face %s with reason", serr, grid.XMin)
	}
	if s.StepCount() != 0 {
		t.Errorf("ran %d steps before rejecting", s.StepCount())
	}
}

// The moving window scrolls material through z; a schedule making z
// periodic under it must be rejected up front.
func TestSetBCRejectsPeriodicZUnderMovingWindow(t *testing.T) {
	bg, err := grid.NewBlockGrid(1, 1, 1, 8, 8, 12, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Temp.Z0 = 6 * p.Dx
	s, err := New(Config{Params: p, BG: bg, Variant: kernels.VarShortcut, MovingWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	sched := mkSched(t,
		schedule.SetBC{Step: 1, Face: grid.ZMin, Field: schedule.BCPhi, Kind: grid.BCPeriodic},
		schedule.SetBC{Step: 1, Face: grid.ZMax, Field: schedule.BCPhi, Kind: grid.BCPeriodic},
		schedule.SetBC{Step: 1, Face: grid.ZMin, Field: schedule.BCMu, Kind: grid.BCPeriodic},
		schedule.SetBC{Step: 1, Face: grid.ZMax, Field: schedule.BCMu, Kind: grid.BCPeriodic})
	var serr *ScheduleError
	if err := s.RunSchedule(3, sched, ScheduleHooks{}); !errors.As(err, &serr) {
		t.Fatalf("periodic z under moving window accepted (err=%v)", err)
	}
}
