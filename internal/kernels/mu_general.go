package kernels

import (
	"math"

	"repro/internal/core"
)

// mu_general.go emulates the general-purpose code's µ-kernel: per-cell
// indirect dispatch over term objects, redundant recomputation of
// interpolation weights and thermodynamic quantities, divisions and exact
// square roots instead of reciprocal tricks. Results agree with the
// optimized kernels within roundoff.

type muTerm interface {
	accumulate(st *muGenState, rhs *[NR]float64)
}

type muGenState struct {
	ctx     *Ctx
	f       *Fields
	x, y, z int
	T       float64
}

// muGenSource is the −Σ c_α ∂h_α/∂t − (∂c/∂T)(∂T/∂t) source term.
type muGenSource struct{}

func (muGenSource) accumulate(st *muGenState, rhs *[NR]float64) {
	p := st.ctx.P
	var phiC, phiDC, hS, hD [NP]float64
	loadPhi(st.f.PhiSrc, st.x, st.y, st.z, &phiC)
	loadPhi(st.f.PhiDst, st.x, st.y, st.z, &phiDC)
	core.Interp(&phiC, &hS)
	core.Interp(&phiDC, &hD)
	var muC [NR]float64
	loadMu(st.f.MuSrc, st.x, st.y, st.z, &muC)
	dT := st.T - p.Sys.TE
	for a := 0; a < NP; a++ {
		dh := (hD[a] - hS[a]) / p.Dt
		ca := p.Sys.Phases[a].Conc(muC, dT)
		for k := 0; k < NR; k++ {
			rhs[k] -= ca[k] * dh
		}
	}
	for k := 0; k < NR; k++ {
		s := 0.0
		for a := 0; a < NP; a++ {
			s += hS[a] * p.Sys.Phases[a].DC0dT[k]
		}
		rhs[k] -= s * p.Temp.DTdt()
	}
}

// muGenFlux is the ∇·(M∇µ − J_at) term, recomputing all six faces.
type muGenFlux struct{}

func (muGenFlux) accumulate(st *muGenState, rhs *[NR]float64) {
	p := st.ctx.P
	for axis := 0; axis < 3; axis++ {
		var hi, lo [NR]float64
		muGenFaceFlux(st, st.x, st.y, st.z, axis, &hi)
		lx, ly, lz := st.x, st.y, st.z
		switch axis {
		case 0:
			lx--
		case 1:
			ly--
		default:
			lz--
		}
		muGenFaceFlux(st, lx, ly, lz, axis, &lo)
		for k := 0; k < NR; k++ {
			rhs[k] += (hi[k] - lo[k]) / p.Dx
		}
	}
}

// muGenFaceFlux evaluates (M∇µ − J_at)·n at the face between (x,y,z) and
// its +axis neighbor in the general code's style.
func muGenFaceFlux(st *muGenState, x, y, z, axis int, out *[NR]float64) {
	p := st.ctx.P
	phiS, phiD := st.f.PhiSrc, st.f.PhiDst
	muS := st.f.MuSrc
	ox, oy, oz := axisOffsets(axis)
	// The face is evaluated at the low cell's slice temperature, matching
	// the staggered-buffer convention of the optimized kernels.
	dT := p.Temp.At(st.ctx.ZOff+z, p.Dx, st.ctx.Time) - p.Sys.TE

	var phiF, hf [NP]float64
	for a := 0; a < NP; a++ {
		phiF[a] = (phiS.At(a, x, y, z) + phiS.At(a, x+ox, y+oy, z+oz)) / 2
	}
	core.Interp(&phiF, &hf)

	for k := 0; k < NR; k++ {
		m := 0.0
		for a := 0; a < NP; a++ {
			m += hf[a] * p.D[a] / (2 * p.Sys.Phases[a].A[k])
		}
		out[k] = m * (muS.At(k, x+ox, y+oy, z+oz) - muS.At(k, x, y, z)) / p.Dx
	}

	if p.AT == 0 || phiF[LQ] <= tolPhiProd || hf[LQ] <= 0 {
		return
	}
	var fg [NP][3]float64
	faceGradPhi(phiS, x, y, z, axis, 1/p.Dx, &fg)
	gl := fg[LQ]
	n2l := gl[0]*gl[0] + gl[1]*gl[1] + gl[2]*gl[2]
	if n2l < tolGrad2 {
		return
	}
	nl := math.Sqrt(n2l)

	var muF [NR]float64
	for k := 0; k < NR; k++ {
		muF[k] = (muS.At(k, x, y, z) + muS.At(k, x+ox, y+oy, z+oz)) / 2
	}
	cl := p.Sys.Phases[LQ].Conc(muF, dT)

	for a := 0; a < NP-1; a++ {
		if phiF[a] <= tolPhiProd {
			continue
		}
		ga := fg[a]
		n2a := ga[0]*ga[0] + ga[1]*ga[1] + ga[2]*ga[2]
		if n2a < tolGrad2 {
			continue
		}
		na := math.Sqrt(n2a)
		ndot := (ga[0]*gl[0] + ga[1]*gl[1] + ga[2]*gl[2]) / (na * nl)
		dphidt := ((phiD.At(a, x, y, z) - phiS.At(a, x, y, z)) +
			(phiD.At(a, x+ox, y+oy, z+oz) - phiS.At(a, x+ox, y+oy, z+oz))) / (2 * p.Dt)
		ca := p.Sys.Phases[a].Conc(muF, dT)
		pref := core.ATPrefactor * p.Eps * p.AT * core.GAT(phiF[a]) * hf[LQ] /
			math.Sqrt(phiF[a]*phiF[LQ]) * dphidt * ndot
		for k := 0; k < NR; k++ {
			out[k] -= pref * (cl[k] - ca[k]) * ga[axis] / na
		}
	}
}

// muSweepGeneral runs the emulated general-purpose µ-kernel over the z-slab
// [z0,z1).
func muSweepGeneral(ctx *Ctx, f *Fields, z0, z1 int) {
	p := ctx.P
	muS, muD := f.MuSrc, f.MuDst
	terms := []muTerm{muGenSource{}, muGenFlux{}}

	var st muGenState
	st.ctx = ctx
	st.f = f
	for z := z0; z < z1; z++ {
		for y := 0; y < muS.NY; y++ {
			for x := 0; x < muS.NX; x++ {
				st.x, st.y, st.z = x, y, z
				st.T = p.Temp.At(ctx.ZOff+z, p.Dx, ctx.Time)

				var rhs [NR]float64
				for _, term := range terms {
					term.accumulate(&st, &rhs)
				}

				// χ⁻¹ through the full thermodynamic interface.
				var phiC, hS [NP]float64
				loadPhi(f.PhiSrc, x, y, z, &phiC)
				core.Interp(&phiC, &hS)
				chi := p.Sys.MixedSusceptibility(&hS)
				for k := 0; k < NR; k++ {
					muD.Set(k, x, y, z, muS.At(k, x, y, z)+p.Dt*rhs[k]/chi[k])
				}
			}
		}
	}
}
