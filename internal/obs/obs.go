// Package obs is the telemetry substrate shared by the solver, the
// communication layer and the job daemon: step-phase records, bounded
// rings, atomic latency histograms and a Chrome trace_event writer.
//
// The design rule is zero allocation and zero locking on the hot path.
// Records are plain value structs pushed into preallocated rings by the
// single stepping goroutine; histograms are fixed arrays of atomics; all
// aggregation, formatting and JSON encoding happens on cold paths (HTTP
// handlers, trace export). Nothing here feeds back into the numerics —
// a simulation runs bit-identically with telemetry on or off.
package obs

import "time"

// StepRecord is one timestep's phase breakdown, sampled at phase
// boundaries only (no timers inside the cell loops). Kernel and halo
// durations are summed over the process' local ranks, so on a multi-block
// decomposition they can exceed Wall — the phases run concurrently on the
// rank goroutines. Halo components follow comm.Stats semantics: Pack and
// Unpack are buffer copies, Transfer is blocking transport time, Wait is
// time blocked in Finish for overlapped exchanges. Under the deferred-µ
// overlap modes the µ exchange of step N completes at the start of step
// N+1, so its cost lands on the next step's record — attribution shifts
// one step, totals are exact.
type StepRecord struct {
	// Step is the completed-step count after this step; Start is the wall
	// clock at step start, in Unix nanoseconds.
	Step  int
	Start int64
	// Wall is the whole-step wall time on the stepping goroutine.
	Wall time.Duration

	// PhiKernel and MuKernel are the sweep kernel times of this step,
	// summed over local ranks.
	PhiKernel time.Duration
	MuKernel  time.Duration

	// Halo phase times of this step (φ and µ tags combined), summed over
	// local ranks.
	HaloPack     time.Duration
	HaloTransfer time.Duration
	HaloWait     time.Duration
	HaloUnpack   time.Duration

	// Sched is the schedule/BC event application time charged to this
	// step (applied at the step boundary before it); Ckpt is checkpoint
	// write time charged after it.
	Sched time.Duration
	Ckpt  time.Duration

	// ActiveFraction is the share of z-slices the activity tracker swept
	// this step (1 = nothing slept or tracking off).
	ActiveFraction float64
	// HaloBytes counts payload bytes moved by this step's exchanges;
	// HaloSkipped counts face rounds replaced by sleep tokens.
	HaloBytes   int64
	HaloSkipped int64
}

// StepTotals is the cumulative form of StepRecord: every field summed
// since the totals were last zeroed, plus the step count. The job daemon
// keeps window deltas of these (Sub) to attach phase breakdowns to its
// metrics samples.
type StepTotals struct {
	// Steps is how many records have been accumulated.
	Steps int64
	// Wall through Ckpt sum the corresponding StepRecord durations.
	Wall         time.Duration
	PhiKernel    time.Duration
	MuKernel     time.Duration
	HaloPack     time.Duration
	HaloTransfer time.Duration
	HaloWait     time.Duration
	HaloUnpack   time.Duration
	Sched        time.Duration
	Ckpt         time.Duration
	// HaloBytes and HaloSkipped sum the per-step counters.
	HaloBytes   int64
	HaloSkipped int64
}

// Add folds one step's record into the totals.
func (t *StepTotals) Add(r StepRecord) {
	t.Steps++
	t.Wall += r.Wall
	t.PhiKernel += r.PhiKernel
	t.MuKernel += r.MuKernel
	t.HaloPack += r.HaloPack
	t.HaloTransfer += r.HaloTransfer
	t.HaloWait += r.HaloWait
	t.HaloUnpack += r.HaloUnpack
	t.Sched += r.Sched
	t.Ckpt += r.Ckpt
	t.HaloBytes += r.HaloBytes
	t.HaloSkipped += r.HaloSkipped
}

// Sub returns the window delta t − prev (prev must be an earlier snapshot
// of the same accumulator).
func (t StepTotals) Sub(prev StepTotals) StepTotals {
	return StepTotals{
		Steps:        t.Steps - prev.Steps,
		Wall:         t.Wall - prev.Wall,
		PhiKernel:    t.PhiKernel - prev.PhiKernel,
		MuKernel:     t.MuKernel - prev.MuKernel,
		HaloPack:     t.HaloPack - prev.HaloPack,
		HaloTransfer: t.HaloTransfer - prev.HaloTransfer,
		HaloWait:     t.HaloWait - prev.HaloWait,
		HaloUnpack:   t.HaloUnpack - prev.HaloUnpack,
		Sched:        t.Sched - prev.Sched,
		Ckpt:         t.Ckpt - prev.Ckpt,
		HaloBytes:    t.HaloBytes - prev.HaloBytes,
		HaloSkipped:  t.HaloSkipped - prev.HaloSkipped,
	}
}

// MLUPs returns the throughput in million lattice-cell updates per second
// over the accumulated window, given the global cell count.
func (t StepTotals) MLUPs(cells int) float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(cells) * float64(t.Steps) / t.Wall.Seconds() / 1e6
}
