package core

// ProjectSimplex projects φ onto the Gibbs simplex Δ^{N−1} (componentwise
// in [0,1], summing to 1) using the Euclidean projection of Michelot /
// Condat. The obstacle potential makes the unconstrained explicit update
// leave the simplex in interface cells every step, so this projection is
// part of the φ-kernel ("a routine that projects the φ values back into the
// allowed simplex", §5.1.1). The descending sort uses a fixed five-comparator
// network — this runs once per cell per step, so no allocation or dynamic
// dispatch is tolerable.
func ProjectSimplex(phi *[NPhases]float64) {
	// Fast path: already on the simplex.
	sum := 0.0
	inBox := true
	for a := 0; a < NPhases; a++ {
		v := phi[a]
		if v < 0 || v > 1 {
			inBox = false
		}
		sum += v
	}
	if inBox && sum > 1-1e-14 && sum < 1+1e-14 {
		return
	}

	// Euclidean projection onto {x : x ≥ 0, Σx = 1} via descending sort
	// (sorting network for four elements).
	s0, s1, s2, s3 := phi[0], phi[1], phi[2], phi[3]
	if s0 < s1 {
		s0, s1 = s1, s0
	}
	if s2 < s3 {
		s2, s3 = s3, s2
	}
	if s0 < s2 {
		s0, s2 = s2, s0
	}
	if s1 < s3 {
		s1, s3 = s3, s1
	}
	if s1 < s2 {
		s1, s2 = s2, s1
	}
	s := [NPhases]float64{s0, s1, s2, s3}
	css := 0.0
	theta := 0.0
	for i := 0; i < NPhases; i++ {
		css += s[i]
		t := (css - 1) / float64(i+1)
		if s[i]-t > 0 {
			theta = t
		}
	}
	for a := 0; a < NPhases; a++ {
		v := phi[a] - theta
		if v < 0 {
			v = 0
		}
		phi[a] = v
	}
	// Renormalize residual rounding error so the sum is exactly 1 up to
	// one ulp; the upper bound x ≤ 1 is implied by Σ = 1 and x ≥ 0.
	total := phi[0] + phi[1] + phi[2] + phi[3]
	if total > 0 {
		inv := 1 / total
		for a := 0; a < NPhases; a++ {
			phi[a] *= inv
		}
	} else {
		phi[0], phi[1], phi[2], phi[3] = 0.25, 0.25, 0.25, 0.25
	}
}

// OnSimplex reports whether φ lies on the Gibbs simplex within tolerance.
func OnSimplex(phi *[NPhases]float64, tol float64) bool {
	sum := 0.0
	for a := 0; a < NPhases; a++ {
		if phi[a] < -tol || phi[a] > 1+tol {
			return false
		}
		sum += phi[a]
	}
	return sum > 1-tol && sum < 1+tol
}
