// Benchmarks regenerating the paper's evaluation (§5), one benchmark family
// per figure. Each kernel benchmark reports MLUP/s ("million lattice cell
// updates per second"), the paper's unit. cmd/benchfig prints the same data
// as figure-shaped tables at paper-sized blocks; these testing.B targets
// use moderate blocks so `go test -bench=.` completes quickly.
package phasefield

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/mesh"
	"repro/internal/perfmodel"
	"repro/internal/solver"
)

const benchEdge = 20 // block edge for kernel benchmarks

// benchSetup builds a single-block field bundle in the given composition.
func benchSetup(b *testing.B, sc solver.Scenario) (*kernels.Fields, *kernels.Ctx, *kernels.Scratch) {
	b.Helper()
	bg, err := grid.NewBlockGrid(1, 1, 1, benchEdge, benchEdge, benchEdge, [3]bool{true, true, false})
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	p.Temp.Z0 = float64(benchEdge) / 2 * p.Dx
	sim, err := solver.New(solver.Config{Params: p, BG: bg, Variant: kernels.VarShortcut})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.InitScenario(sc); err != nil {
		b.Fatal(err)
	}
	f := sim.RankFields(0)
	sc2 := kernels.NewScratch(benchEdge, benchEdge)
	ctx := &kernels.Ctx{P: p}
	// Produce a valid φdst so the µ-kernel's ∂φ/∂t is meaningful.
	kernels.PhiSweep(ctx, f, sc2, kernels.VarShortcut)
	bcs := bg.BlockBCs(0, grid.DirectionalSolidification([]float64{1, 0, 0, 0}))
	bcs.Apply(f.PhiDst)
	return f, ctx, sc2
}

func reportMLUPs(b *testing.B) {
	cells := float64(benchEdge * benchEdge * benchEdge)
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUP/s")
}

// --- Figure 5: φ-kernel vectorization strategies ------------------------

func benchmarkPhiStrategy(b *testing.B, st kernels.PhiStrategy, sc solver.Scenario) {
	f, ctx, scratch := benchSetup(b, sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.PhiSweepStrategy(ctx, f, scratch, st)
	}
	reportMLUPs(b)
}

func BenchmarkFig5(b *testing.B) {
	strategies := map[string]kernels.PhiStrategy{
		"Cellwise":         kernels.StratCellwise,
		"CellwiseShortcut": kernels.StratCellwiseShortcut,
		"FourCell":         kernels.StratFourCell,
	}
	for name, st := range strategies {
		for _, sc := range []solver.Scenario{solver.ScenarioInterface, solver.ScenarioLiquid, solver.ScenarioSolid} {
			b.Run(fmt.Sprintf("%s/%s", name, sc), func(b *testing.B) {
				benchmarkPhiStrategy(b, st, sc)
			})
		}
	}
}

// --- Figure 6: optimization ladder for both kernels ---------------------

func BenchmarkFig6Phi(b *testing.B) {
	for v := kernels.VarGeneral; v < kernels.NumVariants; v++ {
		for _, sc := range []solver.Scenario{solver.ScenarioInterface, solver.ScenarioLiquid, solver.ScenarioSolid} {
			b.Run(fmt.Sprintf("%s/%s", v, sc), func(b *testing.B) {
				f, ctx, scratch := benchSetup(b, sc)
				v := v
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					kernels.PhiSweep(ctx, f, scratch, v)
				}
				reportMLUPs(b)
			})
		}
	}
}

func BenchmarkFig6Mu(b *testing.B) {
	for v := kernels.VarGeneral; v < kernels.NumVariants; v++ {
		for _, sc := range []solver.Scenario{solver.ScenarioInterface, solver.ScenarioLiquid, solver.ScenarioSolid} {
			b.Run(fmt.Sprintf("%s/%s", v, sc), func(b *testing.B) {
				f, ctx, scratch := benchSetup(b, sc)
				v := v
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					kernels.MuSweep(ctx, f, scratch, v)
				}
				reportMLUPs(b)
			})
		}
	}
}

// --- Figure 7: intranode scaling ----------------------------------------

func BenchmarkFig7Intranode(b *testing.B) {
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			bg, err := grid.NewBlockGrid(ranks, 1, 1, benchEdge, benchEdge, benchEdge, [3]bool{true, true, false})
			if err != nil {
				b.Fatal(err)
			}
			p := core.DefaultParams()
			p.Temp.Z0 = float64(benchEdge) / 2 * p.Dx
			sim, err := solver.New(solver.Config{Params: p, BG: bg, Variant: kernels.VarShortcut})
			if err != nil {
				b.Fatal(err)
			}
			if err := sim.InitScenario(solver.ScenarioInterface); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			sim.Run(b.N)
			b.StopTimer()
			cells := float64(ranks * benchEdge * benchEdge * benchEdge)
			b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUP/s")
		})
	}
}

// --- Intra-block parallel sweep scaling -----------------------------------

// BenchmarkParallelScaling measures whole-timestep MLUP/s of a single 40³
// interface-scenario block at 1/2/4/8 sweep workers. Speedup beyond worker
// count 1 requires GOMAXPROCS >= workers (run with GOMAXPROCS unset on a
// multi-core machine); on fewer cores the numbers degenerate to serial rate
// minus scheduling overhead.
func BenchmarkParallelScaling(b *testing.B) {
	const edge = 40
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			bg, err := grid.NewBlockGrid(1, 1, 1, edge, edge, edge, [3]bool{true, true, false})
			if err != nil {
				b.Fatal(err)
			}
			p := core.DefaultParams()
			p.Temp.Z0 = float64(edge) / 2 * p.Dx
			sim, err := solver.New(solver.Config{
				Params: p, BG: bg, Variant: kernels.VarShortcut,
				Overlap: solver.OverlapMu, Parallelism: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			if err := sim.InitScenario(solver.ScenarioInterface); err != nil {
				b.Fatal(err)
			}
			sim.Run(1) // warm-up: spin up workers, populate comm buffers
			b.ResetTimer()
			sim.Run(b.N)
			b.StopTimer()
			cells := float64(edge * edge * edge)
			b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUP/s")
		})
	}
}

// --- Figure 8: communication hiding --------------------------------------

func BenchmarkFig8Comm(b *testing.B) {
	for _, mode := range []solver.OverlapMode{solver.OverlapNone, solver.OverlapMu, solver.OverlapPhi, solver.OverlapBoth} {
		b.Run(mode.String(), func(b *testing.B) {
			bg, err := grid.NewBlockGrid(2, 2, 1, benchEdge, benchEdge, benchEdge, [3]bool{true, true, false})
			if err != nil {
				b.Fatal(err)
			}
			p := core.DefaultParams()
			p.Temp.Z0 = float64(benchEdge) / 2 * p.Dx
			sim, err := solver.New(solver.Config{Params: p, BG: bg, Variant: kernels.VarShortcut, Overlap: mode})
			if err != nil {
				b.Fatal(err)
			}
			if err := sim.InitScenario(solver.ScenarioInterface); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			m := sim.RunMeasured(b.N)
			b.StopTimer()
			perStep := 1e3 / float64(b.N*4)
			b.ReportMetric(m.CommPhi.Total().Seconds()*perStep, "phi-comm-ms/step")
			b.ReportMetric(m.CommMu.Total().Seconds()*perStep, "mu-comm-ms/step")
		})
	}
}

// --- Figure 9: weak-scaling model ----------------------------------------

func BenchmarkFig9Model(b *testing.B) {
	cores := perfmodel.PowersOfTwo(0, 18)
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, m := range perfmodel.Machines() {
			pts := perfmodel.WeakScaling(m, perfmodel.ScnInterface, 60, cores)
			sink += pts[len(pts)-1].MLUPsPerCore
		}
	}
	_ = sink
}

// --- End-to-end and substrate benchmarks ---------------------------------

func BenchmarkFullTimestep(b *testing.B) {
	sim, err := New(DefaultConfig(24, 24, 32))
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.InitProduction(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sim.Run(b.N)
	b.StopTimer()
	cells := float64(24 * 24 * 32)
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUP/s")
}

func BenchmarkHaloExchange(b *testing.B) {
	f, ctx, _ := benchSetup(b, solver.ScenarioInterface)
	bs := grid.AllPeriodic()
	bs[grid.ZMin] = grid.BC{Kind: grid.BCNeumann}
	bs[grid.ZMax] = grid.BC{Kind: grid.BCNeumann}
	_ = ctx
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Apply(f.PhiSrc)
	}
}

func BenchmarkSimplexProjection(b *testing.B) {
	phi := [core.NPhases]float64{0.4, 0.35, 0.3, 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := phi
		core.ProjectSimplex(&p)
	}
}

func BenchmarkMeshExtract(b *testing.B) {
	sim, err := New(DefaultConfig(24, 24, 24))
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		b.Fatal(err)
	}
	phi := sim.GlobalPhi()
	bs := grid.AllNeumann()
	bs.Apply(phi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mesh.ExtractPhase(phi, 0, mesh.Vec3{}, false)
		if m.NumTris() == 0 {
			b.Fatal("no triangles")
		}
	}
}

func BenchmarkMeshSimplify(b *testing.B) {
	sim, err := New(DefaultConfig(24, 24, 24))
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		b.Fatal(err)
	}
	phi := sim.GlobalPhi()
	bs := grid.AllNeumann()
	bs.Apply(phi)
	ref := mesh.ExtractPhase(phi, 0, mesh.Vec3{}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := &mesh.Mesh{Verts: append([]mesh.Vec3(nil), ref.Verts...), Tris: append([][3]int32(nil), ref.Tris...)}
		b.StartTimer()
		mesh.Simplify(m, mesh.SimplifyOptions{TargetTris: ref.NumTris() / 4})
	}
}

func BenchmarkCheckpointWrite(b *testing.B) {
	sim, err := New(DefaultConfig(16, 16, 16))
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.WriteInterfaceSTL(io.Discard, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Active-region sweeping ---------------------------------------------

// cloneBundles deep-copies each rank's field bundle so a RestoreState can
// rewind the simulation without the benchmark's pristine copy being
// mutated by subsequent steps.
func cloneBundles(s *solver.Sim) []*kernels.Fields {
	out := make([]*kernels.Fields, s.NumRanks())
	for r := range out {
		f := s.RankFields(r)
		out[r] = &kernels.Fields{
			PhiSrc: f.PhiSrc.Clone(), PhiDst: f.PhiDst.Clone(),
			MuSrc: f.MuSrc.Clone(), MuDst: f.MuDst.Clone(),
		}
	}
	return out
}

// benchmarkActiveRegion measures fixed-length runs from a rewound snapshot
// (rewinds outside the timer), so the measured active fraction stays at the
// scenario's characteristic value instead of drifting as physics evolves
// across b.N.
func benchmarkActiveRegion(b *testing.B, sc solver.Scenario, nz int, disable bool) {
	const edge = 16
	const stepsPer = 12
	bg, err := grid.NewBlockGrid(1, 1, 1, edge, edge, nz, [3]bool{true, true, false})
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	p.Temp.Z0 = float64(nz) / 2 * p.Dx
	s, err := solver.New(solver.Config{Params: p, BG: bg,
		Variant: kernels.VarShortcut, DisableActiveSweep: disable})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.InitScenario(sc); err != nil {
		b.Fatal(err)
	}
	s.Run(2) // settle the fields and the activity map
	pristine := s
	snapshot := cloneBundles(pristine)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := s.RestoreState(0, 0, 0, snapshot); err != nil {
			b.Fatal(err)
		}
		snapshot = cloneBundles(s) // next rewind must not alias live fields
		b.StartTimer()
		s.Run(stepsPer)
	}
	b.StopTimer()
	cells := float64(edge * edge * nz)
	b.ReportMetric(cells*stepsPer*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUP/s")
	b.ReportMetric(s.ActiveFraction(), "active_frac")
}

// BenchmarkActiveRegion contrasts the two compositions activity tracking
// cares about. "bulk" is the production shape — nuclei at the bottom of a
// tall melt column, ≲20% of slices active — where skipping sleeping slices
// should win big. "interface" is the adversarial shape — solid stripes
// through the whole height, nothing ever sleeps — measuring the tracker's
// pure overhead. Compare each tracked sub-benchmark against its full twin.
func BenchmarkActiveRegion(b *testing.B) {
	cases := []struct {
		name string
		sc   solver.Scenario
		nz   int
	}{
		{"bulk", solver.ScenarioProduction, 128},
		{"interface", solver.ScenarioInterface, 24},
	}
	for _, c := range cases {
		b.Run(c.name+"/tracked", func(b *testing.B) { benchmarkActiveRegion(b, c.sc, c.nz, false) })
		b.Run(c.name+"/full", func(b *testing.B) { benchmarkActiveRegion(b, c.sc, c.nz, true) })
	}
}
