package ckpt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernels"
)

func randomFields(rng *rand.Rand, n, bx, by, bz int) []*kernels.Fields {
	out := make([]*kernels.Fields, n)
	for i := range out {
		f := kernels.NewFields(bx, by, bz)
		f.PhiSrc.Interior(func(x, y, z int) {
			for a := 0; a < kernels.NP; a++ {
				f.PhiSrc.Set(a, x, y, z, rng.Float64())
			}
			for k := 0; k < kernels.NR; k++ {
				f.MuSrc.Set(k, x, y, z, rng.NormFloat64())
			}
		})
		out[i] = f
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fields := randomFields(rng, 4, 5, 6, 7)
	h := Header{Step: 42, Time: 3.5, WindowShift: 9, PX: 2, PY: 2, PZ: 1, BX: 5, BY: 6, BZ: 7}

	var buf bytes.Buffer
	if err := Write(&buf, h, fields); err != nil {
		t.Fatal(err)
	}
	h2, fields2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Errorf("header round trip: %+v != %+v", h2, h)
	}
	if len(fields2) != len(fields) {
		t.Fatalf("field count %d", len(fields2))
	}
	tol := MaxRoundTripError(4)
	for i := range fields {
		if ok, maxd := fields[i].PhiSrc.InteriorEqual(fields2[i].PhiSrc, tol); !ok {
			t.Errorf("rank %d φ round-trip error %g > %g", i, maxd, tol)
		}
		if ok, maxd := fields[i].MuSrc.InteriorEqual(fields2[i].MuSrc, tol); !ok {
			t.Errorf("rank %d µ round-trip error %g > %g", i, maxd, tol)
		}
	}
	// Destination fields restored as copies of source.
	if ok, _ := fields2[0].PhiDst.InteriorEqual(fields2[0].PhiSrc, 0); !ok {
		t.Error("PhiDst not initialized from PhiSrc")
	}
}

func TestSinglePrecisionOnDisk(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(2)), 1, 4, 4, 4)
	h := Header{PX: 1, PY: 1, PZ: 1, BX: 4, BY: 4, BZ: 4}
	var buf bytes.Buffer
	if err := Write(&buf, h, fields); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(buf.Len()), SizeBytes(1, 1, 1, 4, 4, 4); got != want {
		t.Errorf("checkpoint size %d, want %d (single precision)", got, want)
	}
	// The same data in double precision would be twice the payload.
	doubleSize := int64(4*4*4*(kernels.NP+kernels.NR)) * 8
	if int64(buf.Len()) >= doubleSize {
		t.Errorf("checkpoint not smaller than double-precision payload (%d >= %d)", buf.Len(), doubleSize)
	}
}

func TestRejectsGarbage(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("garbage accepted")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.Write([]byte{0x50, 0x43, 0x46, 0x50}) // little-endian Magic
	buf.Write([]byte{0xFF, 0, 0, 0})
	if _, _, err := Read(&buf); err == nil {
		t.Error("bad version accepted")
	}
}

func TestWriteValidatesDecomposition(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(3)), 2, 4, 4, 4)
	h := Header{PX: 3, PY: 1, PZ: 1, BX: 4, BY: 4, BZ: 4}
	var buf bytes.Buffer
	if err := Write(&buf, h, fields); err == nil {
		t.Error("mismatched decomposition accepted")
	}
}

func TestTruncatedCheckpoint(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(4)), 1, 4, 4, 4)
	h := Header{PX: 1, PY: 1, PZ: 1, BX: 4, BY: 4, BZ: 4}
	var buf bytes.Buffer
	if err := Write(&buf, h, fields); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

func TestMaxRoundTripError(t *testing.T) {
	if e := MaxRoundTripError(1); e <= 0 || e > 1e-6 {
		t.Errorf("unexpected float32 error bound %g", e)
	}
	if math.Abs(MaxRoundTripError(2)-2*MaxRoundTripError(1)) > 1e-20 {
		t.Error("error bound should scale linearly with magnitude")
	}
}
