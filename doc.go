// Package phasefield is a Go reproduction of "Massively Parallel
// Phase-Field Simulations for Ternary Eutectic Directional Solidification"
// (Bauer, Hötzer et al., SC 2015): a thermodynamically consistent
// grand-potential phase-field solver for the four-phase, three-component
// Ag-Al-Cu eutectic system, with the paper's full optimization ladder
// (explicit vectorization, T(z) precomputation, staggered-value buffers,
// region shortcuts), block-structured domain decomposition with
// communication hiding, the moving-window technique, single-precision
// checkpointing and the hierarchical mesh-based I/O reduction pipeline.
//
// This package is the facade over the internal subsystems — see
// ARCHITECTURE.md for the full layering:
//
//	kernels  — the φ/µ sweep variants of the optimization ladder
//	solver   — timestep loop, intra-block parallel sweep engine, window
//	schedule — typed production events (bursts, ramps, switches, BCs)
//	comm     — the in-process MPI analogue: staged halo exchange
//	ckpt     — versioned checkpoint containers (V1–V4)
//	jobd     — the multi-job orchestration daemon and campaign engine
//
// # Quick start
//
//	cfg := phasefield.DefaultConfig(64, 64, 128)
//	sim, err := phasefield.New(cfg)
//	if err != nil { ... }
//	if err := sim.InitProduction(); err != nil { ... }
//	sim.Run(1000)
//	meshes := sim.ExtractInterfaces()
//
// Production runs are driven by schedules (RunSchedule) — time-varying
// process programs loaded from JSON (LoadSchedules) — and can stop and
// resume from checkpoints (Checkpoint, Restore) bit-compatibly, including
// mid-ramp. For service deployments, internal/jobd multiplexes many
// schedule-driven runs (and whole parameter-sweep campaigns) over one
// shared worker budget behind an HTTP API; cmd/solidifyd is the daemon.
//
// See README.md for the schedule JSON format and the service walkthrough,
// and ROADMAP.md for the state of the reproduction.
package phasefield
