package jobd

import (
	"time"
)

// health.go — degraded store mode. A spill that fails (disk full, torn
// write, fsync error) must not lose the result or take the daemon down:
// the job keeps serving from memory, the daemon flips into degraded mode
// (visible on GET /healthz), and a background flusher retries the spill
// with backoff until the store recovers. Drain makes one final synchronous
// attempt before the process exits.

// spillDone persists a terminal job through the degraded-mode machinery:
// on failure the job is parked in pendingSpills and the flusher (started
// lazily, one at a time) retries until the store recovers.
func (s *Server) spillDone(j *Job) {
	err := s.spillJob(j)
	if err == nil {
		return
	}
	s.spillFailsTotal.Add(1)
	s.logf("jobd: spill failed (%v); store degraded, serving %s from memory and retrying", err, j.ID)
	s.mu.Lock()
	if s.pendingSpills == nil {
		s.pendingSpills = make(map[string]*Job)
	}
	s.pendingSpills[j.ID] = j
	s.degraded.Store(true)
	if !s.flusherOn {
		s.flusherOn = true
		s.flushWG.Add(1)
		go s.flushLoop()
	}
	s.mu.Unlock()
}

// flushLoop retries pending spills with exponential backoff (100ms
// doubling to a 5s ceiling) until they all land or the daemon drains.
func (s *Server) flushLoop() {
	defer s.flushWG.Done()
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-s.quit:
			return
		case <-time.After(backoff):
		}
		if s.flushPending() {
			return
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// flushPending retries every parked spill once and reports whether the
// backlog is clear (also clearing degraded mode and releasing the flusher
// slot, so a later failure starts a fresh loop at the short backoff).
func (s *Server) flushPending() bool {
	s.mu.Lock()
	pend := make([]*Job, 0, len(s.pendingSpills))
	for _, j := range s.pendingSpills {
		pend = append(pend, j)
	}
	s.mu.Unlock()
	for _, j := range pend {
		if err := s.spillJob(j); err != nil {
			// Still failing — the whole batch likely shares the cause
			// (one sick disk); stop hammering it and wait for the next
			// backoff tick.
			break
		}
		s.logf("jobd: store recovered; spilled %s", j.ID)
		s.mu.Lock()
		delete(s.pendingSpills, j.ID)
		s.mu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pendingSpills) > 0 {
		return false
	}
	s.degraded.Store(false)
	s.flusherOn = false
	return true
}

// Health is the GET /healthz body.
type Health struct {
	// Status is "ok" or "degraded" (some terminal jobs are served from
	// memory only because their store spill keeps failing).
	Status string `json:"status"`
	// Degraded mirrors Status as a boolean.
	Degraded bool `json:"degraded"`
	// PendingSpills counts terminal jobs awaiting a successful spill.
	PendingSpills int `json:"pending_spills"`
	// Draining reports a shutdown in progress.
	Draining bool `json:"draining"`
}

// Health snapshots the daemon's health for /healthz.
func (s *Server) Health() Health {
	s.mu.Lock()
	n := len(s.pendingSpills)
	draining := s.draining
	s.mu.Unlock()
	h := Health{Status: "ok", PendingSpills: n, Draining: draining}
	if s.degraded.Load() {
		h.Status = "degraded"
		h.Degraded = true
	}
	return h
}
