package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// counters.go — the service-metrics side of the observability package.
// Ring, StepTotals and Histogram serve the solver's hot path (zero
// allocation, zero locking); Counters serves the opposite regime: a
// control-plane process (the federation gateway) counting requests,
// rejections and fleet transitions at human rates, where a mutex per
// update is irrelevant but deterministic, strictly valid Prometheus text
// exposition is mandatory. Families are emitted in declaration order and
// series in sorted label order, so two scrapes of the same state are
// byte-identical — the property the strict exposition-format tests pin.

// Counters is a registry of Prometheus metric families for service-level
// exposition. Declare every family up front, then Add (counters) or Set
// (gauges) labeled series at runtime; WriteTo renders the text format.
// All methods are safe for concurrent use.
type Counters struct {
	mu    sync.Mutex
	order []string
	fams  map[string]*counterFamily
}

// counterFamily is one declared metric family and its labeled series.
type counterFamily struct {
	typ    string
	help   string
	series map[string]float64 // label block (no braces) → value
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{fams: map[string]*counterFamily{}}
}

// Declare registers a metric family. typ is a Prometheus metric type
// ("counter" or "gauge"); declaring the same name twice panics — families
// are a fixed part of a service's surface, not runtime data.
func (c *Counters) Declare(name, typ, help string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.fams[name]; dup {
		panic("obs: duplicate counter family " + name)
	}
	switch typ {
	case "counter", "gauge":
	default:
		panic("obs: counter family " + name + " has unsupported type " + typ)
	}
	c.fams[name] = &counterFamily{typ: typ, help: help, series: map[string]float64{}}
	c.order = append(c.order, name)
}

// Add increments the series of a declared family by delta. labels is a
// preformatted label block without braces (use Labels); empty means the
// unlabeled series. Adding to an undeclared family panics (a typo would
// otherwise silently export a HELP-less series and fail the strict
// format tests only later).
func (c *Counters) Add(name, labels string, delta float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.family(name).series[labels] += delta
}

// Set overwrites the series of a declared family — gauge semantics.
func (c *Counters) Set(name, labels string, v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.family(name).series[labels] = v
}

// Reset drops every series of a family. Gauges whose label sets shrink
// between scrapes (a daemon deregisters, a tenant goes idle) call Reset
// before re-Setting the current population, so stale series disappear
// instead of freezing at their last value.
func (c *Counters) Reset(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.family(name).series = map[string]float64{}
}

// family resolves a declared family; c.mu must be held.
func (c *Counters) family(name string) *counterFamily {
	f, ok := c.fams[name]
	if !ok {
		panic("obs: undeclared counter family " + name)
	}
	return f
}

// WriteTo renders the registry as Prometheus text exposition format
// (0.0.4): families in declaration order, one HELP and one TYPE line
// each, series in sorted label order. Families with no series emit only
// their HELP/TYPE header, which the format permits.
func (c *Counters) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, name := range c.order {
		f := c.fams[name]
		m, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.typ)
		n += int64(m)
		if err != nil {
			return n, err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			line := name
			if k != "" {
				line += "{" + k + "}"
			}
			m, err := fmt.Fprintf(w, "%s %g\n", line, f.series[k])
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// Labels formats alternating key/value pairs as a Prometheus label block
// (without braces), escaping values per the text format. Keys are emitted
// in argument order — pass them in one canonical order per family so
// identical label sets map to identical series keys.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labels needs key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := kv[i+1]
		for j := 0; j < len(v); j++ {
			switch v[j] {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(v[j])
			}
		}
		b.WriteByte('"')
	}
	return b.String()
}
