package schedule

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
)

// template.go is the parameter-substitution layer behind job arrays: a
// schedule template is ordinary schedule JSON whose values may reference
// named parameters as "${name}". Instantiate substitutes one parameter
// assignment and parses the result, so a single template file expands into
// a whole campaign — one child schedule per point of a parameter grid.
//
// A placeholder standing alone in a value position becomes a JSON number:
//
//	{"type": "ramp", "param": "v", "step": 0, "over": 800,
//	 "from": 0.02, "to": "${vmax}"}
//
// A placeholder embedded in a longer string substitutes textually (useful
// for derived names). Substitution is deterministic: the same (template,
// params) pair always yields byte-identical output, which is what makes
// array-child schedules reproducible from the array spec alone.

// placeholderRE matches "${name}" template parameter references.
var placeholderRE = regexp.MustCompile(`\$\{([A-Za-z_][A-Za-z0-9_.]*)\}`)

// Template is a pre-parsed schedule template: decode once, instantiate
// once per grid point (job arrays expand up to ~1000 children per
// submission, so re-decoding the JSON tree per child would dominate the
// request path).
type Template struct {
	root   any
	params []string
}

// ParseTemplate decodes a schedule template and collects its placeholder
// names.
func ParseTemplate(tmpl []byte) (*Template, error) {
	root, err := decodeTemplate(tmpl)
	if err != nil {
		return nil, err
	}
	var names []string
	seen := map[string]bool{}
	if _, err := walkTemplateStrings(root, func(s string) (any, error) {
		for _, m := range placeholderRE.FindAllStringSubmatch(s, -1) {
			if !seen[m[1]] {
				seen[m[1]] = true
				names = append(names, m[1])
			}
		}
		return s, nil
	}); err != nil {
		return nil, err
	}
	sort.Strings(names)
	return &Template{root: root, params: names}, nil
}

// Params returns the template's distinct placeholder names, sorted.
func (t *Template) Params() []string {
	return append([]string(nil), t.params...)
}

// Instantiate substitutes params into the template and parses the result,
// returning the validated schedule and the substituted blob (the form an
// array child embeds in its job spec). Referencing a parameter the map
// does not supply is an error; supplying parameters the template never
// references is not (grid axes may drive spec-level fields like the
// seed). The substitution rebuilds the tree, so a Template may be
// instantiated repeatedly.
func (t *Template) Instantiate(params map[string]float64) (*Schedule, []byte, error) {
	for name, v := range params {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, fmt.Errorf("schedule: template param %q is %g", name, v)
		}
	}
	sub, err := substitute(t.root, params)
	if err != nil {
		return nil, nil, err
	}
	// Maps marshal with sorted keys, so the blob is deterministic.
	blob, err := json.Marshal(sub)
	if err != nil {
		return nil, nil, fmt.Errorf("schedule: template: %w", err)
	}
	sched, err := FromJSONBytes(blob)
	if err != nil {
		return nil, nil, err
	}
	return sched, blob, nil
}

// TemplateParams returns the distinct placeholder names referenced by a
// schedule template, sorted. A template without placeholders returns
// nil — every plain schedule is a valid template.
func TemplateParams(tmpl []byte) ([]string, error) {
	t, err := ParseTemplate(tmpl)
	if err != nil {
		return nil, err
	}
	if len(t.params) == 0 {
		return nil, nil
	}
	return t.Params(), nil
}

// Instantiate is the one-shot form of ParseTemplate + Template.Instantiate.
func Instantiate(tmpl []byte, params map[string]float64) (*Schedule, []byte, error) {
	t, err := ParseTemplate(tmpl)
	if err != nil {
		return nil, nil, err
	}
	return t.Instantiate(params)
}

// decodeTemplate parses a template into a generic JSON tree, keeping
// untouched numbers verbatim (json.Number round-trips exactly).
func decodeTemplate(tmpl []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(tmpl))
	dec.UseNumber()
	var root any
	if err := dec.Decode(&root); err != nil {
		return nil, fmt.Errorf("schedule: template: %w", err)
	}
	return root, nil
}

// substitute replaces every placeholder in the tree: a string that is
// exactly one placeholder becomes the parameter's numeric value; embedded
// placeholders substitute textually.
func substitute(root any, params map[string]float64) (any, error) {
	return walkTemplateStrings(root, func(s string) (any, error) {
		if m := placeholderRE.FindStringSubmatch(s); m != nil && m[0] == s {
			v, ok := params[m[1]]
			if !ok {
				return nil, fmt.Errorf("schedule: template references unknown param %q", m[1])
			}
			return json.Number(formatParam(v)), nil
		}
		var substErr error
		out := placeholderRE.ReplaceAllStringFunc(s, func(ph string) string {
			name := placeholderRE.FindStringSubmatch(ph)[1]
			v, ok := params[name]
			if !ok {
				substErr = fmt.Errorf("schedule: template references unknown param %q", name)
				return ph
			}
			return formatParam(v)
		})
		return out, substErr
	})
}

// formatParam renders a parameter value as a JSON number literal: integral
// values print without a fraction so seeds and step counts substitute
// cleanly into integer fields.
func formatParam(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// walkTemplateStrings rebuilds the JSON tree, passing every string value
// (not object keys) through fn.
func walkTemplateStrings(v any, fn func(string) (any, error)) (any, error) {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, elem := range t {
			sub, err := walkTemplateStrings(elem, fn)
			if err != nil {
				return nil, err
			}
			out[k] = sub
		}
		return out, nil
	case []any:
		out := make([]any, len(t))
		for i, elem := range t {
			sub, err := walkTemplateStrings(elem, fn)
			if err != nil {
				return nil, err
			}
			out[i] = sub
		}
		return out, nil
	case string:
		return fn(t)
	default:
		return v, nil
	}
}
