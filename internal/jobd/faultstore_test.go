package jobd

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// faultstore_test.go — degraded store mode and the crash-point table:
// every way the spill write path can die (ENOSPC-style errors, torn
// writes, SIGKILL-equivalent crashes at each named operation) must leave
// a restarted daemon serving each terminal job byte-identically or not at
// all — never torn, never a manifest pointing at a missing or partial
// blob.

// degradedServer runs a daemon over a store whose filesystem fails per
// the rules, plus an HTTP front so the suites assert through the API.
func degradedServer(t *testing.T, dir string, rules ...*faultfs.Rule) (*Server, *httptest.Server, *faultfs.Inject) {
	t.Helper()
	inj := faultfs.NewInject(nil, rules...)
	s := New(Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 1,
		StoreDir: dir, StoreFS: inj})
	if _, err := s.LoadStore(); err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, inj
}

// A transient spill failure (here: the first rename dies, as on a full
// disk) flips the daemon into degraded mode — /healthz reports 503, the
// job keeps serving from memory — and the background flusher lands the
// spill once the store recovers, restoring /healthz to 200 with the
// result persisted for the next daemon.
func TestDegradedStoreModeRecovers(t *testing.T) {
	dir := t.TempDir()
	// The rule expires after two firings: the initial spill and the first
	// flusher retry fail, the second retry succeeds.
	s, ts, _ := degradedServer(t, dir,
		&faultfs.Rule{Op: faultfs.OpRename, Times: 2, Err: faultfs.ErrInjected})

	st := submit(t, ts.URL, smallSpec("degraded"))
	waitFor(t, "daemon to enter degraded mode", 30*time.Second, func() bool {
		code, _ := getBytes(t, ts.URL+"/healthz")
		return code == http.StatusServiceUnavailable
	})
	getJSON(t, ts.URL+"/jobs/"+st.ID, new(Status)) // daemon still serves
	// The terminal job is served from memory while degraded.
	rcode, mem := getBytes(t, ts.URL+"/jobs/"+st.ID+"/result")
	if rcode != http.StatusOK || len(mem) == 0 {
		t.Fatalf("degraded daemon lost the in-memory result: %d", rcode)
	}
	code, body := getBytes(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "jobd_store_degraded 1") {
		t.Fatalf("metrics do not report degraded mode:\n%s", body)
	}

	waitFor(t, "flusher to land the spill", 30*time.Second, func() bool {
		code, _ := getBytes(t, ts.URL+"/healthz")
		return code == http.StatusOK
	})

	// The spill is now authoritative: a restarted daemon over the same
	// directory serves the identical bytes. Drain hands over the store's
	// directory flock.
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{StoreDir: dir})
	if n, err := s2.LoadStore(); err != nil || n != 1 {
		t.Fatalf("restart LoadStore = %d, %v", n, err)
	}
	defer s2.Close()
	j2, ok := s2.Get(st.ID)
	if !ok {
		t.Fatalf("restarted daemon lost %s", st.ID)
	}
	disk, err := s2.resultBytes(j2)
	if err != nil {
		t.Fatal(err)
	}
	diffCheckpoints(t, disk, mem)
}

// A torn blob write (partial bytes then an error, as a full disk tears a
// write) must never surface: the temp-file discipline keeps the partial
// write invisible, and a restarted daemon either serves the full result
// or has no record of the job.
func TestTornSpillNeverVisible(t *testing.T) {
	dir := t.TempDir()
	s1, ts, _ := degradedServer(t, dir,
		&faultfs.Rule{Op: faultfs.OpWrite, PathContains: "objects", Times: 1,
			TornBytes: 100, Err: faultfs.ErrInjected})

	st := submit(t, ts.URL, smallSpec("torn"))
	waitFor(t, "job to finish", 30*time.Second, func() bool {
		var now Status
		getJSON(t, ts.URL+"/jobs/"+st.ID, &now)
		return now.State == StateDone
	})
	_, mem := getBytes(t, ts.URL+"/jobs/"+st.ID+"/result")

	waitFor(t, "flusher to land the spill after the torn write", 30*time.Second, func() bool {
		code, _ := getBytes(t, ts.URL+"/healthz")
		return code == http.StatusOK
	})
	if err := s1.Drain(); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{StoreDir: dir})
	if n, err := s2.LoadStore(); err != nil || n != 1 {
		t.Fatalf("restart LoadStore = %d, %v", n, err)
	}
	defer s2.Close()
	j2, _ := s2.Get(st.ID)
	disk, err := s2.resultBytes(j2)
	if err != nil {
		t.Fatal(err)
	}
	diffCheckpoints(t, disk, mem)
}

// Acceptance (c): the crash-point table. For every named operation of the
// spill write path (temp-file creation, write, fsync, close, rename,
// directory fsync) and every file of the spill sequence (result blob,
// schedule blob, manifest), kill the filesystem mid-operation — the
// SIGKILL-equivalent frozen disk state — restart a daemon over the
// directory, and require: the job's /result is byte-identical to the
// pre-crash in-memory result, or the job is cleanly absent (resubmittable).
// Torn or half-visible state fails the walk (the store's content
// verification turns it into an error, which the test treats as fatal).
//
// The restarted daemon additionally runs retention GC — once at
// LoadStore (its policy is configured) and once explicitly after the
// check — regression for GC racing a crashed spill's leftovers: a GC
// pass over any frozen crash state must reclaim only unreferenced
// garbage, never flip a servable result to absent or corrupt.
func TestSpillCrashPointTable(t *testing.T) {
	ops := []string{
		faultfs.OpCreateTemp, faultfs.OpWrite, faultfs.OpSync,
		faultfs.OpClose, faultfs.OpRename, faultfs.OpSyncDir,
	}
	// After selects which file of the spill sequence dies: 0 = result
	// blob, 1 = schedule blob, 2 = manifest.
	for _, op := range ops {
		for after := 0; after <= 2; after++ {
			t.Run(fmt.Sprintf("%s-file%d", op, after), func(t *testing.T) {
				dir := t.TempDir()
				s, ts, inj := degradedServer(t, dir,
					&faultfs.Rule{Op: op, After: after, Times: 1, Crash: true})

				st := submit(t, ts.URL, smallSpec("crash"))
				waitFor(t, "job to finish", 30*time.Second, func() bool {
					var now Status
					getJSON(t, ts.URL+"/jobs/"+st.ID, &now)
					return now.State == StateDone
				})
				code, mem := getBytes(t, ts.URL+"/jobs/"+st.ID+"/result")
				if code != http.StatusOK {
					t.Fatalf("pre-crash result: %d", code)
				}
				if crashed, at := inj.Crashed(); !crashed {
					t.Fatalf("crash point %s/%d never fired", op, after)
				} else if !strings.Contains(at, op) {
					t.Fatalf("crashed at %q, want op %s", at, op)
				}

				// "Restart": a fresh daemon over the frozen directory state,
				// on the real filesystem. The crashed process' directory
				// flock dies with it; in-process, release it by hand.
				_ = s.store.Close()
				// The roomy byte quota arms retention GC without eviction
				// pressure: LoadStore runs a pass over the frozen crash
				// state before restoring anything.
				s2 := New(Config{StoreDir: dir, StoreGCMaxBytes: 1 << 30})
				n, err := s2.LoadStore()
				if err != nil {
					t.Fatalf("restart over crashed store: %v", err)
				}
				defer s2.Close()
				j2, ok := s2.Get(st.ID)
				switch {
				case !ok:
					// Cleanly absent: the crash predates the manifest. The
					// submitter sees an unknown job and resubmits.
					if n != 0 {
						t.Fatalf("no job yet LoadStore restored %d", n)
					}
				default:
					// Present: the manifest landed, so the full spill must
					// have landed before it — the result is served and
					// byte-identical, verified against its content hash.
					disk, err := s2.resultBytes(j2)
					if err != nil {
						t.Fatalf("restarted daemon serves a corrupt result: %v", err)
					}
					diffCheckpoints(t, disk, mem)
					// A further explicit GC pass must not evict anything the
					// manifest references: the result still serves, still
					// byte-identical.
					if _, err := s2.RunStoreGC(); err != nil {
						t.Fatalf("GC over restarted store: %v", err)
					}
					disk, err = s2.resultBytes(j2)
					if err != nil {
						t.Fatalf("result lost after GC pass: %v", err)
					}
					diffCheckpoints(t, disk, mem)
				}
				_ = s
			})
		}
	}
}

// countObjects walks dir/objects and counts content-addressed blob files.
func countObjects(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && !strings.HasSuffix(d.Name(), ".tmp") {
			n++
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// Satellite regression beside the crash-point table: a crash on the
// manifest rename — the last step of the spill — strands fully-written
// result and schedule blobs with no manifest pointing at them. Before the
// orphan sweep these blobs leaked forever; now a restarted daemon's store
// open reclaims them, the job is cleanly absent, and resubmitting it runs
// and spills as if the crash never happened.
func TestCrashBeforeManifestReclaimsOrphanedBlobs(t *testing.T) {
	dir := t.TempDir()
	// The spill renames the result blob, the schedule blob, then the
	// manifest; After: 2 skips the first two and kills the third.
	s1, ts, inj := degradedServer(t, dir,
		&faultfs.Rule{Op: faultfs.OpRename, After: 2, Times: 1, Crash: true})

	st := submit(t, ts.URL, smallSpec("orphan"))
	waitFor(t, "job to finish", 30*time.Second, func() bool {
		var now Status
		getJSON(t, ts.URL+"/jobs/"+st.ID, &now)
		return now.State == StateDone
	})
	if crashed, at := inj.Crashed(); !crashed {
		t.Fatal("manifest-rename crash point never fired")
	} else if !strings.Contains(at, faultfs.OpRename) {
		t.Fatalf("crashed at %q, want a rename", at)
	}
	if n := countObjects(t, dir); n < 2 {
		t.Fatalf("crash left %d blobs on disk, want the orphaned result and schedule", n)
	}

	// Restart over the frozen directory: the store open reclaims the
	// orphans and the job is cleanly absent (resubmittable). The crashed
	// process' directory flock dies with it; in-process, release it by hand.
	_ = s1.store.Close()
	s2 := New(Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 1, StoreDir: dir})
	if n, err := s2.LoadStore(); err != nil || n != 0 {
		t.Fatalf("restart LoadStore = %d, %v; want no restored jobs", n, err)
	}
	if n := countObjects(t, dir); n != 0 {
		t.Fatalf("%d orphaned blobs survived the restart sweep", n)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Close()
	}()

	// The resubmitted job runs to done and this time the spill lands: a
	// third daemon over the directory serves it from disk.
	st2 := submit(t, ts2.URL, smallSpec("orphan"))
	waitFor(t, "resubmitted job to finish", 30*time.Second, func() bool {
		var now Status
		getJSON(t, ts2.URL+"/jobs/"+st2.ID, &now)
		return now.State == StateDone
	})
	code, mem := getBytes(t, ts2.URL+"/jobs/"+st2.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("resubmitted result: %d", code)
	}
	// Hand the directory over: Drain releases the store's flock while the
	// drained daemon keeps serving its in-memory state.
	if err := s2.Drain(); err != nil {
		t.Fatal(err)
	}
	s3 := New(Config{StoreDir: dir})
	if n, err := s3.LoadStore(); err != nil || n != 1 {
		t.Fatalf("third daemon LoadStore = %d, %v", n, err)
	}
	defer s3.Close()
	j3, ok := s3.Get(st2.ID)
	if !ok {
		t.Fatalf("third daemon lost %s", st2.ID)
	}
	disk, err := s3.resultBytes(j3)
	if err != nil {
		t.Fatal(err)
	}
	diffCheckpoints(t, disk, mem)
}
