// Command benchfig regenerates the paper's evaluation figures (§5).
//
// Usage:
//
//	benchfig -fig 5 [-edge 60] [-steps 5]
//	benchfig -fig 6 ...
//	benchfig -fig 7 [-cores 16] [-par 1]
//	benchfig -fig 8
//	benchfig -fig 9
//	benchfig -parscale [-edge 60] [-par 8]
//	benchfig -roofline
//	benchfig -all
//
// Figures 5–7 and the measured half of Fig. 8 run live on this machine;
// Figs. 8 (model half) and 9 use the calibrated analytic machine models
// (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (5..9)")
	roofline := flag.Bool("roofline", false, "print the §5.1.1 roofline / in-core analysis")
	parscale := flag.Bool("parscale", false, "measure intra-block parallel sweep scaling on one block")
	all := flag.Bool("all", false, "regenerate everything")
	edge := flag.Int("edge", 60, "cubic block edge for single-core benchmarks (paper: 60)")
	steps := flag.Int("steps", 3, "timed sweeps per measurement")
	cores := flag.Int("cores", 8, "max worker count for the intranode scaling experiment")
	par := flag.Int("par", 1, "intra-block sweep workers per solver (0 = GOMAXPROCS); -parscale sweeps powers of two up to par, then par itself (par <= 1: the default 1/2/4/8 ladder)")
	flag.Parse()

	w := os.Stdout
	run := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
	}

	did := false
	if *all || *fig == 5 {
		run(experiments.Fig5(w, *edge, *steps))
		fmt.Fprintln(w)
		did = true
	}
	if *all || *fig == 6 {
		run(experiments.Fig6(w, *edge, *steps))
		did = true
	}
	if *all || *fig == 7 {
		run(experiments.Fig7(w, *cores, *steps, *par))
		fmt.Fprintln(w)
		did = true
	}
	if *all || *fig == 8 {
		run(experiments.Fig8(w, *edge, *steps, *cores, *par))
		fmt.Fprintln(w)
		did = true
	}
	if *all || *parscale {
		pmax := *par
		if pmax == 0 {
			pmax = runtime.GOMAXPROCS(0)
		}
		workers := []int{1, 2, 4, 8}
		if pmax > 1 {
			workers = workers[:0]
			for nw := 1; nw < pmax; nw *= 2 {
				workers = append(workers, nw)
			}
			workers = append(workers, pmax)
		}
		run(experiments.ParallelScaling(w, *edge, *steps, workers))
		fmt.Fprintln(w)
		did = true
	}
	if *all || *fig == 9 {
		experiments.Fig9(w)
		fmt.Fprintln(w)
		did = true
	}
	if *all || *roofline {
		run(experiments.Roofline(w, *edge, *steps))
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}
