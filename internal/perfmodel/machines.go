package perfmodel

// Machine describes one of the paper's three HPC systems (§4) plus the
// calibrated per-core kernel rates used by the analytic scaling models.
// Rates are anchored to the paper's measurements (e.g. 4.2 MLUP/s per
// SuperMUC core for the µ-kernel without shortcuts); scenario ratios follow
// the shortcut behaviour of the real kernels in this repository.
type Machine struct {
	Name          string
	CoresPerNode  int
	TotalCores    int
	ClockHz       float64
	FLOPsPerCycle float64 // per core, double precision
	StreamBWNode  float64 // bytes/s per node

	// Network model.
	Topology       string
	LatencySec     float64
	LinkBW         float64 // bytes/s per process pair, effective
	IslandCores    int     // non-blocking island size (tree topologies)
	PrunedFactor   float64 // bandwidth reduction beyond an island
	ContentionLog  float64 // per-doubling contention growth factor
	PackBW         float64 // bytes/s memcpy rate for pack/unpack
	SkewPerStepSec float64 // synchronization skew per timestep

	// Calibrated per-core kernel rates (MLUP/s) per scenario
	// {interface, solid, liquid}, full-optimization kernels.
	PhiRate [3]float64
	MuRate  [3]float64
	// Extra per-step overhead fraction (boundary handling, swap, ...).
	OverheadFrac float64
}

// Scenario indices for the rate tables.
const (
	ScnInterface = 0
	ScnSolid     = 1
	ScnLiquid    = 2
)

// PeakFLOPsCore returns the per-core peak FLOP rate.
func (m *Machine) PeakFLOPsCore() float64 { return m.ClockHz * m.FLOPsPerCycle }

// PeakFLOPsNode returns the per-node peak FLOP rate.
func (m *Machine) PeakFLOPsNode() float64 {
	return m.PeakFLOPsCore() * float64(m.CoresPerNode)
}

// SuperMUC is the LRZ petascale system: 2× 8-core Sandy Bridge E5-2680 per
// node at 2.7 GHz (AVX: 8 DP FLOP/cycle), 80 GiB/s STREAM per node, islands
// of 512 nodes with a non-blocking tree inside and a 4:1 pruned tree
// between islands.
func SuperMUC() *Machine {
	return &Machine{
		Name:           "SuperMUC",
		CoresPerNode:   16,
		TotalCores:     147456,
		ClockHz:        2.7e9,
		FLOPsPerCycle:  8,
		StreamBWNode:   80 * (1 << 30),
		Topology:       "pruned tree (4:1)",
		LatencySec:     2.2e-6,
		LinkBW:         1.2e9,
		IslandCores:    512 * 16,
		PrunedFactor:   4,
		ContentionLog:  0.06,
		PackBW:         3.0e9,
		SkewPerStepSec: 0.25e-3,
		PhiRate:        [3]float64{11.0, 12.5, 13.5},
		MuRate:         [3]float64{4.5, 6.5, 5.2},
		OverheadFrac:   0.12,
	}
}

// Hornet is the HLRS Cray XC40: 2× 12-core Haswell E5-2680v3 per node at
// 2.5 GHz (AVX2+FMA: 16 DP FLOP/cycle), Aries dragonfly interconnect.
func Hornet() *Machine {
	return &Machine{
		Name:           "Hornet",
		CoresPerNode:   24,
		TotalCores:     94656,
		ClockHz:        2.5e9,
		FLOPsPerCycle:  16,
		StreamBWNode:   110 * (1 << 30),
		Topology:       "dragonfly (Aries)",
		LatencySec:     1.5e-6,
		LinkBW:         2.0e9,
		IslandCores:    0, // dragonfly: no island pruning
		PrunedFactor:   1,
		ContentionLog:  0.04,
		PackBW:         3.5e9,
		SkewPerStepSec: 0.2e-3,
		PhiRate:        [3]float64{12.5, 14.5, 15.5},
		MuRate:         [3]float64{5.4, 7.6, 6.2},
		OverheadFrac:   0.12,
	}
}

// JUQUEEN is the JSC 28-rack Blue Gene/Q: 16 PowerPC A2 cores per node at
// 1.6 GHz (QPX: 8 DP FLOP/cycle, in-order, 4-way SMT required), 5D torus
// at up to 40 GB/s with sub-microsecond latency.
func JUQUEEN() *Machine {
	return &Machine{
		Name:           "JUQUEEN",
		CoresPerNode:   16,
		TotalCores:     458752,
		ClockHz:        1.6e9,
		FLOPsPerCycle:  8,
		StreamBWNode:   28 * (1 << 30),
		Topology:       "5D torus",
		LatencySec:     0.7e-6,
		LinkBW:         1.8e9,
		IslandCores:    0,
		PrunedFactor:   1,
		ContentionLog:  0.015,
		PackBW:         1.2e9,
		SkewPerStepSec: 0.35e-3,
		// In-order A2 cores run roughly an order of magnitude slower
		// per core; the paper's Fig. 9 shows ~0.2 MLUP/s per core for
		// the full timestep.
		PhiRate:      [3]float64{0.80, 0.92, 0.99},
		MuRate:       [3]float64{0.33, 0.47, 0.38},
		OverheadFrac: 0.15,
	}
}

// Machines returns the three systems of §4.
func Machines() []*Machine {
	return []*Machine{SuperMUC(), Hornet(), JUQUEEN()}
}
