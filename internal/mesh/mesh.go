// Package mesh implements the paper's hierarchical, mesh-based data
// reduction strategy (§3.2): instead of writing all cell values, only the
// position of the phase interfaces is stored as triangle surface meshes.
// Meshes are extracted per block (extending into the ghost region so they
// can be stitched seamlessly), coarsened with a quadric-error
// edge-collapse simplifier that preserves block-boundary vertices via high
// weights, and reduced pairwise in log₂(P) gather-stitch-coarsen rounds.
package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Vec3 is a mesh-space position.
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns v s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v[0] * s, v[1] * s, v[2] * s} }

// Dot returns v · w.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Cross returns v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Mesh is an indexed triangle mesh.
type Mesh struct {
	Verts []Vec3
	Tris  [][3]int32
	// Boundary marks vertices lying on block boundaries; the simplifier
	// protects them with a high quadric weight so stitching works.
	Boundary []bool
}

// NumTris returns the triangle count.
func (m *Mesh) NumTris() int { return len(m.Tris) }

// NumVerts returns the vertex count.
func (m *Mesh) NumVerts() int { return len(m.Verts) }

// Area returns the total surface area.
func (m *Mesh) Area() float64 {
	a := 0.0
	for _, t := range m.Tris {
		e1 := m.Verts[t[1]].Sub(m.Verts[t[0]])
		e2 := m.Verts[t[2]].Sub(m.Verts[t[0]])
		a += 0.5 * e1.Cross(e2).Norm()
	}
	return a
}

// SignedVolume returns the signed enclosed volume via the divergence
// theorem; positive for consistently outward-oriented closed surfaces.
func (m *Mesh) SignedVolume() float64 {
	v := 0.0
	for _, t := range m.Tris {
		a, b, c := m.Verts[t[0]], m.Verts[t[1]], m.Verts[t[2]]
		v += a.Dot(b.Cross(c)) / 6
	}
	return v
}

// EdgeUseCounts maps each undirected edge to the number of triangles using
// it. A closed 2-manifold has every edge used exactly twice.
func (m *Mesh) EdgeUseCounts() map[[2]int32]int {
	edges := make(map[[2]int32]int)
	for _, t := range m.Tris {
		for e := 0; e < 3; e++ {
			a, b := t[e], t[(e+1)%3]
			if a > b {
				a, b = b, a
			}
			edges[[2]int32{a, b}]++
		}
	}
	return edges
}

// IsClosed reports whether every edge is shared by exactly two triangles.
func (m *Mesh) IsClosed() bool {
	for _, c := range m.EdgeUseCounts() {
		if c != 2 {
			return false
		}
	}
	return len(m.Tris) > 0
}

// Compact drops unreferenced vertices and remaps triangle indices.
func (m *Mesh) Compact() {
	used := make([]int32, len(m.Verts))
	for i := range used {
		used[i] = -1
	}
	var verts []Vec3
	var bnd []bool
	for ti := range m.Tris {
		for e := 0; e < 3; e++ {
			v := m.Tris[ti][e]
			if used[v] < 0 {
				used[v] = int32(len(verts))
				verts = append(verts, m.Verts[v])
				if m.Boundary != nil {
					bnd = append(bnd, m.Boundary[v])
				}
			}
			m.Tris[ti][e] = used[v]
		}
	}
	m.Verts = verts
	if m.Boundary != nil {
		m.Boundary = bnd
	}
}

// WriteSTL writes the mesh in binary STL format.
func (m *Mesh) WriteSTL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var header [80]byte
	copy(header[:], "phasefield isosurface")
	if _, err := bw.Write(header[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(m.Tris))); err != nil {
		return err
	}
	for _, t := range m.Tris {
		a, b, c := m.Verts[t[0]], m.Verts[t[1]], m.Verts[t[2]]
		n := b.Sub(a).Cross(c.Sub(a))
		if l := n.Norm(); l > 0 {
			n = n.Scale(1 / l)
		}
		buf := [12]float32{
			float32(n[0]), float32(n[1]), float32(n[2]),
			float32(a[0]), float32(a[1]), float32(a[2]),
			float32(b[0]), float32(b[1]), float32(b[2]),
			float32(c[0]), float32(c[1]), float32(c[2]),
		}
		if err := binary.Write(bw, binary.LittleEndian, buf); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(0)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteOBJ writes the mesh in Wavefront OBJ format.
func (m *Mesh) WriteOBJ(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, v := range m.Verts {
		if _, err := fmt.Fprintf(bw, "v %g %g %g\n", v[0], v[1], v[2]); err != nil {
			return err
		}
	}
	for _, t := range m.Tris {
		if _, err := fmt.Fprintf(bw, "f %d %d %d\n", t[0]+1, t[1]+1, t[2]+1); err != nil {
			return err
		}
	}
	return bw.Flush()
}
