package kernels

import (
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/simd"
)

// phi_vec.go implements the explicitly vectorized φ-kernel using the
// cellwise strategy (§5.1.1): one SIMD vector holds the four phase values
// of a single cell, so the field is updated cell by cell and per-cell
// branching (the "shortcuts") remains possible. The price is permute-style
// horizontal operations when single components of the φ vector appear in a
// term (e.g. φ_α·Σ_β φ_β); the benefit is fewer live registers and per-cell
// early exits. Common subexpressions are precomputed aggressively — the
// driving force collapses to w'(φ_α)/S · (ω_α − ω·h), the triple-obstacle
// sum to a closed form in Σφ and Σφ² — which is why this rung of the ladder
// exceeds the 4× vector width (the paper reports 5–7×).

// phiGammaRows caches the rows of the γ matrix as SIMD vectors.
func phiGammaRows(p *core.Params) [NP]simd.Vec4 {
	var rows [NP]simd.Vec4
	for a := 0; a < NP; a++ {
		for b := 0; b < NP; b++ {
			rows[a][b] = p.Gamma[a][b]
		}
	}
	return rows
}

func loadPhiVec(f *grid.Field, x, y, z int) simd.Vec4 {
	return simd.Set(f.At(0, x, y, z), f.At(1, x, y, z), f.At(2, x, y, z), f.At(3, x, y, z))
}

// phiFaceFluxVec computes the staggered face flux for all phases with the
// phases in SIMD lanes, using the factored common-subexpression form
//
//	F_α = −2[ pf_α (γ_row·(pf∘g)) − g_α (γ_row·(pf∘pf)) ]
//
// which shares pf∘g and pf∘pf across all four phases (the CSE work the
// paper bundles into the SIMD rung).
func phiFaceFluxVec(gamma *[NP]simd.Vec4, lo, hi simd.Vec4, invDx float64) simd.Vec4 {
	pf := lo.Add(hi).Scale(0.5)
	g := hi.Sub(lo).Scale(invDx)
	u := pf.Mul(g)
	pp := pf.Mul(pf)
	var out simd.Vec4
	for a := 0; a < NP; a++ {
		out[a] = -2 * (pf[a]*gamma[a].Dot(u) - g[a]*gamma[a].Dot(pp))
	}
	return out
}

// tempVecs holds the per-slice thermodynamic tables in SIMD form (phases in
// lanes).
type tempVecs struct {
	T          float64
	b          simd.Vec4     // B_α(T)
	inv4A, c0T [NR]simd.Vec4 // µ² and µ coefficients per reduced component
}

func (tv *tempVecs) fill(ts *TempSlice) {
	tv.T = ts.T
	for a := 0; a < NP; a++ {
		tv.b[a] = ts.B[a]
		for k := 0; k < NR; k++ {
			tv.inv4A[k][a] = ts.Inv4A[k][a]
			tv.c0T[k][a] = ts.C0T[k][a]
		}
	}
}

// grandPotsVec evaluates ω_α(µ,T) for all phases in lanes.
func (tv *tempVecs) grandPotsVec(mu *[NR]float64) simd.Vec4 {
	w := tv.b
	for k := 0; k < NR; k++ {
		w = w.Sub(tv.inv4A[k].Scale(mu[k] * mu[k])).Sub(tv.c0T[k].Scale(mu[k]))
	}
	return w
}

// phiSweepVec is the cellwise-vectorized φ-kernel with optional T(z),
// staggered-buffer and shortcut optimizations stacked on top, over the
// z-slab [z0,z1).
func phiSweepVec(ctx *Ctx, f *Fields, sc *Scratch, o phiOpts, z0, z1 int) {
	p := ctx.P
	src, dst, mu := f.PhiSrc, f.PhiDst, f.MuSrc
	nx, ny := src.NX, src.NY
	sc.ensure(nx, ny)

	invDx := 1 / p.Dx
	halfInvDx := 0.5 * invDx
	invEps := 1 / p.Eps
	dtFac := p.Dt / (p.Tau * p.Eps)
	obstPref := core.ObstaclePrefactor
	gT := p.GammaTriple
	gamma := phiGammaRows(p)

	var ts TempSlice
	var tv tempVecs
	var muC [NR]float64

	sc.zValidPhi = false
	for z := z0; z < z1; z++ {
		ts.Fill(p, ctx.ZOff+z, ctx.Time)
		if o.tz {
			tv.fill(&ts)
		}
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if o.shortcut && isBulkCell(src, x, y, z) {
					for a := 0; a < NP; a++ {
						dst.Set(a, x, y, z, src.At(a, x, y, z))
					}
					if o.stag {
						zeroPhiBuffers(sc, x, y)
					}
					continue
				}

				phiC := loadPhiVec(src, x, y, z)
				nbE := loadPhiVec(src, x+1, y, z)
				nbW := loadPhiVec(src, x-1, y, z)
				nbN := loadPhiVec(src, x, y+1, z)
				nbS := loadPhiVec(src, x, y-1, z)
				nbT := loadPhiVec(src, x, y, z+1)
				nbB := loadPhiVec(src, x, y, z-1)

				gX := nbE.Sub(nbW).Scale(halfInvDx)
				gY := nbN.Sub(nbS).Scale(halfInvDx)
				gZ := nbT.Sub(nbB).Scale(halfInvDx)

				// ∂a/∂φ_α = 2 Σ_d [φ_α (γ_row·(g_d∘g_d)) − g_dα (γ_row·(φ∘g_d))]
				// with g∘g and φ∘g shared across phases (CSE).
				var dadphi simd.Vec4
				for _, g := range [3]simd.Vec4{gX, gY, gZ} {
					gg := g.Mul(g)
					pg := phiC.Mul(g)
					for a := 0; a < NP; a++ {
						dadphi[a] += 2 * (phiC[a]*gamma[a].Dot(gg) - g[a]*gamma[a].Dot(pg))
					}
				}

				// Divergence of the staggered fluxes.
				var div simd.Vec4
				lows := [3]simd.Vec4{nbW, nbS, nbB}
				highs := [3]simd.Vec4{nbE, nbN, nbT}
				for axis := 0; axis < 3; axis++ {
					hi := phiFaceFluxVec(&gamma, phiC, highs[axis], invDx)
					var lo simd.Vec4
					gotLow := false
					if o.stag {
						var tmp [NP]float64
						if loadPhiBuffer(sc, axis, x, y, &tmp) {
							lo = simd.Load(tmp[:])
							gotLow = true
						}
					}
					if !gotLow {
						lo = phiFaceFluxVec(&gamma, lows[axis], phiC, invDx)
					}
					div = div.Add(hi.Sub(lo).Scale(invDx))
					if o.stag {
						var tmp [NP]float64
						hi.Store(tmp[:])
						storePhiBuffer(sc, axis, x, y, &tmp)
					}
				}

				// Obstacle potential derivative:
				// (16/π²)(γ_row·φ) + γ_T·((S1−φ_α)² − (S2−φ_α²))/2.
				s1 := phiC.HSum()
				s2 := phiC.Dot(phiC)
				var obst simd.Vec4
				for a := 0; a < NP; a++ {
					r := s1 - phiC[a]
					obst[a] = obstPref*gamma[a].Dot(phiC) +
						0.5*gT*(r*r-(s2-phiC[a]*phiC[a]))
				}

				// Driving force ∂ψ/∂φ_α = w'(φ_α)/S (ω_α − ω·h).
				muC[0] = mu.At(0, x, y, z)
				muC[1] = mu.At(1, x, y, z)
				var pots simd.Vec4
				if o.tz {
					pots = tv.grandPotsVec(&muC)
				} else {
					// Without T(z) the grand potentials go
					// through the thermodynamic database per
					// cell, like the scalar rungs.
					var pd [NP]float64
					grandPotsDirect(p.Sys, &muC, ts.DT, &pd)
					pots = simd.Load(pd[:])
				}
				w := phiC.Mul(phiC).Mul(simd.Splat(3).Sub(phiC.Scale(2)))
				var df simd.Vec4
				if sw := w.HSum(); sw > 0 {
					invS := 1 / sw
					h := w.Scale(invS)
					wDot := pots.Dot(h)
					wd := phiC.Mul(simd.Splat(1).Sub(phiC)).Scale(6)
					df = wd.Scale(invS).Mul(pots.Sub(simd.Splat(wDot)))
				}

				T := ts.T
				rhs := dadphi.Sub(div).Scale(T * p.Eps).
					Add(obst.Scale(T * invEps)).
					Add(df)
				mean := rhs.HSum() / NP
				outV := phiC.Sub(rhs.Sub(simd.Splat(mean)).Scale(dtFac))

				var out [NP]float64
				outV.Store(out[:])
				core.ProjectSimplex(&out)
				storePhi(dst, x, y, z, &out)
			}
		}
		sc.zValidPhi = true
	}
}
