package jobd

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// trace.go — the per-job performance timeline. The runner refreshes a
// job's telemetry snapshots (step-phase records, cumulative totals, halo
// flows, exchange-latency histograms) at every report boundary, and
// lifecycle transitions leave marks; GET /jobs/{id}/trace renders both as
// a Chrome trace_event document that Perfetto and chrome://tracing load
// directly.

// PhaseBreakdown is the step-phase timing of one reporting window,
// attached to a Sample when the solver's step telemetry is on. Durations
// are wall-clock milliseconds summed over the window's steps; kernel and
// halo phases sum over block ranks, so they can exceed WallMs on
// multi-rank jobs.
type PhaseBreakdown struct {
	// Steps is how many completed timesteps the window covers.
	Steps int64 `json:"steps"`
	// WallMs is the window's total per-step wall time.
	WallMs float64 `json:"wall_ms"`
	// PhiKernelMs and MuKernelMs are the sweep-kernel times.
	PhiKernelMs float64 `json:"phi_kernel_ms"`
	// MuKernelMs is the µ (chemical potential) kernel time.
	MuKernelMs float64 `json:"mu_kernel_ms"`
	// HaloPackMs through HaloUnpackMs split the ghost-layer exchange.
	HaloPackMs float64 `json:"halo_pack_ms"`
	// HaloTransferMs is time inside the transport send path.
	HaloTransferMs float64 `json:"halo_transfer_ms"`
	// HaloWaitMs is time blocked on neighbor data.
	HaloWaitMs float64 `json:"halo_wait_ms"`
	// HaloUnpackMs is ghost-layer scatter time.
	HaloUnpackMs float64 `json:"halo_unpack_ms"`
	// SchedMs is schedule-engine bookkeeping between steps.
	SchedMs float64 `json:"sched_ms"`
	// CkptMs is checkpoint-serialization time folded into the window.
	CkptMs float64 `json:"ckpt_ms"`
	// HaloBytes and HaloSkipped count exchanged payload bytes and
	// activity-skipped halo messages over the window.
	HaloBytes int64 `json:"halo_bytes"`
	// HaloSkipped counts halo messages elided by active-region sweeping.
	HaloSkipped int64 `json:"halo_skipped"`
}

// breakdown converts a StepTotals window delta into the JSON form.
func breakdown(d obs.StepTotals) *PhaseBreakdown {
	ms := func(t time.Duration) float64 { return float64(t) / float64(time.Millisecond) }
	return &PhaseBreakdown{
		Steps:          d.Steps,
		WallMs:         ms(d.Wall),
		PhiKernelMs:    ms(d.PhiKernel),
		MuKernelMs:     ms(d.MuKernel),
		HaloPackMs:     ms(d.HaloPack),
		HaloTransferMs: ms(d.HaloTransfer),
		HaloWaitMs:     ms(d.HaloWait),
		HaloUnpackMs:   ms(d.HaloUnpack),
		SchedMs:        ms(d.Sched),
		CkptMs:         ms(d.Ckpt),
		HaloBytes:      d.HaloBytes,
		HaloSkipped:    d.HaloSkipped,
	}
}

// traceMark is one lifecycle event on a job's timeline (submitted,
// started, preempted, retried, ...), rendered as spans and instants on the
// trace's lifecycle track.
type traceMark struct {
	kind string
	note string
	at   time.Time
}

// maxMarks bounds the lifecycle timeline so a crash-looping job cannot
// grow memory without bound; the earliest marks carry the diagnosis, so
// the tail is dropped.
const maxMarks = 1024

// mark appends a lifecycle event to the job's timeline.
func (j *Job) mark(kind, note string) {
	if len(note) > 200 {
		note = note[:200] + "…"
	}
	j.mu.Lock()
	if len(j.marks) < maxMarks {
		j.marks = append(j.marks, traceMark{kind: kind, note: note, at: time.Now()})
	}
	j.mu.Unlock()
}

// Trace-track layout: one process per job, lifecycle and steps first,
// then one track per phase family (per-rank phase sums can exceed the
// step's wall span, so phases cannot nest under the step track).
const (
	traceTidLifecycle = iota
	traceTidSteps
	traceTidPhi
	traceTidMu
	traceTidHalo
	traceTidSched
)

// handleJobTrace serves GET /jobs/{id}/trace: the job's lifecycle marks
// plus its most recent step-phase records (the solver keeps a bounded
// ring, so long runs trace their tail) as Chrome trace_event JSON.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	marks := append([]traceMark(nil), j.marks...)
	recs := append([]obs.StepRecord(nil), j.stepRecs...)
	j.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	tw := obs.NewTraceWriter(w)
	tw.ProcessName(1, "jobd "+j.ID)
	tw.ThreadName(1, traceTidLifecycle, "lifecycle")
	tw.ThreadName(1, traceTidSteps, "steps")
	tw.ThreadName(1, traceTidPhi, "phi kernel")
	tw.ThreadName(1, traceTidMu, "mu kernel")
	tw.ThreadName(1, traceTidHalo, "halo exchange")
	tw.ThreadName(1, traceTidSched, "schedule+ckpt")

	// Lifecycle: each mark is an instant, and the gap to the next mark is
	// a span named after the state the mark put the job in.
	for i, m := range marks {
		ts := m.at.UnixMicro()
		var args map[string]any
		if m.note != "" {
			args = map[string]any{"note": m.note}
		}
		tw.Instant(1, traceTidLifecycle, m.kind, ts, args)
		if i+1 < len(marks) {
			tw.Complete(1, traceTidLifecycle, m.kind, ts, marks[i+1].at.UnixMicro()-ts, args)
		}
	}

	// Steps: one span per recorded step, with the phase families on their
	// own tracks anchored at the step's start.
	us := func(d time.Duration) int64 { return d.Microseconds() }
	for i := range recs {
		rec := &recs[i]
		ts := rec.Start / int64(time.Microsecond)
		tw.Complete(1, traceTidSteps, fmt.Sprintf("step %d", rec.Step), ts, us(rec.Wall),
			map[string]any{
				"active_fraction": rec.ActiveFraction,
				"halo_bytes":      rec.HaloBytes,
				"halo_skipped":    rec.HaloSkipped,
			})
		if rec.PhiKernel > 0 {
			tw.Complete(1, traceTidPhi, "phi", ts, us(rec.PhiKernel), nil)
		}
		if rec.MuKernel > 0 {
			tw.Complete(1, traceTidMu, "mu", ts, us(rec.MuKernel), nil)
		}
		if halo := rec.HaloPack + rec.HaloTransfer + rec.HaloWait + rec.HaloUnpack; halo > 0 {
			tw.Complete(1, traceTidHalo, "halo", ts, us(halo), map[string]any{
				"pack_us":     us(rec.HaloPack),
				"transfer_us": us(rec.HaloTransfer),
				"wait_us":     us(rec.HaloWait),
				"unpack_us":   us(rec.HaloUnpack),
			})
		}
		if over := rec.Sched + rec.Ckpt; over > 0 {
			tw.Complete(1, traceTidSched, "sched+ckpt", ts, us(over), nil)
		}
	}
	if err := tw.Close(); err != nil {
		s.logf("jobd: %s: trace write: %v", j.ID, err)
	}
}
