package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire format of the TCP transport, pinned by the golden fixtures in
// testdata/wireframes. Every message is one frame:
//
//	offset size  field
//	0      4     magic "PFWF"
//	4      1     wire version (currently 1)
//	5      1     kind (data, hello, helloAck, contrib, result, gather, barrier)
//	6      1     tag (comm.Tag for data streams; 0xFF on the control stream)
//	7      1     face (arrival face for data frames; 0 otherwise)
//	8      4     from (int32 LE: sender rank for data/gather, proc otherwise)
//	12     4     to (int32 LE: receiver rank for data, proc otherwise)
//	16     8     seq (uint64 LE: per-stream sequence number; 0 on control)
//	24     4     nfloats (uint32 LE: payload length in float64s)
//	28     8×n   payload: nfloats little-endian IEEE-754 float64 bit patterns
//
// A zero-length data payload is the sleep token (see SetQuietFaces); NaN
// and ±Inf payload values round-trip bit-exactly. The decoder enforces an
// upper payload bound so a corrupt length field cannot trigger an
// unbounded allocation.

// wireMagic opens every frame.
const wireMagic = "PFWF"

// wireVersion is the frame-format revision; bumped on any layout change.
const wireVersion = 1

// wireHeaderSize is the fixed frame-header length in bytes.
const wireHeaderSize = 28

// Frame kinds.
const (
	kindData     = 1 // halo payload (or sleep token) on a data stream
	kindHello    = 2 // connect handshake: topology + ckpt version + next recv seq
	kindHelloAck = 3 // accept handshake reply: next recv seq
	kindContrib  = 4 // collective contribution, peer → root
	kindResult   = 5 // collective result, root → peer
	kindGather   = 6 // per-rank gather payload, peer → root
	kindBarrier  = 7 // barrier token, both directions
)

// ctrlTag marks the control stream in the frame header's tag byte.
const ctrlTag = 0xFF

// wireFrame is one decoded frame. Payload aliases a caller- or
// pool-provided buffer on the hot path.
type wireFrame struct {
	Kind    byte
	Tag     byte
	Face    byte
	From    int32
	To      int32
	Seq     uint64
	Payload []float64
}

// appendFrame encodes f onto dst and returns the extended slice. Encoding
// into a reused slot keeps the send path allocation-free in steady state.
func appendFrame(dst []byte, f *wireFrame) []byte {
	dst = append(dst, wireMagic...)
	dst = append(dst, wireVersion, f.Kind, f.Tag, f.Face)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.To))
	dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	for _, v := range f.Payload {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// readFrameHeader decodes the fixed header from r into f (leaving Payload
// untouched) and returns the payload length in floats. It validates magic,
// version and the payload bound, so a corrupted or hostile stream fails
// with an error instead of an unbounded allocation or panic.
func readFrameHeader(r *bufio.Reader, maxFloats int, f *wireFrame) (int, error) {
	var hdr [wireHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	if string(hdr[0:4]) != wireMagic {
		return 0, fmt.Errorf("comm: bad frame magic %q", hdr[0:4])
	}
	if hdr[4] != wireVersion {
		return 0, fmt.Errorf("comm: unsupported wire version %d (want %d)", hdr[4], wireVersion)
	}
	f.Kind = hdr[5]
	if f.Kind < kindData || f.Kind > kindBarrier {
		return 0, fmt.Errorf("comm: unknown frame kind %d", f.Kind)
	}
	f.Tag = hdr[6]
	f.Face = hdr[7]
	f.From = int32(binary.LittleEndian.Uint32(hdr[8:12]))
	f.To = int32(binary.LittleEndian.Uint32(hdr[12:16]))
	f.Seq = binary.LittleEndian.Uint64(hdr[16:24])
	n := binary.LittleEndian.Uint32(hdr[24:28])
	if int64(n) > int64(maxFloats) {
		return 0, fmt.Errorf("comm: frame payload %d floats exceeds bound %d", n, maxFloats)
	}
	return int(n), nil
}

// readFramePayload fills buf (len = the header's nfloats) from r via
// scratch, a reused byte buffer grown as needed. Float bit patterns pass
// through untouched, so NaN payloads survive bit-exactly.
func readFramePayload(r *bufio.Reader, buf []float64, scratch *[]byte) error {
	nb := len(buf) * 8
	if cap(*scratch) < nb {
		*scratch = make([]byte, nb)
	}
	b := (*scratch)[:nb]
	if _, err := io.ReadFull(r, b); err != nil {
		return err
	}
	for i := range buf {
		buf[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return nil
}

// decodeFrame decodes one complete frame from data, allocating the
// payload. Cold paths and tests only; the hot path reads the payload
// straight into pooled buffers via readFrameHeader/readFramePayload.
func decodeFrame(data []byte, maxFloats int) (*wireFrame, error) {
	r := bufio.NewReader(newByteReader(data))
	var f wireFrame
	n, err := readFrameHeader(r, maxFloats, &f)
	if err != nil {
		return nil, err
	}
	f.Payload = make([]float64, n)
	var scratch []byte
	if err := readFramePayload(r, f.Payload, &scratch); err != nil {
		return nil, err
	}
	return &f, nil
}

// byteReader is a minimal io.Reader over a byte slice (avoids importing
// bytes just for tests' sake on the hot path).
type byteReader struct {
	data []byte
	off  int
}

func newByteReader(b []byte) *byteReader { return &byteReader{data: b} }

func (b *byteReader) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}
