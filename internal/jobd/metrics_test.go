package jobd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/promtest"
)

// metrics_test.go — the daemon observability surface: GET /metrics must be
// strictly valid Prometheus text exposition (format 0.0.4) including the
// telemetry series, survive concurrent scrapes under -race, and
// GET /jobs/{id}/trace must serve loadable Chrome trace_event JSON.
// Strict format validation lives in internal/promtest, shared with the
// federation gateway's scrape tests.

// scrape fetches GET /metrics and returns the body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestDaemonMetricsFormat: the full /metrics payload — with a multi-block
// job running so every telemetry family has series — must pass the strict
// exposition parser, and the new families must carry sane values.
func TestDaemonMetricsFormat(t *testing.T) {
	srv, ts := apiServer(t, Config{MaxConcurrent: 2, Budget: 2, ReportEvery: 1,
		Classes: map[string]int{"small": 1}})

	// Two x-blocks so halo flows and exchange latencies exist.
	st := submit(t, ts.URL, Spec{NX: 8, NY: 8, NZ: 10, PX: 2, Steps: 100000, Scenario: "interface"})
	j, _ := srv.Get(st.ID)
	waitFor(t, "job to report telemetry", 60*time.Second, func() bool {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.telemTot.Steps > 0 && len(j.flows) > 0
	})

	series := promtest.Parse(t, scrape(t, ts.URL))

	for _, want := range []struct {
		name   string
		labels []string
	}{
		{"jobd_jobs", []string{`state="running"`}},
		{"jobd_workers_active", nil},
		{"jobd_workers_active", []string{`class="default"`}},
		{"jobd_workers_active", []string{`class="small"`}},
		{"jobd_workers_budget", []string{`class="small"`}},
		{"jobd_active_fraction", []string{`job="` + st.ID + `"`}},
		{"jobd_job_phase_seconds_total", []string{`job="` + st.ID + `"`, `phase="phi_kernel"`}},
		{"jobd_halo_bytes_total", []string{`job="` + st.ID + `"`, `tag="phi"`}},
		{"jobd_halo_frames_total", []string{`job="` + st.ID + `"`}},
		{"jobd_halo_sleeps_total", []string{`job="` + st.ID + `"`}},
		{"jobd_exchange_latency_seconds_bucket", []string{`le="+Inf"`, `tag="phi"`}},
		{"jobd_exchange_latency_seconds_sum", []string{`tag="phi"`}},
		{"jobd_exchange_latency_seconds_count", []string{`tag="phi"`}},
	} {
		if _, ok := promtest.FindSeries(t, series, want.name, want.labels...); !ok {
			t.Errorf("missing series %s with labels %v", want.name, want.labels)
		}
	}

	if v, _ := promtest.FindSeries(t, series, "jobd_workers_budget", `class="small"`); v != 1 {
		t.Errorf("small class budget %g, want 1", v)
	}
	if v, _ := promtest.FindSeries(t, series, "jobd_job_phase_seconds_total", `phase="phi_kernel"`); v <= 0 {
		t.Errorf("phi kernel seconds %g, want > 0", v)
	}
	if v, _ := promtest.FindSeries(t, series, "jobd_halo_bytes_total", `tag="phi"`); v <= 0 {
		t.Errorf("halo bytes %g, want > 0", v)
	}
	// The +Inf bucket of a histogram must equal its _count.
	inf, _ := promtest.FindSeries(t, series, "jobd_exchange_latency_seconds_bucket", `le="+Inf"`, `tag="phi"`)
	count, _ := promtest.FindSeries(t, series, "jobd_exchange_latency_seconds_count", `tag="phi"`)
	if inf != count || count <= 0 {
		t.Errorf("+Inf bucket %g != count %g (or empty)", inf, count)
	}
}

// TestDaemonMetricsScrapeConcurrent hammers /metrics from several
// goroutines while a job steps and finishes — the handler must stay
// race-free against the runner's telemetry updates (CI runs this under
// -race).
func TestDaemonMetricsScrapeConcurrent(t *testing.T) {
	srv, ts := apiServer(t, Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 1})
	st := submit(t, ts.URL, Spec{NX: 8, NY: 8, NZ: 10, PX: 2, Steps: 40, Scenario: "interface"})
	j, _ := srv.Get(st.ID)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	waitFor(t, "job to finish under scrape load", 120*time.Second, func() bool {
		return j.State() == StateDone
	})
	close(done)
	wg.Wait()

	// One last full strict parse after the job went terminal.
	promtest.Parse(t, scrape(t, ts.URL))
}

// traceDoc mirrors the Chrome trace_event envelope for decoding.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int64          `json:"pid"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestJobTraceAndSamplePhases runs a small job to completion while
// following its metrics stream, then checks that (a) samples carried phase
// breakdowns, and (b) the trace endpoint serves valid trace_event JSON
// with lifecycle marks and per-step spans.
func TestJobTraceAndSamplePhases(t *testing.T) {
	srv, ts := apiServer(t, Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 2})

	// Phases ride the metrics stream: subscribe to a long-running job,
	// wait for a breakdown-bearing sample, then cancel it.
	long := submit(t, ts.URL, Spec{NX: 8, NY: 8, NZ: 10, Steps: 100000, Scenario: "interface"})
	lj, _ := srv.Get(long.ID)
	ch, cancel := lj.subscribe()
	gotPhases := false
	deadline := time.After(60 * time.Second)
	for !gotPhases {
		select {
		case s, open := <-ch:
			if !open {
				t.Fatalf("stream closed before any phase breakdown (job %s)", lj.State())
			}
			if s.Phases != nil {
				gotPhases = true
				if s.Phases.Steps <= 0 || s.Phases.PhiKernelMs <= 0 {
					t.Errorf("degenerate phase breakdown: %+v", s.Phases)
				}
			}
		case <-deadline:
			t.Fatal("no sample carried a phase breakdown")
		}
	}
	cancel()
	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+long.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}

	// The trace endpoint serves the whole lifecycle of a completed job.
	st := submit(t, ts.URL, Spec{NX: 8, NY: 8, NZ: 10, Steps: 10, Scenario: "interface"})
	j, _ := srv.Get(st.ID)
	waitFor(t, "job to finish", 120*time.Second, func() bool {
		return j.State() == StateDone
	})

	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d %s", resp.StatusCode, body)
	}
	var doc traceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, body)
	}
	kinds := map[string]int{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		kinds[ev.Ph]++
		names[ev.Name] = true
		if ev.Ph == "X" && ev.Dur < 1 {
			t.Errorf("complete event %q has dur %d", ev.Name, ev.Dur)
		}
	}
	if kinds["M"] == 0 || kinds["i"] == 0 || kinds["X"] == 0 {
		t.Fatalf("trace lacks metadata/instant/span events: %v", kinds)
	}
	for _, want := range []string{"submit", "start", "done", "phi", "mu"} {
		if !names[want] {
			t.Errorf("trace has no %q event; names: %v", want, names)
		}
	}
	// Step spans cover the recorded tail of the run.
	if !names[fmt.Sprintf("step %d", st.Steps)] {
		t.Errorf("trace lacks the final step span; names: %v", names)
	}

	// Unknown job → 404.
	resp, err = http.Get(ts.URL + "/jobs/job-9999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown job: %d, want 404", resp.StatusCode)
	}
}
