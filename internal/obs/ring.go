package obs

// Ring is a fixed-capacity ring of StepRecords with single-writer
// discipline: exactly one goroutine (the stepping goroutine) calls Push
// and Last, and readers call Snapshot only at step boundaries on that
// same goroutine (the solver's StepDone hook runs there). This is what
// makes the ring completely lock- and allocation-free in steady state —
// cross-goroutine consumers must read a copy taken at a boundary, never
// the ring itself.
type Ring struct {
	recs []StepRecord
	n    int64 // total records ever pushed
}

// DefaultRingCap is the record capacity a zero-configured solver ring
// gets: enough history for a trace window of a few hundred steps without
// measurable memory cost (~100 B per record).
const DefaultRingCap = 512

// NewRing allocates a ring holding the last capacity records (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{recs: make([]StepRecord, 0, capacity)}
}

// Push appends one record, evicting the oldest once full. Allocation-free
// after the ring has filled once (and before that it only appends into
// preallocated capacity).
func (r *Ring) Push(rec StepRecord) {
	if len(r.recs) < cap(r.recs) {
		r.recs = append(r.recs, rec)
	} else {
		r.recs[r.n%int64(cap(r.recs))] = rec
	}
	r.n++
}

// Len returns how many records the ring currently holds.
func (r *Ring) Len() int { return len(r.recs) }

// Total returns how many records have ever been pushed.
func (r *Ring) Total() int64 { return r.n }

// Last returns a pointer to the most recently pushed record, or nil on an
// empty ring. The pointer aliases ring storage and is valid only until
// the next Push — it exists so the writer can fold post-step costs
// (checkpoint writes) into the record it just pushed.
func (r *Ring) Last() *StepRecord {
	if r.n == 0 {
		return nil
	}
	return &r.recs[(r.n-1)%int64(cap(r.recs))]
}

// Snapshot copies the held records, oldest first, into dst (grown as
// needed) and returns it. Cold path: the one place ring contents cross a
// goroutine boundary, called at a step boundary by the writer.
func (r *Ring) Snapshot(dst []StepRecord) []StepRecord {
	dst = dst[:0]
	if r.n == 0 {
		return dst
	}
	c := int64(cap(r.recs))
	start := int64(0)
	if r.n > c {
		start = r.n % c
	}
	for i := int64(0); i < int64(len(r.recs)); i++ {
		dst = append(dst, r.recs[(start+i)%c])
	}
	return dst
}
