// Package simd provides a portable four-wide SIMD abstraction layer.
//
// The paper's production code vectorizes its two compute kernels with
// explicit intrinsics (SSE2/SSE4/AVX/AVX2 on x86, QPX on Blue Gene/Q)
// behind a thin API so that kernels are written once against vector-width-4
// double-precision registers. This package is the Go analogue of that thin
// API: a Vec4 value type with the operations the kernels need (arithmetic,
// fused multiply-add, blends, rotations, broadcasts, and the fast inverse
// square root used for vector normalization). The Go compiler keeps Vec4 in
// registers for the hot loops; more importantly the package preserves the
// *algorithmic* structure of the paper's two vectorization strategies:
// cellwise (one Vec4 = the four phase values of one cell) and four-cell
// (one Vec4 = one quantity for four consecutive cells in x).
package simd

import "math"

// Width is the SIMD vector width in double-precision lanes. All target
// architectures in the paper (AVX, AVX2, QPX) have width four.
const Width = 4

// Vec4 is a four-lane double-precision SIMD register.
type Vec4 [Width]float64

// Set returns a Vec4 with the given lane values.
func Set(a, b, c, d float64) Vec4 { return Vec4{a, b, c, d} }

// Splat returns a Vec4 with all lanes set to x (broadcast).
func Splat(x float64) Vec4 { return Vec4{x, x, x, x} }

// Zero returns the zero vector.
func Zero() Vec4 { return Vec4{} }

// Load loads four consecutive values from s. s must have at least 4 elements.
func Load(s []float64) Vec4 { return Vec4{s[0], s[1], s[2], s[3]} }

// Store writes the four lanes to s. s must have at least 4 elements.
func (v Vec4) Store(s []float64) { s[0], s[1], s[2], s[3] = v[0], v[1], v[2], v[3] }

// Add returns v + w lanewise.
func (v Vec4) Add(w Vec4) Vec4 { return Vec4{v[0] + w[0], v[1] + w[1], v[2] + w[2], v[3] + w[3]} }

// Sub returns v - w lanewise.
func (v Vec4) Sub(w Vec4) Vec4 { return Vec4{v[0] - w[0], v[1] - w[1], v[2] - w[2], v[3] - w[3]} }

// Mul returns v * w lanewise.
func (v Vec4) Mul(w Vec4) Vec4 { return Vec4{v[0] * w[0], v[1] * w[1], v[2] * w[2], v[3] * w[3]} }

// Div returns v / w lanewise.
func (v Vec4) Div(w Vec4) Vec4 { return Vec4{v[0] / w[0], v[1] / w[1], v[2] / w[2], v[3] / w[3]} }

// Neg returns -v lanewise.
func (v Vec4) Neg() Vec4 { return Vec4{-v[0], -v[1], -v[2], -v[3]} }

// Scale returns v * s with scalar s broadcast to all lanes.
func (v Vec4) Scale(s float64) Vec4 { return Vec4{v[0] * s, v[1] * s, v[2] * s, v[3] * s} }

// FMA returns v*w + a lanewise (fused multiply-add).
func (v Vec4) FMA(w, a Vec4) Vec4 {
	return Vec4{v[0]*w[0] + a[0], v[1]*w[1] + a[1], v[2]*w[2] + a[2], v[3]*w[3] + a[3]}
}

// FMS returns v*w - a lanewise (fused multiply-subtract).
func (v Vec4) FMS(w, a Vec4) Vec4 {
	return Vec4{v[0]*w[0] - a[0], v[1]*w[1] - a[1], v[2]*w[2] - a[2], v[3]*w[3] - a[3]}
}

// Min returns the lanewise minimum of v and w.
func (v Vec4) Min(w Vec4) Vec4 {
	return Vec4{math.Min(v[0], w[0]), math.Min(v[1], w[1]), math.Min(v[2], w[2]), math.Min(v[3], w[3])}
}

// Max returns the lanewise maximum of v and w.
func (v Vec4) Max(w Vec4) Vec4 {
	return Vec4{math.Max(v[0], w[0]), math.Max(v[1], w[1]), math.Max(v[2], w[2]), math.Max(v[3], w[3])}
}

// Abs returns the lanewise absolute value.
func (v Vec4) Abs() Vec4 {
	return Vec4{math.Abs(v[0]), math.Abs(v[1]), math.Abs(v[2]), math.Abs(v[3])}
}

// Sqrt returns the lanewise square root.
func (v Vec4) Sqrt() Vec4 {
	return Vec4{math.Sqrt(v[0]), math.Sqrt(v[1]), math.Sqrt(v[2]), math.Sqrt(v[3])}
}

// HSum returns the horizontal sum of all lanes.
func (v Vec4) HSum() float64 { return v[0] + v[1] + v[2] + v[3] }

// HMax returns the horizontal maximum of all lanes.
func (v Vec4) HMax() float64 {
	return math.Max(math.Max(v[0], v[1]), math.Max(v[2], v[3]))
}

// Dot returns the dot product of v and w across lanes.
func (v Vec4) Dot(w Vec4) float64 {
	return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] + v[3]*w[3]
}

// RotateL rotates lanes left by one: {a,b,c,d} -> {b,c,d,a}. On AVX2 this is
// a single permute; the abstraction layer emulates it on older extensions.
func (v Vec4) RotateL() Vec4 { return Vec4{v[1], v[2], v[3], v[0]} }

// RotateR rotates lanes right by one: {a,b,c,d} -> {d,a,b,c}.
func (v Vec4) RotateR() Vec4 { return Vec4{v[3], v[0], v[1], v[2]} }

// Blend selects lanewise from v where mask lane is nonzero, else from w.
// This is the branch-free select the cellwise kernel uses for per-phase
// conditionals.
func (v Vec4) Blend(w, mask Vec4) Vec4 {
	var r Vec4
	for i := 0; i < Width; i++ {
		if mask[i] != 0 {
			r[i] = v[i]
		} else {
			r[i] = w[i]
		}
	}
	return r
}

// CmpGT returns a mask with lanes set to 1 where v > w, else 0.
func (v Vec4) CmpGT(w Vec4) Vec4 {
	var r Vec4
	for i := 0; i < Width; i++ {
		if v[i] > w[i] {
			r[i] = 1
		}
	}
	return r
}

// CmpGE returns a mask with lanes set to 1 where v >= w, else 0.
func (v Vec4) CmpGE(w Vec4) Vec4 {
	var r Vec4
	for i := 0; i < Width; i++ {
		if v[i] >= w[i] {
			r[i] = 1
		}
	}
	return r
}

// AnyGT reports whether any lane of v is greater than the scalar x.
func (v Vec4) AnyGT(x float64) bool {
	return v[0] > x || v[1] > x || v[2] > x || v[3] > x
}

// AllZero reports whether every lane is exactly zero.
func (v Vec4) AllZero() bool {
	return v[0] == 0 && v[1] == 0 && v[2] == 0 && v[3] == 0
}

// Clamp returns v with each lane clamped to [lo, hi].
func (v Vec4) Clamp(lo, hi float64) Vec4 {
	var r Vec4
	for i := 0; i < Width; i++ {
		r[i] = math.Min(math.Max(v[i], lo), hi)
	}
	return r
}

// RSqrt returns the lanewise fast inverse square root using the Lomont
// bit-trick with one Newton-Raphson refinement step, matching the paper's
// replacement of inverse square roots in vector normalizations. Accuracy
// after one refinement is ~0.2%; callers needing full precision refine once
// more (RSqrtRefined).
func (v Vec4) RSqrt() Vec4 {
	return Vec4{FastRSqrt(v[0]), FastRSqrt(v[1]), FastRSqrt(v[2]), FastRSqrt(v[3])}
}

// RSqrtRefined is RSqrt with a second Newton-Raphson step (~1e-6 relative
// error), used where the kernels need near-exact normalization.
func (v Vec4) RSqrtRefined() Vec4 {
	return Vec4{FastRSqrt2(v[0]), FastRSqrt2(v[1]), FastRSqrt2(v[2]), FastRSqrt2(v[3])}
}

// FastRSqrt computes an approximate 1/sqrt(x) for x > 0 using the Lomont
// magic-constant method on the 64-bit float representation with one
// Newton-Raphson iteration.
func FastRSqrt(x float64) float64 {
	i := math.Float64bits(x)
	i = 0x5FE6EB50C7B537A9 - (i >> 1)
	y := math.Float64frombits(i)
	// One Newton-Raphson step: y <- y*(1.5 - 0.5*x*y*y).
	y = y * (1.5 - 0.5*x*y*y)
	return y
}

// FastRSqrt2 is FastRSqrt with a second Newton-Raphson refinement.
func FastRSqrt2(x float64) float64 {
	y := FastRSqrt(x)
	return y * (1.5 - 0.5*x*y*y)
}
