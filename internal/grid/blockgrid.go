package grid

import "fmt"

// BlockGrid describes a static domain decomposition into a regular
// PX×PY×PZ arrangement of equally sized blocks, each BX×BY×BZ cells. This
// mirrors waLBerla's block structure: the decomposition is computed once at
// startup and each process then only knows about its own and neighboring
// blocks.
type BlockGrid struct {
	PX, PY, PZ int     // blocks per axis
	BX, BY, BZ int     // cells per block per axis
	Periodic   [3]bool // domain periodicity per axis
}

// NewBlockGrid validates and returns a block grid.
func NewBlockGrid(px, py, pz, bx, by, bz int, periodic [3]bool) (*BlockGrid, error) {
	if px <= 0 || py <= 0 || pz <= 0 {
		return nil, fmt.Errorf("grid: nonpositive block counts %dx%dx%d", px, py, pz)
	}
	if bx <= 0 || by <= 0 || bz <= 0 {
		return nil, fmt.Errorf("grid: nonpositive block sizes %dx%dx%d", bx, by, bz)
	}
	return &BlockGrid{PX: px, PY: py, PZ: pz, BX: bx, BY: by, BZ: bz, Periodic: periodic}, nil
}

// NumBlocks returns the total number of blocks (= ranks).
func (bg *BlockGrid) NumBlocks() int { return bg.PX * bg.PY * bg.PZ }

// GlobalCells returns the global domain extents in cells.
func (bg *BlockGrid) GlobalCells() (nx, ny, nz int) {
	return bg.PX * bg.BX, bg.PY * bg.BY, bg.PZ * bg.BZ
}

// Coords returns the block coordinates of rank r (x fastest).
func (bg *BlockGrid) Coords(r int) (bx, by, bz int) {
	bx = r % bg.PX
	by = (r / bg.PX) % bg.PY
	bz = r / (bg.PX * bg.PY)
	return
}

// Rank returns the rank owning block (bx,by,bz).
func (bg *BlockGrid) Rank(bx, by, bz int) int {
	return (bz*bg.PY+by)*bg.PX + bx
}

// Origin returns the global cell coordinates of rank r's first interior cell.
func (bg *BlockGrid) Origin(r int) (ox, oy, oz int) {
	bx, by, bz := bg.Coords(r)
	return bx * bg.BX, by * bg.BY, bz * bg.BZ
}

// Neighbor returns the rank adjacent to r across face, and whether such a
// neighbor exists. Across periodic axes the neighbor wraps; across
// non-periodic axes boundary faces have no neighbor (boundary conditions
// apply there instead).
func (bg *BlockGrid) Neighbor(r int, face Face) (int, bool) {
	bx, by, bz := bg.Coords(r)
	p := [3]int{bg.PX, bg.PY, bg.PZ}
	c := [3]int{bx, by, bz}
	ax := face.Axis()
	if face.IsMin() {
		c[ax]--
	} else {
		c[ax]++
	}
	if c[ax] < 0 || c[ax] >= p[ax] {
		if !bg.Periodic[ax] {
			return -1, false
		}
		c[ax] = (c[ax] + p[ax]) % p[ax]
	}
	n := bg.Rank(c[0], c[1], c[2])
	if n == r && p[ax] == 1 {
		// Self-neighbor on a periodic axis with a single block: the
		// local periodic boundary condition handles it without
		// messages.
		return r, true
	}
	return n, true
}

// BlockBCs derives the per-face boundary set for rank r from the domain
// boundary set: faces with a communication neighbor get BCNone (their ghost
// layers are filled by halo exchange), except single-block periodic axes
// which keep the local periodic condition.
func (bg *BlockGrid) BlockBCs(r int, domain BoundarySet) BoundarySet {
	var out BoundarySet
	for f := Face(0); f < NumFaces; f++ {
		n, ok := bg.Neighbor(r, f)
		switch {
		case !ok:
			out[f] = domain[f] // physical boundary
		case n == r:
			out[f] = BC{Kind: BCPeriodic} // single-block periodic axis
		default:
			out[f] = BC{Kind: BCNone} // interior: halo exchange
		}
	}
	return out
}
