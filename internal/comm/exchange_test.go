package comm

import (
	"sync"
	"testing"

	"repro/internal/grid"
)

// globalValue gives a unique deterministic value for global cell (c,x,y,z)
// with wrapping applied per periodic axis.
func globalValue(c, x, y, z, nx, ny, nz int, periodic [3]bool) float64 {
	wrap := func(v, n int, per bool) (int, bool) {
		if v < 0 {
			if !per {
				return 0, false
			}
			return v + n, true
		}
		if v >= n {
			if !per {
				return 0, false
			}
			return v - n, true
		}
		return v, true
	}
	var ok bool
	if x, ok = wrap(x, nx, periodic[0]); !ok {
		return -1
	}
	if y, ok = wrap(y, ny, periodic[1]); !ok {
		return -1
	}
	if z, ok = wrap(z, nz, periodic[2]); !ok {
		return -1
	}
	return float64(c*1000000 + z*10000 + y*100 + x)
}

// runExchange decomposes a domain, fills each block with the global pattern,
// exchanges ghosts on all ranks concurrently, and verifies every ghost cell
// against the wrapped global pattern.
func runExchange(t *testing.T, px, py, pz, bx, by, bz, ncomp int, periodic [3]bool, lay grid.Layout) {
	t.Helper()
	bg, err := grid.NewBlockGrid(px, py, pz, bx, by, bz, periodic)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny, nz := bg.GlobalCells()
	w := NewWorld(bg)

	fields := make([]*grid.Field, bg.NumBlocks())
	for r := range fields {
		f := grid.NewField(bx, by, bz, ncomp, 1, lay)
		ox, oy, oz := bg.Origin(r)
		f.Interior(func(x, y, z int) {
			for c := 0; c < ncomp; c++ {
				f.Set(c, x, y, z, globalValue(c, ox+x, oy+y, oz+z, nx, ny, nz, periodic))
			}
		})
		fields[r] = f
	}

	domain := grid.AllPeriodic()
	for ax := 0; ax < 3; ax++ {
		if !periodic[ax] {
			domain[grid.Face(2*ax)] = grid.BC{Kind: grid.BCNeumann}
			domain[grid.Face(2*ax+1)] = grid.BC{Kind: grid.BCNeumann}
		}
	}

	var wg sync.WaitGroup
	for r := 0; r < bg.NumBlocks(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w.ExchangeGhosts(r, fields[r], TagPhi, bg.BlockBCs(r, domain))
		}(r)
	}
	wg.Wait()

	for r := 0; r < bg.NumBlocks(); r++ {
		f := fields[r]
		ox, oy, oz := bg.Origin(r)
		for c := 0; c < ncomp; c++ {
			for z := -1; z <= bz; z++ {
				for y := -1; y <= by; y++ {
					for x := -1; x <= bx; x++ {
						want := globalValue(c, ox+x, oy+y, oz+z, nx, ny, nz, periodic)
						if want < 0 {
							continue // physical Neumann boundary; pattern undefined
						}
						if got := f.At(c, x, y, z); got != want {
							t.Fatalf("rank %d cell c=%d (%d,%d,%d): got %v want %v",
								r, c, x, y, z, got, want)
						}
					}
				}
			}
		}
	}
}

func TestExchangeFullyPeriodic(t *testing.T) {
	runExchange(t, 2, 2, 2, 4, 4, 4, 2, [3]bool{true, true, true}, grid.SoA)
}

func TestExchangeMixedBoundaries(t *testing.T) {
	runExchange(t, 2, 2, 2, 4, 3, 5, 1, [3]bool{true, true, false}, grid.AoS)
}

func TestExchangeSingleBlockPeriodic(t *testing.T) {
	runExchange(t, 1, 1, 1, 5, 5, 5, 3, [3]bool{true, true, true}, grid.SoA)
}

func TestExchangeAnisotropicDecomposition(t *testing.T) {
	runExchange(t, 4, 1, 2, 3, 8, 4, 2, [3]bool{true, true, false}, grid.SoA)
}

func TestExchangeTwoBlocksPeriodicAxis(t *testing.T) {
	// Two blocks on a periodic axis: each rank sends two messages to the
	// same neighbor, arriving at different faces.
	runExchange(t, 2, 1, 1, 4, 4, 4, 1, [3]bool{true, true, true}, grid.AoS)
}

func TestOverlappedExchangeMatchesBlocking(t *testing.T) {
	bg, _ := grid.NewBlockGrid(2, 2, 1, 4, 4, 4, [3]bool{true, true, false})
	w := NewWorld(bg)
	domain := grid.AllPeriodic()
	domain[grid.ZMin] = grid.BC{Kind: grid.BCNeumann}
	domain[grid.ZMax] = grid.BC{Kind: grid.BCNeumann}

	mkFields := func() []*grid.Field {
		fs := make([]*grid.Field, bg.NumBlocks())
		for r := range fs {
			f := grid.NewField(4, 4, 4, 2, 1, grid.SoA)
			ox, oy, oz := bg.Origin(r)
			f.Interior(func(x, y, z int) {
				for c := 0; c < 2; c++ {
					f.Set(c, x, y, z, float64(c*100000+(ox+x)*1000+(oy+y)*10+(oz+z)))
				}
			})
			fs[r] = f
		}
		return fs
	}

	blocking := mkFields()
	overlapped := mkFields()

	var wg sync.WaitGroup
	for r := 0; r < bg.NumBlocks(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			bcs := bg.BlockBCs(r, domain)
			w.ExchangeGhosts(r, blocking[r], TagPhi, bcs)
			p := w.StartExchange(r, overlapped[r], TagMu, bcs)
			p.Finish()
		}(r)
	}
	wg.Wait()

	for r := range blocking {
		for i := range blocking[r].Data {
			if blocking[r].Data[i] != overlapped[r].Data[i] {
				t.Fatalf("rank %d index %d: blocking %v != overlapped %v",
					r, i, blocking[r].Data[i], overlapped[r].Data[i])
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	bg, _ := grid.NewBlockGrid(2, 1, 1, 4, 4, 4, [3]bool{true, false, false})
	w := NewWorld(bg)
	fields := []*grid.Field{
		grid.NewField(4, 4, 4, 1, 1, grid.SoA),
		grid.NewField(4, 4, 4, 1, 1, grid.SoA),
	}
	domain := grid.AllNeumann()
	domain[grid.XMin] = grid.BC{Kind: grid.BCPeriodic}
	domain[grid.XMax] = grid.BC{Kind: grid.BCPeriodic}
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w.ExchangeGhosts(r, fields[r], TagPhi, bg.BlockBCs(r, domain))
		}(r)
	}
	wg.Wait()
	s := w.RankStats(0)
	if s.Messages != 2 {
		t.Errorf("rank 0 sent %d messages, want 2", s.Messages)
	}
	// Each x-face message carries 1 comp * 1 ghost * 4*4 cells = 16 values.
	if s.Bytes != 2*16*8 {
		t.Errorf("rank 0 sent %d bytes, want %d", s.Bytes, 2*16*8)
	}
	w.ResetStats()
	if w.RankStats(0).Messages != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestBarrierAndReduce(t *testing.T) {
	bg, _ := grid.NewBlockGrid(2, 2, 1, 2, 2, 2, [3]bool{})
	w := NewWorld(bg)
	n := w.NumRanks()

	sums := make([][]float64, n)
	maxs := make([][]float64, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := []float64{float64(r + 1), 1}
			w.AllReduceSum(r, v)
			sums[r] = v
			m := []float64{float64(r), -float64(r)}
			w.AllReduceMax(r, m)
			maxs[r] = m
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if sums[r][0] != 10 || sums[r][1] != 4 {
			t.Errorf("rank %d sum = %v, want [10 4]", r, sums[r])
		}
		if maxs[r][0] != 3 || maxs[r][1] != 0 {
			t.Errorf("rank %d max = %v, want [3 0]", r, maxs[r])
		}
	}
}

func TestTagString(t *testing.T) {
	if TagPhi.String() != "phi" || TagMu.String() != "mu" || TagAux.String() != "aux" {
		t.Error("tag names wrong")
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{Pack: 1, Unpack: 2, Transfer: 3, Wait: 4}
	if s.Total() != 10 {
		t.Errorf("Total = %v", s.Total())
	}
	var acc Stats
	acc.Add(s)
	acc.Add(s)
	if acc.Pack != 2 || acc.Wait != 8 {
		t.Error("Add wrong")
	}
}
