// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): the vectorization-strategy comparison (Fig. 5), the
// optimization ladder (Fig. 6), intranode scaling (Fig. 7), communication
// hiding (Fig. 8), weak scaling on the three machines (Fig. 9), and the
// roofline/in-core analysis of §5.1.1. Single-core and intranode numbers
// are measured live from the Go kernels; extreme-scale curves come from the
// calibrated analytic models in internal/perfmodel (see DESIGN.md for the
// substitution rationale).
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/perfmodel"
	"repro/internal/solver"
)

// Scenarios benchmarked throughout §5.1.
var Scenarios = []solver.Scenario{solver.ScenarioInterface, solver.ScenarioLiquid, solver.ScenarioSolid}

// benchFields prepares a single-block field set filled with the scenario.
func benchFields(edge int, sc solver.Scenario) (*kernels.Fields, *kernels.Ctx, grid.BoundarySet, error) {
	bg, err := grid.NewBlockGrid(1, 1, 1, edge, edge, edge, [3]bool{true, true, false})
	if err != nil {
		return nil, nil, grid.BoundarySet{}, err
	}
	p := core.DefaultParams()
	p.Temp.Z0 = float64(edge) / 2 * p.Dx
	sim, err := solver.New(solver.Config{Params: p, BG: bg, Variant: kernels.VarShortcut})
	if err != nil {
		return nil, nil, grid.BoundarySet{}, err
	}
	if err := sim.InitScenario(sc); err != nil {
		return nil, nil, grid.BoundarySet{}, err
	}
	f := sim.RankFields(0)
	ctx := &kernels.Ctx{P: p}
	bcs := bg.BlockBCs(0, grid.DirectionalSolidification([]float64{1, 0, 0, 0}))
	return f, ctx, bcs, nil
}

// MeasurePhiStrategy times the φ-kernel under a Fig. 5 vectorization
// strategy and returns MLUP/s.
func MeasurePhiStrategy(strategy kernels.PhiStrategy, sc solver.Scenario, edge, steps int) (float64, error) {
	f, ctx, bcs, err := benchFields(edge, sc)
	if err != nil {
		return 0, err
	}
	scch := kernels.NewScratch(edge, edge)
	// Warm up once (also produces a valid φdst for subsequent sweeps).
	kernels.PhiSweepStrategy(ctx, f, scch, strategy)
	bcs.Apply(f.PhiDst)
	best := 0.0
	for trial := 0; trial < benchTrials; trial++ {
		t0 := time.Now()
		for i := 0; i < steps; i++ {
			kernels.PhiSweepStrategy(ctx, f, scch, strategy)
		}
		if r := mlups(edge, steps, time.Since(t0)); r > best {
			best = r
		}
	}
	return best, nil
}

// MeasurePhiVariant times the φ-kernel at one optimization-ladder rung.
func MeasurePhiVariant(v kernels.Variant, sc solver.Scenario, edge, steps int) (float64, error) {
	f, ctx, bcs, err := benchFields(edge, sc)
	if err != nil {
		return 0, err
	}
	scch := kernels.NewScratch(edge, edge)
	kernels.PhiSweep(ctx, f, scch, v)
	bcs.Apply(f.PhiDst)
	best := 0.0
	for trial := 0; trial < benchTrials; trial++ {
		t0 := time.Now()
		for i := 0; i < steps; i++ {
			kernels.PhiSweep(ctx, f, scch, v)
		}
		if r := mlups(edge, steps, time.Since(t0)); r > best {
			best = r
		}
	}
	return best, nil
}

// MeasureMuVariant times the µ-kernel at one optimization-ladder rung.
func MeasureMuVariant(v kernels.Variant, sc solver.Scenario, edge, steps int) (float64, error) {
	f, ctx, bcs, err := benchFields(edge, sc)
	if err != nil {
		return 0, err
	}
	scch := kernels.NewScratch(edge, edge)
	// One φ sweep so that φdst ≠ φsrc at the front (∂φ/∂t ≠ 0).
	kernels.PhiSweep(ctx, f, scch, kernels.VarShortcut)
	bcs.Apply(f.PhiDst)
	kernels.MuSweep(ctx, f, scch, v) // warm-up
	best := 0.0
	for trial := 0; trial < benchTrials; trial++ {
		t0 := time.Now()
		for i := 0; i < steps; i++ {
			kernels.MuSweep(ctx, f, scch, v)
		}
		if r := mlups(edge, steps, time.Since(t0)); r > best {
			best = r
		}
	}
	return best, nil
}

// benchTrials is the best-of-N trial count shielding the single-core
// measurements from scheduler noise.
const benchTrials = 3

func mlups(edge, steps int, el time.Duration) float64 {
	cells := float64(edge * edge * edge)
	return cells * float64(steps) / el.Seconds() / 1e6
}

// Fig5 regenerates the vectorization-strategy comparison: MLUP/s of the
// φ-kernel for cellwise / cellwise-with-shortcuts / four-cell on the three
// domain compositions (paper: block size 60³ on one SuperMUC core).
func Fig5(w io.Writer, edge, steps int) error {
	fmt.Fprintf(w, "Figure 5: phi-kernel vectorization strategies, block %d^3 (MLUP/s)\n", edge)
	fmt.Fprintf(w, "%-28s %12s %12s %12s\n", "strategy", "interface", "liquid", "solid")
	strategies := []kernels.PhiStrategy{kernels.StratCellwise, kernels.StratCellwiseShortcut, kernels.StratFourCell}
	for _, st := range strategies {
		fmt.Fprintf(w, "%-28s", st)
		for _, sc := range Scenarios {
			v, err := MeasurePhiStrategy(st, sc, edge, steps)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.2f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(paper: cellwise-with-shortcuts fastest in all three compositions)")
	return nil
}

// Fig6 regenerates the optimization ladder for both kernels across the
// three compositions, and reports the end-to-end speedup over the emulated
// general-purpose code.
func Fig6(w io.Writer, edge, steps int) error {
	for _, kernel := range []string{"phi", "mu"} {
		fmt.Fprintf(w, "Figure 6 (%s-kernel): optimization ladder, block %d^3 (MLUP/s)\n", kernel, edge)
		fmt.Fprintf(w, "%-32s %12s %12s %12s\n", "variant", "interface", "liquid", "solid")
		var base, best float64
		for v := kernels.VarGeneral; v < kernels.NumVariants; v++ {
			fmt.Fprintf(w, "%-32s", v)
			for i, sc := range Scenarios {
				var rate float64
				var err error
				if kernel == "phi" {
					rate, err = MeasurePhiVariant(v, sc, edge, steps)
				} else {
					rate, err = MeasureMuVariant(v, sc, edge, steps)
				}
				if err != nil {
					return err
				}
				if i == 0 {
					if v == kernels.VarGeneral {
						base = rate
					}
					if v == kernels.VarShortcut {
						best = rate
					}
				}
				fmt.Fprintf(w, " %12.2f", rate)
			}
			fmt.Fprintln(w)
		}
		if base > 0 {
			fmt.Fprintf(w, "speedup over general-purpose code (interface): %.1fx\n\n", best/base)
		}
	}
	return nil
}

// Fig7 regenerates the intranode µ-kernel scaling: per-core MLUP/s for 1..
// maxCores worker ranks with one block per rank, for block sizes 40³ and
// 20³, measured live, next to the SuperMUC analytic model. par is the
// intra-block sweep parallelism per solver (1 reproduces the paper's
// one-rank-per-core setup; 0 selects GOMAXPROCS).
func Fig7(w io.Writer, maxCores, steps, par int) error {
	fmt.Fprintln(w, "Figure 7: intranode scaling of the mu-kernel (MLUP/s per core)")
	for _, edge := range []int{40, 20} {
		fmt.Fprintf(w, "block %d^3:\n%8s %16s %16s\n", edge, "cores", "measured", "model(SuperMUC)")
		model := perfmodel.IntranodeScaling(perfmodel.SuperMUC(), edge, maxCores)
		for c := 1; c <= maxCores; c++ {
			rate, err := measureIntranode(c, edge, steps, par)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%8d %16.2f %16.2f\n", c, rate, model[c-1].MLUPsPerCore)
		}
	}
	return nil
}

func measureIntranode(ranks, edge, steps, par int) (float64, error) {
	bg, err := grid.NewBlockGrid(ranks, 1, 1, edge, edge, edge, [3]bool{true, true, false})
	if err != nil {
		return 0, err
	}
	p := core.DefaultParams()
	p.Temp.Z0 = float64(edge) / 2 * p.Dx
	sim, err := solver.New(solver.Config{Params: p, BG: bg, Variant: kernels.VarShortcut, Parallelism: par})
	if err != nil {
		return 0, err
	}
	defer sim.Close()
	if err := sim.InitScenario(solver.ScenarioInterface); err != nil {
		return 0, err
	}
	m := sim.RunMeasured(steps)
	return m.MuKernelMLUPs(), nil
}

// ParallelScaling measures whole-timestep MLUP/s of a single edge³ block at
// increasing intra-block sweep parallelism — the live counterpart of
// BenchmarkParallelScaling for the benchfig CLI.
func ParallelScaling(w io.Writer, edge, steps int, workers []int) error {
	fmt.Fprintf(w, "Intra-block parallel sweep scaling, one %d^3 block, interface scenario (MLUP/s)\n", edge)
	fmt.Fprintf(w, "%8s %12s %10s\n", "workers", "MLUP/s", "speedup")
	base := 0.0
	for _, nw := range workers {
		bg, err := grid.NewBlockGrid(1, 1, 1, edge, edge, edge, [3]bool{true, true, false})
		if err != nil {
			return err
		}
		p := core.DefaultParams()
		p.Temp.Z0 = float64(edge) / 2 * p.Dx
		sim, err := solver.New(solver.Config{Params: p, BG: bg, Variant: kernels.VarShortcut, Parallelism: nw})
		if err != nil {
			return err
		}
		if err := sim.InitScenario(solver.ScenarioInterface); err != nil {
			sim.Close()
			return err
		}
		sim.Run(1) // warm-up
		m := sim.RunMeasured(steps)
		sim.Close()
		rate := m.MLUPs()
		if base == 0 {
			base = rate
		}
		fmt.Fprintf(w, "%8d %12.2f %9.2fx\n", nw, rate, rate/base)
	}
	return nil
}

// Fig8 regenerates the communication-hiding study: per-timestep time in the
// φ and µ communication routines with and without overlap. The first block
// reports live measurements of the in-process communicator; the second the
// analytic SuperMUC model for 2⁵..2¹² cores (block 60³, Fig. 8's setup).
func Fig8(w io.Writer, edge, steps, maxRanks, par int) error {
	fmt.Fprintln(w, "Figure 8: time spent in communication per timestep")
	fmt.Fprintf(w, "measured in-process (block %d^3 per rank), ms per step:\n", edge)
	fmt.Fprintf(w, "%8s %14s %14s %14s %14s\n", "ranks", "phi overlap", "phi blocking", "mu overlap", "mu blocking")
	for ranks := 2; ranks <= maxRanks; ranks *= 2 {
		var row [4]float64
		for i, mode := range []solver.OverlapMode{solver.OverlapBoth, solver.OverlapNone} {
			phiMS, muMS, err := measureComm(ranks, edge, steps, mode, par)
			if err != nil {
				return err
			}
			row[i] = phiMS
			row[2+i] = muMS
		}
		fmt.Fprintf(w, "%8d %14.3f %14.3f %14.3f %14.3f\n", ranks, row[0], row[1], row[2], row[3])
	}

	m := perfmodel.SuperMUC()
	fmt.Fprintf(w, "\nSuperMUC model (block 60^3), ms per step:\n")
	fmt.Fprintf(w, "%8s %14s %14s %14s %14s\n", "cores", "phi overlap", "phi blocking", "mu overlap", "mu blocking")
	for _, p := range perfmodel.PowersOfTwo(5, 12) {
		base := perfmodel.CommScenario{Machine: m, BlockEdge: 60, Cores: p}
		ov := base
		ov.Overlap = true
		fmt.Fprintf(w, "%8d %14.3f %14.3f %14.3f %14.3f\n", p,
			1e3*perfmodel.CommTime(ov, true), 1e3*perfmodel.CommTime(base, true),
			1e3*perfmodel.CommTime(ov, false), 1e3*perfmodel.CommTime(base, false))
	}
	fmt.Fprintln(w, "(paper: overlap reduces both; phi costs more than mu; mu-only overlap is the production choice)")
	return nil
}

func measureComm(ranks, edge, steps int, mode solver.OverlapMode, par int) (phiMS, muMS float64, err error) {
	bg, err := grid.NewBlockGrid(ranks, 1, 1, edge, edge, edge, [3]bool{true, true, false})
	if err != nil {
		return 0, 0, err
	}
	p := core.DefaultParams()
	p.Temp.Z0 = float64(edge) / 2 * p.Dx
	sim, err := solver.New(solver.Config{Params: p, BG: bg, Variant: kernels.VarShortcut, Overlap: mode, Parallelism: par})
	if err != nil {
		return 0, 0, err
	}
	defer sim.Close()
	if err := sim.InitScenario(solver.ScenarioInterface); err != nil {
		return 0, 0, err
	}
	m := sim.RunMeasured(steps)
	perStep := 1e3 / float64(steps*ranks)
	phiMS = m.CommPhi.Total().Seconds() * perStep
	muMS = m.CommMu.Total().Seconds() * perStep
	return phiMS, muMS, nil
}

// Fig9 regenerates the weak-scaling curves of the three machines from the
// calibrated analytic models (per-core MLUP/s of the full timestep).
func Fig9(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: weak scaling, MLUP/s per core (analytic machine models)")
	cases := []struct {
		m        *perfmodel.Machine
		lo, hi   int
		scenName []string
		scens    []int
	}{
		{perfmodel.SuperMUC(), 0, 15, []string{"interface", "liquid", "solid"},
			[]int{perfmodel.ScnInterface, perfmodel.ScnLiquid, perfmodel.ScnSolid}},
		{perfmodel.Hornet(), 5, 13, []string{"interface"}, []int{perfmodel.ScnInterface}},
		{perfmodel.JUQUEEN(), 9, 18, []string{"interface"}, []int{perfmodel.ScnInterface}},
	}
	for _, c := range cases {
		fmt.Fprintf(w, "%s (cores %d..%d):\n", c.m.Name, 1<<uint(c.lo), 1<<uint(c.hi))
		fmt.Fprintf(w, "%10s", "cores")
		for _, n := range c.scenName {
			fmt.Fprintf(w, " %12s", n)
		}
		fmt.Fprintln(w)
		cores := perfmodel.PowersOfTwo(c.lo, c.hi)
		curves := make([][]perfmodel.WeakScalingPoint, len(c.scens))
		for i, s := range c.scens {
			curves[i] = perfmodel.WeakScaling(c.m, s, 60, cores)
		}
		for pi, p := range cores {
			fmt.Fprintf(w, "%10d", p)
			for i := range c.scens {
				fmt.Fprintf(w, " %12.3f", curves[i][pi].MLUPsPerCore)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "parallel efficiency (interface): %.1f%%\n\n", 100*perfmodel.Efficiency(curves[0]))
	}
	fmt.Fprintln(w, "(paper: near-flat curves; SuperMUC/Hornet ~2-3.5, JUQUEEN ~0.2 per core)")
}

// Roofline reports the §5.1.1 analysis: the paper's published constants
// next to the model's derived quantities and the live single-core rates.
func Roofline(w io.Writer, edge, steps int) error {
	m := perfmodel.SuperMUC()
	r := perfmodel.NewRoofline(m.StreamBWNode, m.PeakFLOPsNode())
	muFlops := float64(perfmodel.MuKernelOps.Total())

	fmt.Fprintln(w, "Section 5.1.1 roofline / in-core analysis (SuperMUC node)")
	fmt.Fprintf(w, "  STREAM bandwidth:            %.1f GiB/s\n", m.StreamBWNode/(1<<30))
	fmt.Fprintf(w, "  bytes per mu-update:         %d B (half-reuse cache assumption)\n", perfmodel.MuBytesPerLUP)
	fmt.Fprintf(w, "  FLOPs per mu-update:         %.0f (paper: 1384)\n", muFlops)
	fmt.Fprintf(w, "  arithmetic intensity:        %.2f FLOP/B (paper: ~2)\n",
		perfmodel.ArithmeticIntensity(muFlops, perfmodel.MuBytesPerLUP))
	fmt.Fprintf(w, "  memory-bound ceiling:        %.1f MLUP/s (paper: 126.3)\n",
		r.MemoryBoundMLUPs(perfmodel.MuBytesPerLUP))
	fmt.Fprintf(w, "  measured (paper, per core):  4.2 MLUP/s = %.1f GFLOP/s = %.0f%% core peak (paper: 27%%)\n",
		perfmodel.AchievedGFLOPs(4.2, muFlops),
		100*perfmodel.FractionOfPeak(4.2, muFlops, m.PeakFLOPsCore()))
	fmt.Fprintf(w, "  IACA-style in-core bound:    %.0f%% peak (paper: <=43%%, add/mul imbalance + div latency)\n",
		100*perfmodel.SandyBridge.PeakFraction(perfmodel.MuKernelOps))

	phiRate, err := MeasurePhiVariant(kernels.VarStag, solver.ScenarioInterface, edge, steps)
	if err != nil {
		return err
	}
	muRate, err := MeasureMuVariant(kernels.VarStag, solver.ScenarioInterface, edge, steps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  this machine (Go, %d^3):      phi %.2f MLUP/s, mu %.2f MLUP/s (no shortcuts)\n",
		edge, phiRate, muRate)
	return nil
}
