package solver

import (
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
)

// Step-phase telemetry: after every successful step the solver derives one
// obs.StepRecord from counters the hot path already maintains (per-rank
// kernel times, the World's per-tag comm stats) and pushes it into a
// bounded ring. Sampling happens at the step boundary only, on the
// stepping goroutine, with no locks beyond the World's existing per-rank
// stats mutexes and no allocation — a simulation runs bit-identically and
// within noise of the same speed with telemetry on or off. Config.
// DisableStepTelemetry turns the capture off entirely.

// captureStep folds the counter deltas of the step that just completed
// into a StepRecord. Called on the stepping goroutine right after the
// step counter advanced; start is the wall clock taken before the step's
// sweeps began.
func (s *Sim) captureStep(start time.Time) {
	if s.telem == nil {
		return
	}
	wall := time.Since(start)
	var phi, mu time.Duration
	var cs comm.Stats
	for _, r := range s.ranks {
		phi += r.phiKernelTime
		mu += r.muKernelTime
		cs.Add(s.World.RankTagStats(r.id, comm.TagPhi))
		cs.Add(s.World.RankTagStats(r.id, comm.TagMu))
	}
	rec := obs.StepRecord{
		Step:           s.step,
		Start:          start.UnixNano(),
		Wall:           wall,
		PhiKernel:      phi - s.prevPhi,
		MuKernel:       mu - s.prevMu,
		HaloPack:       cs.Pack - s.prevComm.Pack,
		HaloTransfer:   cs.Transfer - s.prevComm.Transfer,
		HaloWait:       cs.Wait - s.prevComm.Wait,
		HaloUnpack:     cs.Unpack - s.prevComm.Unpack,
		Sched:          s.pendSched,
		ActiveFraction: s.ActiveFraction(),
		HaloBytes:      int64(cs.Bytes - s.prevComm.Bytes),
		HaloSkipped:    int64(cs.Skipped - s.prevComm.Skipped),
	}
	s.prevPhi, s.prevMu, s.prevComm = phi, mu, cs
	s.pendSched = 0
	s.telem.Push(rec)
	s.telemTot.Add(rec)
}

// addCkptTime charges a checkpoint write to the step it followed: the
// cost folds into the record just pushed (checkpoints happen after the
// step, before the next one starts) and into the running totals.
func (s *Sim) addCkptTime(d time.Duration) {
	if s.telem == nil {
		return
	}
	if last := s.telem.Last(); last != nil {
		last.Ckpt += d
	}
	s.telemTot.Ckpt += d
}

// StepRecords copies the retained per-step phase records, oldest first,
// into dst (grown as needed) and returns it. The ring keeps the last
// obs.DefaultRingCap steps. Must be called from the stepping goroutine at
// a step boundary — the job daemon's OnStep hook satisfies both. Returns
// dst[:0] when telemetry is disabled.
func (s *Sim) StepRecords(dst []obs.StepRecord) []obs.StepRecord {
	if s.telem == nil {
		return dst[:0]
	}
	return s.telem.Snapshot(dst)
}

// TelemetryTotals returns the cumulative phase totals since the
// simulation started (unaffected by ResetMetrics; zero when telemetry is
// disabled). Same calling discipline as StepRecords.
func (s *Sim) TelemetryTotals() obs.StepTotals {
	return s.telemTot
}
