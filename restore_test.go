package phasefield

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// Checkpoint → Restore must reproduce the simulation state up to the
// single-precision round trip, and the restored simulation must continue
// identically (within float32 perturbation) to the original.
func TestCheckpointRestoreContinues(t *testing.T) {
	cfg := DefaultConfig(12, 12, 16)
	cfg.PX = 2
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		t.Fatal(err)
	}
	sim.Run(5)

	path := filepath.Join(t.TempDir(), "mid.pfcp")
	if err := sim.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(path, Config{Variant: cfg.Variant, Overlap: cfg.Overlap})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Step() != 5 {
		t.Errorf("restored step = %d", restored.Step())
	}
	if restored.Time() != sim.Time() {
		t.Errorf("restored time = %g, want %g", restored.Time(), sim.Time())
	}

	// State agreement at restore time (float32 round trip).
	a := sim.GlobalPhi()
	b := restored.GlobalPhi()
	if ok, maxd := a.InteriorEqual(b, 1e-6); !ok {
		t.Fatalf("restored φ differs by %g", maxd)
	}

	// Both continue; trajectories stay close over a few steps.
	sim.Run(5)
	restored.Run(5)
	a = sim.GlobalPhi()
	b = restored.GlobalPhi()
	if ok, maxd := a.InteriorEqual(b, 1e-4); !ok {
		t.Errorf("trajectories diverged beyond float32 seeding: %g", maxd)
	}
}

func TestRestoreRejectsMissingFile(t *testing.T) {
	if _, err := Restore("/nonexistent/x.pfcp", Config{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteVTK(t *testing.T) {
	sim, err := New(DefaultConfig(8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteVTK(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DIMENSIONS 8 8 8", "SCALARS Al float 1", "SCALARS Liquid float 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
}
