// Package core defines the thermodynamically consistent grand-potential
// phase-field model of the paper (§2): the coupled evolution equations for
// the vector of order parameters φ (four phases) and the vector of chemical
// potentials µ (two reduced components), the gradient and obstacle energy
// densities, the Moelans interpolation functions, the driving force derived
// from parabolic grand potentials, the anti-trapping current, the frozen
// temperature gradient of directional solidification, and the Gibbs-simplex
// projection. The numerical kernels in internal/kernels evaluate these
// definitions cell by cell.
package core

import (
	"fmt"
	"math"

	"repro/internal/thermo"
)

// NPhases is the number of order parameters: three solids plus the liquid.
const NPhases = thermo.NPhases

// NRed is the number of reduced chemical potentials / concentrations.
const NRed = thermo.NRed

// Liquid is the phase index of the melt.
const Liquid = thermo.Liquid

// ObstaclePrefactor is the 16/π² factor of the multi-obstacle potential.
var ObstaclePrefactor = 16.0 / (math.Pi * math.Pi)

// ATPrefactor is the π/4 factor of the anti-trapping current (Eq. 4).
var ATPrefactor = math.Pi / 4.0

// Params collects all physical and numerical parameters of one simulation.
type Params struct {
	Dx float64 // lattice spacing
	Dt float64 // time step

	Eps float64 // interface width parameter ε
	Tau float64 // relaxation constant τ (uniform over phase pairs)

	// Gamma holds the pairwise interfacial energies γ_{αβ} (symmetric,
	// zero diagonal); GammaTriple is the third-order term suppressing
	// spurious third phases at two-phase interfaces.
	Gamma       [NPhases][NPhases]float64
	GammaTriple float64

	// Sys is the thermodynamic database (grand potentials etc.).
	Sys *thermo.System

	// D is the per-phase chemical diffusivity (same for both reduced
	// components); solids diffuse orders of magnitude slower than the
	// melt.
	D [NPhases]float64

	// AT scales the anti-trapping current; 1 enables the standard
	// coefficient, 0 disables the current entirely.
	AT float64

	// Temperature describes the frozen temperature gradient.
	Temp Temperature
}

// Temperature is the frozen-temperature ansatz of directional
// solidification: an analytic profile T(z,t) = T_E + G·(z·dx − Z0 − V·t)
// moving with velocity V along z. It is a function of z and t only, the
// property behind the paper's T(z) per-slice precomputation.
type Temperature struct {
	TE float64 // eutectic temperature
	G  float64 // gradient magnitude (temperature per length)
	V  float64 // pulling velocity (length per time)
	Z0 float64 // initial position of the eutectic isotherm (length units)
}

// At returns T(z,t) for the global cell index z.
func (tm *Temperature) At(z int, dx, t float64) float64 {
	return tm.TE + tm.G*(float64(z)*dx-tm.Z0-tm.V*t)
}

// DTdt returns ∂T/∂t (constant for the frozen gradient).
func (tm *Temperature) DTdt() float64 { return -tm.G * tm.V }

// DefaultParams returns the nondimensionalized production parameter set for
// the Ag-Al-Cu system (§2.1 uses the parameters of Hötzer et al.; these are
// the synthetic equivalents).
func DefaultParams() *Params {
	p := &Params{
		Dx:          1.0,
		Eps:         4.0,
		Tau:         1.0,
		GammaTriple: 10.0,
		Sys:         thermo.AgAlCu(),
		AT:          1.0,
		Temp: Temperature{
			TE: 1.0,
			G:  5e-3,
			V:  0.02,
			Z0: 8.0,
		},
	}
	for a := 0; a < NPhases; a++ {
		for b := 0; b < NPhases; b++ {
			if a != b {
				p.Gamma[a][b] = 1.0
			}
		}
	}
	// Liquid diffuses; solids are effectively frozen.
	p.D = [NPhases]float64{1e-4, 1e-4, 1e-4, 1.0}
	p.Dt = 0.8 * p.StableDt()
	return p
}

// StableDt estimates the explicit-Euler stability limit as the minimum of
// the diffusion limits of the two equations (each ~ dx²/(6·coefficient)).
func (p *Params) StableDt() float64 {
	gmax := 0.0
	for a := 0; a < NPhases; a++ {
		for b := 0; b < NPhases; b++ {
			if p.Gamma[a][b] > gmax {
				gmax = p.Gamma[a][b]
			}
		}
	}
	// φ equation: effective diffusivity ≈ 2γT/τ near the front.
	tMax := p.Temp.TE * 1.2
	dPhi := 2 * gmax * tMax / p.Tau
	// µ equation: max D.
	dMu := 0.0
	for a := 0; a < NPhases; a++ {
		if p.D[a] > dMu {
			dMu = p.D[a]
		}
	}
	lim := math.Min(p.Dx*p.Dx/(6*dPhi), p.Dx*p.Dx/(6*dMu))
	return lim
}

// Validate checks the parameter set.
func (p *Params) Validate() error {
	if p.Dx <= 0 || p.Dt <= 0 {
		return fmt.Errorf("core: nonpositive dx/dt")
	}
	if p.Eps <= 0 || p.Tau <= 0 {
		return fmt.Errorf("core: nonpositive eps/tau")
	}
	for a := 0; a < NPhases; a++ {
		if p.Gamma[a][a] != 0 {
			return fmt.Errorf("core: nonzero diagonal gamma[%d][%d]", a, a)
		}
		for b := a + 1; b < NPhases; b++ {
			if p.Gamma[a][b] != p.Gamma[b][a] {
				return fmt.Errorf("core: gamma not symmetric at (%d,%d)", a, b)
			}
			if p.Gamma[a][b] <= 0 {
				return fmt.Errorf("core: nonpositive gamma[%d][%d]", a, b)
			}
		}
		if p.D[a] < 0 {
			return fmt.Errorf("core: negative diffusivity D[%d]", a)
		}
	}
	if p.Sys == nil {
		return fmt.Errorf("core: nil thermodynamic system")
	}
	if p.Dt > p.StableDt() {
		return fmt.Errorf("core: dt=%g exceeds stability limit %g", p.Dt, p.StableDt())
	}
	return p.Sys.Validate()
}
