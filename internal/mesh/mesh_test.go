package mesh

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

// sphereField builds a φ field whose phase-0 component is a smooth sphere
// indicator of radius r centered in the domain.
func sphereField(n int, r float64) *grid.Field {
	f := grid.NewField(n, n, n, 1, 1, grid.SoA)
	c := float64(n-1) / 2
	for z := -1; z <= n; z++ {
		for y := -1; y <= n; y++ {
			for x := -1; x <= n; x++ {
				d := math.Sqrt(sq(float64(x)-c) + sq(float64(y)-c) + sq(float64(z)-c))
				// Smooth profile: 1 inside, 0 outside, tanh across r.
				f.Set(0, x, y, z, 0.5*(1-math.Tanh(2*(d-r))))
			}
		}
	}
	return f
}

func sq(x float64) float64 { return x * x }

func TestVec3Ops(t *testing.T) {
	v := Vec3{1, 0, 0}
	w := Vec3{0, 1, 0}
	if v.Cross(w) != (Vec3{0, 0, 1}) {
		t.Error("cross product wrong")
	}
	if v.Add(w).Sub(w) != v {
		t.Error("add/sub wrong")
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-14 {
		t.Error("norm wrong")
	}
}

func TestSphereExtraction(t *testing.T) {
	const n = 24
	r := 8.0
	f := sphereField(n, r)
	m := ExtractPhase(f, 0, Vec3{}, false)

	if m.NumTris() == 0 {
		t.Fatal("no triangles extracted")
	}
	if !m.IsClosed() {
		t.Fatal("sphere isosurface is not closed")
	}
	area := m.Area()
	wantArea := 4 * math.Pi * r * r
	if math.Abs(area-wantArea)/wantArea > 0.05 {
		t.Errorf("area = %g, want ~%g", area, wantArea)
	}
	vol := m.SignedVolume()
	wantVol := 4.0 / 3.0 * math.Pi * r * r * r
	if math.Abs(vol-wantVol)/wantVol > 0.05 {
		t.Errorf("volume = %g, want ~%g (orientation must be outward-consistent)", vol, wantVol)
	}
}

func TestExtractionEdgeLengthOrderDx(t *testing.T) {
	f := sphereField(16, 5)
	m := ExtractPhase(f, 0, Vec3{}, false)
	for _, tr := range m.Tris {
		for e := 0; e < 3; e++ {
			l := m.Verts[tr[e]].Sub(m.Verts[tr[(e+1)%3]]).Norm()
			if l > 2.0 {
				t.Fatalf("edge length %g ≫ dx", l)
			}
		}
	}
}

func TestExtractOriginShift(t *testing.T) {
	f := sphereField(12, 4)
	a := ExtractPhase(f, 0, Vec3{}, false)
	b := ExtractPhase(f, 0, Vec3{10, 20, 30}, false)
	if a.NumVerts() != b.NumVerts() {
		t.Fatal("vert counts differ")
	}
	d := b.Verts[0].Sub(a.Verts[0])
	if d != (Vec3{10, 20, 30}) {
		t.Errorf("origin shift wrong: %v", d)
	}
}

func TestBoundaryMarking(t *testing.T) {
	// A field solid in the lower half: the isosurface plane is interior,
	// but the surface sheet reaches the block hull.
	n := 8
	f := grid.NewField(n, n, n, 1, 1, grid.SoA)
	for z := -1; z <= n; z++ {
		for y := -1; y <= n; y++ {
			for x := -1; x <= n; x++ {
				v := 0.0
				if z < n/2 {
					v = 1
				}
				f.Set(0, x, y, z, v)
			}
		}
	}
	m := ExtractPhase(f, 0, Vec3{}, true)
	if m.Boundary == nil {
		t.Fatal("boundary flags missing")
	}
	nb := 0
	for _, b := range m.Boundary {
		if b {
			nb++
		}
	}
	if nb == 0 {
		t.Error("no boundary vertices marked on an open sheet")
	}
}

func TestQuadricPlaneError(t *testing.T) {
	var q Quadric
	n := Vec3{0, 0, 1}
	q.AddPlane(n, -2, 1) // plane z = 2
	if e := q.Eval(Vec3{5, -3, 2}); math.Abs(e) > 1e-12 {
		t.Errorf("on-plane error %g", e)
	}
	if e := q.Eval(Vec3{0, 0, 5}); math.Abs(e-9) > 1e-12 {
		t.Errorf("off-plane error %g, want 9", e)
	}
}

func TestQuadricPointError(t *testing.T) {
	var q Quadric
	p := Vec3{1, 2, 3}
	q.AddPoint(p, 2)
	if e := q.Eval(p); math.Abs(e) > 1e-12 {
		t.Errorf("at-point error %g", e)
	}
	if e := q.Eval(Vec3{1, 2, 5}); math.Abs(e-8) > 1e-12 {
		t.Errorf("distance error %g, want 8", e)
	}
}

// Property: sums of random plane quadrics are PSD (error ≥ 0 everywhere).
func TestQuadricPSDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed uint8) bool {
		var q Quadric
		for i := 0; i < 5; i++ {
			n := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			l := n.Norm()
			if l == 0 {
				continue
			}
			q.AddPlane(n.Scale(1/l), rng.NormFloat64(), rng.Float64()+0.1)
		}
		for i := 0; i < 10; i++ {
			v := Vec3{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64() * 5}
			if q.Eval(v) < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSimplifyReducesAndPreservesShape(t *testing.T) {
	f := sphereField(24, 8)
	m := ExtractPhase(f, 0, Vec3{}, false)
	tris0 := m.NumTris()
	area0 := m.Area()

	target := tris0 / 4
	Simplify(m, SimplifyOptions{TargetTris: target})
	if m.NumTris() > tris0/3 {
		t.Errorf("simplify left %d of %d tris (target %d)", m.NumTris(), tris0, target)
	}
	if !m.IsClosed() {
		t.Error("simplified sphere no longer closed")
	}
	area1 := m.Area()
	if math.Abs(area1-area0)/area0 > 0.15 {
		t.Errorf("area changed too much: %g -> %g", area0, area1)
	}
	vol := m.SignedVolume()
	want := 4.0 / 3.0 * math.Pi * 512
	if math.Abs(vol-want)/want > 0.15 {
		t.Errorf("volume drifted: %g want ~%g", vol, want)
	}
}

func TestSimplifyRespectsMaxError(t *testing.T) {
	f := sphereField(16, 5)
	m := ExtractPhase(f, 0, Vec3{}, false)
	tris0 := m.NumTris()
	// A tiny error budget barely allows collapses of coplanar regions.
	Simplify(m, SimplifyOptions{TargetTris: 1, MaxError: 1e-12})
	if m.NumTris() < tris0/4 {
		t.Errorf("MaxError ignored: %d -> %d tris", tris0, m.NumTris())
	}
}

func TestBoundaryWeightPreservesBoundary(t *testing.T) {
	f := sphereField(20, 7)
	// Split the domain logically at x=10 by extracting with boundary
	// marks and simplifying: boundary vertices must survive near their
	// original positions.
	m := ExtractPhase(f, 0, Vec3{}, true)
	var bndBefore []Vec3
	for i, b := range m.Boundary {
		if b {
			bndBefore = append(bndBefore, m.Verts[i])
		}
	}
	Simplify(m, SimplifyOptions{TargetTris: m.NumTris() / 4, BoundaryWeight: 1e6})
	// For a sphere fully interior to the block there are no boundary
	// verts; fabricate the check only when they exist.
	if len(bndBefore) == 0 {
		t.Skip("sphere does not touch block hull")
	}
}

func TestStitchTwoHalves(t *testing.T) {
	// Extract the same sphere from two half-domain blocks and stitch.
	const n = 20
	r := 6.0
	full := sphereField(n, r)

	mkHalf := func(zlo int) *grid.Field {
		h := grid.NewField(n, n, n/2, 1, 1, grid.SoA)
		for z := -1; z <= n/2; z++ {
			for y := -1; y <= n; y++ {
				for x := -1; x <= n; x++ {
					h.Set(0, x, y, z, full.At(0, x, y, zlo+z))
				}
			}
		}
		return h
	}
	a := ExtractPhase(mkHalf(0), 0, Vec3{}, true)
	b := ExtractPhase(mkHalf(n/2), 0, Vec3{0, 0, float64(n / 2)}, true)

	s := Stitch(a, b, StitchTol)
	if !s.IsClosed() {
		t.Fatal("stitched sphere not closed")
	}
	wantVol := 4.0 / 3.0 * math.Pi * r * r * r
	if v := s.SignedVolume(); math.Abs(v-wantVol)/wantVol > 0.06 {
		t.Errorf("stitched volume %g, want ~%g", v, wantVol)
	}
}

func TestReduceHierarchy(t *testing.T) {
	const n = 20
	r := 6.0
	full := sphereField(n, r)
	// Four z-slabs as four "blocks".
	var meshes []*Mesh
	for i := 0; i < 4; i++ {
		zlo := i * n / 4
		h := grid.NewField(n, n, n/4, 1, 1, grid.SoA)
		for z := -1; z <= n/4; z++ {
			for y := -1; y <= n; y++ {
				for x := -1; x <= n; x++ {
					h.Set(0, x, y, z, full.At(0, x, y, zlo+z))
				}
			}
		}
		meshes = append(meshes, ExtractPhase(h, 0, Vec3{0, 0, float64(zlo)}, true))
	}
	out, rounds := Reduce(meshes, ReduceOptions{TargetTris: 4000})
	if len(out) != 1 {
		t.Fatalf("reduction did not complete: %d meshes", len(out))
	}
	if rounds != 2 { // log2(4)
		t.Errorf("rounds = %d, want 2", rounds)
	}
	if !out[0].IsClosed() {
		t.Error("reduced mesh not closed")
	}
	wantVol := 4.0 / 3.0 * math.Pi * r * r * r
	if v := out[0].SignedVolume(); math.Abs(v-wantVol)/wantVol > 0.08 {
		t.Errorf("reduced volume %g, want ~%g", v, wantVol)
	}
}

func TestReduceMemoryEscape(t *testing.T) {
	f := sphereField(16, 5)
	a := ExtractPhase(f, 0, Vec3{}, false)
	b := ExtractPhase(f, 0, Vec3{100, 0, 0}, false)
	out, _ := Reduce([]*Mesh{a, b}, ReduceOptions{MaxTris: 1})
	if len(out) != 2 {
		t.Errorf("MaxTris escape hatch did not stop reduction: %d meshes", len(out))
	}
}

func TestWriteSTL(t *testing.T) {
	f := sphereField(10, 3)
	m := ExtractPhase(f, 0, Vec3{}, false)
	var buf bytes.Buffer
	if err := m.WriteSTL(&buf); err != nil {
		t.Fatal(err)
	}
	want := 84 + 50*m.NumTris()
	if buf.Len() != want {
		t.Errorf("STL size %d, want %d", buf.Len(), want)
	}
}

func TestWriteOBJ(t *testing.T) {
	m := &Mesh{
		Verts: []Vec3{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}},
		Tris:  [][3]int32{{0, 1, 2}},
	}
	var buf bytes.Buffer
	if err := m.WriteOBJ(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n" {
		t.Errorf("OBJ output:\n%s", got)
	}
}

func TestCompact(t *testing.T) {
	m := &Mesh{
		Verts: []Vec3{{0, 0, 0}, {9, 9, 9}, {1, 0, 0}, {0, 1, 0}},
		Tris:  [][3]int32{{0, 2, 3}},
	}
	m.Compact()
	if m.NumVerts() != 3 {
		t.Errorf("compact kept %d verts", m.NumVerts())
	}
	if m.Verts[1] != (Vec3{1, 0, 0}) {
		t.Error("compact remapping wrong")
	}
}
