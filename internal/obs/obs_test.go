package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestRingEviction(t *testing.T) {
	r := NewRing(4)
	if r.Last() != nil {
		t.Fatal("empty ring has a last record")
	}
	for i := 1; i <= 10; i++ {
		r.Push(StepRecord{Step: i})
	}
	if r.Len() != 4 || r.Total() != 10 {
		t.Fatalf("len=%d total=%d, want 4/10", r.Len(), r.Total())
	}
	got := r.Snapshot(nil)
	want := []int{7, 8, 9, 10}
	for i, rec := range got {
		if rec.Step != want[i] {
			t.Fatalf("snapshot[%d].Step = %d, want %d", i, rec.Step, want[i])
		}
	}
	if r.Last().Step != 10 {
		t.Fatalf("Last().Step = %d, want 10", r.Last().Step)
	}
	// Last aliases storage: folding post-step cost must stick.
	r.Last().Ckpt = time.Second
	if got := r.Snapshot(got); got[3].Ckpt != time.Second {
		t.Fatal("Last() write did not land in ring storage")
	}
}

func TestRingPartialSnapshot(t *testing.T) {
	r := NewRing(8)
	r.Push(StepRecord{Step: 1})
	r.Push(StepRecord{Step: 2})
	got := r.Snapshot(nil)
	if len(got) != 2 || got[0].Step != 1 || got[1].Step != 2 {
		t.Fatalf("partial snapshot = %+v", got)
	}
}

func TestStepTotals(t *testing.T) {
	var tot StepTotals
	tot.Add(StepRecord{Wall: time.Millisecond, PhiKernel: 300 * time.Microsecond, HaloBytes: 100})
	tot.Add(StepRecord{Wall: time.Millisecond, MuKernel: 200 * time.Microsecond, HaloBytes: 50, HaloSkipped: 2})
	if tot.Steps != 2 || tot.Wall != 2*time.Millisecond || tot.HaloBytes != 150 || tot.HaloSkipped != 2 {
		t.Fatalf("totals = %+v", tot)
	}
	prev := tot
	tot.Add(StepRecord{Wall: time.Millisecond, Sched: time.Microsecond})
	d := tot.Sub(prev)
	if d.Steps != 1 || d.Wall != time.Millisecond || d.Sched != time.Microsecond || d.HaloBytes != 0 {
		t.Fatalf("delta = %+v", d)
	}
	// 1e6 cells stepped once in 1ms → 1000 MLUP/s.
	m := StepTotals{Steps: 1, Wall: time.Millisecond}
	if got := m.MLUPs(1_000_000); got != 1000 {
		t.Fatalf("MLUPs = %g, want 1000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0 (≤1µs)
	h.Observe(1 * time.Microsecond)  // bucket 0
	h.Observe(2 * time.Microsecond)  // bucket 1
	h.Observe(3 * time.Microsecond)  // bucket 2 (2µs < d ≤ 4µs)
	h.Observe(time.Hour)             // last bucket
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[2] != 1 || s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	bounds := BucketBounds()
	// Every sample must fall within its bucket's bound.
	if bounds[0] != time.Microsecond || bounds[1] != 2*time.Microsecond {
		t.Fatalf("bounds = %v", bounds[:3])
	}
	var m HistogramSnapshot
	m.Merge(s)
	m.Merge(s)
	if m.Count != 10 || m.Buckets[0] != 4 || m.Sum != 2*s.Sum {
		t.Fatalf("merge = %+v", m)
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Buckets[0] != 0 {
		t.Fatalf("reset left %+v", s)
	}
}

func TestHotPathAllocFree(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 8; i++ {
		r.Push(StepRecord{Step: i})
	}
	var h Histogram
	var tot StepTotals
	if n := testing.AllocsPerRun(100, func() {
		r.Push(StepRecord{Step: 1, Wall: time.Millisecond})
		_ = r.Last()
		h.Observe(3 * time.Microsecond)
		tot.Add(StepRecord{Wall: time.Millisecond})
	}); n != 0 {
		t.Fatalf("hot path allocates %.1f objects per run", n)
	}
}

func TestTraceWriter(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.ProcessName(1, `job "x"`) // quotes must survive escaping
	tw.ThreadName(1, 2, "φ kernel")
	tw.Complete(1, 2, "step 1", 100, 50, map[string]any{"mlups": 3.5})
	tw.Complete(1, 2, "zero-span", 200, 0, nil) // clamped to dur 1
	tw.Instant(1, 0, "retry", 300, nil)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "M" || doc.TraceEvents[2]["ph"] != "X" || doc.TraceEvents[4]["ph"] != "i" {
		t.Fatalf("phases wrong: %v", doc.TraceEvents)
	}
	if doc.TraceEvents[3]["dur"].(float64) != 1 {
		t.Fatal("zero-duration span not clamped to 1µs")
	}
}

func TestTraceWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != `{"traceEvents":[]}` {
		t.Fatalf("empty trace = %q", buf.String())
	}
}
