package phasefield

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/kernels"
	"repro/internal/schedule"
)

// Checkpoint → Restore must reproduce the simulation state up to the
// single-precision round trip, and the restored simulation must continue
// identically (within float32 perturbation) to the original.
func TestCheckpointRestoreContinues(t *testing.T) {
	cfg := DefaultConfig(12, 12, 16)
	cfg.PX = 2
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		t.Fatal(err)
	}
	sim.Run(5)

	path := filepath.Join(t.TempDir(), "mid.pfcp")
	if err := sim.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(path, Config{Variant: cfg.Variant, Overlap: cfg.Overlap})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Step() != 5 {
		t.Errorf("restored step = %d", restored.Step())
	}
	if restored.Time() != sim.Time() {
		t.Errorf("restored time = %g, want %g", restored.Time(), sim.Time())
	}

	// State agreement at restore time (float32 round trip).
	a := sim.GlobalPhi()
	b := restored.GlobalPhi()
	if ok, maxd := a.InteriorEqual(b, 1e-6); !ok {
		t.Fatalf("restored φ differs by %g", maxd)
	}

	// Both continue; trajectories stay close over a few steps.
	sim.Run(5)
	restored.Run(5)
	a = sim.GlobalPhi()
	b = restored.GlobalPhi()
	if ok, maxd := a.InteriorEqual(b, 1e-4); !ok {
		t.Errorf("trajectories diverged beyond float32 seeding: %g", maxd)
	}
}

// Property test over randomized configurations: checkpointing and
// restoring mid-run, then taking one more step, must match the
// uninterrupted run within the single-precision perturbation the float32
// round trip injects (one explicit-Euler step amplifies it only by an
// O(dt) factor).
func TestCheckpointRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 6; trial++ {
		px := 1 + rng.Intn(2)
		py := 1 + rng.Intn(2)
		nx, ny, nz := px*(4+rng.Intn(3)), py*(4+rng.Intn(3)), 8+rng.Intn(6)
		cfg := DefaultConfig(nx, ny, nz)
		cfg.PX, cfg.PY = px, py
		cfg.Variant = kernels.Variant(rng.Intn(int(kernels.NumVariants)))
		cfg.Seed = rng.Int63()
		pre := 1 + rng.Intn(4)

		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.InitFront(); err != nil {
			t.Fatal(err)
		}
		sim.Run(pre)

		path := filepath.Join(t.TempDir(), "prop.pfcp")
		if err := sim.Checkpoint(path); err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(path, Config{Overlap: cfg.Overlap})
		if err != nil {
			t.Fatal(err)
		}
		// The V2 header must have carried the active kernels without
		// an explicit cfg.Variant.
		phi, mu, _, _ := restored.Kernels()
		if phi != cfg.Variant || mu != cfg.Variant {
			t.Fatalf("trial %d: restored kernels %v/%v, want %v", trial, phi, mu, cfg.Variant)
		}

		sim.Run(1)
		restored.Run(1)
		// One step amplifies the float32 seeding by the stencil's
		// Lipschitz factor (≈dt/dx² · coefficients); 1e-5 keeps the
		// bound at single-precision scale, far below any physics
		// regression.
		tol := math.Max(1e-5, 4*ckpt.MaxRoundTripError(4))
		if ok, maxd := sim.GlobalPhi().InteriorEqual(restored.GlobalPhi(), tol); !ok {
			t.Errorf("trial %d (%dx%dx%d px%d py%d variant %v): φ diverged %g after one step",
				trial, nx, ny, nz, px, py, cfg.Variant, maxd)
		}
		if ok, maxd := sim.sim.GatherGlobalMu().InteriorEqual(restored.sim.GatherGlobalMu(), tol); !ok {
			t.Errorf("trial %d: µ diverged %g after one step", trial, maxd)
		}
	}
}

// A version-2 checkpoint carries the mutable process parameters, so a
// restart mid-ramp resumes from the ramped values, not the config
// defaults.
func TestRestoreCarriesRampedParameters(t *testing.T) {
	cfg := DefaultConfig(8, 8, 12)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.New(
		schedule.Ramp{Param: schedule.ParamPullVelocity, Step: 0, Over: 10,
			From: sim.Params().Temp.V, To: 4 * sim.Params().Temp.V},
		schedule.NucleationBurst{Step: 1, Count: 1, Phase: 0, Radius: 1.5, ZMin: 8, ZMax: 11, Seed: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunSchedule(sched, 5, ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "midramp.pfcp")
	if err := sim.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rp, sp := restored.Params(), sim.Params()
	if rp.Temp.V != sp.Temp.V || rp.Temp.Z0 != sp.Temp.Z0 || rp.Temp.G != sp.Temp.G || rp.Dt != sp.Dt {
		t.Errorf("restored params %+v, want %+v", rp.Temp, sp.Temp)
	}
	if restored.SchedulePos() != sim.SchedulePos() || restored.SchedulePos() != 1 {
		t.Errorf("schedule position %d, want %d", restored.SchedulePos(), sim.SchedulePos())
	}

	// Continuing both under the schedule must agree bit-for-bit in the
	// ramp coefficients: the trajectories may differ only by the
	// float32 seeding.
	if err := sim.RunSchedule(sched, 5, ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := restored.RunSchedule(sched, 5, ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}
	if rp.Temp.V != sp.Temp.V || rp.Temp.Z0 != sp.Temp.Z0 {
		t.Errorf("post-restart ramp drifted: %+v vs %+v", rp.Temp, sp.Temp)
	}
	if ok, maxd := sim.GlobalPhi().InteriorEqual(restored.GlobalPhi(), 1e-4); !ok {
		t.Errorf("mid-ramp restart diverged %g", maxd)
	}
}

// Restart-time variant switching through a real checkpoint file: variant A
// for k steps, restore with IgnoreCheckpointKernels + variant B, continue —
// must match the same run switched in memory via a schedule event.
func TestRestartVariantSwitchMatchesScheduledSwitch(t *testing.T) {
	const k, n = 3, 8
	varA, varB := kernels.VarStag, kernels.VarShortcut
	cfg := DefaultConfig(10, 10, 14)
	cfg.Variant = varA

	// Path 1: in-memory switch at step k.
	switched, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := switched.InitFront(); err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.New(schedule.SwitchVariant{
		Step: k, Phi: varB, Mu: varB, Strategy: schedule.StrategyKeep})
	if err != nil {
		t.Fatal(err)
	}
	if err := switched.RunSchedule(sched, n, ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}

	// Path 2: checkpoint at step k, restore with B, continue.
	pre, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.InitFront(); err != nil {
		t.Fatal(err)
	}
	pre.Run(k)
	path := filepath.Join(t.TempDir(), "switch.pfcp")
	if err := pre.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(path, Config{Variant: varB, IgnoreCheckpointKernels: true})
	if err != nil {
		t.Fatal(err)
	}
	if phi, mu, _, _ := restored.Kernels(); phi != varB || mu != varB {
		t.Fatalf("override did not take: %v/%v", phi, mu)
	}
	restored.Run(n - k)

	// Identical physics; only the float32 checkpoint seeding separates
	// the two paths.
	if ok, maxd := switched.GlobalPhi().InteriorEqual(restored.GlobalPhi(), 1e-5); !ok {
		t.Errorf("restart-with-B differs from scheduled switch by %g", maxd)
	}
}

func TestRestoreRejectsMissingFile(t *testing.T) {
	if _, err := Restore("/nonexistent/x.pfcp", Config{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteVTK(t *testing.T) {
	sim, err := New(DefaultConfig(8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteVTK(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DIMENSIONS 8 8 8", "SCALARS Al float 1", "SCALARS Liquid float 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
}
