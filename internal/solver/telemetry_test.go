package solver

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// telemetry_test.go checks the step-phase capture layer: records must
// reflect the phases that actually ran, capture must be allocation-free in
// steady state, and a telemetered trajectory must be bit-identical to an
// untelemetered one.

func telemSim(t *testing.T, disable bool, ov OverlapMode) *Sim {
	t.Helper()
	const edge = 16
	bg, err := grid.NewBlockGrid(2, 1, 1, edge, edge, edge, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Temp.Z0 = float64(edge) / 2 * p.Dx
	s, err := New(Config{Params: p, BG: bg, Variant: kernels.VarShortcut,
		Overlap: ov, Parallelism: 1, DisableStepTelemetry: disable})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitScenario(ScenarioInterface); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStepTelemetryCapture(t *testing.T) {
	s := telemSim(t, false, OverlapNone)
	defer s.Close()
	s.Run(5)

	recs := s.StepRecords(nil)
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Step != i+1 {
			t.Errorf("record %d has step %d", i, r.Step)
		}
		if r.Wall <= 0 || r.PhiKernel <= 0 || r.MuKernel <= 0 {
			t.Errorf("step %d phases not captured: %+v", r.Step, r)
		}
		if r.ActiveFraction <= 0 || r.ActiveFraction > 1 {
			t.Errorf("step %d active fraction %g out of range", r.Step, r.ActiveFraction)
		}
		if r.HaloBytes <= 0 {
			t.Errorf("step %d moved no halo bytes", r.Step)
		}
		if r.Start <= 0 {
			t.Errorf("step %d has no start timestamp", r.Step)
		}
	}

	tot := s.TelemetryTotals()
	if tot.Steps != 5 {
		t.Fatalf("totals cover %d steps, want 5", tot.Steps)
	}
	// With the ring far from wrapping, totals must equal the record sum.
	var sum obs.StepTotals
	for _, r := range recs {
		sum.Add(r)
	}
	if sum != tot {
		t.Errorf("totals %+v != record sum %+v", tot, sum)
	}
	if tot.MLUPs(s.GlobalCells()) <= 0 {
		t.Error("MLUP/s not positive")
	}

	// ResetMetrics re-anchors the delta baselines; the next step's record
	// must not go negative or double-count.
	s.ResetMetrics()
	s.Run(1)
	last := s.StepRecords(nil)
	r := last[len(last)-1]
	if r.PhiKernel <= 0 || r.PhiKernel > r.Wall*10 {
		t.Errorf("post-reset record implausible: %+v", r)
	}
}

func TestStepTelemetrySchedCkpt(t *testing.T) {
	s := telemSim(t, false, OverlapMu)
	defer s.Close()
	sched := mkSched(t, schedule.Checkpoint{Step: 0, Every: 2, Path: "unused-%d"})
	wrote := 0
	err := s.RunSchedule(4, sched, ScheduleHooks{
		WriteCheckpoint: func(path string, step int) error {
			wrote++
			time.Sleep(2 * time.Millisecond) // make the cost visible
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wrote != 2 {
		t.Fatalf("checkpoint hook ran %d times, want 2", wrote)
	}
	recs := s.StepRecords(nil)
	tot := s.TelemetryTotals()
	if tot.Ckpt < 4*time.Millisecond {
		t.Errorf("totals charge %v to checkpoints, want >= 4ms", tot.Ckpt)
	}
	// The writes after steps 2 and 4 fold into those steps' records.
	if recs[1].Ckpt <= 0 || recs[3].Ckpt <= 0 {
		t.Errorf("ckpt cost not folded into step records: %+v / %+v", recs[1], recs[3])
	}
	if recs[0].Ckpt != 0 || recs[2].Ckpt != 0 {
		t.Errorf("ckpt cost charged to wrong steps: %+v / %+v", recs[0], recs[2])
	}
	if tot.Sched <= 0 {
		t.Error("schedule-scan time not captured")
	}
}

// TestTelemetryBitIdentical is the acceptance gate: the same simulation
// stepped with telemetry on and off must produce bit-identical fields.
func TestTelemetryBitIdentical(t *testing.T) {
	for _, ov := range []OverlapMode{OverlapNone, OverlapBoth} {
		on := telemSim(t, false, ov)
		off := telemSim(t, true, ov)
		on.Run(6)
		off.Run(6)
		if len(off.StepRecords(nil)) != 0 {
			t.Error("disabled telemetry still records")
		}
		for r := 0; r < on.NumRanks(); r++ {
			if ok, maxd := on.RankFields(r).PhiSrc.InteriorEqual(off.RankFields(r).PhiSrc, 0); !ok {
				t.Errorf("%v rank %d: φ differs by %g with telemetry on", ov, r, maxd)
			}
			if ok, maxd := on.RankFields(r).MuSrc.InteriorEqual(off.RankFields(r).MuSrc, 0); !ok {
				t.Errorf("%v rank %d: µ differs by %g with telemetry on", ov, r, maxd)
			}
		}
		on.Close()
		off.Close()
	}
}

// TestStepTelemetryAllocFree pins the capture layer to the same per-step
// allocation budget the comm path meets: the residual is the goroutine
// fan-out of forAllRanks, and telemetry must add nothing on top of it.
func TestStepTelemetryAllocFree(t *testing.T) {
	s := telemSim(t, false, OverlapNone)
	defer s.Close()
	s.Run(3) // warm-up: fill buffer pools and the record ring's capacity

	before := s.World.PackAllocs()
	avg := testing.AllocsPerRun(10, func() { s.Run(1) })
	if got := s.World.PackAllocs(); got != before {
		t.Errorf("telemetered steady-state Run(1) allocated %d pack buffers", got-before)
	}
	if avg > 8 {
		t.Errorf("telemetered steady-state Run(1) allocates %.1f objects (budget 8, same as telemetry off)", avg)
	}
}

func BenchmarkStepTelemetry(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			const edge = 32
			bg, err := grid.NewBlockGrid(1, 1, 1, edge, edge, edge, [3]bool{true, true, false})
			if err != nil {
				b.Fatal(err)
			}
			p := core.DefaultParams()
			p.Temp.Z0 = float64(edge) / 2 * p.Dx
			s, err := New(Config{Params: p, BG: bg, Variant: kernels.VarShortcut,
				Overlap: OverlapMu, Parallelism: 1, DisableStepTelemetry: mode.disable})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.InitScenario(ScenarioInterface); err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			s.Run(2)
			b.ResetTimer()
			s.Run(b.N)
		})
	}
}
