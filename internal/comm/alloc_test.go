package comm

import (
	"testing"

	"repro/internal/grid"
)

// alloc_test.go guards the zero-allocation property of the halo-exchange
// pack/unpack path: after the first exchange has populated the per-rank
// persistent buffers, further exchanges must not allocate.

func allocTestWorld(t *testing.T) (*World, *grid.Field, *grid.Field, grid.BoundarySet) {
	t.Helper()
	bg, err := grid.NewBlockGrid(2, 1, 1, 8, 6, 10, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(bg)
	f0 := grid.NewField(8, 6, 10, 4, 1, grid.SoA)
	f1 := grid.NewField(8, 6, 10, 4, 1, grid.SoA)
	for i := range f0.Data {
		f0.Data[i] = float64(i)
		f1.Data[i] = float64(2 * i)
	}
	bcs := bg.BlockBCs(0, grid.DirectionalSolidification([]float64{1, 0, 0, 0}))
	return w, f0, f1, bcs
}

func TestExchangePackPathAllocFree(t *testing.T) {
	w, f0, f1, bcs := allocTestWorld(t)

	// A persistent partner goroutine runs rank 1's side of each exchange,
	// so the measured closure performs one full two-rank halo exchange.
	req := make(chan struct{})
	ack := make(chan struct{})
	defer close(req)
	go func() {
		for range req {
			w.ExchangeGhosts(1, f1, TagPhi, bcs)
			ack <- struct{}{}
		}
	}()
	pair := func() {
		req <- struct{}{}
		w.ExchangeGhosts(0, f0, TagPhi, bcs)
		<-ack
	}

	for i := 0; i < 4; i++ {
		pair() // warm-up: populate the persistent buffer set
	}
	before := w.PackAllocs()
	avg := testing.AllocsPerRun(20, pair)
	if avg != 0 {
		t.Errorf("steady-state halo exchange allocates %.1f objects/run, want 0", avg)
	}
	if got := w.PackAllocs(); got != before {
		t.Errorf("pack buffers allocated in steady state: %d fresh buffers", got-before)
	}
}

func TestPackRegionSoAFastPathMatchesGeneric(t *testing.T) {
	// The contiguous-row SoA fast path must produce the same buffer layout
	// as the generic element-wise path (which AoS fields still use), and
	// unpack must restore exactly what pack read.
	nx, ny, nz := 7, 5, 6
	soa := grid.NewField(nx, ny, nz, 3, 1, grid.SoA)
	aos := grid.NewField(nx, ny, nz, 3, 1, grid.AoS)
	i := 0
	for c := 0; c < 3; c++ {
		for z := -1; z <= nz; z++ {
			for y := -1; y <= ny; y++ {
				for x := -1; x <= nx; x++ {
					soa.Set(c, x, y, z, float64(i))
					aos.Set(c, x, y, z, float64(i))
					i++
				}
			}
		}
	}
	for face := grid.Face(0); face < grid.NumFaces; face++ {
		pack, unpack := stageRegions(soa, face)
		bufS := packRegion(soa, pack, nil)
		bufA := packRegion(aos, pack, nil)
		if len(bufS) != len(bufA) {
			t.Fatalf("face %v: buffer length %d vs %d", face, len(bufS), len(bufA))
		}
		for j := range bufS {
			if bufS[j] != bufA[j] {
				t.Fatalf("face %v: SoA fast path differs from generic at %d: %g vs %g", face, j, bufS[j], bufA[j])
			}
		}

		// Round-trip: unpack into a cleared clone and compare the region.
		dst := grid.NewField(nx, ny, nz, 3, 1, grid.SoA)
		unpackRegion(dst, unpack, packRegion(soa, pack, nil))
		ref := grid.NewField(nx, ny, nz, 3, 1, grid.AoS)
		unpackRegion(ref, unpack, bufA)
		for c := 0; c < 3; c++ {
			for z := unpack.z0; z < unpack.z1; z++ {
				for y := unpack.y0; y < unpack.y1; y++ {
					for x := unpack.x0; x < unpack.x1; x++ {
						if dst.At(c, x, y, z) != ref.At(c, x, y, z) {
							t.Fatalf("face %v: unpack mismatch at (%d,%d,%d,%d)", face, c, x, y, z)
						}
					}
				}
			}
		}
	}
}

func TestStartExchangeAllocFree(t *testing.T) {
	// Overlapped exchanges run on persistent per-rank comm workers with
	// per-(rank, tag) Pending handles: once the workers and pack buffers
	// are warm, a StartExchange/Finish round must not allocate — the
	// per-call goroutine + Pending of the original design is gone.
	w, f0, f1, bcs := allocTestWorld(t)
	defer w.Close()

	pair := func() {
		p0 := w.StartExchange(0, f0, TagPhi, bcs)
		p1 := w.StartExchange(1, f1, TagPhi, bcs)
		p0.Finish()
		p1.Finish()
	}
	for i := 0; i < 4; i++ {
		pair() // warm-up: spawn workers, populate pack buffers
	}
	if avg := testing.AllocsPerRun(20, pair); avg != 0 {
		t.Errorf("steady-state overlapped exchange allocates %.1f objects/run, want 0", avg)
	}
}

func TestStartExchangeReusesPending(t *testing.T) {
	w, f0, f1, bcs := allocTestWorld(t)
	defer w.Close()
	done := make(chan struct{})
	go func() {
		w.StartExchange(1, f1, TagPhi, bcs).Finish()
		w.StartExchange(1, f1, TagPhi, bcs).Finish()
		close(done)
	}()
	p1 := w.StartExchange(0, f0, TagPhi, bcs)
	p1.Finish()
	p2 := w.StartExchange(0, f0, TagPhi, bcs)
	p2.Finish()
	<-done
	if p1 != p2 {
		t.Error("StartExchange handed out distinct Pending handles for the same (rank, tag)")
	}
}

func TestPackBufferRecycling(t *testing.T) {
	// Repeated exchanges circulate a bounded buffer set: the allocation
	// count must stop growing after the first few steps.
	w, f0, f1, bcs := allocTestWorld(t)
	step := func() {
		done := make(chan struct{})
		go func() {
			w.ExchangeGhosts(1, f1, TagPhi, bcs)
			w.ExchangeGhosts(1, f1.Clone(), TagMu, bcs)
			close(done)
		}()
		w.ExchangeGhosts(0, f0, TagPhi, bcs)
		w.ExchangeGhosts(0, f0.Clone(), TagMu, bcs)
		<-done
	}
	step()
	step()
	after2 := w.PackAllocs()
	for i := 0; i < 10; i++ {
		step()
	}
	if got := w.PackAllocs(); got != after2 {
		t.Errorf("pack allocations kept growing: %d after warm-up, %d after 10 more steps", after2, got)
	}
}
