package thermo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAgAlCuValidates(t *testing.T) {
	if err := AgAlCu().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcMuInverse(t *testing.T) {
	s := AgAlCu()
	f := func(m0, m1, dT float64) bool {
		m0 = math.Mod(m0, 2)
		m1 = math.Mod(m1, 2)
		dT = math.Mod(dT, 0.2)
		if math.IsNaN(m0) || math.IsNaN(m1) || math.IsNaN(dT) {
			return true
		}
		mu := [NRed]float64{m0, m1}
		for i := range s.Phases {
			c := s.Phases[i].Conc(mu, dT)
			back := s.Phases[i].Mu(c, dT)
			if math.Abs(back[0]-mu[0]) > 1e-12 || math.Abs(back[1]-mu[1]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The grand potential must satisfy ω = f(c(µ)) − µ·c(µ).
func TestGrandPotLegendre(t *testing.T) {
	s := AgAlCu()
	for i := range s.Phases {
		p := &s.Phases[i]
		for _, mu := range [][NRed]float64{{0, 0}, {0.3, -0.2}, {-1, 0.5}} {
			for _, dT := range []float64{0, -0.05, 0.08} {
				c := p.Conc(mu, dT)
				want := p.FreeEnergy(c, dT) - mu[0]*c[0] - mu[1]*c[1]
				got := p.GrandPot(mu, dT)
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("phase %s µ=%v dT=%g: ω=%g want %g", p.Name, mu, dT, got, want)
				}
			}
		}
	}
}

// ∂ω/∂µ_i = −c_i (a property the driving force derivation relies on),
// checked by central differences.
func TestGrandPotDerivative(t *testing.T) {
	s := AgAlCu()
	h := 1e-6
	for i := range s.Phases {
		p := &s.Phases[i]
		mu := [NRed]float64{0.2, -0.1}
		dT := -0.03
		c := p.Conc(mu, dT)
		for k := 0; k < NRed; k++ {
			mp, mm := mu, mu
			mp[k] += h
			mm[k] -= h
			d := (p.GrandPot(mp, dT) - p.GrandPot(mm, dT)) / (2 * h)
			if math.Abs(d+c[k]) > 1e-6 {
				t.Errorf("phase %s: ∂ω/∂µ_%d = %g, want %g", p.Name, k, d, -c[k])
			}
		}
	}
}

func TestEqualGrandPotentialsAtEutectic(t *testing.T) {
	s := AgAlCu()
	mu := [NRed]float64{}
	w0 := s.Phases[0].GrandPot(mu, 0)
	for i := 1; i < NPhases; i++ {
		if math.Abs(s.Phases[i].GrandPot(mu, 0)-w0) > 1e-12 {
			t.Errorf("phase %d grand potential %g != %g at eutectic", i, s.Phases[i].GrandPot(mu, 0), w0)
		}
	}
}

func TestSolidsFavoredBelowTE(t *testing.T) {
	s := AgAlCu()
	mu := [NRed]float64{}
	for _, dT := range []float64{-0.01, -0.05, -0.2} {
		wl := s.Phases[Liquid].GrandPot(mu, dT)
		for a := 0; a < NumSolids; a++ {
			if ws := s.Phases[a].GrandPot(mu, dT); ws >= wl {
				t.Errorf("dT=%g: solid %s ω=%g not below liquid ω=%g", dT, s.Phases[a].Name, ws, wl)
			}
		}
	}
	// And above T_E the liquid must win.
	for _, dT := range []float64{0.01, 0.1} {
		wl := s.Phases[Liquid].GrandPot(mu, dT)
		for a := 0; a < NumSolids; a++ {
			if ws := s.Phases[a].GrandPot(mu, dT); ws <= wl {
				t.Errorf("dT=%g: solid %s ω=%g not above liquid ω=%g", dT, s.Phases[a].Name, ws, wl)
			}
		}
	}
}

func TestSusceptibilityPositive(t *testing.T) {
	s := AgAlCu()
	for i := range s.Phases {
		x := s.Phases[i].Susceptibility()
		if x[0] <= 0 || x[1] <= 0 {
			t.Errorf("phase %s susceptibility not positive: %v", s.Phases[i].Name, x)
		}
	}
}

func TestMixedQuantitiesAreConvexCombinations(t *testing.T) {
	s := AgAlCu()
	h := [NPhases]float64{0.25, 0.25, 0.25, 0.25}
	mu := [NRed]float64{0.1, 0.05}
	c := s.MixedConc(&h, mu, 0)
	// Mixed concentration must lie within the hull of the phase concentrations.
	lo, hi := [NRed]float64{1, 1}, [NRed]float64{0, 0}
	for a := 0; a < NPhases; a++ {
		ca := s.Phases[a].Conc(mu, 0)
		for k := 0; k < NRed; k++ {
			lo[k] = math.Min(lo[k], ca[k])
			hi[k] = math.Max(hi[k], ca[k])
		}
	}
	for k := 0; k < NRed; k++ {
		if c[k] < lo[k]-1e-12 || c[k] > hi[k]+1e-12 {
			t.Errorf("mixed conc comp %d = %g outside hull [%g,%g]", k, c[k], lo[k], hi[k])
		}
	}
	x := s.MixedSusceptibility(&h)
	if x[0] <= 0 || x[1] <= 0 {
		t.Error("mixed susceptibility not positive")
	}
}

func TestMixedSingleProjection(t *testing.T) {
	// With all weight on one phase, mixed quantities equal that phase's.
	s := AgAlCu()
	mu := [NRed]float64{-0.2, 0.3}
	for a := 0; a < NPhases; a++ {
		var h [NPhases]float64
		h[a] = 1
		c := s.MixedConc(&h, mu, -0.02)
		want := s.Phases[a].Conc(mu, -0.02)
		if c != want {
			t.Errorf("phase %d: mixed %v != %v", a, c, want)
		}
		dcdt := s.MixedDCdT(&h)
		if dcdt != s.Phases[a].DC0dT {
			t.Errorf("phase %d: dcdT %v != %v", a, dcdt, s.Phases[a].DC0dT)
		}
	}
}

func TestEutecticFractions(t *testing.T) {
	s := AgAlCu()
	frac, err := s.EutecticFractions()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for a, f := range frac {
		if f <= 0 || f >= 1 {
			t.Errorf("fraction %d = %g outside (0,1)", a, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %g", sum)
	}
	// Lever rule consistency: Σ f_α c_α = CE.
	for k := 0; k < NRed; k++ {
		mix := 0.0
		for a := 0; a < NumSolids; a++ {
			mix += frac[a] * s.Phases[a].C0[k]
		}
		if math.Abs(mix-s.CE[k]) > 1e-9 {
			t.Errorf("lever rule comp %d: %g != %g", k, mix, s.CE[k])
		}
	}
	// Calibrated to approximately (Al 0.45, Ag2Al 0.30, Al2Cu 0.25).
	want := [NumSolids]float64{0.45, 0.30, 0.25}
	for a := range want {
		if math.Abs(frac[a]-want[a]) > 0.02 {
			t.Errorf("fraction %d = %g, want ~%g", a, frac[a], want[a])
		}
	}
}

func TestValidateCatchesBrokenSystems(t *testing.T) {
	s := AgAlCu()
	s.Phases[0].A[0] = -1
	if err := s.Validate(); err == nil {
		t.Error("negative curvature not caught")
	}
	s = AgAlCu()
	s.Phases[1].B0 = 0.5
	if err := s.Validate(); err == nil {
		t.Error("unequal grand potentials not caught")
	}
	s = AgAlCu()
	s.Phases[2].C0 = [NRed]float64{0.9, 0.9}
	if err := s.Validate(); err == nil {
		t.Error("composition outside simplex not caught")
	}
	s = AgAlCu()
	s.Phases[0].DBdT = -1
	if err := s.Validate(); err == nil {
		t.Error("solid not favored below TE not caught")
	}
}

func TestEutecticFractionsDegenerate(t *testing.T) {
	s := AgAlCu()
	// Collapse two solids onto the same composition: degenerate triangle.
	s.Phases[1].C0 = s.Phases[0].C0
	if _, err := s.EutecticFractions(); err == nil {
		t.Error("degenerate triangle not caught")
	}
	// Move CE outside the triangle.
	s = AgAlCu()
	s.CE = [NRed]float64{0.9, 0.05}
	if _, err := s.EutecticFractions(); err == nil {
		t.Error("CE outside triangle not caught")
	}
}
