// Castbench: the production scenario-schedule workload. The paper's §5
// production runs are not fixed-parameter benchmarks — the furnace program
// ramps the pull velocity and thermal gradient, grains nucleate in bursts
// ahead of the front, long runs stop and restart from single-precision
// checkpoints, and a restart may switch kernel variants. This example
// drives all of that through one JSON schedule (schedule.json, embedded):
//
//   - pull velocity v ramps 0.02→0.05 over the first 300 steps while the
//     gradient G ramps 0.005→0.008;
//   - two nucleation bursts seed fresh grains in the melt (one mixed per
//     the eutectic fractions, one pinned to a single solid phase);
//   - the kernels climb the optimization ladder mid-run (stag → shortcut),
//     exercising restart-time variant switching without a restart;
//   - a checkpoint is written every 100 steps; the run then restores the
//     mid-ramp checkpoint and verifies the continued trajectory tracks the
//     uninterrupted one.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/schedule"
)

//go:embed schedule.json
var scheduleJSON string

func main() {
	sched, err := schedule.FromJSON(strings.NewReader(scheduleJSON))
	if err != nil {
		log.Fatal(err)
	}

	outDir, err := os.MkdirTemp(".", "castbench-out-")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("castbench: output in", outDir)

	cfg := phasefield.DefaultConfig(32, 32, 64)
	cfg.MovingWindow = true
	cfg.WindowFraction = 0.5
	cfg.Seed = 5
	sim, err := phasefield.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.InitProduction(); err != nil {
		log.Fatal(err)
	}

	opt := phasefield.ScheduleOptions{
		CheckpointPath: filepath.Join(outDir, "state_%06d.pfcp"),
		Log:            func(msg string) { fmt.Println("  " + msg) },
	}

	const steps = 400
	fmt.Printf("running %d scheduled steps (v ramp, G ramp, 2 bursts, 2 switches, ckpt/100)\n", steps)
	for done := 0; done < steps; done += 100 {
		if err := sim.RunSchedule(sched, 100, opt); err != nil {
			log.Fatal(err)
		}
		phi, mu, _, _ := sim.Kernels()
		fmt.Printf("step %4d  t=%7.2f  v=%.4f G=%.4f  solid=%.3f  window=%d  kernels φ=%s µ=%s\n",
			sim.Step(), sim.Time(), sim.Params().Temp.V, sim.Params().Temp.G,
			sim.SolidFraction(), sim.WindowShift(),
			schedule.VariantName(phi), schedule.VariantName(mu))
	}

	// Restart from the mid-ramp checkpoint and verify the continued
	// trajectory tracks the uninterrupted one.
	ckpt := filepath.Join(outDir, "state_000200.pfcp")
	restored, err := phasefield.Restore(ckpt, phasefield.Config{MovingWindow: true, WindowFraction: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %s: step %d, schedule pos %d, v=%.4f (mid-ramp)\n",
		ckpt, restored.Step(), restored.SchedulePos(), restored.Params().Temp.V)
	if err := restored.RunSchedule(sched, steps-restored.Step(), phasefield.ScheduleOptions{}); err != nil {
		log.Fatal(err)
	}
	dSolid := math.Abs(restored.SolidFraction() - sim.SolidFraction())
	fmt.Printf("restart vs uninterrupted after %d steps: |Δ solid fraction| = %.2e\n", steps, dSolid)
	if dSolid > 1e-3 {
		log.Fatalf("restarted trajectory diverged (%.2e)", dSolid)
	}
	fmt.Println("castbench complete: restart reproduces the uninterrupted trajectory")
}
