package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSimplex(rng *rand.Rand) [NPhases]float64 {
	var p [NPhases]float64
	sum := 0.0
	for a := 0; a < NPhases; a++ {
		p[a] = rng.Float64()
		sum += p[a]
	}
	for a := 0; a < NPhases; a++ {
		p[a] /= sum
	}
	return p
}

func TestDefaultParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Dt = -1 },
		func(p *Params) { p.Eps = 0 },
		func(p *Params) { p.Gamma[0][0] = 1 },
		func(p *Params) { p.Gamma[0][1] = 2 }, // breaks symmetry
		func(p *Params) { p.Gamma[1][2], p.Gamma[2][1] = -1, -1 },
		func(p *Params) { p.D[3] = -1 },
		func(p *Params) { p.Sys = nil },
		func(p *Params) { p.Dt = 100 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params not caught", i)
		}
	}
}

func TestStableDtPositiveAndSmall(t *testing.T) {
	p := DefaultParams()
	dt := p.StableDt()
	if dt <= 0 || dt > 1 {
		t.Errorf("StableDt = %g", dt)
	}
	if p.Dt > dt {
		t.Error("default dt exceeds stability limit")
	}
}

func TestTemperatureProfile(t *testing.T) {
	tm := Temperature{TE: 1, G: 0.01, V: 0.5, Z0: 10}
	// At z*dx = Z0 + V*t, T = TE.
	if got := tm.At(10, 1.0, 0); math.Abs(got-1) > 1e-14 {
		t.Errorf("T at isotherm = %g", got)
	}
	if got := tm.At(30, 1.0, 20); math.Abs(got-(1+0.01*(30-10-10))) > 1e-14 {
		t.Errorf("T = %g", got)
	}
	if tm.DTdt() != -0.005 {
		t.Errorf("DTdt = %g", tm.DTdt())
	}
	// Temperature increases with z (hot liquid above).
	if tm.At(50, 1, 0) <= tm.At(5, 1, 0) {
		t.Error("temperature not increasing with z")
	}
}

func TestInterpPartitionOfUnity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		phi := randSimplex(rng)
		var h [NPhases]float64
		Interp(&phi, &h)
		sum := 0.0
		for a := 0; a < NPhases; a++ {
			if h[a] < 0 || h[a] > 1 {
				t.Fatalf("h[%d]=%g outside [0,1] for phi=%v", a, h[a], phi)
			}
			sum += h[a]
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("h sums to %g for phi=%v", sum, phi)
		}
	}
}

func TestInterpBulkStates(t *testing.T) {
	for a := 0; a < NPhases; a++ {
		var phi, h [NPhases]float64
		phi[a] = 1
		Interp(&phi, &h)
		for b := 0; b < NPhases; b++ {
			want := 0.0
			if b == a {
				want = 1
			}
			if math.Abs(h[b]-want) > 1e-14 {
				t.Errorf("bulk %d: h[%d]=%g", a, b, h[b])
			}
		}
	}
}

func TestInterpDerivMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eps := 1e-6
	for i := 0; i < 50; i++ {
		phi := randSimplex(rng)
		// Keep away from simplex corners where w' changes fast.
		for a := range phi {
			phi[a] = 0.05 + 0.9*phi[a]
		}
		var dH [NPhases][NPhases]float64
		InterpDeriv(&phi, &dH)
		for a := 0; a < NPhases; a++ {
			pp, pm := phi, phi
			pp[a] += eps
			pm[a] -= eps
			var hp, hm [NPhases]float64
			Interp(&pp, &hp)
			Interp(&pm, &hm)
			for b := 0; b < NPhases; b++ {
				fd := (hp[b] - hm[b]) / (2 * eps)
				if math.Abs(fd-dH[b][a]) > 1e-5 {
					t.Fatalf("dH[%d][%d] = %g, FD %g (phi=%v)", b, a, dH[b][a], fd, phi)
				}
			}
		}
	}
}

func TestInterpDerivBulkVanishes(t *testing.T) {
	// In a bulk state w'(0)=w'(1)=0 so the whole Jacobian vanishes: the
	// driving force cannot shift bulk regions.
	var phi [NPhases]float64
	phi[2] = 1
	var dH [NPhases][NPhases]float64
	InterpDeriv(&phi, &dH)
	for b := 0; b < NPhases; b++ {
		for a := 0; a < NPhases; a++ {
			if dH[b][a] != 0 {
				t.Fatalf("dH[%d][%d]=%g in bulk", b, a, dH[b][a])
			}
		}
	}
}

func TestGradEnergyDerivatives(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(11))
	eps := 1e-6
	for i := 0; i < 30; i++ {
		phi := randSimplex(rng)
		var grad [NPhases]Vec3
		for a := 0; a < NPhases; a++ {
			for k := 0; k < 3; k++ {
				grad[a][k] = rng.NormFloat64() * 0.2
			}
		}
		var dPhi [NPhases]float64
		GradEnergyDPhi(p, &phi, &grad, &dPhi)
		for a := 0; a < NPhases; a++ {
			pp, pm := phi, phi
			pp[a] += eps
			pm[a] -= eps
			fd := (GradEnergy(p, &pp, &grad) - GradEnergy(p, &pm, &grad)) / (2 * eps)
			if math.Abs(fd-dPhi[a]) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("da/dphi[%d] = %g, FD %g", a, dPhi[a], fd)
			}
		}
		var dGrad [NPhases]Vec3
		GradEnergyDGrad(p, &phi, &grad, &dGrad)
		for a := 0; a < NPhases; a++ {
			for k := 0; k < 3; k++ {
				gp, gm := grad, grad
				gp[a][k] += eps
				gm[a][k] -= eps
				fd := (GradEnergy(p, &phi, &gp) - GradEnergy(p, &phi, &gm)) / (2 * eps)
				if math.Abs(fd-dGrad[a][k]) > 1e-5*(1+math.Abs(fd)) {
					t.Fatalf("da/dgrad[%d][%d] = %g, FD %g", a, k, dGrad[a][k], fd)
				}
			}
		}
	}
}

func TestGradEnergyZeroInBulk(t *testing.T) {
	p := DefaultParams()
	var phi [NPhases]float64
	phi[0] = 1
	var grad [NPhases]Vec3
	if e := GradEnergy(p, &phi, &grad); e != 0 {
		t.Errorf("bulk gradient energy = %g", e)
	}
	var d [NPhases]float64
	GradEnergyDPhi(p, &phi, &grad, &d)
	for a := range d {
		if d[a] != 0 {
			t.Errorf("bulk da/dphi[%d] = %g", a, d[a])
		}
	}
}

func TestObstacleDerivative(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(5))
	eps := 1e-7
	for i := 0; i < 30; i++ {
		phi := randSimplex(rng)
		var d [NPhases]float64
		ObstacleDPhi(p, &phi, &d)
		for a := 0; a < NPhases; a++ {
			pp, pm := phi, phi
			pp[a] += eps
			pm[a] -= eps
			fd := (Obstacle(p, &pp) - Obstacle(p, &pm)) / (2 * eps)
			if math.Abs(fd-d[a]) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("dω/dφ[%d] = %g, FD %g", a, d[a], fd)
			}
		}
	}
}

func TestObstacleZeroInBulk(t *testing.T) {
	p := DefaultParams()
	var phi [NPhases]float64
	phi[1] = 1
	if w := Obstacle(p, &phi); w != 0 {
		t.Errorf("bulk obstacle = %g", w)
	}
}

func TestDrivingForceZeroInBulk(t *testing.T) {
	var phi [NPhases]float64
	phi[Liquid] = 1
	pots := [NPhases]float64{1, -2, 3, 0.5}
	var out [NPhases]float64
	DrivingForce(&phi, &pots, &out)
	for a := range out {
		if out[a] != 0 {
			t.Errorf("bulk driving force[%d] = %g", a, out[a])
		}
	}
}

func TestDrivingForceSignFavorsLowerPotential(t *testing.T) {
	// Two-phase mix: lower grand potential phase must be pushed to grow,
	// i.e. its driving-force component (which enters the rhs that is
	// subtracted) must be smaller than the other's.
	phi := [NPhases]float64{0.5, 0, 0, 0.5}
	pots := [NPhases]float64{-1, 0, 0, 1} // solid 0 favored
	var out [NPhases]float64
	DrivingForce(&phi, &pots, &out)
	if out[0] >= out[Liquid] {
		t.Errorf("driving force does not favor low-ω phase: %v", out)
	}
}

func TestProjectSimplexProperties(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 3)
		}
		phi := [NPhases]float64{clamp(a), clamp(b), clamp(c), clamp(d)}
		ProjectSimplex(&phi)
		if !OnSimplex(&phi, 1e-9) {
			return false
		}
		// Idempotent.
		snap := phi
		ProjectSimplex(&phi)
		for i := range phi {
			if math.Abs(phi[i]-snap[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestProjectSimplexFixesBulkOvershoot(t *testing.T) {
	// The classic bulk overshoot (1+δ, −δ', 0, 0) must project to a pure
	// bulk state exactly.
	phi := [NPhases]float64{1.01, -0.005, -0.003, -0.002}
	ProjectSimplex(&phi)
	want := [NPhases]float64{1, 0, 0, 0}
	for a := range phi {
		if math.Abs(phi[a]-want[a]) > 1e-12 {
			t.Errorf("projected = %v", phi)
			break
		}
	}
}

func TestProjectSimplexPreservesInterior(t *testing.T) {
	phi := [NPhases]float64{0.25, 0.25, 0.25, 0.25}
	snap := phi
	ProjectSimplex(&phi)
	if phi != snap {
		t.Errorf("interior point moved: %v", phi)
	}
}

func TestProjectSimplexNearest(t *testing.T) {
	// Projection of (0.5, 0.7, 0, 0) onto the simplex: subtract
	// theta=(1.2-1)/2=0.1 from positive entries: (0.4, 0.6, 0, 0).
	phi := [NPhases]float64{0.5, 0.7, 0, 0}
	ProjectSimplex(&phi)
	want := [NPhases]float64{0.4, 0.6, 0, 0}
	for a := range phi {
		if math.Abs(phi[a]-want[a]) > 1e-12 {
			t.Fatalf("projected = %v, want %v", phi, want)
		}
	}
}

func TestProjectSimplexAllZero(t *testing.T) {
	var phi [NPhases]float64
	ProjectSimplex(&phi)
	if !OnSimplex(&phi, 1e-12) {
		t.Errorf("zero vector projected off-simplex: %v", phi)
	}
}

func TestGATIdentity(t *testing.T) {
	if GAT(0.3) != 0.3 {
		t.Error("GAT should be identity interpolation")
	}
}

func TestVec3Algebra(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if v.Add(w) != (Vec3{5, 7, 9}) {
		t.Error("Add")
	}
	if v.Sub(w) != (Vec3{-3, -3, -3}) {
		t.Error("Sub")
	}
	if v.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale")
	}
	if v.Dot(w) != 32 {
		t.Error("Dot")
	}
	if v.Norm2() != 14 {
		t.Error("Norm2")
	}
}
