// Package vtk writes fields in the legacy VTK structured-points format for
// visualization (ParaView / VisIt), complementing the mesh-based output
// path of §3.2 for the rare occasions the full volume is needed. Data is
// written in single precision, consistent with the checkpointing policy.
package vtk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/grid"
)

// WriteField writes all components of f's interior as a legacy VTK
// STRUCTURED_POINTS dataset with one scalar array per component. names must
// supply one array name per component.
func WriteField(w io.Writer, f *grid.Field, spacing float64, names []string) error {
	if len(names) != f.NComp {
		return fmt.Errorf("vtk: %d names for %d components", len(names), f.NComp)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# vtk DataFile Version 3.0\n")
	fmt.Fprintf(bw, "phasefield output\n")
	fmt.Fprintf(bw, "BINARY\n")
	fmt.Fprintf(bw, "DATASET STRUCTURED_POINTS\n")
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", f.NX, f.NY, f.NZ)
	fmt.Fprintf(bw, "ORIGIN 0 0 0\n")
	fmt.Fprintf(bw, "SPACING %g %g %g\n", spacing, spacing, spacing)
	fmt.Fprintf(bw, "POINT_DATA %d\n", f.NumInterior())

	buf := make([]float32, f.NX)
	for c := 0; c < f.NComp; c++ {
		fmt.Fprintf(bw, "SCALARS %s float 1\n", names[c])
		fmt.Fprintf(bw, "LOOKUP_TABLE default\n")
		for z := 0; z < f.NZ; z++ {
			for y := 0; y < f.NY; y++ {
				for x := 0; x < f.NX; x++ {
					buf[x] = float32(f.At(c, x, y, z))
				}
				// Legacy VTK binary payloads are big-endian.
				if err := binary.Write(bw, binary.BigEndian, buf); err != nil {
					return err
				}
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
