package schedule

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/grid"
	"repro/internal/kernels"
)

// json.go is the JSON front-end of the schedule subsystem (the format read
// by cmd/solidify -schedule). A schedule file is an object with an "events"
// array; each event is discriminated by its "type" field:
//
//	{"events": [
//	  {"type": "burst",  "step": 200, "count": 6, "phase": -1,
//	   "radius": 2.5, "zmin": 40, "zmax": 56, "seed": 7},
//	  {"type": "ramp",   "param": "v", "step": 0, "over": 800,
//	   "from": 0.02, "to": 0.05},
//	  {"type": "switch", "step": 400, "phi": "shortcut", "mu": "stag",
//	   "strategy": "fourcell"},
//	  {"type": "setbc",  "step": 300, "over": 200, "face": "z-",
//	   "field": "mu", "kind": "dirichlet", "from": [0, 0], "to": [0.08, -0.04]},
//	  {"type": "checkpoint", "every": 500, "path": "out/state_%06d.pfcp"}
//	]}
//
// Variant names follow the optimization ladder: general, basic, simd, tz,
// stag, shortcut. Strategy names follow Fig. 5: cellwise,
// cellwise-shortcut, fourcell, plus "off" to unpin. Omitted switch fields
// keep the current kernel. Face names are "x-", "x+", "y-", "y+", "z-",
// "z+"; BC kinds are "periodic", "neumann", "dirichlet"; setbc fields are
// "phi" (4 wall values, one per phase) or "mu" (2, one per reduced
// chemical potential). "from"/"to" are numbers on a ramp and arrays on a
// setbc event.

// variantNames maps JSON names to ladder rungs.
var variantNames = map[string]kernels.Variant{
	"general":  kernels.VarGeneral,
	"basic":    kernels.VarBasic,
	"simd":     kernels.VarSIMD,
	"tz":       kernels.VarTz,
	"stag":     kernels.VarStag,
	"shortcut": kernels.VarShortcut,
}

// VariantName returns the JSON name of a ladder rung.
func VariantName(v kernels.Variant) string {
	for name, vv := range variantNames {
		if vv == v {
			return name
		}
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// ParseVariant resolves a JSON variant name ("" = KeepVariant).
func ParseVariant(name string) (kernels.Variant, error) {
	if name == "" {
		return KeepVariant, nil
	}
	if v, ok := variantNames[strings.ToLower(name)]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("schedule: unknown variant %q", name)
}

var strategyNames = map[string]int{
	"":                  StrategyKeep,
	"off":               StrategyOff,
	"cellwise":          int(kernels.StratCellwise),
	"cellwise-shortcut": int(kernels.StratCellwiseShortcut),
	"fourcell":          int(kernels.StratFourCell),
}

// ParseStrategy resolves a JSON strategy name ("" = StrategyKeep).
func ParseStrategy(name string) (int, error) {
	if s, ok := strategyNames[strings.ToLower(name)]; ok {
		return s, nil
	}
	return 0, fmt.Errorf("schedule: unknown strategy %q", name)
}

var paramNames = map[string]Param{
	"v":        ParamPullVelocity,
	"velocity": ParamPullVelocity,
	"g":        ParamGradient,
	"gradient": ParamGradient,
	"dt":       ParamDt,
}

// ParseParam resolves a JSON ramp parameter name.
func ParseParam(name string) (Param, error) {
	if p, ok := paramNames[strings.ToLower(name)]; ok {
		return p, nil
	}
	return 0, fmt.Errorf("schedule: unknown ramp param %q", name)
}

var faceNames = map[string]grid.Face{
	"x-": grid.XMin, "x+": grid.XMax,
	"y-": grid.YMin, "y+": grid.YMax,
	"z-": grid.ZMin, "z+": grid.ZMax,
	"bottom": grid.ZMin, "top": grid.ZMax,
}

// ParseFace resolves a JSON face name ("z-", "top", ...).
func ParseFace(name string) (grid.Face, error) {
	if f, ok := faceNames[strings.ToLower(name)]; ok {
		return f, nil
	}
	return 0, fmt.Errorf("schedule: unknown face %q", name)
}

var bcKindNames = map[string]grid.BCKind{
	"periodic":  grid.BCPeriodic,
	"neumann":   grid.BCNeumann,
	"dirichlet": grid.BCDirichlet,
}

// ParseBCKind resolves a JSON boundary-condition kind name.
func ParseBCKind(name string) (grid.BCKind, error) {
	if k, ok := bcKindNames[strings.ToLower(name)]; ok {
		return k, nil
	}
	return 0, fmt.Errorf("schedule: unknown BC kind %q", name)
}

var bcFieldNames = map[string]BCField{
	"phi": BCPhi,
	"mu":  BCMu,
}

// ParseBCField resolves a JSON setbc field name.
func ParseBCField(name string) (BCField, error) {
	if f, ok := bcFieldNames[strings.ToLower(name)]; ok {
		return f, nil
	}
	return 0, fmt.Errorf("schedule: unknown BC field %q", name)
}

// jsonEvent is the union of all event fields, discriminated by Type.
type jsonEvent struct {
	Type string `json:"type"`
	Step int    `json:"step"`

	// burst
	Count  int     `json:"count"`
	Phase  *int    `json:"phase"`
	Radius float64 `json:"radius"`
	ZMin   int     `json:"zmin"`
	ZMax   int     `json:"zmax"`
	Seed   int64   `json:"seed"`

	// ramp + setbc. From/To are raw because the two event classes share
	// the keys with different shapes: a ramp carries numbers, a setbc
	// event arrays of wall values.
	Param string          `json:"param"`
	Over  int             `json:"over"`
	From  json.RawMessage `json:"from"`
	To    json.RawMessage `json:"to"`

	// switch
	Phi      string `json:"phi"`
	Mu       string `json:"mu"`
	Strategy string `json:"strategy"`

	// setbc
	Face  string `json:"face"`
	Field string `json:"field"`
	Kind  string `json:"kind"`

	// checkpoint
	Every int    `json:"every"`
	Path  string `json:"path"`
}

// scalar decodes a ramp endpoint (missing = 0).
func scalar(raw json.RawMessage, key string) (float64, error) {
	if raw == nil {
		return 0, nil
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, fmt.Errorf("%s: %w", key, err)
	}
	return v, nil
}

// vector decodes a setbc wall-value array (missing = nil).
func vector(raw json.RawMessage, key string) ([]float64, error) {
	if raw == nil {
		return nil, nil
	}
	var v []float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", key, err)
	}
	return v, nil
}

type jsonSchedule struct {
	Events []jsonEvent `json:"events"`
}

// FromJSONBytes parses and validates a schedule from an in-memory blob
// (the embedded "schedule" object of a job-daemon submission).
func FromJSONBytes(b []byte) (*Schedule, error) {
	return FromJSON(bytes.NewReader(b))
}

// FromJSON parses and validates a schedule file.
func FromJSON(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var js jsonSchedule
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	events := make([]Event, 0, len(js.Events))
	for i, je := range js.Events {
		e, err := je.toEvent()
		if err != nil {
			return nil, fmt.Errorf("schedule: event %d: %w", i, err)
		}
		events = append(events, e)
	}
	return New(events...)
}

func (je *jsonEvent) toEvent() (Event, error) {
	switch strings.ToLower(je.Type) {
	case "burst":
		phase := -1
		if je.Phase != nil {
			phase = *je.Phase
		}
		return NucleationBurst{
			Step: je.Step, Count: je.Count, Phase: phase,
			Radius: je.Radius, ZMin: je.ZMin, ZMax: je.ZMax, Seed: je.Seed,
		}, nil
	case "ramp":
		p, err := ParseParam(je.Param)
		if err != nil {
			return nil, err
		}
		from, err := scalar(je.From, "from")
		if err != nil {
			return nil, err
		}
		to, err := scalar(je.To, "to")
		if err != nil {
			return nil, err
		}
		return Ramp{Param: p, Step: je.Step, Over: je.Over, From: from, To: to}, nil
	case "setbc":
		face, err := ParseFace(je.Face)
		if err != nil {
			return nil, err
		}
		field, err := ParseBCField(je.Field)
		if err != nil {
			return nil, err
		}
		kind, err := ParseBCKind(je.Kind)
		if err != nil {
			return nil, err
		}
		from, err := vector(je.From, "from")
		if err != nil {
			return nil, err
		}
		to, err := vector(je.To, "to")
		if err != nil {
			return nil, err
		}
		return SetBC{Step: je.Step, Over: je.Over, Face: face, Field: field,
			Kind: kind, From: from, To: to}, nil
	case "switch":
		phi, err := ParseVariant(je.Phi)
		if err != nil {
			return nil, err
		}
		mu, err := ParseVariant(je.Mu)
		if err != nil {
			return nil, err
		}
		strat, err := ParseStrategy(je.Strategy)
		if err != nil {
			return nil, err
		}
		return SwitchVariant{Step: je.Step, Phi: phi, Mu: mu, Strategy: strat}, nil
	case "checkpoint":
		return Checkpoint{Step: je.Step, Every: je.Every, Path: je.Path}, nil
	}
	return nil, fmt.Errorf("unknown event type %q", je.Type)
}
