package jobd

import (
	"fmt"
	"sort"
)

// class.go — resource classes. A class is a named worker-budget cap W_c:
// the jobs of class c running at any instant never hold more than W_c of
// the global budget W in total, so an array of cheap scouts (class
// "small") cannot starve a production run (class "large") no matter how
// many children it queues.
//
// Shares are assigned by per-class water-filling: the global budget is
// split max-min fairly across classes in proportion to their running job
// counts, no class above its cap, with budget a capped class cannot use
// flowing to the others; within a class, jobs split the class total
// evenly. With a single class (the default), this reduces exactly to the
// original ⌊W/n⌋ policy.
//
// Classes double as the federation's tenant boundary: the gateway
// (internal/fleet) maps each tenant to one class and stamps every spec it
// forwards, so a daemon's class caps *are* its per-tenant compute caps —
// no second quota mechanism. ClassUsage / GET /classes exposes the live
// per-class load the gateway's placement reads.

// DefaultClass is the resource class of jobs that name none. Its budget is
// the full global budget unless Config.Classes overrides it.
const DefaultClass = "default"

// ClassUsage is the live view of one resource class (GET /classes): its
// configured worker cap and current load. The federation gateway places
// tenant work on the daemon whose tenant class has the most headroom.
type ClassUsage struct {
	Class string `json:"class"`
	// Budget is the class's worker cap W_c (1 for a class the daemon does
	// not configure but a restored job names).
	Budget int `json:"budget"`
	// Active is the number of sweep workers the class's jobs hold right now.
	Active int `json:"active"`
	// Running and Queued count the class's jobs in those states.
	Running int `json:"running"`
	Queued  int `json:"queued"`
}

// ClassUsage reports every class the daemon knows — configured ones plus
// any a live job names — sorted by class name.
func (s *Server) ClassUsage() []ClassUsage {
	s.mu.Lock()
	rows := map[string]*ClassUsage{}
	row := func(name string) *ClassUsage {
		r, ok := rows[name]
		if !ok {
			r = &ClassUsage{Class: name, Budget: s.classBudget(name)}
			rows[name] = r
		}
		return r
	}
	for name := range s.classes {
		row(name)
	}
	for _, j := range s.running {
		row(j.Spec.Class).Running++
	}
	for _, j := range s.queue {
		row(j.Spec.Class).Queued++
	}
	s.mu.Unlock()

	out := make([]ClassUsage, 0, len(rows))
	for _, r := range rows {
		// The gauge is read outside s.mu: worker counts move while jobs
		// step, so this is a snapshot either way.
		r.Active = s.gauge.Class(r.Class).Active()
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// resolveClasses normalizes the configured class table: budgets are
// clamped to [1, budget] and the default class always exists.
func resolveClasses(budget int, classes map[string]int) map[string]int {
	out := make(map[string]int, len(classes)+1)
	for name, w := range classes {
		if name == "" {
			name = DefaultClass
		}
		if w < 1 {
			w = 1
		}
		if w > budget {
			w = budget
		}
		out[name] = w
	}
	if _, ok := out[DefaultClass]; !ok {
		out[DefaultClass] = budget
	}
	return out
}

// classBudget returns the worker cap of a class. Submissions validate the
// name up front; a name that is unknown anyway (a spooled or stored job
// restored under different -class flags) is capped at one worker — the
// conservative reading that preserves the anti-starvation guarantee for
// the classes that *are* configured. warnUnknownClass makes the situation
// loud at load time.
func (s *Server) classBudget(name string) int {
	if w, ok := s.classes[name]; ok {
		return w
	}
	return 1
}

// warnUnknownClass logs a restored job whose class the current daemon
// does not configure.
func (s *Server) warnUnknownClass(id, class string) {
	if _, ok := s.classes[class]; !ok {
		s.logf("jobd: restored job %s names unconfigured class %q — capped at 1 worker (re-add the -class flag to restore its budget)", id, class)
	}
}

// validateClass rejects submissions naming an unconfigured class or a
// decomposition the class cap can never run.
func (s *Server) validateClass(sp *Spec) error {
	if _, ok := s.classes[sp.Class]; !ok {
		names := make([]string, 0, len(s.classes))
		for n := range s.classes {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("jobd: unknown resource class %q (configured: %v)", sp.Class, names)
	}
	if w := s.classBudget(sp.Class); sp.blocks() > w {
		return fmt.Errorf("jobd: job needs %d block ranks but class %q caps at %d workers",
			sp.blocks(), sp.Class, w)
	}
	return nil
}

// sharesLocked computes every running job's worker share — plus that of an
// optional admission candidate — by per-class water-filling. s.mu must be
// held.
func (s *Server) sharesLocked(extra *Job) map[*Job]int {
	jobs := make([]*Job, 0, len(s.running)+1)
	for _, j := range s.running {
		jobs = append(jobs, j)
	}
	if extra != nil {
		jobs = append(jobs, extra)
	}
	return s.sharesFor(jobs)
}

// sharesFor water-fills the budget over an explicit job set.
// Deterministic: classes are processed most-constrained first (smallest
// cap per job, ties by name), so equal inputs always produce equal
// shares. The shares sum to at most the global budget.
func (s *Server) sharesFor(jobs []*Job) map[*Job]int {
	byClass := map[string][]*Job{}
	total := 0
	for _, j := range jobs {
		byClass[j.Spec.Class] = append(byClass[j.Spec.Class], j)
		total++
	}
	shares := make(map[*Job]int, total)
	if total == 0 {
		return shares
	}

	type load struct {
		name string
		cap  int
		jobs []*Job
	}
	classes := make([]load, 0, len(byClass))
	for name, jobs := range byClass {
		classes = append(classes, load{name: name, cap: s.classBudget(name), jobs: jobs})
	}
	// Most-constrained class first: smallest cap per job; name breaks ties.
	sort.Slice(classes, func(a, b int) bool {
		ca, cb := classes[a], classes[b]
		if ca.cap*len(cb.jobs) != cb.cap*len(ca.jobs) {
			return ca.cap*len(cb.jobs) < cb.cap*len(ca.jobs)
		}
		return ca.name < cb.name
	})
	remW, remJobs := s.cfg.Budget, total
	for _, c := range classes {
		alloc := remW * len(c.jobs) / remJobs
		if alloc > c.cap {
			alloc = c.cap
		}
		remW -= alloc
		remJobs -= len(c.jobs)
		share := alloc / len(c.jobs)
		for _, j := range c.jobs {
			shares[j] = share
		}
	}
	return shares
}
