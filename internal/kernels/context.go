// Package kernels implements the two compute kernels of the solver — the
// φ-sweep (Eq. 1, D3C7) and the µ-sweep (Eq. 3, D3C19 including the
// anti-trapping current of Eq. 4) — in every variant of the paper's
// optimization ladder (§3.3, §5.1.1):
//
//	general   — emulation of the original general-purpose code: indirect
//	            per-cell function calls, no specialization;
//	basic     — straightforward specialized scalar port ("basic waLBerla
//	            implementation");
//	simd      — explicitly vectorized kernels: cellwise vectorization over
//	            the four phases for φ, four-cell vectorization for µ, plus
//	            common-subexpression precomputation;
//	tz        — + per-z-slice precomputation of all temperature-dependent
//	            quantities (valid because T = T(z,t));
//	stag      — + staggered-value buffers that reuse the three already
//	            computed face values per cell, halving staggered work;
//	shortcut  — + region-dependent early exits (bulk cells skip the φ
//	            update; cells without liquid skip the anti-trapping
//	            current).
//
// A regularly running equivalence suite (kernels_test.go) checks all
// variants against each other, mirroring the paper's own test strategy.
package kernels

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/thermo"
)

// NP and NR alias the model dimensions for brevity.
const (
	NP = core.NPhases
	NR = core.NRed
	LQ = core.Liquid
)

// Variant selects a rung of the optimization ladder.
type Variant int

const (
	VarGeneral Variant = iota
	VarBasic
	VarSIMD
	VarTz
	VarStag
	VarShortcut
	NumVariants
)

func (v Variant) String() string {
	switch v {
	case VarGeneral:
		return "general purpose code"
	case VarBasic:
		return "basic waLBerla implementation"
	case VarSIMD:
		return "with SIMD intrinsics"
	case VarTz:
		return "with T(z) optimization"
	case VarStag:
		return "with staggered buffer"
	case VarShortcut:
		return "with shortcuts"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// PhiStrategy selects the φ-kernel vectorization strategy compared in
// Fig. 5.
type PhiStrategy int

const (
	// StratCellwise vectorizes over the four phases of one cell.
	StratCellwise PhiStrategy = iota
	// StratCellwiseShortcut is cellwise with per-cell branching.
	StratCellwiseShortcut
	// StratFourCell processes four consecutive cells per iteration and
	// can only skip work when a condition holds for all four.
	StratFourCell
)

func (s PhiStrategy) String() string {
	switch s {
	case StratCellwise:
		return "cellwise"
	case StratCellwiseShortcut:
		return "cellwise, with shortcuts"
	case StratFourCell:
		return "four cells"
	}
	return fmt.Sprintf("PhiStrategy(%d)", int(s))
}

// Fields bundles the four lattices of Algorithm 1: source and destination
// fields for φ (NComp = 4) and µ (NComp = 2).
type Fields struct {
	PhiSrc, PhiDst *grid.Field
	MuSrc, MuDst   *grid.Field
}

// NewFields allocates the four lattices for a block of the given interior
// size. The φ-field uses SoA layout (the production choice, §5.1.1), µ uses
// SoA as well.
func NewFields(nx, ny, nz int) *Fields {
	return &Fields{
		PhiSrc: grid.NewField(nx, ny, nz, NP, 1, grid.SoA),
		PhiDst: grid.NewField(nx, ny, nz, NP, 1, grid.SoA),
		MuSrc:  grid.NewField(nx, ny, nz, NR, 1, grid.SoA),
		MuDst:  grid.NewField(nx, ny, nz, NR, 1, grid.SoA),
	}
}

// Swap exchanges source and destination fields (Algorithm 1, line 7).
func (f *Fields) Swap() {
	f.PhiSrc.Swap(f.PhiDst)
	f.MuSrc.Swap(f.MuDst)
}

// Clone deep-copies all four lattices.
func (f *Fields) Clone() *Fields {
	return &Fields{
		PhiSrc: f.PhiSrc.Clone(),
		PhiDst: f.PhiDst.Clone(),
		MuSrc:  f.MuSrc.Clone(),
		MuDst:  f.MuDst.Clone(),
	}
}

// Ctx carries per-sweep context: parameters, the block's global z offset
// (for the analytic temperature) and the current simulation time.
type Ctx struct {
	P    *core.Params
	ZOff int     // global z index of local z=0
	Time float64 // current simulation time
}

// TempSlice holds every temperature-dependent quantity for one z-slice,
// precomputed once per slice by the T(z) optimization instead of per cell.
type TempSlice struct {
	T, DT float64 // temperature and (T − T_E)

	// Per-phase grand-potential pieces: ω_α(µ) = −Σ_k (µ_k² Inv4A[k][α]
	// + µ_k C0T[k][α]) + B[α].
	Inv4A [NR][NP]float64
	C0T   [NR][NP]float64
	B     [NP]float64

	// Susceptibility contributions 1/(2A) and equilibrium-concentration
	// temperature slopes per phase.
	InvTwoA [NR][NP]float64
	DC0dT   [NR][NP]float64
}

// Fill populates ts for global slice z at time t.
func (ts *TempSlice) Fill(p *core.Params, zGlobal int, t float64) {
	ts.T = p.Temp.At(zGlobal, p.Dx, t)
	ts.DT = ts.T - p.Sys.TE
	for a := 0; a < NP; a++ {
		ph := &p.Sys.Phases[a]
		for k := 0; k < NR; k++ {
			ts.Inv4A[k][a] = 1 / (4 * ph.A[k])
			ts.InvTwoA[k][a] = 1 / (2 * ph.A[k])
			ts.C0T[k][a] = ph.C0[k] + ph.DC0dT[k]*ts.DT
			ts.DC0dT[k][a] = ph.DC0dT[k]
		}
		ts.B[a] = ph.B0 + ph.DBdT*ts.DT
	}
}

// GrandPots evaluates ω_α(µ,T) for all phases from the precomputed tables.
func (ts *TempSlice) GrandPots(mu *[NR]float64, out *[NP]float64) {
	for a := 0; a < NP; a++ {
		w := ts.B[a]
		for k := 0; k < NR; k++ {
			w -= mu[k]*mu[k]*ts.Inv4A[k][a] + mu[k]*ts.C0T[k][a]
		}
		out[a] = w
	}
}

// Conc evaluates c_α(µ,T) for phase a from the tables.
func (ts *TempSlice) Conc(a int, mu *[NR]float64) [NR]float64 {
	var c [NR]float64
	for k := 0; k < NR; k++ {
		c[k] = mu[k]*ts.InvTwoA[k][a] + ts.C0T[k][a]
	}
	return c
}

// grandPotsDirect evaluates ω_α(µ,T) through the thermodynamic database
// (per-cell path of the non-T(z) variants).
func grandPotsDirect(sys *thermo.System, mu *[NR]float64, dT float64, out *[NP]float64) {
	m := [NR]float64{mu[0], mu[1]}
	for a := 0; a < NP; a++ {
		out[a] = sys.Phases[a].GrandPot(m, dT)
	}
}

// Scratch holds per-goroutine staggered-value buffers sized for a block of
// nx×ny cells per slice. Buffers are reused across slices and timesteps.
type Scratch struct {
	nx, ny int

	// µ staggered buffers: flux component per reduced component.
	muX []float64 // east-face fluxes of the previous x cell: NR values
	muY []float64 // north-face fluxes of the previous y row: nx*NR
	muZ []float64 // top-face fluxes of the previous z slab: nx*ny*NR

	// φ staggered buffers: flux component per phase.
	phX []float64 // NP
	phY []float64 // nx*NP
	phZ []float64 // nx*ny*NP

	// zValidPhi/zValidMu report whether the z slab buffers hold the
	// previous slice of the current sweep.
	zValidPhi bool
	zValidMu  bool
}

// NewScratch allocates buffers for blocks up to nx×ny cells per slice.
func NewScratch(nx, ny int) *Scratch {
	return &Scratch{
		nx: nx, ny: ny,
		muX: make([]float64, NR),
		muY: make([]float64, nx*NR),
		muZ: make([]float64, nx*ny*NR),
		phX: make([]float64, NP),
		phY: make([]float64, nx*NP),
		phZ: make([]float64, nx*ny*NP),
	}
}

// ensure grows the scratch buffers if the block is larger than allocated.
func (s *Scratch) ensure(nx, ny int) {
	if nx <= s.nx && ny <= s.ny {
		return
	}
	*s = *NewScratch(maxInt(nx, s.nx), maxInt(ny, s.ny))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
