package grid

import (
	"testing"
	"testing/quick"
)

// fillPattern writes a unique value into every interior cell.
func fillPattern(f *Field) {
	f.Interior(func(x, y, z int) {
		for c := 0; c < f.NComp; c++ {
			f.Set(c, x, y, z, float64(c*1000000+(z+1)*10000+(y+1)*100+(x+1)))
		}
	})
}

func TestFaceOpposite(t *testing.T) {
	for f := Face(0); f < NumFaces; f++ {
		if f.Opposite().Opposite() != f {
			t.Errorf("Opposite not involutive for %v", f)
		}
		if f.Opposite().Axis() != f.Axis() {
			t.Errorf("Opposite changes axis for %v", f)
		}
		if f.IsMin() == f.Opposite().IsMin() {
			t.Errorf("Opposite keeps IsMin for %v", f)
		}
	}
}

func TestFaceStrings(t *testing.T) {
	want := []string{"x-", "x+", "y-", "y+", "z-", "z+"}
	for f := Face(0); f < NumFaces; f++ {
		if f.String() != want[f] {
			t.Errorf("Face(%d).String() = %q, want %q", f, f.String(), want[f])
		}
	}
}

func TestPeriodicGhosts(t *testing.T) {
	f := NewField(4, 4, 4, 1, 1, AoS)
	fillPattern(f)
	bs := AllPeriodic()
	bs.Apply(f)

	// Ghost at x=-1 equals interior at x=NX-1.
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			if f.At(0, -1, y, z) != f.At(0, 3, y, z) {
				t.Fatalf("x- ghost wrong at y=%d z=%d", y, z)
			}
			if f.At(0, 4, y, z) != f.At(0, 0, y, z) {
				t.Fatalf("x+ ghost wrong at y=%d z=%d", y, z)
			}
		}
	}
	// Corner ghost (-1,-1,-1) equals interior (3,3,3) thanks to the staged fill.
	if f.At(0, -1, -1, -1) != f.At(0, 3, 3, 3) {
		t.Errorf("corner ghost = %v, want %v", f.At(0, -1, -1, -1), f.At(0, 3, 3, 3))
	}
	// Edge ghost (-1, 2, 4) equals (3, 2, 0).
	if f.At(0, -1, 2, 4) != f.At(0, 3, 2, 0) {
		t.Errorf("edge ghost wrong")
	}
}

func TestNeumannGhosts(t *testing.T) {
	f := NewField(3, 3, 3, 2, 1, SoA)
	fillPattern(f)
	bs := AllNeumann()
	bs.Apply(f)
	for c := 0; c < 2; c++ {
		for z := 0; z < 3; z++ {
			for y := 0; y < 3; y++ {
				if f.At(c, -1, y, z) != f.At(c, 0, y, z) {
					t.Fatalf("x- neumann wrong c=%d", c)
				}
				if f.At(c, 3, y, z) != f.At(c, 2, y, z) {
					t.Fatalf("x+ neumann wrong c=%d", c)
				}
			}
		}
	}
	// Zero gradient across every face means corner mirrors interior corner.
	if f.At(0, -1, -1, -1) != f.At(0, 0, 0, 0) {
		t.Error("corner neumann wrong")
	}
}

func TestDirichletGhosts(t *testing.T) {
	f := NewField(3, 3, 3, 2, 1, AoS)
	f.Fill(0)
	f.Interior(func(x, y, z int) {
		f.Set(0, x, y, z, 4)
		f.Set(1, x, y, z, 8)
	})
	var bs BoundarySet
	bs[ZMin] = BC{Kind: BCDirichlet, Values: []float64{1, 2}}
	bs.Apply(f)
	// Ghost cells carry the prescribed values directly.
	if got := f.At(0, 1, 1, -1); got != 1 {
		t.Errorf("dirichlet comp0 ghost = %v, want 1", got)
	}
	if got := f.At(1, 1, 1, -1); got != 2 {
		t.Errorf("dirichlet comp1 ghost = %v, want 2", got)
	}
}

func TestDirectionalSolidificationSet(t *testing.T) {
	bs := DirectionalSolidification([]float64{1, 0})
	if bs[XMin].Kind != BCPeriodic || bs[YMax].Kind != BCPeriodic {
		t.Error("lateral faces should be periodic")
	}
	if bs[ZMin].Kind != BCDirichlet {
		t.Error("bottom should be dirichlet")
	}
	if bs[ZMax].Kind != BCNeumann {
		t.Error("top should be neumann")
	}
}

// Property: applying periodic BCs twice is idempotent on ghosts.
func TestPeriodicIdempotent(t *testing.T) {
	f := func(seed uint8) bool {
		fl := NewField(3, 4, 2, 1, 1, AoS)
		v := float64(seed)
		fl.Interior(func(x, y, z int) {
			v = v*1.7 + 0.3
			fl.Set(0, x, y, z, v)
		})
		bs := AllPeriodic()
		bs.Apply(fl)
		snap := fl.Clone()
		bs.Apply(fl)
		for i := range fl.Data {
			if fl.Data[i] != snap.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBCKindString(t *testing.T) {
	names := map[BCKind]string{BCNone: "none", BCPeriodic: "periodic", BCNeumann: "neumann", BCDirichlet: "dirichlet"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
}

func TestSetFaceReusesBacking(t *testing.T) {
	var b BoundarySet
	if realloc := b.SetFace(ZMin, BCDirichlet, []float64{1, 2, 3, 4}); !realloc {
		t.Error("first install should report a fresh backing array")
	}
	derived := b // simulates a rank's BlockBCs copy: shares Values backing
	if realloc := b.SetFace(ZMin, BCDirichlet, []float64{5, 6, 7, 8}); realloc {
		t.Error("same-arity update should reuse the backing array")
	}
	// The in-place update must be visible through the derived copy.
	for i, want := range []float64{5, 6, 7, 8} {
		if derived[ZMin].Values[i] != want {
			t.Fatalf("derived copy saw stale value %g at %d", derived[ZMin].Values[i], i)
		}
	}
	// Kind-only changes leave Values untouched.
	if realloc := b.SetFace(ZMin, BCNeumann, nil); realloc {
		t.Error("kind-only change reported a realloc")
	}
	if b[ZMin].Kind != BCNeumann {
		t.Error("kind not installed")
	}
}

func TestBoundarySetClone(t *testing.T) {
	b := DirectionalSolidification([]float64{1, 0, 0, 0})
	c := b.Clone()
	c[ZMin].Values[0] = 42
	if b[ZMin].Values[0] != 1 {
		t.Error("Clone shares the Values backing")
	}
	if c[ZMax].Kind != BCNeumann || c[XMin].Kind != BCPeriodic {
		t.Error("Clone dropped kinds")
	}
}

func TestBoundarySetValidate(t *testing.T) {
	b := DirectionalSolidification([]float64{1, 0, 0, 0})
	if err := b.Validate(4); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := b.Validate(2); err == nil {
		t.Error("arity mismatch accepted")
	}
	var none BoundarySet
	if err := none.Validate(4); err != nil {
		t.Errorf("all-none set rejected: %v", err)
	}
}
