package perfmodel

import (
	"math"
	"testing"
)

// §5.1.1: 80 GiB/s and 680 B/LUP give a 126.3 MLUP/s memory-bound ceiling.
func TestRooflineMemoryBoundMatchesPaper(t *testing.T) {
	r := NewRoofline(80*(1<<30), 21.6e9*16)
	got := r.MemoryBoundMLUPs(MuBytesPerLUP)
	if math.Abs(got-126.3) > 0.5 {
		t.Errorf("memory-bound ceiling %.1f MLUP/s, paper reports 126.3", got)
	}
}

// §5.1.1: arithmetic intensity of the µ-kernel is approximately two FLOP
// per byte, and the measured node rate (16 × 4.2 MLUP/s) stays below the
// 126.3 MLUP/s bandwidth ceiling — the code is therefore limited by in-core
// execution, not memory (the paper's roofline argument).
func TestMuKernelComputeBound(t *testing.T) {
	ai := ArithmeticIntensity(float64(MuKernelOps.Total()), MuBytesPerLUP)
	if ai < 2.0 {
		t.Errorf("arithmetic intensity %.2f < 2", ai)
	}
	m := SuperMUC()
	r := NewRoofline(m.StreamBWNode, m.PeakFLOPsNode())
	measuredNode := 16 * 4.2 // MLUP/s per node
	memCeil := r.MemoryBoundMLUPs(MuBytesPerLUP)
	if measuredNode >= memCeil {
		t.Errorf("measured %.1f MLUP/s should sit below the memory ceiling %.1f", measuredNode, memCeil)
	}
	// The in-core ceiling at the IACA bound (43%) also exceeds the
	// measurement, consistent with front-end/cache imperfections.
	inCore := r.ComputeBoundMLUPs(float64(MuKernelOps.Total()), SandyBridge.PeakFraction(MuKernelOps))
	if measuredNode >= inCore {
		t.Errorf("measured %.1f exceeds the in-core ceiling %.1f", measuredNode, inCore)
	}
}

// §5.1.1: the µ-kernel totals 1384 FLOP per cell update.
func TestMuKernelFLOPCount(t *testing.T) {
	if MuKernelOps.Total() != 1384 {
		t.Errorf("µ FLOP/LUP = %d, paper reports 1384", MuKernelOps.Total())
	}
}

// §5.1.1: 4.2 MLUP/s per core ⇒ 5.8 GFLOP/s ⇒ 27% of the 21.6 GFLOP/s core
// peak.
func TestFractionOfPeakMatchesPaper(t *testing.T) {
	m := SuperMUC()
	g := AchievedGFLOPs(4.2, float64(MuKernelOps.Total()))
	if math.Abs(g-5.8) > 0.05 {
		t.Errorf("achieved %.2f GFLOP/s, paper reports 5.8", g)
	}
	f := FractionOfPeak(4.2, float64(MuKernelOps.Total()), m.PeakFLOPsCore())
	if math.Abs(f-0.27) > 0.01 {
		t.Errorf("fraction of peak %.3f, paper reports 0.27", f)
	}
}

// §5.1.1: IACA caps the fully vectorized µ-kernel at ~43% peak due to
// add/mul imbalance and division latency.
func TestPortModelImbalanceBound(t *testing.T) {
	f := SandyBridge.PeakFraction(MuKernelOps)
	if f < 0.38 || f > 0.48 {
		t.Errorf("port-model bound %.3f, paper's IACA analysis reports ≤0.43", f)
	}
	// A perfectly balanced division-free mix attains 100%.
	if b := SandyBridge.PeakFraction(KernelOpMix{Adds: 500, Muls: 500}); math.Abs(b-1) > 1e-12 {
		t.Errorf("balanced mix bound %.3f, want 1", b)
	}
	// The measured 27% must not exceed the in-core bound.
	if 0.27 > f {
		t.Errorf("measured fraction exceeds in-core bound: 0.27 > %.3f", f)
	}
}

func TestMachineDescriptors(t *testing.T) {
	for _, m := range Machines() {
		if m.TotalCores <= 0 || m.CoresPerNode <= 0 {
			t.Errorf("%s: bad core counts", m.Name)
		}
		if m.PeakFLOPsCore() <= 0 || m.StreamBWNode <= 0 {
			t.Errorf("%s: bad rates", m.Name)
		}
		for s := 0; s < 3; s++ {
			if m.PhiRate[s] <= 0 || m.MuRate[s] <= 0 {
				t.Errorf("%s: missing kernel rates", m.Name)
			}
		}
		// Shortcut behaviour: interface is the slowest composition
		// for both kernels.
		if m.PhiRate[ScnInterface] >= m.PhiRate[ScnLiquid] {
			t.Errorf("%s: φ interface rate should be slowest", m.Name)
		}
		if m.MuRate[ScnInterface] >= m.MuRate[ScnSolid] {
			t.Errorf("%s: µ interface rate should be below solid", m.Name)
		}
	}
	// SuperMUC core peak: 2.7 GHz × 8 = 21.6 GFLOP/s (§5.1.1).
	if p := SuperMUC().PeakFLOPsCore(); math.Abs(p-21.6e9) > 1 {
		t.Errorf("SuperMUC core peak %g", p)
	}
	// JUQUEEN is the largest system (262,144 cores were used).
	if JUQUEEN().TotalCores < 262144 {
		t.Error("JUQUEEN must accommodate 262,144 cores")
	}
}

// Fig. 8 shape: overlap strictly reduces visible communication time; the φ
// exchange (twice the data) costs more than µ; times grow with core count
// and sit in the paper's millisecond range.
func TestCommTimeShape(t *testing.T) {
	m := SuperMUC()
	cores := PowersOfTwo(5, 12)
	var prevPhiNo float64
	for _, p := range cores {
		base := CommScenario{Machine: m, BlockEdge: 60, Cores: p}
		ov, noOv := base, base
		ov.Overlap = true

		phiNo := CommTime(noOv, true)
		phiOv := CommTime(ov, true)
		muNo := CommTime(noOv, false)
		muOv := CommTime(ov, false)

		if phiOv >= phiNo || muOv >= muNo {
			t.Fatalf("p=%d: overlap did not reduce comm time", p)
		}
		if phiNo <= muNo || phiOv <= muOv {
			t.Fatalf("p=%d: φ comm should exceed µ comm", p)
		}
		if phiNo < prevPhiNo {
			t.Fatalf("p=%d: comm time decreased with more cores", p)
		}
		prevPhiNo = phiNo
		// Paper's Fig. 8 spans roughly 1–6 ms per timestep.
		if phiNo > 10e-3 || muOv < 0.1e-3 {
			t.Fatalf("p=%d: comm times outside plausible range: φ=%v µ=%v", p, phiNo, muOv)
		}
	}
}

// Fig. 9 shape: weak scaling is nearly flat (high parallel efficiency),
// interface is the slowest scenario, and the per-core levels match the
// paper's reported ranges per machine.
func TestWeakScalingShape(t *testing.T) {
	cores := PowersOfTwo(0, 15)
	for _, m := range []*Machine{SuperMUC(), Hornet()} {
		pts := WeakScaling(m, ScnInterface, 60, cores)
		if eff := Efficiency(pts); eff < 0.85 {
			t.Errorf("%s: weak-scaling efficiency %.2f < 0.85", m.Name, eff)
		}
		if pts[0].MLUPsPerCore < 2.0 || pts[0].MLUPsPerCore > 4.0 {
			t.Errorf("%s: per-core rate %.2f outside the paper's 2–3.5 band", m.Name, pts[0].MLUPsPerCore)
		}
		// Scenario ordering.
		solid := WeakScaling(m, ScnSolid, 60, cores)
		if solid[0].MLUPsPerCore <= pts[0].MLUPsPerCore {
			t.Errorf("%s: solid scenario should outrun interface", m.Name)
		}
	}
	jq := WeakScaling(JUQUEEN(), ScnInterface, 60, PowersOfTwo(9, 18))
	if jq[0].MLUPsPerCore < 0.1 || jq[0].MLUPsPerCore > 0.3 {
		t.Errorf("JUQUEEN per-core rate %.3f outside the paper's ~0.2 band", jq[0].MLUPsPerCore)
	}
	if eff := Efficiency(jq); eff < 0.85 {
		t.Errorf("JUQUEEN weak-scaling efficiency %.2f", eff)
	}
}

// Fig. 7 shape: intranode µ-kernel scaling is linear per core until the
// node bandwidth ceiling bites; with 40³ blocks it stays compute bound on
// all 16 cores.
func TestIntranodeScalingShape(t *testing.T) {
	m := SuperMUC()
	pts := IntranodeScaling(m, 40, 16)
	if len(pts) != 16 {
		t.Fatalf("points %d", len(pts))
	}
	for i, p := range pts {
		if p.Cores != i+1 {
			t.Fatal("core counts wrong")
		}
	}
	// Total rate grows with cores.
	if 16*pts[15].MLUPsPerCore <= 8*pts[7].MLUPsPerCore {
		t.Error("aggregate intranode rate should grow to 16 cores")
	}
}

func TestPowersOfTwo(t *testing.T) {
	p := PowersOfTwo(3, 6)
	want := []int{8, 16, 32, 64}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PowersOfTwo = %v", p)
		}
	}
}

func TestEfficiencyEdgeCases(t *testing.T) {
	if Efficiency(nil) != 0 {
		t.Error("nil curve efficiency")
	}
}
