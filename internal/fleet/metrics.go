package fleet

import (
	"repro/internal/jobd"
	"repro/internal/obs"
)

// metrics.go — gateway observability: a small obs.Counters registry
// scraped at GET /metrics in strict Prometheus text format. Counters are
// updated at the event site; gauges are recomputed from gateway state at
// scrape time (Reset + Set, so series for vanished label values drop out
// instead of freezing at their last value).

// gwMetrics owns the gateway's counter registry.
type gwMetrics struct {
	c *obs.Counters
}

func newGWMetrics() *gwMetrics {
	c := obs.NewCounters()
	c.Declare("solidifygw_requests_total", "counter",
		"Tenant API requests, by tenant and HTTP status code.")
	c.Declare("solidifygw_rejects_total", "counter",
		"Rejected requests, by structured error code.")
	c.Declare("solidifygw_requeues_total", "counter",
		"Children re-placed after their daemon died.")
	c.Declare("solidifygw_replications_total", "counter",
		"Child results replicated into the gateway store.")
	c.Declare("solidifygw_daemons", "gauge",
		"Known daemons, by liveness state.")
	c.Declare("solidifygw_children", "gauge",
		"Tracked array children, by tenant and gateway-side state.")
	return &gwMetrics{c: c}
}

// request counts one authenticated (or rejected) tenant API request.
func (m *gwMetrics) request(tenant string, code int) {
	m.c.Add("solidifygw_requests_total", obs.Labels("tenant", tenant, "code", itoa(code)), 1)
}

// reject counts one structured rejection by error code.
func (m *gwMetrics) reject(code string) {
	m.c.Add("solidifygw_rejects_total", obs.Labels("reason", code), 1)
}

// requeue counts one daemon-loss re-placement.
func (m *gwMetrics) requeue() {
	m.c.Add("solidifygw_requeues_total", "", 1)
}

// replicated counts one result blob landing in the gateway store.
func (m *gwMetrics) replicated() {
	m.c.Add("solidifygw_replications_total", "", 1)
}

// publishGauges recomputes the state gauges from the gateway's live
// maps; called at scrape time.
func (g *Gateway) publishGauges() {
	g.mu.Lock()
	alive, dead := 0, 0
	for _, d := range g.daemons {
		if d.alive {
			alive++
		} else {
			dead++
		}
	}
	type key struct {
		tenant string
		state  jobd.State
	}
	byChild := map[key]int{}
	for _, c := range g.children {
		byChild[key{c.tenant, c.state}]++
	}
	g.mu.Unlock()

	g.metrics.c.Reset("solidifygw_daemons")
	g.metrics.c.Set("solidifygw_daemons", obs.Labels("state", "alive"), float64(alive))
	g.metrics.c.Set("solidifygw_daemons", obs.Labels("state", "dead"), float64(dead))
	g.metrics.c.Reset("solidifygw_children")
	for k, n := range byChild {
		g.metrics.c.Set("solidifygw_children",
			obs.Labels("tenant", k.tenant, "state", string(k.state)), float64(n))
	}
}
