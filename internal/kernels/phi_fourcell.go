package kernels

import (
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/simd"
)

// phi_fourcell.go implements the alternative vectorization strategy of
// Fig. 5: four consecutive cells in x are processed per iteration, with one
// SIMD lane per cell. This avoids the cellwise version's horizontal
// permutes but keeps [NP] live vector registers per quantity (register
// pressure / spills) and can only take shortcuts when the branch condition
// holds for all four cells at once — exactly the trade-off the paper
// measures.

// phiQuad is a per-phase set of cell-lane vectors.
type phiQuad [NP]simd.Vec4

func loadPhiQuad(f *grid.Field, x, y, z int) phiQuad {
	var q phiQuad
	for a := 0; a < NP; a++ {
		q[a] = simd.Set(f.At(a, x, y, z), f.At(a, x+1, y, z), f.At(a, x+2, y, z), f.At(a, x+3, y, z))
	}
	return q
}

// phiSweepFourCell runs the four-cell-vectorized φ-kernel at the full
// optimization level (T(z) precomputation always on; shortcuts optional and
// only effective when all four cells of a group are bulk) over the z-slab
// [z0,z1). Blocks narrower than four cells fall back to the cellwise kernel.
func phiSweepFourCell(ctx *Ctx, f *Fields, sc *Scratch, shortcuts bool, z0, z1 int) {
	p := ctx.P
	src, dst, mu := f.PhiSrc, f.PhiDst, f.MuSrc
	nx, ny := src.NX, src.NY
	if nx < 4 {
		phiSweepVec(ctx, f, sc, phiOpts{tz: true, stag: true, shortcut: shortcuts}, z0, z1)
		return
	}
	sc.ensure(nx, ny)

	invDx := 1 / p.Dx
	halfInvDx := 0.5 * invDx
	invEps := 1 / p.Eps
	dtFac := p.Dt / (p.Tau * p.Eps)
	obstPref := core.ObstaclePrefactor
	gT := p.GammaTriple

	var ts TempSlice
	var tv tempVecs

	for z := z0; z < z1; z++ {
		ts.Fill(p, ctx.ZOff+z, ctx.Time)
		tv.fill(&ts)
		for y := 0; y < ny; y++ {
			for x0 := 0; x0 < nx; x0 += 4 {
				x := x0
				if x+4 > nx {
					// Overlapping tail group: recomputes a few
					// cells with identical results.
					x = nx - 4
				}
				phiFourCellGroup(ctx, f, &ts, &tv, x, y, z,
					invDx, halfInvDx, invEps, dtFac, obstPref, gT, shortcuts)
				_ = mu
			}
		}
	}
	_ = dst
}

// phiFourCellGroup updates the four cells (x..x+3, y, z).
func phiFourCellGroup(ctx *Ctx, f *Fields, ts *TempSlice, tv *tempVecs,
	x, y, z int, invDx, halfInvDx, invEps, dtFac, obstPref, gT float64, shortcuts bool) {

	p := ctx.P
	src, dst, mu := f.PhiSrc, f.PhiDst, f.MuSrc

	if shortcuts {
		all := true
		for i := 0; i < 4; i++ {
			if !isBulkCell(src, x+i, y, z) {
				all = false
				break
			}
		}
		if all {
			for i := 0; i < 4; i++ {
				for a := 0; a < NP; a++ {
					dst.Set(a, x+i, y, z, src.At(a, x+i, y, z))
				}
			}
			return
		}
	}

	phiC := loadPhiQuad(src, x, y, z)
	nbE := loadPhiQuad(src, x+1, y, z)
	nbW := loadPhiQuad(src, x-1, y, z)
	nbN := loadPhiQuad(src, x, y+1, z)
	nbS := loadPhiQuad(src, x, y-1, z)
	nbT := loadPhiQuad(src, x, y, z+1)
	nbB := loadPhiQuad(src, x, y, z-1)

	var gX, gY, gZ phiQuad
	for a := 0; a < NP; a++ {
		gX[a] = nbE[a].Sub(nbW[a]).Scale(halfInvDx)
		gY[a] = nbN[a].Sub(nbS[a]).Scale(halfInvDx)
		gZ[a] = nbT[a].Sub(nbB[a]).Scale(halfInvDx)
	}

	// ∂a/∂φ_α = Σ_d Σ_β 2γ (φ_α ∂φ_β − φ_β ∂φ_α) ∂φ_β, lanewise over cells.
	var dadphi phiQuad
	for a := 0; a < NP; a++ {
		var acc simd.Vec4
		for b := 0; b < NP; b++ {
			if b == a {
				continue
			}
			gab := 2 * p.Gamma[a][b]
			for _, g := range [3]*phiQuad{&gX, &gY, &gZ} {
				q := phiC[a].Mul(g[b]).Sub(phiC[b].Mul(g[a]))
				acc = acc.Add(q.Mul(g[b]).Scale(gab))
			}
		}
		dadphi[a] = acc
	}

	// Staggered flux divergence per axis; lanewise face fluxes.
	var div phiQuad
	lows := [3]*phiQuad{&nbW, &nbS, &nbB}
	highs := [3]*phiQuad{&nbE, &nbN, &nbT}
	for axis := 0; axis < 3; axis++ {
		hi := phiFaceFluxQuad(p, &phiC, highs[axis], invDx)
		lo := phiFaceFluxQuad(p, lows[axis], &phiC, invDx)
		for a := 0; a < NP; a++ {
			div[a] = div[a].Add(hi[a].Sub(lo[a]).Scale(invDx))
		}
	}

	// Obstacle derivative, lanewise.
	var s1, s2 simd.Vec4
	for a := 0; a < NP; a++ {
		s1 = s1.Add(phiC[a])
		s2 = s2.Add(phiC[a].Mul(phiC[a]))
	}
	var obst phiQuad
	for a := 0; a < NP; a++ {
		var gphi simd.Vec4
		for b := 0; b < NP; b++ {
			gphi = gphi.Add(phiC[b].Scale(p.Gamma[a][b]))
		}
		r := s1.Sub(phiC[a])
		tri := r.Mul(r).Sub(s2.Sub(phiC[a].Mul(phiC[a]))).Scale(0.5 * gT)
		obst[a] = gphi.Scale(obstPref).Add(tri)
	}

	// Driving force, lanewise: w'(φ_α)/S (ω_α − ω·h).
	mu0 := simd.Set(mu.At(0, x, y, z), mu.At(0, x+1, y, z), mu.At(0, x+2, y, z), mu.At(0, x+3, y, z))
	mu1 := simd.Set(mu.At(1, x, y, z), mu.At(1, x+1, y, z), mu.At(1, x+2, y, z), mu.At(1, x+3, y, z))
	var pots phiQuad
	for a := 0; a < NP; a++ {
		w := simd.Splat(ts.B[a])
		w = w.Sub(mu0.Mul(mu0).Scale(ts.Inv4A[0][a])).Sub(mu0.Scale(ts.C0T[0][a]))
		w = w.Sub(mu1.Mul(mu1).Scale(ts.Inv4A[1][a])).Sub(mu1.Scale(ts.C0T[1][a]))
		pots[a] = w
	}
	var wv phiQuad
	var S simd.Vec4
	three := simd.Splat(3)
	for a := 0; a < NP; a++ {
		wv[a] = phiC[a].Mul(phiC[a]).Mul(three.Sub(phiC[a].Scale(2)))
		S = S.Add(wv[a])
	}
	var invS simd.Vec4
	for l := 0; l < 4; l++ {
		if S[l] > 0 {
			invS[l] = 1 / S[l]
		}
	}
	var wDot simd.Vec4
	for a := 0; a < NP; a++ {
		wDot = wDot.Add(pots[a].Mul(wv[a]).Mul(invS))
	}
	var df phiQuad
	one := simd.Splat(1)
	for a := 0; a < NP; a++ {
		wd := phiC[a].Mul(one.Sub(phiC[a])).Scale(6)
		df[a] = wd.Mul(invS).Mul(pots[a].Sub(wDot))
	}

	// Assemble rhs and update.
	T := ts.T
	var rhs phiQuad
	var mean simd.Vec4
	for a := 0; a < NP; a++ {
		rhs[a] = dadphi[a].Sub(div[a]).Scale(T * p.Eps).
			Add(obst[a].Scale(T * invEps)).
			Add(df[a])
		mean = mean.Add(rhs[a])
	}
	mean = mean.Scale(1.0 / NP)
	for i := 0; i < 4; i++ {
		var out [NP]float64
		for a := 0; a < NP; a++ {
			out[a] = phiC[a][i] - dtFac*(rhs[a][i]-mean[i])
		}
		core.ProjectSimplex(&out)
		storePhi(dst, x+i, y, z, &out)
	}
	_ = tv
}

// phiFaceFluxQuad computes the staggered face fluxes for four cells at once
// (lanes = cells).
func phiFaceFluxQuad(p *core.Params, lo, hi *phiQuad, invDx float64) phiQuad {
	var pf, g phiQuad
	for b := 0; b < NP; b++ {
		pf[b] = lo[b].Add(hi[b]).Scale(0.5)
		g[b] = hi[b].Sub(lo[b]).Scale(invDx)
	}
	var out phiQuad
	for a := 0; a < NP; a++ {
		var acc simd.Vec4
		for b := 0; b < NP; b++ {
			if b == a {
				continue
			}
			q := pf[a].Mul(g[b]).Sub(pf[b].Mul(g[a]))
			acc = acc.Sub(pf[b].Mul(q).Scale(2 * p.Gamma[a][b]))
		}
		out[a] = acc
	}
	return out
}
