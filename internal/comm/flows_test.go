package comm

import (
	"testing"

	"repro/internal/grid"
)

// TestPeerFlowsAndLatency runs the shared stats scenario (one real round,
// one quiet round on a 2×1×1 x-periodic decomposition) and checks the
// per-(peer, tag) flow counters and exchange-latency histograms that back
// the daemon's /metrics series.
func TestPeerFlowsAndLatency(t *testing.T) {
	bg, err := grid.NewBlockGrid(2, 1, 1, 4, 4, 4, [3]bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(bg)
	defer w.Close()
	runStatsScenario(t, bg, []*World{w})

	flows := w.PeerFlows()
	// Each rank sends to the other through both x-faces, one tag: two
	// aggregated streams. Per stream: 2 real frames (16 cells × 8 B) in
	// round one, 2 sleep tokens in round two.
	if len(flows) != 2 {
		t.Fatalf("got %d flows, want 2: %+v", len(flows), flows)
	}
	for i, fl := range flows {
		if fl.Rank != i || fl.Peer != 1-i || fl.Tag != TagPhi {
			t.Errorf("flow %d endpoints wrong: %+v", i, fl)
		}
		if fl.Frames != 4 || fl.Bytes != 2*16*8 || fl.Sleeps != 2 {
			t.Errorf("flow %d counters wrong: %+v", i, fl)
		}
	}

	// One histogram sample per ExchangeGhosts call: 2 rounds × 2 local
	// ranks for φ, nothing on µ.
	if s := w.ExchangeLatency(TagPhi); s.Count != 4 || s.Sum <= 0 {
		t.Errorf("phi latency snapshot wrong: count=%d sum=%v", s.Count, s.Sum)
	}
	if s := w.ExchangeLatency(TagMu); s.Count != 0 {
		t.Errorf("mu latency count = %d, want 0", s.Count)
	}

	// The in-process fabric keeps no network-fault accounting.
	if _, _, ok := w.NetStats(); ok {
		t.Error("in-process transport claims NetCounters")
	}

	w.ResetStats()
	if flows := w.PeerFlows(); len(flows) != 0 {
		t.Errorf("flows survived ResetStats: %+v", flows)
	}
	if s := w.ExchangeLatency(TagPhi); s.Count != 0 {
		t.Errorf("latency survived ResetStats: count=%d", s.Count)
	}
}
