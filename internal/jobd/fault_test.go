package jobd

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/jobd/store"
)

// fault_test.go — the deterministic fault-injection harness's daemon-level
// suites: panic isolation, checkpoint-based retries, the watchdog, and the
// runner's failure paths. The degraded-store and crash-point suites live
// in faultstore_test.go.

// chaosConfig is the daemon configuration the fault suites share: fast
// retries, frequent safety snapshots, fault specs allowed.
func chaosConfig() Config {
	return Config{
		MaxConcurrent: 1, Budget: 2, ReportEvery: 1,
		SnapshotEvery: 10, RetryBackoff: time.Millisecond,
		AllowFaults: true,
	}
}

// smallSpec is a fast 3-step job for tests that only care about daemon
// behavior, not the trajectory.
func smallSpec(name string) Spec {
	return Spec{Name: name, NX: 8, NY: 8, NZ: 8, Steps: 3, Scenario: "interface"}
}

func TestFaultSpecRejectedWithoutChaos(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Budget: 2})
	s.Start()
	defer s.Close()
	spec := smallSpec("no-chaos")
	spec.Fault = &FaultSpec{Mode: FaultFailStep, Step: 1}
	if _, err := s.Submit(spec); err == nil {
		t.Fatal("fault-bearing spec accepted without AllowFaults")
	}
}

// Acceptance (a): an injected kernel panic fails only its job. A clean job
// running concurrently finishes byte-identical to an uninterrupted run,
// the worker pool survives, and the daemon keeps accepting work.
func TestPanicIsolationConcurrentJobs(t *testing.T) {
	cfg := chaosConfig()
	cfg.MaxConcurrent = 2
	cfg.SnapshotEvery = 0 // no retries here: the panic must quarantine
	s := New(cfg)
	s.Start()
	defer s.Close()

	clean := preemptResumeSpec(`{"events":[
		{"type":"ramp","param":"v","step":0,"over":40,"from":0.02,"to":0.05}]}`)
	want := uninterruptedFinal(t, clean, 1)

	poison := smallSpec("poison")
	poison.Steps = 10
	poison.Fault = &FaultSpec{Mode: FaultPanicSweep, Step: 2}
	a, err := s.Submit(poison)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(clean)
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, "poisoned job to fail", 30*time.Second, func() bool {
		return a.State() == StateFailed
	})
	st := a.Status()
	if !strings.Contains(st.Error, "kernel panic") {
		t.Fatalf("poisoned job error = %q, want a kernel panic", st.Error)
	}
	waitFor(t, "clean job to finish", 60*time.Second, func() bool {
		return b.State() == StateDone
	})
	diffCheckpoints(t, b.FinalCheckpoint(), want)

	// The daemon still serves: a fresh job completes and the shared gauge
	// is balanced (no worker leaked into the dead job).
	c, err := s.Submit(smallSpec("after"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-panic job to finish", 30*time.Second, func() bool {
		return c.State() == StateDone
	})
	if got := s.Gauge().Active(); got != 0 {
		t.Fatalf("gauge reports %d busy workers after the panic", got)
	}
}

// Acceptance (b): a transient fault consumes a retry, the retry resumes
// from the last safety snapshot, and the final result is byte-identical
// to an uninterrupted run. Exercised for both fault flavors.
func TestRetryResumesBitIdentical(t *testing.T) {
	for _, mode := range []string{FaultFailStep, FaultPanicSweep} {
		t.Run(mode, func(t *testing.T) {
			spec := preemptResumeSpec(`{"events":[
				{"type":"ramp","param":"v","step":0,"over":40,"from":0.02,"to":0.05}]}`)
			want := uninterruptedFinal(t, spec, 1)

			s := New(chaosConfig())
			s.Start()
			defer s.Close()

			spec.MaxRetries = 2
			spec.Fault = &FaultSpec{Mode: mode, Step: 25, Times: 1}
			j, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			waitFor(t, "faulted job to retry and finish", 120*time.Second, func() bool {
				return j.State() == StateDone
			})
			st := j.Status()
			if st.Retries != 1 {
				t.Fatalf("retries = %d, want 1", st.Retries)
			}
			if st.LastError == "" {
				t.Fatal("a retried job must keep its last error for diagnosis")
			}
			if st.Error != "" {
				t.Fatalf("a recovered job must not report a terminal error, got %q", st.Error)
			}
			diffCheckpoints(t, j.FinalCheckpoint(), want)
		})
	}
}

// A persistent fault exhausts the retry budget and quarantines the job,
// with the retry count and errors visible in the status.
func TestRetriesExhaustedQuarantined(t *testing.T) {
	s := New(chaosConfig())
	s.Start()
	defer s.Close()

	spec := smallSpec("doomed")
	spec.Steps = 6
	spec.MaxRetries = 2
	spec.Fault = &FaultSpec{Mode: FaultFailStep, Step: 2, Times: 10}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to exhaust its retries", 60*time.Second, func() bool {
		return j.State() == StateFailed
	})
	st := j.Status()
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want the full budget of 2", st.Retries)
	}
	if !strings.Contains(st.Error, "injected failure") || st.LastError == "" {
		t.Fatalf("quarantined status lacks its errors: error=%q last_error=%q",
			st.Error, st.LastError)
	}
}

// The watchdog reclaims a wedged job: the injected stall never reaches
// another timestep boundary on its own, the stall is detected, the slot
// reclaimed, and the retry completes the job.
func TestWatchdogStallRetry(t *testing.T) {
	cfg := chaosConfig()
	cfg.StallTimeout = 300 * time.Millisecond
	cfg.WatchdogTick = 25 * time.Millisecond
	cfg.SnapshotEvery = 2
	s := New(cfg)
	s.Start()
	defer s.Close()

	spec := smallSpec("wedged")
	spec.Steps = 6
	spec.MaxRetries = 1
	spec.Fault = &FaultSpec{Mode: FaultStallStep, Step: 3, Times: 1}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stalled job to be reclaimed and finish", 60*time.Second, func() bool {
		return j.State() == StateDone
	})
	st := j.Status()
	if st.Stalls < 1 {
		t.Fatalf("stalls = %d, want >= 1", st.Stalls)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	if !strings.Contains(st.LastError, "watchdog") {
		t.Fatalf("last_error = %q, want the watchdog verdict", st.LastError)
	}
}

// Satellite: runner failure paths, asserted through the HTTP API.

// A DELETE arriving while the job sits out its retry backoff cancels it
// immediately — the backoff gate must not delay cancellation.
func TestAPICancelDuringRetryBackoff(t *testing.T) {
	cfg := chaosConfig()
	cfg.RetryBackoff = time.Hour // park the retry far in the future
	s, ts := apiServer(t, cfg)

	spec := smallSpec("backoff")
	spec.Steps = 6
	spec.MaxRetries = 3
	spec.Fault = &FaultSpec{Mode: FaultFailStep, Step: 2, Times: 10}
	st := submit(t, ts.URL, spec)

	waitFor(t, "job to enter retry backoff", 30*time.Second, func() bool {
		var now Status
		getJSON(t, ts.URL+"/jobs/"+st.ID, &now)
		return now.Retries == 1 && now.State == StateQueued
	})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, "backoff job to cancel", 10*time.Second, func() bool {
		var now Status
		getJSON(t, ts.URL+"/jobs/"+st.ID, &now)
		return now.State == StateCanceled
	})
	_ = s
}

// A corrupt resume snapshot (here: spooled by a previous daemon) makes
// buildSim fail; the job is quarantined as failed, not retried forever,
// and the API reports the checkpoint error.
func TestAPIBuildSimErrorFromCorruptSnapshot(t *testing.T) {
	spool := t.TempDir()
	m := spoolManifest{
		ID:       "job-0001",
		Spec:     smallSpec("corrupt"),
		Step:     2,
		Snapshot: base64.StdEncoding.EncodeToString([]byte("not a checkpoint")),
	}
	blob, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(spool, "job-0001.job.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(Config{MaxConcurrent: 1, Budget: 2, SpoolDir: spool})
	if n, err := s.LoadSpool(); err != nil || n != 1 {
		t.Fatalf("LoadSpool = %d, %v", n, err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	waitFor(t, "corrupt-snapshot job to fail", 30*time.Second, func() bool {
		var now Status
		getJSON(t, ts.URL+"/jobs/job-0001", &now)
		return now.State == StateFailed && now.Error != ""
	})
	// No result must be claimed for it.
	resp, err := http.Get(ts.URL + "/jobs/job-0001/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("GET /result of failed job: %d, want 409", resp.StatusCode)
	}
}

// A schedule that ramps dt past the stability limit fails mid-run inside
// RunSchedule; the error reaches the API status.
func TestAPIMidRunScheduleError(t *testing.T) {
	s, ts := apiServer(t, Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 1})
	spec := smallSpec("unstable")
	spec.Steps = 20
	spec.Schedule = json.RawMessage(`{"events":[
		{"type":"ramp","param":"dt","step":2,"over":10,"from":1e-6,"to":1.0}]}`)
	st := submit(t, ts.URL, spec)
	waitFor(t, "unstable ramp to fail the job", 30*time.Second, func() bool {
		var now Status
		getJSON(t, ts.URL+"/jobs/"+st.ID, &now)
		return now.State == StateFailed
	})
	var now Status
	getJSON(t, ts.URL+"/jobs/"+st.ID, &now)
	if !strings.Contains(now.Error, "stability") {
		t.Fatalf("error = %q, want the dt stability violation", now.Error)
	}
	_ = s
}

// Oversized request bodies are cut off with 413, not read to completion.
func TestAPIRequestBodyCap(t *testing.T) {
	_, ts := apiServer(t, Config{MaxConcurrent: 1, Budget: 2})
	big := fmt.Sprintf(`{"nx":8,"ny":8,"nz":8,"steps":3,"name":%q}`,
		strings.Repeat("x", MaxRequestBody+1))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST /jobs: %d, want 413", resp.StatusCode)
	}
}

// The daemon-wide metrics endpoint exports the fleet counters.
func TestAPIDaemonMetrics(t *testing.T) {
	cfg := chaosConfig()
	s, ts := apiServer(t, cfg)
	spec := smallSpec("metrics")
	spec.Steps = 6
	spec.MaxRetries = 1
	spec.Fault = &FaultSpec{Mode: FaultFailStep, Step: 2, Times: 1}
	st := submit(t, ts.URL, spec)
	waitFor(t, "metrics job to finish", 60*time.Second, func() bool {
		var now Status
		getJSON(t, ts.URL+"/jobs/"+st.ID, &now)
		return now.State == StateDone
	})
	code, body := getBytes(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`jobd_jobs{state="done"} 1`,
		"jobd_retries_total 1",
		"jobd_store_degraded 0",
		"jobd_workers_budget 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, text)
		}
	}
	_ = s
}

// The fault budget (Times) spans attempts, not jobs: two jobs with the
// same fault spec each get their own budget.
func TestFaultBudgetPerJob(t *testing.T) {
	s := New(chaosConfig())
	s.Start()
	defer s.Close()
	for i := 0; i < 2; i++ {
		spec := smallSpec(fmt.Sprintf("budget-%d", i))
		spec.Steps = 6
		spec.MaxRetries = 1
		spec.Fault = &FaultSpec{Mode: FaultFailStep, Step: 2, Times: 1}
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "budgeted job to finish", 60*time.Second, func() bool {
			return j.State() == StateDone
		})
		if st := j.Status(); st.Retries != 1 {
			t.Fatalf("job %d: retries = %d, want 1", i, st.Retries)
		}
	}
}

// Retry state survives a drain/restart cycle: a job spooled mid-backoff
// comes back with its retry count, stall count and last error.
func TestSpoolPreservesRetryState(t *testing.T) {
	spool := t.TempDir()
	cfg := chaosConfig()
	cfg.SpoolDir = spool
	cfg.RetryBackoff = time.Hour
	s := New(cfg)
	s.Start()

	spec := smallSpec("spooled")
	spec.Steps = 6
	spec.MaxRetries = 3
	spec.Fault = &FaultSpec{Mode: FaultFailStep, Step: 2, Times: 10}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to enter retry backoff", 30*time.Second, func() bool {
		st := j.Status()
		return st.Retries == 1 && st.State == StateQueued
	})
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	s2 := New(cfg)
	n, err := s2.LoadSpool()
	if err != nil || n != 1 {
		t.Fatalf("LoadSpool = %d, %v", n, err)
	}
	defer s2.Close()
	j2, ok := s2.Get(j.ID)
	if !ok {
		t.Fatalf("restarted daemon lost %s", j.ID)
	}
	st := j2.Status()
	if st.Retries != 1 || st.LastError == "" {
		t.Fatalf("restored status lost retry state: %+v", st)
	}
}

// Sanity for the store package wiring: a daemon configured with an
// injectable store FS uses it (proven by a rule that fails everything —
// LoadStore must surface the injected error).
func TestStoreFSPlumbing(t *testing.T) {
	inj := faultfs.NewInject(nil, &faultfs.Rule{Op: faultfs.OpMkdirAll, Err: faultfs.ErrInjected})
	s := New(Config{StoreDir: t.TempDir(), StoreFS: inj})
	if _, err := s.LoadStore(); err == nil {
		t.Fatal("LoadStore ignored the injected filesystem")
	}
	_ = store.JobsBucket
}
