package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestInjectErrAfterTimes(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	fs := NewInject(nil, &Rule{Op: OpReadFile, After: 1, Times: 2, Err: boom})

	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// 1st call passes (After=1), next two fail, then passes again.
	want := []bool{true, false, false, true}
	for i, ok := range want {
		_, err := fs.ReadFile(path)
		if ok && err != nil {
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
		if !ok && !errors.Is(err, boom) {
			t.Fatalf("call %d: want boom, got %v", i, err)
		}
	}
}

func TestInjectPathFilterAndDefaultErr(t *testing.T) {
	dir := t.TempDir()
	fs := NewInject(nil, &Rule{Op: "*", PathContains: "manifest"})

	ok := filepath.Join(dir, "blob")
	bad := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(ok, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ok); err != nil {
		t.Fatalf("unfiltered path failed: %v", err)
	}
	if _, err := fs.Stat(bad); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected for filtered path, got %v", err)
	}
}

func TestInjectTornWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewInject(nil, &Rule{Op: OpWrite, TornBytes: 3, Times: 1})

	f, err := fs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello world"))
	if err == nil {
		t.Fatal("torn write should report an error")
	}
	if n != 3 {
		t.Fatalf("torn write landed %d bytes, want 3", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hel" {
		t.Fatalf("on-disk bytes %q, want %q", got, "hel")
	}
}

func TestInjectCrashKillsAllLaterOps(t *testing.T) {
	dir := t.TempDir()
	fs := NewInject(nil, &Rule{Op: OpSync, Crash: true})

	f, err := fs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync: want ErrCrashed, got %v", err)
	}
	if crashed, at := fs.Crashed(); !crashed || !strings.Contains(at, "sync") {
		t.Fatalf("Crashed() = %v, %q", crashed, at)
	}
	// Everything afterwards is dead — the process never got to do these.
	if err := fs.Rename(f.Name(), filepath.Join(dir, "final")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename after crash: want ErrCrashed, got %v", err)
	}
	if _, err := fs.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("readdir after crash: want ErrCrashed, got %v", err)
	}
	// The rename never happened on the real disk.
	if _, err := os.Stat(filepath.Join(dir, "final")); !os.IsNotExist(err) {
		t.Fatalf("crashed rename reached the disk: %v", err)
	}
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := OS()
	sub := filepath.Join(dir, "a", "b")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.CreateTemp(sub, "x-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	final := filepath.Join(sub, "final")
	if err := fs.Rename(f.Name(), final); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(final)
	if err != nil || string(b) != "ok" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	ents, err := fs.ReadDir(sub)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if _, err := fs.Stat(final); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(final); err != nil {
		t.Fatal(err)
	}
}

func TestPointsArmHitDisarm(t *testing.T) {
	var nilPts *Points
	nilPts.Hit("anything") // must not panic

	pts := NewPoints()
	pts.Hit("unarmed") // must not panic

	pts.Arm("spill", 2, 1)
	fired := 0
	for i := 0; i < 5; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					inj, ok := r.(Injected)
					if !ok {
						t.Fatalf("panic value %T, want Injected", r)
					}
					if inj.Point != "spill" || inj.Hit != 3 {
						t.Fatalf("Injected = %+v", inj)
					}
					fired++
				}
			}()
			pts.Hit("spill")
		}()
	}
	if fired != 1 {
		t.Fatalf("point fired %d times, want 1 (after=2 times=1)", fired)
	}
	if got := pts.Hits("spill"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}

	pts.Arm("x", 0, 100)
	pts.Disarm("x")
	pts.Hit("x") // disarmed: no panic
}
