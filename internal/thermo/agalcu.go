package thermo

// AgAlCu returns the synthetic Ag-Al-Cu database used throughout the
// reproduction. The paper derives parabolic Gibbs-energy fits around the
// ternary eutectic point from the Calphad assessments of Witusiewicz et al.
// (J. Alloys Compd. 2004/2005); those fits are proprietary-database-derived
// numbers we do not have, so this substitute keeps every structural
// property the solver depends on:
//
//   - four phases: fcc-Al (α), Ag₂Al (ζ), Al₂Cu (θ) and the liquid;
//   - reduced concentrations are (c_Ag, c_Cu) with c_Al = 1 − c_Ag − c_Cu;
//   - a ternary eutectic point at T_E (normalized to 1) where all four
//     grand potentials coincide at µ_E = 0;
//   - below T_E the three solids are favored (DBdT > 0 for solids);
//   - temperature-dependent equilibrium concentrations (DC0dT ≠ 0), the
//     property that makes the µ-equation couple to T and drives the
//     paper's "temperature dependent diffusive concentration" cost;
//   - solid compositions spanning a triangle that contains the eutectic
//     liquid composition, giving phase fractions ≈ (α 0.45, ζ 0.30,
//     θ 0.25), close to the experimentally observed similar fractions.
//
// Units are nondimensionalized: energies scale with the driving-force
// scale, temperatures with T_E.
func AgAlCu() *System {
	s := &System{
		TE: 1.0,
		CE: [NRed]float64{0.184, 0.092}, // eutectic melt: 18.4% Ag, 9.2% Cu
	}
	s.Phases[0] = Phase{
		Name:  "Al",                        // fcc aluminium solid solution
		A:     [NRed]float64{8, 8},         // stiff parabola: little solubility range
		C0:    [NRed]float64{0.030, 0.020}, // dilute Ag and Cu in fcc-Al
		DC0dT: [NRed]float64{0.010, 0.008},
		B0:    0,
		DBdT:  1.0, // entropy difference vs liquid drives solidification
	}
	s.Phases[1] = Phase{
		Name:  "Ag2Al", // ζ intermetallic, Ag-rich
		A:     [NRed]float64{10, 10},
		C0:    [NRed]float64{0.560, 0.010},
		DC0dT: [NRed]float64{-0.012, 0.004},
		B0:    0,
		DBdT:  1.1,
	}
	s.Phases[2] = Phase{
		Name:  "Al2Cu", // θ intermetallic, Cu-rich
		A:     [NRed]float64{10, 10},
		C0:    [NRed]float64{0.010, 0.320},
		DC0dT: [NRed]float64{0.005, -0.010},
		B0:    0,
		DBdT:  1.05,
	}
	s.Phases[3] = Phase{
		Name:  "Liquid",
		A:     [NRed]float64{3, 3}, // shallow parabola: wide liquid range
		C0:    s.CE,                // centered on the eutectic composition
		DC0dT: [NRed]float64{0.020, 0.015},
		B0:    0,
		DBdT:  0, // reference phase
	}
	return s
}
