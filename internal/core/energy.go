package core

// Gradient energy density (Eq. 2):
//
//	a(φ,∇φ) = Σ_{α<β} γ_{αβ} |q_{αβ}|²,  q_{αβ} = φ_α ∇φ_β − φ_β ∇φ_α,
//
// with the generalized antisymmetric gradient vectors q. Its partial
// derivatives drive the interfacial part of the φ evolution:
//
//	∂a/∂φ_α   = Σ_{β≠α}  2 γ_{αβ} (q_{αβ}·∇φ_β)
//	∂a/∂∇φ_α  = Σ_{β≠α} −2 γ_{αβ} φ_β q_{αβ}   (a vector per phase)
//
// The divergence of ∂a/∂∇φ_α is evaluated at staggered face positions by
// the kernels; this file provides the pointwise algebra.

// Vec3 is a spatial vector.
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v[0] * s, v[1] * s, v[2] * s} }

// Dot returns v · w.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// GradEnergyDPhi computes ∂a/∂φ_α for all α given the phase values and
// their gradients at a point.
func GradEnergyDPhi(p *Params, phi *[NPhases]float64, grad *[NPhases]Vec3, out *[NPhases]float64) {
	for a := 0; a < NPhases; a++ {
		s := 0.0
		for b := 0; b < NPhases; b++ {
			if b == a {
				continue
			}
			q := grad[b].Scale(phi[a]).Sub(grad[a].Scale(phi[b]))
			s += 2 * p.Gamma[a][b] * q.Dot(grad[b])
		}
		out[a] = s
	}
}

// GradEnergyDGrad computes the vector ∂a/∂∇φ_α for all α at a point.
func GradEnergyDGrad(p *Params, phi *[NPhases]float64, grad *[NPhases]Vec3, out *[NPhases]Vec3) {
	for a := 0; a < NPhases; a++ {
		var v Vec3
		for b := 0; b < NPhases; b++ {
			if b == a {
				continue
			}
			q := grad[b].Scale(phi[a]).Sub(grad[a].Scale(phi[b]))
			v = v.Sub(q.Scale(2 * p.Gamma[a][b] * phi[b]))
		}
		out[a] = v
	}
}

// GradEnergy evaluates a(φ,∇φ) itself (used in tests and energy monitors).
func GradEnergy(p *Params, phi *[NPhases]float64, grad *[NPhases]Vec3) float64 {
	s := 0.0
	for a := 0; a < NPhases; a++ {
		for b := a + 1; b < NPhases; b++ {
			q := grad[b].Scale(phi[a]).Sub(grad[a].Scale(phi[b]))
			s += p.Gamma[a][b] * q.Norm2()
		}
	}
	return s
}

// Obstacle evaluates the multi-obstacle potential
//
//	ω(φ) = (16/π²) Σ_{α<β} γ_{αβ} φ_α φ_β + γ_{αβδ} Σ_{α<β<δ} φ_α φ_β φ_δ
//
// (infinite outside the simplex; the simplex constraint is enforced by
// projection).
func Obstacle(p *Params, phi *[NPhases]float64) float64 {
	s := 0.0
	for a := 0; a < NPhases; a++ {
		for b := a + 1; b < NPhases; b++ {
			s += ObstaclePrefactor * p.Gamma[a][b] * phi[a] * phi[b]
			for d := b + 1; d < NPhases; d++ {
				s += p.GammaTriple * phi[a] * phi[b] * phi[d]
			}
		}
	}
	return s
}

// ObstacleDPhi computes ∂ω/∂φ_α for all α.
func ObstacleDPhi(p *Params, phi *[NPhases]float64, out *[NPhases]float64) {
	for a := 0; a < NPhases; a++ {
		s := 0.0
		for b := 0; b < NPhases; b++ {
			if b == a {
				continue
			}
			s += ObstaclePrefactor * p.Gamma[a][b] * phi[b]
			for d := b + 1; d < NPhases; d++ {
				if d == a {
					continue
				}
				s += p.GammaTriple * phi[b] * phi[d]
			}
		}
		out[a] = s
	}
}

// DrivingForce computes ∂ψ/∂φ_α = Σ_β ω_β(µ,T) ∂h_β/∂φ_α for all α, the
// thermodynamic driving force connecting φ to µ and T. grandPots must hold
// ω_β(µ,T) for every phase.
func DrivingForce(phi *[NPhases]float64, grandPots *[NPhases]float64, out *[NPhases]float64) {
	var dH [NPhases][NPhases]float64
	InterpDeriv(phi, &dH)
	for a := 0; a < NPhases; a++ {
		s := 0.0
		for b := 0; b < NPhases; b++ {
			s += grandPots[b] * dH[b][a]
		}
		out[a] = s
	}
}
