package voronoi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(0, 4, 4, 3, []float64{1}, rng); err == nil {
		t.Error("zero extent not rejected")
	}
	if _, err := New(4, 4, 4, 0, []float64{1}, rng); err == nil {
		t.Error("zero seeds not rejected")
	}
	if _, err := New(4, 4, 4, 3, []float64{0.2, 0.2}, rng); err == nil {
		t.Error("bad fraction sum not rejected")
	}
	if _, err := New(4, 4, 4, 3, []float64{-0.5, 1.5}, rng); err == nil {
		t.Error("negative fraction not rejected")
	}
}

func TestLabelsCoverAllCells(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tess, err := New(16, 12, 4, 9, []float64{0.45, 0.30, 0.25}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tess.Labels) != 16*12*4 {
		t.Fatalf("label count %d", len(tess.Labels))
	}
	for _, l := range tess.Labels {
		if int(l) > 2 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestSeedApportionment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tess, err := New(8, 8, 2, 20, []float64{0.45, 0.30, 0.25}, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := [3]int{}
	for _, s := range tess.Seeds {
		counts[s.Phase]++
	}
	if counts[0]+counts[1]+counts[2] != 20 {
		t.Fatalf("seed count %v", counts)
	}
	if counts[0] != 9 || counts[1] != 6 || counts[2] != 5 {
		t.Errorf("apportionment %v, want [9 6 5]", counts)
	}
}

func TestFractionsApproachTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	target := []float64{0.45, 0.30, 0.25}
	tess, err := New(48, 48, 6, 60, target, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := tess.Fractions(3)
	for i := range target {
		if math.Abs(got[i]-target[i]) > 0.15 {
			t.Errorf("phase %d fraction %g, target %g", i, got[i], target[i])
		}
	}
}

func TestAtMatchesLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tess, _ := New(6, 5, 3, 4, []float64{0.5, 0.5}, rng)
	for z := 0; z < 3; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 6; x++ {
				if tess.At(x, y, z) != int(tess.Labels[(z*5+y)*6+x]) {
					t.Fatal("At/Labels mismatch")
				}
			}
		}
	}
}

func TestPeriodicDistProperty(t *testing.T) {
	f := func(a, b float64) bool {
		l := 10.0
		a = math.Mod(math.Abs(a), l)
		b = math.Mod(math.Abs(b), l)
		d := periodicDist(a, b, l)
		return d >= 0 && d <= l/2+1e-12 && math.Abs(periodicDist(b, a, l)-d) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, _ := New(10, 10, 3, 6, []float64{0.4, 0.3, 0.3}, rand.New(rand.NewSource(7)))
	b, _ := New(10, 10, 3, 6, []float64{0.4, 0.3, 0.3}, rand.New(rand.NewSource(7)))
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("tessellation not deterministic for equal seeds")
		}
	}
}

func TestApportionLargestRemainder(t *testing.T) {
	got := Apportion(20, []float64{0.45, 0.30, 0.25})
	if got[0] != 9 || got[1] != 6 || got[2] != 5 {
		t.Errorf("Apportion = %v, want [9 6 5]", got)
	}
	// Normalizes by the fraction sum and handles degenerate inputs.
	got = Apportion(10, []float64{2, 2})
	if got[0]+got[1] != 10 || got[0] != got[1] {
		t.Errorf("unnormalized fractions: %v", got)
	}
	if got := Apportion(0, []float64{1}); got[0] != 0 {
		t.Errorf("zero seeds: %v", got)
	}
}

func TestBurstSeedsBoundsAndPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seeds, err := BurstSeeds(16, 12, 4, 20, 9, -1, []float64{0.4, 0.3, 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 9 {
		t.Fatalf("%d seeds", len(seeds))
	}
	counts := [3]int{}
	for _, s := range seeds {
		if s.X < 0 || s.X >= 16 || s.Y < 0 || s.Y >= 12 || s.Z < 4 || s.Z >= 20 {
			t.Errorf("seed out of bounds: %+v", s)
		}
		counts[s.Phase]++
	}
	// Largest remainder over 9 seeds at [0.4 0.3 0.3]: floors 3/2/2,
	// the two spare seeds go to the .7 remainders → 3/3/3.
	if counts != [3]int{3, 3, 3} {
		t.Errorf("phase apportionment %v, want [3 3 3]", counts)
	}

	// Pinned phase.
	pinned, err := BurstSeeds(16, 12, 0, 8, 5, 2, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pinned {
		if s.Phase != 2 {
			t.Errorf("pinned seed has phase %d", s.Phase)
		}
	}

	// Deterministic for a fixed rng seed.
	a, _ := BurstSeeds(8, 8, 0, 8, 4, -1, []float64{0.5, 0.5}, rand.New(rand.NewSource(1)))
	b, _ := BurstSeeds(8, 8, 0, 8, 4, -1, []float64{0.5, 0.5}, rand.New(rand.NewSource(1)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("BurstSeeds not deterministic")
		}
	}

	// Error paths.
	if _, err := BurstSeeds(0, 8, 0, 8, 1, 0, nil, rng); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := BurstSeeds(8, 8, 5, 5, 1, 0, nil, rng); err == nil {
		t.Error("empty z range accepted")
	}
	if _, err := BurstSeeds(8, 8, 0, 8, 0, 0, nil, rng); err == nil {
		t.Error("zero count accepted")
	}
}
