package kernels

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// testBCs returns the single-block boundary set used by kernel tests:
// periodic laterally, Neumann top/bottom.
func testBCs() grid.BoundarySet {
	bs := grid.AllPeriodic()
	bs[grid.ZMin] = grid.BC{Kind: grid.BCNeumann}
	bs[grid.ZMax] = grid.BC{Kind: grid.BCNeumann}
	return bs
}

// setupInterface builds a block containing a diffuse solidification front:
// three solid lamellae below, liquid above, with a tanh profile across the
// front and a small µ perturbation.
func setupInterface(nx, ny, nz int, p *core.Params) *Fields {
	f := NewFields(nx, ny, nz)
	front := float64(nz) / 2
	stripe := nx / 3
	if stripe < 1 {
		stripe = 1
	}
	f.PhiSrc.Interior(func(x, y, z int) {
		l := 0.5 * (1 + math.Tanh((float64(z)-front)/(0.25*p.Eps)))
		solid := (x / stripe) % 3
		var phi [NP]float64
		phi[LQ] = l
		phi[solid] = 1 - l
		core.ProjectSimplex(&phi)
		for a := 0; a < NP; a++ {
			f.PhiSrc.Set(a, x, y, z, phi[a])
		}
		f.MuSrc.Set(0, x, y, z, 0.01*math.Sin(2*math.Pi*float64(x)/float64(nx)))
		f.MuSrc.Set(1, x, y, z, 0.01*math.Cos(2*math.Pi*float64(y)/float64(ny)))
	})
	bs := testBCs()
	bs.Apply(f.PhiSrc)
	bs.Apply(f.MuSrc)
	f.PhiDst.CopyFrom(f.PhiSrc)
	f.MuDst.CopyFrom(f.MuSrc)
	return f
}

// setupBulk builds a block uniformly filled with one phase.
func setupBulk(nx, ny, nz, phase int) *Fields {
	f := NewFields(nx, ny, nz)
	f.PhiSrc.FillComp(phase, 1)
	bs := testBCs()
	bs.Apply(f.PhiSrc)
	bs.Apply(f.MuSrc)
	f.PhiDst.CopyFrom(f.PhiSrc)
	f.MuDst.CopyFrom(f.MuSrc)
	return f
}

func testParams(nz int) *core.Params {
	p := core.DefaultParams()
	p.Temp.Z0 = float64(nz) / 2 * p.Dx // eutectic isotherm at the front
	return p
}

func TestPhiVariantsEquivalent(t *testing.T) {
	const nx, ny, nz = 12, 8, 16
	p := testParams(nz)
	ctx := &Ctx{P: p}

	ref := setupInterface(nx, ny, nz, p)
	sc := NewScratch(nx, ny)
	PhiSweep(ctx, ref, sc, VarShortcut)

	for v := VarGeneral; v < NumVariants; v++ {
		f := setupInterface(nx, ny, nz, p)
		PhiSweep(ctx, f, NewScratch(nx, ny), v)
		ok, maxd := f.PhiDst.InteriorEqual(ref.PhiDst, 1e-8)
		if !ok {
			t.Errorf("%v: φ differs from reference by %g", v, maxd)
		}
	}
}

func TestPhiStrategiesEquivalent(t *testing.T) {
	const nx, ny, nz = 12, 8, 16
	p := testParams(nz)
	ctx := &Ctx{P: p}

	ref := setupInterface(nx, ny, nz, p)
	PhiSweepStrategy(ctx, ref, NewScratch(nx, ny), StratCellwise)

	for _, s := range []PhiStrategy{StratCellwiseShortcut, StratFourCell} {
		f := setupInterface(nx, ny, nz, p)
		PhiSweepStrategy(ctx, f, NewScratch(nx, ny), s)
		ok, maxd := f.PhiDst.InteriorEqual(ref.PhiDst, 1e-8)
		if !ok {
			t.Errorf("%v: φ differs from cellwise by %g", s, maxd)
		}
	}
}

func TestPhiFourCellOddWidth(t *testing.T) {
	// Widths not divisible by four exercise the overlapping tail group.
	for _, nx := range []int{5, 6, 7, 9} {
		p := testParams(12)
		ctx := &Ctx{P: p}
		ref := setupInterface(nx, 6, 12, p)
		PhiSweepStrategy(ctx, ref, NewScratch(nx, 6), StratCellwise)
		f := setupInterface(nx, 6, 12, p)
		PhiSweepStrategy(ctx, f, NewScratch(nx, 6), StratFourCell)
		ok, maxd := f.PhiDst.InteriorEqual(ref.PhiDst, 1e-8)
		if !ok {
			t.Errorf("nx=%d: four-cell differs by %g", nx, maxd)
		}
	}
}

func TestMuVariantsEquivalent(t *testing.T) {
	const nx, ny, nz = 12, 8, 16
	p := testParams(nz)
	ctx := &Ctx{P: p}

	// Produce a common φ(t+Δt) first so ∂φ/∂t is nontrivial.
	mk := func() *Fields {
		f := setupInterface(nx, ny, nz, p)
		PhiSweep(ctx, f, NewScratch(nx, ny), VarShortcut)
		testBCsApply(f.PhiDst)
		return f
	}

	ref := mk()
	MuSweep(ctx, ref, NewScratch(nx, ny), VarShortcut)

	for v := VarGeneral; v < NumVariants; v++ {
		// The optimized kernels replace the exact inverse square root
		// in the anti-trapping normalization with the refined Lomont
		// approximation (~1e-6 relative); the general code uses exact
		// sqrt, so it gets a correspondingly looser tolerance.
		tol := 2e-7
		if v == VarGeneral {
			tol = 5e-6
		}
		f := mk()
		MuSweep(ctx, f, NewScratch(nx, ny), v)
		ok, maxd := f.MuDst.InteriorEqual(ref.MuDst, tol)
		if !ok {
			t.Errorf("%v: µ differs from reference by %g", v, maxd)
		}
	}
}

func testBCsApply(f *grid.Field) {
	bs := testBCs()
	bs.Apply(f)
}

func TestAlgorithm2SplitEqualsFused(t *testing.T) {
	const nx, ny, nz = 12, 8, 12
	p := testParams(nz)
	ctx := &Ctx{P: p}

	for v := VarBasic; v < NumVariants; v++ {
		fused := setupInterface(nx, ny, nz, p)
		PhiSweep(ctx, fused, NewScratch(nx, ny), v)
		testBCsApply(fused.PhiDst)
		MuSweep(ctx, fused, NewScratch(nx, ny), v)

		split := setupInterface(nx, ny, nz, p)
		PhiSweep(ctx, split, NewScratch(nx, ny), v)
		testBCsApply(split.PhiDst)
		sc := NewScratch(nx, ny)
		MuSweepLocal(ctx, split, sc, v)
		MuSweepNeighbor(ctx, split, sc, v)

		ok, maxd := split.MuDst.InteriorEqual(fused.MuDst, 1e-9)
		if !ok {
			t.Errorf("%v: split µ differs from fused by %g", v, maxd)
		}
	}
}

func TestBulkPhaseFieldUnchanged(t *testing.T) {
	const n = 8
	p := testParams(n)
	ctx := &Ctx{P: p}
	for phase := 0; phase < NP; phase++ {
		for v := VarGeneral; v < NumVariants; v++ {
			f := setupBulk(n, n, n, phase)
			PhiSweep(ctx, f, NewScratch(n, n), v)
			f.PhiDst.Interior(func(x, y, z int) {
				for a := 0; a < NP; a++ {
					want := 0.0
					if a == phase {
						want = 1
					}
					if got := f.PhiDst.At(a, x, y, z); math.Abs(got-want) > 1e-12 {
						t.Fatalf("%v phase %d: φ[%d]=%g at (%d,%d,%d)", v, phase, a, got, x, y, z)
					}
				}
			})
		}
	}
}

func TestBulkLiquidMuUniformPerSlice(t *testing.T) {
	// In bulk liquid the µ field must stay uniform within each z-slice
	// (the only driver is the slice-constant ∂T/∂t term).
	const n = 8
	p := testParams(n)
	ctx := &Ctx{P: p}
	f := setupBulk(n, n, n, LQ)
	PhiSweep(ctx, f, NewScratch(n, n), VarShortcut)
	testBCsApply(f.PhiDst)
	MuSweep(ctx, f, NewScratch(n, n), VarShortcut)
	for z := 0; z < n; z++ {
		want := f.MuDst.At(0, 0, 0, z)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if got := f.MuDst.At(0, x, y, z); math.Abs(got-want) > 1e-12 {
					t.Fatalf("µ not uniform in slice %d: %g vs %g", z, got, want)
				}
			}
		}
	}
	// And it must actually move with temperature (∂c/∂T ≠ 0 in liquid).
	if f.MuDst.At(0, 0, 0, 0) == f.MuSrc.At(0, 0, 0, 0) && p.Temp.DTdt() != 0 {
		t.Error("µ did not respond to the frozen-gradient temperature drift")
	}
}

func TestMuPureDiffusionConservesAndDecays(t *testing.T) {
	// Uniform liquid, no temperature drift, no anti-trapping: the µ
	// equation reduces to pure diffusion. Σµ is conserved (telescoping
	// divergence over the periodic/Neumann domain with zero boundary
	// flux) and the perturbation decays.
	const n = 10
	p := testParams(n)
	p.Temp.G = 0 // no gradient: no ∂T/∂t source
	ctx := &Ctx{P: p}
	f := setupBulk(n, n, n, LQ)
	f.MuSrc.Interior(func(x, y, z int) {
		f.MuSrc.Set(0, x, y, z, 0.05*math.Sin(2*math.Pi*float64(x)/n)*math.Cos(2*math.Pi*float64(y)/n))
	})
	bs := grid.AllPeriodic()
	bs.Apply(f.MuSrc)
	f.PhiDst.CopyFrom(f.PhiSrc)

	sum0, amp0 := muSumAmp(f.MuSrc)
	sc := NewScratch(n, n)
	for step := 0; step < 10; step++ {
		MuSweep(ctx, f, sc, VarShortcut)
		bs.Apply(f.MuDst)
		f.MuSrc.Swap(f.MuDst)
	}
	sum1, amp1 := muSumAmp(f.MuSrc)
	if math.Abs(sum1-sum0) > 1e-10 {
		t.Errorf("Σµ drifted: %g -> %g", sum0, sum1)
	}
	if amp1 >= amp0 {
		t.Errorf("perturbation did not decay: %g -> %g", amp0, amp1)
	}
}

func muSumAmp(f *grid.Field) (sum, amp float64) {
	f.Interior(func(x, y, z int) {
		v := f.At(0, x, y, z)
		sum += v
		if math.Abs(v) > amp {
			amp = math.Abs(v)
		}
	})
	return
}

func TestSweepsProduceFiniteValues(t *testing.T) {
	const nx, ny, nz = 12, 8, 16
	p := testParams(nz)
	ctx := &Ctx{P: p}
	f := setupInterface(nx, ny, nz, p)
	sc := NewScratch(nx, ny)
	bs := testBCs()
	for step := 0; step < 5; step++ {
		ctx.Time = float64(step) * p.Dt
		PhiSweep(ctx, f, sc, VarShortcut)
		bs.Apply(f.PhiDst)
		MuSweep(ctx, f, sc, VarShortcut)
		bs.Apply(f.MuDst)
		f.Swap()
	}
	if f.PhiSrc.HasNaN() || f.MuSrc.HasNaN() {
		t.Fatal("NaN/Inf after 5 steps")
	}
	// φ stays on the simplex everywhere.
	f.PhiSrc.Interior(func(x, y, z int) {
		var phi [NP]float64
		loadPhi(f.PhiSrc, x, y, z, &phi)
		if !core.OnSimplex(&phi, 1e-9) {
			t.Fatalf("φ off simplex at (%d,%d,%d): %v", x, y, z, phi)
		}
	})
}

func TestSolidGrowsBelowEutectic(t *testing.T) {
	// A single-solid front under strong undercooling: after an initial
	// profile-relaxation phase the solid fraction must increase.
	const nx, ny, nz = 8, 8, 16
	p := testParams(nz)
	p.Temp.Z0 = 2 * float64(nz) * p.Dx // whole domain well below T_E
	p.Temp.G = 0.005
	ctx := &Ctx{P: p}

	f := NewFields(nx, ny, nz)
	front := float64(nz) / 2
	f.PhiSrc.Interior(func(x, y, z int) {
		l := 0.5 * (1 + math.Tanh((float64(z)-front)/(0.25*p.Eps)))
		f.PhiSrc.Set(0, x, y, z, 1-l)
		f.PhiSrc.Set(LQ, x, y, z, l)
	})
	bs := testBCs()
	bs.Apply(f.PhiSrc)
	bs.Apply(f.MuSrc)
	f.PhiDst.CopyFrom(f.PhiSrc)
	sc := NewScratch(nx, ny)

	solidFrac := func(fl *grid.Field) float64 {
		s := 0.0
		fl.Interior(func(x, y, z int) {
			for a := 0; a < NP-1; a++ {
				s += fl.At(a, x, y, z)
			}
		})
		return s / float64(fl.NumInterior())
	}
	step := func(n int) {
		for i := 0; i < n; i++ {
			PhiSweep(ctx, f, sc, VarShortcut)
			bs.Apply(f.PhiDst)
			MuSweep(ctx, f, sc, VarShortcut)
			bs.Apply(f.MuDst)
			f.Swap()
			ctx.Time += p.Dt
		}
	}
	step(20) // let the tanh profile relax to the model's own shape
	f0 := solidFrac(f.PhiSrc)
	step(60)
	f1 := solidFrac(f.PhiSrc)
	if f1 <= f0 {
		t.Errorf("solid fraction did not grow below T_E: %g -> %g", f0, f1)
	}
	if f.PhiSrc.HasNaN() || f.MuSrc.HasNaN() {
		t.Fatal("NaN during growth test")
	}
}

func TestVariantStrings(t *testing.T) {
	if VarGeneral.String() == "" || VarShortcut.String() == "" {
		t.Error("variant names empty")
	}
	if StratCellwise.String() != "cellwise" {
		t.Error("strategy name wrong")
	}
}

func TestScratchEnsureGrows(t *testing.T) {
	sc := NewScratch(4, 4)
	sc.ensure(8, 2)
	if sc.nx < 8 || sc.ny < 4 {
		t.Errorf("ensure did not grow: %d %d", sc.nx, sc.ny)
	}
	if len(sc.muZ) < 8*4*NR || len(sc.phZ) < 8*4*NP {
		t.Error("slab buffers too small after ensure")
	}
}

func TestTempSliceTablesMatchThermo(t *testing.T) {
	p := testParams(16)
	var ts TempSlice
	ts.Fill(p, 10, 3.5)
	mu := [NR]float64{0.2, -0.1}
	var pots [NP]float64
	ts.GrandPots(&mu, &pots)
	dT := ts.T - p.Sys.TE
	for a := 0; a < NP; a++ {
		want := p.Sys.Phases[a].GrandPot(mu, dT)
		if math.Abs(pots[a]-want) > 1e-12 {
			t.Errorf("table ω[%d]=%g, thermo %g", a, pots[a], want)
		}
		cw := p.Sys.Phases[a].Conc(mu, dT)
		cg := ts.Conc(a, &mu)
		for k := 0; k < NR; k++ {
			if math.Abs(cg[k]-cw[k]) > 1e-12 {
				t.Errorf("table c[%d][%d]=%g, thermo %g", a, k, cg[k], cw[k])
			}
		}
	}
}
