// Quickstart: the minimal end-to-end use of the public API — build a small
// directional-solidification simulation, advance it, and inspect the
// microstructure.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A small domain: 32×32 laterally, 64 cells along the growth
	// direction, single block. DefaultConfig selects the calibrated
	// Ag-Al-Cu parameters, the fastest kernel variant and µ-overlap
	// communication hiding.
	cfg := phasefield.DefaultConfig(32, 32, 64)
	sim, err := phasefield.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Voronoi solid nuclei at the bottom, melt above (the paper's
	// Fig. 2 setup).
	if err := sim.InitProduction(); err != nil {
		log.Fatal(err)
	}

	names := phasefield.PhaseNames()
	fmt.Printf("phases: %v\n", names)
	fmt.Printf("stable dt: %g\n", sim.Params().Dt)

	for i := 0; i < 5; i++ {
		m := sim.RunMeasured(40)
		fr := sim.PhaseFractions()
		fmt.Printf("step %4d  solid fraction %.3f  front z=%d  %.2f MLUP/s\n",
			sim.Step(), sim.SolidFraction(), sim.FrontHeight(), m.MLUPs())
		_ = fr
	}

	// Extract the three solid-phase interface meshes (marching pipeline
	// of §3.2).
	for a, m := range sim.ExtractInterfaces() {
		fmt.Printf("interface mesh %-6s: %6d triangles, area %.1f\n",
			names[a], m.NumTris(), m.Area())
	}
}
