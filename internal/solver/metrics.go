package solver

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
)

// Metrics aggregates performance and physics measurements of a run. MLUP/s
// ("million lattice cell updates per second") is the paper's unit
// throughout §5.
type Metrics struct {
	Steps         int
	Cells         int
	PhiKernelTime time.Duration // summed over ranks
	MuKernelTime  time.Duration
	CommPhi       comm.Stats
	CommMu        comm.Stats
	WallTime      time.Duration
}

// MLUPs returns million lattice updates per second based on wall time.
func (m *Metrics) MLUPs() float64 {
	if m.WallTime <= 0 {
		return 0
	}
	return float64(m.Cells) * float64(m.Steps) / m.WallTime.Seconds() / 1e6
}

// PhiKernelMLUPs returns the φ-kernel-only rate (per-rank times are summed,
// so this is a per-core rate multiplied by rank count when ranks run truly
// in parallel).
func (m *Metrics) PhiKernelMLUPs() float64 {
	if m.PhiKernelTime <= 0 {
		return 0
	}
	return float64(m.Cells) * float64(m.Steps) / m.PhiKernelTime.Seconds() / 1e6
}

// MuKernelMLUPs returns the µ-kernel-only rate.
func (m *Metrics) MuKernelMLUPs() float64 {
	if m.MuKernelTime <= 0 {
		return 0
	}
	return float64(m.Cells) * float64(m.Steps) / m.MuKernelTime.Seconds() / 1e6
}

// RunMeasured advances n steps and returns timing metrics for exactly those
// steps.
func (s *Sim) RunMeasured(n int) Metrics {
	return s.Measure(func() { s.Run(n) })
}

// Measure resets the metrics, runs fn (which should advance the simulation,
// e.g. through Run or RunSchedule) and returns timing metrics for exactly
// the steps fn took. In a distributed run the timings cover this process'
// ranks only — each process measures its own share of the work.
func (s *Sim) Measure(fn func()) Metrics {
	s.ResetMetrics()
	before := s.step
	t0 := time.Now()
	fn()
	wall := time.Since(t0)

	m := Metrics{Steps: s.step - before, Cells: s.GlobalCells(), WallTime: wall}
	for _, r := range s.ranks {
		m.PhiKernelTime += r.phiKernelTime
		m.MuKernelTime += r.muKernelTime
	}
	for r := 0; r < s.World.NumRanks(); r++ {
		m.CommPhi.Add(s.World.RankTagStats(r, comm.TagPhi))
		m.CommMu.Add(s.World.RankTagStats(r, comm.TagMu))
	}
	return m
}

// ResetMetrics clears all accumulated timing state. The telemetry ring
// and its totals keep accumulating across resets — only the snapshots the
// per-step capture differences against are re-anchored to the zeroed
// counters.
func (s *Sim) ResetMetrics() {
	for _, r := range s.ranks {
		r.phiKernelTime = 0
		r.muKernelTime = 0
	}
	s.World.ResetStats()
	s.prevPhi, s.prevMu, s.prevComm = 0, 0, comm.Stats{}
}

// SolidFraction returns the global solid volume fraction. The per-global-
// rank partial sums are combined across processes slot by slot (each slot
// has exactly one contributor) and totalled in rank order, so the result
// is bit-identical for every decomposition of the same domain onto any
// process count.
func (s *Sim) SolidFraction() float64 {
	sums := make([]float64, s.Cfg.BG.NumBlocks())
	s.forAllRanks(func(r *rank) {
		f := r.fields.PhiSrc
		t := 0.0
		f.Interior(func(x, y, z int) {
			for a := 0; a < core.NPhases-1; a++ {
				t += f.At(a, x, y, z)
			}
		})
		sums[r.id] = t
	})
	s.World.GlobalSum(sums)
	total := 0.0
	for _, v := range sums {
		total += v
	}
	return total / float64(s.GlobalCells())
}

// PhaseFractions returns the global volume fraction of every phase (same
// bitwise-stable cross-process reduction as SolidFraction).
func (s *Sim) PhaseFractions() [core.NPhases]float64 {
	vec := make([]float64, s.Cfg.BG.NumBlocks()*core.NPhases)
	s.forAllRanks(func(r *rank) {
		f := r.fields.PhiSrc
		var acc [core.NPhases]float64
		f.Interior(func(x, y, z int) {
			for a := 0; a < core.NPhases; a++ {
				acc[a] += f.At(a, x, y, z)
			}
		})
		copy(vec[r.id*core.NPhases:], acc[:])
	})
	s.World.GlobalSum(vec)
	var out [core.NPhases]float64
	inv := 1 / float64(s.GlobalCells())
	for r := 0; r < s.Cfg.BG.NumBlocks(); r++ {
		for a := 0; a < core.NPhases; a++ {
			out[a] += vec[r*core.NPhases+a] * inv
		}
	}
	return out
}

// HasNaN reports whether any rank's source fields — on any process —
// contain NaN/Inf.
func (s *Sim) HasNaN() bool {
	bad := make([]float64, s.Cfg.BG.NumBlocks())
	s.forAllRanks(func(r *rank) {
		if r.fields.PhiSrc.HasNaN() || r.fields.MuSrc.HasNaN() {
			bad[r.id] = 1
		}
	})
	s.World.GlobalMax(bad)
	for _, b := range bad {
		if b > 0 {
			return true
		}
	}
	return false
}

// packFields flattens a block's source-field interiors (φ then µ,
// component-major, z/y/x inner order) for the cross-process gather.
func packFields(f *kernels.Fields) []float64 {
	phi, mu := f.PhiSrc, f.MuSrc
	out := make([]float64, 0, (phi.NComp+mu.NComp)*phi.NX*phi.NY*phi.NZ)
	for _, fld := range []*grid.Field{phi, mu} {
		for c := 0; c < fld.NComp; c++ {
			for z := 0; z < fld.NZ; z++ {
				for y := 0; y < fld.NY; y++ {
					for x := 0; x < fld.NX; x++ {
						out = append(out, fld.At(c, x, y, z))
					}
				}
			}
		}
	}
	return out
}

// unpackFields reverses packFields into a fresh bundle. Ghost layers stay
// zero — consumers read interiors only (checkpoint writer, global
// assembly).
func unpackFields(f *kernels.Fields, data []float64) error {
	i := 0
	for _, fld := range []*grid.Field{f.PhiSrc, f.MuSrc} {
		n := fld.NComp * fld.NX * fld.NY * fld.NZ
		if i+n > len(data) {
			return fmt.Errorf("solver: gathered block payload too short: %d floats", len(data))
		}
		for c := 0; c < fld.NComp; c++ {
			for z := 0; z < fld.NZ; z++ {
				for y := 0; y < fld.NY; y++ {
					for x := 0; x < fld.NX; x++ {
						fld.Set(c, x, y, z, data[i])
						i++
					}
				}
			}
		}
	}
	if i != len(data) {
		return fmt.Errorf("solver: gathered block payload has %d trailing floats", len(data)-i)
	}
	f.PhiDst.CopyFrom(f.PhiSrc)
	f.MuDst.CopyFrom(f.MuSrc)
	return nil
}

// GatherFields assembles every rank's field bundle, indexed by global
// rank, on the root process — the data plane of checkpoint writing and
// global field export. Single-process worlds return the live bundles
// (zero copy); distributed worlds ship source-field interiors to the root
// and return freshly allocated bundles there, nil on every other process.
// It is a collective: every process must call it at the same point.
func (s *Sim) GatherFields() ([]*kernels.Fields, error) {
	n := s.Cfg.BG.NumBlocks()
	out := make([]*kernels.Fields, n)
	if s.World.NumProcs() == 1 {
		for _, r := range s.ranks {
			out[r.id] = r.fields
		}
		return out, nil
	}
	parts := make([][]float64, n)
	for _, r := range s.ranks {
		parts[r.id] = packFields(r.fields)
	}
	gathered := s.World.GatherBlocks(parts)
	if gathered == nil {
		return nil, nil // non-root
	}
	for r := 0; r < n; r++ {
		f := kernels.NewFields(s.Cfg.BG.BX, s.Cfg.BG.BY, s.Cfg.BG.BZ)
		if err := unpackFields(f, gathered[r]); err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
		out[r] = f
	}
	return out, nil
}

// GatherGlobalPhi assembles the global φ field on a single Field (for
// output, analysis and mesh extraction). Intended for post-processing, not
// the hot loop. In a distributed run this is a collective that returns the
// field on the root process and nil elsewhere.
func (s *Sim) GatherGlobalPhi() *grid.Field {
	f, _ := s.gatherGlobal(func(f *kernels.Fields) *grid.Field { return f.PhiSrc }, core.NPhases)
	return f
}

// GatherGlobalMu assembles the global µ field (same collective semantics
// as GatherGlobalPhi).
func (s *Sim) GatherGlobalMu() *grid.Field {
	f, _ := s.gatherGlobal(func(f *kernels.Fields) *grid.Field { return f.MuSrc }, core.NRed)
	return f
}

func (s *Sim) gatherGlobal(pick func(*kernels.Fields) *grid.Field, ncomp int) (*grid.Field, error) {
	fields, err := s.GatherFields()
	if err != nil {
		return nil, err
	}
	if fields == nil {
		return nil, nil // non-root process
	}
	nx, ny, nz := s.Cfg.BG.GlobalCells()
	out := grid.NewField(nx, ny, nz, ncomp, 1, grid.SoA)
	for r, bundle := range fields {
		ox, oy, oz := s.Cfg.BG.Origin(r)
		f := pick(bundle)
		f.Interior(func(x, y, z int) {
			for a := 0; a < ncomp; a++ {
				out.Set(a, ox+x, oy+y, oz+z, f.At(a, x, y, z))
			}
		})
	}
	return out, nil
}

// RankFields exposes a global rank's field bundle (used by checkpointing
// and the benchmark harness). Returns nil for ranks owned by another
// process.
func (s *Sim) RankFields(r int) *kernels.Fields {
	for _, rk := range s.ranks {
		if rk.id == r {
			return rk.fields
		}
	}
	return nil
}

// NumRanks returns the number of block owners in this process (the global
// block count on a single-process world).
func (s *Sim) NumRanks() int { return len(s.ranks) }

// NumProcs returns how many processes share the rank grid.
func (s *Sim) NumProcs() int { return s.World.NumProcs() }

// IsRoot reports whether this is process 0 — the process that owns
// checkpoint files, gathered fields and console output in a distributed
// run.
func (s *Sim) IsRoot() bool { return s.World.IsRoot() }
