// Package analysis provides the microstructure metrics used to validate
// the physics results (§5.2): per-slice phase fractions, connected-component
// lamella labeling, detection of lamella splits and merges between growth
// slices (the 3D phenomena of Fig. 11 that 2D micrographs cannot show),
// two-point correlation functions (the paper's planned PCA-on-two-point-
// correlation comparison), and interface-area estimates.
package analysis

import (
	"repro/internal/core"
	"repro/internal/grid"
)

// DominantPhase returns the index of the largest φ component in a cell.
func DominantPhase(f *grid.Field, x, y, z int) int {
	best, bi := f.At(0, x, y, z), 0
	for a := 1; a < core.NPhases; a++ {
		if v := f.At(a, x, y, z); v > best {
			best, bi = v, a
		}
	}
	return bi
}

// SliceFractions returns the volume fraction of each phase within z-slice z.
func SliceFractions(f *grid.Field, z int) [core.NPhases]float64 {
	var out [core.NPhases]float64
	for y := 0; y < f.NY; y++ {
		for x := 0; x < f.NX; x++ {
			for a := 0; a < core.NPhases; a++ {
				out[a] += f.At(a, x, y, z)
			}
		}
	}
	inv := 1 / float64(f.NX*f.NY)
	for a := range out {
		out[a] *= inv
	}
	return out
}

// LabelSlice labels the connected components of the given phase within
// z-slice z (4-connectivity, periodic in x and y — the lateral boundary
// conditions of the solidification domain). A cell belongs to the phase
// when it is the dominant one. Returns the label map (0 = not this phase)
// and the number of components.
func LabelSlice(f *grid.Field, phase, z int) ([]int, int) {
	nx, ny := f.NX, f.NY
	labels := make([]int, nx*ny)
	mask := make([]bool, nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			mask[y*nx+x] = DominantPhase(f, x, y, z) == phase
		}
	}
	next := 0
	var stack [][2]int
	for y0 := 0; y0 < ny; y0++ {
		for x0 := 0; x0 < nx; x0++ {
			i0 := y0*nx + x0
			if !mask[i0] || labels[i0] != 0 {
				continue
			}
			next++
			labels[i0] = next
			stack = append(stack[:0], [2]int{x0, y0})
			for len(stack) > 0 {
				c := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nxp := (c[0] + d[0] + nx) % nx
					nyp := (c[1] + d[1] + ny) % ny
					ni := nyp*nx + nxp
					if mask[ni] && labels[ni] == 0 {
						labels[ni] = next
						stack = append(stack, [2]int{nxp, nyp})
					}
				}
			}
		}
	}
	return labels, next
}

// LamellaCounts returns the per-slice number of lamellae (connected
// components) of the given solid phase along the growth direction.
func LamellaCounts(f *grid.Field, phase int) []int {
	out := make([]int, f.NZ)
	for z := 0; z < f.NZ; z++ {
		_, n := LabelSlice(f, phase, z)
		out[z] = n
	}
	return out
}

// Events summarizes the lamella topology changes between two adjacent
// growth slices.
type Events struct {
	Splits int // one lamella at z overlaps ≥2 at z+1
	Merges int // ≥2 lamellae at z overlap one at z+1
	Births int // lamella at z+1 with no overlap at z
	Deaths int // lamella at z with no overlap at z+1
}

// SliceEvents detects splits and merges of the given phase between slices
// z and z+1 via overlap analysis of the component labelings — the
// microstructure evolution mechanism the paper observes in 3D (Fig. 11).
func SliceEvents(f *grid.Field, phase, z int) Events {
	la, na := LabelSlice(f, phase, z)
	lb, nb := LabelSlice(f, phase, z+1)
	nx, ny := f.NX, f.NY

	// overlap[a][b] counts shared cells between component a of slice z
	// and component b of slice z+1.
	forward := make([]map[int]int, na+1)
	backward := make([]map[int]int, nb+1)
	for i := 1; i <= na; i++ {
		forward[i] = map[int]int{}
	}
	for i := 1; i <= nb; i++ {
		backward[i] = map[int]int{}
	}
	for i := 0; i < nx*ny; i++ {
		a, b := la[i], lb[i]
		if a > 0 && b > 0 {
			forward[a][b]++
			backward[b][a]++
		}
	}

	var ev Events
	for a := 1; a <= na; a++ {
		switch len(forward[a]) {
		case 0:
			ev.Deaths++
		default:
			if len(forward[a]) >= 2 {
				ev.Splits++
			}
		}
	}
	for b := 1; b <= nb; b++ {
		switch len(backward[b]) {
		case 0:
			ev.Births++
		default:
			if len(backward[b]) >= 2 {
				ev.Merges++
			}
		}
	}
	return ev
}

// TotalEvents accumulates split/merge statistics along the whole growth
// direction.
func TotalEvents(f *grid.Field, phase int) Events {
	var tot Events
	for z := 0; z+1 < f.NZ; z++ {
		e := SliceEvents(f, phase, z)
		tot.Splits += e.Splits
		tot.Merges += e.Merges
		tot.Births += e.Births
		tot.Deaths += e.Deaths
	}
	return tot
}

// TwoPointCorrelation returns S₂(r) of the phase indicator along x within
// z-slice z, averaged over y, for r = 0..maxR (periodic in x). S₂(0) is the
// phase fraction; the decay length measures the lamella spacing.
func TwoPointCorrelation(f *grid.Field, phase, z, maxR int) []float64 {
	nx, ny := f.NX, f.NY
	ind := make([]float64, nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if DominantPhase(f, x, y, z) == phase {
				ind[y*nx+x] = 1
			}
		}
	}
	out := make([]float64, maxR+1)
	for r := 0; r <= maxR; r++ {
		s := 0.0
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				s += ind[y*nx+x] * ind[y*nx+(x+r)%nx]
			}
		}
		out[r] = s / float64(nx*ny)
	}
	return out
}

// InterfaceCellCount returns the number of diffuse-interface cells (cells
// off any simplex vertex by more than tol), a cheap proxy for interface
// area in units of dx².
func InterfaceCellCount(f *grid.Field, tol float64) int {
	n := 0
	f.Interior(func(x, y, z int) {
		for a := 0; a < core.NPhases; a++ {
			v := f.At(a, x, y, z)
			if v > tol && v < 1-tol {
				n++
				return
			}
		}
	})
	return n
}
