package phasefield

import (
	"testing"

	"repro/internal/schedule"
)

// The schedule recorder's dump must be replayable: running a fresh
// simulation under the recorded schedule reproduces the original
// trajectory bit-for-bit.
func TestRecordedScheduleReplays(t *testing.T) {
	cfg := DefaultConfig(12, 12, 16)
	cfg.Seed = 5
	const steps = 20

	sched, err := schedule.New(
		schedule.Ramp{Param: schedule.ParamPullVelocity, Step: 0, Over: 15, From: 0.02, To: 0.05},
		schedule.NucleationBurst{Step: 4, Count: 2, Phase: -1, Radius: 1.5, ZMin: 10, ZMax: 14, Seed: 9},
		schedule.SwitchVariant{Step: 8, Phi: schedule.KeepVariant, Mu: schedule.KeepVariant,
			Strategy: int(0) /* cellwise */},
	)
	if err != nil {
		t.Fatal(err)
	}

	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.InitFront(); err != nil {
		t.Fatal(err)
	}
	if err := orig.RunSchedule(sched, steps, ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}

	blob, err := orig.AppliedScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := schedule.FromJSONBytes(blob)
	if err != nil {
		t.Fatalf("recorded schedule not replayable: %v\n%s", err, blob)
	}
	if len(recorded.Events) != 3 {
		t.Fatalf("recorder captured %d events, want 3:\n%s", len(recorded.Events), blob)
	}

	replay, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.InitFront(); err != nil {
		t.Fatal(err)
	}
	if err := replay.RunSchedule(recorded, steps, ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}

	if ok, maxd := orig.GlobalPhi().InteriorEqual(replay.GlobalPhi(), 0); !ok {
		t.Errorf("replayed φ trajectory differs by %g", maxd)
	}
	if ok, maxd := orig.sim.GatherGlobalMu().InteriorEqual(replay.sim.GatherGlobalMu(), 0); !ok {
		t.Errorf("replayed µ trajectory differs by %g", maxd)
	}
}

// Events that never fired (outside the run window) must not appear in the
// audit log; a ramp applied across many steps must appear exactly once.
func TestRecorderScope(t *testing.T) {
	cfg := DefaultConfig(10, 10, 12)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitFront(); err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.New(
		schedule.Ramp{Param: schedule.ParamGradient, Step: 0, Over: 5, From: 1, To: 2},
		schedule.NucleationBurst{Step: 500, Count: 1, Phase: 0, Radius: 1.5, ZMin: 2, ZMax: 8, Seed: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunSchedule(sched, 10, ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}
	events := sim.AppliedEvents()
	if len(events) != 1 {
		t.Fatalf("audit log has %d events, want 1 (the ramp): %v", len(events), events)
	}
	if _, ok := events[0].(schedule.Ramp); !ok {
		t.Fatalf("audit log holds %T, want Ramp", events[0])
	}
}
