package solver

import (
	"sync"
	"sync/atomic"
)

// WorkerGauge counts sweep workers that are actively executing kernel code
// at this instant, across every Sim it is installed in (Config.Gauge). The
// job daemon shares one gauge across all concurrently running simulations,
// which turns the "jobs never exceed the global worker budget" invariant
// into a measurable quantity: Max() is the high-water mark of concurrently
// busy sweep workers since the last Reset.
//
// Both sweep paths report: a serial sweep counts as one busy worker on the
// rank's own goroutine, and every in-flight z-slab task of the parallel
// engine counts as one busy pool worker.
//
// A gauge refines into named sub-gauges via Class: installing
// gauge.Class("small") in a Sim counts that Sim's workers on both the
// sub-gauge and the root, so per-resource-class budget caps become
// measurable alongside the global one.
type WorkerGauge struct {
	cur atomic.Int64
	max atomic.Int64

	// parent, when non-nil, also counts every enter/exit of this sub-gauge
	// (sub-gauges are one level deep: Class on a sub-gauge delegates to the
	// root).
	parent  *WorkerGauge
	classes sync.Map // string -> *WorkerGauge
}

// Class returns the named sub-gauge, creating it on first use. Workers
// entering a sub-gauge are counted on it and on its root gauge, so class
// high-water marks and the global one come from one instrumentation point.
func (g *WorkerGauge) Class(name string) *WorkerGauge {
	if g.parent != nil {
		return g.parent.Class(name)
	}
	if sub, ok := g.classes.Load(name); ok {
		return sub.(*WorkerGauge)
	}
	sub, _ := g.classes.LoadOrStore(name, &WorkerGauge{parent: g})
	return sub.(*WorkerGauge)
}

// enter marks one worker busy and updates the high-water mark.
func (g *WorkerGauge) enter() {
	c := g.cur.Add(1)
	for {
		m := g.max.Load()
		if c <= m || g.max.CompareAndSwap(m, c) {
			break
		}
	}
	if g.parent != nil {
		g.parent.enter()
	}
}

// exit marks one worker idle.
func (g *WorkerGauge) exit() {
	g.cur.Add(-1)
	if g.parent != nil {
		g.parent.exit()
	}
}

// EachClass calls fn for every named sub-gauge created so far (in
// sync.Map iteration order; callers sort). On a sub-gauge it delegates to
// the root, mirroring Class.
func (g *WorkerGauge) EachClass(fn func(name string, sub *WorkerGauge)) {
	if g.parent != nil {
		g.parent.EachClass(fn)
		return
	}
	g.classes.Range(func(k, v any) bool {
		fn(k.(string), v.(*WorkerGauge))
		return true
	})
}

// Active returns the number of currently busy sweep workers.
func (g *WorkerGauge) Active() int { return int(g.cur.Load()) }

// Max returns the high-water mark of concurrently busy sweep workers since
// the last Reset.
func (g *WorkerGauge) Max() int { return int(g.max.Load()) }

// Reset clears the high-water mark (the instantaneous count is live and
// not resettable).
func (g *WorkerGauge) Reset() { g.max.Store(g.cur.Load()) }
