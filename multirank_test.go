package phasefield

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/schedule"
)

// multirank_test.go is the decomposition-equivalence harness: the golden
// trajectory — composed schedule with a velocity ramp, a nucleation burst,
// a µ-wall BC ramp, a φ-wall switch, a kernel-variant switch, moving-window
// shifts and a mid-ramp checkpoint — must produce bitwise-identical fields
// on 1 rank and on a 2×2 comm.World decomposition, both for the
// uninterrupted run and for the restart leg resumed from each run's own V3
// checkpoint. Ghost layers carry exact copies of neighbor interiors (or
// BC-filled values identical to the single-block fills), so any deviation
// is a halo-exchange, BC-staging or window-shift bug, not roundoff. This
// also regression-guards the zero-allocation halo exchange and the
// persistent comm workers under BoundarySets that change between steps.

// mkGoldenSim builds the golden scenario on a px×py decomposition.
func mkGoldenSim(t *testing.T, px, py int) *Simulation {
	t.Helper()
	cfg := goldenConfig()
	cfg.PX, cfg.PY = px, py
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InitProduction(); err != nil {
		t.Fatal(err)
	}
	return sim
}

// expectBitwise asserts two simulations hold bitwise-identical global
// fields.
func expectBitwise(t *testing.T, label string, a, b *Simulation) {
	t.Helper()
	if ok, maxd := a.GlobalPhi().InteriorEqual(b.GlobalPhi(), 0); !ok {
		t.Errorf("%s: φ differs by %g (want bitwise identity)", label, maxd)
	}
	if ok, maxd := a.sim.GatherGlobalMu().InteriorEqual(b.sim.GatherGlobalMu(), 0); !ok {
		t.Errorf("%s: µ differs by %g (want bitwise identity)", label, maxd)
	}
}

func TestMultiRankBitwiseEquivalence(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	sims := [2]*Simulation{mkGoldenSim(t, 1, 1), mkGoldenSim(t, 2, 2)}
	scheds := [2]*schedule.Schedule{}
	for i := range sims {
		scheds[i] = goldenSchedule(t, filepath.Join(dirs[i], "mr_%06d.pfcp"))
	}

	// Advance both decompositions in lockstep, checking bitwise identity
	// at the waypoints where each event class has just acted: after the
	// burst + first window shift (step 12), mid BC-ramp at the checkpoint
	// (step 20), after the variant switch (step 28), and at the end with
	// the φ top wall switched (step 40).
	for _, until := range []int{12, goldenCkptStep, 28, goldenSteps} {
		for i, sim := range sims {
			if err := sim.RunSchedule(scheds[i], until-sim.Step(), ScheduleOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		expectBitwise(t, fmt.Sprintf("step %d", until), sims[0], sims[1])
		if sims[0].WindowShift() != sims[1].WindowShift() {
			t.Fatalf("step %d: window shifts diverged (%d vs %d)",
				until, sims[0].WindowShift(), sims[1].WindowShift())
		}
	}
	if sims[0].WindowShift() == 0 {
		t.Fatal("run never shifted the window; the harness guards nothing")
	}
	phiBCs0, muBCs0 := sims[0].DomainBCs()
	phiBCs1, muBCs1 := sims[1].DomainBCs()
	if muBCs0[grid.ZMin].Values[0] != muBCs1[grid.ZMin].Values[0] ||
		phiBCs0[grid.ZMax].Kind != phiBCs1[grid.ZMax].Kind {
		t.Fatal("live BC state diverged across decompositions")
	}

	// Restart leg: resume each decomposition from its own mid-BC-ramp V3
	// checkpoint. Both seed from float32 round trips of bitwise-identical
	// states, so the continued trajectories must again agree bit for bit —
	// including the re-fired variant switch and the remaining BC ramp.
	restored := [2]*Simulation{}
	for i := range restored {
		path := filepath.Join(dirs[i], fmt.Sprintf("mr_%06d.pfcp", goldenCkptStep))
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("mid-ramp checkpoint missing: %v", err)
		}
		r, err := Restore(path, Config{MovingWindow: true, WindowFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if r.Step() != goldenCkptStep {
			t.Fatalf("restored at step %d", r.Step())
		}
		if err := r.RunSchedule(scheds[i], goldenSteps-r.Step(), ScheduleOptions{}); err != nil {
			t.Fatal(err)
		}
		restored[i] = r
	}
	expectBitwise(t, "restart leg", restored[0], restored[1])
	if phi, _, _, _ := restored[0].Kernels(); phi != kernels.VarShortcut {
		t.Error("restart leg did not re-fire the variant switch")
	}
	// And the restart legs' BC state must settle identically to the
	// uninterrupted runs'.
	_, muR0 := restored[0].DomainBCs()
	if muR0[grid.ZMin].Values[0] != muBCs0[grid.ZMin].Values[0] ||
		muR0[grid.ZMin].Values[1] != muBCs0[grid.ZMin].Values[1] {
		t.Error("restarted BC ramp settled at different wall values")
	}
}
