package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/solver"
)

// api.go is the HTTP/JSON surface of the daemon:
//
//	POST   /jobs                 submit a Spec; 201 {"id": "job-0001"}
//	GET    /jobs                 list job statuses
//	GET    /jobs/{id}            one job's status
//	GET    /jobs/{id}/metrics    NDJSON stream of Samples until terminal
//	GET    /jobs/{id}/trace      Chrome trace_event JSON performance timeline
//	GET    /jobs/{id}/schedule   replayable audit log of applied events
//	GET    /jobs/{id}/result     final lossless checkpoint (done jobs)
//	DELETE /jobs/{id}            cancel (running jobs stop at the next step)
//	POST   /arrays               submit an ArraySpec; expands into child jobs
//	GET    /arrays               list array statuses
//	GET    /arrays/{id}          one array's aggregated status
//	GET    /arrays/{id}/results  per-child params + metrics + result paths
//	DELETE /arrays/{id}          cancel every non-terminal child
//	GET    /classes              per-class worker caps and live load
//	GET    /healthz              liveness + degraded-store state (503 when degraded)
//	GET    /metrics              daemon-wide counters, Prometheus text format

// MaxRequestBody caps the request body the API reads (submitted specs are
// small JSON documents; anything near this limit is abuse or a mistake).
// Oversized bodies get 413.
const MaxRequestBody = 8 << 20

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/metrics", s.handleMetrics)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /jobs/{id}/schedule", s.handleSchedule)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /arrays", s.handleSubmitArray)
	mux.HandleFunc("GET /arrays", s.handleListArrays)
	mux.HandleFunc("GET /arrays/{id}", s.handleArrayStatus)
	mux.HandleFunc("GET /arrays/{id}/results", s.handleArrayResults)
	mux.HandleFunc("DELETE /arrays/{id}", s.handleCancelArray)
	mux.HandleFunc("GET /classes", s.handleClasses)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleDaemonMetrics)
	return http.MaxBytesHandler(mux, MaxRequestBody)
}

// decodeErrorCode maps a body-decode failure to its status: 413 for a
// body the MaxBytesHandler truncated, 400 otherwise.
func decodeErrorCode(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// writeJSON emits v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, decodeErrorCode(err), "bad job spec: %v", err)
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if IsDraining(err) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.List()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// jobFor resolves the {id} path value or writes a 404.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	ch, cancel := j.subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case sample, open := <-ch:
			if !open {
				return
			}
			// The stream outlives the server's WriteTimeout by design;
			// extend the deadline per sample so only a genuinely stuck
			// client gets cut off (not supported on all writers — ignore).
			_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if err := enc.Encode(sample); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func (s *Server) handleClasses(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ClassUsage())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Degraded {
		// 503 keeps dumb probes honest: the daemon serves, but results are
		// at risk until the store recovers.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// flowRow is one (peer, tag) halo-traffic aggregate of a running job,
// summed over the job's local block ranks for export.
type flowRow struct {
	peer                  int
	tag                   string
	frames, bytes, sleeps int64
}

// flowRows aggregates a job's per-(rank,peer,tag) halo flows by (peer,tag)
// in deterministic order.
func flowRows(flows []phasefield.HaloFlow) []flowRow {
	type key struct {
		peer int
		tag  string
	}
	agg := map[key]*flowRow{}
	for _, f := range flows {
		k := key{f.Peer, f.Tag}
		row, ok := agg[k]
		if !ok {
			row = &flowRow{peer: f.Peer, tag: f.Tag}
			agg[k] = row
		}
		row.frames += f.Frames
		row.bytes += f.Bytes
		row.sleeps += f.Sleeps
	}
	out := make([]flowRow, 0, len(agg))
	for _, row := range agg {
		out = append(out, *row)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].peer != out[b].peer {
			return out[a].peer < out[b].peer
		}
		return out[a].tag < out[b].tag
	})
	return out
}

func (s *Server) handleDaemonMetrics(w http.ResponseWriter, r *http.Request) {
	byState := map[State]int{}
	type jobGauge struct {
		id    string
		af    float64
		tot   obs.StepTotals
		flows []flowRow
		lat   map[string]obs.HistogramSnapshot
	}
	var active []jobGauge
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		byState[j.state]++
		if j.state == StateRunning {
			af := j.activeFrac
			if af == 0 {
				af = 1 // no sample yet: the solver sweeps everything
			}
			// The latency map is replaced wholesale by the runner, never
			// mutated in place, so holding a reference is safe.
			active = append(active, jobGauge{j.ID, af, j.telemTot, flowRows(j.flows), j.latency})
		}
		j.mu.Unlock()
	}
	queued := len(s.queue)
	running := len(s.running)
	pending := len(s.pendingSpills)
	s.mu.Unlock()

	// Resource classes: the configured table plus any class the gauge has
	// seen (a spooled job may name one the current flags don't).
	classSet := map[string]bool{}
	for name := range s.classes {
		classSet[name] = true
	}
	s.gauge.EachClass(func(name string, _ *solver.WorkerGauge) { classSet[name] = true })
	classes := make([]string, 0, len(classSet))
	for name := range classSet {
		classes = append(classes, name)
	}
	sort.Strings(classes)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP jobd_jobs Jobs known to the daemon, by lifecycle state.\n# TYPE jobd_jobs gauge\n")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "jobd_jobs{state=%q} %d\n", st, byState[st])
	}
	fmt.Fprintf(w, "# HELP jobd_queue_depth Jobs waiting for a slot.\n# TYPE jobd_queue_depth gauge\njobd_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# HELP jobd_running Jobs currently stepping.\n# TYPE jobd_running gauge\njobd_running %d\n", running)
	fmt.Fprintf(w, "# HELP jobd_workers_active Sweep workers currently busy (unlabeled: all jobs; class label: that resource class only).\n# TYPE jobd_workers_active gauge\njobd_workers_active %d\n", s.gauge.Active())
	for _, name := range classes {
		fmt.Fprintf(w, "jobd_workers_active{class=%q} %d\n", name, s.gauge.Class(name).Active())
	}
	fmt.Fprintf(w, "# HELP jobd_workers_budget Sweep-worker budget (unlabeled: global; class label: that class's cap).\n# TYPE jobd_workers_budget gauge\njobd_workers_budget %d\n", s.cfg.Budget)
	for _, name := range classes {
		fmt.Fprintf(w, "jobd_workers_budget{class=%q} %d\n", name, s.classBudget(name))
	}
	fmt.Fprintf(w, "# HELP jobd_retries_total Automatic job retries since daemon start.\n# TYPE jobd_retries_total counter\njobd_retries_total %d\n", s.retriesTotal.Load())
	fmt.Fprintf(w, "# HELP jobd_stalls_total Watchdog stall detections since daemon start.\n# TYPE jobd_stalls_total counter\njobd_stalls_total %d\n", s.stallsTotal.Load())
	fmt.Fprintf(w, "# HELP jobd_spill_failures_total Failed result-store spills since daemon start.\n# TYPE jobd_spill_failures_total counter\njobd_spill_failures_total %d\n", s.spillFailsTotal.Load())
	degraded := 0
	if s.degraded.Load() {
		degraded = 1
	}
	fmt.Fprintf(w, "# HELP jobd_store_degraded Whether the result store is in degraded mode.\n# TYPE jobd_store_degraded gauge\njobd_store_degraded %d\n", degraded)
	fmt.Fprintf(w, "# HELP jobd_pending_spills Terminal jobs awaiting a successful store spill.\n# TYPE jobd_pending_spills gauge\njobd_pending_spills %d\n", pending)
	sort.Slice(active, func(i, k int) bool { return active[i].id < active[k].id })
	fmt.Fprintf(w, "# HELP jobd_active_fraction Fraction of z-slices the solver swept last step, per running job.\n# TYPE jobd_active_fraction gauge\n")
	for _, g := range active {
		fmt.Fprintf(w, "jobd_active_fraction{job=%q} %g\n", g.id, g.af)
	}

	// Step-phase seconds of the current attempt, per running job. Counter
	// semantics hold within an attempt; a retry or preemption resume starts
	// a fresh simulation and resets the series (rate() over a scrape
	// straddling the restart sees one negative delta, as with any process
	// restart).
	fmt.Fprintf(w, "# HELP jobd_job_phase_seconds_total Step-phase time of the running attempt, per job and phase.\n# TYPE jobd_job_phase_seconds_total counter\n")
	for _, g := range active {
		for _, p := range []struct {
			name string
			d    time.Duration
		}{
			{"wall", g.tot.Wall}, {"phi_kernel", g.tot.PhiKernel}, {"mu_kernel", g.tot.MuKernel},
			{"halo_pack", g.tot.HaloPack}, {"halo_transfer", g.tot.HaloTransfer},
			{"halo_wait", g.tot.HaloWait}, {"halo_unpack", g.tot.HaloUnpack},
			{"sched", g.tot.Sched}, {"ckpt", g.tot.Ckpt},
		} {
			fmt.Fprintf(w, "jobd_job_phase_seconds_total{job=%q,phase=%q} %g\n", g.id, p.name, p.d.Seconds())
		}
	}
	fmt.Fprintf(w, "# HELP jobd_halo_bytes_total Halo payload bytes exchanged by the running attempt, per job, neighbor rank and tag.\n# TYPE jobd_halo_bytes_total counter\n")
	for _, g := range active {
		for _, f := range g.flows {
			fmt.Fprintf(w, "jobd_halo_bytes_total{job=%q,peer=\"%d\",tag=%q} %d\n", g.id, f.peer, f.tag, f.bytes)
		}
	}
	fmt.Fprintf(w, "# HELP jobd_halo_frames_total Halo frames sent by the running attempt, per job, neighbor rank and tag.\n# TYPE jobd_halo_frames_total counter\n")
	for _, g := range active {
		for _, f := range g.flows {
			fmt.Fprintf(w, "jobd_halo_frames_total{job=%q,peer=\"%d\",tag=%q} %d\n", g.id, f.peer, f.tag, f.frames)
		}
	}
	fmt.Fprintf(w, "# HELP jobd_halo_sleeps_total Zero-length sleep frames sent in place of halo payloads, per job, neighbor rank and tag.\n# TYPE jobd_halo_sleeps_total counter\n")
	for _, g := range active {
		for _, f := range g.flows {
			fmt.Fprintf(w, "jobd_halo_sleeps_total{job=%q,peer=\"%d\",tag=%q} %d\n", g.id, f.peer, f.tag, f.sleeps)
		}
	}
	bounds := obs.BucketBounds()
	fmt.Fprintf(w, "# HELP jobd_exchange_latency_seconds Whole halo-exchange latency of the running attempt, per job and tag.\n# TYPE jobd_exchange_latency_seconds histogram\n")
	for _, g := range active {
		tags := make([]string, 0, len(g.lat))
		for tag := range g.lat {
			tags = append(tags, tag)
		}
		sort.Strings(tags)
		for _, tag := range tags {
			h := g.lat[tag]
			cum := int64(0)
			for i, c := range h.Buckets {
				cum += c
				le := "+Inf"
				if i < obs.NumBuckets-1 {
					le = fmt.Sprintf("%g", bounds[i].Seconds())
				}
				fmt.Fprintf(w, "jobd_exchange_latency_seconds_bucket{job=%q,tag=%q,le=%q} %d\n", g.id, tag, le, cum)
			}
			fmt.Fprintf(w, "jobd_exchange_latency_seconds_sum{job=%q,tag=%q} %g\n", g.id, tag, h.Sum.Seconds())
			fmt.Fprintf(w, "jobd_exchange_latency_seconds_count{job=%q,tag=%q} %d\n", g.id, tag, h.Count)
		}
	}
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	blob, err := s.scheduleBytes(j)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(blob)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	if !s.hasResult(j) {
		writeError(w, http.StatusConflict, "job %s is %s; result exists only for done jobs",
			j.ID, j.State())
		return
	}
	final, err := s.resultBytes(j)
	if err != nil {
		// A torn or corrupted stored result is an error, never served.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(final)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	st, _ := s.Cancel(j.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": j.ID, "state": st})
}

func (s *Server) handleSubmitArray(w http.ResponseWriter, r *http.Request) {
	var as ArraySpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&as); err != nil {
		writeError(w, decodeErrorCode(err), "bad array spec: %v", err)
		return
	}
	arr, err := s.SubmitArray(as)
	if err != nil {
		code := http.StatusBadRequest
		if IsDraining(err) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.ArrayStatus(arr))
}

func (s *Server) handleListArrays(w http.ResponseWriter, r *http.Request) {
	arrays := s.ListArrays()
	out := make([]ArrayStatus, 0, len(arrays))
	for _, a := range arrays {
		out = append(out, s.ArrayStatus(a))
	}
	writeJSON(w, http.StatusOK, out)
}

// arrayFor resolves the {id} path value or writes a 404.
func (s *Server) arrayFor(w http.ResponseWriter, r *http.Request) (*Array, bool) {
	id := r.PathValue("id")
	a, ok := s.GetArray(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no array %q", id)
		return nil, false
	}
	return a, true
}

func (s *Server) handleArrayStatus(w http.ResponseWriter, r *http.Request) {
	if a, ok := s.arrayFor(w, r); ok {
		writeJSON(w, http.StatusOK, s.ArrayStatus(a))
	}
}

func (s *Server) handleArrayResults(w http.ResponseWriter, r *http.Request) {
	if a, ok := s.arrayFor(w, r); ok {
		writeJSON(w, http.StatusOK, s.ArrayResults(a))
	}
}

func (s *Server) handleCancelArray(w http.ResponseWriter, r *http.Request) {
	a, ok := s.arrayFor(w, r)
	if !ok {
		return
	}
	st, _ := s.CancelArray(a.ID)
	writeJSON(w, http.StatusAccepted, st)
}
