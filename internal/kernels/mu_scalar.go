package kernels

import (
	"repro/internal/core"
	"repro/internal/simd"
)

// mu_scalar.go implements the µ-kernel (Eq. 3): the evolution of the two
// reduced chemical potentials with gradient flux M∇µ, anti-trapping current
// J_at (Eq. 4) and the φ- and T-coupling source terms. The kernel is a
// D3C19 stencil on φ (face-transverse gradients touch the planar diagonal
// neighbors) and needs both φ(t) and φ(t+Δt), matching Fig. 1(b).

// Guard tolerances for the anti-trapping term.
const (
	tolPhiProd = 1e-9  // minimum φ_α·φ_ℓ at a face
	tolGrad2   = 1e-12 // minimum squared gradient norm
)

// muOpts selects the µ-kernel's optimizations and its Algorithm-2 split.
type muOpts struct {
	tz       bool // per-slice temperature tables
	stag     bool // staggered flux buffering
	shortcut bool // solid-region anti-trapping skip
	simdCSE  bool // precomputed mobility/susceptibility products (SIMD rung)

	// Algorithm 2 split: withJat=false computes the local part only
	// (µ-sweep-local); jatOnly adds the −∇·J_at correction afterwards
	// (µ-sweep-neighbor). The default (withJat=true, jatOnly=false) is
	// the fused Algorithm-1 kernel.
	withJat bool
	jatOnly bool
}

// interpWeights computes the normalized interpolation weights of a phase
// vector (shared helper; the general kernel recomputes them redundantly).
func interpWeights(phi *[NP]float64, h *[NP]float64) {
	core.Interp(phi, h)
}

// muFaceState carries everything the face-flux evaluation needs.
type muFaceState struct {
	ctx    *Ctx
	f      *Fields
	ts     *TempSlice // tables for the current slice zSlice
	tsPrev *TempSlice // tables for slice zSlice−1 (z-face evaluations)
	zSlice int
	o      muOpts
	invDx  float64
	invDt  float64
	// dInvTwoA[k][a] = D_a/(2A_k,a), the mobility product precomputed by
	// the SIMD/CSE rung.
	dInvTwoA [NR][NP]float64
}

// faceTables returns the temperature tables for a face whose low cell sits
// at local z. A z-face between slices z−1 and z is always evaluated with the
// lower slice's tables so that buffered and freshly computed staggered
// values agree bitwise.
func (st *muFaceState) faceTables(z int) *TempSlice {
	if z < st.zSlice {
		return st.tsPrev
	}
	return st.ts
}

// diffFlux computes the diffusive flux M(φ,T)∇µ·n at the face between cell
// (x,y,z) and its +axis neighbor.
func (st *muFaceState) diffFlux(x, y, z, axis int, out *[NR]float64) {
	phiS := st.f.PhiSrc
	muS := st.f.MuSrc
	ox, oy, oz := axisOffsets(axis)

	var phiF, hf [NP]float64
	for a := 0; a < NP; a++ {
		phiF[a] = 0.5 * (phiS.At(a, x, y, z) + phiS.At(a, x+ox, y+oy, z+oz))
	}
	interpWeights(&phiF, &hf)

	p := st.ctx.P
	for k := 0; k < NR; k++ {
		m := 0.0
		if st.o.simdCSE {
			for a := 0; a < NP; a++ {
				m += hf[a] * st.dInvTwoA[k][a]
			}
		} else {
			for a := 0; a < NP; a++ {
				m += hf[a] * p.D[a] / (2 * p.Sys.Phases[a].A[k])
			}
		}
		dmu := (muS.At(k, x+ox, y+oy, z+oz) - muS.At(k, x, y, z)) * st.invDx
		out[k] = m * dmu
	}
}

// jatFlux computes the anti-trapping flux J_at·n at the face between cell
// (x,y,z) and its +axis neighbor (Eq. 4). The early-exit guards on φ_ℓ and
// ∇φ_ℓ are the checks §3.3 describes.
func (st *muFaceState) jatFlux(x, y, z, axis int, out *[NR]float64) {
	out[0], out[1] = 0, 0
	p := st.ctx.P
	if p.AT == 0 {
		return
	}
	phiS, phiD := st.f.PhiSrc, st.f.PhiDst
	muS := st.f.MuSrc
	ox, oy, oz := axisOffsets(axis)

	var phiF, hf [NP]float64
	for a := 0; a < NP; a++ {
		phiF[a] = 0.5 * (phiS.At(a, x, y, z) + phiS.At(a, x+ox, y+oy, z+oz))
	}
	// First check: no liquid at the face ⇒ h_ℓ = 0 ⇒ J_at = 0.
	if phiF[LQ] <= tolPhiProd {
		return
	}
	interpWeights(&phiF, &hf)
	if hf[LQ] <= 0 {
		return
	}

	// Face gradients: the CSE rung evaluates them lazily per phase (only
	// the liquid and the solids actually present at the face); the basic
	// rung computes all four up front.
	var fg [NP][3]float64
	lazy := st.o.simdCSE
	if lazy {
		faceGradPhiOne(phiS, x, y, z, axis, LQ, st.invDx, &fg[LQ])
	} else {
		faceGradPhi(phiS, x, y, z, axis, st.invDx, &fg)
	}
	gl := fg[LQ]
	n2l := gl[0]*gl[0] + gl[1]*gl[1] + gl[2]*gl[2]
	// Second check: vanishing liquid gradient ⇒ skip.
	if n2l < tolGrad2 {
		return
	}
	invNl := simd.FastRSqrt2(n2l)

	var muF [NR]float64
	for k := 0; k < NR; k++ {
		muF[k] = 0.5 * (muS.At(k, x, y, z) + muS.At(k, x+ox, y+oy, z+oz))
	}
	ft := st.faceTables(z)
	var cl [NR]float64
	if st.o.tz {
		cl = ft.Conc(LQ, &muF)
	} else {
		cl = p.Sys.Phases[LQ].Conc(muF, ft.DT)
	}

	pref0 := core.ATPrefactor * p.Eps * p.AT * hf[LQ]
	for a := 0; a < NP-1; a++ {
		if phiF[a] <= tolPhiProd {
			continue
		}
		if lazy {
			faceGradPhiOne(phiS, x, y, z, axis, a, st.invDx, &fg[a])
		}
		ga := fg[a]
		n2a := ga[0]*ga[0] + ga[1]*ga[1] + ga[2]*ga[2]
		if n2a < tolGrad2 {
			continue
		}
		invNa := simd.FastRSqrt2(n2a)
		ndot := (ga[0]*gl[0] + ga[1]*gl[1] + ga[2]*gl[2]) * invNa * invNl

		dphidt := 0.5 * ((phiD.At(a, x, y, z) - phiS.At(a, x, y, z)) +
			(phiD.At(a, x+ox, y+oy, z+oz) - phiS.At(a, x+ox, y+oy, z+oz))) * st.invDt

		var ca [NR]float64
		if st.o.tz {
			ca = ft.Conc(a, &muF)
		} else {
			ca = p.Sys.Phases[a].Conc(muF, ft.DT)
		}

		pref := pref0 * core.GAT(phiF[a]) * simd.FastRSqrt2(phiF[a]*phiF[LQ]) * dphidt * ndot
		nAxis := ga[axis] * invNa
		for k := 0; k < NR; k++ {
			out[k] += pref * (cl[k] - ca[k]) * nAxis
		}
	}
}

// totalFaceFlux combines diffusive and anti-trapping contributions per the
// split options: G = M∇µ − J_at (full), M∇µ (local), or −J_at (neighbor).
func (st *muFaceState) totalFaceFlux(x, y, z, axis int, skipJat bool, out *[NR]float64) {
	if st.o.jatOnly {
		var j [NR]float64
		if !skipJat {
			st.jatFlux(x, y, z, axis, &j)
		}
		out[0], out[1] = -j[0], -j[1]
		return
	}
	st.diffFlux(x, y, z, axis, out)
	if st.o.withJat && !skipJat {
		var j [NR]float64
		st.jatFlux(x, y, z, axis, &j)
		for k := 0; k < NR; k++ {
			out[k] -= j[k]
		}
	}
}

// muSweepScalar runs the scalar µ-kernel over the z-slab [z0,z1) of the
// block interior. In jatOnly mode it adds the anti-trapping correction to an
// already computed µdst; otherwise it writes µdst from scratch.
func muSweepScalar(ctx *Ctx, f *Fields, sc *Scratch, o muOpts, z0, z1 int) {
	p := ctx.P
	nx, ny := f.MuSrc.NX, f.MuSrc.NY
	sc.ensure(nx, ny)

	st := muFaceState{
		ctx: ctx, f: f, o: o,
		invDx: 1 / p.Dx,
		invDt: 1 / p.Dt,
	}
	if o.simdCSE {
		for a := 0; a < NP; a++ {
			for k := 0; k < NR; k++ {
				st.dInvTwoA[k][a] = p.D[a] / (2 * p.Sys.Phases[a].A[k])
			}
		}
	}

	dTdt := p.Temp.DTdt()
	var ts, tsPrev TempSlice
	st.ts = &ts
	st.tsPrev = &tsPrev

	sc.zValidMu = false
	for z := z0; z < z1; z++ {
		ts.Fill(p, ctx.ZOff+z, ctx.Time)
		tsPrev.Fill(p, ctx.ZOff+z-1, ctx.Time)
		st.zSlice = z
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				muCellUpdate(&st, sc, x, y, z, dTdt, o, o.stag)
			}
		}
		sc.zValidMu = true
	}
}

// muCellUpdate performs the full per-cell µ update. useXBuf controls
// whether the x staggered buffer may be consulted (the four-cell kernel's
// remainder cells must not, since groups do not maintain it).
func muCellUpdate(st *muFaceState, sc *Scratch, x, y, z int, dTdt float64, o muOpts, useXBuf bool) {
	p := st.ctx.P
	phiS, phiD := st.f.PhiSrc, st.f.PhiDst
	muS, muD := st.f.MuSrc, st.f.MuDst
	ts := st.ts

	var phiC, phiDC, hSrc, hDst [NP]float64
	var muC, flux, fluxLo [NR]float64

	skipJat := o.shortcut && !regionHasLiquid(phiS, x, y, z)

	// Flux divergence over the six staggered faces.
	var div [NR]float64
	for axis := 0; axis < 3; axis++ {
		st.totalFaceFlux(x, y, z, axis, skipJat, &flux)
		gotLow := false
		if o.stag && (axis != 0 || useXBuf) {
			gotLow = loadMuBuffer(sc, axis, x, y, &fluxLo)
		}
		if !gotLow {
			lx, ly, lz := x, y, z
			switch axis {
			case 0:
				lx--
			case 1:
				ly--
			default:
				lz--
			}
			st.totalFaceFlux(lx, ly, lz, axis, skipJat, &fluxLo)
		}
		for k := 0; k < NR; k++ {
			div[k] += (flux[k] - fluxLo[k]) * st.invDx
		}
		if o.stag {
			storeMuBuffer(sc, axis, x, y, &flux)
		}
	}

	loadPhi(phiS, x, y, z, &phiC)
	interpWeights(&phiC, &hSrc)
	loadMu(muS, x, y, z, &muC)

	// Susceptibility χ = Σ_α h_α/(2A_α).
	var chi [NR]float64
	for k := 0; k < NR; k++ {
		s := 0.0
		if o.tz || o.simdCSE {
			for a := 0; a < NP; a++ {
				s += hSrc[a] * ts.InvTwoA[k][a]
			}
		} else {
			for a := 0; a < NP; a++ {
				s += hSrc[a] / (2 * p.Sys.Phases[a].A[k])
			}
		}
		chi[k] = s
	}

	if o.jatOnly {
		// Algorithm 2 neighbor pass: add the anti-trapping
		// correction only.
		for k := 0; k < NR; k++ {
			muD.Add(k, x, y, z, p.Dt*div[k]/chi[k])
		}
		return
	}

	// Source terms: −Σ_α c_α ∂h_α/∂t − (∂c/∂T)(∂T/∂t).
	loadPhi(phiD, x, y, z, &phiDC)
	interpWeights(&phiDC, &hDst)
	var src [NR]float64
	for a := 0; a < NP; a++ {
		dh := (hDst[a] - hSrc[a]) * st.invDt
		if dh == 0 {
			continue
		}
		var ca [NR]float64
		if o.tz {
			ca = ts.Conc(a, &muC)
		} else {
			ca = p.Sys.Phases[a].Conc(muC, ts.DT)
		}
		for k := 0; k < NR; k++ {
			src[k] -= ca[k] * dh
		}
	}
	for k := 0; k < NR; k++ {
		dcdT := 0.0
		for a := 0; a < NP; a++ {
			dcdT += hSrc[a] * ts.DC0dT[k][a]
		}
		src[k] -= dcdT * dTdt
	}

	for k := 0; k < NR; k++ {
		muD.Set(k, x, y, z, muC[k]+p.Dt*(src[k]+div[k])/chi[k])
	}
}

// Staggered buffer plumbing for the µ-kernel.

func loadMuBuffer(sc *Scratch, axis, x, y int, out *[NR]float64) bool {
	switch axis {
	case 0:
		if x == 0 {
			return false
		}
		copy(out[:], sc.muX[:NR])
	case 1:
		if y == 0 {
			return false
		}
		copy(out[:], sc.muY[x*NR:x*NR+NR])
	default:
		if !sc.zValidMu {
			return false
		}
		base := (y*sc.nx + x) * NR
		copy(out[:], sc.muZ[base:base+NR])
	}
	return true
}

func storeMuBuffer(sc *Scratch, axis, x, y int, flux *[NR]float64) {
	switch axis {
	case 0:
		copy(sc.muX[:NR], flux[:])
	case 1:
		copy(sc.muY[x*NR:x*NR+NR], flux[:])
	default:
		base := (y*sc.nx + x) * NR
		copy(sc.muZ[base:base+NR], flux[:])
	}
}
