package solver

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/kernels"
	"repro/internal/schedule"
	"repro/internal/voronoi"
)

// schedule.go turns the fixed-parameter time-stepping loop into an
// event-driven production engine: RunSchedule interprets a
// schedule.Schedule between timesteps — nucleation bursts seed spheres
// through the Voronoi machinery, ramps rewrite the process coefficients in
// place, variant switches swap the active kernels, and checkpoint cadences
// call back into a caller-supplied writer.
//
// Mutation safety under the parallel sweep engine: every event is applied
// on the caller's goroutine at a step boundary, when no sweep task is in
// flight (runSweep joins all slab tasks before returning and the worker
// pool blocks on its task channel between sweeps). The per-rank
// kernels.Ctx is rebuilt from Cfg.Params at the start of each timestep, so
// in-place parameter rewrites become visible to every worker exactly at
// the next step.

// ScheduleHooks customizes RunSchedule. All hooks may be nil.
type ScheduleHooks struct {
	// WriteCheckpoint is invoked post-step for due Checkpoint events
	// with the event's path template ("" = caller's default) and the
	// completed-step count. A returned error aborts the run.
	WriteCheckpoint func(pathTemplate string, step int) error
	// OnEvent is invoked after a one-shot event fires (logging/tracing).
	OnEvent func(ev schedule.Event, step int)
	// StepDone is the cooperative yield point of the job daemon: invoked
	// after every completed step (after due checkpoints were written),
	// on the caller's goroutine at a step boundary where no sweep or
	// overlapped exchange is in flight. Returning true stops RunSchedule
	// early with a nil error — the caller decides whether that means
	// preemption (checkpoint + requeue), cancellation, or drain. Budget
	// rebalancing (SetWorkerBudget) is also safe here.
	StepDone func(step int) (stop bool)
}

// Kernels returns the active kernel selection: the φ- and µ-sweep variants
// and, when pinned, the Fig. 5 φ vectorization strategy.
func (s *Sim) Kernels() (phi, mu kernels.Variant, strat kernels.PhiStrategy, stratPinned bool) {
	return s.phiVariant, s.muVariant, s.phiStrategy, s.usePhiStrategy
}

// SetKernels switches the active φ- and µ-sweep variants at a step
// boundary. Every variant computes the same update, so the trajectory is
// preserved within floating-point reassociation tolerance.
func (s *Sim) SetKernels(phi, mu kernels.Variant) error {
	for _, v := range []kernels.Variant{phi, mu} {
		if v < 0 || v >= kernels.NumVariants {
			return fmt.Errorf("solver: unknown variant %d", int(v))
		}
	}
	s.phiVariant, s.muVariant = phi, mu
	return nil
}

// SetPhiStrategy pins the φ-sweep to a Fig. 5 vectorization strategy;
// ClearPhiStrategy returns it to variant dispatch.
func (s *Sim) SetPhiStrategy(strat kernels.PhiStrategy) {
	s.phiStrategy, s.usePhiStrategy = strat, true
}

// ClearPhiStrategy removes a pinned φ strategy.
func (s *Sim) ClearPhiStrategy() { s.usePhiStrategy = false }

// SchedulePos returns how many one-shot schedule events have fired;
// SetSchedulePos installs the position recorded in a checkpoint so a
// restarted run never re-fires a burst or switch.
func (s *Sim) SchedulePos() int       { return s.schedPos }
func (s *Sim) SetSchedulePos(pos int) { s.schedPos = pos }

// RunSchedule advances the simulation n timesteps under the given
// schedule. Events with StartStep k act on the step that advances the
// simulation from k to k+1 completed steps; due checkpoints are reported
// post-step. A nil schedule degenerates to Run(n).
func (s *Sim) RunSchedule(n int, sched *schedule.Schedule, hooks ScheduleHooks) error {
	if sched == nil {
		if hooks.StepDone == nil {
			for i := 0; i < n; i++ {
				if err := s.runStep(); err != nil {
					return err
				}
			}
			return nil
		}
		// An unscheduled run still needs the per-step yield point (the
		// job daemon preempts schedule-less jobs too).
		sched = &schedule.Schedule{}
	}
	oneShots := sched.OneShots()
	ramps := sched.Ramps()
	ckpts := sched.Checkpoints()
	setbcs := sched.SetBCs()
	// Fail fast on prescriptions the topology cannot honor, before any step
	// runs (see bctopology.go). Kind changes on decomposed or periodic
	// faces are fine — the topology follows the prescription — but a
	// decomposed axis must switch periodicity wholesale.
	if err := s.validateSetBCs(setbcs); err != nil {
		return err
	}
	// Per-call recording gates: an event enters the audit log on its first
	// application in this call (the cross-call/cross-segment dedup happens
	// in recordEvent's key map); after that, re-applying it each step costs
	// one bool check, keeping the hot loop free of reflective formatting.
	rampRec := make([]bool, len(ramps))
	bcRec := make([]bool, len(setbcs))
	ckptRec := make([]bool, len(ckpts))
	// Install the prescription already in force at entry (a restart from a
	// checkpoint without BC state — V1/V2 — would otherwise run with the
	// configured walls until the next event boundary).
	if applied, topoChanged := s.applyDueSetBCs(setbcs, false, bcRec); applied {
		if topoChanged {
			s.refreshGhosts()
		} else {
			s.refillBoundaryGhosts()
		}
	}

	for i := 0; i < n; i++ {
		var tEv time.Time
		if s.telem != nil {
			tEv = time.Now()
		}
		// Fire due one-shot events in order, resuming at the
		// checkpointed schedule position.
		for s.schedPos < len(oneShots) && oneShots[s.schedPos].StartStep() <= s.step {
			ev := oneShots[s.schedPos]
			if err := s.applyOneShot(ev); err != nil {
				return err
			}
			s.recordOneShot(ev)
			s.schedPos++
			if hooks.OnEvent != nil {
				hooks.OnEvent(ev, s.step)
			}
		}
		// Ramps are pure functions of the step index; a later ramp on
		// the same parameter overrides an earlier one.
		for ri, r := range ramps {
			if r.Step <= s.step {
				if err := s.applyRamp(r); err != nil {
					return err
				}
				if !rampRec[ri] {
					rampRec[ri] = true
					s.recordEvent(r)
				}
			}
		}
		// Boundary-condition events, like ramps, prescribe the live BC
		// state as a pure function of the step index. Only events still
		// changing (within their ramp window) apply here; settled state
		// persists in the domain sets and the regular exchange fills,
		// costing nothing per step. A periodicity flip rewires neighbor
		// relations, so it forces a full ghost exchange instead of the
		// cheap wall refill.
		if applied, topoChanged := s.applyDueSetBCs(setbcs, true, bcRec); applied {
			if topoChanged {
				s.refreshGhosts()
			} else {
				s.refillBoundaryGhosts()
			}
		}
		if s.telem != nil {
			// Charged to the step the events precede (see telemetry.go).
			s.pendSched += time.Since(tEv)
		}

		if err := s.runStep(); err != nil {
			return err
		}

		for ci, c := range ckpts {
			if c.Due(s.step) && hooks.WriteCheckpoint != nil {
				if !ckptRec[ci] {
					ckptRec[ci] = true
					s.recordEvent(c)
				}
				tCk := time.Now()
				if err := hooks.WriteCheckpoint(c.Path, s.step); err != nil {
					return err
				}
				s.addCkptTime(time.Since(tCk))
			}
		}

		if hooks.StepDone != nil && hooks.StepDone(s.step) {
			return nil
		}
	}
	return nil
}

// applyOneShot dispatches a fired one-shot event.
func (s *Sim) applyOneShot(ev schedule.Event) error {
	switch e := ev.(type) {
	case schedule.NucleationBurst:
		_, err := s.ApplyBurst(e)
		return err
	case schedule.SwitchVariant:
		phi, mu := s.phiVariant, s.muVariant
		if e.Phi != schedule.KeepVariant {
			phi = e.Phi
		}
		if e.Mu != schedule.KeepVariant {
			mu = e.Mu
		}
		if err := s.SetKernels(phi, mu); err != nil {
			return err
		}
		switch e.Strategy {
		case schedule.StrategyKeep:
		case schedule.StrategyOff:
			s.ClearPhiStrategy()
		default:
			s.SetPhiStrategy(kernels.PhiStrategy(e.Strategy))
		}
		return nil
	}
	return fmt.Errorf("solver: unknown one-shot event %T", ev)
}

// applyRamp installs the ramp's value for the current step.
func (s *Sim) applyRamp(r schedule.Ramp) error {
	v := r.Value(s.step)
	p := s.Cfg.Params
	switch r.Param {
	case schedule.ParamPullVelocity:
		// T(z,t) = TE + G(z·dx − Z0 − V·t): changing V at time t
		// would shift the whole profile by (V−V')·t·G. Compensate Z0
		// so the temperature field stays continuous and only the
		// isotherm velocity changes.
		if v != p.Temp.V {
			p.Temp.Z0 += (p.Temp.V - v) * s.time
			p.Temp.V = v
		}
	case schedule.ParamGradient:
		// The profile rotates about the eutectic isotherm, which is
		// continuous by construction.
		p.Temp.G = v
	case schedule.ParamDt:
		if v > p.StableDt() {
			return fmt.Errorf("solver: ramped dt=%g exceeds stability limit %g", v, p.StableDt())
		}
		p.Dt = v
	default:
		return fmt.Errorf("solver: unknown ramp param %v", r.Param)
	}
	return nil
}

// applyDueSetBCs installs the wall state the schedule prescribes for the
// current step and reports whether anything was applied and whether the
// applied kinds flipped an axis' periodicity (rewiring the communication
// topology). Only the latest due event per (face, field) applies — an
// earlier overridden event must not be re-applied, or a kind override would
// flip the face twice per step and re-derive every rank's BCs forever
// (schedule.New rejects ambiguous overlaps). With changingOnly, events
// whose prescription has settled are skipped — their state already
// persists in the domain sets.
func (s *Sim) applyDueSetBCs(setbcs []schedule.SetBC, changingOnly bool, rec []bool) (applied, topoChanged bool) {
	var due [2 * int(grid.NumFaces)]int
	for i := range due {
		due[i] = -1
	}
	for j, b := range setbcs {
		if b.Step <= s.step && (!changingOnly || s.step <= b.SettleStep()) {
			due[2*int(b.Face)+int(b.Field)] = j
		}
	}
	var touched [3]bool
	for _, j := range due {
		if j >= 0 {
			s.applySetBC(setbcs[j])
			touched[setbcs[j].Face.Axis()] = true
			if !rec[j] {
				rec[j] = true
				s.recordEvent(setbcs[j])
			}
			applied = true
		}
	}
	if applied {
		topoChanged = s.syncTopology(touched)
	}
	return applied, topoChanged
}

// recordEvent appends a stateless event (ramp, setbc, checkpoint cadence)
// to the applied-event audit log the first time it takes effect. The
// original event is kept verbatim — its prescription is a pure function of
// the absolute step index, so replaying the dumped schedule reproduces the
// same values at the same steps.
func (s *Sim) recordEvent(ev schedule.Event) {
	key := fmt.Sprintf("%T %v", ev, ev)
	if s.recordSeen == nil {
		s.recordSeen = make(map[string]bool)
	}
	if s.recordSeen[key] {
		return
	}
	s.recordSeen[key] = true
	s.record = append(s.record, ev)
}

// recordOneShot appends a fired one-shot event, rebased to the step it
// actually fired at (a restart can legally delay an event past its nominal
// start step; the log captures what happened, not what was asked for).
func (s *Sim) recordOneShot(ev schedule.Event) {
	switch e := ev.(type) {
	case schedule.NucleationBurst:
		e.Step = s.step
		s.record = append(s.record, e)
	case schedule.SwitchVariant:
		e.Step = s.step
		s.record = append(s.record, e)
	default:
		s.record = append(s.record, ev)
	}
}

// AppliedEvents returns the audit log of schedule events this simulation
// has applied, in application order: one-shots at the step they fired,
// stateless events (ramps, BC events, checkpoint cadences) once, when they
// first took effect, verbatim. The log is the minimal replayable record of
// the run — encode it with schedule.EncodeJSON to obtain a schedule file
// that reproduces the same trajectory from the same initial state.
func (s *Sim) AppliedEvents() []schedule.Event {
	return append([]schedule.Event(nil), s.record...)
}

// refillBoundaryGhosts re-applies the physical-face fills to the
// source-field ghosts at a fixed point of the step, so every overlap
// mode's sweeps see the same wall values while a SetBC event is rewriting
// them: without this, modes that exchange µ ghosts at the end of the
// previous step (OverlapNone/OverlapPhi) would read walls one ramp
// increment behind modes that exchange at the step start
// (OverlapMu/OverlapBoth), and φ walls would lag a step in every mode.
// Idempotent for deferred-exchange modes, whose step-start exchange redoes
// the same fills.
func (s *Sim) refillBoundaryGhosts() {
	s.forAllRanks(func(r *rank) {
		r.phiBCs.Apply(r.fields.PhiSrc)
		r.muBCs.Apply(r.fields.MuSrc)
	})
}

// applySetBC installs one event's boundary condition for the current step.
// Dirichlet wall-value ramps write into the domain set's Values backing in
// place — shared by every rank's derived set through BlockBCs — so a
// steady BC ramp allocates nothing and every rank picks up the live values
// at its next halo exchange. A kind change (or a first-time payload
// allocation) invalidates the ranks' derived copies and re-derives them.
// Called between timesteps only, when no sweep or overlapped exchange is
// in flight; RunSchedule has already rejected events the decomposition
// cannot honor.
func (s *Sim) applySetBC(e schedule.SetBC) {
	dom := &s.domainPhiBCs
	if e.Field == schedule.BCMu {
		dom = &s.domainMuBCs
	}
	var vals []float64
	if e.Kind == grid.BCDirichlet {
		vals = e.ValuesAt(s.step, s.bcScratch[:])
	}
	prevKind := dom[e.Face].Kind
	realloc := dom.SetFace(e.Face, e.Kind, vals)
	if prevKind != e.Kind || realloc {
		s.refreshRankBCs()
	}
	// Wall values changed outside the timestep protocol: ghost fills (and
	// thus halo pack regions) may differ, so the halo-skip history is void.
	// Sleep decisions need no help — the ghost ring is part of the
	// uniformity predicate, so a changed wall keeps adjacent slices awake.
	s.invalidateActivity()
}

// ApplyBurst seeds the burst's nuclei as solid spheres in the melt. Nucleus
// coordinates are lab-frame; the moving window maps them into the current
// domain (material that already scrolled out is silently skipped). Only
// melt-dominated cells are overwritten, so existing grains survive. Returns
// the number of cells converted.
func (s *Sim) ApplyBurst(e schedule.NucleationBurst) (int, error) {
	nxg, nyg, _ := s.Cfg.BG.GlobalCells()

	fracs, err := s.Cfg.Params.Sys.EutecticFractions()
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(e.Seed + int64(e.Step)<<20))
	seeds, err := voronoi.BurstSeeds(nxg, nyg, float64(e.ZMin), float64(e.ZMax),
		e.Count, e.Phase, fracs[:], rng)
	if err != nil {
		return 0, err
	}

	painted := make([]float64, s.Cfg.BG.NumBlocks())
	s.forAllRanks(func(r *rank) {
		phi := r.fields.PhiSrc
		ox, oy, _ := s.Cfg.BG.Origin(r.id)
		for _, sd := range seeds {
			// Lab frame → window frame → rank-local coordinates.
			zc := sd.Z - float64(s.windowShift) - float64(r.zOff)
			zlo := int(math.Floor(zc - e.Radius))
			zhi := int(math.Ceil(zc + e.Radius))
			if zhi < 0 || zlo >= phi.NZ {
				continue
			}
			if zlo < 0 {
				zlo = 0
			}
			if zhi > phi.NZ-1 {
				zhi = phi.NZ - 1
			}
			r2 := e.Radius * e.Radius
			for z := zlo; z <= zhi; z++ {
				dz := float64(z) + 0.5 - zc
				for y := 0; y < phi.NY; y++ {
					dy := voronoi.PeriodicDist(float64(oy+y)+0.5, sd.Y, float64(nyg))
					if dz*dz+dy*dy > r2 {
						continue
					}
					for x := 0; x < phi.NX; x++ {
						dx := voronoi.PeriodicDist(float64(ox+x)+0.5, sd.X, float64(nxg))
						if dz*dz+dy*dy+dx*dx > r2 {
							continue
						}
						if phi.At(core.Liquid, x, y, z) <= 0.5 {
							continue
						}
						for a := 0; a < kernels.NP; a++ {
							v := 0.0
							if a == sd.Phase {
								v = 1
							}
							phi.Set(a, x, y, z, v)
						}
						painted[r.id]++
					}
				}
			}
		}
	})

	// The paint touched source interiors only; re-establish φ ghosts. The
	// burst may have rewritten a sleeping slab to a *different* uniform
	// vertex, so the halo-skip history must not bridge the repaint.
	s.invalidateActivity()
	s.forAllRanks(func(r *rank) {
		s.World.ExchangeGhosts(r.id, r.fields.PhiSrc, comm.TagPhi, r.phiBCs)
	})

	s.World.GlobalSum(painted)
	total := 0.0
	for _, c := range painted {
		total += c
	}
	return int(total), nil
}

// MuNorm returns the RMS of the chemical-potential field over the interior
// (a cheap scalar sensitive to solute-transport regressions, used by the
// golden-trajectory harness). Per-global-rank partial sums are combined
// across processes slot by slot and totalled in rank order, so the value is
// deterministic for a fixed decomposition on any process count.
func (s *Sim) MuNorm() float64 {
	sums := make([]float64, s.Cfg.BG.NumBlocks())
	s.forAllRanks(func(r *rank) {
		f := r.fields.MuSrc
		t := 0.0
		f.Interior(func(x, y, z int) {
			for k := 0; k < core.NRed; k++ {
				v := f.At(k, x, y, z)
				t += v * v
			}
		})
		sums[r.id] = t
	})
	s.World.GlobalSum(sums)
	total := 0.0
	for _, v := range sums {
		total += v
	}
	return math.Sqrt(total / float64(s.GlobalCells()*core.NRed))
}
