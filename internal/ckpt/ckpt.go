// Package ckpt implements checkpointing (§3.2): the complete simulation
// state — four φ values and two µ values per cell — is written to disk in
// single precision ("checkpoints use only single precision to save disk
// space and I/O bandwidth" while all computation is double precision), with
// a versioned header carrying the decomposition and time-stepping state
// needed for restart.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/grid"
	"repro/internal/kernels"
)

// Magic identifies checkpoint files; Version the header layout.
const (
	Magic   = 0x50464350 // "PFCP"
	Version = 1
)

// Header describes a checkpoint.
type Header struct {
	Step        int64
	Time        float64
	WindowShift int64
	PX, PY, PZ  int32 // decomposition
	BX, BY, BZ  int32 // block extents
}

// Write serializes the header and all ranks' source fields (interior only;
// ghosts are reconstructed on restart) in single precision.
func Write(w io.Writer, h Header, fields []*kernels.Fields) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := binary.Write(bw, binary.LittleEndian, uint32(Magic)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(Version)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, &h); err != nil {
		return err
	}
	if int(h.PX)*int(h.PY)*int(h.PZ) != len(fields) {
		return fmt.Errorf("ckpt: %d field bundles for a %dx%dx%d decomposition",
			len(fields), h.PX, h.PY, h.PZ)
	}
	for _, f := range fields {
		if err := writeField(bw, f.PhiSrc); err != nil {
			return err
		}
		if err := writeField(bw, f.MuSrc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeField(w io.Writer, f *grid.Field) error {
	buf := make([]float32, f.NX*f.NComp)
	for z := 0; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			i := 0
			for c := 0; c < f.NComp; c++ {
				for x := 0; x < f.NX; x++ {
					buf[i] = float32(f.At(c, x, y, z))
					i++
				}
			}
			if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Read deserializes a checkpoint into freshly allocated field bundles.
func Read(r io.Reader) (Header, []*kernels.Fields, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return Header{}, nil, err
	}
	if magic != Magic {
		return Header{}, nil, fmt.Errorf("ckpt: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return Header{}, nil, err
	}
	if version != Version {
		return Header{}, nil, fmt.Errorf("ckpt: unsupported version %d", version)
	}
	var h Header
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return Header{}, nil, err
	}
	if h.PX <= 0 || h.PY <= 0 || h.PZ <= 0 || h.BX <= 0 || h.BY <= 0 || h.BZ <= 0 {
		return Header{}, nil, fmt.Errorf("ckpt: corrupt header %+v", h)
	}
	n := int(h.PX) * int(h.PY) * int(h.PZ)
	fields := make([]*kernels.Fields, n)
	for i := 0; i < n; i++ {
		f := kernels.NewFields(int(h.BX), int(h.BY), int(h.BZ))
		if err := readField(br, f.PhiSrc); err != nil {
			return h, nil, err
		}
		if err := readField(br, f.MuSrc); err != nil {
			return h, nil, err
		}
		f.PhiDst.CopyFrom(f.PhiSrc)
		f.MuDst.CopyFrom(f.MuSrc)
		fields[i] = f
	}
	return h, fields, nil
}

func readField(r io.Reader, f *grid.Field) error {
	buf := make([]float32, f.NX*f.NComp)
	for z := 0; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
				return err
			}
			i := 0
			for c := 0; c < f.NComp; c++ {
				for x := 0; x < f.NX; x++ {
					f.Set(c, x, y, z, float64(buf[i]))
					i++
				}
			}
		}
	}
	return nil
}

// SizeBytes returns the on-disk size of a checkpoint for the given
// decomposition: header plus six single-precision values per cell.
func SizeBytes(px, py, pz, bx, by, bz int) int64 {
	cells := int64(px*py*pz) * int64(bx*by*bz)
	header := int64(8 + 8 + 8 + 8 + 6*4)
	return header + cells*(kernels.NP+kernels.NR)*4
}

// MaxRoundTripError returns the worst-case absolute error introduced by the
// double→single→double round trip for values of magnitude ≤ m.
func MaxRoundTripError(m float64) float64 {
	return m * math.Ldexp(1, -24) // half ulp of float32 at magnitude m, conservative
}
