package jobd

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
	"time"
)

// sweepArraySpec builds a small array submission: a velocity-ramp template
// swept over vmax and seed.
func sweepArraySpec(class string, steps int, vmax []float64, seeds []float64) ArraySpec {
	return ArraySpec{
		Name: "sweep",
		Template: Spec{
			NX: 8, NY: 8, NZ: 8, Steps: steps, Scenario: "interface", Class: class,
			Schedule: json.RawMessage(`{"events":[
				{"type":"ramp","param":"v","step":0,"over":` + fmt.Sprint(steps) + `,"from":0.02,"to":"${vmax}"}
			]}`),
		},
		Axes: []Axis{
			{Param: "vmax", Values: vmax},
			{Param: "seed", Values: seeds},
		},
	}
}

// Expansion is deterministic: child ids derive from the array id and grid
// index, the grid is row-major with the first axis slowest, and every
// child records its parameter assignment.
func TestArrayExpansion(t *testing.T) {
	s := New(Config{Budget: 2})
	arr, err := s.SubmitArray(sweepArraySpec("", 6, []float64{0.03, 0.05}, []float64{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Children) != 6 {
		t.Fatalf("expanded %d children, want 6", len(arr.Children))
	}
	for i, cid := range arr.Children {
		want := fmt.Sprintf("%s.%03d", arr.ID, i)
		if cid != want {
			t.Errorf("child %d id %q, want %q", i, cid, want)
		}
	}
	// Row-major: first axis (vmax) slowest.
	j3, _ := s.Get(arr.Children[3])
	if j3.Spec.Params["vmax"] != 0.05 || j3.Spec.Params["seed"] != 1 {
		t.Errorf("child 3 params %v, want vmax=0.05 seed=1", j3.Spec.Params)
	}
	if j3.Spec.Seed != 1 {
		t.Errorf("child 3 spec seed %d, want 1", j3.Spec.Seed)
	}
	// The substituted schedule parses and carries the grid value.
	if _, err := j3.Spec.normalize(); err != nil {
		t.Errorf("child 3 schedule invalid: %v", err)
	}
	// Children share the array fairness group.
	if j3.group != arr.ID || j3.array != arr.ID {
		t.Errorf("child group %q array %q, want %q", j3.group, j3.array, arr.ID)
	}
}

func TestArrayValidation(t *testing.T) {
	s := New(Config{Budget: 2, Classes: map[string]int{"small": 1}})
	base := sweepArraySpec("", 6, []float64{0.03}, []float64{1})
	cases := []func(*ArraySpec){
		func(a *ArraySpec) { a.Axes = nil },
		func(a *ArraySpec) { a.Axes[0].Param = "" },
		func(a *ArraySpec) { a.Axes[0].Values = nil },
		func(a *ArraySpec) { a.Axes[1].Param = "vmax" },                 // duplicate
		func(a *ArraySpec) { a.Axes[0].Param = "nope" },                 // not in template
		func(a *ArraySpec) { a.Axes[1].Values = []float64{1.5} },        // fractional seed
		func(a *ArraySpec) { a.Template.Class = "ghost" },               // unknown class
		func(a *ArraySpec) { a.Template.Steps = 0 },                     // invalid child spec
		func(a *ArraySpec) { a.Template.Schedule = nil },                // placeholder axis, no template
		func(a *ArraySpec) { a.Axes[0].Values = make([]float64, 2048) }, // too many children
		func(a *ArraySpec) { a.Axes[0].Values = []float64{0.03, math.Inf(1)} },
	}
	for i, mutate := range cases {
		as := base
		as.Template = base.Template
		as.Axes = []Axis{
			{Param: base.Axes[0].Param, Values: append([]float64(nil), base.Axes[0].Values...)},
			{Param: base.Axes[1].Param, Values: append([]float64(nil), base.Axes[1].Values...)},
		}
		mutate(&as)
		if _, err := s.SubmitArray(as); err == nil {
			t.Errorf("case %d: invalid array accepted", i)
		}
	}
	// The template's own Params supply fixed parameters.
	as := base
	as.Template.Schedule = json.RawMessage(`{"events":[
		{"type":"ramp","param":"v","step":0,"over":"${over}","from":0.02,"to":"${vmax}"}
	]}`)
	as.Template.Params = map[string]float64{"over": 6}
	if _, err := s.SubmitArray(as); err != nil {
		t.Errorf("fixed template param rejected: %v", err)
	}
}

// Within one priority level the scheduler serves fairness groups
// round-robin: a wide array does not drain FIFO ahead of a later single
// job.
func TestArrayFairInterleaving(t *testing.T) {
	s := New(Config{Budget: 1}) // scheduler never started: we pop by hand
	arr, err := s.SubmitArray(sweepArraySpec("", 6, []float64{0.03, 0.04, 0.05}, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	single, err := s.Submit(Spec{Name: "single", NX: 8, NY: 8, NZ: 8, Steps: 4, Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	pop := func() *Job {
		s.mu.Lock()
		defer s.mu.Unlock()
		j := s.bestQueuedLocked(nil)
		if j == nil {
			return nil
		}
		s.dropFromQueueLocked(j)
		s.pickSeq++
		s.groupPick[j.group] = s.pickSeq
		return j
	}
	var order []string
	for j := pop(); j != nil; j = pop() {
		order = append(order, j.ID)
	}
	want := []string{arr.Children[0], single.ID, arr.Children[1], arr.Children[2]}
	if len(order) != len(want) {
		t.Fatalf("popped %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("popped %v, want %v (single job starved behind the array)", order, want)
		}
	}

	// Priority still dominates fairness.
	urgent, err := s.Submit(Spec{Name: "urgent", NX: 8, NY: 8, NZ: 8, Steps: 4,
		Priority: 5, Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Spec{Name: "later", NX: 8, NY: 8, NZ: 8, Steps: 4,
		Scenario: "interface"}); err != nil {
		t.Fatal(err)
	}
	if j := pop(); j == nil || j.ID != urgent.ID {
		t.Fatalf("popped %v, want urgent job first", j)
	}
}

// A sustained stream of fresh single submissions cannot starve a waiting
// array: new fairness groups join at the *current* pick sequence (not 0),
// so service alternates between the array and the newcomers.
func TestFreshSinglesDontStarveWaitingArrays(t *testing.T) {
	s := New(Config{Budget: 1}) // scheduler never started: we pop by hand
	arr, err := s.SubmitArray(sweepArraySpec("", 6, []float64{0.03, 0.04, 0.05}, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	pop := func() *Job {
		s.mu.Lock()
		defer s.mu.Unlock()
		j := s.bestQueuedLocked(nil)
		if j == nil {
			return nil
		}
		s.dropFromQueueLocked(j)
		s.pickSeq++
		s.groupPick[j.group] = s.pickSeq
		s.pruneGroupLocked(j.group)
		return j
	}
	single := func(name string) *Job {
		j, err := s.Submit(Spec{Name: name, NX: 8, NY: 8, NZ: 8, Steps: 4, Scenario: "interface"})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	var order []string
	order = append(order, pop().ID) // first array child
	var singles []*Job
	for i := 0; i < 3; i++ {
		// A fresh single arrives before every scheduling decision.
		singles = append(singles, single(fmt.Sprintf("s%d", i)))
		order = append(order, pop().ID)
	}
	for j := pop(); j != nil; j = pop() {
		order = append(order, j.ID)
	}
	want := []string{arr.Children[0], arr.Children[1], singles[0].ID,
		arr.Children[2], singles[1].ID, singles[2].ID}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("service order %v, want %v (array starved or singles starved)", order, want)
		}
	}
	// The fairness map is pruned once groups leave the queue.
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.groupPick) > 1 {
		t.Errorf("groupPick retains %d entries after the queue drained", len(s.groupPick))
	}
}

// A queued job whose class cap is saturated must not head-of-line-block
// an admissible job of another class: admission backfills past it.
func TestClassSaturationDoesNotBlockOtherClasses(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, Budget: 4, ReportEvery: 1,
		Classes: map[string]int{"scout": 1, "large": 3}})
	s.Start()
	defer s.Close()

	// A long scout job saturates the scout cap (W_scout = 1).
	a, err := s.Submit(Spec{Name: "a", NX: 10, NY: 10, NZ: 12, Steps: 4000,
		Class: "scout", Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "scout job to start", 30*time.Second, func() bool {
		return a.State() == StateRunning
	})
	// A second scout queues (share would be 0) ahead of a large job.
	b, err := s.Submit(Spec{Name: "b", NX: 8, NY: 8, NZ: 8, Steps: 2,
		Class: "scout", Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Submit(Spec{Name: "c", NX: 8, NY: 8, NZ: 8, Steps: 2,
		Class: "large", Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	// The large job must finish while the first scout still runs — i.e. it
	// was admitted past the stuck scout, not serialized behind it.
	waitFor(t, "large job to finish while scout runs", 60*time.Second, func() bool {
		return c.State() == StateDone
	})
	if st := a.State(); st != StateRunning {
		t.Fatalf("long scout job is %v; the large job should have backfilled alongside it", st)
	}
	if st := b.State(); st != StateQueued {
		t.Fatalf("second scout is %v, want queued behind its class cap", st)
	}
	s.Cancel(a.ID)
	s.Cancel(b.ID)
}

// Preemption is class-aware: the victim must be one whose eviction
// actually admits the outranking job. Evicting an unrelated-class job
// (the old lowest-priority-wins rule) would just thrash — admission
// re-admits the victim because the blocked job's own class is still
// saturated.
func TestPreemptionIsClassAware(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, Budget: 4, ReportEvery: 1,
		Classes: map[string]int{"small": 2}})
	s.Start()
	defer s.Close()

	// r1 (class small) and l (default) fill both slots.
	r1, err := s.Submit(Spec{Name: "r1", NX: 10, NY: 10, NZ: 12, Steps: 4000,
		Class: "small", Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Submit(Spec{Name: "l", NX: 10, NY: 10, NZ: 12, Steps: 4000,
		Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both fillers to run", 30*time.Second, func() bool {
		return r1.State() == StateRunning && l.State() == StateRunning
	})

	// b outranks both but needs the whole small cap (2 blocks): only
	// evicting r1 — its class peer — can admit it.
	b, err := s.Submit(Spec{Name: "b", NX: 8, NY: 8, NZ: 8, PX: 2, Steps: 2,
		Priority: 5, Class: "small", Scenario: "interface"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "outranking small job to finish", 60*time.Second, func() bool {
		return b.State() == StateDone
	})
	if got := l.Status().Preemptions; got != 0 {
		t.Errorf("default-class job was preempted %d times — victim selection ignored class admissibility", got)
	}
	if got := r1.Status().Preemptions; got < 1 {
		t.Errorf("small-class filler was never preempted (preemptions=%d)", got)
	}
	s.Cancel(r1.ID)
	s.Cancel(l.ID)
}

// newTestJob registers a fake running job for share-policy tests.
func newTestJob(s *Server, id, class string) *Job {
	spec := Spec{NX: 8, NY: 8, NZ: 8, PX: 1, PY: 1, Steps: 1, Class: class}
	j := newJob(id, 0, spec, nil)
	s.running[id] = j
	return j
}

// Per-class water-filling: a capped class never exceeds its budget, the
// leftover flows to other classes, and a single class reduces to the
// original even split.
func TestSharesWaterFill(t *testing.T) {
	s := New(Config{Budget: 8, Classes: map[string]int{"small": 2, "large": 8}})

	// One small + one large: small capped at 2, large soaks up the rest.
	a := newTestJob(s, "a", "small")
	b := newTestJob(s, "b", "large")
	shares := s.sharesLocked(nil)
	if shares[a] != 2 || shares[b] != 6 {
		t.Errorf("shares small=%d large=%d, want 2/6", shares[a], shares[b])
	}

	// Three small scouts collectively still hold ≤ 2.
	c := newTestJob(s, "c", "small")
	d := newTestJob(s, "d", "small")
	shares = s.sharesLocked(nil)
	if total := shares[a] + shares[c] + shares[d]; total > 2 {
		t.Errorf("small class holds %d workers, cap is 2", total)
	}
	if shares[b] < 6 {
		t.Errorf("large job diluted to %d by scouts, want ≥ 6", shares[b])
	}

	// Single default class = the original ⌊W/n⌋ policy.
	s2 := New(Config{Budget: 8})
	j1 := newTestJob(s2, "1", DefaultClass)
	j2 := newTestJob(s2, "2", DefaultClass)
	j3 := newTestJob(s2, "3", DefaultClass)
	shares = s2.sharesLocked(nil)
	for _, j := range []*Job{j1, j2, j3} {
		if shares[j] != 8/3 {
			t.Errorf("default-class share %d, want %d", shares[j], 8/3)
		}
	}

	// The shares never sum past the global budget, candidate included.
	cand := newJob("cand", 99, Spec{NX: 8, NY: 8, NZ: 8, PX: 1, PY: 1, Steps: 1, Class: "large"}, nil)
	delete(s.running, "cand")
	shares = s.sharesLocked(cand)
	total := 0
	for _, sh := range shares {
		total += sh
	}
	if total > 8 {
		t.Errorf("shares sum to %d, budget is 8", total)
	}
}

func TestClassValidation(t *testing.T) {
	s := New(Config{Budget: 4, Classes: map[string]int{"small": 2}})
	if _, err := s.Submit(Spec{NX: 8, NY: 8, NZ: 8, Steps: 2, Class: "ghost"}); err == nil {
		t.Error("unknown class accepted")
	}
	// A 2×2 decomposition cannot fit class small's 2-worker cap.
	if _, err := s.Submit(Spec{NX: 8, NY: 8, NZ: 8, PX: 2, PY: 2, Steps: 2, Class: "small"}); err == nil {
		t.Error("decomposition wider than the class cap accepted")
	}
	// Class budgets are clamped to the global budget.
	s2 := New(Config{Budget: 2, Classes: map[string]int{"huge": 64}})
	if got := s2.classBudget("huge"); got != 2 {
		t.Errorf("class budget %d, want clamped to 2", got)
	}
}

// An array drained mid-campaign respools: the restarted daemon restores
// the array record and the children finish.
func TestArrayDrainSpoolResume(t *testing.T) {
	spool := t.TempDir()
	cfg := Config{MaxConcurrent: 1, Budget: 2, ReportEvery: 1, SpoolDir: spool}
	s1 := New(cfg)
	s1.Start()
	arr, err := s1.SubmitArray(sweepArraySpec("", 12, []float64{0.03, 0.05}, []float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := s1.Get(arr.Children[0])
	waitFor(t, "first child to take steps", 30*time.Second, func() bool {
		return first.Status().Step >= 2
	})
	if err := s1.Drain(); err != nil {
		t.Fatal(err)
	}

	s2 := New(cfg)
	n, err := s2.LoadSpool()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("spool restored %d jobs, want 2", n)
	}
	arr2, ok := s2.GetArray(arr.ID)
	if !ok {
		t.Fatal("array record lost across drain")
	}
	s2.Start()
	defer s2.Close()
	waitFor(t, "array to finish after respool", 60*time.Second, func() bool {
		return s2.ArrayStatus(arr2).State == StateDone
	})
	st := s2.ArrayStatus(arr2)
	if st.Counts[StateDone] != 2 || st.Missing != 0 {
		t.Fatalf("array status %+v", st)
	}
}
