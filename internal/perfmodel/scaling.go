package perfmodel

import "math"

// Analytic communication and weak-scaling models. Block sizes follow the
// paper's benchmarks (60³ cells per core). Message volumes derive from the
// real field layouts: the φ exchange carries 4 components per face cell,
// the µ exchange 2, one ghost layer deep, three staged axis messages per
// field per step in each direction.

// CommScenario describes one communication-time evaluation point.
type CommScenario struct {
	Machine   *Machine
	BlockEdge int  // cubic block edge length per process
	Cores     int  // total processes
	Overlap   bool // communication hiding enabled
}

// fieldBytes returns the per-step ghost message volume of one field with
// ncomp components on a cubic block (6 faces, 1 ghost layer, 8 B values).
func fieldBytes(edge, ncomp int) float64 {
	face := float64(edge * edge)
	return 6 * face * float64(ncomp) * 8
}

// contention returns the effective bandwidth divisor at scale p.
func contention(m *Machine, p int) float64 {
	c := 1.0
	if m.IslandCores > 0 && p > m.IslandCores {
		c *= m.PrunedFactor
	}
	if p > m.CoresPerNode {
		doublings := math.Log2(float64(p) / float64(m.CoresPerNode))
		c *= 1 + m.ContentionLog*doublings
	}
	return c
}

// CommTime returns the modeled per-timestep communication time in seconds
// for one field exchange (phi=true selects the φ field). With overlap
// enabled only the pack/unpack portion and a small synchronization residue
// remain visible — transfers hide behind computation (§5.1.2, Fig. 8).
func CommTime(cs CommScenario, phi bool) float64 {
	ncomp := 2
	if phi {
		ncomp = 4
	}
	bytes := fieldBytes(cs.BlockEdge, ncomp)
	m := cs.Machine

	packUnpack := 2 * bytes / m.PackBW
	transfer := 6*m.LatencySec + bytes/m.LinkBW*contention(m, cs.Cores)
	skew := m.SkewPerStepSec * math.Log2(math.Max(2, float64(cs.Cores))) / 12

	if cs.Overlap {
		// Transfers hidden; pack/unpack and a fraction of the skew
		// remain. Overlapping the φ exchange additionally costs the
		// split-kernel overhead, charged to compute, not comm.
		return packUnpack + 0.3*skew
	}
	return packUnpack + transfer + skew
}

// WeakScalingPoint is one sample of the Fig. 9 curves.
type WeakScalingPoint struct {
	Cores        int
	MLUPsPerCore float64
}

// WeakScaling models MLUP/s per core for the full timestep (both kernels,
// boundary handling, µ-overlap communication hiding) at increasing core
// counts with a fixed block per core — the weak-scaling experiment of
// Fig. 9.
func WeakScaling(m *Machine, scenario int, blockEdge int, cores []int) []WeakScalingPoint {
	cells := float64(blockEdge * blockEdge * blockEdge)
	out := make([]WeakScalingPoint, 0, len(cores))
	for _, p := range cores {
		tPhi := cells / (m.PhiRate[scenario] * 1e6)
		tMu := cells / (m.MuRate[scenario] * 1e6)
		tComp := (tPhi + tMu) * (1 + m.OverheadFrac)

		// Production communication: µ hidden, φ blocking.
		tComm := CommTime(CommScenario{Machine: m, BlockEdge: blockEdge, Cores: p, Overlap: true}, false) +
			CommTime(CommScenario{Machine: m, BlockEdge: blockEdge, Cores: p, Overlap: false}, true)

		t := tComp + tComm
		out = append(out, WeakScalingPoint{Cores: p, MLUPsPerCore: cells / t / 1e6})
	}
	return out
}

// IntranodeScaling models the µ-kernel-only intranode scaling of Fig. 7:
// with one process per core the kernel is compute bound, so scaling is
// nearly linear until the shared memory bandwidth saturates.
func IntranodeScaling(m *Machine, blockEdge int, maxCores int) []WeakScalingPoint {
	out := make([]WeakScalingPoint, 0, maxCores)
	for c := 1; c <= maxCores; c++ {
		rate := m.MuRate[ScnInterface] // MLUP/s per core, compute bound
		// Bandwidth ceiling shared across active cores.
		bwCeil := (m.StreamBWNode / MuBytesPerLUP / 1e6) / float64(c)
		eff := math.Min(rate, bwCeil)
		out = append(out, WeakScalingPoint{Cores: c, MLUPsPerCore: eff})
	}
	return out
}

// Efficiency returns the weak-scaling parallel efficiency of a curve
// relative to its first point.
func Efficiency(points []WeakScalingPoint) float64 {
	if len(points) == 0 || points[0].MLUPsPerCore == 0 {
		return 0
	}
	return points[len(points)-1].MLUPsPerCore / points[0].MLUPsPerCore
}

// PowersOfTwo returns {2^lo .. 2^hi}.
func PowersOfTwo(lo, hi int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<uint(e))
	}
	return out
}
